// Smart-space example: run 2SVM (paper §IV-C) — a central controller node
// holding the top layers, layer-suppressed node platforms on each smart
// object, and rules (ubiquitous applications) whose execution is triggered
// by objects entering and leaving the space.
//
//	go run ./examples/smartspace
package main

import (
	"fmt"
	"log"

	"github.com/mddsm/mddsm/internal/domains/smartspace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	vm, err := smartspace.New()
	if err != nil {
		return err
	}

	fmt.Println("== model the space: objects + welcome/goodbye rules ==")
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("ana", "User").SetAttr("name", "Ana")
	d.MustAdd("lamp1", "ObjectDecl").SetAttr("kind", "lamp")
	d.MustAdd("speaker1", "ObjectDecl").SetAttr("kind", "speaker")
	d.MustAdd("welcome", "Rule").
		SetAttr("onEvent", "objectEntered").
		SetAttr("subject", "badge-ana").
		SetAttr("targetObject", "lamp1").
		SetAttr("prop", "on").
		SetAttr("value", "true")
	d.MustAdd("announce", "Rule").
		SetAttr("onEvent", "objectEntered").
		SetAttr("subject", "badge-ana").
		SetAttr("targetObject", "speaker1").
		SetAttr("prop", "nowPlaying").
		SetAttr("value", "welcome-chime")
	d.MustAdd("goodbye", "Rule").
		SetAttr("onEvent", "objectLeft").
		SetAttr("subject", "badge-ana").
		SetAttr("targetObject", "lamp1").
		SetAttr("prop", "on").
		SetAttr("value", "false")
	if _, err := d.Submit(); err != nil {
		return err
	}

	fmt.Println("== devices come online (each spawns a two-layer node platform) ==")
	for _, obj := range []struct{ id, kind string }{
		{"lamp1", "lamp"}, {"speaker1", "speaker"},
	} {
		if err := vm.Hub.ObjectEnters(obj.id, obj.kind); err != nil {
			return err
		}
	}
	fmt.Printf("  node platforms running: %d\n\n", vm.Hub.NodeCount())

	fmt.Println("== Ana walks in ==")
	if err := vm.Hub.ObjectEnters("badge-ana", "badge"); err != nil {
		return err
	}
	printObjects(vm)

	fmt.Println("== Ana leaves ==")
	if err := vm.Hub.ObjectLeaves("badge-ana"); err != nil {
		return err
	}
	printObjects(vm)

	fmt.Println("== space trace ==")
	fmt.Println(vm.Hub.Space().Trace())
	return nil
}

func printObjects(vm *smartspace.SSVM) {
	for _, id := range vm.Hub.Space().Known() {
		o, _ := vm.Hub.Space().Object(id)
		fmt.Printf("  %s (%s) present=%v", id, o.Kind, o.Present)
		for _, p := range o.PropNames() {
			v, _ := o.Prop(p)
			fmt.Printf(" %s=%v", p, v)
		}
		fmt.Println()
	}
	fmt.Println()
}
