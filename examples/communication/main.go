// Communication example: drive the CVM (paper §IV-A) through a multi-party
// session lifecycle — establishment, media upgrade, an attachment, a
// transport failure with automatic recovery, and teardown — all expressed
// as CML model updates.
//
//	go run ./examples/communication
package main

import (
	"fmt"
	"log"

	"github.com/mddsm/mddsm/internal/domains/cml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	vm, err := cml.New()
	if err != nil {
		return err
	}

	fmt.Println("== establish a two-party audio session ==")
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("alice", "Person").SetAttr("name", "Alice")
	d.MustAdd("bob", "Person").SetAttr("name", "Bob")
	d.MustAdd("s1", "Session").
		SetAttr("topic", "standup").
		SetRef("participants", "alice", "bob").
		SetRef("streams", "audio1")
	d.MustAdd("audio1", "Stream").
		SetAttr("media", "audio").
		SetAttr("bandwidth", 64).
		SetAttr("session", "s1")
	if _, err := d.Submit(); err != nil {
		return err
	}
	printSession(vm)

	fmt.Println("== upgrade to video and add carol ==")
	edit := vm.Platform.UI.EditDraft()
	edit.MustAdd("carol", "Person").SetAttr("name", "Carol")
	edit.Object("s1").AddRef("participants", "carol")
	edit.Object("audio1").SetAttr("media", "video").SetAttr("bandwidth", 384)
	if _, err := edit.Submit(); err != nil {
		return err
	}
	printSession(vm)

	fmt.Println("== share an attachment ==")
	edit = vm.Platform.UI.EditDraft()
	edit.MustAdd("deck", "Attachment").
		SetAttr("name", "slides.pdf").
		SetAttr("sizeKB", 420).
		SetAttr("stream", "audio1").
		SetAttr("session", "s1")
	edit.Object("audio1").AddRef("attachments", "deck")
	if _, err := edit.Submit(); err != nil {
		return err
	}

	fmt.Println("== inject a stream failure; the middleware recovers ==")
	if err := vm.Service.InjectStreamFailure("s1", "audio1"); err != nil {
		return err
	}
	printSession(vm)

	fmt.Println("== teardown ==")
	if _, err := vm.Platform.UI.NewDraft().Submit(); err != nil {
		return err
	}
	fmt.Printf("open sessions: %v\n\n", vm.Service.SessionIDs())

	fmt.Println("== full service trace ==")
	fmt.Println(vm.Service.Trace())
	stats := vm.Platform.Controller.Stats()
	fmt.Printf("\nUCM stats: %d commands, %d via predefined actions, %d via intent models (%d generated, %d cache hits)\n",
		stats.Commands, stats.Case1, stats.Case2, stats.Generated, stats.CacheHits)
	return nil
}

func printSession(vm *cml.CVM) {
	sess := vm.Service.Session("s1")
	if sess == nil {
		fmt.Println("  (no session)")
		return
	}
	fmt.Printf("  participants: %v\n", sess.Participants())
	for _, id := range sess.Streams() {
		st := sess.Stream(id)
		fmt.Printf("  stream %s: media=%s bandwidth=%v up=%v\n", id, st.Media, st.Bandwidth, st.Up)
	}
	fmt.Println()
}
