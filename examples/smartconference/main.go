// Smart conference room: two domain-specific middleware platforms — a 2SVM
// smart space and a CVM communication platform — composed through an
// interoperability bridge (the §IX research direction, after Bencomo et
// al.). When a participant's badge enters the room, the bridge joins them
// to the conference call; when the badge leaves, it removes them. The room
// itself reacts through 2SML rules (the lamp tracks occupancy).
//
//	go run ./examples/smartconference
package main

import (
	"fmt"
	"log"

	"github.com/mddsm/mddsm/internal/bridge"
	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/domains/smartspace"
	"github.com/mddsm/mddsm/internal/script"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	room, err := smartspace.New()
	if err != nil {
		return err
	}
	cvm, err := cml.New()
	if err != nil {
		return err
	}

	fmt.Println("== model the room (2SML): occupancy rules for the lamp ==")
	roomModel := room.Platform.UI.NewDraft()
	roomModel.MustAdd("lamp1", "ObjectDecl").SetAttr("kind", "lamp")
	roomModel.MustAdd("lightsOn", "Rule").
		SetAttr("onEvent", "objectEntered").SetAttr("subject", "badge-ana").
		SetAttr("targetObject", "lamp1").SetAttr("prop", "on").SetAttr("value", "true")
	roomModel.MustAdd("lightsOff", "Rule").
		SetAttr("onEvent", "objectLeft").SetAttr("subject", "badge-ana").
		SetAttr("targetObject", "lamp1").SetAttr("prop", "on").SetAttr("value", "false")
	if _, err := roomModel.Submit(); err != nil {
		return err
	}

	fmt.Println("== model the conference (CML): an empty session with an audio bridge ==")
	call := cvm.Platform.UI.NewDraft()
	call.MustAdd("conf", "Session").SetAttr("topic", "weekly sync").SetRef("streams", "mix")
	call.MustAdd("mix", "Stream").
		SetAttr("media", "audio").SetAttr("bandwidth", 128).SetAttr("session", "conf")
	if _, err := call.Submit(); err != nil {
		return err
	}

	fmt.Println("== wire the bridge: room events drive the call ==")
	b := bridge.New("room-to-call").
		AddRule(bridge.MapRule("join", "objectEntered", "contains(object, 'badge-')",
			script.Template{Op: "addParticipant", Target: "session:conf",
				Args: map[string]string{"who": "{object}"}},
			bridge.PlatformTarget(cvm.Platform))).
		AddRule(bridge.MapRule("leave", "objectLeft", "contains(object, 'badge-')",
			script.Template{Op: "removeParticipant", Target: "session:conf",
				Args: map[string]string{"who": "{object}"}},
			bridge.PlatformTarget(cvm.Platform)))
	b.Attach(room.Platform)

	fmt.Println("\n== Ana and Bruno walk in; a cart rolls through ==")
	for _, obj := range []struct{ id, kind string }{
		{"lamp1", "lamp"},
		{"badge-ana", "badge"},
		{"badge-bruno", "badge"},
		{"cart-7", "cart"}, // not a badge: the bridge ignores it
	} {
		if err := room.Hub.ObjectEnters(obj.id, obj.kind); err != nil {
			return err
		}
	}
	printState(room, cvm)

	fmt.Println("== Ana leaves ==")
	if err := room.Hub.ObjectLeaves("badge-ana"); err != nil {
		return err
	}
	printState(room, cvm)

	if fails := b.Failures(); len(fails) > 0 {
		fmt.Println("bridge failures:", fails)
	} else {
		fmt.Println("bridge failures: none")
	}
	return nil
}

func printState(room *smartspace.SSVM, cvm *cml.CVM) {
	lamp, _ := room.Hub.Space().Object("lamp1")
	on, _ := lamp.Prop("on")
	fmt.Printf("  room: lamp on=%v, present=%v\n", on, room.Hub.Space().Present())
	if sess := cvm.Service.Session("conf"); sess != nil {
		fmt.Printf("  call: participants=%v\n\n", sess.Participants())
	}
}
