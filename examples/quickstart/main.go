// Quickstart: build a complete MD-DSM platform for a tiny custom domain in
// one file — the DSML, its synthesis semantics, a classifier taxonomy with
// procedures, the middleware model, and a simulated resource — then run an
// application model through it and update the model at runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/script"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The application DSML: a "greeting" domain — rooms hold banners.
	dsml := metamodel.New("greetml")
	dsml.MustAddClass(&metamodel.Class{Name: "Banner",
		Attributes: []metamodel.Attribute{
			{Name: "text", Kind: metamodel.KindString, Required: true},
			{Name: "loud", Kind: metamodel.KindBool, Default: false},
		},
	})

	// 2. Synthesis semantics: model changes become commands.
	sem := lts.New("greet-sem", "run")
	sem.On("run", "add-object:Banner", "", "run",
		lts.CommandTemplate{Op: "show", Target: "banner:{id}",
			Args: map[string]string{"text": "{text}", "loud": "{loud}"}})
	sem.On("run", "set-attr:Banner.text", "", "run",
		lts.CommandTemplate{Op: "retext", Target: "banner:{id}",
			Args: map[string]string{"text": "{new}"}})
	sem.On("run", "remove-object:Banner", "", "run",
		lts.CommandTemplate{Op: "hide", Target: "banner:{id}"})

	// 3. Domain-specific knowledge: the "show" operation is realised by
	//    intent-model generation over classified procedures.
	tax := dsc.NewTaxonomy()
	tax.MustAdd(&dsc.DSC{ID: "greet.render", Domain: "greet", Category: dsc.Operation})
	procs := []*registry.Procedure{
		{
			ID: "renderPlain", ClassifiedBy: "greet.render", Cost: 1, Reliability: 0.99,
			Unit: eu.NewUnit("renderPlain",
				eu.Invoke("paint", "{target}", "text", "text", "style", "'plain'")),
		},
		{
			ID: "renderNeon", ClassifiedBy: "greet.render", Cost: 5, Reliability: 0.95,
			Unit: eu.NewUnit("renderNeon",
				eu.If("loud == true",
					[]eu.Statement{eu.Invoke("paint", "{target}", "text", "text", "style", "'neon'")},
					eu.Invoke("paint", "{target}", "text", "text", "style", "'plain'"),
				)),
		},
	}

	// 4. The middleware model: all four layers authored with the builder.
	b := mwmeta.NewBuilder("GreetVM", "greet")
	b.UILayer("ui")
	b.SynthesisLayer("se", "greet-sem")
	b.ControllerLayer("ctl").
		Class("show", "greet.render").
		PassthroughAction("direct", "retext,hide", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Done().
		BrokerLayer("brk").
		PassthroughAction("pass", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "display")

	// 5. The simulated resource: a display that prints what it is told.
	display := broker.AdapterFunc(func(cmd script.Command) error {
		fmt.Printf("  display <- %s\n", cmd)
		return nil
	})

	platform, err := core.Build(core.Definition{
		Name:       "quickstart",
		DSML:       dsml,
		Middleware: b.Model(),
		DSK: core.DSK{
			Taxonomy:   tax,
			Procedures: procs,
			LTSes:      map[string]*lts.LTS{"greet-sem": sem},
			Adapters:   map[string]broker.Adapter{"display": display},
		},
	})
	if err != nil {
		return err
	}

	// 6. Author and submit an application model through the UI layer.
	fmt.Println("submitting the initial model:")
	draft := platform.UI.NewDraft()
	draft.MustAdd("hello", "Banner").SetAttr("text", "Hello, MD-DSM!").SetAttr("loud", true)
	if _, err := draft.Submit(); err != nil {
		return err
	}

	// 7. models@runtime: edit the running model; only the delta executes.
	fmt.Println("updating the running model:")
	edit := platform.UI.EditDraft()
	edit.Object("hello").SetAttr("text", "Updated at runtime")
	if _, err := edit.Submit(); err != nil {
		return err
	}

	fmt.Println("tearing down:")
	empty := platform.UI.NewDraft()
	if _, err := empty.Submit(); err != nil {
		return err
	}

	s := platform.Controller.Stats()
	fmt.Printf("controller stats: %d commands (%d predefined, %d intent-generated)\n",
		s.Commands, s.Case1, s.Case2)
	return nil
}
