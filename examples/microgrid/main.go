// Microgrid example: run MGridVM (paper §IV-B) over a simulated home
// plant — provisioning from a model, policy-driven energy balancing via
// intent-model generation, and autonomic load shedding when the battery
// reserve runs low.
//
//	go run ./examples/microgrid
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/mddsm/mddsm/internal/domains/mgrid"
	"github.com/mddsm/mddsm/internal/script"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	vm, err := mgrid.New()
	if err != nil {
		return err
	}

	fmt.Println("== provision the home plant from an MGridML model ==")
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("home", "Microgrid").
		SetAttr("name", "Casa Verde").
		SetRef("devices", "solar", "battery", "load", "gridtie").
		SetRef("policies", "reserve")
	d.MustAdd("solar", "DeviceCfg").SetAttr("kind", "solar").SetAttr("capacity", 5).SetAttr("output", 3)
	d.MustAdd("battery", "DeviceCfg").SetAttr("kind", "battery").SetAttr("capacity", 10)
	d.MustAdd("load", "DeviceCfg").SetAttr("kind", "load").SetAttr("capacity", 8).SetAttr("output", -5)
	d.MustAdd("gridtie", "DeviceCfg").SetAttr("kind", "gridtie").SetAttr("capacity", 20)
	d.MustAdd("reserve", "EnergyPolicy").SetAttr("name", "keep-reserve").SetAttr("reserve", 0.3)
	if _, err := d.Submit(); err != nil {
		return err
	}
	printTelemetry(vm)

	fmt.Println("== balance the 2 kW deficit (cost-optimal: grid import) ==")
	if err := vm.Platform.Execute(script.New("bal1").Append(
		script.NewCommand("balance", "grid").WithArg("headroom", 2))); err != nil {
		return err
	}
	printTelemetry(vm)

	fmt.Println("== green mode: the policy prefers battery-first balancing ==")
	vm.Platform.Controller.Context().Set("greenMode", true)
	if err := vm.Platform.Execute(script.New("bal2").Append(
		script.NewCommand("balance", "grid").WithArg("headroom", 2))); err != nil {
		return err
	}
	printTelemetry(vm)

	fmt.Println("== run 90 virtual minutes; the autonomic manager sheds load when the battery reserve is hit ==")
	vm.SetReserve(3)
	for i := 0; i < 3; i++ {
		vm.Plant.Tick(30 * time.Minute)
		if err := vm.SyncTelemetry(); err != nil {
			return err
		}
		tel := vm.Plant.Telemetry()
		fmt.Printf("  +%2d min: battery=%.1f kWh consumption=%.1f kW\n", (i+1)*30, tel.BatteryCharge, tel.Consumption)
	}
	for _, req := range vm.Platform.Broker.Autonomic().Handled() {
		fmt.Printf("  autonomic change executed: %s (request #%d)\n", req.Symptom, req.Seq)
	}

	fmt.Println("\n== plant command trace ==")
	fmt.Println(vm.Plant.Trace())
	return nil
}

func printTelemetry(vm *mgrid.MGridVM) {
	tel := vm.Plant.Telemetry()
	fmt.Printf("  generation=%.1f kW consumption=%.1f kW grid-import=%.1f kW battery=%.1f kWh\n\n",
		tel.Generation, tel.Consumption, tel.GridImport, tel.BatteryCharge)
}
