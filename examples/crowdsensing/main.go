// Crowdsensing example: run CSVM (paper §IV-D) — a device platform where a
// user authors a crowdsensing query as a CSML model, a provider platform
// executing it over a simulated fleet, and the on-the-fly model change
// that retargets the live query without restarting it.
//
//	go run ./examples/crowdsensing
package main

import (
	"fmt"
	"log"

	"github.com/mddsm/mddsm/internal/domains/csense"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	vm, err := csense.New(2026)
	if err != nil {
		return err
	}

	fmt.Println("== register the participating fleet ==")
	sensors := map[string][2]float64{"temp": {12, 34}, "noise": {35, 95}}
	for _, dev := range []struct{ id, region string }{
		{"phone-a", "downtown"}, {"phone-b", "downtown"},
		{"phone-c", "harbor"}, {"phone-d", "harbor"}, {"phone-e", "harbor"},
	} {
		if err := vm.Fleet.Register(dev.id, dev.region, sensors); err != nil {
			return err
		}
	}
	fmt.Printf("  devices: %v, regions: %v\n\n", vm.Fleet.DeviceIDs(), vm.Fleet.Regions())

	fmt.Println("== the user authors a query on the device ==")
	d := vm.Device.UI.NewDraft()
	d.MustAdd("heat", "Query").
		SetAttr("sensor", "temp").
		SetAttr("region", "downtown").
		SetAttr("aggregate", "avg")
	if _, err := d.Submit(); err != nil {
		return err
	}
	fmt.Printf("  active queries at the provider: %v\n\n", vm.Engine.ActiveQueries())

	fmt.Println("== three acquisition rounds ==")
	for i := 0; i < 3; i++ {
		for _, r := range vm.Engine.Tick() {
			fmt.Printf("  round %d: %s = %.2f over %d samples\n", r.Round, r.Query, r.Value, r.Samples)
		}
	}

	fmt.Println("\n== on-the-fly change: widen the live query to the whole fleet, switch to max ==")
	edit := vm.Device.UI.EditDraft()
	edit.Object("heat").SetAttr("region", "")
	edit.Object("heat").SetAttr("aggregate", "max")
	if _, err := edit.Submit(); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		for _, r := range vm.Engine.Tick() {
			fmt.Printf("  round %d: %s = %.2f over %d samples\n", r.Round, r.Query, r.Value, r.Samples)
		}
	}

	fmt.Println("\n== cancel the query ==")
	edit = vm.Device.UI.EditDraft()
	if err := edit.Remove("heat"); err != nil {
		return err
	}
	if _, err := edit.Submit(); err != nil {
		return err
	}
	fmt.Printf("  active queries: %v\n", vm.Engine.ActiveQueries())
	fmt.Printf("  results delivered back to the device: %d\n", len(vm.Results()))
	return nil
}
