package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/metamodel"
)

func data(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", name)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("testdata %s: %v", name, err)
	}
	return path
}

func TestRunCVM(t *testing.T) {
	if err := run([]string{"-domain", "cvm", "-model", data(t, "session.json")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMGridVM(t *testing.T) {
	if err := run([]string{"-domain", "mgridvm", "-model", data(t, "home.json")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunObs(t *testing.T) {
	for _, c := range [][]string{
		{"-domain", "cvm", "-model", data(t, "session.json"), "-obs"},
		{"-domain", "mgridvm", "-model", data(t, "home.json"), "-obs"},
	} {
		if err := run(c); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

func TestRunValidateFlags(t *testing.T) {
	defer metamodel.SetValidationMode(metamodel.ModeCompiled)
	for _, c := range [][]string{
		{"-domain", "cvm", "-model", data(t, "session.json"), "-validate-mode", "interpreted"},
		{"-domain", "cvm", "-model", data(t, "session.json"), "-validate-cache", "0"},
		{"-domain", "mgridvm", "-model", data(t, "home.json"), "-validate-cache", "8", "-obs"},
	} {
		if err := run(c); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
	if err := run([]string{"-domain", "cvm", "-model", data(t, "session.json"),
		"-validate-mode", "wat"}); err == nil {
		t.Error("bad -validate-mode must fail")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-domain", "cvm"}); err == nil {
		t.Error("missing -model must fail")
	}
	if err := run([]string{"-domain", "nope", "-model", data(t, "session.json")}); err == nil ||
		!strings.Contains(err.Error(), "unknown bundle") {
		t.Errorf("unknown domain: %v", err)
	}
	if err := run([]string{"-domain", "cvm", "-model", "missing.json"}); err == nil {
		t.Error("missing file must fail")
	}
	// A model for the wrong domain fails conformance inside the platform.
	if err := run([]string{"-domain", "cvm", "-model", data(t, "home.json")}); err == nil {
		t.Error("wrong-domain model must fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-domain", "cvm", "-model", bad}); err == nil {
		t.Error("bad JSON must fail")
	}
}
