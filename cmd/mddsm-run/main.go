// Command mddsm-run instantiates a domain platform and executes an
// application model supplied as JSON, printing the control script the
// submission produced and the resulting resource trace.
//
// Usage:
//
//	mddsm-run -domain cvm      -model session.json
//	mddsm-run -domain mgridvm  -model home.json
//	mddsm-run -domain cvm      -model session.json -snapshot state.json
//	mddsm-run -domain cvm      -restore state.json [-model next.json]
//
// -snapshot checkpoints the platform's models@runtime state after the run;
// -restore rebuilds the platform from such a checkpoint instead of
// building it fresh (a -model is then optional and submitted on top of the
// restored state). The two single-process domains (cvm, mgridvm) are
// runnable from model files; the distributed platforms (2svm, csvm) are
// demonstrated by the examples/ programs.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/domains/mgrid"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mddsm-run:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mddsm-run", flag.ContinueOnError)
	domain := fs.String("domain", "cvm", "platform to run: cvm or mgridvm")
	modelPath := fs.String("model", "", "application model JSON")
	withObs := fs.Bool("obs", false, "instrument the platform and print an observability snapshot")
	faults := fs.String("faults", "", `inject faults: "seed=N,site:kind[:p=0.5][:d=10ms][:n=3],..." (see internal/fault)`)
	pumpShards := fs.Int("pump-shards", 0, "event-pump shards (0 = GOMAXPROCS); same-source events stay ordered per shard key")
	snapshotPath := fs.String("snapshot", "", "checkpoint the platform state to this file after the run")
	restorePath := fs.String("restore", "", "rebuild the platform from this checkpoint instead of building it fresh")
	valMode := fs.String("validate-mode", "", "conformance validator: compiled or interpreted (default compiled with interpreted fallback)")
	valCache := fs.Int("validate-cache", metamodel.DefaultValidationCacheSize, "validation cache capacity in models; 0 disables memoised conformance checks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *valMode != "" {
		mode, err := metamodel.ParseValidationMode(*valMode)
		if err != nil {
			return err
		}
		metamodel.SetValidationMode(mode)
	}
	if *modelPath == "" && *restorePath == "" {
		return fmt.Errorf("need -model (or -restore)")
	}
	var m *metamodel.Model
	if *modelPath != "" {
		data, err := os.ReadFile(*modelPath)
		if err != nil {
			return err
		}
		if m, err = metamodel.UnmarshalModel(data); err != nil {
			return err
		}
	}
	var snap []byte
	if *restorePath != "" {
		var err error
		if snap, err = os.ReadFile(*restorePath); err != nil {
			return err
		}
	}

	var o *obs.Obs
	if *withObs {
		o = obs.New()
	}

	// Resolve the validation cache: shared by default, private when a
	// custom capacity is requested, off at capacity 0.
	var (
		vcache    *metamodel.ValidationCache
		vcacheSet bool
	)
	switch {
	case *valCache == 0:
		vcacheSet = true // vcache stays nil: memoisation off
	case *valCache != metamodel.DefaultValidationCacheSize:
		vcache = metamodel.NewValidationCache(*valCache)
		vcacheSet = true
	default:
		vcache = metamodel.SharedValidationCache()
	}
	if o != nil {
		metamodel.BindMetrics(o.MetricsOf())
		if vcache != nil {
			vcache.BindMetrics(o.MetricsOf())
		}
	}

	var inj *fault.Injector
	if *faults != "" {
		var err error
		inj, err = fault.Parse(*faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		if o != nil {
			inj.BindMetrics(o.MetricsOf())
		}
	}

	var (
		plat    *runtime.Platform
		traceFn func() string
	)
	switch *domain {
	case "cvm":
		var opts []cml.Option
		if o != nil {
			opts = append(opts, cml.WithObs(o))
		}
		if inj != nil {
			opts = append(opts, cml.WithFault(inj), cml.WithResilience(fault.DefaultResilience()))
		}
		if *pumpShards > 0 {
			opts = append(opts, cml.WithRuntime(runtime.WithPumpShards(*pumpShards)))
		}
		if vcacheSet {
			opts = append(opts, cml.WithRuntime(runtime.WithValidationCache(vcache)))
		}
		var (
			vm  *cml.CVM
			err error
		)
		if snap != nil {
			vm, err = cml.Restore(snap, opts...)
		} else {
			vm, err = cml.New(opts...)
		}
		if err != nil {
			return err
		}
		plat = vm.Platform
		traceFn = func() string { return vm.Service.Trace().String() }
	case "mgridvm":
		var opts []mgrid.Option
		if o != nil {
			opts = append(opts, mgrid.WithObs(o))
		}
		if inj != nil {
			opts = append(opts, mgrid.WithFault(inj), mgrid.WithResilience(fault.DefaultResilience()))
		}
		if *pumpShards > 0 {
			opts = append(opts, mgrid.WithRuntime(runtime.WithPumpShards(*pumpShards)))
		}
		if vcacheSet {
			opts = append(opts, mgrid.WithRuntime(runtime.WithValidationCache(vcache)))
		}
		var (
			vm  *mgrid.MGridVM
			err error
		)
		if snap != nil {
			vm, err = mgrid.Restore(snap, opts...)
		} else {
			vm, err = mgrid.New(opts...)
		}
		if err != nil {
			return err
		}
		plat = vm.Platform
		traceFn = func() string { return vm.Plant.Trace().String() }
	default:
		return fmt.Errorf("unknown domain %q (want cvm or mgridvm)", *domain)
	}

	var out *script.Script
	if m != nil {
		var err error
		out, err = plat.SubmitModel(m)
		if err != nil {
			return err
		}
	}
	if *snapshotPath != "" {
		data, err := plat.Checkpoint()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*snapshotPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("# checkpoint written to %s (%d bytes)\n", *snapshotPath, len(data))
	}

	report(plat, out, traceFn(), o, inj)
	return nil
}

// report prints the run's artefacts: the synthesised script (when a model
// was submitted), the resource trace, and — when armed — the observability
// snapshot and fault schedule.
func report(plat *runtime.Platform, out *script.Script, trace string, o *obs.Obs, inj *fault.Injector) {
	if out != nil {
		fmt.Println("# synthesised control script")
		fmt.Println(script.Format(out))
	} else if plat.Synthesis != nil {
		fmt.Println("# restored runtime model")
		fmt.Printf("synthesis state=%s seq=%d\n", plat.Synthesis.State(), plat.Synthesis.Seq())
	}
	fmt.Println("# resource trace")
	fmt.Println(trace)
	if o != nil {
		fmt.Println("# observability snapshot")
		fmt.Println(o.Snapshot())
	}
	if inj != nil {
		fmt.Println("# fault schedule")
		fmt.Printf("seed=%d injected=%d\n", inj.Seed(), inj.Injected())
		for _, line := range inj.Schedule() {
			fmt.Println(line)
		}
	}
}
