// Command mddsm-run instantiates a domain platform and executes an
// application model supplied as JSON, printing the control script the
// submission produced and the resulting resource trace.
//
// Usage:
//
//	mddsm-run -domain cml      -model session.json
//	mddsm-run -domain mgrid    -model home.json
//	mddsm-run -domain cml      -model session.json -snapshot state.json
//	mddsm-run -domain cml      -restore state.json [-model next.json]
//
// -snapshot checkpoints the platform's models@runtime state after the run;
// -restore rebuilds the platform from such a checkpoint instead of
// building it fresh (a -model is then optional and submitted on top of the
// restored state). Any bundle in the domains registry is runnable; the
// legacy spellings cvm and mgridvm are accepted for cml and mgrid.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mddsm/mddsm/internal/cliutil"
	"github.com/mddsm/mddsm/internal/domains"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mddsm-run:", err)
		os.Exit(1)
	}
}

// legacyNames maps the pre-registry domain spellings onto bundle names.
var legacyNames = map[string]string{"cvm": "cml", "mgridvm": "mgrid"}

func run(args []string) error {
	fs := flag.NewFlagSet("mddsm-run", flag.ContinueOnError)
	domain := fs.String("domain", "cml", "domain bundle to run: "+strings.Join(domains.Names(), ", "))
	modelPath := fs.String("model", "", "application model JSON")
	snapshotPath := fs.String("snapshot", "", "checkpoint the platform state to this file after the run")
	restorePath := fs.String("restore", "", "rebuild the platform from this checkpoint instead of building it fresh")
	common := cliutil.Register(fs).RegisterPump(fs).RegisterValidateCache(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" && *restorePath == "" {
		return fmt.Errorf("need -model (or -restore)")
	}
	var m *metamodel.Model
	if *modelPath != "" {
		data, err := os.ReadFile(*modelPath)
		if err != nil {
			return err
		}
		if m, err = metamodel.UnmarshalModel(data); err != nil {
			return err
		}
	}
	var snap []byte
	if *restorePath != "" {
		var err error
		if snap, err = os.ReadFile(*restorePath); err != nil {
			return err
		}
	}

	o, inj, rcfg, err := common.Resolve()
	if err != nil {
		return err
	}
	cfg := domains.Config{Runtime: rcfg, Obs: o, Injector: inj}
	if inj != nil {
		cfg.Resilience = fault.DefaultResilience()
	}

	bundle := *domain
	if canonical, ok := legacyNames[bundle]; ok {
		bundle = canonical
	}
	var inst *domains.Instance
	if snap != nil {
		inst, err = domains.Restore(bundle, snap, cfg)
	} else {
		inst, err = domains.New(bundle, cfg)
	}
	if err != nil {
		return err
	}
	plat := inst.Platform

	var out *script.Script
	if m != nil {
		if out, err = plat.SubmitModel(m); err != nil {
			return err
		}
	}
	if *snapshotPath != "" {
		data, err := plat.Checkpoint()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*snapshotPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("# checkpoint written to %s (%d bytes)\n", *snapshotPath, len(data))
	}

	report(plat, out, inst.Trace(), o, inj)
	return nil
}

// report prints the run's artefacts: the synthesised script (when a model
// was submitted), the resource trace, and — when armed — the observability
// snapshot and fault schedule.
func report(plat *runtime.Platform, out *script.Script, trace string, o *obs.Obs, inj *fault.Injector) {
	if out != nil {
		fmt.Println("# synthesised control script")
		fmt.Println(script.Format(out))
	} else if plat.Synthesis != nil {
		fmt.Println("# restored runtime model")
		fmt.Printf("synthesis state=%s seq=%d\n", plat.Synthesis.State(), plat.Synthesis.Seq())
	}
	fmt.Println("# resource trace")
	fmt.Println(trace)
	if o != nil {
		fmt.Println("# observability snapshot")
		fmt.Println(o.Snapshot())
	}
	if inj != nil {
		fmt.Println("# fault schedule")
		fmt.Printf("seed=%d injected=%d\n", inj.Seed(), inj.Injected())
		for _, line := range inj.Schedule() {
			fmt.Println(line)
		}
	}
}
