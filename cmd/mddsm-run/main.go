// Command mddsm-run instantiates a domain platform and executes an
// application model supplied as JSON, printing the control script the
// submission produced and the resulting resource trace.
//
// Usage:
//
//	mddsm-run -domain cvm      -model session.json
//	mddsm-run -domain mgridvm  -model home.json
//
// The two single-process domains (cvm, mgridvm) are runnable from model
// files; the distributed platforms (2svm, csvm) are demonstrated by the
// examples/ programs.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/domains/mgrid"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mddsm-run:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mddsm-run", flag.ContinueOnError)
	domain := fs.String("domain", "cvm", "platform to run: cvm or mgridvm")
	modelPath := fs.String("model", "", "application model JSON")
	withObs := fs.Bool("obs", false, "instrument the platform and print an observability snapshot")
	faults := fs.String("faults", "", `inject faults: "seed=N,site:kind[:p=0.5][:d=10ms][:n=3],..." (see internal/fault)`)
	pumpShards := fs.Int("pump-shards", 0, "event-pump shards (0 = GOMAXPROCS); same-source events stay ordered per shard key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("need -model")
	}
	data, err := os.ReadFile(*modelPath)
	if err != nil {
		return err
	}
	m, err := metamodel.UnmarshalModel(data)
	if err != nil {
		return err
	}

	var o *obs.Obs
	if *withObs {
		o = obs.New()
	}

	var inj *fault.Injector
	if *faults != "" {
		inj, err = fault.Parse(*faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		if o != nil {
			inj.BindMetrics(o.MetricsOf())
		}
	}

	var (
		out   *script.Script
		trace string
	)
	switch *domain {
	case "cvm":
		var opts []cml.Option
		if o != nil {
			opts = append(opts, cml.WithObs(o))
		}
		if inj != nil {
			opts = append(opts, cml.WithFault(inj), cml.WithResilience(fault.DefaultResilience()))
		}
		if *pumpShards > 0 {
			opts = append(opts, cml.WithRuntime(runtime.WithPumpShards(*pumpShards)))
		}
		vm, err := cml.New(opts...)
		if err != nil {
			return err
		}
		out, err = vm.Platform.SubmitModel(m)
		if err != nil {
			return err
		}
		trace = vm.Service.Trace().String()
	case "mgridvm":
		var opts []mgrid.Option
		if o != nil {
			opts = append(opts, mgrid.WithObs(o))
		}
		if inj != nil {
			opts = append(opts, mgrid.WithFault(inj), mgrid.WithResilience(fault.DefaultResilience()))
		}
		if *pumpShards > 0 {
			opts = append(opts, mgrid.WithRuntime(runtime.WithPumpShards(*pumpShards)))
		}
		vm, err := mgrid.New(opts...)
		if err != nil {
			return err
		}
		out, err = vm.Platform.SubmitModel(m)
		if err != nil {
			return err
		}
		trace = vm.Plant.Trace().String()
	default:
		return fmt.Errorf("unknown domain %q (want cvm or mgridvm)", *domain)
	}

	fmt.Println("# synthesised control script")
	fmt.Println(script.Format(out))
	fmt.Println("# resource trace")
	fmt.Println(trace)
	if o != nil {
		fmt.Println("# observability snapshot")
		fmt.Println(o.Snapshot())
	}
	if inj != nil {
		fmt.Println("# fault schedule")
		fmt.Printf("seed=%d injected=%d\n", inj.Seed(), inj.Injected())
		for _, line := range inj.Schedule() {
			fmt.Println(line)
		}
	}
	return nil
}
