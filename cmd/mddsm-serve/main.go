// Command mddsm-serve is the multi-tenant MD-DSM platform daemon: one
// process hosting a platform per tenant, each keyed by a registered domain
// bundle, multiplexed over the newline-JSON wire of internal/remote.
//
// Usage:
//
//	mddsm-serve -addr 127.0.0.1:7433 -max-resident 64 -event-rate 1000
//
// Clients drive tenants through control verbs (create, evict, stat,
// snapshot, submit, tenants, obs) and tenant-stamped command/event frames;
// see remote.Client.Control and remote.Client.Session. Past -max-resident
// live platforms the least-recently-used tenant is checkpointed and
// parked; the next frame naming it restores it transparently. SIGINT and
// SIGTERM drain every resident platform before exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/mddsm/mddsm/internal/cliutil"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "mddsm-serve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives, then drains.
// ready (optional) receives the bound address once listening; tests use it
// to connect and to shut down via the stop channel.
func run(args []string, ready func(addr string), stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("mddsm-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7433", "listen address")
	maxResident := fs.Int("max-resident", serve.DefaultMaxResident,
		"max simultaneously live tenant platforms; the overflow is checkpointed and parked")
	eventRate := fs.Float64("event-rate", 0, "per-tenant sustained events/second (0 = unlimited)")
	eventBurst := fs.Int("event-burst", 0, "per-tenant event burst size (default 1 when -event-rate is set)")
	common := cliutil.Register(fs).RegisterPump(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, inj, rcfg, err := common.Resolve()
	if err != nil {
		return err
	}

	s := serve.NewServer(serve.Config{
		MaxResident: *maxResident,
		Quota: serve.Quota{
			Runtime:    rcfg,
			EventRate:  *eventRate,
			EventBurst: *eventBurst,
		},
		Obs: o,
	})
	var ropts []remote.Option
	if inj != nil {
		ropts = append(ropts, remote.WithInjector(inj))
	}
	if o != nil {
		ropts = append(ropts, remote.WithMetrics(o.MetricsOf()))
	}
	srv, err := remote.NewRouterServer(s, *addr, ropts...)
	if err != nil {
		return err
	}
	fmt.Printf("mddsm-serve: listening on %s (max-resident %d)\n", srv.Addr(), *maxResident)
	if ready != nil {
		ready(srv.Addr())
	}

	<-stop
	fmt.Println("mddsm-serve: draining")
	srv.Close() // stop accepting and drop connections first
	s.Close()   // then drain every resident platform
	if o != nil {
		fmt.Println("# observability snapshot")
		fmt.Println(o.Snapshot())
	}
	return nil
}
