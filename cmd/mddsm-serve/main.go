// Command mddsm-serve is the multi-tenant MD-DSM platform daemon: one
// process hosting a platform per tenant, each keyed by a registered domain
// bundle, multiplexed over the newline-JSON wire of internal/remote.
//
// Usage:
//
//	mddsm-serve -addr 127.0.0.1:7433 -max-resident 64 -event-rate 1000
//	mddsm-serve -addr 127.0.0.1:7433 -http :8080
//	mddsm-serve -addr 127.0.0.1:7433 -node-id n0 \
//	    -peers n0=127.0.0.1:7433,n1=127.0.0.1:7434,n2=127.0.0.1:7435 \
//	    -http :8080 -http-peers n1=127.0.0.1:8081,n2=127.0.0.1:8082
//
// Clients drive tenants through control verbs (create, evict, stat,
// snapshot, submit, tenants, obs) and tenant-stamped command/event frames;
// see remote.Client.Control and remote.Client.Session. Past -max-resident
// live platforms the least-recently-used tenant is checkpointed and
// parked; the next frame naming it restores it transparently. SIGINT and
// SIGTERM drain every resident platform before exit.
//
// With -node-id and -peers the daemon joins a cluster of serve nodes that
// acts as one logical broker: tenants are placed by consistent hash across
// the live members, frames for a tenant owned elsewhere are forwarded
// at-least-once to its owner, and a member that stops heartbeating has its
// tenants adopted from their last replica by the survivors (see
// internal/cluster). The peer list may include this node; its own entry is
// ignored.
//
// With -http the same process additionally serves the auto-provisioned
// REST/SSE API of internal/api — per-metamodel object CRUD, event posting,
// /watch delta streams, /metrics and /healthz. In a cluster, -http-peers
// maps member IDs to their HTTP addresses so requests for tenants placed
// elsewhere answer with 307 redirects.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/mddsm/mddsm/internal/api"
	"github.com/mddsm/mddsm/internal/cliutil"
	"github.com/mddsm/mddsm/internal/cluster"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "mddsm-serve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives, then drains.
// ready (optional) receives the bound address once listening; tests use it
// to connect and to shut down via the stop channel.
func run(args []string, ready func(addr string), stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("mddsm-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7433", "listen address")
	maxResident := fs.Int("max-resident", serve.DefaultMaxResident,
		"max simultaneously live tenant platforms; the overflow is checkpointed and parked")
	eventRate := fs.Float64("event-rate", 0, "per-tenant sustained events/second (0 = unlimited)")
	eventBurst := fs.Int("event-burst", 0, "per-tenant event burst size (default 1 when -event-rate is set)")
	nodeID := fs.String("node-id", "", "cluster member name; empty runs standalone")
	peersFlag := fs.String("peers", "", "comma-separated cluster members as id=host:port (self is ignored; requires -node-id)")
	heartbeat := fs.Duration("heartbeat", 500*time.Millisecond, "cluster heartbeat interval (with -node-id)")
	httpAddr := fs.String("http", "", "HTTP listen address for the auto-provisioned REST/SSE API (empty disables)")
	httpPeers := fs.String("http-peers", "", "comma-separated peer HTTP addresses as id=host:port for placement redirects (with -http and -node-id)")
	common := cliutil.Register(fs).RegisterPump(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, inj, rcfg, err := common.Resolve()
	if err != nil {
		return err
	}

	s := serve.NewServer(serve.Config{
		MaxResident: *maxResident,
		Quota: serve.Quota{
			Runtime:    rcfg,
			EventRate:  *eventRate,
			EventBurst: *eventBurst,
		},
		Obs: o,
	})
	var router remote.Router = s
	var node *cluster.Node
	if *peersFlag != "" && *nodeID == "" {
		s.Close()
		return fmt.Errorf("-peers requires -node-id")
	}
	if *nodeID != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			s.Close()
			return err
		}
		node, err = cluster.New(s, cluster.Config{
			NodeID:            *nodeID,
			Peers:             peers,
			HeartbeatInterval: *heartbeat,
			Obs:               o,
			Injector:          inj,
		})
		if err != nil {
			s.Close()
			return err
		}
		router = node
	}
	var ropts []remote.Option
	if inj != nil {
		ropts = append(ropts, remote.WithInjector(inj))
	}
	if o != nil {
		ropts = append(ropts, remote.WithMetrics(o.MetricsOf()))
	}
	srv, err := remote.NewRouterServer(router, *addr, ropts...)
	if err != nil {
		if node != nil {
			node.Close()
		}
		s.Close()
		return err
	}
	var httpSrv *http.Server
	var apiSrv *api.Server
	if *httpAddr != "" {
		peerHTTP, err := parseHTTPPeers(*httpPeers)
		if err != nil {
			srv.Close()
			if node != nil {
				node.Close()
			}
			s.Close()
			return err
		}
		apiSrv, err = api.New(api.Config{Serve: s, Cluster: node, PeerHTTP: peerHTTP, Obs: o})
		if err != nil {
			srv.Close()
			if node != nil {
				node.Close()
			}
			s.Close()
			return err
		}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			srv.Close()
			if node != nil {
				node.Close()
			}
			s.Close()
			return err
		}
		httpSrv = &http.Server{Handler: apiSrv}
		go httpSrv.Serve(ln)
		fmt.Printf("mddsm-serve: http API on %s\n", ln.Addr())
	}
	if node != nil {
		fmt.Printf("mddsm-serve: listening on %s (max-resident %d, cluster member %s, %d peers)\n",
			srv.Addr(), *maxResident, *nodeID, len(node.Members())-1)
	} else {
		fmt.Printf("mddsm-serve: listening on %s (max-resident %d)\n", srv.Addr(), *maxResident)
	}
	if ready != nil {
		ready(srv.Addr())
	}

	<-stop
	fmt.Println("mddsm-serve: draining")
	if httpSrv != nil {
		apiSrv.Close() // disconnect SSE watchers so handlers return
		httpSrv.Close()
	}
	srv.Close() // stop accepting and drop connections first
	if node != nil {
		node.Close() // stop heartbeats and peer links
	}
	s.Close() // then drain every resident platform
	if o != nil {
		fmt.Println("# observability snapshot")
		fmt.Println(o.Snapshot())
	}
	return nil
}

// parseHTTPPeers turns "n0=host:port,n1=host:port" into the placement
// redirect map member ID -> HTTP base address.
func parseHTTPPeers(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -http-peers entry %q (want id=host:port)", part)
		}
		out[id] = addr
	}
	return out, nil
}

// parsePeers turns "n0=host:port,n1=host:port" into the cluster peer list.
func parsePeers(spec string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", part)
		}
		peers = append(peers, cluster.Peer{ID: id, Addr: addr})
	}
	return peers, nil
}
