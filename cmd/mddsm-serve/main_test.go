package main

import (
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/remote"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, provisions a
// tenant over the wire, posts an event, and shuts down via the signal
// channel (the SIGTERM drain path).
func TestDaemonLifecycle(t *testing.T) {
	stop := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-max-resident", "2", "-obs"},
			func(addr string) { addrCh <- addr }, stop)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never came up")
	}

	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Control("create", "acme", map[string]any{"bundle": "mgrid"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Session("acme").PostEvent(broker.Event{Name: "telemetry", Attrs: map[string]any{}}); err != nil {
		t.Fatal(err)
	}
	attrs, err := c.Control("stat", "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if attrs["resident"] != true {
		t.Errorf("stat = %v", attrs)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-addr", "not-an-address"}, nil, nil); err == nil {
		t.Error("bad address must fail")
	}
	if err := run([]string{"-validate-mode", "wat"}, nil, nil); err == nil {
		t.Error("bad validate mode must fail")
	}
}
