package main

import (
	"fmt"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/remote"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, provisions a
// tenant over the wire, posts an event, and shuts down via the signal
// channel (the SIGTERM drain path).
func TestDaemonLifecycle(t *testing.T) {
	stop := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-max-resident", "2", "-obs"},
			func(addr string) { addrCh <- addr }, stop)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never came up")
	}

	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Control("create", "acme", map[string]any{"bundle": "mgrid"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Session("acme").PostEvent(broker.Event{Name: "telemetry", Attrs: map[string]any{}}); err != nil {
		t.Fatal(err)
	}
	attrs, err := c.Control("stat", "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if attrs["resident"] != true {
		t.Errorf("stat = %v", attrs)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-addr", "not-an-address"}, nil, nil); err == nil {
		t.Error("bad address must fail")
	}
	if err := run([]string{"-validate-mode", "wat"}, nil, nil); err == nil {
		t.Error("bad validate mode must fail")
	}
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them — good enough for wiring a test cluster whose members must know
// each other's address before any of them starts.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// TestClusterFlags boots two daemons as one logical broker and drives a
// tenant through the member that does NOT own it: placement proxies the
// control plane and forwards the events to the owner.
func TestClusterFlags(t *testing.T) {
	addrs := freePorts(t, 2)
	peers := fmt.Sprintf("n0=%s,n1=%s", addrs[0], addrs[1])
	stops := make([]chan os.Signal, 2)
	dones := make([]chan error, 2)
	for i := range stops {
		stops[i] = make(chan os.Signal, 1)
		dones[i] = make(chan error, 1)
		ready := make(chan string, 1)
		args := []string{"-addr", addrs[i], "-node-id", fmt.Sprintf("n%d", i),
			"-peers", peers, "-heartbeat", "50ms"}
		go func(i int) {
			dones[i] <- run(args, func(addr string) { ready <- addr }, stops[i])
		}(i)
		select {
		case <-ready:
		case err := <-dones[i]:
			t.Fatalf("member %d exited early: %v", i, err)
		case <-time.After(5 * time.Second):
			t.Fatalf("member %d never came up", i)
		}
	}
	shutdown := func() {
		for i := range stops {
			stops[i] <- syscall.SIGTERM
		}
		for i := range dones {
			select {
			case err := <-dones[i]:
				if err != nil {
					t.Errorf("member %d drain: %v", i, err)
				}
			case <-time.After(10 * time.Second):
				t.Errorf("member %d did not drain", i)
			}
		}
	}
	defer shutdown()

	c, err := remote.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mem, err := c.Control("cluster.members", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if list, _ := mem["members"].([]any); len(list) != 2 {
		t.Fatalf("cluster.members = %v, want 2 members", mem)
	}
	// Create a spread of tenants through member 0 only: placement must
	// land some on each member, proxying the creates that belong to n1.
	c1, err := remote.Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	names := make([]string, 6)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
		if _, err := c.Control("create", names[i], map[string]any{"bundle": "cml"}); err != nil {
			t.Fatal(err)
		}
	}
	local := func(cl *remote.Client) int {
		out, err := cl.Control("tenants", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		list, _ := out["tenants"].([]any)
		return len(list)
	}
	n0Local, n1Local := local(c), local(c1)
	if n0Local == 0 || n1Local == 0 || n0Local+n1Local != len(names) {
		t.Fatalf("placement did not spread: n0 hosts %d, n1 hosts %d", n0Local, n1Local)
	}
	// Drive every tenant through member 0; posts for n1's tenants cross
	// the wire. Stat through member 1 proxies the other way.
	for i, name := range names {
		if err := c.Session(name).PostEvent(broker.Event{Name: "telemetry", Attrs: map[string]any{"n": i}}); err != nil {
			t.Fatalf("post %s via n0: %v", name, err)
		}
	}
	for _, name := range names {
		st, err := c1.Control("stat", name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st["bundle"] != "cml" {
			t.Errorf("stat %s through member 1 = %v", name, st)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("n0=127.0.0.1:1, n1=127.0.0.1:2")
	if err != nil || len(peers) != 2 || peers[1].ID != "n1" {
		t.Fatalf("parsePeers = %v, %v", peers, err)
	}
	if _, err := parsePeers("garbage"); err == nil {
		t.Error("malformed entry must fail")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-peers", "n0=1:1"}, nil, nil); err == nil {
		t.Error("-peers without -node-id must fail")
	}
}
