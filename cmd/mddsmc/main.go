// Command mddsmc is the MD-DSM model compiler/validator: it loads
// metamodel and model JSON documents, checks conformance, and diffs model
// versions — the command-line face of the metamodel framework.
//
// Usage:
//
//	mddsmc validate -metamodel mm.json -model m.json
//	mddsmc validate-middleware -model mw.json
//	mddsmc diff -metamodel mm.json -old a.json -new b.json
//	mddsmc export-middleware-metamodel
//	mddsmc coverage -domain cvm|mgridvm|2svm|csvm-provider|csvm-device
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/domains/csense"
	"github.com/mddsm/mddsm/internal/domains/mgrid"
	"github.com/mddsm/mddsm/internal/domains/smartspace"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mddsmc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mddsmc <validate|validate-middleware|diff|export-middleware-metamodel> [flags]")
	}
	switch args[0] {
	case "validate":
		return cmdValidate(args[1:])
	case "validate-middleware":
		return cmdValidateMiddleware(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	case "export-middleware-metamodel":
		return cmdExportMM()
	case "coverage":
		return cmdCoverage(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func loadMetamodel(path string) (*metamodel.Metamodel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return metamodel.UnmarshalMetamodel(data)
}

func loadModel(path string) (*metamodel.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return metamodel.UnmarshalModel(data)
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	mmPath := fs.String("metamodel", "", "metamodel JSON")
	mPath := fs.String("model", "", "model JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mmPath == "" || *mPath == "" {
		return fmt.Errorf("validate needs -metamodel and -model")
	}
	mm, err := loadMetamodel(*mmPath)
	if err != nil {
		return err
	}
	m, err := loadModel(*mPath)
	if err != nil {
		return err
	}
	if err := m.Validate(mm); err != nil {
		return fmt.Errorf("model does not conform to %s: %w", mm.Name, err)
	}
	fmt.Printf("ok: %d objects conform to metamodel %s\n", m.Len(), mm.Name)
	return nil
}

func cmdValidateMiddleware(args []string) error {
	fs := flag.NewFlagSet("validate-middleware", flag.ContinueOnError)
	mPath := fs.String("model", "", "middleware model JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mPath == "" {
		return fmt.Errorf("validate-middleware needs -model")
	}
	m, err := loadModel(*mPath)
	if err != nil {
		return err
	}
	if err := m.Validate(mwmeta.MM()); err != nil {
		return fmt.Errorf("middleware model does not conform: %w", err)
	}
	fmt.Printf("ok: middleware model with %d objects conforms to %s\n", m.Len(), mwmeta.Name)
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	mmPath := fs.String("metamodel", "", "metamodel JSON (optional, validates both sides)")
	oldPath := fs.String("old", "", "old model JSON")
	newPath := fs.String("new", "", "new model JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("diff needs -old and -new")
	}
	oldM, err := loadModel(*oldPath)
	if err != nil {
		return err
	}
	newM, err := loadModel(*newPath)
	if err != nil {
		return err
	}
	if *mmPath != "" {
		mm, err := loadMetamodel(*mmPath)
		if err != nil {
			return err
		}
		if err := oldM.Validate(mm); err != nil {
			return fmt.Errorf("old model: %w", err)
		}
		if err := newM.Validate(mm); err != nil {
			return fmt.Errorf("new model: %w", err)
		}
	}
	changes := metamodel.Diff(oldM, newM)
	if changes.Empty() {
		fmt.Println("models are equivalent")
		return nil
	}
	fmt.Println(changes)
	return nil
}

// builtinDefinitions maps domain names to their MD-DSM definitions for the
// coverage subcommand.
func builtinDefinitions() map[string]core.Definition {
	return map[string]core.Definition{
		"cvm": {
			Name: "cvm", DSML: cml.Metamodel(), Middleware: cml.MiddlewareModel(),
			DSK: core.DSK{Taxonomy: cml.Taxonomy(), Procedures: cml.Procedures(),
				LTSes: map[string]*lts.LTS{cml.LTSName: cml.SynthesisLTS()}},
		},
		"mgridvm": {
			Name: "mgridvm", DSML: mgrid.Metamodel(), Middleware: mgrid.MiddlewareModel(),
			DSK: core.DSK{Taxonomy: mgrid.Taxonomy(), Procedures: mgrid.Procedures(),
				LTSes: map[string]*lts.LTS{mgrid.LTSName: mgrid.SynthesisLTS()}},
		},
		"2svm": {
			Name: "2svm", DSML: smartspace.Metamodel(), Middleware: smartspace.CentralModel(),
			DSK: core.DSK{LTSes: map[string]*lts.LTS{smartspace.LTSName: smartspace.SynthesisLTS()}},
		},
		"csvm-provider": {
			Name: "csvm-provider", DSML: csense.Metamodel(), Middleware: csense.ProviderModel(),
			DSK: core.DSK{LTSes: map[string]*lts.LTS{csense.ProviderLTSName: csense.ProviderLTS()}},
		},
		"csvm-device": {
			Name: "csvm-device", DSML: csense.Metamodel(), Middleware: csense.DeviceModel(),
			DSK: core.DSK{LTSes: map[string]*lts.LTS{csense.DeviceLTSName: csense.DeviceLTS()}},
		},
	}
}

// cmdCoverage prints the DSML-support assurance report for a built-in
// domain definition (core.AnalyzeCoverage).
func cmdCoverage(args []string) error {
	fs := flag.NewFlagSet("coverage", flag.ContinueOnError)
	domain := fs.String("domain", "cvm", "built-in domain definition to analyse")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defs := builtinDefinitions()
	def, ok := defs[*domain]
	if !ok {
		names := make([]string, 0, len(defs))
		for n := range defs {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown domain %q (want one of %s)", *domain, strings.Join(names, ", "))
	}
	cov, err := core.AnalyzeCoverage(def)
	if err != nil {
		return err
	}
	fmt.Printf("domain %s:\n%s", *domain, cov)
	if !cov.Complete() {
		return fmt.Errorf("domain %s has unroutable operations", *domain)
	}
	return nil
}

func cmdExportMM() error {
	data, err := metamodel.MarshalMetamodel(mwmeta.MM())
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(data, '\n'))
	return err
}
