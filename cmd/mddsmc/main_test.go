package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// data resolves a testdata file at the repository root.
func data(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", name)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("testdata %s: %v", name, err)
	}
	return path
}

func TestValidateOK(t *testing.T) {
	err := run([]string{"validate",
		"-metamodel", data(t, "toy-metamodel.json"),
		"-model", data(t, "toy-model-a.json")})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModel(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"metamodel":"toy","objects":[{"id":"x","class":"Shape"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"validate",
		"-metamodel", data(t, "toy-metamodel.json"), "-model", bad})
	if err == nil || !strings.Contains(err.Error(), "does not conform") {
		t.Fatalf("got %v", err)
	}
}

func TestDiff(t *testing.T) {
	err := run([]string{"diff",
		"-metamodel", data(t, "toy-metamodel.json"),
		"-old", data(t, "toy-model-a.json"),
		"-new", data(t, "toy-model-b.json")})
	if err != nil {
		t.Fatal(err)
	}
	// Self-diff reports equivalence.
	err = run([]string{"diff",
		"-old", data(t, "toy-model-a.json"),
		"-new", data(t, "toy-model-a.json")})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidateMiddleware(t *testing.T) {
	dir := t.TempDir()
	// Export and re-validate a trivial middleware model.
	mw := filepath.Join(dir, "mw.json")
	content := `{"metamodel":"mddsm-middleware","objects":[
	  {"id":"platform","class":"Platform","attrs":{"name":"p"},"refs":{"layers":["b"]}},
	  {"id":"b","class":"BrokerLayer","attrs":{"name":"brk"}}
	]}`
	if err := os.WriteFile(mw, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate-middleware", "-model", mw}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"metamodel":"x","objects":[{"id":"a","class":"Bogus"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate-middleware", "-model", bad}); err == nil {
		t.Fatal("bad middleware model must fail")
	}
}

func TestExportMiddlewareMetamodel(t *testing.T) {
	if err := run([]string{"export-middleware-metamodel"}); err != nil {
		t.Fatal(err)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"validate"},
		{"validate-middleware"},
		{"diff"},
		{"validate", "-metamodel", "nope.json", "-model", "nope.json"},
		{"diff", "-old", "nope.json", "-new", "nope.json"},
		{"validate-middleware", "-model", "nope.json"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestDiffValidatesSides(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"metamodel":"toy","objects":[{"id":"x","class":"Nope"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"diff",
		"-metamodel", data(t, "toy-metamodel.json"),
		"-old", bad,
		"-new", data(t, "toy-model-a.json")})
	if err == nil || !strings.Contains(err.Error(), "old model") {
		t.Fatalf("got %v", err)
	}
}

func TestCoverageSubcommand(t *testing.T) {
	for _, d := range []string{"cvm", "mgridvm", "2svm", "csvm-provider", "csvm-device"} {
		if err := run([]string{"coverage", "-domain", d}); err != nil {
			t.Errorf("coverage %s: %v", d, err)
		}
	}
	if err := run([]string{"coverage", "-domain", "nope"}); err == nil {
		t.Error("unknown domain must fail")
	}
}
