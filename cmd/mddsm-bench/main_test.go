package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	// The cheap experiments run as part of the CLI test; e2 (timing
	// sweeps) is exercised with a tiny iteration count.
	for _, e := range []string{"e1", "e3", "e4", "e5", "e6"} {
		if err := run([]string{"-e", e, "-root", "../.."}); err != nil {
			t.Errorf("experiment %s: %v", e, err)
		}
	}
	if err := run([]string{"-e", "e2", "-iters", "2"}); err != nil {
		t.Errorf("experiment e2: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-e", "e99"}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("got %v", err)
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("bad flag must fail")
	}
}
