package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/experiments"
	"github.com/mddsm/mddsm/internal/metamodel"
)

func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	// The cheap experiments run as part of the CLI test; e2 (timing
	// sweeps) is exercised with a tiny iteration count.
	for _, e := range []string{"e1", "e3", "e4", "e5", "e6"} {
		if err := run([]string{"-e", e, "-root", "../.."}); err != nil {
			t.Errorf("experiment %s: %v", e, err)
		}
	}
	if err := run([]string{"-e", "e2", "-iters", "2"}); err != nil {
		t.Errorf("experiment e2: %v", err)
	}
}

func TestRunValidateReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timing loops")
	}
	out := filepath.Join(t.TempDir(), "BENCH_validate.json")
	if err := run([]string{"-e", "validate", "-root", "../..", "-json", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.ValidateReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Models) != 2 {
		t.Fatalf("report covers %d models, want 2", len(rep.Models))
	}
	for _, m := range rep.Models {
		if m.Speedup <= 0 || m.CompiledNsOp <= 0 || m.InterpretedNsOp <= 0 {
			t.Errorf("%s: degenerate timings: %+v", m.Model, m)
		}
	}
	// The validator mode override parses and rejects like the run CLI.
	defer metamodel.SetValidationMode(metamodel.ModeCompiled)
	if err := run([]string{"-e", "validate", "-root", "../..", "-validate-mode", "interpreted"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-e", "validate", "-validate-mode", "wat"}); err == nil {
		t.Error("bad -validate-mode must fail")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-e", "e99"}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("got %v", err)
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestRunMixedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the mixed-workload soak")
	}
	out := filepath.Join(t.TempDir(), "BENCH_mixed.json")
	if err := run([]string{"-e", "mixed", "-json", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.MixedReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.AccountingExact {
		t.Error("mixed report violates exact accounting")
	}
	if rep.Tenants < 100 || len(rep.Bundles) == 0 {
		t.Errorf("degenerate mixed report: %+v", rep)
	}
}
