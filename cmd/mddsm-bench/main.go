// Command mddsm-bench regenerates the paper's evaluation results (§VII)
// as printed reports. Without flags it runs every experiment; -e selects
// one (e1..e6, or "pump" for the sharded event-pump throughput report).
//
// Usage:
//
//	mddsm-bench [-e e1|e2|e3|e4|e5|e6|pump] [-iters N] [-root DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mddsm/mddsm/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mddsm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mddsm-bench", flag.ContinueOnError)
	exp := fs.String("e", "", "experiment to run (e1..e6, pump); empty runs all")
	withObs := fs.Bool("obs", false, "print per-phase span counts for an instrumented run instead of the experiments")
	faults := fs.String("faults", "", `with -obs: inject faults "seed=N,site:kind[:p=..][:d=..][:n=..],..." into the instrumented run`)
	iters := fs.Int("iters", 50, "iterations per scenario for timing experiments (e2)")
	root := fs.String("root", "", "repository root for source-size accounting (e5); auto-detected when empty")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := os.Stdout
	if *faults != "" {
		if !*withObs {
			return fmt.Errorf("-faults requires -obs")
		}
		return experiments.ReportObsFaults(w, *faults)
	}
	if *withObs {
		return experiments.ReportObs(w)
	}
	runE5 := func() error {
		dir := *root
		if dir == "" {
			var err error
			dir, err = experiments.FindRepoRoot(".")
			if err != nil {
				return fmt.Errorf("e5 needs the repository sources; pass -root: %w", err)
			}
		}
		return experiments.ReportE5(w, dir)
	}

	all := map[string]func() error{
		"e1":   func() error { return experiments.ReportE1(w) },
		"e2":   func() error { return experiments.ReportE2(w, *iters) },
		"e3":   func() error { return experiments.ReportE3(w) },
		"e4":   func() error { return experiments.ReportE4(w) },
		"e5":   runE5,
		"e6":   func() error { return experiments.ReportE6(w) },
		"pump": func() error { return experiments.ReportPump(w) },
	}
	if *exp != "" {
		fn, ok := all[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want e1..e6 or pump)", *exp)
		}
		return fn()
	}
	for _, name := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "pump"} {
		if err := all[name](); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
