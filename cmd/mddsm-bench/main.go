// Command mddsm-bench regenerates the paper's evaluation results (§VII)
// as printed reports. Without flags it runs every experiment; -e selects
// one (e1..e6, "pump" for the sharded event-pump throughput report,
// "validate" for the compiled-vs-interpreted conformance comparison,
// "serve" for the multi-tenant capacity ladder, "mixed" for the
// heterogeneous mixed-workload soak over generated synthetic domains, or
// "cluster" for the multi-node broker ladder: cross-node delivery,
// live migration, and node-kill failover at 2/3/5 nodes, or "http" for
// the models-over-HTTP REST/SSE write ladder).
//
// Usage:
//
//	mddsm-bench [-e e1|e2|e3|e4|e5|e6|pump|validate|serve|mixed|cluster|http] [-iters N] [-root DIR]
//	mddsm-bench -e validate -json BENCH_validate.json
//	mddsm-bench -e mixed -json BENCH_mixed.json
//	mddsm-bench -e pump -json BENCH_pump.json
//	mddsm-bench -e cluster -json BENCH_cluster.json
//	mddsm-bench -e http -json BENCH_http.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mddsm/mddsm/internal/cliutil"
	"github.com/mddsm/mddsm/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mddsm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mddsm-bench", flag.ContinueOnError)
	exp := fs.String("e", "", "experiment to run (e1..e6, pump, validate, serve, mixed, cluster, http); empty runs all")
	iters := fs.Int("iters", 50, "iterations per scenario for timing experiments (e2)")
	root := fs.String("root", "", "repository root for source-size accounting (e5) and bundled models (validate); auto-detected when empty")
	jsonOut := fs.String("json", "", `with -e validate/serve/mixed/pump/cluster/http: write the machine-readable report to this path (e.g. BENCH_pump.json)`)
	common := cliutil.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := common.ApplyValidationMode(); err != nil {
		return err
	}

	w := os.Stdout
	if common.Faults != "" {
		if !common.Obs {
			return fmt.Errorf("-faults requires -obs")
		}
		return experiments.ReportObsFaults(w, common.Faults)
	}
	if common.Obs {
		return experiments.ReportObs(w)
	}
	repoRoot := func(why string) (string, error) {
		if *root != "" {
			return *root, nil
		}
		dir, err := experiments.FindRepoRoot(".")
		if err != nil {
			return "", fmt.Errorf("%s; pass -root: %w", why, err)
		}
		return dir, nil
	}

	all := map[string]func() error{
		"e1": func() error { return experiments.ReportE1(w) },
		"e2": func() error { return experiments.ReportE2(w, *iters) },
		"e3": func() error { return experiments.ReportE3(w) },
		"e4": func() error { return experiments.ReportE4(w) },
		"e5": func() error {
			dir, err := repoRoot("e5 needs the repository sources")
			if err != nil {
				return err
			}
			return experiments.ReportE5(w, dir)
		},
		"e6":      func() error { return experiments.ReportE6(w) },
		"pump":    func() error { return experiments.ReportPump(w, *jsonOut) },
		"serve":   func() error { return experiments.ReportServe(w, *jsonOut) },
		"mixed":   func() error { return experiments.ReportMixed(w, *jsonOut) },
		"cluster": func() error { return experiments.ReportCluster(w, *jsonOut) },
		"http":    func() error { return experiments.ReportHTTP(w, *jsonOut) },
		"validate": func() error {
			dir, err := repoRoot("validate needs the bundled testdata models")
			if err != nil {
				return err
			}
			return experiments.ReportValidate(w, dir, *jsonOut)
		},
	}
	if *exp != "" {
		fn, ok := all[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want e1..e6, pump, validate, serve, mixed, cluster or http)", *exp)
		}
		return fn()
	}
	for _, name := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "pump", "validate", "serve", "mixed", "cluster", "http"} {
		if err := all[name](); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
