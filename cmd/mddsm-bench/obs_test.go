package main

import (
	"testing"
)

func TestRunObsReport(t *testing.T) {
	if err := run([]string{"-obs"}); err != nil {
		t.Fatal(err)
	}
}
