package mddsm_test

// Repository-level benchmarks: one per evaluation result of the paper's
// §VII (E2, E3, E4) plus the ablations called out in DESIGN.md §4. The
// text reports for every experiment (including the non-timing ones E1, E5
// and E6) are printed by cmd/mddsm-bench.

import (
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/baseline"
	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/controller"
	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/domains/mgrid"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/experiments"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/intent"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/registry"
	mdruntime "github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// BenchmarkE2 times the 8-scenario suite on both Broker implementations
// (paper §VII-A: the model-based version averaged ~17% more time).
func BenchmarkE2(b *testing.B) {
	// Every scenario tears its sessions down at the end, so one
	// broker+service pair serves all iterations: construction stays
	// outside the timed loop on both sides, and the service trace is
	// reset each round so its growth cannot skew long runs.
	for _, sc := range cml.Scenarios() {
		b.Run("model-based/"+sc.Name, func(b *testing.B) {
			n, err := cml.NewStandaloneNCB()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Service.Trace().Reset()
				if err := cml.RunScenario(sc, n.Platform.Broker, n.Service); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("handcrafted/"+sc.Name, func(b *testing.B) {
			n := baseline.NewHandcraftedNCB()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Service.Trace().Reset()
				if err := cml.RunScenario(sc, n, n.Service); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3 times intent-model generation on the 100-procedure
// repository: the cold full cycle and the amortised (cached) cycle (paper
// §VII-B: < 120 ms cold, approaching ~1 ms amortised).
func BenchmarkE3(b *testing.B) {
	b.Run("cold-cycle-100-procedures", func(b *testing.B) {
		repo, goal := experiments.BuildRepo(100)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gen := intent.NewGenerator(repo, nil, intent.Options{DisableCache: true})
			if _, err := gen.Generate(goal, expr.MapScope{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("amortised-cycle-100-procedures", func(b *testing.B) {
		repo, goal := experiments.BuildRepo(100)
		gen := intent.NewGenerator(repo, nil, intent.Options{})
		if _, err := gen.Generate(goal, expr.MapScope{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gen.Generate(goal, expr.MapScope{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4 measures the CPU cost per command of the adaptive Controller
// against the fixed-wiring comparator (paper §VII-B: the adaptive layer is
// measurably slower when adaptation brings no benefit).
func BenchmarkE4(b *testing.B) {
	b.Run("adaptive-controller", func(b *testing.B) {
		s := experiments.NewAdaptiveStack()
		cmd := script.NewCommand("deliver", "pkt:0")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Controller.Process(cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("non-adaptive-controller", func(b *testing.B) {
		s := experiments.NewNonAdaptiveStack()
		cmd := script.NewCommand("deliver", "pkt:0")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Controller.Process(cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIMCache isolates the generation cache's contribution to
// the E3 amortisation (DESIGN.md §4).
func BenchmarkAblationIMCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "cache-on"
		if !cached {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			repo, goal := experiments.BuildRepo(100)
			gen := intent.NewGenerator(repo, nil, intent.Options{DisableCache: !cached})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Generate(goal, expr.MapScope{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ablationController builds a Controller where the same op can execute as
// a predefined action (Case 1) or via intent generation (Case 2),
// selectable through context.
func ablationController(b *testing.B) *controller.Controller {
	b.Helper()
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.x", Domain: "d", Category: dsc.Operation})
	repo := registry.NewRepository(tx)
	repo.MustAdd(&registry.Procedure{
		ID: "x", ClassifiedBy: "op.x", Cost: 0,
		Unit: eu.NewUnit("x", eu.Invoke("do", "{target}")),
	})
	return controller.New(controller.Config{
		Name:       "ablate",
		Actions:    []*controller.Action{{Name: "direct", Ops: []string{"go"}, Steps: []script.Template{{Op: "do", Target: "{target}"}}}},
		Classes:    []controller.CommandClass{{Op: "go", GoalDSC: "op.x"}},
		Repository: repo,
		Policies: []policy.Policy{
			policy.Rule("force", 10, "forceIntent", policy.Effect{Key: "case", Value: "intent"}),
		},
	}, nullBroker{}, nil)
}

type nullBroker struct{}

func (nullBroker) Call(script.Command) error { return nil }

// BenchmarkAblationCase1VsCase2 compares the two execution paths of the
// Controller on the same command (paper §VI: predefined actions for
// efficiency, dynamic IM generation for flexibility).
func BenchmarkAblationCase1VsCase2(b *testing.B) {
	cmd := script.NewCommand("go", "t:1")
	b.Run("case1-predefined-action", func(b *testing.B) {
		c := ablationController(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.Process(cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("case2-intent-generation", func(b *testing.B) {
		c := ablationController(b)
		c.Context().Set("forceIntent", true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.Process(cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRepoSize sweeps the repository size for cold generation
// (the paper fixes 100 procedures; the sweep shows how cycle time scales).
func BenchmarkAblationRepoSize(b *testing.B) {
	for _, n := range []int{13, 50, 100, 400, 1000} {
		b.Run(fmt.Sprintf("procedures-%d", n), func(b *testing.B) {
			repo, goal := experiments.BuildRepo(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gen := intent.NewGenerator(repo, nil, intent.Options{DisableCache: true})
				if _, err := gen.Generate(goal, expr.MapScope{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPolicyCount sweeps the classification policy count
// (paper §VI: command classification consults domain policies on every
// command).
func BenchmarkAblationPolicyCount(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("policies-%d", n), func(b *testing.B) {
			pols := make([]policy.Policy, 0, n)
			for i := 0; i < n; i++ {
				pols = append(pols, policy.Rule(fmt.Sprintf("p%d", i), i,
					fmt.Sprintf("load > %d", i*10),
					policy.Effect{Key: "case", Value: "action"}))
			}
			c := controller.New(controller.Config{
				Name: "pol",
				Actions: []*controller.Action{{
					Name: "a", Ops: []string{"go"},
					Steps: []script.Template{{Op: "do", Target: "{target}"}},
				}},
				Policies: pols,
			}, nullBroker{}, nil)
			c.Context().Set("load", 5)
			cmd := script.NewCommand("go", "t:1")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.Process(cmd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelSubmission measures a full UI→Synthesis→Controller→Broker
// round trip on the CVM (not a paper table; it contextualises the layered
// architecture's end-to-end cost).
func BenchmarkModelSubmission(b *testing.B) {
	vm, err := cml.New()
	if err != nil {
		b.Fatal(err)
	}
	base := vm.Platform.UI.NewDraft()
	base.MustAdd("alice", "Person").SetAttr("name", "Alice")
	base.MustAdd("s1", "Session").SetRef("participants", "alice").SetRef("streams", "a1")
	base.MustAdd("a1", "Stream").SetAttr("media", "audio").SetAttr("session", "s1")
	if _, err := base.Submit(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edit := vm.Platform.UI.EditDraft()
		media := "audio"
		if i%2 == 0 {
			media = "video"
		}
		edit.Object("a1").SetAttr("media", media)
		if _, err := edit.Submit(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchModel loads a bundled example model from testdata.
func benchModel(b *testing.B, name string) *metamodel.Model {
	b.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		b.Fatal(err)
	}
	m, err := metamodel.UnmarshalModel(data)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// validationFixtures pairs each bundled example model with its DSML. The
// models are validated once up front so the timed loops measure steady-state
// re-validation (idempotent — defaults already applied, values normalised),
// not first-touch default materialisation.
func validationFixtures(b *testing.B) []struct {
	name string
	mm   *metamodel.Metamodel
	m    *metamodel.Model
} {
	b.Helper()
	fixtures := []struct {
		name string
		mm   *metamodel.Metamodel
		m    *metamodel.Model
	}{
		{"cml-session", cml.Metamodel(), benchModel(b, "session.json")},
		{"mgrid-home", mgrid.Metamodel(), benchModel(b, "home.json")},
	}
	for _, f := range fixtures {
		if err := f.m.ValidateInterpreted(f.mm); err != nil {
			b.Fatal(err)
		}
	}
	return fixtures
}

// BenchmarkValidateInterpreted times the reference conformance walk on the
// bundled example models (the baseline the compiled validator must beat).
func BenchmarkValidateInterpreted(b *testing.B) {
	for _, f := range validationFixtures(b) {
		b.Run(f.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f.m.ValidateInterpreted(f.mm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkValidateCompiled times the same walk through the compiled
// metamodel form (flattened inheritance, enum membership sets, direct
// normalise slots). Acceptance: ≥ 2× faster than the interpreted walk.
func BenchmarkValidateCompiled(b *testing.B) {
	for _, f := range validationFixtures(b) {
		b.Run(f.name, func(b *testing.B) {
			cm, err := f.mm.Compiled()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cm.Validate(f.m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubmitCached measures the full CVM submission round trip with the
// validation cache on (unchanged resubmissions replay their conformance
// check) versus off (every submission re-walks the model).
func BenchmarkSubmitCached(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "cache-on"
		opts := []cml.Option{}
		if !cached {
			name = "cache-off"
			opts = append(opts, cml.WithRuntime(mdruntime.WithValidationCache(nil)))
		}
		b.Run(name, func(b *testing.B) {
			vm, err := cml.New(opts...)
			if err != nil {
				b.Fatal(err)
			}
			base := vm.Platform.UI.NewDraft()
			base.MustAdd("alice", "Person").SetAttr("name", "Alice")
			base.MustAdd("s1", "Session").SetRef("participants", "alice").SetRef("streams", "a1")
			base.MustAdd("a1", "Stream").SetAttr("media", "audio").SetAttr("session", "s1")
			if _, err := base.Submit(); err != nil {
				b.Fatal(err)
			}
			m := vm.Platform.UI.RuntimeModel()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.Platform.SubmitModel(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// pumpBenchPlatform builds a broker-only platform whose event action routes
// every "tick" event to ad, with the pump sharded n ways by the "src"
// attribute.
func pumpBenchPlatform(b *testing.B, ad broker.Adapter, shards int) (*mdruntime.Platform, *obs.Metrics) {
	b.Helper()
	mb := mwmeta.NewBuilder("pump-bench", "bench")
	mb.BrokerLayer("brk").
		EventAction("handle", "tick", "", false,
			mwmeta.StepSpec{Op: "handle", Target: "t"}).
		Bind("*", "main")
	m := obs.NewMetrics()
	p, err := mdruntime.Build(mb.Model(), mdruntime.Deps{
		Adapters: map[string]broker.Adapter{"main": ad},
		Metrics:  m,
	}, mdruntime.WithPumpShards(shards), mdruntime.WithShardKey("src"),
		mdruntime.WithPumpQueue(4096))
	if err != nil {
		b.Fatal(err)
	}
	return p, m
}

// BenchmarkPumpThroughput measures sharded event-pump throughput: events
// from 64 independent sources posted as fast as the pump accepts them, on
// a fast adapter and on a slow one (100µs per delivery — the regime the
// sharding exists for: at 1 shard the slow adapter serialises the whole
// platform, at N shards independent sources deliver concurrently while
// same-source events stay ordered).
func BenchmarkPumpThroughput(b *testing.B) {
	shardCounts := []int{1, 4}
	if n := goruntime.GOMAXPROCS(0); n > 4 {
		shardCounts = append(shardCounts, n)
	}
	mixes := []struct {
		name  string
		delay time.Duration
	}{
		{"fast-adapter", 0},
		{"slow-adapter-100us", 100 * time.Microsecond},
	}
	for _, mix := range mixes {
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("%s/shards-%d", mix.name, shards), func(b *testing.B) {
				ad := broker.AdapterFunc(func(cmd script.Command) error {
					if mix.delay > 0 {
						time.Sleep(mix.delay)
					}
					return nil
				})
				p, m := pumpBenchPlatform(b, ad, shards)
				p.Start()
				defer p.Stop()
				srcs := make([]string, 64)
				for i := range srcs {
					srcs[i] = fmt.Sprintf("src-%d", i)
				}
				delivered := m.Counter(obs.MEventsDelivered)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := broker.Event{Name: "tick",
						Attrs: map[string]any{"src": srcs[i%len(srcs)]}}
					for !p.PostEvent(ev) {
						goruntime.Gosched() // backpressure: shard queue full
					}
				}
				for delivered.Value() < int64(b.N) {
					goruntime.Gosched()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}
