// Package mddsm is a from-scratch Go implementation of Model-Driven
// Domain-Specific Middleware (MD-DSM), reproducing Costa, Morris, Kon and
// Clarke, "Model-Driven Domain-Specific Middleware", IEEE ICDCS 2017.
//
// The implementation lives under internal/: a metamodel framework
// (replacing EMF), the four-layer reference architecture (UI, Synthesis,
// Controller, Broker), intent-model generation over domain-specific
// classifiers, a generic middleware-model runtime, four domain platforms
// (CVM, MGridVM, 2SVM, CSVM) with simulated resource substrates, the
// handcrafted baselines, and the evaluation harness regenerating the
// paper's §VII results. See README.md, DESIGN.md and EXPERIMENTS.md.
package mddsm
