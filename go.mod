module github.com/mddsm/mddsm

go 1.22
