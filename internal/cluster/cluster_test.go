package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/serve"
)

// lateRouter lets a wire server start before its Node exists (the Node
// needs every peer's address, the addresses need listeners).
type lateRouter struct {
	mu sync.Mutex
	n  *Node
}

func (r *lateRouter) set(n *Node) {
	r.mu.Lock()
	r.n = n
	r.mu.Unlock()
}

func (r *lateRouter) get() (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == nil {
		return nil, fmt.Errorf("node not ready")
	}
	return r.n, nil
}

func (r *lateRouter) Route(tenant string) (remote.Endpoint, error) {
	n, err := r.get()
	if err != nil {
		return nil, err
	}
	return n.Route(tenant)
}

func (r *lateRouter) Control(verb, tenant string, args map[string]any) (map[string]any, error) {
	n, err := r.get()
	if err != nil {
		return nil, err
	}
	return n.Control(verb, tenant, args)
}

// testNode bundles one member's server stack.
type testNode struct {
	id    string
	srv   *serve.Server
	node  *Node
	wire  *remote.Server
	obs   *obs.Obs
	alive bool
}

// kill simulates a crash: the wire drops, the node stops, the platforms
// die without any graceful export.
func (tn *testNode) kill() {
	tn.alive = false
	tn.wire.Close()
	tn.node.Close()
	tn.srv.Close()
}

func (tn *testNode) close() {
	if tn.alive {
		tn.kill()
	}
}

// startCluster brings up count members with manual ticking (no background
// goroutines) and a shared injector, fully meshed over real TCP.
func startCluster(t testing.TB, count int, seed int64, inj *fault.Injector) []*testNode {
	t.Helper()
	routers := make([]*lateRouter, count)
	nodes := make([]*testNode, count)
	peers := make([]Peer, count)
	for i := range nodes {
		routers[i] = &lateRouter{}
		wire, err := remote.NewRouterServer(routers[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i)
		peers[i] = Peer{ID: id, Addr: wire.Addr()}
		nodes[i] = &testNode{id: id, wire: wire, alive: true}
	}
	for i := range nodes {
		o := obs.New()
		srv := serve.NewServer(serve.Config{Obs: o})
		node, err := New(srv, Config{
			NodeID:       nodes[i].id,
			Peers:        peers,
			SuspectAfter: 2,
			Seed:         seed + int64(i),
			Obs:          o,
			Injector:     inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].srv, nodes[i].node, nodes[i].obs = srv, node, o
		routers[i].set(node)
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.close()
		}
	})
	tickAll(nodes, 1)
	return nodes
}

// tickAll advances every live member k rounds, in member order.
func tickAll(nodes []*testNode, k int) {
	for j := 0; j < k; j++ {
		for _, tn := range nodes {
			if tn.alive {
				tn.node.Tick()
			}
		}
	}
}

// survivors returns the live members.
func survivors(nodes []*testNode) []*testNode {
	var out []*testNode
	for _, tn := range nodes {
		if tn.alive {
			out = append(out, tn)
		}
	}
	return out
}

// drainForwards flushes until no live member holds pending or parked
// forwards, reviving parked ones along the way.
func drainForwards(t testing.TB, nodes []*testNode) {
	t.Helper()
	for i := 0; i < 200; i++ {
		busy := false
		for _, tn := range survivors(nodes) {
			tn.node.RedeliverForwards()
			tn.node.Flush()
			if tn.node.Pending() > 0 || len(tn.node.DeadForwards()) > 0 {
				busy = true
			}
		}
		if !busy {
			return
		}
		tickAll(nodes, 1)
	}
	for _, tn := range survivors(nodes) {
		t.Logf("%s: pending=%d dead=%d", tn.id, tn.node.Pending(), len(tn.node.DeadForwards()))
	}
	t.Fatal("forward queues never drained")
}

// homeOf finds the one live member hosting a tenant.
func homeOf(t testing.TB, nodes []*testNode, tenant string) *testNode {
	t.Helper()
	var home *testNode
	for _, tn := range survivors(nodes) {
		for _, name := range tn.srv.Tenants() {
			if name == tenant {
				if home != nil {
					t.Fatalf("tenant %q hosted on both %s and %s", tenant, home.id, tn.id)
				}
				home = tn
			}
		}
	}
	if home == nil {
		t.Fatalf("tenant %q hosted nowhere", tenant)
	}
	return home
}

// drainedAccounting evicts the tenant on its home (exact cut) and returns
// the ledger.
func drainedAccounting(t testing.TB, nodes []*testNode, tenant string) serve.Accounting {
	t.Helper()
	home := homeOf(t, nodes, tenant)
	_ = home.srv.Evict(tenant) // may already be parked
	a, err := home.srv.Accounting(tenant)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMembershipAndPlacementAgree(t *testing.T) {
	nodes := startCluster(t, 3, 42, nil)
	want := fmt.Sprint(nodes[0].node.Members())
	if want != "[n0 n1 n2]" {
		t.Fatalf("members = %s", want)
	}
	for _, tn := range nodes[1:] {
		if got := fmt.Sprint(tn.node.Members()); got != want {
			t.Errorf("%s members = %s, want %s", tn.id, got, want)
		}
	}
	for i := 0; i < 10; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		owner := nodes[0].node.Owner(tenant)
		for _, tn := range nodes[1:] {
			if got := tn.node.Owner(tenant); got != owner {
				t.Errorf("%s: owner(%s) = %s, want %s", tn.id, tenant, got, owner)
			}
		}
	}
}

// TestForwardDelivery: events entered through any member land exactly once
// on the owner, with exact per-tenant ledgers.
func TestForwardDelivery(t *testing.T) {
	nodes := startCluster(t, 3, 7, nil)
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	for _, name := range tenants {
		if _, err := nodes[0].node.Control("create", name, map[string]any{"bundle": "cml"}); err != nil {
			t.Fatal(err)
		}
	}
	const perTenant = 12
	for i := 0; i < perTenant; i++ {
		for ti, name := range tenants {
			entry := nodes[(i+ti)%len(nodes)]
			if err := entry.node.PostEvent(name, broker.Event{Name: "telemetry", Attrs: map[string]any{"n": i}}); err != nil {
				t.Fatalf("post %s via %s: %v", name, entry.id, err)
			}
		}
	}
	drainForwards(t, nodes)
	for _, name := range tenants {
		a := drainedAccounting(t, nodes, name)
		if !a.Exact() {
			t.Errorf("%s ledger not exact: %+v", name, a)
		}
		if a.Posted != perTenant {
			t.Errorf("%s posted = %d, want %d", name, a.Posted, perTenant)
		}
	}
	// The tenant plane proxies too: stat for a remote-owned tenant answers
	// through any member.
	victimView, err := nodes[1].node.Control("stat", "alpha", nil)
	if err != nil {
		t.Fatal(err)
	}
	if victimView["bundle"] != "cml" {
		t.Errorf("proxied stat: %v", victimView)
	}
}

// TestForwardDedup: a retried forward (same origin+seq, e.g. after a lost
// ack) is acknowledged without double-posting.
func TestForwardDedup(t *testing.T) {
	nodes := startCluster(t, 2, 3, nil)
	// Find a tenant this member owns.
	name := ""
	for i := 0; i < 32; i++ {
		cand := fmt.Sprintf("tenant-%d", i)
		if nodes[1].node.Owner(cand) == "n1" {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no tenant hashes to n1")
	}
	if _, err := nodes[1].node.Control("create", name, map[string]any{"bundle": "cml"}); err != nil {
		t.Fatal(err)
	}
	args := map[string]any{"origin": "ghost", "seq": 9, "name": "telemetry"}
	if _, err := nodes[1].node.Control("cluster.forward", name, args); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].node.Control("cluster.forward", name, args); err != nil {
		t.Fatalf("duplicate forward must ack, got %v", err)
	}
	if got := nodes[1].obs.MetricsOf().CounterValue(obs.MClusterForwardsDeduped); got != 1 {
		t.Errorf("deduped = %d, want 1", got)
	}
	if err := nodes[1].srv.Evict(name); err != nil {
		t.Fatal(err)
	}
	a, err := nodes[1].srv.Accounting(name)
	if err != nil {
		t.Fatal(err)
	}
	if a.Posted != 1 {
		t.Errorf("posted = %d after duplicate forward, want 1", a.Posted)
	}
}

// TestLiveMigrationDiffEqual: a migrated tenant's state round-trips
// diff-equal, its ledger travels, placement re-routes, and traffic keeps
// flowing to the new home.
func TestLiveMigrationDiffEqual(t *testing.T) {
	nodes := startCluster(t, 2, 11, nil)
	name := "migrant"
	owner := nodes[0]
	if owner.node.Owner(name) != owner.id {
		owner = nodes[1]
	}
	target := nodes[0]
	if target == owner {
		target = nodes[1]
	}
	if _, err := owner.node.Control("create", name, map[string]any{"bundle": "cml"}); err != nil {
		t.Fatal(err)
	}
	const pre = 8
	for i := 0; i < pre; i++ {
		if err := owner.node.PostEvent(name, broker.Event{Name: "telemetry", Attrs: map[string]any{"n": i}}); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce for the reference cut, then migrate.
	if err := owner.srv.Evict(name); err != nil {
		t.Fatal(err)
	}
	ref, err := owner.srv.Snapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.node.Migrate(name, target.id); err != nil {
		t.Fatal(err)
	}
	got, err := target.srv.Snapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := runtime.SnapshotsEquivalent(ref, got)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("migrated snapshot differs from the pre-migration cut")
	}
	for _, tn := range nodes {
		if o := tn.node.Owner(name); o != target.id {
			t.Errorf("%s: owner after migration = %s, want %s", tn.id, o, target.id)
		}
	}
	// New traffic through the old owner forwards to the new home.
	const post = 5
	for i := 0; i < post; i++ {
		if err := owner.node.PostEvent(name, broker.Event{Name: "telemetry", Attrs: map[string]any{"n": 100 + i}}); err != nil {
			t.Fatal(err)
		}
	}
	drainForwards(t, nodes)
	a := drainedAccounting(t, nodes, name)
	if !a.Exact() {
		t.Errorf("post-migration ledger not exact: %+v", a)
	}
	if a.Posted != pre+post {
		t.Errorf("posted = %d, want %d", a.Posted, pre+post)
	}
	if _, err := owner.srv.Accounting(name); err == nil {
		t.Error("old owner still hosts the migrated tenant")
	}
	if got := target.obs.MetricsOf().CounterValue(obs.MClusterMigrationsIn); got != 1 {
		t.Errorf("migrations.in = %d, want 1", got)
	}
}

// TestPartitionedForwardsRetryUntilHealed: a partition between two members
// holds forwards in the at-least-once queue; healing delivers every one,
// exactly once.
func TestPartitionedForwardsRetryUntilHealed(t *testing.T) {
	inj := fault.NewInjector(5)
	nodes := startCluster(t, 2, 5, inj)
	name := ""
	for i := 0; i < 32; i++ {
		cand := fmt.Sprintf("tenant-%d", i)
		if nodes[0].node.Owner(cand) == "n1" {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no tenant hashes to n1")
	}
	if _, err := nodes[0].node.Control("create", name, map[string]any{"bundle": "cml"}); err != nil {
		t.Fatal(err)
	}
	inj.Arm(SitePeerPrefix+"n1", fault.Spec{Kind: fault.Partition})
	const k = 6
	for i := 0; i < k; i++ {
		if err := nodes[0].node.PostEvent(name, broker.Event{Name: "telemetry", Attrs: map[string]any{"n": i}}); err != nil {
			t.Fatalf("at-least-once accept failed under partition: %v", err)
		}
	}
	if got := nodes[0].node.Pending(); got != k {
		t.Fatalf("pending = %d under partition, want %d", got, k)
	}
	inj.Heal(SitePeerPrefix + "n1")
	drainForwards(t, nodes)
	a := drainedAccounting(t, nodes, name)
	if !a.Exact() || a.Posted != k {
		t.Errorf("after heal: %+v, want posted %d", a, k)
	}
	if nodes[0].obs.MetricsOf().CounterValue(obs.MClusterForwardsResent) == 0 {
		t.Error("no resends counted across a partition")
	}
}

// TestVersionMismatchCountsPeerOut: a peer speaking a different protocol
// version is rejected gracefully — counted, no hang, no corruption.
func TestVersionMismatchCountsPeerOut(t *testing.T) {
	nodes := startCluster(t, 2, 1, nil)
	// A rogue node dials n1 with a future protocol version.
	srv := serve.NewServer(serve.Config{})
	defer srv.Close()
	rogue, err := New(srv, Config{
		NodeID: "rogue",
		Peers:  []Peer{{ID: "n1", Addr: nodes[1].wire.Addr()}},
		DialOptions: []remote.Option{
			remote.WithProtocol(remote.ProtocolVersion + 7),
			remote.WithRetry(fault.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	rogue.Tick()
	p, err := rogue.peerByID("n1")
	if err != nil {
		t.Fatal(err)
	}
	herr := rogue.peerControl(p, "cluster.heartbeat", "", map[string]any{"id": "rogue"})
	if !remote.IsVersionMismatch(herr) {
		t.Fatalf("rogue heartbeat err = %v, want version mismatch", herr)
	}
}
