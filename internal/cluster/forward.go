package cluster

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/serve"
)

// Cross-node event forwarding: at-least-once with acknowledgements.
//
// An event for a tenant placed elsewhere is accepted into a bounded
// pending queue — stamped (origin node, monotonic sequence) — and the
// queue is flushed opportunistically (on accept, on Tick, after a
// migration). A forward is acknowledged by the owner's control reply;
// until then it stays pending and is retransmitted, so a dropped ack or a
// mid-flight owner change costs a retry, never the event. The receiver
// deduplicates on (origin, seq) before posting, so the retry after a lost
// ack is counted once, keeping ledgers exact under at-least-once. A
// forward that exhausts its attempts parks in the node's forward
// dead-letter list (the cluster-plane analogue of the runtime DLQ), where
// RedeliverForwards can feed it back once the cluster heals.

// deadForward pairs a parked forward with why it parked.
type deadForward struct {
	pf     *pendingForward
	reason string
}

// PostEvent admits one event into the cluster through this node: posted
// locally when this node owns the tenant, otherwise accepted into the
// at-least-once forward queue. A nil return means the event is owned by
// the cluster (delivered, or queued with delivery guaranteed until parked
// as a counted forward dead-letter).
func (n *Node) PostEvent(tenantName string, ev broker.Event) error {
	if n.Owner(tenantName) == n.cfg.NodeID {
		return n.srv.PostEvent(tenantName, ev)
	}
	return n.enqueue(tenantName, ev)
}

// Execute runs one command script on the tenant's owner, proxying over the
// wire when the owner is another member.
func (n *Node) Execute(tenantName string, sc *script.Script) error {
	if n.Owner(tenantName) == n.cfg.NodeID {
		return n.srv.Execute(tenantName, sc)
	}
	for _, cmd := range sc.Commands {
		args := map[string]any{"op": cmd.Op, "target": cmd.Target}
		if len(cmd.Args) > 0 {
			args["args"] = cmd.Args
		}
		if _, err := n.ownerControl(tenantName, "cluster.exec", args); err != nil {
			return err
		}
	}
	return nil
}

// enqueue accepts one event into the bounded pending queue and tries to
// deliver immediately.
func (n *Node) enqueue(tenantName string, ev broker.Event) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("cluster: node closed")
	}
	if len(n.pending) >= n.cfg.ForwardQueue {
		n.mFwdRejected.Inc()
		n.mu.Unlock()
		return fmt.Errorf("cluster: forward queue full (%d pending)", n.cfg.ForwardQueue)
	}
	n.seq++
	pf := &pendingForward{
		Tenant: tenantName,
		Origin: n.cfg.NodeID,
		Seq:    n.seq,
		Event:  ev,
	}
	n.pending = append(n.pending, pf)
	n.mFwdQueued.Inc()
	n.mu.Unlock()
	n.Flush()
	return nil
}

// Flush drives the pending queue once: each forward is sent to the
// tenant's current owner (or posted locally if placement moved the tenant
// here), acknowledged forwards leave the queue, failed ones stay for the
// next flush, and ones out of attempts park in the dead-letter list.
func (n *Node) Flush() {
	n.mu.Lock()
	if n.closed || len(n.pending) == 0 {
		n.mu.Unlock()
		return
	}
	batch := n.pending
	n.pending = nil
	members := n.membersLocked()
	owners := make([]string, len(batch))
	for i, pf := range batch {
		owners[i] = n.ownerOf(pf.Tenant, members)
	}
	n.mu.Unlock()

	var keep []*pendingForward
	var parked []deadForward
	for i, pf := range batch {
		if pf.Attempts > 0 {
			n.mFwdResent.Inc()
		}
		var err error
		if owners[i] == n.cfg.NodeID {
			// Placement brought the tenant to us mid-queue (migration or
			// failover adoption): deliver locally.
			err = n.srv.PostEvent(pf.Tenant, pf.Event)
		} else {
			err = n.sendForward(owners[i], pf)
		}
		if err == nil {
			n.mFwdSent.Inc()
			continue
		}
		pf.Attempts++
		if pf.Attempts >= n.cfg.ForwardAttempts {
			n.mFwdParked.Inc()
			parked = append(parked, deadForward{pf: pf, reason: err.Error()})
			continue
		}
		keep = append(keep, pf)
	}

	n.mu.Lock()
	// Concurrent posts may have appended while we were sending; retries go
	// to the front so ordering pressure stays roughly FIFO.
	n.pending = append(keep, n.pending...)
	n.deadFwd = append(n.deadFwd, parked...)
	if over := len(n.deadFwd) - DefaultDeadForwardsBound; over > 0 {
		n.deadFwd = n.deadFwd[over:] // bounded: oldest parked forwards fall off
	}
	n.mu.Unlock()
}

// sendForward transmits one forward to the owning member.
func (n *Node) sendForward(owner string, pf *pendingForward) error {
	if err := n.cfg.Injector.Inject(SiteForward); err != nil {
		return err
	}
	p, err := n.peerByID(owner)
	if err != nil {
		return err
	}
	n.mu.Lock()
	dead := p.dead
	n.mu.Unlock()
	if dead {
		return fmt.Errorf("cluster: member %q is dead", owner)
	}
	args := map[string]any{
		"origin": pf.Origin,
		"seq":    pf.Seq,
		"name":   pf.Event.Name,
	}
	if len(pf.Event.Attrs) > 0 {
		args["attrs"] = pf.Event.Attrs
	}
	return n.peerControl(p, "cluster.forward", pf.Tenant, args)
}

// Pending reports how many forwards are queued unacknowledged.
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// DeadForwards lists the forwards that exhausted their attempts.
func (n *Node) DeadForwards() []DeadForward {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]DeadForward, len(n.deadFwd))
	for i, d := range n.deadFwd {
		out[i] = DeadForward{Tenant: d.pf.Tenant, Event: d.pf.Event, Reason: d.reason}
	}
	return out
}

// RedeliverForwards feeds every parked forward back into the pending
// queue with a fresh attempt budget (original origin/sequence stamps, so
// dedup still holds) and flushes. It returns how many re-entered the
// queue.
func (n *Node) RedeliverForwards() int {
	n.mu.Lock()
	moved := 0
	for _, d := range n.deadFwd {
		if len(n.pending) >= n.cfg.ForwardQueue {
			break
		}
		d.pf.Attempts = 0
		n.pending = append(n.pending, d.pf)
		moved++
	}
	n.deadFwd = n.deadFwd[moved:]
	n.mu.Unlock()
	if moved > 0 {
		n.Flush()
	}
	return moved
}

// Migrate moves one local tenant to another live member: placement is
// re-routed first (new traffic buffers in the forward queue, addressed to
// the target), the tenant is exported as a quiesced exact cut, adopted on
// the target over the wire, the placement override is broadcast, and the
// buffered forwards drain to the new home. On adoption failure the export
// is re-adopted locally, so the tenant never ceases to exist.
func (n *Node) Migrate(tenantName, target string) error {
	if target == n.cfg.NodeID {
		return fmt.Errorf("cluster: tenant %q already here", tenantName)
	}
	p, err := n.peerByID(target)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if p.dead {
		n.mu.Unlock()
		return fmt.Errorf("cluster: member %q is dead", target)
	}
	// Re-route before the export: frames arriving mid-migration buffer in
	// the forward queue instead of racing the quiesce.
	n.overrides[tenantName] = target
	n.mu.Unlock()

	exp, err := n.srv.Export(tenantName)
	if err != nil {
		n.mu.Lock()
		delete(n.overrides, tenantName)
		n.mu.Unlock()
		return err
	}
	args := map[string]any{
		"bundle":   exp.Bundle,
		"snapshot": string(exp.Snapshot),
		"ledger":   exp.Ledger.Attrs(),
	}
	if err := n.peerControl(p, "cluster.migrate", tenantName, args); err != nil {
		// Roll back: the tenant comes home, placement follows.
		if aerr := n.srv.Adopt(tenantName, exp); aerr != nil {
			return fmt.Errorf("cluster: migrate %s: %v (rollback failed: %w)", tenantName, err, aerr)
		}
		n.mu.Lock()
		n.overrides[tenantName] = n.cfg.NodeID
		n.mu.Unlock()
		return err
	}
	n.mMigOut.Inc()
	n.mu.Lock()
	delete(n.replicas, tenantName) // any held replica is for a past life
	n.gReplicas.Set(int64(len(n.replicas)))
	n.mu.Unlock()
	n.broadcastPlacement(tenantName, target)
	n.Flush()
	return nil
}

// broadcastPlacement tells every live peer about a placement override,
// best effort — heartbeat piggybacking repairs whoever missed it.
func (n *Node) broadcastPlacement(tenantName, owner string) {
	n.mu.Lock()
	targets := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		if !p.dead {
			targets = append(targets, p)
		}
	}
	n.mu.Unlock()
	for _, p := range targets {
		_ = n.peerControl(p, "cluster.place", tenantName, map[string]any{"node": owner})
	}
}

// ownerControl sends a control verb to the tenant's current owner and
// returns the reply attributes.
func (n *Node) ownerControl(tenantName, verb string, args map[string]any) (map[string]any, error) {
	owner := n.Owner(tenantName)
	if owner == n.cfg.NodeID {
		return nil, fmt.Errorf("cluster: tenant %q is local", tenantName)
	}
	p, err := n.peerByID(owner)
	if err != nil {
		return nil, err
	}
	return n.peerControlAttrs(p, verb, tenantName, args)
}

// ---------------------------------------------------------------------------
// remote.Router / remote.Control
// ---------------------------------------------------------------------------

// clusterEndpoint resolves ownership per frame, so a client connected to
// any member reaches every tenant.
type clusterEndpoint struct {
	n    *Node
	name string
}

func (e clusterEndpoint) Execute(sc *script.Script) error {
	return e.n.Execute(e.name, sc)
}

func (e clusterEndpoint) DeliverEvent(ev broker.Event) error {
	return e.n.PostEvent(e.name, ev)
}

// Route implements remote.Router: every tenant frame gets a cluster
// endpoint; ownership is resolved when the frame executes, not when the
// connection routes, so placement changes apply to live connections.
func (n *Node) Route(tenantName string) (remote.Endpoint, error) {
	if tenantName == "" {
		return nil, fmt.Errorf("cluster: tenant name must not be empty")
	}
	return clusterEndpoint{n: n, name: tenantName}, nil
}

// Control implements remote.Control. Cluster-plane verbs ("cluster.*") are
// handled by the node; node-scoped verbs (tenants, obs) answer locally;
// tenant-scoped verbs run on the tenant's owner, proxied one hop when the
// owner is another member.
func (n *Node) Control(verb, tenantName string, args map[string]any) (map[string]any, error) {
	if verbIsCluster(verb) {
		return n.clusterControl(verb, tenantName, args)
	}
	switch verb {
	case "tenants", "obs":
		return n.srv.Control(verb, tenantName, args)
	}
	if n.Owner(tenantName) == n.cfg.NodeID {
		return n.srv.Control(verb, tenantName, args)
	}
	if b, _ := args["_proxied"].(bool); b {
		// A proxied frame landing on a non-owner means the members
		// disagree on placement right now; fail rather than loop.
		return nil, fmt.Errorf("cluster: placement for %q is unsettled", tenantName)
	}
	fwd := make(map[string]any, len(args)+1)
	for k, v := range args {
		fwd[k] = v
	}
	fwd["_proxied"] = true
	return n.ownerControl(tenantName, verb, fwd)
}

// clusterControl dispatches the cluster-plane verbs.
func (n *Node) clusterControl(verb, tenantName string, args map[string]any) (map[string]any, error) {
	switch verb {
	case "cluster.join", "cluster.heartbeat":
		return n.handleHeartbeat(args)
	case "cluster.forward":
		return n.handleForward(tenantName, args)
	case "cluster.exec":
		if n.Owner(tenantName) != n.cfg.NodeID {
			return nil, fmt.Errorf("cluster: tenant %q not placed here", tenantName)
		}
		return nil, n.srv.Execute(tenantName, execScript(args))
	case "cluster.migrate":
		return n.handleMigrate(tenantName, args)
	case "cluster.replicate":
		return n.handleReplicate(tenantName, args)
	case "cluster.place":
		id, _ := args["node"].(string)
		if id == "" {
			return nil, fmt.Errorf("cluster: place needs args.node")
		}
		n.mu.Lock()
		n.overrides[tenantName] = id
		n.mu.Unlock()
		return nil, nil
	case "cluster.members":
		members := n.Members()
		list := make([]any, len(members))
		for i, m := range members {
			list[i] = m
		}
		return map[string]any{"members": list}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown verb %q", verb)
	}
}

// handleHeartbeat records a peer's liveness and merges its replicated
// placement map. Join and heartbeat share this path: both mean "I am
// alive, here is my view".
func (n *Node) handleHeartbeat(args map[string]any) (map[string]any, error) {
	id, _ := args["id"].(string)
	if id == "" {
		return nil, fmt.Errorf("cluster: heartbeat needs args.id")
	}
	n.mHBRecv.Inc()
	n.mu.Lock()
	if p, ok := n.peers[id]; ok {
		p.missed = 0
		p.suspect = false
		p.dead = false
	}
	if m, ok := args["overrides"].(map[string]any); ok {
		n.mergeOverridesLocked(m)
	}
	members := n.membersLocked()
	n.gPeersLive.Set(int64(len(members)))
	n.mu.Unlock()
	list := make([]any, len(members))
	for i, m := range members {
		list[i] = m
	}
	return map[string]any{"members": list}, nil
}

// handleForward receives one cross-node event: ownership is verified,
// duplicates (retries after a lost ack) are acknowledged without
// re-posting, and only a successfully posted event is marked seen — a
// failed post leaves the sender retrying.
func (n *Node) handleForward(tenantName string, args map[string]any) (map[string]any, error) {
	n.mFwdRecv.Inc()
	origin, _ := args["origin"].(string)
	seq, ok := numArg(args, "seq")
	if origin == "" || !ok {
		return nil, fmt.Errorf("cluster: forward needs args.origin and args.seq")
	}
	n.mu.Lock()
	if owner := n.ownerOf(tenantName, n.membersLocked()); owner != n.cfg.NodeID {
		n.mFwdRejected.Inc()
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: tenant %q not placed here (owner %s)", tenantName, owner)
	}
	if s, ok := n.seen[origin]; ok {
		if _, dup := s[seq]; dup {
			n.mFwdDeduped.Inc()
			n.mu.Unlock()
			return nil, nil // already counted; ack the retry
		}
	}
	n.mu.Unlock()

	name, _ := args["name"].(string)
	attrs, _ := args["attrs"].(map[string]any)
	if err := n.srv.PostEvent(tenantName, broker.Event{Name: name, Attrs: attrs}); err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.seen[origin] == nil {
		n.seen[origin] = make(map[uint64]struct{})
	}
	n.seen[origin][seq] = struct{}{}
	n.mu.Unlock()
	return nil, nil
}

// handleMigrate adopts a tenant pushed by its previous owner and claims
// placement.
func (n *Node) handleMigrate(tenantName string, args map[string]any) (map[string]any, error) {
	exp, err := exportFromArgs(args)
	if err != nil {
		return nil, err
	}
	if err := n.srv.Adopt(tenantName, exp); err != nil {
		return nil, err
	}
	n.mMigIn.Inc()
	n.mu.Lock()
	n.overrides[tenantName] = n.cfg.NodeID
	delete(n.replicas, tenantName)
	n.gReplicas.Set(int64(len(n.replicas)))
	n.mu.Unlock()
	return nil, nil
}

// handleReplicate stores a peer's tenant checkpoint for failover.
func (n *Node) handleReplicate(tenantName string, args map[string]any) (map[string]any, error) {
	owner, _ := args["owner"].(string)
	if owner == "" {
		return nil, fmt.Errorf("cluster: replicate needs args.owner")
	}
	exp, err := exportFromArgs(args)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.replicas[tenantName] = replica{owner: owner, exp: exp}
	n.gReplicas.Set(int64(len(n.replicas)))
	n.mu.Unlock()
	return nil, nil
}

// exportFromArgs rebuilds an adoption package from wire attributes.
func exportFromArgs(args map[string]any) (serve.ExportedTenant, error) {
	bundle, _ := args["bundle"].(string)
	snapshot, _ := args["snapshot"].(string)
	if bundle == "" || snapshot == "" {
		return serve.ExportedTenant{}, fmt.Errorf("cluster: need args.bundle and args.snapshot")
	}
	var ledger serve.Accounting
	if lm, ok := args["ledger"].(map[string]any); ok {
		ledger = serve.AccountingFromAttrs(lm)
	}
	return serve.ExportedTenant{Bundle: bundle, Snapshot: []byte(snapshot), Ledger: ledger}, nil
}

// numArg reads a wire number (float64 after a JSON hop, int/uint64 from
// in-process callers) as a sequence value.
func numArg(args map[string]any, key string) (uint64, bool) {
	switch v := args[key].(type) {
	case float64:
		return uint64(v), true
	case uint64:
		return v, true
	case int:
		return uint64(v), true
	case int64:
		return uint64(v), true
	default:
		return 0, false
	}
}
