// Package cluster joins N serve daemons into one logical broker. Each
// process runs a Node wrapping its serve.Server; nodes gossip liveness
// over heartbeat control frames, place tenants across processes with the
// same FNV hash the event pump uses for shards (plus a replicated override
// map for explicit migrations), forward events to the owning node with
// at-least-once acknowledged delivery, and move running tenants between
// processes as quiesce → checkpoint → transfer → restore, losing nothing:
// every event is exactly one of delivered, failed, dead-lettered, dropped
// or rejected on exactly one node's ledger.
//
// The Node implements remote.Router and remote.Control, so
// remote.NewRouterServer(node, addr) exposes the whole cluster through any
// single member: frames for tenants placed elsewhere are proxied or
// forwarded transparently. Cluster verbs ride the same wire as tenant
// traffic ("cluster.join", "cluster.heartbeat", "cluster.forward",
// "cluster.migrate", "cluster.replicate", "cluster.place", "cluster.exec")
// and every peer frame is stamped with remote.ProtocolVersion, so an
// incompatible peer is counted out gracefully rather than corrupting the
// member set.
//
// Failure detection is deterministic by construction: with
// Config.HeartbeatInterval <= 0 a Node starts no goroutines and advances
// only on explicit Tick calls, and the per-peer suspicion threshold jitter
// is drawn from Config.Seed — the chaos tests replay byte-identical
// failure schedules from fixed seeds.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/serve"
)

// Fault-point names evaluated against Config.Injector.
const (
	// SiteForward fires before a cross-node event forward is transmitted.
	SiteForward = "cluster.forward"
	// SitePeerPrefix + <peer id> fires before any RPC to that peer; arming
	// it with a Partition fault isolates the pair until healed.
	SitePeerPrefix = "cluster.peer."
)

// Defaults for the knobs a zero Config leaves unset.
const (
	DefaultSuspectAfter      = 3
	DefaultForwardQueue      = 256
	DefaultForwardAttempts   = 8
	DefaultDeadForwardsBound = 256
)

// Peer names one member of the static cluster membership.
type Peer struct {
	ID   string
	Addr string
}

// Config configures a Node.
type Config struct {
	// NodeID is this node's unique member name.
	NodeID string
	// Peers is the full static member set (this node may be listed; it is
	// skipped by ID).
	Peers []Peer
	// HeartbeatInterval drives the background tick loop. <= 0 means no
	// background goroutine: the owner calls Tick explicitly (tests).
	HeartbeatInterval time.Duration
	// SuspectAfter is how many consecutive missed heartbeats make a peer
	// suspect; death follows one tick later. Per-peer seeded jitter adds
	// 0 or 1 to the threshold so a symmetric partition does not make every
	// node fire on the same tick. Default DefaultSuspectAfter.
	SuspectAfter int
	// Seed feeds the jitter and any tie-breaking randomness; fixed seed =
	// fixed failure schedule.
	Seed int64
	// ForwardQueue bounds the pending (unacked) cross-node forwards held
	// for resend. Overflow is a counted rejection. Default
	// DefaultForwardQueue.
	ForwardQueue int
	// ForwardAttempts bounds delivery attempts per forward before it is
	// parked in the node's forward dead-letter list. Default
	// DefaultForwardAttempts.
	ForwardAttempts int
	// Obs receives the cluster.* metrics (nil means a private bundle).
	Obs *obs.Obs
	// Injector arms SiteForward and SitePeerPrefix sites (nil disables).
	Injector *fault.Injector
	// DialOptions extends the options used to dial peers (retry policy,
	// timeouts). The protocol version stamp is always applied.
	DialOptions []remote.Option
}

// peerState tracks one remote member.
type peerState struct {
	id        string
	addr      string
	conn      *remote.Conn
	missed    int
	suspectAt int // missed-heartbeat threshold (jittered)
	suspect   bool
	dead      bool
}

// pendingForward is one accepted, not-yet-acknowledged cross-node event.
type pendingForward struct {
	Tenant   string
	Origin   string
	Seq      uint64
	Event    broker.Event
	Attempts int
}

// DeadForward is a forward that exhausted its delivery attempts and was
// parked; RedeliverForwards feeds these back into the resend queue.
type DeadForward struct {
	Tenant string
	Event  broker.Event
	Reason string
}

// replica is the last checkpoint of a tenant owned by another node, held
// here for failover adoption.
type replica struct {
	owner string
	exp   serve.ExportedTenant
}

// Node is one cluster member: a serve.Server plus membership, placement,
// forwarding and migration. Create with New, expose on the wire with
// remote.NewRouterServer(node, addr), stop with Close (the serve.Server is
// not closed; it belongs to the caller).
type Node struct {
	cfg Config
	srv *serve.Server

	gPeersLive   *obs.Gauge
	gReplicas    *obs.Gauge
	mHBSent      *obs.Counter
	mHBRecv      *obs.Counter
	mSuspicions  *obs.Counter
	mDeaths      *obs.Counter
	mFwdSent     *obs.Counter
	mFwdRecv     *obs.Counter
	mFwdDeduped  *obs.Counter
	mFwdResent   *obs.Counter
	mFwdQueued   *obs.Counter
	mFwdParked   *obs.Counter
	mFwdRejected *obs.Counter
	mMigOut      *obs.Counter
	mMigIn       *obs.Counter
	mAdoptions   *obs.Counter

	mu        sync.Mutex
	peers     map[string]*peerState
	overrides map[string]string // tenant -> member ID (explicit placement)
	replicas  map[string]replica
	seen      map[string]map[uint64]struct{} // origin -> acked forward seqs
	pending   []*pendingForward
	deadFwd   []deadForward
	seq       uint64
	tick      uint64
	rng       *rand.Rand
	closed    bool

	done chan struct{}
	loop sync.WaitGroup
}

// New wraps a serve.Server as a cluster member. With a positive
// HeartbeatInterval the node starts its background tick loop immediately;
// otherwise it advances only on Tick.
func New(srv *serve.Server, cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: NodeID must not be empty")
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.ForwardQueue <= 0 {
		cfg.ForwardQueue = DefaultForwardQueue
	}
	if cfg.ForwardAttempts <= 0 {
		cfg.ForwardAttempts = DefaultForwardAttempts
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	m := o.MetricsOf()
	n := &Node{
		cfg:          cfg,
		srv:          srv,
		gPeersLive:   m.Gauge(obs.MClusterPeersLive),
		gReplicas:    m.Gauge(obs.MClusterReplicasHeld),
		mHBSent:      m.Counter(obs.MClusterHeartbeatsSent),
		mHBRecv:      m.Counter(obs.MClusterHeartbeatsRecv),
		mSuspicions:  m.Counter(obs.MClusterSuspicions),
		mDeaths:      m.Counter(obs.MClusterDeaths),
		mFwdSent:     m.Counter(obs.MClusterForwardsSent),
		mFwdRecv:     m.Counter(obs.MClusterForwardsRecv),
		mFwdDeduped:  m.Counter(obs.MClusterForwardsDeduped),
		mFwdResent:   m.Counter(obs.MClusterForwardsResent),
		mFwdQueued:   m.Counter(obs.MClusterForwardsQueued),
		mFwdParked:   m.Counter(obs.MClusterForwardsParked),
		mFwdRejected: m.Counter(obs.MClusterForwardsRejected),
		mMigOut:      m.Counter(obs.MClusterMigrationsOut),
		mMigIn:       m.Counter(obs.MClusterMigrationsIn),
		mAdoptions:   m.Counter(obs.MClusterAdoptions),
		peers:        make(map[string]*peerState),
		overrides:    make(map[string]string),
		replicas:     make(map[string]replica),
		seen:         make(map[string]map[uint64]struct{}),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		done:         make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p.ID == cfg.NodeID || p.ID == "" {
			continue
		}
		n.peers[p.ID] = &peerState{
			id:        p.ID,
			addr:      p.Addr,
			suspectAt: cfg.SuspectAfter + n.rng.Intn(2),
		}
	}
	n.gPeersLive.Set(int64(len(n.peers) + 1))
	if cfg.HeartbeatInterval > 0 {
		n.loop.Add(1)
		go n.run()
	}
	return n, nil
}

// run is the background tick loop: heartbeat interval plus up to 25%
// seeded jitter so a fleet started together does not phase-lock.
func (n *Node) run() {
	defer n.loop.Done()
	for {
		n.mu.Lock()
		j := time.Duration(0)
		if q := int64(n.cfg.HeartbeatInterval) / 4; q > 0 {
			j = time.Duration(n.rng.Int63n(q))
		}
		n.mu.Unlock()
		select {
		case <-n.done:
			return
		case <-time.After(n.cfg.HeartbeatInterval + j):
			n.Tick()
		}
	}
}

// Close stops the tick loop and drops the peer connections. The wrapped
// serve.Server is left running (its owner closes it).
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	conns := make([]*remote.Conn, 0, len(n.peers))
	for _, p := range n.peers {
		if p.conn != nil {
			conns = append(conns, p.conn)
			p.conn = nil
		}
	}
	n.mu.Unlock()
	n.loop.Wait()
	for _, c := range conns {
		c.Close()
	}
}

// ID returns this node's member name.
func (n *Node) ID() string { return n.cfg.NodeID }

// Server returns the wrapped serve.Server.
func (n *Node) Server() *serve.Server { return n.srv }

// Members returns the live member IDs, sorted, including this node.
func (n *Node) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.membersLocked()
}

func (n *Node) membersLocked() []string {
	out := []string{n.cfg.NodeID}
	for id, p := range n.peers {
		if !p.dead {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Tick advances the node one failure-detection round: heartbeats go out,
// silent peers accumulate suspicion and eventually die (triggering replica
// adoption), tenants the placement no longer assigns here migrate out, and
// the pending forward queue is flushed. One Tick is one deterministic unit
// of cluster time.
func (n *Node) Tick() {
	n.heartbeatRound()
	n.rebalance()
	n.Flush()
}

// heartbeatRound sends one heartbeat to every non-dead peer and applies
// the miss accounting: suspicion at the jittered threshold, death one
// round later. Death recomputes placement and adopts any replica this node
// now owns.
func (n *Node) heartbeatRound() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.tick++
	tick := n.tick
	overrides := make(map[string]any, len(n.overrides))
	for t, id := range n.overrides {
		overrides[t] = id
	}
	targets := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		if !p.dead {
			targets = append(targets, p)
		}
	}
	n.mu.Unlock()

	type result struct {
		p  *peerState
		ok bool
	}
	results := make([]result, 0, len(targets))
	for _, p := range targets {
		args := map[string]any{
			"id":        n.cfg.NodeID,
			"tick":      tick,
			"overrides": overrides,
		}
		err := n.peerControl(p, "cluster.heartbeat", "", args)
		if err == nil {
			n.mHBSent.Inc()
		}
		results = append(results, result{p: p, ok: err == nil})
	}

	var adopt []string
	n.mu.Lock()
	for _, r := range results {
		p := r.p
		if r.ok {
			p.missed = 0
			if p.suspect || p.dead {
				p.suspect, p.dead = false, false
			}
			continue
		}
		p.missed++
		if !p.suspect && p.missed >= p.suspectAt {
			p.suspect = true
			n.mSuspicions.Inc()
		}
		if p.suspect && !p.dead && p.missed > p.suspectAt {
			p.dead = true
			n.mDeaths.Inc()
			adopt = append(adopt, n.deathLocked(p.id)...)
		}
	}
	n.gPeersLive.Set(int64(len(n.membersLocked())))
	n.mu.Unlock()

	for _, tenantName := range adopt {
		n.adopt(tenantName)
	}
}

// deathLocked handles one peer's death under n.mu: placement overrides
// pointing at the corpse are dropped, and every replica this node holds
// for the dead owner is queued for adoption. The holder adopts regardless
// of what the hash says — it has the bytes; the placement override it
// claims (and broadcasts) makes the cluster agree, and the hash reasserts
// itself only for tenants nobody replicated.
func (n *Node) deathLocked(dead string) []string {
	for t, id := range n.overrides {
		if id == dead {
			delete(n.overrides, t)
		}
	}
	var adopt []string
	for t, rep := range n.replicas {
		if rep.owner == dead {
			adopt = append(adopt, t)
		}
	}
	return adopt
}

// adopt restores one tenant from its held replica: park the checkpoint,
// replay its dead-letter queue, claim placement and tell the survivors.
func (n *Node) adopt(tenantName string) {
	n.mu.Lock()
	rep, ok := n.replicas[tenantName]
	if !ok {
		n.mu.Unlock()
		return
	}
	delete(n.replicas, tenantName)
	n.gReplicas.Set(int64(len(n.replicas)))
	n.overrides[tenantName] = n.cfg.NodeID
	n.mu.Unlock()

	if err := n.srv.Adopt(tenantName, rep.exp); err != nil {
		// The tenant may already live here (e.g. it was migrated in after
		// the replica was pushed); adoption is then correctly a no-op.
		return
	}
	n.mAdoptions.Inc()
	// The DLQ rode along inside the checkpoint; replay it on the new home.
	_, _, _ = n.srv.Redeliver(tenantName)
	n.broadcastPlacement(tenantName, n.cfg.NodeID)
}

// rebalance migrates out every local tenant the placement assigns to
// another live member. Revival is the common trigger: a node coming back
// from the dead reclaims its hash range, and the adopters push the
// adopted tenants home.
func (n *Node) rebalance() {
	n.mu.Lock()
	members := n.membersLocked()
	var moves [][2]string
	for _, t := range n.srv.Tenants() {
		if owner := n.ownerOf(t, members); owner != n.cfg.NodeID {
			moves = append(moves, [2]string{t, owner})
		}
	}
	n.mu.Unlock()
	for _, mv := range moves {
		_ = n.Migrate(mv[0], mv[1])
	}
}

// peerControl sends one control verb to a peer, dialing lazily. The
// injector's per-peer partition site is evaluated first; every frame
// carries the protocol version stamp.
func (n *Node) peerControl(p *peerState, verb, tenantName string, args map[string]any) error {
	_, err := n.peerControlAttrs(p, verb, tenantName, args)
	return err
}

// peerControlAttrs is peerControl returning the reply attributes.
func (n *Node) peerControlAttrs(p *peerState, verb, tenantName string, args map[string]any) (map[string]any, error) {
	if err := n.cfg.Injector.Inject(SitePeerPrefix + p.id); err != nil {
		return nil, err
	}
	conn, err := n.peerConn(p)
	if err != nil {
		return nil, err
	}
	return conn.Control(verb, tenantName, args)
}

// peerConn returns the peer's self-healing connection, dialing on first
// use. Dial failures are transient: the peer may simply not be up yet.
func (n *Node) peerConn(p *peerState) (*remote.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: node closed")
	}
	if p.conn != nil {
		conn := p.conn
		n.mu.Unlock()
		return conn, nil
	}
	n.mu.Unlock()

	opts := append([]remote.Option{
		remote.WithProtocol(remote.ProtocolVersion),
		remote.WithRetry(fault.Policy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}),
	}, n.cfg.DialOptions...)
	conn, err := remote.Connect(p.addr, opts...)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("cluster: node closed")
	}
	if p.conn == nil {
		p.conn = conn
	} else {
		// Lost the dial race; keep the established one.
		go conn.Close()
	}
	conn = p.conn
	n.mu.Unlock()
	return conn, nil
}

// peerByID resolves a live member ID to its state.
func (n *Node) peerByID(id string) (*peerState, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.peers[id]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown member %q", id)
	}
	return p, nil
}

// ReplicateAll pushes a fresh replica of every local tenant to its
// failover successor (the next live member after this node in sorted
// order). Each replica is a quiesced exact cut — snapshot and ledger agree
// — taken via transparent eviction.
func (n *Node) ReplicateAll() error {
	n.mu.Lock()
	members := n.membersLocked()
	n.mu.Unlock()
	succ := successor(n.cfg.NodeID, members)
	if succ == "" {
		return nil // single-node cluster: nowhere to replicate
	}
	var firstErr error
	for _, t := range n.srv.Tenants() {
		exp, err := n.srv.Replica(t)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		p, err := n.peerByID(succ)
		if err != nil {
			return err
		}
		args := map[string]any{
			"owner":    n.cfg.NodeID,
			"bundle":   exp.Bundle,
			"snapshot": string(exp.Snapshot),
			"ledger":   exp.Ledger.Attrs(),
		}
		if err := n.peerControl(p, "cluster.replicate", t, args); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// successor returns the member after id in the sorted ring, or "" when id
// is alone.
func successor(id string, members []string) string {
	if len(members) < 2 {
		return ""
	}
	for i, m := range members {
		if m == id {
			return members[(i+1)%len(members)]
		}
	}
	return members[0]
}

// verbIsCluster reports whether a control verb belongs to the cluster
// plane rather than the tenant plane.
func verbIsCluster(verb string) bool { return strings.HasPrefix(verb, "cluster.") }

// execScript rebuilds the wire command as a script for the local tenant.
func execScript(args map[string]any) *script.Script {
	op, _ := args["op"].(string)
	target, _ := args["target"].(string)
	cmd := script.NewCommand(op, target)
	if m, ok := args["args"].(map[string]any); ok {
		for k, v := range m {
			cmd = cmd.WithArg(k, v)
		}
	}
	return script.New("cluster").Append(cmd)
}
