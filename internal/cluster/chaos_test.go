package cluster

import (
	"fmt"
	mrand "math/rand"
	goruntime "runtime"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/serve"
)

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		goruntime.GC()
		n := goruntime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", base, n, buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterChaosNodeKill is the headline robustness scenario, run at
// three fixed seeds: a three-member cluster serves six tenants, replicates
// them, then loses a member without warning while traffic keeps arriving.
// The survivors must detect the death, adopt the victim's tenants from
// their last replica, replay their dead-letter queues, absorb the traffic
// that was addressed to the dead member — and the cluster-wide ledger must
// stay exact: every event posted anywhere is delivered, failed,
// dead-lettered, or dropped somewhere, with nothing double-counted across
// the failover.
func TestClusterChaosNodeKill(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := goruntime.NumGoroutine()
			nodes := startCluster(t, 3, seed, nil)
			rnd := mrand.New(mrand.NewSource(seed))

			tenants := make([]string, 6)
			for i := range tenants {
				tenants[i] = fmt.Sprintf("chaos-%d", i)
				entry := nodes[rnd.Intn(len(nodes))]
				if _, err := entry.node.Control("create", tenants[i], map[string]any{"bundle": "cml"}); err != nil {
					t.Fatal(err)
				}
			}

			// Phase 1: steady traffic through random entry members.
			const preKill = 20
			for i := 0; i < preKill; i++ {
				for _, name := range tenants {
					entry := nodes[rnd.Intn(len(nodes))]
					if err := entry.node.PostEvent(name, broker.Event{Name: "telemetry", Attrs: map[string]any{"n": i}}); err != nil {
						t.Fatalf("pre-kill post %s via %s: %v", name, entry.id, err)
					}
				}
			}
			drainForwards(t, nodes)

			// Every member cuts replicas to its failover successor.
			for _, tn := range nodes {
				if err := tn.node.ReplicateAll(); err != nil {
					t.Fatalf("%s replicate: %v", tn.id, err)
				}
			}

			// Crash the member that owns a seed-chosen tenant. No export,
			// no goodbye.
			victim := homeOf(t, nodes, tenants[int(seed)%len(tenants)])
			t.Logf("killing %s", victim.id)
			victimTenants := map[string]bool{}
			for _, name := range tenants {
				if nodes[0].node.Owner(name) == victim.id {
					victimTenants[name] = true
				}
			}
			victim.kill()

			// Phase 2: traffic keeps arriving at the survivors. Posts for
			// the victim's tenants are accepted into the at-least-once
			// forward queue even though their owner is (still) the corpse.
			live := survivors(nodes)
			const postKill = 10
			for i := 0; i < postKill; i++ {
				for _, name := range tenants {
					entry := live[rnd.Intn(len(live))]
					if err := entry.node.PostEvent(name, broker.Event{Name: "telemetry", Attrs: map[string]any{"n": preKill + i}}); err != nil {
						t.Fatalf("post-kill post %s via %s: %v", name, entry.id, err)
					}
				}
			}

			// Heartbeats miss, suspicion rises, death is declared, replicas
			// are adopted, queued forwards re-route to the new homes.
			tickAll(nodes, 6)
			drainForwards(t, nodes)

			adoptions := int64(0)
			deathsSeen := 0
			for _, tn := range live {
				m := tn.obs.MetricsOf()
				adoptions += m.CounterValue(obs.MClusterAdoptions)
				if m.CounterValue(obs.MClusterDeaths) > 0 {
					deathsSeen++
				}
				if got := tn.node.Members(); len(got) != 2 {
					t.Errorf("%s members after death = %v", tn.id, got)
				}
			}
			if int(adoptions) != len(victimTenants) {
				t.Errorf("adoptions = %d, want %d (victim owned %v)", adoptions, len(victimTenants), victimTenants)
			}
			if deathsSeen != len(live) {
				t.Errorf("only %d/%d survivors declared the death", deathsSeen, len(live))
			}

			// Every tenant lives on exactly one survivor with an exact
			// ledger accounting for all 30 posts — the victim's tenants
			// carried their pre-kill ledger through the replica.
			var total serve.Accounting
			for _, name := range tenants {
				a := drainedAccounting(t, nodes, name)
				if !a.Exact() {
					t.Errorf("%s ledger not exact: %+v", name, a)
				}
				if a.Posted != preKill+postKill {
					t.Errorf("%s posted = %d, want %d (victim-owned: %v)", name, a.Posted, preKill+postKill, victimTenants[name])
				}
				total = total.Add(a)
			}
			if !total.Exact() {
				t.Errorf("cluster-wide ledger not exact: %+v", total)
			}
			if want := int64(len(tenants) * (preKill + postKill)); total.Posted != want {
				t.Errorf("cluster-wide posted = %d, want %d", total.Posted, want)
			}

			// The cluster still serves: post-failover traffic to every
			// tenant lands wherever the tenant lives now.
			for _, name := range tenants {
				entry := live[rnd.Intn(len(live))]
				if err := entry.node.PostEvent(name, broker.Event{Name: "telemetry", Attrs: map[string]any{"n": 999}}); err != nil {
					t.Fatalf("post-failover post %s: %v", name, err)
				}
			}
			drainForwards(t, nodes)
			for _, name := range tenants {
				a := drainedAccounting(t, nodes, name)
				if a.Posted != preKill+postKill+1 || !a.Exact() {
					t.Errorf("%s after failover traffic: %+v", name, a)
				}
			}

			// Clean shutdown of the survivors leaks nothing.
			for _, tn := range nodes {
				tn.close()
			}
			waitGoroutines(t, base)
		})
	}
}
