package cluster

// Placement: which member owns a tenant. The default assignment is the
// same FNV-1a hash the runtime's event pump uses for shard keys, taken
// modulo the sorted live member list — every node computes the same answer
// from the same member view with no coordination. Explicit migrations
// punch through with an override entry (tenant -> member) that is
// replicated on every heartbeat, so a moved tenant stays moved even though
// the hash disagrees.

// fnv32 is FNV-1a, the pump's shard hash applied to tenant names.
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// ownerOf resolves a tenant to its owning member given a live member view.
// Overrides win when they point at a live member; otherwise the hash
// decides. Callers must hold n.mu or otherwise own the snapshot.
func (n *Node) ownerOf(tenant string, members []string) string {
	if len(members) == 0 {
		return n.cfg.NodeID
	}
	if id, ok := n.overrides[tenant]; ok {
		for _, m := range members {
			if m == id {
				return id
			}
		}
		// Override points at a dead member; fall through to the hash.
	}
	return members[int(fnv32(tenant))%len(members)]
}

// Owner returns the member currently responsible for a tenant.
func (n *Node) Owner(tenant string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ownerOf(tenant, n.membersLocked())
}

// mergeOverrides folds a peer's replicated placement map into ours:
// last-writer-wins per tenant, restricted to members we consider live so a
// stale map cannot resurrect a dead owner. Callers must hold n.mu.
func (n *Node) mergeOverridesLocked(theirs map[string]any) {
	if len(theirs) == 0 {
		return
	}
	members := n.membersLocked()
	live := make(map[string]bool, len(members))
	for _, m := range members {
		live[m] = true
	}
	for t, v := range theirs {
		id, ok := v.(string)
		if !ok || !live[id] {
			continue
		}
		n.overrides[t] = id
	}
}
