package policy

import (
	"strings"
	"sync"
	"testing"

	"github.com/mddsm/mddsm/internal/expr"
)

func TestContextBasics(t *testing.T) {
	c := NewContext()
	c.Set("bandwidth", 80)
	c.Set("mode", "audio")
	if v, ok := c.Get("bandwidth"); !ok || v != 80 {
		t.Error("Get")
	}
	if _, ok := c.Get("ghost"); ok {
		t.Error("Get absent")
	}
	snap := c.Snapshot()
	c.Set("bandwidth", 10)
	if v, _ := snap.Lookup("bandwidth"); v != 80 {
		t.Error("snapshot must be isolated from later writes")
	}
	c.Delete("mode")
	if _, ok := c.Get("mode"); ok {
		t.Error("Delete")
	}
}

func TestContextConcurrency(t *testing.T) {
	c := NewContext()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Set("k", n)
				c.Get("k")
				c.Snapshot()
			}
		}(i)
	}
	wg.Wait()
}

func TestDecidePriorityOrder(t *testing.T) {
	e := NewEngine(
		Rule("low", 1, "true", Effect{Key: "case", Value: "action"}),
		Rule("high", 10, "bandwidth < 50", Effect{Key: "case", Value: "intent"}),
	)
	d, err := e.Decide(expr.MapScope{"bandwidth": 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String("case", ""); got != "intent" {
		t.Errorf("high-priority policy must win: %q", got)
	}
	if applied := d.Applied(); len(applied) != 2 || applied[0] != "high" {
		t.Errorf("applied: %v", applied)
	}

	d, err = e.Decide(expr.MapScope{"bandwidth": 90})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String("case", ""); got != "action" {
		t.Errorf("fallback policy: %q", got)
	}
}

func TestDecideTieBreakByName(t *testing.T) {
	e := NewEngine(
		Rule("b", 5, "true", Effect{Key: "k", Value: "from-b"}),
		Rule("a", 5, "true", Effect{Key: "k", Value: "from-a"}),
	)
	if got := e.Names(); got[0] != "a" {
		t.Errorf("names order: %v", got)
	}
	d, err := e.Decide(expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String("k", ""); got != "from-a" {
		t.Errorf("tie break: %q", got)
	}
}

func TestUnboundConditionSkipsPolicy(t *testing.T) {
	e := NewEngine(
		Rule("needs-var", 10, "ghost > 1", Effect{Key: "k", Value: "x"}),
		Rule("default", 1, "true", Effect{Key: "k", Value: "fallback"}),
	)
	d, err := e.Decide(expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String("k", ""); got != "fallback" {
		t.Errorf("unbound condition must be skipped: %q", got)
	}
}

func TestTypeErrorAborts(t *testing.T) {
	e := NewEngine(Rule("bad", 1, "mode > 3"))
	_, err := e.Decide(expr.MapScope{"mode": "audio"})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("type error must abort with policy name: %v", err)
	}
}

func TestDecisionAccessors(t *testing.T) {
	e := NewEngine(Rule("p", 1, "true",
		Effect{Key: "s", Value: "str"},
		Effect{Key: "b", Value: true},
		Effect{Key: "n", Value: 2.5},
		Effect{Key: "i", Value: 4},
	))
	d, err := e.Decide(expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	if d.String("s", "") != "str" {
		t.Error("String")
	}
	if !d.Bool("b", false) {
		t.Error("Bool")
	}
	if d.Number("n", 0) != 2.5 {
		t.Error("Number float")
	}
	if d.Number("i", 0) != 4 {
		t.Error("Number int")
	}
	if d.String("ghost", "dflt") != "dflt" || !d.Bool("ghost", true) || d.Number("ghost", 7) != 7 {
		t.Error("defaults")
	}
	if v, ok := d.Get("s"); !ok || v != "str" {
		t.Error("Get")
	}
	if _, ok := d.Get("ghost"); ok {
		t.Error("Get absent")
	}
}

func TestMultipleEffectsMergeAcrossPolicies(t *testing.T) {
	e := NewEngine(
		Rule("p1", 10, "true", Effect{Key: "a", Value: 1}),
		Rule("p2", 5, "true", Effect{Key: "a", Value: 2}, Effect{Key: "b", Value: 3}),
	)
	d, err := e.Decide(expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Number("a", 0) != 1 {
		t.Error("higher priority keeps key a")
	}
	if d.Number("b", 0) != 3 {
		t.Error("lower priority contributes new key b")
	}
}

func TestEngineWithContextSnapshot(t *testing.T) {
	ctx := NewContext()
	ctx.Set("memoryLow", true)
	e := NewEngine(
		Rule("footprint", 5, "memoryLow", Effect{Key: "case", Value: "intent"}),
		Rule("default", 0, "true", Effect{Key: "case", Value: "action"}),
	)
	d, err := e.Decide(ctx.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Paper §VI: when memory footprint must be reduced, dynamic IM
	// generation is preferred over storing many predefined actions.
	if d.String("case", "") != "intent" {
		t.Error("memoryLow should select the intent case")
	}
}

func TestEngineLen(t *testing.T) {
	if NewEngine().Len() != 0 {
		t.Error("empty engine")
	}
	if NewEngine(Rule("a", 1, "true")).Len() != 1 {
		t.Error("len 1")
	}
}

func BenchmarkDecide(b *testing.B) {
	e := NewEngine(
		Rule("p1", 10, "bandwidth < 50 && mode == 'video'", Effect{Key: "case", Value: "intent"}),
		Rule("p2", 8, "memoryLow", Effect{Key: "case", Value: "intent"}),
		Rule("p3", 5, "latency > 100", Effect{Key: "prefer", Value: "lowCost"}),
		Rule("default", 0, "true", Effect{Key: "case", Value: "action"}),
	)
	scope := expr.MapScope{"bandwidth": 80, "mode": "audio", "memoryLow": false, "latency": 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Decide(scope); err != nil {
			b.Fatal(err)
		}
	}
}
