// Package policy implements the policy engine used across the MD-DSM
// layers. Policies are prioritised condition→effect rules evaluated against
// a context-variable store; they drive command classification in the
// Controller (Case 1 predefined actions vs Case 2 dynamic intent models,
// paper §VI), action selection in the Broker, and intent-model selection.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/mddsm/mddsm/internal/expr"
)

// Context is a thread-safe store of context variables. The middleware keeps
// one per layer; monitors and autonomic managers write into it, and policy
// evaluation reads a snapshot.
type Context struct {
	mu   sync.RWMutex
	vars map[string]any
}

// NewContext returns an empty context.
func NewContext() *Context {
	return &Context{vars: make(map[string]any)}
}

// Set binds a context variable.
func (c *Context) Set(name string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vars[name] = v
}

// Get returns a context variable and whether it is bound.
func (c *Context) Get(name string) (any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.vars[name]
	return v, ok
}

// Delete removes a context variable.
func (c *Context) Delete(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.vars, name)
}

// Snapshot returns a copy of the variables as an expression scope.
func (c *Context) Snapshot() expr.MapScope {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(expr.MapScope, len(c.vars))
	for k, v := range c.vars {
		out[k] = v
	}
	return out
}

// SnapshotInto copies the variables into dst (existing entries are kept,
// same-name entries overwritten). Hot paths reuse a pooled scope across
// snapshots instead of allocating one per call.
func (c *Context) SnapshotInto(dst expr.MapScope) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for k, v := range c.vars {
		dst[k] = v
	}
}

// Effect is one named decision output produced by a policy.
type Effect struct {
	Key   string
	Value any
}

// Policy is a prioritised rule. When Condition evaluates to true, the
// policy's effects are contributed to the decision.
type Policy struct {
	Name      string
	Priority  int // higher evaluates first
	Condition expr.Node
	Effects   []Effect
}

// Rule is a convenience constructor parsing the condition source. It panics
// on a syntactically invalid condition: policies are static domain
// knowledge, so that is a programming error.
func Rule(name string, priority int, condition string, effects ...Effect) Policy {
	return Policy{
		Name:      name,
		Priority:  priority,
		Condition: expr.MustParse(condition),
		Effects:   effects,
	}
}

// Decision is the merged outcome of a policy evaluation round. For each key
// the highest-priority applicable policy wins.
type Decision struct {
	values  map[string]any
	applied []string
}

// Get returns a decision value and whether any policy produced it.
func (d Decision) Get(key string) (any, bool) {
	v, ok := d.values[key]
	return v, ok
}

// String returns a decision value as a string (def when absent or not a
// string).
func (d Decision) String(key, def string) string {
	if s, ok := d.values[key].(string); ok {
		return s
	}
	return def
}

// Bool returns a decision value as a bool (def when absent).
func (d Decision) Bool(key string, def bool) bool {
	if b, ok := d.values[key].(bool); ok {
		return b
	}
	return def
}

// Number returns a decision value as a float64 (def when absent).
func (d Decision) Number(key string, def float64) float64 {
	switch n := d.values[key].(type) {
	case float64:
		return n
	case int:
		return float64(n)
	case int64:
		return float64(n)
	default:
		return def
	}
}

// Applied returns the names of the policies whose condition held, in
// evaluation order.
func (d Decision) Applied() []string { return append([]string(nil), d.applied...) }

// Engine evaluates a fixed set of policies. The zero value is unusable;
// construct with NewEngine.
type Engine struct {
	policies []Policy
	funcs    map[string]expr.Func
}

// NewEngine builds an engine. Policies are sorted by descending priority,
// ties broken by name for determinism.
func NewEngine(policies ...Policy) *Engine {
	sorted := append([]Policy(nil), policies...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Priority != sorted[j].Priority {
			return sorted[i].Priority > sorted[j].Priority
		}
		return sorted[i].Name < sorted[j].Name
	})
	return &Engine{policies: sorted, funcs: expr.StdFuncs()}
}

// Len returns the number of policies.
func (e *Engine) Len() int { return len(e.policies) }

// Names returns the policy names in evaluation order.
func (e *Engine) Names() []string {
	out := make([]string, len(e.policies))
	for i, p := range e.policies {
		out[i] = p.Name
	}
	return out
}

// Decide evaluates every policy against the scope and merges effects;
// for each effect key the first (highest-priority) applicable policy wins.
//
// A policy whose condition references an unbound context variable is
// considered not applicable — middleware frequently runs with partial
// context — while any other evaluation error aborts the decision.
func (e *Engine) Decide(scope expr.Scope) (Decision, error) {
	d := Decision{values: make(map[string]any)}
	env := expr.Env{Scope: scope, Funcs: e.funcs}
	for _, p := range e.policies {
		ok, err := expr.EvalBool(p.Condition, env)
		if err != nil {
			if errors.Is(err, expr.ErrUnboundIdentifier) {
				continue
			}
			return Decision{}, fmt.Errorf("policy %s: %w", p.Name, err)
		}
		if !ok {
			continue
		}
		d.applied = append(d.applied, p.Name)
		for _, eff := range p.Effects {
			if _, taken := d.values[eff.Key]; !taken {
				d.values[eff.Key] = eff.Value
			}
		}
	}
	return d, nil
}
