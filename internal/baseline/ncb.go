// Package baseline implements the paper's comparators:
//
//   - HandcraftedNCB — the original, non-model-based CVM Broker layer
//     (paper §VII-A): a hand-coded dispatch over the communication service,
//     equivalent in behaviour to the model-based NCB but without the
//     metamodel machinery (no action selection, no policy scopes, no
//     template expansion);
//   - NonAdaptiveController — the "previous non-adaptive Controller" of
//     §VII-B: commands are wired to fixed procedures with no
//     classification, no policies and no intent-model generation.
package baseline

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/resources/comm"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// HandcraftedNCB is the hand-coded communication Broker. It exposes the
// same Call surface as the model-based Broker and recovers failed streams
// identically (safe audio profile), so the two must produce equal service
// traces on the scenario suite.
type HandcraftedNCB struct {
	Service *comm.Service
	Clock   *simtime.VirtualClock
}

// NewHandcraftedNCB builds the broker over a fresh simulated service with
// its failure-recovery handler wired.
func NewHandcraftedNCB() *HandcraftedNCB {
	clock := simtime.NewVirtual()
	n := &HandcraftedNCB{Clock: clock}
	n.Service = comm.NewService(clock, n.onEvent)
	return n
}

// Call dispatches one broker-level call directly to the service.
func (n *HandcraftedNCB) Call(cmd script.Command) error {
	id := stripPrefix(cmd.Target)
	switch cmd.Op {
	case "createSession":
		return n.Service.CreateSession(id)
	case "closeSession":
		return n.Service.CloseSession(id)
	case "addParticipant":
		return n.Service.AddParticipant(id, cmd.StringArg("who"))
	case "removeParticipant":
		return n.Service.RemoveParticipant(id, cmd.StringArg("who"))
	case "openStream":
		return n.Service.OpenStream(cmd.StringArg("session"), id,
			comm.MediaType(cmd.StringArg("media")), cmd.NumArg("bandwidth"))
	case "closeStream":
		return n.Service.CloseStream(cmd.StringArg("session"), id)
	case "reconfigureStream":
		media := comm.MediaType(cmd.StringArg("media"))
		bandwidth := cmd.NumArg("bandwidth")
		if media == "" || bandwidth == 0 {
			sess := n.Service.Session(cmd.StringArg("session"))
			if sess == nil {
				return fmt.Errorf("handcrafted ncb: unknown session %q", cmd.StringArg("session"))
			}
			st := sess.Stream(id)
			if st == nil {
				return fmt.Errorf("handcrafted ncb: unknown stream %q", id)
			}
			if media == "" {
				media = st.Media
			}
			if bandwidth == 0 {
				bandwidth = st.Bandwidth
			}
		}
		return n.Service.ReconfigureStream(cmd.StringArg("session"), id, media, bandwidth)
	case "sendData":
		return n.Service.SendData(cmd.StringArg("session"), id, cmd.NumArg("bytes"))
	default:
		return fmt.Errorf("handcrafted ncb: unknown op %q", cmd.Op)
	}
}

// onEvent recovers failed streams by reconfiguring them to the safe audio
// profile — the same behaviour the model-based NCB declares as an event
// action.
func (n *HandcraftedNCB) onEvent(e comm.Event) {
	if e.Kind != "streamFailed" {
		return
	}
	// Recovery failures have no caller; the stream simply stays down.
	_ = n.Service.ReconfigureStream(e.Str("session"), e.Str("stream"), comm.Audio, 32)
}

func stripPrefix(target string) string {
	for i := 0; i < len(target); i++ {
		if target[i] == ':' {
			return target[i+1:]
		}
	}
	return target
}
