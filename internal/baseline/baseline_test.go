package baseline

import (
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/resources/comm"
	"github.com/mddsm/mddsm/internal/script"
)

func TestHandcraftedNCBBasicFlow(t *testing.T) {
	n := NewHandcraftedNCB()
	calls := []script.Command{
		script.NewCommand("createSession", "session:s1"),
		script.NewCommand("addParticipant", "session:s1").WithArg("who", "alice"),
		script.NewCommand("openStream", "stream:a1").
			WithArg("session", "s1").WithArg("media", "audio").WithArg("bandwidth", 64),
		script.NewCommand("sendData", "stream:a1").
			WithArg("session", "s1").WithArg("bytes", 100),
		script.NewCommand("reconfigureStream", "stream:a1").
			WithArg("session", "s1").WithArg("media", "video").WithArg("bandwidth", 256),
		script.NewCommand("closeStream", "stream:a1").WithArg("session", "s1"),
		script.NewCommand("removeParticipant", "session:s1").WithArg("who", "alice"),
		script.NewCommand("closeSession", "session:s1"),
	}
	for i, c := range calls {
		if err := n.Call(c); err != nil {
			t.Fatalf("call %d (%s): %v", i, c.Op, err)
		}
	}
	if n.Service.Trace().Len() != 8 {
		t.Errorf("trace:\n%s", n.Service.Trace())
	}
}

func TestHandcraftedNCBRecovery(t *testing.T) {
	n := NewHandcraftedNCB()
	if err := n.Call(script.NewCommand("createSession", "session:s1")); err != nil {
		t.Fatal(err)
	}
	if err := n.Call(script.NewCommand("openStream", "stream:v1").
		WithArg("session", "s1").WithArg("media", "video").WithArg("bandwidth", 512)); err != nil {
		t.Fatal(err)
	}
	if err := n.Service.InjectStreamFailure("s1", "v1"); err != nil {
		t.Fatal(err)
	}
	st := n.Service.Session("s1").Stream("v1")
	if !st.Up || st.Media != comm.Audio || st.Bandwidth != 32 {
		t.Errorf("recovery: %+v", st)
	}
}

func TestHandcraftedNCBPartialReconfigure(t *testing.T) {
	n := NewHandcraftedNCB()
	if err := n.Call(script.NewCommand("createSession", "session:s1")); err != nil {
		t.Fatal(err)
	}
	if err := n.Call(script.NewCommand("openStream", "stream:a1").
		WithArg("session", "s1").WithArg("media", "audio").WithArg("bandwidth", 64)); err != nil {
		t.Fatal(err)
	}
	// Only the media changes; bandwidth is filled from current state.
	if err := n.Call(script.NewCommand("reconfigureStream", "stream:a1").
		WithArg("session", "s1").WithArg("media", "video")); err != nil {
		t.Fatal(err)
	}
	st := n.Service.Session("s1").Stream("a1")
	if st.Media != comm.Video || st.Bandwidth != 64 {
		t.Errorf("partial reconfigure: %+v", st)
	}
}

func TestHandcraftedNCBErrors(t *testing.T) {
	n := NewHandcraftedNCB()
	if err := n.Call(script.NewCommand("mystery", "x")); err == nil {
		t.Error("unknown op must fail")
	}
	if err := n.Call(script.NewCommand("reconfigureStream", "stream:x").WithArg("session", "ghost")); err == nil {
		t.Error("unknown session must fail")
	}
	if err := n.Call(script.NewCommand("createSession", "session:s")); err != nil {
		t.Fatal(err)
	}
	if err := n.Call(script.NewCommand("reconfigureStream", "stream:x").WithArg("session", "s")); err == nil {
		t.Error("unknown stream must fail")
	}
}

// traceBroker records what the fixed routes emit.
type traceBroker struct {
	trace script.Trace
}

func (b *traceBroker) Call(cmd script.Command) error {
	b.trace.Record(cmd)
	return nil
}

func TestNonAdaptiveControllerRoutes(t *testing.T) {
	b := &traceBroker{}
	c := NewNonAdaptiveController(b, []FixedRoute{
		{Op: "deliver", Calls: []script.Command{
			script.NewCommand("relayPrimary", "{target}"),
		}},
		{Op: "setup", Calls: []script.Command{
			script.NewCommand("alloc", "{target}"),
			script.NewCommand("bind", "fixed-endpoint"),
		}},
	})
	if err := c.Process(script.NewCommand("deliver", "pkt:1").WithArg("size", 10)); err != nil {
		t.Fatal(err)
	}
	if got := b.trace.Lines()[0]; got != "relayPrimary pkt:1 size=10" {
		t.Errorf("route with target substitution and arg forwarding: %q", got)
	}
	s := script.New("s").Append(script.NewCommand("setup", "ch:2"))
	if err := c.Execute(s); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(b.trace.Lines(), ";")
	if !strings.Contains(joined, "alloc ch:2;bind fixed-endpoint") {
		t.Errorf("multi-call route: %s", joined)
	}
	if err := c.Process(script.NewCommand("unknown", "x")); err == nil {
		t.Error("unrouted op must fail")
	}
	if err := c.Execute(script.New("s").Append(script.NewCommand("unknown", "x"))); err == nil {
		t.Error("unrouted op in script must fail")
	}
}
