package baseline

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/script"
)

// FixedRoute is one hard-wired command binding of the non-adaptive
// Controller: the op maps to a fixed sequence of broker calls, decided at
// development time.
type FixedRoute struct {
	Op    string
	Calls []script.Command
}

// BrokerAPI matches the Broker layer's call surface.
type BrokerAPI interface {
	Call(cmd script.Command) error
}

// NonAdaptiveController is the §VII-B comparator: a Controller with its
// procedures compiled in. There is no command classification, no policy
// evaluation, no repository and no intent-model generation — and therefore
// no way to react when the environment changes.
type NonAdaptiveController struct {
	broker BrokerAPI
	routes map[string][]script.Command
}

// NewNonAdaptiveController wires the fixed routes to a broker.
func NewNonAdaptiveController(b BrokerAPI, routes []FixedRoute) *NonAdaptiveController {
	m := make(map[string][]script.Command, len(routes))
	for _, r := range routes {
		m[r.Op] = r.Calls
	}
	return &NonAdaptiveController{broker: b, routes: m}
}

// Process executes one command through its fixed route. The {target} of a
// routed call is replaced by the incoming command's target and the incoming
// arguments are forwarded.
func (c *NonAdaptiveController) Process(cmd script.Command) error {
	calls, ok := c.routes[cmd.Op]
	if !ok {
		return fmt.Errorf("non-adaptive controller: no route for op %q", cmd.Op)
	}
	for _, call := range calls {
		out := call
		if out.Target == "{target}" {
			out.Target = cmd.Target
		}
		for k, v := range cmd.Args {
			if _, exists := out.Arg(k); !exists {
				out = out.WithArg(k, v)
			}
		}
		if err := c.broker.Call(out); err != nil {
			return err
		}
	}
	return nil
}

// Execute runs a script through the fixed routes.
func (c *NonAdaptiveController) Execute(s *script.Script) error {
	for i, cmd := range s.Commands {
		if err := c.Process(cmd); err != nil {
			return fmt.Errorf("non-adaptive controller: command %d (%s): %w", i, cmd.Op, err)
		}
	}
	return nil
}
