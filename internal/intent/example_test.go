package intent_test

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/intent"
	"github.com/mddsm/mddsm/internal/registry"
)

// ExampleGenerator_Generate builds an intent model for a goal classifier:
// candidates are matched against their DSC-described dependencies and the
// cost-optimal configuration is selected.
func ExampleGenerator_Generate() {
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.send", Domain: "d", Category: dsc.Operation})
	tx.MustAdd(&dsc.DSC{ID: "op.encode", Domain: "d", Category: dsc.Operation})

	repo := registry.NewRepository(tx)
	repo.MustAdd(&registry.Procedure{
		ID: "send", ClassifiedBy: "op.send", Cost: 5,
		Dependencies: []string{"op.encode"},
		Unit:         eu.NewUnit("send"),
	})
	repo.MustAdd(&registry.Procedure{
		ID: "gzipEncode", ClassifiedBy: "op.encode", Cost: 3,
		Unit: eu.NewUnit("gzipEncode"),
	})
	repo.MustAdd(&registry.Procedure{
		ID: "rawEncode", ClassifiedBy: "op.encode", Cost: 1,
		Unit: eu.NewUnit("rawEncode"),
	})

	gen := intent.NewGenerator(repo, nil, intent.Options{})
	m, err := gen.Generate("op.send", expr.MapScope{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(m)
	// Output:
	// intent op.send cost=6.0 rel=1.000
	//   op.send <- send
	//     op.encode <- rawEncode
}
