// Package intent implements Intent Model (IM) generation, validation and
// selection (paper §V-B, Fig. 7). Given a goal DSC and the procedure
// repository, the generator recursively matches each candidate procedure's
// DSC-described dependencies against other procedures, avoiding cycles,
// until a procedure dependency tree — the Intent Model — is produced. The
// choice among competing candidates is driven by active policies evaluated
// against the current context.
//
// A generation cache keyed by (goal, policy decision) provides the
// amortisation the paper reports: the first full generation cycle for a
// 100-procedure repository costs up to ~120 ms-scale work, while repeated
// cycles approach constant time (paper §VII-B).
package intent

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/registry"
)

// ErrNoConfiguration is returned when no valid procedure configuration can
// realise the requested goal.
var ErrNoConfiguration = errors.New("no valid configuration")

// Node is one procedure activation in an intent model.
type Node struct {
	// Required is the DSC this node was matched against.
	Required string
	// Procedure is the matched repository entry.
	Procedure *registry.Procedure
	// Children maps each dependency DSC of Procedure to its subtree.
	Children map[string]*Node
}

// Model is a generated intent model: a procedure dependency tree whose
// operation is classified by the classifying DSC of the root procedure.
type Model struct {
	// Goal is the DSC the model realises.
	Goal string
	// Root is the root procedure node.
	Root *Node
	// Cost is the summed Cost of all nodes.
	Cost float64
	// Reliability is the product of node reliabilities (series
	// composition).
	Reliability float64
	// Size is the number of nodes.
	Size int
}

// String renders the tree, one node per line, depth-indented.
func (m *Model) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "intent %s cost=%.1f rel=%.3f\n", m.Goal, m.Cost, m.Reliability)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&sb, "%s%s <- %s\n", strings.Repeat("  ", depth+1), n.Required, n.Procedure.ID)
		for _, dep := range sortedDeps(n) {
			walk(n.Children[dep], depth+1)
		}
	}
	walk(m.Root, 0)
	return sb.String()
}

func sortedDeps(n *Node) []string {
	deps := make([]string, 0, len(n.Children))
	for d := range n.Children {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	return deps
}

// Frames converts the model into the stack-machine frame tree. Each node's
// frame resolves DSC-based calls to the pre-matched child procedure and
// charges the procedure's abstract Cost as virtual time on activation.
func (m *Model) Frames() *eu.Frame {
	return frameFor(m.Root)
}

func frameFor(n *Node) *eu.Frame {
	children := make(map[string]*eu.Frame, len(n.Children))
	for dep, child := range n.Children {
		children[dep] = frameFor(child)
	}
	return &eu.Frame{
		Label:       n.Procedure.ID,
		Unit:        n.Procedure.Unit,
		EnterCharge: time.Duration(n.Procedure.Cost * float64(time.Millisecond)),
		Resolve: func(dscID string) (*eu.Frame, error) {
			f, ok := children[dscID]
			if !ok {
				return nil, fmt.Errorf("dependency %q not matched in intent model", dscID)
			}
			return f, nil
		},
	}
}

// Stats counts generator work, consumed by the evaluation harness.
type Stats struct {
	// Generations counts full generation cycles (cache misses).
	Generations int
	// CacheHits counts requests served from the cache.
	CacheHits int
	// ConfigsExplored counts candidate subtrees examined across all
	// generations.
	ConfigsExplored int
}

// Options tunes the generator.
type Options struct {
	// MaxDepth bounds the dependency tree depth (default 16).
	MaxDepth int
	// DisableCache turns the generation cache off (for the ablation
	// benchmark).
	DisableCache bool
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 16
	}
	return o
}

// Generator produces intent models from a repository under selection
// policies. It is not safe for concurrent use; the Controller serialises
// command processing (the paper's Controller handles "sequential requests").
type Generator struct {
	repo   *registry.Repository
	engine *policy.Engine
	opts   Options
	cache  map[string]*Model
	stats  Stats
}

// NewGenerator builds a generator. engine may be nil, in which case
// cost-minimising selection is used unconditionally.
func NewGenerator(repo *registry.Repository, engine *policy.Engine, opts Options) *Generator {
	return &Generator{
		repo:   repo,
		engine: engine,
		opts:   opts.withDefaults(),
		cache:  make(map[string]*Model),
	}
}

// Stats returns a copy of the work counters.
func (g *Generator) Stats() Stats { return g.stats }

// Invalidate clears the generation cache. Callers must invoke it after
// mutating the procedure repository.
func (g *Generator) Invalidate() { g.cache = make(map[string]*Model) }

// selection captures the policy-decided selection criteria for one request.
type selection struct {
	optimize  string // "cost", "reliability" or "balanced"
	preferTag string // "key=value" preference bonus, "" for none
	maxCost   float64
}

func (g *Generator) decide(scope expr.Scope) (selection, error) {
	sel := selection{optimize: "cost", maxCost: -1}
	if g.engine == nil {
		return sel, nil
	}
	d, err := g.engine.Decide(scope)
	if err != nil {
		return sel, fmt.Errorf("selection policies: %w", err)
	}
	sel.optimize = d.String("optimize", "cost")
	sel.preferTag = d.String("preferTag", "")
	sel.maxCost = d.Number("maxCost", -1)
	return sel, nil
}

func (sel selection) fingerprint() string {
	return fmt.Sprintf("%s|%s|%g", sel.optimize, sel.preferTag, sel.maxCost)
}

// Generate runs a full generation cycle — IM generation, validation, and
// selection — for the goal DSC under the context scope. Results are cached
// per (goal, policy decision); a repository mutation requires Invalidate.
func (g *Generator) Generate(goal string, scope expr.Scope) (*Model, error) {
	sel, err := g.decide(scope)
	if err != nil {
		return nil, err
	}
	key := goal + "|" + sel.fingerprint()
	if !g.opts.DisableCache {
		if m, ok := g.cache[key]; ok {
			g.stats.CacheHits++
			return m, nil
		}
	}
	g.stats.Generations++
	path := make(map[string]bool)
	root, err := g.build(goal, sel, path, 0)
	if err != nil {
		return nil, fmt.Errorf("goal %s: %w", goal, err)
	}
	m := &Model{Goal: goal, Root: root}
	m.Cost, m.Reliability, m.Size = summarize(root)
	if sel.maxCost >= 0 && m.Cost > sel.maxCost {
		return nil, fmt.Errorf("goal %s: best configuration cost %.1f exceeds maxCost %.1f: %w",
			goal, m.Cost, sel.maxCost, ErrNoConfiguration)
	}
	if err := Validate(m, g.repo, g.opts.MaxDepth); err != nil {
		return nil, fmt.Errorf("goal %s: generated model invalid: %w", goal, err)
	}
	if !g.opts.DisableCache {
		g.cache[key] = m
	}
	return m, nil
}

// build returns the best subtree realising the required DSC, exploring each
// candidate procedure and recursively matching its dependencies.
func (g *Generator) build(required string, sel selection, path map[string]bool, depth int) (*Node, error) {
	if depth > g.opts.MaxDepth {
		return nil, fmt.Errorf("dependency depth exceeds %d at %q", g.opts.MaxDepth, required)
	}
	candidates := g.repo.CandidatesFor(required)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("no procedure classified to satisfy %q: %w", required, ErrNoConfiguration)
	}
	var (
		best      *Node
		bestScore float64
		lastErr   error
	)
	for _, p := range candidates {
		if path[p.ClassifiedBy] {
			// Cycle avoidance: the classifying DSC is already on the
			// current activation path.
			continue
		}
		g.stats.ConfigsExplored++
		node := &Node{Required: required, Procedure: p}
		path[p.ClassifiedBy] = true
		ok := true
		if len(p.Dependencies) > 0 {
			node.Children = make(map[string]*Node, len(p.Dependencies))
			for _, dep := range p.Dependencies {
				child, err := g.build(dep, sel, path, depth+1)
				if err != nil {
					lastErr = err
					ok = false
					break
				}
				node.Children[dep] = child
			}
		}
		delete(path, p.ClassifiedBy)
		if !ok {
			continue
		}
		score := g.score(node, sel)
		if best == nil || score < bestScore {
			best, bestScore = node, score
		}
	}
	if best == nil {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("all candidates for %q cyclic: %w", required, ErrNoConfiguration)
	}
	return best, nil
}

// score maps a candidate subtree to a comparable figure; lower is better.
// Ties are impossible to observe deterministically because candidates are
// visited in ID order and strict inequality keeps the first.
func (g *Generator) score(n *Node, sel selection) float64 {
	cost, rel, size := summarize(n)
	var s float64
	switch sel.optimize {
	case "reliability":
		s = (1-rel)*10000 + cost*0.01
	case "balanced":
		s = cost + (1-rel)*1000
	default: // cost
		s = cost + float64(size)*0.001
	}
	if sel.preferTag != "" {
		key, val, _ := strings.Cut(sel.preferTag, "=")
		s -= countTag(n, key, val) * 50
	}
	return s
}

func countTag(n *Node, key, val string) float64 {
	total := 0.0
	if n.Procedure.Tag(key) == val {
		total = 1
	}
	for _, c := range n.Children {
		total += countTag(c, key, val)
	}
	return total
}

func summarize(n *Node) (cost, reliability float64, size int) {
	cost = n.Procedure.Cost
	reliability = n.Procedure.Reliability
	if reliability == 0 {
		reliability = 1 // unspecified reliability treated as perfect
	}
	size = 1
	for _, c := range n.Children {
		cc, cr, cs := summarize(c)
		cost += cc
		reliability *= cr
		size += cs
	}
	return cost, reliability, size
}

// Validate checks a model's structural soundness: every node's procedure
// satisfies its required DSC, every declared dependency is matched by a
// child, no classifying DSC repeats along a path (acyclicity), and the tree
// respects the depth bound.
func Validate(m *Model, repo *registry.Repository, maxDepth int) error {
	if m == nil || m.Root == nil {
		return errors.New("empty intent model")
	}
	tax := repo.Taxonomy()
	var walk func(n *Node, path map[string]bool, depth int) error
	walk = func(n *Node, path map[string]bool, depth int) error {
		if depth > maxDepth {
			return fmt.Errorf("depth %d exceeds %d", depth, maxDepth)
		}
		if n.Procedure == nil {
			return fmt.Errorf("node for %q has no procedure", n.Required)
		}
		if repo.Get(n.Procedure.ID) == nil {
			return fmt.Errorf("procedure %q no longer in repository", n.Procedure.ID)
		}
		if !tax.Satisfies(n.Procedure.ClassifiedBy, n.Required) {
			return fmt.Errorf("procedure %q (%s) does not satisfy %q",
				n.Procedure.ID, n.Procedure.ClassifiedBy, n.Required)
		}
		if path[n.Procedure.ClassifiedBy] {
			return fmt.Errorf("cycle: classifier %q repeats on path", n.Procedure.ClassifiedBy)
		}
		if len(n.Children) != len(n.Procedure.Dependencies) {
			return fmt.Errorf("procedure %q: %d dependencies, %d matched",
				n.Procedure.ID, len(n.Procedure.Dependencies), len(n.Children))
		}
		path[n.Procedure.ClassifiedBy] = true
		defer delete(path, n.Procedure.ClassifiedBy)
		for _, dep := range n.Procedure.Dependencies {
			child, ok := n.Children[dep]
			if !ok {
				return fmt.Errorf("procedure %q: dependency %q unmatched", n.Procedure.ID, dep)
			}
			if err := walk(child, path, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(m.Root, make(map[string]bool), 0)
}
