package intent

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/script"
)

// fixture builds a small communication-flavoured taxonomy and repository:
//
//	goal op.connect depends on op.signal and op.stream;
//	op.stream has a cheap/unreliable and a costly/reliable alternative;
//	op.signal has one provider that itself depends on op.auth.
func fixture(t testing.TB) *registry.Repository {
	t.Helper()
	tx := dsc.NewTaxonomy()
	for _, id := range []string{"op.connect", "op.signal", "op.stream", "op.auth"} {
		tx.MustAdd(&dsc.DSC{ID: id, Domain: "comm", Category: dsc.Operation})
	}
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
	r := registry.NewRepository(tx)
	add := func(id, cls string, cost, rel float64, tags map[string]string, deps ...string) {
		r.MustAdd(&registry.Procedure{
			ID: id, Name: id, Domain: "comm", ClassifiedBy: cls,
			Dependencies: deps, Cost: cost, Reliability: rel,
			Unit: eu.NewUnit(id, eu.Invoke("exec_"+id, "t")), Tags: tags,
		})
	}
	add("connect", "op.connect", 10, 0.99, nil, "op.signal", "op.stream")
	add("signal", "op.signal", 5, 0.99, nil, "op.auth")
	add("auth", "op.auth", 2, 0.999, nil)
	add("streamCheap", "op.stream", 3, 0.80, map[string]string{"transport": "udp"})
	add("streamSolid", "op.stream", 20, 0.999, map[string]string{"transport": "tcp"})
	return r
}

func TestGenerateCostOptimal(t *testing.T) {
	g := NewGenerator(fixture(t), nil, Options{})
	m, err := g.Generate("op.connect", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Root.Procedure.ID != "connect" {
		t.Errorf("root: %s", m.Root.Procedure.ID)
	}
	if got := m.Root.Children["op.stream"].Procedure.ID; got != "streamCheap" {
		t.Errorf("cost-optimal must pick streamCheap, got %s", got)
	}
	if m.Size != 4 {
		t.Errorf("size: %d", m.Size)
	}
	if m.Cost != 20 { // 10+5+2+3
		t.Errorf("cost: %v", m.Cost)
	}
	if err := Validate(m, fixture(t), 16); err == nil {
		// Validate against a *fresh* fixture fails on repository identity;
		// validate against the generator's own repo instead below.
		t.Log("fresh-repo validation unexpectedly passed (IDs matched)")
	}
}

func TestGenerateReliabilityOptimal(t *testing.T) {
	engine := policy.NewEngine(
		policy.Rule("critical", 10, "critical", policy.Effect{Key: "optimize", Value: "reliability"}),
	)
	g := NewGenerator(fixture(t), engine, Options{})
	m, err := g.Generate("op.connect", expr.MapScope{"critical": true})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Root.Children["op.stream"].Procedure.ID; got != "streamSolid" {
		t.Errorf("reliability-optimal must pick streamSolid, got %s", got)
	}
}

func TestPreferTagPolicy(t *testing.T) {
	engine := policy.NewEngine(
		policy.Rule("lan", 5, "network == 'lan'", policy.Effect{Key: "preferTag", Value: "transport=tcp"}),
	)
	g := NewGenerator(fixture(t), engine, Options{})
	m, err := g.Generate("op.connect", expr.MapScope{"network": "lan"})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Root.Children["op.stream"].Procedure.ID; got != "streamSolid" {
		t.Errorf("tag preference must pick streamSolid (tcp), got %s", got)
	}
}

func TestMaxCostConstraint(t *testing.T) {
	engine := policy.NewEngine(
		policy.Rule("tight", 5, "true", policy.Effect{Key: "maxCost", Value: 5.0}),
	)
	g := NewGenerator(fixture(t), engine, Options{})
	_, err := g.Generate("op.connect", expr.MapScope{})
	if !errors.Is(err, ErrNoConfiguration) {
		t.Fatalf("want ErrNoConfiguration, got %v", err)
	}
}

func TestNoCandidates(t *testing.T) {
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.x", Domain: "d", Category: dsc.Operation})
	g := NewGenerator(registry.NewRepository(tx), nil, Options{})
	_, err := g.Generate("op.x", expr.MapScope{})
	if !errors.Is(err, ErrNoConfiguration) {
		t.Fatalf("want ErrNoConfiguration, got %v", err)
	}
}

func TestUnresolvableDependency(t *testing.T) {
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.a", Domain: "d", Category: dsc.Operation})
	tx.MustAdd(&dsc.DSC{ID: "op.missing", Domain: "d", Category: dsc.Operation})
	r := registry.NewRepository(tx)
	r.MustAdd(&registry.Procedure{ID: "a", ClassifiedBy: "op.a", Dependencies: []string{"op.missing"}, Unit: eu.NewUnit("a")})
	g := NewGenerator(r, nil, Options{})
	_, err := g.Generate("op.a", expr.MapScope{})
	if !errors.Is(err, ErrNoConfiguration) {
		t.Fatalf("want ErrNoConfiguration, got %v", err)
	}
}

func TestCycleAvoidance(t *testing.T) {
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.a", Domain: "d", Category: dsc.Operation})
	tx.MustAdd(&dsc.DSC{ID: "op.b", Domain: "d", Category: dsc.Operation})
	r := registry.NewRepository(tx)
	// a -> b -> a would be a cycle; a leaf alternative for op.a exists.
	r.MustAdd(&registry.Procedure{ID: "a1", ClassifiedBy: "op.a", Dependencies: []string{"op.b"}, Cost: 1, Unit: eu.NewUnit("a1")})
	r.MustAdd(&registry.Procedure{ID: "b1", ClassifiedBy: "op.b", Dependencies: []string{"op.a"}, Cost: 1, Unit: eu.NewUnit("b1")})
	r.MustAdd(&registry.Procedure{ID: "a2", ClassifiedBy: "op.a", Cost: 100, Unit: eu.NewUnit("a2")})
	g := NewGenerator(r, nil, Options{})
	m, err := g.Generate("op.a", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	// a1 -> b1 -> a2 is valid (classifiers op.a, op.b, op.a? no — op.a
	// repeats). So the only valid trees are a1->b1->X (X must avoid op.a:
	// impossible) — wait, a2 is classified op.a which is on the path.
	// Therefore the result must be the leaf a2 alone.
	if m.Root.Procedure.ID != "a2" || m.Size != 1 {
		t.Fatalf("cycle avoidance picked %s (size %d):\n%s", m.Root.Procedure.ID, m.Size, m)
	}
	if err := Validate(m, r, 16); err != nil {
		t.Fatal(err)
	}
}

func TestPureCycleFails(t *testing.T) {
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.a", Domain: "d", Category: dsc.Operation})
	tx.MustAdd(&dsc.DSC{ID: "op.b", Domain: "d", Category: dsc.Operation})
	r := registry.NewRepository(tx)
	r.MustAdd(&registry.Procedure{ID: "a1", ClassifiedBy: "op.a", Dependencies: []string{"op.b"}, Unit: eu.NewUnit("a1")})
	r.MustAdd(&registry.Procedure{ID: "b1", ClassifiedBy: "op.b", Dependencies: []string{"op.a"}, Unit: eu.NewUnit("b1")})
	g := NewGenerator(r, nil, Options{})
	if _, err := g.Generate("op.a", expr.MapScope{}); !errors.Is(err, ErrNoConfiguration) {
		t.Fatalf("want ErrNoConfiguration, got %v", err)
	}
}

func TestCacheHitsAndInvalidate(t *testing.T) {
	r := fixture(t)
	g := NewGenerator(r, nil, Options{})
	m1, err := g.Generate("op.connect", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g.Generate("op.connect", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("second generation must be served from cache")
	}
	s := g.Stats()
	if s.Generations != 1 || s.CacheHits != 1 {
		t.Errorf("stats: %+v", s)
	}
	g.Invalidate()
	if _, err := g.Generate("op.connect", expr.MapScope{}); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Generations != 2 {
		t.Errorf("invalidate must force regeneration: %+v", g.Stats())
	}
}

func TestCacheKeyedByDecision(t *testing.T) {
	engine := policy.NewEngine(
		policy.Rule("critical", 10, "critical", policy.Effect{Key: "optimize", Value: "reliability"}),
	)
	g := NewGenerator(fixture(t), engine, Options{})
	m1, err := g.Generate("op.connect", expr.MapScope{"critical": false})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g.Generate("op.connect", expr.MapScope{"critical": true})
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Error("different policy decisions must not share cache entries")
	}
	if g.Stats().Generations != 2 {
		t.Errorf("stats: %+v", g.Stats())
	}
}

func TestDisableCache(t *testing.T) {
	g := NewGenerator(fixture(t), nil, Options{DisableCache: true})
	for i := 0; i < 3; i++ {
		if _, err := g.Generate("op.connect", expr.MapScope{}); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Stats()
	if s.Generations != 3 || s.CacheHits != 0 {
		t.Errorf("stats with cache disabled: %+v", s)
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	r := fixture(t)
	g := NewGenerator(r, nil, Options{})
	m, err := g.Generate("op.connect", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, r, 16); err != nil {
		t.Fatal(err)
	}
	if err := Validate(nil, r, 16); err == nil {
		t.Error("nil model must fail")
	}
	// Unmatched dependency.
	tampered := *m
	root := *m.Root
	root.Children = map[string]*Node{}
	tampered.Root = &root
	if err := Validate(&tampered, r, 16); err == nil {
		t.Error("dependency count mismatch must fail")
	}
	// Procedure removed from repository.
	if err := r.Remove("auth"); err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, r, 16); err == nil || !strings.Contains(err.Error(), "no longer in repository") {
		t.Errorf("stale procedure must fail: %v", err)
	}
}

func TestValidateWrongClassifier(t *testing.T) {
	r := fixture(t)
	g := NewGenerator(r, nil, Options{})
	m, err := g.Generate("op.connect", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	m.Root.Required = "op.stream" // root procedure no longer satisfies
	if err := Validate(m, r, 16); err == nil || !strings.Contains(err.Error(), "does not satisfy") {
		t.Errorf("got %v", err)
	}
}

func TestModelString(t *testing.T) {
	g := NewGenerator(fixture(t), nil, Options{})
	m, err := g.Generate("op.connect", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	for _, want := range []string{"intent op.connect", "connect", "streamCheap", "auth"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

// chargeRecorder counts virtual time.
type chargeRecorder struct{ total time.Duration }

func (c *chargeRecorder) Charge(d time.Duration) { c.total += d }

// traceBroker records commands.
type traceBroker struct{ trace script.Trace }

func (b *traceBroker) Invoke(cmd script.Command) error {
	b.trace.Record(cmd)
	return nil
}

func TestFramesExecuteViaMachine(t *testing.T) {
	r := fixture(t)
	// Give the connect procedure a body that calls its dependencies.
	r.Get("connect").Unit = eu.NewUnit("connect",
		eu.Call("op.signal"),
		eu.Call("op.stream"),
		eu.Invoke("exec_connect", "t"),
	)
	r.Get("signal").Unit = eu.NewUnit("signal",
		eu.Call("op.auth"),
		eu.Invoke("exec_signal", "t"),
	)
	g := NewGenerator(r, nil, Options{})
	m, err := g.Generate("op.connect", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	broker := &traceBroker{}
	ch := &chargeRecorder{}
	machine := eu.NewMachine(broker, nil, ch, eu.Limits{})
	if err := machine.Run(m.Frames(), nil); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(broker.trace.Lines(), ";")
	want := "exec_auth t;exec_signal t;exec_streamCheap t;exec_connect t"
	if got != want {
		t.Errorf("execution order:\ngot  %q\nwant %q", got, want)
	}
	// Charges: 10+5+2+3 = 20 virtual ms.
	if ch.total != 20*time.Millisecond {
		t.Errorf("charged %v, want 20ms", ch.total)
	}
}

func TestFramesUnmatchedDependency(t *testing.T) {
	r := fixture(t)
	r.Get("connect").Unit = eu.NewUnit("connect", eu.Call("op.ghost"))
	g := NewGenerator(r, nil, Options{})
	m, err := g.Generate("op.connect", expr.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	machine := eu.NewMachine(&traceBroker{}, nil, nil, eu.Limits{})
	err = machine.Run(m.Frames(), nil)
	if err == nil || !strings.Contains(err.Error(), "not matched") {
		t.Errorf("got %v", err)
	}
}

func TestPolicyErrorPropagates(t *testing.T) {
	engine := policy.NewEngine(policy.Rule("bad", 1, "mode > 1"))
	g := NewGenerator(fixture(t), engine, Options{})
	_, err := g.Generate("op.connect", expr.MapScope{"mode": "str"})
	if err == nil || !strings.Contains(err.Error(), "selection policies") {
		t.Errorf("got %v", err)
	}
}

// randomRepo builds a layered random repository where procedures at layer i
// may depend on DSCs of layer i+1; the structure is acyclic by construction
// but exercises alternative-rich matching.
func randomRepo(r *rand.Rand, layers, perLayer int) (*registry.Repository, string) {
	tx := dsc.NewTaxonomy()
	for l := 0; l < layers; l++ {
		tx.MustAdd(&dsc.DSC{ID: fmt.Sprintf("op.l%d", l), Domain: "d", Category: dsc.Operation})
	}
	repo := registry.NewRepository(tx)
	for l := 0; l < layers; l++ {
		for i := 0; i < perLayer; i++ {
			var deps []string
			if l < layers-1 && r.Intn(3) > 0 {
				deps = append(deps, fmt.Sprintf("op.l%d", l+1))
			}
			repo.MustAdd(&registry.Procedure{
				ID:           fmt.Sprintf("p.l%d.%d", l, i),
				ClassifiedBy: fmt.Sprintf("op.l%d", l),
				Dependencies: deps,
				Cost:         float64(1 + r.Intn(50)),
				Reliability:  0.5 + r.Float64()/2,
				Unit:         eu.NewUnit("u"),
			})
		}
	}
	return repo, "op.l0"
}

// Property: every successfully generated model passes Validate, and its
// summary figures are internally consistent.
func TestGeneratedModelsAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		repo, goal := randomRepo(r, 2+r.Intn(4), 1+r.Intn(4))
		g := NewGenerator(repo, nil, Options{})
		m, err := g.Generate(goal, expr.MapScope{})
		if err != nil {
			return errors.Is(err, ErrNoConfiguration)
		}
		if Validate(m, repo, 16) != nil {
			return false
		}
		cost, rel, size := summarize(m.Root)
		return cost == m.Cost && rel == m.Reliability && size == m.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: generation is deterministic — two generators over the same
// repository yield identical models.
func TestGenerationDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		repoA, goal := randomRepo(r1, 3, 3)
		r2 := rand.New(rand.NewSource(seed))
		repoB, _ := randomRepo(r2, 3, 3)
		gA := NewGenerator(repoA, nil, Options{})
		gB := NewGenerator(repoB, nil, Options{})
		mA, errA := gA.Generate(goal, expr.MapScope{})
		mB, errB := gB.Generate(goal, expr.MapScope{})
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return mA.String() == mB.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateColdCache(b *testing.B) {
	repo := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGenerator(repo, nil, Options{DisableCache: true})
		if _, err := g.Generate("op.connect", expr.MapScope{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateWarmCache(b *testing.B) {
	repo := fixture(b)
	g := NewGenerator(repo, nil, Options{})
	if _, err := g.Generate("op.connect", expr.MapScope{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate("op.connect", expr.MapScope{}); err != nil {
			b.Fatal(err)
		}
	}
}
