// Sharded event pump: the platform's asynchronous resource-event path.
//
// The pump is N independent shards, each a bounded queue drained by its
// own delivery goroutine. PostEvent routes every event to a shard by its
// shard key — a configurable event attribute (WithShardKey), falling back
// to the event name — so events sharing a key are delivered strictly in
// post order while events with different keys flow concurrently. A slow
// resource adapter therefore stalls only the shard its events hash to,
// not the platform.
//
// Shutdown is a graceful drain: Stop closes the intake (further posts are
// counted rejections), delivers everything already queued, and after a
// bounded drain deadline (WithDrainTimeout) counts anything still queued
// as a drop. Rejections are intake refusals — the event was never
// accepted; every accepted event is accounted exactly once, so
//
//	posted == delivered + deliver-failures + dead-lettered + dropped
//
// holds across the pump's whole lifetime.

package runtime

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
)

// pump is one running generation of the platform's sharded event pump.
// Start creates it, Stop drains and discards it; a restarted platform gets
// a fresh pump, so a drain can never race a new generation's intake.
type pump struct {
	p       *Platform
	keyAttr string
	drain   time.Duration
	shards  []*shard

	// queued is the aggregate queue depth across shards, maintained as a
	// single atomic counter (incremented on accepted post, decremented on
	// dequeue) so the hot path never rescans every shard channel.
	queued atomic.Int64

	// mu serialises intake against shutdown: posts hold it shared, stop
	// holds it exclusively while flagging closed, after which no sender
	// can be in flight and the shard channels are safe to close.
	mu     sync.RWMutex
	closed bool
	// abandon flips when the drain deadline expires: workers then count
	// the remaining queue as drops instead of delivering it.
	abandon atomic.Bool
	wg      sync.WaitGroup
}

// shard is one bounded queue plus the per-shard instruments mirroring the
// pump's aggregate ones.
type shard struct {
	ch         chan broker.Event
	gDepth     *obs.Gauge
	mDelivered *obs.Counter
	mDropped   *obs.Counter
	mRejected  *obs.Counter
	hDeliver   *obs.Histogram
}

// newPump builds and launches a pump with n shards of cap events each.
func newPump(p *Platform, n, cap int) *pump {
	pu := &pump{p: p, keyAttr: p.cfg.ShardKey, drain: p.cfg.DrainTimeout}
	pu.shards = make([]*shard, n)
	for i := range pu.shards {
		pu.shards[i] = &shard{
			ch:         make(chan broker.Event, cap),
			gDepth:     p.metrics.Gauge(obs.ShardMetric(obs.MQueueDepth, i)),
			mDelivered: p.metrics.Counter(obs.ShardMetric(obs.MEventsDelivered, i)),
			mDropped:   p.metrics.Counter(obs.ShardMetric(obs.MEventsDropped, i)),
			mRejected:  p.metrics.Counter(obs.ShardMetric(obs.MEventsRejected, i)),
			hDeliver:   p.metrics.Histogram(obs.ShardMetric(obs.HPumpDeliver, i)),
		}
	}
	pu.wg.Add(n)
	for i := range pu.shards {
		go pu.run(pu.shards[i])
	}
	return pu
}

// shardFor routes an event to its shard: the configured key attribute when
// the event carries it, the event name otherwise, FNV-1a-hashed onto the
// shard count. Same key, same shard — the ordering guarantee. Non-string
// key values hash their canonical decimal text, so the same numeric value
// lands on the same shard whatever Go type carried it (int 7, int64 7,
// float64 7 and the string "7" all share a shard).
func (pu *pump) shardFor(ev broker.Event) *shard {
	if len(pu.shards) == 1 {
		return pu.shards[0]
	}
	if pu.keyAttr != "" {
		if v, ok := ev.Attrs[pu.keyAttr]; ok {
			return pu.shards[shardKeyHash(v)%uint32(len(pu.shards))]
		}
	}
	return pu.shards[fnv32str(ev.Name)%uint32(len(pu.shards))]
}

// scratchPool holds formatting buffers for shard-key values outside the
// typed fast paths (the only case that still goes through fmt).
var scratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64)
	return &b
}}

// shardKeyHash is the FNV-1a hash of a shard-key value's canonical text.
// The scalar types an event attribute can realistically carry format into
// a stack buffer; anything else falls back to fmt through a pooled scratch
// buffer.
func shardKeyHash(v any) uint32 {
	var buf [32]byte
	switch x := v.(type) {
	case string:
		return fnv32str(x)
	case int:
		return fnv32bytes(strconv.AppendInt(buf[:0], int64(x), 10))
	case int64:
		return fnv32bytes(strconv.AppendInt(buf[:0], x, 10))
	case float64:
		// Integral floats print like ints ("7", not "7e+00"), matching
		// both fmt.Sprint and the int fast paths; the range guard keeps
		// the float→int conversion defined.
		if x >= -1e18 && x <= 1e18 && x == float64(int64(x)) {
			return fnv32bytes(strconv.AppendInt(buf[:0], int64(x), 10))
		}
		return fnv32bytes(strconv.AppendFloat(buf[:0], x, 'g', -1, 64))
	case bool:
		if x {
			return fnv32str("true")
		}
		return fnv32str("false")
	default:
		bp := scratchPool.Get().(*[]byte)
		b := fmt.Appendf((*bp)[:0], "%v", v)
		h := fnv32bytes(b)
		*bp = b
		scratchPool.Put(bp)
		return h
	}
}

func fnv32str(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func fnv32bytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * 16777619
	}
	return h
}

// depth is the total number of queued events across shards.
func (pu *pump) depth() int64 { return pu.queued.Load() }

// post enqueues ev on its shard. It reports false — counting only the
// per-shard rejection — when the pump is closed or the shard queue is
// full; the caller owns the aggregate rejection accounting. An accepted
// pooled event is owned by the pump from here on and released after its
// terminal accounting; a refused event stays with the caller.
func (pu *pump) post(ev broker.Event) bool {
	pu.mu.RLock()
	defer pu.mu.RUnlock()
	if pu.closed {
		return false
	}
	sh := pu.shardFor(ev)
	select {
	case sh.ch <- ev:
		pu.p.mPosted.Inc()
		sh.gDepth.Set(int64(len(sh.ch)))
		pu.p.gDepth.Set(pu.queued.Add(1))
		return true
	default:
		sh.mRejected.Inc()
		return false
	}
}

// run is one shard's delivery loop: deliver until the channel is closed
// and drained, counting instead of delivering once the drain deadline has
// abandoned the queue. After each blocking receive the loop drains
// whatever else is already queued with non-blocking receives, so a busy
// shard amortises its gauge updates over the batch instead of paying them
// per wakeup.
func (pu *pump) run(sh *shard) {
	defer pu.wg.Done()
	// The worker goroutine is fixed for the pump's lifetime, so its ID —
	// needed by the broker's reentrancy guard and the routing-error pickup
	// — is resolved once here instead of being re-parsed per event.
	g := obs.GoID()
	for ev := range sh.ch {
	batch:
		for {
			pu.dispatch(g, sh, ev)
			select {
			case next, ok := <-sh.ch:
				if !ok {
					return
				}
				ev = next
			default:
				break batch
			}
		}
		sh.gDepth.Set(int64(len(sh.ch)))
	}
}

// dispatch is one dequeued event's accounting: a drop once the drain
// deadline has abandoned the queue, a delivery otherwise. Either way the
// event reaches terminal accounting here, so a pooled event's storage is
// recycled on every path that no longer references it (the dead-letter
// queue keeps its events, so a dead-lettered pooled map retires from the
// pool instead).
func (pu *pump) dispatch(g uint64, sh *shard, ev broker.Event) {
	pu.p.gDepth.Set(pu.queued.Add(-1))
	if pu.abandon.Load() {
		sh.mDropped.Inc()
		pu.p.mDropped.Inc()
		ev.Release()
		return
	}
	pu.deliver(g, sh, ev)
}

// deliver hands one dequeued event to the Broker layer, recording the
// delivery span, latency and remaining depth. Delivered counts only
// successes; a failed or panicked delivery counts exactly once — as a
// dead-lettered event when the DLQ takes it, as a terminal
// deliver-failure otherwise. The pump degrades rather than dies: an
// asynchronous event has no caller to report to, so the loss is
// accounted, the supervisor notified, and the next event delivered
// normally.
func (pu *pump) deliver(g uint64, sh *shard, ev broker.Event) {
	p := pu.p
	sh.gDepth.Set(int64(len(sh.ch)))
	sp := p.tracer.Start(obs.SpanPumpDeliver)
	sp.SetStr("event", ev.Name)
	start := time.Now()
	err := p.safeBrokerOnEvent(g, ev)
	d := time.Since(start)
	sh.hDeliver.Observe(d)
	p.hDeliver.Observe(d)
	sp.End()
	if err != nil {
		p.deadLetter(ev, err)
		if fault.IsPanic(err) {
			p.sup.ReportPanic("pump")
		} else {
			p.sup.ReportFailure("pump")
		}
		return
	}
	sh.mDelivered.Inc()
	p.mDelivered.Inc()
	p.sup.ReportSuccess("pump")
	ev.Release()
}

// stop closes the intake and drains: queued events are delivered until the
// drain deadline, after which the remainder is abandoned as counted drops.
// stop returns once every shard worker has exited (an in-flight delivery
// is always waited out — a goroutine cannot be killed mid-adapter).
func (pu *pump) stop() {
	pu.mu.Lock()
	if pu.closed {
		pu.mu.Unlock()
		return
	}
	pu.closed = true
	pu.mu.Unlock()
	for _, sh := range pu.shards {
		close(sh.ch)
	}
	done := make(chan struct{})
	go func() {
		pu.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(pu.drain)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		pu.abandon.Store(true)
		<-done
	}
}
