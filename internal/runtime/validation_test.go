package runtime

import (
	"testing"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
)

// buildCached is buildFull with a private validation cache, so the tests
// below can count exactly how many full conformance walks the platform
// performs (misses) versus how many it replays (hits).
func buildCached(t testing.TB, c *metamodel.ValidationCache) (*Platform, *rec) {
	t.Helper()
	r := &rec{}
	p, err := Build(fullModel(t), Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": r},
		Repository: toyRepo(t),
	}, WithValidationCache(c))
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

// TestBuildValidatesMiddlewareOnce: the regression test for the
// double-validation bug. Building a platform walks the middleware model's
// conformance exactly once; rebuilding from the same content replays the
// cached validation instead of re-walking.
func TestBuildValidatesMiddlewareOnce(t *testing.T) {
	c := metamodel.NewValidationCache(32)
	reg := obs.NewMetrics()
	c.BindMetrics(reg)

	buildCached(t, c)
	if hits, misses, _ := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("first build: %d hits / %d misses, want 0/1 (middleware validated once)", hits, misses)
	}
	buildCached(t, c)
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("second build: %d hits / %d misses, want 1/1 (validation replayed)", hits, misses)
	}
	if reg.CounterValue(obs.MValidateCacheMisses) != 1 {
		t.Errorf("obs miss counter = %d, want 1", reg.CounterValue(obs.MValidateCacheMisses))
	}
}

// TestSubmitDedupesValidation: an application model's conformance is
// checked once per content across the UI and Synthesis layers, and a
// resubmission of unchanged content skips re-validation entirely.
func TestSubmitDedupesValidation(t *testing.T) {
	c := metamodel.NewValidationCache(32)
	p, _ := buildCached(t, c)
	_, misses0, _ := c.Stats()

	m := metamodel.NewModel("toy-dsml")
	m.NewObject("s1", "Session")
	m.NewObject("st1", "Stream").SetAttr("media", "audio")
	m.Get("s1").AddRef("streams", "st1")

	if _, err := p.SubmitModel(m); err != nil {
		t.Fatal(err)
	}
	hits1, misses1, _ := c.Stats()
	if misses1 != misses0+1 || hits1 != 0 {
		t.Fatalf("first submit: %d hits / %d new misses, want 0 hits / 1 miss", hits1, misses1-misses0)
	}

	// Resubmitting identical content: a cache hit, no re-validation.
	if _, err := p.SubmitModel(m.Clone()); err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := c.Stats()
	if misses2 != misses1 || hits2 != hits1+1 {
		t.Fatalf("resubmit: stats %d/%d -> %d/%d, want one hit and no new miss",
			hits1, misses1, hits2, misses2)
	}
}

// TestSubmitWovenValidatesOnce: SubmitWoven checks the woven model at the
// UI boundary and the Synthesis layer then reuses that validation — one
// miss and one hit, not two full walks of the same content.
func TestSubmitWovenValidatesOnce(t *testing.T) {
	c := metamodel.NewValidationCache(32)
	p, _ := buildCached(t, c)
	_, misses0, _ := c.Stats()

	concern := metamodel.NewModel("toy-dsml")
	concern.NewObject("s1", "Session")
	concern.NewObject("st1", "Stream").SetAttr("media", "video")
	concern.Get("s1").AddRef("streams", "st1")

	if _, err := p.UI.SubmitWoven(concern); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := c.Stats()
	if misses != misses0+1 {
		t.Errorf("woven submit caused %d validation walks, want 1", misses-misses0)
	}
	if hits != 1 {
		t.Errorf("woven submit: %d cache hits, want 1 (synthesis reusing the UI check)", hits)
	}

	// A non-conforming woven model is still rejected at the UI boundary.
	bad := metamodel.NewModel("toy-dsml")
	bad.NewObject("st2", "Stream") // required media unset
	if _, err := p.UI.SubmitWoven(bad); err == nil {
		t.Fatal("non-conforming woven model accepted")
	}
}

// TestDraftValidateWarmsSubmit: an explicit Draft.Validate memoises its
// check, so the subsequent Submit's synthesis-side validation is a hit.
func TestDraftValidateWarmsSubmit(t *testing.T) {
	c := metamodel.NewValidationCache(32)
	p, _ := buildCached(t, c)
	_, misses0, _ := c.Stats()

	d := p.UI.NewDraft()
	s := d.MustAdd("s1", "Session")
	d.MustAdd("st1", "Stream").SetAttr("media", "audio")
	s.AddRef("streams", "st1")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := c.Stats()
	if misses != misses0+1 || hits != 1 {
		t.Fatalf("draft validate+submit: %d hits / %d new misses, want 1 hit / 1 miss",
			hits, misses-misses0)
	}
}

// TestRestoreReplaysValidation: restoring the same checkpoint twice
// validates its models once — the second restore replays both the
// middleware and the application validation from cache.
func TestRestoreReplaysValidation(t *testing.T) {
	c := metamodel.NewValidationCache(32)
	p, r := buildCached(t, c)

	m := metamodel.NewModel("toy-dsml")
	m.NewObject("s1", "Session")
	m.NewObject("st1", "Stream").SetAttr("media", "audio")
	m.Get("s1").AddRef("streams", "st1")
	if _, err := p.SubmitModel(m); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	deps := Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": r},
		Repository: toyRepo(t),
	}
	if _, err := Restore(snap, deps, WithValidationCache(c)); err != nil {
		t.Fatal(err)
	}
	hits1, misses1, _ := c.Stats()
	if _, err := Restore(snap, deps, WithValidationCache(c)); err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := c.Stats()
	if misses2 != misses1 {
		t.Errorf("second restore re-validated: %d new misses", misses2-misses1)
	}
	if hits2 <= hits1 {
		t.Errorf("second restore produced no cache hits (%d -> %d)", hits1, hits2)
	}
}

// TestDisabledCacheStillValidates: WithValidationCache(nil) turns off
// memoisation without weakening conformance checking.
func TestDisabledCacheStillValidates(t *testing.T) {
	r := &rec{}
	deps := Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": r},
		Repository: toyRepo(t),
	}
	p, err := Build(fullModel(t), deps, WithValidationCache(nil))
	if err != nil {
		t.Fatal(err)
	}
	bad := metamodel.NewModel("toy-dsml")
	bad.NewObject("st1", "Stream") // required media unset
	if _, err := p.SubmitModel(bad); err == nil {
		t.Fatal("invalid model accepted with caching disabled")
	}
	good := metamodel.NewModel("toy-dsml")
	good.NewObject("s1", "Session")
	if _, err := p.SubmitModel(good); err != nil {
		t.Fatal(err)
	}
}
