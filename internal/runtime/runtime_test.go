package runtime

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/script"
)

// toyDSML: Session contains Streams.
func toyDSML(t testing.TB) *metamodel.Metamodel {
	t.Helper()
	mm := metamodel.New("toy-dsml")
	mm.MustAddClass(&metamodel.Class{Name: "Session", References: []metamodel.Reference{
		{Name: "streams", Target: "Stream", Containment: true, Many: true},
	}})
	mm.MustAddClass(&metamodel.Class{Name: "Stream", Attributes: []metamodel.Attribute{
		{Name: "media", Kind: metamodel.KindString, Required: true},
	}})
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	return mm
}

func toyLTS() *lts.LTS {
	l := lts.New("sem", "run")
	l.On("run", "add-object:Session", "", "run",
		lts.CommandTemplate{Op: "createSession", Target: "session:{id}"})
	l.On("run", "add-object:Stream", "", "run",
		lts.CommandTemplate{Op: "openStream", Target: "stream:{id}",
			Args: map[string]string{"media": "{media}"}})
	l.On("run", "remove-object:Stream", "", "run",
		lts.CommandTemplate{Op: "closeStream", Target: "stream:{id}"})
	return l
}

func toyRepo(t testing.TB) *registry.Repository {
	t.Helper()
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.open", Domain: "toy", Category: dsc.Operation})
	r := registry.NewRepository(tx)
	r.MustAdd(&registry.Procedure{
		ID: "opener", ClassifiedBy: "op.open", Cost: 1,
		Unit: eu.NewUnit("opener", eu.Invoke("svcOpen", "{target}", "media", "media")),
	})
	return r
}

// fullModel authors the four-layer middleware model used in most tests.
func fullModel(t testing.TB) *metamodel.Model {
	t.Helper()
	b := mwmeta.NewBuilder("toy-vm", "toy")
	b.UILayer("uci")
	b.SynthesisLayer("se", "sem")
	b.ControllerLayer("ucm").
		Action("createSession", "createSession", "",
			mwmeta.StepSpec{Op: "svcCreate", Target: "{target}"}).
		Action("closeStream", "closeStream", "",
			mwmeta.StepSpec{Op: "svcClose", Target: "{target}"}).
		Class("openStream", "op.open").
		EventAction("onFail", "streamFailed", "", false, "",
			mwmeta.StepSpec{Op: "svcRecover", Target: "stream:{stream}"}).
		Done().
		BrokerLayer("ncb").
		// Action order matters: the media-forwarding action is declared
		// first so svcOpen matches it; everything else passes through.
		Action("withMedia", "svcOpen", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}",
				Args: map[string]string{"media": "{media}"}}).
		Action("passthrough", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "main")
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b.Model()
}

// rec is a thread-safe recording adapter.
type rec struct {
	mu    sync.Mutex
	trace script.Trace
}

func (r *rec) Execute(cmd script.Command) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace.Record(cmd)
	return nil
}

func (r *rec) lines() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace.Lines()
}

func (r *rec) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace = script.Trace{}
}

func buildFull(t testing.TB) (*Platform, *rec) {
	t.Helper()
	r := &rec{}
	p, err := Build(fullModel(t), Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": r},
		Repository: toyRepo(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestBuildFullStack(t *testing.T) {
	p, _ := buildFull(t)
	if p.Name != "toy-vm" || p.Domain != "toy" {
		t.Errorf("identity: %s/%s", p.Name, p.Domain)
	}
	if p.UI == nil || p.Synthesis == nil || p.Controller == nil || p.Broker == nil {
		t.Fatal("all four layers must be instantiated")
	}
}

func TestEndToEndModelSubmission(t *testing.T) {
	p, r := buildFull(t)

	// Author an application model through the UI layer and submit.
	draft := p.UI.NewDraft()
	draft.MustAdd("s1", "Session").SetRef("streams", "st1")
	draft.MustAdd("st1", "Stream").SetAttr("media", "audio")
	out, err := draft.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("script: %s", out)
	}

	text := strings.Join(r.lines(), "\n")
	// createSession took the Case-1 path (predefined action), openStream
	// took Case 2 (intent generation through the repository).
	for _, want := range []string{"svcCreate session:s1", `svcOpen stream:st1 media="audio"`} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// The runtime model reached the UI layer.
	if p.UI.RuntimeModel().Len() != 2 {
		t.Error("runtime model not published to UI")
	}

	// models@runtime: editing the draft and resubmitting produces only
	// the delta.
	r.reset()
	edit := p.UI.EditDraft()
	if err := edit.Remove("st1"); err != nil {
		t.Fatal(err)
	}
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	text = strings.Join(r.lines(), "\n")
	if !strings.Contains(text, "svcClose stream:st1") || strings.Contains(text, "svcCreate") {
		t.Errorf("delta script:\n%s", text)
	}
}

func TestEventFlowsUpThroughLayers(t *testing.T) {
	p, r := buildFull(t)
	// A resource event enters the Broker (unmatched there), reaches the
	// Controller's event handler, which recovers via a broker call.
	err := p.DeliverEvent(broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": "st9"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(r.lines(), "\n"), "svcRecover stream:st9") {
		t.Errorf("recovery trace:\n%s", strings.Join(r.lines(), "\n"))
	}
}

func TestEventPump(t *testing.T) {
	p, r := buildFull(t)
	p.Start()
	defer p.Stop()
	if !p.PostEvent(broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": "stA"}}) {
		t.Fatal("PostEvent while running")
	}
	deadline := time.After(2 * time.Second)
	for {
		if strings.Contains(strings.Join(r.lines(), "\n"), "svcRecover stream:stA") {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("pump did not deliver; trace:\n%s", strings.Join(r.lines(), "\n"))
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()
	if p.PostEvent(broker.Event{Name: "x"}) {
		t.Error("PostEvent after Stop must report false")
	}
	// Idempotency.
	p.Start()
	p.Start()
	p.Stop()
	p.Stop()
}

func TestLayerSuppressionControllerBroker(t *testing.T) {
	// A 2SVM-smart-object-style platform: Controller + Broker only,
	// driven by scripts, external events escape upward.
	b := mwmeta.NewBuilder("object-vm", "smartspace")
	b.ControllerLayer("mw").
		Action("setProp", "setProp", "",
			mwmeta.StepSpec{Op: "svcSet", Target: "{target}",
				Args: map[string]string{"value": "{value}"}}).
		Done().
		BrokerLayer("broker").
		Action("any", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}",
				Args: map[string]string{"value": "{value}"}}).
		Bind("*", "main")
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	r := &rec{}
	var escaped []broker.Event
	p, err := Build(b.Model(), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
	}, WithExternalEvents(func(e broker.Event) { escaped = append(escaped, e) }))
	if err != nil {
		t.Fatal(err)
	}
	if p.UI != nil || p.Synthesis != nil {
		t.Fatal("suppressed layers must be nil")
	}
	if _, err := p.SubmitModel(metamodel.NewModel("x")); err == nil {
		t.Error("SubmitModel without synthesis must fail")
	}
	s := script.New("cmds").Append(script.NewCommand("setProp", "object:lamp1").WithArg("value", true))
	if err := p.Execute(s); err != nil {
		t.Fatal(err)
	}
	if r.lines()[0] != "svcSet object:lamp1 value=true" {
		t.Errorf("trace: %v", r.lines())
	}
	// Events with no handler anywhere escape to the external sink.
	if err := p.DeliverEvent(broker.Event{Name: "objectLeft"}); err != nil {
		t.Fatal(err)
	}
	if len(escaped) != 1 || escaped[0].Name != "objectLeft" {
		t.Errorf("escaped events: %v", escaped)
	}
}

func TestExecuteWithoutController(t *testing.T) {
	b := mwmeta.NewBuilder("broker-only", "d")
	b.BrokerLayer("broker").Action("any", "*", "").Bind("*", "main")
	p, err := Build(b.Model(), Deps{Adapters: map[string]broker.Adapter{"main": &rec{}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Execute(script.New("s")); err == nil {
		t.Error("Execute without controller must fail")
	}
}

func TestBuildConsistencyErrors(t *testing.T) {
	dsml := toyDSML(t)
	adapters := map[string]broker.Adapter{"main": &rec{}}

	t.Run("nonconforming model", func(t *testing.T) {
		m := metamodel.NewModel(mwmeta.Name)
		m.NewObject("x", "Bogus")
		if _, err := Build(m, Deps{}); err == nil || !strings.Contains(err.Error(), "conform") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("no platform", func(t *testing.T) {
		m := metamodel.NewModel(mwmeta.Name)
		if _, err := Build(m, Deps{}); err == nil || !strings.Contains(err.Error(), "exactly one Platform") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("controller without broker", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.ControllerLayer("c")
		_, err := Build(b.Model(), Deps{})
		if err == nil || !strings.Contains(err.Error(), "requires a BrokerLayer") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("synthesis without controller", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.SynthesisLayer("s", "sem")
		b.BrokerLayer("br").Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters})
		if err == nil || !strings.Contains(err.Error(), "requires a ControllerLayer") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("ui without synthesis", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.UILayer("u")
		b.ControllerLayer("c")
		b.BrokerLayer("br").Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters})
		if err == nil || !strings.Contains(err.Error(), "requires a SynthesisLayer") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("no broker at all", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.Model().NewObject("lay", mwmeta.ClassUILayer).SetAttr("name", "u")
		b.Model().Get("platform").AddRef("layers", "lay")
		_, err := Build(b.Model(), Deps{DSML: dsml})
		if err == nil {
			t.Error("want error")
		}
	})
	t.Run("unknown adapter", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.BrokerLayer("br").Bind("*", "ghost")
		_, err := Build(b.Model(), Deps{})
		if err == nil || !strings.Contains(err.Error(), "unknown adapter") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("unknown lts", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.SynthesisLayer("s", "ghost")
		b.ControllerLayer("c").Done()
		b.BrokerLayer("br").Bind("*", "main")
		_, err := Build(b.Model(), Deps{DSML: dsml, Adapters: adapters})
		if err == nil || !strings.Contains(err.Error(), "unknown LTS") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("synthesis without dsml", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.SynthesisLayer("s", "sem")
		b.ControllerLayer("c").Done()
		b.BrokerLayer("br").Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters, LTSes: map[string]*lts.LTS{"sem": toyLTS()}})
		if err == nil || !strings.Contains(err.Error(), "no DSML") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("command class without repository", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.ControllerLayer("c").Class("x", "op.ghost").Done()
		b.BrokerLayer("br").Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters})
		if err == nil || !strings.Contains(err.Error(), "no procedure repository") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("command class unknown dsc", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.ControllerLayer("c").Class("x", "op.ghost").Done()
		b.BrokerLayer("br").Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters, Repository: toyRepo(t)})
		if err == nil || !strings.Contains(err.Error(), "not in taxonomy") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad guard expression", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.BrokerLayer("br").Action("a", "x", "((").Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters})
		if err == nil || !strings.Contains(err.Error(), "guard") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad policy condition", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.BrokerLayer("br").Policy(mwmeta.PolicySpec{Name: "p", Condition: "(("}).Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters})
		if err == nil || !strings.Contains(err.Error(), "policy") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad symptom condition", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.BrokerLayer("br").Symptom("s", "((").Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters})
		if err == nil || !strings.Contains(err.Error(), "symptom") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("installed script on broker rejected", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		bb := b.BrokerLayer("br")
		bb.Bind("*", "main")
		// Hand-author a broker event action with a scriptName.
		ev := b.Model().NewObject("evx", mwmeta.ClassEventAction).
			SetAttr("name", "bad").SetAttr("event", "e").SetAttr("scriptName", "s")
		for _, o := range b.Model().ObjectsOf(mwmeta.ClassBrokerLayer) {
			o.AddRef("eventActions", ev.ID)
		}
		_, err := Build(b.Model(), Deps{Adapters: adapters,
			Scripts: map[string]*script.Script{"s": script.New("s")}})
		if err == nil || !strings.Contains(err.Error(), "Controller-layer feature") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("unknown installed script", func(t *testing.T) {
		b := mwmeta.NewBuilder("vm", "d")
		b.ControllerLayer("c").EventAction("e", "ev", "", false, "ghost").Done()
		b.BrokerLayer("br").Bind("*", "main")
		_, err := Build(b.Model(), Deps{Adapters: adapters})
		if err == nil || !strings.Contains(err.Error(), "unknown installed script") {
			t.Errorf("got %v", err)
		}
	})
}

func TestSplitOps(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"a", "a"},
		{"a,b,c", "a|b|c"},
		{"", ""},
		{"a,,b", "a|b"},
		{"open, close", "open|close"},
		{" open ,\tclose ", "open|close"},
		{"  ", ""},
		{"a, ,b", "a|b"},
	}
	for _, tt := range tests {
		got := strings.Join(splitOps(tt.in), "|")
		if got != tt.want {
			t.Errorf("splitOps(%q) = %q want %q", tt.in, got, tt.want)
		}
	}
}

func TestCallerModelNotMutatedByDefaults(t *testing.T) {
	m := fullModel(t)
	before, err := metamodel.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(m, Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": &rec{}},
		Repository: toyRepo(t),
	}); err != nil {
		t.Fatal(err)
	}
	after, err := metamodel.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("Build must not mutate the caller's middleware model")
	}
}

func TestConcurrentSubmissionsAndEvents(t *testing.T) {
	// Full-stack stress: concurrent model submissions through the UI while
	// resource events pour in through the pump. Exercises the layer
	// serialisation (synthesis busy/pending queue, broker/controller event
	// drains) under the race detector.
	p, _ := buildFull(t)
	p.Start()
	defer p.Stop()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			draft := p.UI.NewDraft()
			draft.MustAdd("s1", "Session").SetRef("streams", "st1")
			draft.MustAdd("st1", "Stream").SetAttr("media", "audio")
			if _, err := draft.Submit(); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			empty := p.UI.NewDraft()
			if _, err := empty.Submit(); err != nil {
				t.Errorf("teardown %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			p.PostEvent(broker.Event{Name: "streamFailed",
				Attrs: map[string]any{"stream": fmt.Sprintf("st%d", i)}})
		}
	}()
	wg.Wait()
}

func TestAutonomicMonitorLoop(t *testing.T) {
	// A broker-only platform with a symptom; the monitor's probe publishes
	// "pressure" into the broker context and the loop evaluates symptoms.
	b := mwmeta.NewBuilder("mon-vm", "d")
	b.BrokerLayer("brk").
		Symptom("overPressure", "pressure > 10").
		ChangePlan("overPressure",
			mwmeta.StepSpec{Op: "ventValve", Target: "valve:1"}).
		PassthroughAction("pass", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "main")
	r := &rec{}
	p, err := Build(b.Model(), Deps{Adapters: map[string]broker.Adapter{"main": r}})
	if err != nil {
		t.Fatal(err)
	}
	pressure := 0
	p.Monitor(WithInterval(2*time.Millisecond), WithProbe(func() {
		pressure += 6
		p.Broker.Context().Set("pressure", pressure)
	}))
	p.Monitor(WithInterval(time.Hour)) // idempotent
	defer p.Stop()

	deadline := time.After(2 * time.Second)
	for len(p.Broker.Autonomic().Handled()) == 0 {
		select {
		case <-deadline:
			t.Fatal("monitor never triggered the change plan")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if got := strings.Join(r.lines(), ";"); !strings.Contains(got, "ventValve valve:1") {
		t.Errorf("plan steps: %s", got)
	}
	p.StopMonitor()
	p.StopMonitor() // idempotent when already stopped
}

func TestSetExternalEventsObservesTopOfStack(t *testing.T) {
	p, _ := buildFull(t)
	var mu sync.Mutex
	var seen []string
	p.SetExternalEvents(func(e broker.Event) {
		mu.Lock()
		seen = append(seen, e.Name)
		mu.Unlock()
	})
	// An event with no handlers anywhere bubbles through all four layers
	// to the external observer.
	if err := p.DeliverEvent(broker.Event{Name: "totallyUnknown"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "totallyUnknown" {
		t.Errorf("observed: %v", seen)
	}
}

func TestEventActionGuardAndForwardFromModel(t *testing.T) {
	// Exercise the factory's guard-parsing path for event actions and the
	// broker event-action with a bad guard expression.
	b := mwmeta.NewBuilder("vm", "d")
	b.BrokerLayer("brk").
		EventAction("guarded", "tick", "level > 3", false,
			mwmeta.StepSpec{Op: "acted", Target: "t"}).
		PassthroughAction("pass", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "main")
	r := &rec{}
	p, err := Build(b.Model(), Deps{Adapters: map[string]broker.Adapter{"main": r}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DeliverEvent(broker.Event{Name: "tick", Attrs: map[string]any{"level": 5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(r.lines(), ";"), "acted t") {
		t.Errorf("guarded event action: %v", r.lines())
	}

	// Bad event-action guard is rejected at build time.
	b2 := mwmeta.NewBuilder("vm2", "d")
	b2.BrokerLayer("brk").
		EventAction("broken", "tick", "((", false).
		Bind("*", "main")
	if _, err := Build(b2.Model(), Deps{Adapters: map[string]broker.Adapter{"main": r}}); err == nil {
		t.Error("bad event guard must fail the build")
	}
}

func TestPolicyEffectsFromModel(t *testing.T) {
	// Policies with effects flow from the middleware model into the live
	// Controller: the effect forces the action case even though only an
	// intent route exists, which must then error.
	b := mwmeta.NewBuilder("vm", "d")
	b.ControllerLayer("ctl").
		Class("go", "op.open").
		Policy(mwmeta.PolicySpec{Name: "force", Priority: 9, Condition: "true",
			Effects: map[string]string{"case": "action"}}).
		Done().
		BrokerLayer("brk").Bind("*", "main")
	p, err := Build(b.Model(), Deps{
		Adapters:   map[string]broker.Adapter{"main": &rec{}},
		Repository: toyRepo(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = p.Execute(script.New("s").Append(script.NewCommand("go", "t")))
	if err == nil || !strings.Contains(err.Error(), "no action handles") {
		t.Errorf("policy effect must force the action case: %v", err)
	}
}

func TestSubmitModelConformanceError(t *testing.T) {
	p, _ := buildFull(t)
	bad := metamodel.NewModel("toy-dsml")
	bad.NewObject("x", "Stream") // missing required media
	if _, err := p.SubmitModel(bad); err == nil {
		t.Error("non-conformant app model must fail")
	}
}

// blockingRec is a rec whose Execute blocks until gate is closed; entered
// is closed the first time Execute is reached, so tests can wait until
// the pump goroutine is wedged inside the adapter.
type blockingRec struct {
	rec
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (b *blockingRec) Execute(cmd script.Command) error {
	b.once.Do(func() { close(b.entered) })
	<-b.gate
	return b.rec.Execute(cmd)
}

func TestPostEventQueueFullDrops(t *testing.T) {
	b := &blockingRec{gate: make(chan struct{}), entered: make(chan struct{})}
	o := obs.New()
	p, err := Build(fullModel(t), Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": b},
		Repository: toyRepo(t),
		Tracer:     o.TracerOf(),
		Metrics:    o.MetricsOf(),
	}, WithPumpQueue(1))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	ev := func(id string) broker.Event {
		return broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": id}}
	}
	// First event: pump takes it and wedges inside the adapter.
	if !p.PostEvent(ev("st1")) {
		t.Fatal("first post must be accepted")
	}
	select {
	case <-b.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("pump never reached the adapter")
	}
	// Second event fills the 1-slot queue; third must drop, not block.
	if !p.PostEvent(ev("st2")) {
		t.Fatal("second post must fill the queue")
	}
	done := make(chan bool, 1)
	go func() { done <- p.PostEvent(ev("st3")) }()
	select {
	case ok := <-done:
		if ok {
			t.Error("post into a full queue must report false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PostEvent blocked on a full queue")
	}
	close(b.gate)
	p.Stop()

	_, m := p.Obs()
	if got := m.CounterValue(obs.MEventsPosted); got != 2 {
		t.Errorf("posted = %d, want 2", got)
	}
	if got := m.CounterValue(obs.MEventsRejected); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	// Stopped pump: a further post is a counted rejection, still
	// non-blocking.
	if p.PostEvent(ev("st4")) {
		t.Error("post after Stop must report false")
	}
	if got := m.CounterValue(obs.MEventsRejected); got != 2 {
		t.Errorf("rejected after stop = %d, want 2", got)
	}
}

func TestMonitorOptions(t *testing.T) {
	b := mwmeta.NewBuilder("mon-opt-vm", "d")
	b.BrokerLayer("brk").
		Symptom("overPressure", "pressure > 10").
		ChangePlan("overPressure",
			mwmeta.StepSpec{Op: "ventValve", Target: "valve:1"}).
		PassthroughAction("pass", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "main")
	r := &rec{}
	p, err := Build(b.Model(), Deps{Adapters: map[string]broker.Adapter{"main": r}})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	pressure := 0
	stop := p.Monitor(
		WithInterval(2*time.Millisecond),
		WithProbe(func() {
			pressure += 6
			p.Broker.Context().Set("pressure", pressure)
		}),
		WithObs(o.TracerOf(), o.MetricsOf()),
	)
	p.Monitor(WithInterval(time.Hour)) // idempotent while running
	defer p.Stop()

	deadline := time.After(2 * time.Second)
	for len(p.Broker.Autonomic().Handled()) == 0 {
		select {
		case <-deadline:
			t.Fatal("monitor never triggered the change plan")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	stop()
	if got := strings.Join(r.lines(), ";"); !strings.Contains(got, "ventValve valve:1") {
		t.Errorf("plan steps: %s", got)
	}
	if o.MetricsOf().CounterValue(obs.MMonitorTicks) == 0 {
		t.Error("monitor ticks not counted in the WithObs pair")
	}
	if o.TracerOf().Count(obs.SpanMonitorTick) == 0 {
		t.Error("monitor tick spans not recorded in the WithObs pair")
	}
}

func TestObsEndToEnd(t *testing.T) {
	r := &rec{}
	o := obs.New()
	p, err := Build(fullModel(t), Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": r},
		Repository: toyRepo(t),
		Tracer:     o.TracerOf(),
		Metrics:    o.MetricsOf(),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := p.UI.NewDraft()
	d.MustAdd("s1", "Session").SetRef("streams", "st1")
	d.MustAdd("st1", "Stream").SetAttr("media", "audio")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	if err := p.DeliverEvent(broker.Event{Name: "streamFailed",
		Attrs: map[string]any{"stream": "st1"}}); err != nil {
		t.Fatal(err)
	}

	tr, m := p.Obs()
	for _, span := range []string{
		obs.SpanUISubmit, obs.SpanSynthSubmit, obs.SpanCtlScript,
		obs.SpanBrokerCall, obs.SpanBrokerStep, obs.SpanResourceExecute,
		obs.SpanEURun, obs.SpanBrokerEvent,
	} {
		if tr.Count(span) == 0 {
			t.Errorf("no %q spans recorded", span)
		}
	}
	for _, c := range []string{
		obs.MUISubmits, obs.MSynthesisSubmits, obs.MScriptsExecuted,
		obs.MControllerCommands, obs.MBrokerCalls, obs.MBrokerSteps,
		obs.MEUSteps,
	} {
		if m.CounterValue(c) == 0 {
			t.Errorf("counter %q is zero", c)
		}
	}
	// Cross-layer parentage: some synthesis.submit span must hang off the
	// ui.submit span recorded on the same goroutine.
	byID := map[obs.SpanID]obs.SpanRecord{}
	for _, sr := range tr.Recent() {
		byID[sr.ID] = sr
	}
	linked := false
	for _, sr := range tr.Recent() {
		if sr.Name != obs.SpanSynthSubmit {
			continue
		}
		if parent, ok := byID[sr.Parent]; ok && parent.Name == obs.SpanUISubmit {
			linked = true
		}
	}
	if !linked {
		t.Error("synthesis.submit span not parented under ui.submit")
	}
}

// pumpEventModel authors a broker-only middleware model whose event action
// echoes each event's key and sequence number into the resource trace, so
// tests can assert per-key delivery order and exact delivery counts.
func pumpEventModel(t testing.TB) *metamodel.Model {
	t.Helper()
	b := mwmeta.NewBuilder("pump-vm", "d")
	b.BrokerLayer("brk").
		EventAction("echo", "tick", "", false,
			mwmeta.StepSpec{Op: "h", Target: "{key}:{seq}"}).
		Bind("*", "main")
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b.Model()
}

func tickEvent(key string, seq int) broker.Event {
	return broker.Event{Name: "tick", Attrs: map[string]any{
		"key": key, "seq": fmt.Sprintf("%06d", seq),
	}}
}

// assertPumpAccounting checks the pump's lifetime invariant: every posted
// event is eventually delivered, failed, or dropped — none vanish.
func assertPumpAccounting(t *testing.T, m *obs.Metrics, accepted, rejected int64) {
	t.Helper()
	posted := m.CounterValue(obs.MEventsPosted)
	delivered := m.CounterValue(obs.MEventsDelivered)
	failures := m.CounterValue(obs.MDeliverFailures)
	deadlettered := m.CounterValue(obs.MEventsDeadLettered)
	dropped := m.CounterValue(obs.MEventsDropped)
	if posted != accepted {
		t.Errorf("posted = %d, want %d", posted, accepted)
	}
	if delivered+failures+deadlettered+dropped != accepted {
		t.Errorf("delivered(%d) + failures(%d) + deadlettered(%d) + dropped(%d) != accepted(%d)",
			delivered, failures, deadlettered, dropped, accepted)
	}
	if got := m.CounterValue(obs.MEventsRejected); got != rejected {
		t.Errorf("rejected = %d, want %d", got, rejected)
	}
}

// TestStopDrainsQueuedEvents is the regression test for the lost-event bug:
// events still queued at Stop used to vanish uncounted. The graceful drain
// must deliver (or count) every accepted event: delivered + dropped == K.
func TestStopDrainsQueuedEvents(t *testing.T) {
	const K = 64
	r := &rec{}
	m := obs.NewMetrics()
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
		Metrics:  m,
	}, WithPumpQueue(K), WithPumpShards(4), WithShardKey("key"))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	for i := 0; i < K; i++ {
		if !p.PostEvent(tickEvent(fmt.Sprintf("k%d", i%8), i)) {
			t.Fatalf("post %d rejected", i)
		}
	}
	p.Stop() // immediately: most events are still queued
	delivered := m.CounterValue(obs.MEventsDelivered)
	dropped := m.CounterValue(obs.MEventsDropped)
	if delivered+dropped != K {
		t.Errorf("delivered(%d) + dropped(%d) = %d, want %d", delivered, dropped, delivered+dropped, K)
	}
	if dropped != 0 {
		t.Errorf("fast adapter, 5s drain budget: dropped = %d, want 0", dropped)
	}
	if got := len(r.lines()); got != K {
		t.Errorf("adapter saw %d events, want %d", got, K)
	}
	assertPumpAccounting(t, m, K, 0)
}

// TestStopDrainDeadlineAbandonsAsDrops: a wedged adapter cannot hold Stop
// hostage forever — past the drain deadline the still-queued remainder is
// abandoned as counted drops, keeping the accounting invariant intact.
func TestStopDrainDeadlineAbandonsAsDrops(t *testing.T) {
	b := &blockingRec{gate: make(chan struct{}), entered: make(chan struct{})}
	m := obs.NewMetrics()
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": b},
		Metrics:  m,
	}, WithPumpQueue(8), WithPumpShards(1), WithDrainTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	for i := 0; i < 3; i++ {
		if !p.PostEvent(tickEvent("k", i)) {
			t.Fatalf("post %d rejected", i)
		}
	}
	// The worker wedges inside the adapter on the first event.
	select {
	case <-b.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("pump never reached the adapter")
	}
	stopped := make(chan struct{})
	go func() { p.Stop(); close(stopped) }()
	// Wait past the drain deadline so the queue is abandoned, then unblock
	// the in-flight delivery.
	time.Sleep(150 * time.Millisecond)
	close(b.gate)
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop never returned after the gate opened")
	}
	if got := m.CounterValue(obs.MEventsDelivered); got != 1 {
		t.Errorf("delivered = %d, want 1 (the in-flight event)", got)
	}
	if got := m.CounterValue(obs.MEventsDropped); got != 2 {
		t.Errorf("dropped = %d, want 2 (abandoned past the drain deadline)", got)
	}
	assertPumpAccounting(t, m, 3, 0)
}

// TestDeliverFailureNotCountedDelivered is the regression test for the
// double-count bug: a failed delivery used to increment both
// pump.events.delivered and pump.deliver.failures.
func TestDeliverFailureNotCountedDelivered(t *testing.T) {
	in := fault.NewInjector(1)
	in.Arm(broker.SiteEvent, fault.Spec{Kind: fault.Error, Limit: 2})
	r := &rec{}
	m := obs.NewMetrics()
	in.BindMetrics(m)
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
		Metrics:  m,
		Injector: in,
	}, WithPumpShards(2), WithShardKey("key"))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	for i := 0; i < 5; i++ {
		if !p.PostEvent(tickEvent("k", i)) {
			t.Fatalf("post %d rejected", i)
		}
	}
	p.Stop()
	delivered := m.CounterValue(obs.MEventsDelivered)
	deadlettered := m.CounterValue(obs.MEventsDeadLettered)
	if deadlettered != 2 {
		t.Fatalf("dead-lettered = %d, want 2", deadlettered)
	}
	if got := m.CounterValue(obs.MDeliverFailures); got != 0 {
		t.Errorf("deliver failures = %d, want 0 (failed deliveries park in the DLQ)", got)
	}
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3 (failures must not count as delivered)", delivered)
	}
	assertPumpAccounting(t, m, 5, 0)
}

// TestPerShardMetrics: a sharded pump registers per-shard instruments whose
// sums match the aggregates, and the aggregate names keep working.
func TestPerShardMetrics(t *testing.T) {
	const shards, K = 4, 40
	r := &rec{}
	m := obs.NewMetrics()
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
		Metrics:  m,
	}, WithPumpShards(shards), WithShardKey("key"), WithPumpQueue(K))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	for i := 0; i < K; i++ {
		if !p.PostEvent(tickEvent(fmt.Sprintf("key-%d", i), i)) {
			t.Fatalf("post %d rejected", i)
		}
	}
	p.Stop()
	var perShard int64
	spread := 0
	for i := 0; i < shards; i++ {
		n := m.CounterValue(obs.ShardMetric(obs.MEventsDelivered, i))
		perShard += n
		if n > 0 {
			spread++
		}
	}
	if agg := m.CounterValue(obs.MEventsDelivered); perShard != agg {
		t.Errorf("per-shard delivered sum = %d, aggregate = %d", perShard, agg)
	}
	if spread < 2 {
		t.Errorf("40 distinct keys landed on %d shard(s); want spread across >= 2", spread)
	}
	if !strings.Contains(m.Snapshot(), obs.ShardMetric(obs.MQueueDepth, 0)) {
		t.Error("per-shard depth gauge missing from the snapshot")
	}
}

// TestPerKeyOrderingAcrossShards: events sharing a shard key are delivered
// strictly in post order even when many keys flow concurrently.
func TestPerKeyOrderingAcrossShards(t *testing.T) {
	const keys, perKey = 8, 100
	r := &rec{}
	m := obs.NewMetrics()
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
		Metrics:  m,
	}, WithPumpShards(4), WithShardKey("key"), WithPumpQueue(keys*perKey))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				if !p.PostEvent(tickEvent(fmt.Sprintf("g%d", k), i)) {
					t.Errorf("key g%d: post %d rejected", k, i)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	p.Stop()
	assertOrderedPerKey(t, r.lines())
	assertPumpAccounting(t, m, keys*perKey, 0)
}

// assertOrderedPerKey parses "h <key>:<seq>" trace lines and requires each
// key's sequence numbers to be strictly increasing.
func assertOrderedPerKey(t *testing.T, lines []string) {
	t.Helper()
	last := map[string]string{}
	for _, line := range lines {
		rest, ok := strings.CutPrefix(line, "h ")
		if !ok {
			t.Fatalf("unexpected trace line %q", line)
		}
		key, seq, ok := strings.Cut(rest, ":")
		if !ok {
			t.Fatalf("unexpected target %q", rest)
		}
		if prev, seen := last[key]; seen && seq <= prev {
			t.Fatalf("key %s: seq %s delivered after %s (out of order)", key, seq, prev)
		}
		last[key] = seq
	}
}

// TestMonitorIdempotentIgnoresNewOptions: a second Monitor call while one
// runs must not register counters on the new options' obs pair — the
// running monitor's configuration stays untouched.
func TestMonitorIdempotentIgnoresNewOptions(t *testing.T) {
	p, _ := buildFull(t)
	stop := p.Monitor(WithInterval(time.Millisecond))
	defer stop()
	o2 := obs.New()
	stop2 := p.Monitor(WithInterval(time.Hour), WithObs(o2.TracerOf(), o2.MetricsOf()))
	if strings.Contains(o2.MetricsOf().Snapshot(), obs.MMonitorTicks) {
		t.Error("second Monitor call registered counters on the ignored obs pair")
	}
	// The returned stop still controls the running monitor.
	stop2()
	p.StopMonitor() // idempotent after stop
}
