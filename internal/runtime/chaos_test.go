package runtime

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/script"
)

// chaosResilience retries fast so chaos runs stay instantaneous.
func chaosResilience() fault.Resilience {
	return fault.Resilience{
		Retry: fault.Policy{
			MaxAttempts: 5,
			BaseDelay:   time.Microsecond,
			MaxDelay:    10 * time.Microsecond,
			Multiplier:  2,
		},
		StepTimeout: 2 * time.Second,
		Breaker:     fault.BreakerConfig{Threshold: 16, Cooldown: 10 * time.Millisecond},
	}
}

// buildChaos builds the full four-layer toy platform armed with the given
// injector, a metrics registry, and fast retries.
func buildChaos(t testing.TB, in *fault.Injector) (*Platform, *rec, *obs.Metrics) {
	t.Helper()
	m := obs.NewMetrics()
	in.BindMetrics(m)
	r := &rec{}
	p, err := Build(fullModel(t), Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": r},
		Repository: toyRepo(t),
		Metrics:    m,
		Injector:   in,
		Resilience: chaosResilience(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, r, m
}

// chaosCycle is one deterministic submit→fault→recover cycle with faults at
// three sites spanning the stack: the remote transport (dial), the Broker's
// resource path (step), and the autonomic monitor (probe). It returns the
// injector's fault schedule.
func chaosCycle(t *testing.T, seed int64) []string {
	t.Helper()
	in := fault.NewInjector(seed, fault.WithSleep(func(time.Duration) {}))
	// Two dial failures, then connectivity; two step failures, then the
	// resource works; three probe failures, then telemetry recovers.
	in.Arm(remote.SiteDial, fault.Spec{Kind: fault.Error, Limit: 2})
	in.Arm(broker.SiteStep, fault.Spec{Kind: fault.Error, Limit: 2})
	in.Arm(SiteMonitorProbe, fault.Spec{Kind: fault.Error, Limit: 3})

	p, r, m := buildChaos(t, in)

	// Site 1 — remote.dial: the self-healing Conn retries the injected
	// connection failures and comes up.
	srv, err := remote.NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := remote.Connect(srv.Addr(),
		remote.WithInjector(in),
		remote.WithRetry(fault.Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}))
	if err != nil {
		t.Fatalf("connect through injected dial faults: %v", err)
	}
	defer conn.Close()

	// Site 2 — broker.step: the remote command crosses the wire, descends
	// the layers, and the Broker retries the injected step failures.
	if err := conn.Call(script.NewCommand("createSession", "session:s1")); err != nil {
		t.Fatalf("call through injected step faults: %v", err)
	}
	if !strings.Contains(recText(r), "svcCreate session:s1") {
		t.Fatalf("command never reached the resource:\n%s", recText(r))
	}

	// Site 3 — monitor.probe: the monitor survives a failing telemetry
	// probe, counting instead of crashing; after the fault budget is spent
	// the probe runs normally again.
	probeRuns := make(chan struct{}, 16)
	stop := p.Monitor(
		WithInterval(time.Millisecond),
		WithProbe(func() { probeRuns <- struct{}{} }),
	)
	select {
	case <-probeRuns:
	case <-time.After(5 * time.Second):
		t.Fatal("probe never recovered from injected faults")
	}
	stop()

	if got := m.Counter(obs.MProbeFailures).Value(); got != 3 {
		t.Errorf("monitor.probe.failures = %d, want 3", got)
	}
	if got := m.Counter(obs.MFaultInjected).Value(); got != 7 {
		t.Errorf("fault.injected = %d, want 7 (2 dial + 2 step + 3 probe)", got)
	}
	if got := m.Counter(obs.MRetryAttempts).Value(); got == 0 {
		t.Error("retry.attempts = 0; broker retries were not exercised")
	}
	return in.Schedule()
}

// TestChaosSubmitRecoverCycle injects faults at three sites across the
// stack and requires the platform to complete the cycle anyway, with the
// faults visible in the obs counters.
func TestChaosSubmitRecoverCycle(t *testing.T) {
	schedule := chaosCycle(t, 42)
	want := []string{
		"1 " + remote.SiteDial + " error",
		"2 " + remote.SiteDial + " error",
		"3 " + broker.SiteStep + " error",
		"4 " + broker.SiteStep + " error",
		"5 " + SiteMonitorProbe + " error",
		"6 " + SiteMonitorProbe + " error",
		"7 " + SiteMonitorProbe + " error",
	}
	if fmt.Sprint(schedule) != fmt.Sprint(want) {
		t.Errorf("schedule:\n%v\nwant:\n%v", schedule, want)
	}
}

// TestChaosScheduleReproducible reruns the full cycle with the same seed
// and requires an identical fault schedule — the repro guarantee the CLI
// -faults flag relies on.
func TestChaosScheduleReproducible(t *testing.T) {
	s1 := chaosCycle(t, 7)
	s2 := chaosCycle(t, 7)
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", s1, s2)
	}
}

// TestChaosProbabilisticDeterminism drives a synchronous command sequence
// against probabilistic faults: the schedule is a pure function of the seed.
func TestChaosProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		in := fault.NewInjector(seed, fault.WithSleep(func(time.Duration) {}))
		in.Arm(broker.SiteStep, fault.Spec{Kind: fault.Error, P: 0.4})
		in.Arm(broker.SiteEvent, fault.Spec{Kind: fault.Drop, P: 0.3})
		p, _, _ := buildChaos(t, in)
		for i := 0; i < 30; i++ {
			s := script.New("chaos")
			s.Append(script.NewCommand("createSession", fmt.Sprintf("session:s%d", i)))
			_ = p.Execute(s) // exhausted retries may fail the call; that's the point
			_ = p.DeliverEvent(broker.Event{Name: "streamFailed",
				Attrs: map[string]any{"stream": fmt.Sprintf("st%d", i)}})
		}
		return in.Schedule()
	}
	a, b := run(99), run(99)
	if len(a) == 0 {
		t.Fatal("no faults fired over 60 evaluations at p=0.4/0.3")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if c := run(100); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

// TestPumpSurvivesEventFaults verifies degraded mode: injected failures on
// the Broker's event path are counted, not fatal, and delivery resumes.
func TestPumpSurvivesEventFaults(t *testing.T) {
	in := fault.NewInjector(1)
	in.Arm(broker.SiteEvent, fault.Spec{Kind: fault.Error, Limit: 2})
	p, r, m := buildChaos(t, in)
	p.Start()
	defer p.Stop()

	for i := 0; i < 3; i++ {
		if !p.PostEvent(broker.Event{Name: "streamFailed",
			Attrs: map[string]any{"stream": fmt.Sprintf("st%d", i)}}) {
			t.Fatalf("PostEvent %d rejected", i)
		}
	}
	// The first two deliveries fail (injected); the third recovers st2.
	deadline := time.After(5 * time.Second)
	for !strings.Contains(recText(r), "svcRecover stream:st2") {
		select {
		case <-deadline:
			t.Fatalf("pump never recovered; trace:\n%s", recText(r))
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if got := m.Counter(obs.MEventsDeadLettered).Value(); got != 2 {
		t.Errorf("pump.events.deadlettered = %d, want 2", got)
	}
	if got := len(p.DeadLetters()); got != 2 {
		t.Errorf("dead letters parked = %d, want 2", got)
	}
}

// TestPumpPostDropFault verifies the pump.post fault point: a drop fault
// rejects the post (counted as rejected) without wedging the pump.
func TestPumpPostDropFault(t *testing.T) {
	in := fault.NewInjector(1)
	in.Arm(SitePumpPost, fault.Spec{Kind: fault.Drop, Limit: 1})
	p, r, m := buildChaos(t, in)
	p.Start()
	defer p.Stop()

	if p.PostEvent(broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": "stX"}}) {
		t.Fatal("dropped post reported accepted")
	}
	if got := m.Counter(obs.MEventsRejected).Value(); got != 1 {
		t.Errorf("pump.events.rejected = %d, want 1", got)
	}
	if !p.PostEvent(broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": "stY"}}) {
		t.Fatal("post after fault budget rejected")
	}
	deadline := time.After(5 * time.Second)
	for !strings.Contains(recText(r), "svcRecover stream:stY") {
		select {
		case <-deadline:
			t.Fatalf("surviving event never delivered; trace:\n%s", recText(r))
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestMonitorSurvivesPanickingProbe: a probe that panics is recovered and
// counted; the monitor loop keeps ticking.
func TestMonitorSurvivesPanickingProbe(t *testing.T) {
	p, _, m := buildChaos(t, fault.NewInjector(1))
	calls := 0
	stop := p.Monitor(
		WithInterval(time.Millisecond),
		WithProbe(func() {
			calls++
			if calls <= 2 {
				panic("sensor exploded")
			}
		}),
	)
	deadline := time.After(5 * time.Second)
	for m.Counter(obs.MMonitorTicks).Value() < 4 {
		select {
		case <-deadline:
			t.Fatal("monitor died after probe panic")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	stop()
	if got := m.Counter(obs.MProbeFailures).Value(); got < 2 {
		t.Errorf("monitor.probe.failures = %d, want >= 2", got)
	}
}

// TestBrokerBreakerOpensUnderSustainedFaults: a persistently failing
// resource op trips its circuit; the breaker short-circuits further calls
// and the obs counters record both transitions.
func TestBrokerBreakerOpensUnderSustainedFaults(t *testing.T) {
	in := fault.NewInjector(1)
	in.Arm(broker.SiteStep, fault.Spec{Kind: fault.Partition})
	p, _, m := buildChaos(t, in)

	var lastErr error
	for i := 0; i < 20; i++ {
		s := script.New("chaos")
		s.Append(script.NewCommand("createSession", "session:s1"))
		lastErr = p.Execute(s)
	}
	if lastErr == nil {
		t.Fatal("partitioned resource succeeded")
	}
	if got := m.Counter(obs.MBreakerOpen).Value(); got == 0 {
		t.Error("breaker.open = 0; circuit never tripped")
	}
	if got := m.Counter(obs.MBreakerShorted).Value(); got == 0 {
		t.Error("breaker.shorted = 0; open circuit never short-circuited")
	}

	// Healing the partition and waiting out the cooldown closes the circuit
	// through a half-open probe.
	in.Heal(broker.SiteStep)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := script.New("chaos")
		s.Append(script.NewCommand("createSession", "session:s2"))
		if err := p.Execute(s); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit never recovered after heal")
		}
		time.Sleep(time.Millisecond)
	}
}

// recText renders the recorder's trace for assertions.
func recText(r *rec) string { return strings.Join(r.lines(), "\n") }

// TestShardedPumpChaosOrderingUnderRace drives concurrent PostEvent from
// many goroutines against Start/Stop/Monitor cycles and asserts, under the
// race detector, that (a) per-key delivery order holds across pump
// generations and (b) the accounting invariant holds: every attempted post
// ends up delivered, failed, or dropped.
func TestShardedPumpChaosOrderingUnderRace(t *testing.T) {
	const posters, perPoster = 8, 150
	r := &rec{}
	m := obs.NewMetrics()
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
		Metrics:  m,
	}, WithPumpShards(4), WithShardKey("key"), WithPumpQueue(posters*perPoster))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	// Lifecycle chaos: stop/start the pump and cycle the monitor while
	// events pour in. Posts hitting a stopped pump are counted drops.
	cycles := make(chan struct{})
	go func() {
		defer close(cycles)
		for c := 0; c < 5; c++ {
			stop := p.Monitor(WithInterval(time.Millisecond))
			time.Sleep(2 * time.Millisecond)
			stop()
			p.Stop()
			time.Sleep(time.Millisecond)
			p.Start()
		}
	}()

	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < posters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				if p.PostEvent(tickEvent(fmt.Sprintf("g%d", g), i)) {
					accepted.Add(1)
				} else {
					rejected.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	<-cycles
	p.Stop() // final graceful drain

	if accepted.Load() == 0 {
		t.Fatal("no posts accepted; the chaos cycle never left the pump running")
	}
	assertOrderedPerKey(t, r.lines())
	assertPumpAccounting(t, m, accepted.Load(), rejected.Load())
	if got := accepted.Load() + rejected.Load(); got != posters*perPoster {
		t.Fatalf("attempts = %d, want %d", got, posters*perPoster)
	}
}
