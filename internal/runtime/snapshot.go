// Checkpoint/restore of models@runtime state. A snapshot is the paper's
// "model at runtime" made durable: the middleware model the platform was
// generated from, the committed application model and LTS position of the
// Synthesis layer, the Broker's resource state and policy context, the
// Controller's context and stats, the open circuit breakers and the parked
// dead letters — everything needed to regenerate an equivalent platform
// after a crash. Restore rebuilds the platform through the same factory
// path as Build (the snapshot's models are re-validated, not trusted) and
// then reinstates the serialised state on top.
//
// The format is versioned JSON; Restore rejects snapshots whose version it
// does not understand. JSON normalises all numbers to float64, which the
// expression engine and policy contexts already accept.

package runtime

import (
	"encoding/json"
	"fmt"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/controller"
	"github.com/mddsm/mddsm/internal/metamodel"
)

// SnapshotVersion is the snapshot format version written by Checkpoint and
// required by Restore.
const SnapshotVersion = 1

// snapshotDoc is the on-disk snapshot layout.
type snapshotDoc struct {
	Version    int                  `json:"version"`
	Name       string               `json:"name"`
	Domain     string               `json:"domain"`
	Middleware json.RawMessage      `json:"middleware"`
	Synthesis  *synthSnapshot       `json:"synthesis,omitempty"`
	Controller *controllerSnapshot  `json:"controller,omitempty"`
	Broker     *brokerSnapshot      `json:"broker,omitempty"`
	DeadLetter []deadLetterSnapshot `json:"deadLetters,omitempty"`
}

type synthSnapshot struct {
	// AppModel is the committed runtime application model.
	AppModel json.RawMessage `json:"appModel"`
	// Seq is the submission sequence number.
	Seq int `json:"seq"`
	// LTSState is the synthesis LTS instance's position.
	LTSState string `json:"ltsState"`
}

type controllerSnapshot struct {
	Context map[string]any   `json:"context,omitempty"`
	Stats   controller.Stats `json:"stats"`
}

type brokerSnapshot struct {
	State   map[string]any `json:"state,omitempty"`
	Context map[string]any `json:"context,omitempty"`
	// OpenBreakers lists operations whose circuit breakers were not closed
	// at checkpoint time; Restore re-trips them so a restored platform does
	// not naively hammer a resource that was failing when it went down.
	OpenBreakers []string `json:"openBreakers,omitempty"`
}

type deadLetterSnapshot struct {
	Event    string         `json:"event"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Reason   string         `json:"reason"`
	Attempts int            `json:"attempts"`
}

// Checkpoint serialises the platform's running state to a versioned JSON
// snapshot. It is safe on a running platform (each layer is snapshotted
// under its own lock), but a checkpoint taken mid-flight observes whatever
// delivery boundary it lands on; quiesce first for an exact cut. Context
// and state values must be JSON-serialisable.
func (p *Platform) Checkpoint() ([]byte, error) {
	mw, err := metamodel.MarshalModel(p.model)
	if err != nil {
		return nil, fmt.Errorf("runtime: checkpoint %s: middleware model: %w", p.Name, err)
	}
	doc := snapshotDoc{
		Version:    SnapshotVersion,
		Name:       p.Name,
		Domain:     p.Domain,
		Middleware: mw,
		Broker: &brokerSnapshot{
			State:        p.Broker.State().Snapshot(),
			Context:      p.Broker.Context().Snapshot(),
			OpenBreakers: p.Broker.OpenBreakers(),
		},
	}
	if p.Controller != nil {
		doc.Controller = &controllerSnapshot{
			Context: p.Controller.Context().Snapshot(),
			Stats:   p.Controller.Stats(),
		}
	}
	if p.Synthesis != nil {
		app, err := metamodel.MarshalModel(p.Synthesis.CurrentModel())
		if err != nil {
			return nil, fmt.Errorf("runtime: checkpoint %s: application model: %w", p.Name, err)
		}
		doc.Synthesis = &synthSnapshot{
			AppModel: app,
			Seq:      p.Synthesis.Seq(),
			LTSState: p.Synthesis.State(),
		}
	}
	for _, dl := range p.dlq.snapshot() {
		doc.DeadLetter = append(doc.DeadLetter, deadLetterSnapshot{
			Event:    dl.Event.Name,
			Attrs:    dl.Event.Attrs,
			Reason:   dl.Reason,
			Attempts: dl.Attempts,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runtime: checkpoint %s: %w", p.Name, err)
	}
	return out, nil
}

// Quiesce stops the platform (draining the pump with exact accounting)
// and takes a checkpoint of the settled state: the exact cut that
// eviction, replication and live migration transfer. On checkpoint failure
// the platform is restarted so the caller is never left with a silently
// stopped tenant. After a successful Quiesce the platform stays stopped;
// restart it with Start or discard it.
func (p *Platform) Quiesce() ([]byte, error) {
	p.Stop()
	snap, err := p.Checkpoint()
	if err != nil {
		p.Start()
		return nil, fmt.Errorf("runtime: quiesce %s: %w", p.Name, err)
	}
	return snap, nil
}

// SnapshotsEquivalent reports whether two Checkpoint snapshots describe
// the same models@runtime state. The Controller's Generated and CacheHits
// counters are excluded from the comparison: they are live generator
// statistics that RestoreStats documents as starting cold after a restore,
// so they legitimately differ across a checkpoint/restore roundtrip even
// when every piece of restored state is identical.
func SnapshotsEquivalent(a, b []byte) (bool, error) {
	canon := func(data []byte) ([]byte, error) {
		var doc snapshotDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("runtime: snapshot compare: %w", err)
		}
		if doc.Controller != nil {
			doc.Controller.Stats.Generated = 0
			doc.Controller.Stats.CacheHits = 0
		}
		return json.Marshal(doc)
	}
	ca, err := canon(a)
	if err != nil {
		return false, err
	}
	cb, err := canon(b)
	if err != nil {
		return false, err
	}
	return string(ca) == string(cb), nil
}

// Restore rebuilds a platform from a Checkpoint snapshot: the snapshot's
// middleware model is re-validated and run through the same factory as
// Build (bound to the given DSK deps), then the checkpointed layer state is
// reinstated — committed application model, LTS position, contexts,
// resource state, open breakers and dead letters. The restored platform is
// not started; call Start (and Monitor) as after Build.
func Restore(data []byte, deps Deps, opts ...Option) (*Platform, error) {
	var doc snapshotDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("runtime: restore: malformed snapshot: %w", err)
	}
	if doc.Version != SnapshotVersion {
		return nil, fmt.Errorf("runtime: restore: snapshot version %d, want %d", doc.Version, SnapshotVersion)
	}
	if len(doc.Middleware) == 0 {
		return nil, fmt.Errorf("runtime: restore: snapshot has no middleware model")
	}
	mw, err := metamodel.UnmarshalModel(doc.Middleware)
	if err != nil {
		return nil, fmt.Errorf("runtime: restore: middleware model: %w", err)
	}
	p, err := Build(mw, deps, opts...)
	if err != nil {
		return nil, fmt.Errorf("runtime: restore: %w", err)
	}
	if doc.Broker != nil {
		for k, v := range doc.Broker.State {
			p.Broker.State().Set(k, v)
		}
		for k, v := range doc.Broker.Context {
			p.Broker.Context().Set(k, v)
		}
		for _, op := range doc.Broker.OpenBreakers {
			p.Broker.TripBreaker(op)
		}
	}
	if doc.Controller != nil {
		if p.Controller == nil {
			return nil, fmt.Errorf("runtime: restore: snapshot has Controller state but the middleware model declares no ControllerLayer")
		}
		for k, v := range doc.Controller.Context {
			p.Controller.Context().Set(k, v)
		}
		p.Controller.RestoreStats(doc.Controller.Stats)
	}
	if doc.Synthesis != nil {
		if p.Synthesis == nil {
			return nil, fmt.Errorf("runtime: restore: snapshot has Synthesis state but the middleware model declares no SynthesisLayer")
		}
		app, err := metamodel.UnmarshalModel(doc.Synthesis.AppModel)
		if err != nil {
			return nil, fmt.Errorf("runtime: restore: application model: %w", err)
		}
		if err := p.Synthesis.RestoreState(app, doc.Synthesis.Seq, doc.Synthesis.LTSState); err != nil {
			return nil, fmt.Errorf("runtime: restore: %w", err)
		}
	}
	for _, dl := range doc.DeadLetter {
		if p.dlq.add(DeadLetter{
			Event:    broker.Event{Name: dl.Event, Attrs: dl.Attrs},
			Reason:   dl.Reason,
			Attempts: dl.Attempts,
		}) {
			continue
		}
		// The restored platform's DLQ is smaller than the checkpointed
		// backlog: the overflow is a terminal counted loss, like any
		// delivery failure with no DLQ room.
		p.mDeliverFail.Inc()
	}
	p.gDLQDepth.Set(int64(p.dlq.size()))
	return p, nil
}
