package runtime

import (
	goruntime "runtime"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// buildPumpAllocPlatform is a broker-only platform with a no-op adapter and
// a metrics registry, the minimal shape of the asynchronous hot path.
func buildPumpAllocPlatform(t testing.TB, shards int) (*Platform, *obs.Counter) {
	t.Helper()
	b := mwmeta.NewBuilder("pump-alloc", "d")
	b.BrokerLayer("brk").
		EventAction("handle", "tick", "", false,
			mwmeta.StepSpec{Op: "handle", Target: "t"}).
		Bind("*", "main")
	m := obs.NewMetrics()
	ad := broker.AdapterFunc(func(cmd script.Command) error { return nil })
	p, err := Build(b.Model(), Deps{
		Adapters: map[string]broker.Adapter{"main": ad},
		Metrics:  m,
	}, WithPumpShards(shards), WithShardKey("src"), WithPumpQueue(4096))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	return p, m.Counter(obs.MEventsDelivered)
}

// postPooled posts n pooled events round-robin over the pre-boxed sources
// and spins until all have been delivered.
func postPooled(p *Platform, delivered *obs.Counter, srcs []any, n int) {
	base := delivered.Value()
	for i := 0; i < n; i++ {
		ev := broker.AcquireEvent("tick")
		ev.Attrs["src"] = srcs[i%len(srcs)]
		for !p.PostEvent(ev) {
			goruntime.Gosched()
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Value() < base+int64(n) {
		if time.Now().After(deadline) {
			panic("pump did not drain in time")
		}
		goruntime.Gosched()
	}
}

// TestPumpHotPathAllocFree is the allocation gate of ROADMAP item 3: once
// the pools are warm, a steady-state post→shard→deliver round trip of
// pooled events must not allocate at all — not on the posting goroutine
// and not on the shard workers (AllocsPerRun reads process-wide mallocs).
func TestPumpHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race CI leg")
	}
	p, delivered := buildPumpAllocPlatform(t, 2)
	defer p.Stop()

	// Pre-boxed source keys: storing a string into Attrs boxes it, which
	// is the caller's one-time cost, not the pipeline's.
	srcs := make([]any, 8)
	for i, s := range []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"} {
		srcs[i] = s
	}

	// Warm up pools, maps, channels and metric instruments.
	postPooled(p, delivered, srcs, 4096)

	const perRun = 64
	allocs := testing.AllocsPerRun(50, func() {
		postPooled(p, delivered, srcs, perRun)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates: %.2f allocs per %d-event run (want 0)", allocs, perRun)
	}
}

// TestShardKeySameValueSameShardAcrossTypes pins the shardFor contract the
// fmt.Sprint fallback used to provide implicitly: a shard key carrying the
// same value routes to the same shard whatever scalar type carried it.
func TestShardKeySameValueSameShardAcrossTypes(t *testing.T) {
	pu := &pump{keyAttr: "k", shards: make([]*shard, 8)}
	for i := range pu.shards {
		pu.shards[i] = &shard{}
	}
	shardOf := func(v any) int {
		sh := pu.shardFor(broker.Event{Name: "n", Attrs: map[string]any{"k": v}})
		for i, s := range pu.shards {
			if s == sh {
				return i
			}
		}
		t.Fatalf("shardFor returned unknown shard for %v", v)
		return -1
	}
	groups := [][]any{
		{"7", int(7), int64(7), float64(7)},
		{"-3", int(-3), int64(-3), float64(-3)},
		{"0", int(0), int64(0), float64(0)},
		{"2.5", float64(2.5)},
		{"true", true},
		{"false", false},
		{"1e+30", float64(1e30)},
	}
	for _, g := range groups {
		want := shardOf(g[0])
		for _, v := range g[1:] {
			if got := shardOf(v); got != want {
				t.Errorf("key %v (%T) → shard %d, want %d (same as %v)", v, v, got, want, g[0])
			}
		}
	}
	// Distinct values must be able to land on distinct shards (not all
	// collapsing onto one).
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[shardOf(int64(i))] = true
	}
	if len(seen) < 2 {
		t.Errorf("64 distinct int keys all hashed to one shard")
	}
}

// TestPumpAggregateDepthCounter checks the atomic aggregate depth: it rises
// with accepted posts, returns to zero once the queue drains, and the
// platform gauge mirrors it without rescanning shards.
func TestPumpAggregateDepthCounter(t *testing.T) {
	p, delivered := buildPumpAllocPlatform(t, 4)
	defer p.Stop()
	srcs := []any{"a", "b", "c", "d"}
	postPooled(p, delivered, srcs, 1000)

	p.pumpMu.Lock()
	pu := p.pump
	p.pumpMu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for pu.depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("aggregate depth did not return to 0: %d", pu.depth())
		}
		goruntime.Gosched()
	}
}
