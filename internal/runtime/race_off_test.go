//go:build !race

package runtime

// raceEnabled reports whether the race detector instruments this build;
// allocation gates are skipped under it (instrumentation allocates).
const raceEnabled = false
