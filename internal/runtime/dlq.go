// Dead-letter queue: the terminal parking lot for events the pump could
// not deliver. PR 3's pump counted a failed delivery and dropped the event;
// the DLQ replaces that count-and-drop with a bounded, inspectable queue —
// the event survives the failure, an operator (or test) can examine it, and
// Platform.Redeliver replays it once the cause is fixed. Only when the DLQ
// itself is full (or disabled) does a failed delivery fall back to being a
// counted terminal loss ("pump.deliver.failures").

package runtime

import (
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
)

// DeadLetter is one event parked after delivery exhausted its attempts.
type DeadLetter struct {
	// Event is the undeliverable event, verbatim.
	Event broker.Event
	// Reason is the final delivery error (a fault.PanicError's message for
	// panicked handlers).
	Reason string
	// Attempts counts delivery attempts so far, the original included.
	Attempts int
	// Seq orders entries by arrival in the queue (diagnostics).
	Seq int
}

// dlq is the platform's bounded dead-letter queue. Zero capacity disables
// it: add then always reports false and failures stay counted drops.
type dlq struct {
	mu      sync.Mutex
	cap     int
	seq     int
	entries []DeadLetter
}

func newDLQ(cap int) *dlq {
	return &dlq{cap: cap}
}

// add parks an event; false when the queue is full or disabled.
func (q *dlq) add(dl DeadLetter) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) >= q.cap {
		return false
	}
	q.seq++
	dl.Seq = q.seq
	q.entries = append(q.entries, dl)
	return true
}

// drain pops every parked entry, oldest first.
func (q *dlq) drain() []DeadLetter {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.entries
	q.entries = nil
	return out
}

// snapshot copies the parked entries without consuming them.
func (q *dlq) snapshot() []DeadLetter {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]DeadLetter(nil), q.entries...)
}

// size is the number of parked entries.
func (q *dlq) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// DeadLetters returns the events currently parked in the platform's
// dead-letter queue, oldest first.
func (p *Platform) DeadLetters() []DeadLetter {
	return p.dlq.snapshot()
}

// Redeliver replays every currently dead-lettered event synchronously into
// the Broker layer, in arrival order. Successes count in "dlq.redelivered";
// an event that fails again re-enters the queue with its attempt count
// bumped ("dlq.requeued"). If the queue filled up behind its back the event
// becomes a terminal counted loss, like any delivery failure with no DLQ
// room. Redeliver returns the number of events delivered and requeued.
func (p *Platform) Redeliver() (redelivered, requeued int) {
	entries := p.dlq.drain()
	p.gDLQDepth.Set(int64(p.dlq.size()))
	g := obs.GoID()
	for _, dl := range entries {
		err := p.safeBrokerOnEvent(g, dl.Event)
		if err == nil {
			redelivered++
			p.mRedelivered.Inc()
			continue
		}
		dl.Attempts++
		dl.Reason = err.Error()
		if p.dlq.add(dl) {
			requeued++
			p.mRequeued.Inc()
		} else {
			p.mDeliverFail.Inc()
		}
	}
	p.gDLQDepth.Set(int64(p.dlq.size()))
	return redelivered, requeued
}

// deadLetter parks an undeliverable event, falling back to a terminal
// counted loss when the queue is full or disabled. The pump's lifetime
// invariant stays exact either way:
//
//	posted = delivered + deliver-failures + dead-lettered + dropped
func (p *Platform) deadLetter(ev broker.Event, cause error) {
	if p.dlq.add(DeadLetter{Event: ev, Reason: cause.Error(), Attempts: 1}) {
		p.mDeadLettered.Inc()
		p.gDLQDepth.Set(int64(p.dlq.size()))
		return
	}
	p.mDeliverFail.Inc()
}

// safeBrokerOnEvent hands one event to the Broker layer with last-resort
// panic isolation: the layers recover their own panics, but a poisoned
// callback wired outside them (an external sink, a handcrafted notify)
// must still not kill a pump worker. g is the calling goroutine's ID
// (obs.GoID()), resolved by the caller — pump workers pay the parse once
// per worker, not once per event.
func (p *Platform) safeBrokerOnEvent(g uint64, ev broker.Event) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.mPanics.Inc()
			err = fault.Recovered("pump.deliver", r)
		}
		// A failure in an upper layer (Controller, Synthesis) cannot cross
		// the Broker's notify callback as a return value; pick up the
		// stashed routing error so the event dead-letters.
		if rerr := p.takeRouteErrorFrom(g); err == nil {
			err = rerr
		}
	}()
	return p.Broker.OnEventFrom(g, ev)
}
