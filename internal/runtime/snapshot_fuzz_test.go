package runtime

import (
	"testing"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/obs"
)

// FuzzRestoreSnapshot throws arbitrary bytes at the snapshot decoder: a
// malformed snapshot must produce an error, never a panic, and any
// snapshot the decoder does accept must yield a platform that starts and
// stops cleanly. Seed corpus: one genuine checkpoint plus the malformed
// shapes pinned by TestRestoreRejectsBadSnapshots.
func FuzzRestoreSnapshot(f *testing.F) {
	// A genuine checkpoint seeds the corpus so mutations explore the
	// accepted grammar, not just the reject paths.
	r := &rec{}
	deps := Deps{
		DSML:       toyDSML(f),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": r},
		Repository: toyRepo(f),
	}
	p, err := Build(fullModel(f), deps)
	if err != nil {
		f.Fatal(err)
	}
	d := p.UI.NewDraft()
	d.MustAdd("s1", "Session").SetRef("streams", "st1")
	d.MustAdd("st1", "Stream").SetAttr("media", "audio")
	if _, err := d.Submit(); err != nil {
		f.Fatal(err)
	}
	snap, err := p.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"version": 99}`))
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(`{"version": 1, "middleware": {"objects": 42}}`))
	f.Add(snap[:len(snap)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &rec{}
		fdeps := Deps{
			DSML:       toyDSML(t),
			LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
			Adapters:   map[string]broker.Adapter{"main": fr},
			Repository: toyRepo(t),
			Metrics:    obs.NewMetrics(),
		}
		fp, err := Restore(data, fdeps)
		if err != nil {
			return // rejected — the only acceptable failure mode
		}
		// Accepted snapshots must yield a live, stoppable platform.
		fp.Start()
		fp.PostEvent(broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": "fz"}})
		fp.Stop()
	})
}
