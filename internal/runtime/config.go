// Config is the unified tuning surface of a platform. Five PRs accreted
// one functional option per knob (WithPumpQueue, WithPumpShards,
// WithShardKey, WithDrainTimeout, WithDLQCapacity, WithSupervisor,
// WithValidationCache, WithExternalEvents); a caller that wants to carry a
// tuning profile around — a CLI flag set, a per-tenant quota in
// mddsm-serve — had to haul a []Option. Config collapses the surface into
// one documented struct with Defaults() and Validate(); the functional
// options survive as thin wrappers over the same fields, so every existing
// caller compiles unchanged and the two styles compose (options applied
// after WithConfig override it field by field).

package runtime

import (
	"fmt"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/metamodel"
)

// DLQDisabled is the DLQCapacity sentinel that turns dead-lettering off:
// failed deliveries then revert to counted terminal losses
// ("pump.deliver.failures"). The zero value means "default capacity", so
// disabling must be explicit.
const DLQDisabled = -1

// Config collects every platform tunable previously reachable only through
// functional options. The zero value of each field means "use the
// default"; start from Defaults() to see (and override) the resolved
// values explicitly. Negative values are invalid except where a sentinel
// is documented (DLQCapacity).
type Config struct {
	// PumpQueue is each pump shard's queue capacity (default 256).
	// PostEvent reports false and counts a rejection when the target
	// shard's queue is full.
	PumpQueue int

	// PumpShards is the event pump's shard count (default 0 =
	// GOMAXPROCS). Each shard owns a bounded queue and a delivery
	// goroutine; events sharing a shard key are delivered strictly in
	// post order, events on different shards concurrently.
	PumpShards int

	// ShardKey names the event attribute the pump shards by. Events
	// carrying the attribute are routed by its value; events without it
	// (and the default, "") fall back to a hash of the event name.
	ShardKey string

	// DrainTimeout bounds Stop's graceful drain (default 5s): events
	// still queued when the deadline expires are abandoned as counted
	// drops.
	DrainTimeout time.Duration

	// DLQCapacity bounds the dead-letter queue (default 256, the zero
	// value). DLQDisabled (-1) disables dead-lettering entirely.
	DLQCapacity int

	// Supervisor tunes the watchdog supervisor's health thresholds and
	// restart backoff; the zero config's defaults apply otherwise.
	Supervisor SupervisorConfig

	// ValidationCache memoises conformance validations across the
	// platform's layers. Nil (the default) selects the process-wide
	// shared cache, so layers and platforms dedupe validations of
	// identical content against each other; set DisableValidationCache to
	// run without memoisation instead.
	ValidationCache *metamodel.ValidationCache

	// DisableValidationCache turns conformance memoisation off for this
	// platform (it wins over ValidationCache).
	DisableValidationCache bool

	// DeltaValidation switches the Synthesis layer to incremental delta
	// validation: a submission re-checks only the objects it touches (and
	// the objects referring to them) instead of re-validating — and
	// content-hashing — the whole model. Verdicts and problem reports are
	// identical to full validation. Requires the DSML to compile; a
	// non-compiling DSML silently keeps the full-validation path.
	DeltaValidation bool

	// ExternalEvents routes events escaping the topmost layer to the
	// given observer (interoperability bridges attach here).
	ExternalEvents func(broker.Event)

	// MonitorInterval is the autonomic monitor's default evaluation
	// period (default 1s); Monitor's WithInterval option overrides it per
	// call.
	MonitorInterval time.Duration
}

// Defaults returns the resolved default configuration — the exact values a
// zero Config builds with, spelled out.
func Defaults() Config {
	return Config{
		PumpQueue:       256,
		PumpShards:      0, // GOMAXPROCS at Start
		ShardKey:        "",
		DrainTimeout:    5 * time.Second,
		DLQCapacity:     256,
		MonitorInterval: time.Second,
	}
}

// Validate rejects configurations no option could have expressed: negative
// capacities (except the DLQDisabled sentinel), shard counts or durations.
func (c Config) Validate() error {
	if c.PumpQueue < 0 {
		return fmt.Errorf("runtime config: PumpQueue %d < 0", c.PumpQueue)
	}
	if c.PumpShards < 0 {
		return fmt.Errorf("runtime config: PumpShards %d < 0", c.PumpShards)
	}
	if c.DrainTimeout < 0 {
		return fmt.Errorf("runtime config: DrainTimeout %v < 0", c.DrainTimeout)
	}
	if c.DLQCapacity < DLQDisabled {
		return fmt.Errorf("runtime config: DLQCapacity %d < %d (use DLQDisabled to disable)", c.DLQCapacity, DLQDisabled)
	}
	if c.MonitorInterval < 0 {
		return fmt.Errorf("runtime config: MonitorInterval %v < 0", c.MonitorInterval)
	}
	return nil
}

// withDefaults resolves the zero-means-default fields to their effective
// values (PumpShards stays 0 — GOMAXPROCS is resolved at pump start so a
// checkpoint restored on different hardware gets that hardware's width).
func (c Config) withDefaults() Config {
	d := Defaults()
	if c.PumpQueue == 0 {
		c.PumpQueue = d.PumpQueue
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	if c.DLQCapacity == 0 {
		c.DLQCapacity = d.DLQCapacity
	}
	if c.MonitorInterval == 0 {
		c.MonitorInterval = d.MonitorInterval
	}
	return c
}

// dlqCapacity maps the DLQCapacity field (with its DLQDisabled sentinel)
// to the dead-letter queue's real capacity.
func (c Config) dlqCapacity() int {
	if c.DLQCapacity == DLQDisabled {
		return 0
	}
	return c.DLQCapacity
}

// WithConfig replaces the platform's whole configuration. It composes with
// the single-field options: options applied after WithConfig override its
// fields, options applied before are overwritten. An invalid Config fails
// Build rather than being silently clamped.
func WithConfig(cfg Config) Option {
	return func(p *Platform) { p.cfg = cfg }
}

// Config returns the platform's resolved configuration (defaults applied,
// options folded in).
func (p *Platform) Config() Config { return p.cfg }
