// Watchdog supervisor: a per-component health state machine driven by the
// panic and failure rates the delivery paths report. A component moves
// healthy → degraded → quarantined as consecutive failures accumulate
// (panics weigh heavier than plain failures); entering quarantine schedules
// an automatic restart with jittered exponential backoff, executed through
// the existing fault.Retryer so restart storms stay bounded and
// reproducible. The supervised components are the platform's own moving
// parts — the sharded event pump and the autonomic monitor — whose restart
// hooks bounce them onto a fresh generation.

package runtime

import (
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
)

// Health is a supervised component's state.
type Health int

// Health states, in order of escalation.
const (
	Healthy Health = iota
	Degraded
	Quarantined
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	default:
		return "invalid"
	}
}

// SupervisorConfig tunes the watchdog. The zero value gets defaults.
type SupervisorConfig struct {
	// DegradeAfter is the consecutive-failure weight marking a component
	// degraded (default 3).
	DegradeAfter int
	// QuarantineAfter is the consecutive-failure weight quarantining a
	// component and scheduling its restart (default 6).
	QuarantineAfter int
	// PanicWeight is how many plain failures one recovered panic counts
	// for (default 3): a panicking handler poisons faster than a failing
	// one.
	PanicWeight int
	// Backoff paces restart attempts (jittered exponential, executed via
	// fault.Retryer). The default is 3 attempts, 10ms base, 1s cap,
	// multiplier 2, jitter 0.2. The pre-restart cooldown also grows with
	// the component's restart count, so a component that keeps
	// re-quarantining is bounced less and less eagerly.
	Backoff fault.Policy
	// RetrySeed seeds the backoff jitter (default 1) so restart schedules
	// are reproducible.
	RetrySeed int64
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 3
	}
	if c.QuarantineAfter <= c.DegradeAfter {
		c.QuarantineAfter = c.DegradeAfter * 2
	}
	if c.PanicWeight <= 0 {
		c.PanicWeight = 3
	}
	if c.Backoff.MaxAttempts <= 0 {
		c.Backoff = fault.Policy{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    time.Second,
			Multiplier:  2,
			Jitter:      0.2,
		}
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	return c
}

// component is one supervised unit: its health, failure streak, restart
// hook and per-component state gauge.
type component struct {
	name     string
	restart  func() error
	state    Health
	streak   int // weighted consecutive failures
	restarts int // completed automatic restarts
	gState   *obs.Gauge
}

// Supervisor is the platform's watchdog. All methods are safe on a nil
// receiver and for concurrent use; reports arrive from pump workers and
// the monitor loop.
type Supervisor struct {
	cfg     SupervisorConfig
	metrics *obs.Metrics

	mDegraded    *obs.Counter
	mQuarantined *obs.Counter
	mRestarts    *obs.Counter

	mu      sync.Mutex
	comps   map[string]*component
	running bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

func newSupervisor(cfg SupervisorConfig, metrics *obs.Metrics) *Supervisor {
	return &Supervisor{
		cfg:          cfg.withDefaults(),
		metrics:      metrics,
		mDegraded:    metrics.Counter(obs.MSupervisorDegraded),
		mQuarantined: metrics.Counter(obs.MSupervisorQuarantined),
		mRestarts:    metrics.Counter(obs.MSupervisorRestarts),
		comps:        make(map[string]*component),
	}
}

// register adds a supervised component with its restart hook.
func (s *Supervisor) register(name string, restart func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.comps[name] = &component{
		name:    name,
		restart: restart,
		gState:  s.metrics.Gauge(obs.SupervisorState(name)),
	}
}

// start arms the watchdog: reports escalate and quarantines schedule
// restarts until stop. Idempotent.
func (s *Supervisor) start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.stopCh = make(chan struct{})
}

// stop disarms the watchdog and waits for any in-flight restart loop to
// exit, so a stopped platform leaves no supervisor goroutines behind.
// Idempotent.
func (s *Supervisor) stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stopCh)
	s.mu.Unlock()
	s.wg.Wait()
}

// Health returns a component's current state (Healthy for unknown names
// and nil supervisors).
func (s *Supervisor) Health(name string) Health {
	if s == nil {
		return Healthy
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.comps[name]; ok {
		return c.state
	}
	return Healthy
}

// ReportSuccess records a successful unit of work: a non-quarantined
// component heals back to Healthy. A quarantined component only leaves
// quarantine through its restart.
func (s *Supervisor) ReportSuccess(name string) { s.report(name, 0) }

// ReportFailure records a failed unit of work.
func (s *Supervisor) ReportFailure(name string) { s.report(name, 1) }

// ReportPanic records a recovered panic, which weighs PanicWeight plain
// failures.
func (s *Supervisor) ReportPanic(name string) { s.report(name, s.panicWeight()) }

func (s *Supervisor) panicWeight() int {
	if s == nil {
		return 0
	}
	return s.cfg.PanicWeight
}

// report drives the health state machine. weight 0 is a success.
func (s *Supervisor) report(name string, weight int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	c, ok := s.comps[name]
	if !ok || !s.running || c.state == Quarantined {
		// Unknown component, disarmed watchdog, or a restart already
		// pending: nothing to escalate.
		s.mu.Unlock()
		return
	}
	if weight == 0 {
		if c.state != Healthy || c.streak != 0 {
			c.streak = 0
			c.state = Healthy
			c.gState.Set(int64(Healthy))
		}
		s.mu.Unlock()
		return
	}
	c.streak += weight
	switch {
	case c.streak >= s.cfg.QuarantineAfter:
		c.state = Quarantined
		c.gState.Set(int64(Quarantined))
		s.mQuarantined.Inc()
		cooldown := s.cooldownLocked(c)
		stopCh := s.stopCh
		s.wg.Add(1)
		go s.restartLoop(c, cooldown, stopCh)
	case c.streak >= s.cfg.DegradeAfter && c.state == Healthy:
		c.state = Degraded
		c.gState.Set(int64(Degraded))
		s.mDegraded.Inc()
	}
	s.mu.Unlock()
}

// cooldownLocked is the pre-restart wait, growing with the component's
// restart count so repeat offenders are bounced progressively less eagerly
// (capped at the backoff policy's MaxDelay).
func (s *Supervisor) cooldownLocked(c *component) time.Duration {
	d := s.cfg.Backoff.BaseDelay
	for i := 0; i < c.restarts; i++ {
		d = time.Duration(float64(d) * s.cfg.Backoff.Multiplier)
		if max := s.cfg.Backoff.MaxDelay; max > 0 && d > max {
			return max
		}
	}
	return d
}

// restartLoop bounces one quarantined component: cooldown, then restart
// attempts paced by the fault.Retryer's jittered backoff. Sleeps are
// interruptible by stop, so a stopping platform never waits out a backoff
// schedule. On success the component re-enters service as Healthy.
func (s *Supervisor) restartLoop(c *component, cooldown time.Duration, stopCh chan struct{}) {
	defer s.wg.Done()
	if !s.sleep(cooldown, stopCh) {
		return
	}
	retryer := fault.NewRetryer(s.cfg.Backoff,
		fault.RetrySleep(func(d time.Duration) { s.sleep(d, stopCh) }),
		fault.RetrySeed(s.cfg.RetrySeed),
		fault.RetryMetrics(s.metrics),
	)
	var aborted bool
	err := retryer.Do(func() error {
		select {
		case <-stopCh:
			aborted = true
			return nil
		default:
		}
		return c.restart()
	})
	if aborted {
		return // stopping: the component stays quarantined, nothing ran
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		// Restart kept failing: the component stays quarantined; the next
		// failure report cannot re-escalate (quarantined reports are
		// ignored), so surface the stuck state through the gauge only.
		return
	}
	c.restarts++
	c.streak = 0
	c.state = Healthy
	c.gState.Set(int64(Healthy))
	s.mRestarts.Inc()
}

// sleep waits d, returning false when stop interrupts the wait.
func (s *Supervisor) sleep(d time.Duration, stopCh chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stopCh:
		return false
	}
}
