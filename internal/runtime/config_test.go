package runtime

import (
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// brokerOnlyModel builds the smallest valid middleware model: one
// passthrough Broker layer bound to the "main" adapter.
func brokerOnlyModel(name string) *metamodel.Model {
	b := mwmeta.NewBuilder(name, "test")
	b.BrokerLayer("brk").
		PassthroughAction("pass", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "main")
	return b.Model()
}

func TestConfigDefaults(t *testing.T) {
	d := Defaults()
	if d.PumpQueue != 256 || d.DLQCapacity != 256 {
		t.Errorf("capacity defaults: %+v", d)
	}
	if d.DrainTimeout != 5*time.Second || d.MonitorInterval != time.Second {
		t.Errorf("duration defaults: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Defaults() must validate: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero Config must validate: %v", err)
	}
	// The zero config resolves to exactly the documented defaults.
	if got := (Config{}).withDefaults(); !configEq(got, d) {
		t.Errorf("zero config resolved to %+v, want %+v", got, d)
	}
}

// configEq compares two Configs field by field (Config is not comparable:
// ExternalEvents is a func; funcs and caches compare by identity).
func configEq(a, b Config) bool {
	return a.PumpQueue == b.PumpQueue &&
		a.PumpShards == b.PumpShards &&
		a.ShardKey == b.ShardKey &&
		a.DrainTimeout == b.DrainTimeout &&
		a.DLQCapacity == b.DLQCapacity &&
		a.Supervisor == b.Supervisor &&
		a.ValidationCache == b.ValidationCache &&
		a.DisableValidationCache == b.DisableValidationCache &&
		a.MonitorInterval == b.MonitorInterval
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{PumpQueue: -1},
		{PumpShards: -2},
		{DrainTimeout: -time.Second},
		{DLQCapacity: -2},
		{MonitorInterval: -time.Minute},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated", i, cfg)
		}
	}
	if err := (Config{DLQCapacity: DLQDisabled}).Validate(); err != nil {
		t.Errorf("DLQDisabled sentinel must validate: %v", err)
	}
	// An invalid config fails Build instead of being clamped.
	if _, err := Build(brokerOnlyModel("cfg-invalid"), Deps{Adapters: map[string]broker.Adapter{"main": &rec{}}},
		WithConfig(Config{PumpQueue: -5})); err == nil {
		t.Fatal("Build accepted an invalid config")
	}
}

// TestConfigMatchesOptions proves every option-built platform is
// reproducible through Config alone — the acceptance bar for the unified
// API — by comparing the resolved Config of both constructions.
func TestConfigMatchesOptions(t *testing.T) {
	vc := metamodel.NewValidationCache(8)
	sup := SupervisorConfig{DegradeAfter: 7}
	deps := Deps{Adapters: map[string]broker.Adapter{"main": &rec{}}}

	viaOpts, err := Build(brokerOnlyModel("cfg-opts"), deps,
		WithPumpQueue(17), WithPumpShards(3), WithShardKey("room"),
		WithDrainTimeout(250*time.Millisecond), WithDLQCapacity(9),
		WithSupervisor(sup), WithValidationCache(vc))
	if err != nil {
		t.Fatal(err)
	}
	viaCfg, err := Build(brokerOnlyModel("cfg-struct"), deps, WithConfig(Config{
		PumpQueue:       17,
		PumpShards:      3,
		ShardKey:        "room",
		DrainTimeout:    250 * time.Millisecond,
		DLQCapacity:     9,
		Supervisor:      sup,
		ValidationCache: vc,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := viaOpts.Config(), viaCfg.Config(); !configEq(a, b) {
		t.Errorf("option-built config %+v != struct-built config %+v", a, b)
	}
	if got := viaCfg.Config().MonitorInterval; got != time.Second {
		t.Errorf("unset MonitorInterval resolved to %v, want 1s", got)
	}
}

// TestConfigDLQDisabled pins the sentinel mapping: WithDLQCapacity(0) and
// DLQCapacity: DLQDisabled both produce a platform with no dead-lettering.
func TestConfigDLQDisabled(t *testing.T) {
	deps := Deps{Adapters: map[string]broker.Adapter{"main": &rec{}}}
	for name, opt := range map[string]Option{
		"option": WithDLQCapacity(0),
		"config": WithConfig(Config{DLQCapacity: DLQDisabled}),
		"override": func() Option { // option after WithConfig wins
			return func(p *Platform) {
				WithConfig(Config{DLQCapacity: 99})(p)
				WithDLQCapacity(0)(p)
			}
		}(),
	} {
		p, err := Build(brokerOnlyModel("dlq-"+name), deps, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := p.Config().DLQCapacity; got != DLQDisabled {
			t.Errorf("%s: DLQCapacity = %d, want DLQDisabled", name, got)
		}
		if p.dlq.cap != 0 {
			t.Errorf("%s: dlq capacity = %d, want 0", name, p.dlq.cap)
		}
	}
}

// TestConfigPumpQuota exercises a Config-built pump bound: a 1-shard,
// 1-slot queue with a blocked adapter rejects overflow posts as exactly
// counted rejections — the per-tenant quota mechanism mddsm-serve leans on.
func TestConfigPumpQuota(t *testing.T) {
	release := make(chan struct{})
	blocked := adapterFunc(func() { <-release })
	m := obs.NewMetrics()
	b := mwmeta.NewBuilder("cfg-quota", "test")
	b.BrokerLayer("brk").
		EventAction("onTick", "tick", "", false,
			mwmeta.StepSpec{Op: "hold", Target: "t"}).
		Bind("*", "main")
	p, err := Build(b.Model(),
		Deps{Adapters: map[string]broker.Adapter{"main": blocked}, Metrics: m},
		WithConfig(Config{PumpQueue: 1, PumpShards: 1}))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer func() { close(release); p.Stop() }()

	ev := broker.Event{Name: "tick"}
	// First post is dequeued by the (now blocked) worker, second fills the
	// 1-slot queue; wait for the queue to empty into the worker so the
	// bound is deterministic.
	if !p.PostEvent(ev) {
		t.Fatal("first post rejected")
	}
	waitFor(t, "worker pickup", func() bool {
		return m.Counter(obs.MQueueDepth).Value() >= 0 && p.pump.depth() == 0
	})
	if !p.PostEvent(ev) {
		t.Fatal("second post rejected")
	}
	rejected := 0
	for i := 0; i < 5; i++ {
		if !p.PostEvent(ev) {
			rejected++
		}
	}
	if rejected != 5 {
		t.Errorf("rejected %d of 5 overflow posts, want all", rejected)
	}
	if got := m.Counter(obs.MEventsRejected).Value(); got != 5 {
		t.Errorf("pump.events.rejected = %d, want 5", got)
	}
}

// adapterFunc adapts a func to broker.Adapter for test doubles.
type adapterFunc func()

func (f adapterFunc) Execute(_ script.Command) error { f(); return nil }
