// Package runtime is the generic, domain-independent runtime environment of
// MD-DSM (paper §V-A): it loads middleware models and "generates and
// executes the appropriate middleware components defined in the model". The
// component factory instantiates each layer from its model metadata — the
// Go equivalent of the paper's code templates parameterised with model
// metadata — wires the layers together, and manages the platform's event
// pump (the threads that run the middleware components).
//
// Layer suppression is supported as in the paper's §IV platforms: a
// middleware model may declare any bottom-anchored subset of the four
// layers (e.g. Controller+Broker for a 2SVM smart object, or the three
// bottom layers for the CSVM provider), and the factory wires exactly what
// is present.
package runtime

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/controller"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/intent"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
	"github.com/mddsm/mddsm/internal/synthesis"
	"github.com/mddsm/mddsm/internal/ui"
)

// Deps is the domain-specific knowledge (DSK) bundle the factory binds to a
// middleware model: the application DSML, the synthesis semantics, resource
// adapters, the procedure repository and installed scripts.
type Deps struct {
	// DSML is the application modeling language (required when the model
	// declares a Synthesis or UI layer).
	DSML *metamodel.Metamodel
	// LTSes holds synthesis semantics by name; a SynthesisLayer's ltsName
	// selects one.
	LTSes map[string]*lts.LTS
	// Adapters holds resource adapters by name for BrokerLayer bindings.
	Adapters map[string]broker.Adapter
	// Repository backs Case-2 intent generation (optional).
	Repository *registry.Repository
	// Scripts holds installed scripts by name for EventAction.scriptName.
	Scripts map[string]*script.Script
	// Clock charges virtual time (optional).
	Clock simtime.Clock
	// Tracer and Metrics observe every layer of the platform plus the
	// event pump and monitor loop. Both may be nil (the default): the
	// disabled observer costs the hot paths only a nil check.
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
	// Injector evaluates the engine's fault points in every layer it is
	// threaded into (Controller dispatch, Broker steps and events, the
	// event pump and the monitor probe). Nil — the default — disables
	// injection; the fault points cost a nil check.
	Injector *fault.Injector
	// Resilience configures the Broker layer's step retry, timeout and
	// per-operation circuit breaking. The zero value disables all three.
	Resilience fault.Resilience
}

// Fault-point names evaluated by the platform's injector, if one is
// configured.
const (
	// SitePumpPost fires on event submission to the pump; a fired fault
	// rejects the event at intake (counted in pump.events.rejected).
	SitePumpPost = "pump.post"
	// SiteMonitorProbe fires before each monitor probe; a fired fault
	// skips the probe and counts a monitor.probe.failure.
	SiteMonitorProbe = "monitor.probe"
)

// Platform is a live middleware platform instantiated from a middleware
// model. Layers that the model suppressed are nil.
type Platform struct {
	Name   string
	Domain string

	UI         *ui.UI
	Synthesis  *synthesis.Synthesis
	Controller *controller.Controller
	Broker     *broker.Broker

	// external observes events that reach the top of the layer stack:
	// when no Synthesis layer exists it is the sole consumer, otherwise it
	// observes alongside the Synthesis layer (interoperability bridges
	// attach here).
	extMu    sync.Mutex
	external func(broker.Event)

	// routeErrs carries upper-layer event-handling failures back to the
	// delivery in flight, keyed by goroutine ID (routing is synchronous):
	// the Broker's notify callback cannot return an error, yet a failed
	// forward must fail the delivery so the event dead-letters.
	routeMu   sync.Mutex
	routeErrs map[uint64]error
	// routePending counts stashed routing errors so the per-delivery
	// pickup can skip the lock (and the goroutine-ID parse) entirely in
	// the overwhelmingly common no-failure case.
	routePending atomic.Int32

	tracer   *obs.Tracer
	metrics  *obs.Metrics
	injector *fault.Injector

	// cfg is the platform's resolved configuration (Defaults folded with
	// WithConfig and the single-field options).
	cfg Config

	// vcache is the resolved conformance-validation cache (derived from
	// cfg): it memoises validations across the platform's layers (runtime
	// build, UI checks, synthesis submit/restore) so the same model
	// content is validated once, not once per layer.
	vcache *metamodel.ValidationCache

	// model is the validated middleware model the platform was built from,
	// retained for checkpointing (models@runtime: the platform *is* this
	// model).
	model *metamodel.Model

	mPosted       *obs.Counter
	mDropped      *obs.Counter
	mRejected     *obs.Counter
	mDelivered    *obs.Counter
	mDeliverFail  *obs.Counter
	mDeadLettered *obs.Counter
	mRedelivered  *obs.Counter
	mRequeued     *obs.Counter
	mPanics       *obs.Counter
	gDepth        *obs.Gauge
	gDLQDepth     *obs.Gauge
	hDeliver      *obs.Histogram

	dlq *dlq
	sup *Supervisor

	pumpMu  sync.Mutex
	started bool
	pump    *pump
	monStop chan struct{}
	monDone chan struct{}
	monOpts []MonitorOption
}

// Option customises platform construction. Every option is a thin wrapper
// over one Config field; WithConfig sets them all at once.
type Option func(*Platform)

// WithExternalEvents routes events escaping the topmost layer to fn.
func WithExternalEvents(fn func(broker.Event)) Option {
	return func(p *Platform) { p.cfg.ExternalEvents = fn }
}

// WithPumpQueue sets each pump shard's queue capacity (default 256).
// PostEvent reports false and counts a drop when the target shard's queue
// is full.
func WithPumpQueue(n int) Option {
	return func(p *Platform) {
		if n > 0 {
			p.cfg.PumpQueue = n
		}
	}
}

// WithPumpShards sets the event pump's shard count (default GOMAXPROCS).
// Each shard owns a bounded queue and a delivery goroutine; events sharing
// a shard key are delivered strictly in post order, events on different
// shards concurrently.
func WithPumpShards(n int) Option {
	return func(p *Platform) {
		if n > 0 {
			p.cfg.PumpShards = n
		}
	}
}

// WithShardKey names the event attribute the pump shards by. Events
// carrying the attribute are routed by its value; events without it (and
// the default, attr == "") fall back to a hash of the event name.
func WithShardKey(attr string) Option {
	return func(p *Platform) { p.cfg.ShardKey = attr }
}

// WithDrainTimeout bounds Stop's graceful drain (default 5s): events
// still queued when the deadline expires are abandoned as counted drops.
func WithDrainTimeout(d time.Duration) Option {
	return func(p *Platform) {
		if d > 0 {
			p.cfg.DrainTimeout = d
		}
	}
}

// WithDLQCapacity bounds the dead-letter queue (default 256). Zero
// disables dead-lettering entirely: failed deliveries then revert to
// counted terminal losses ("pump.deliver.failures").
func WithDLQCapacity(n int) Option {
	return func(p *Platform) {
		switch {
		case n > 0:
			p.cfg.DLQCapacity = n
		case n == 0:
			p.cfg.DLQCapacity = DLQDisabled
		}
	}
}

// WithSupervisor tunes the watchdog supervisor's health thresholds and
// restart backoff; the zero config's defaults apply otherwise.
func WithSupervisor(cfg SupervisorConfig) Option {
	return func(p *Platform) { p.cfg.Supervisor = cfg }
}

// WithValidationCache sets the platform's conformance-validation cache.
// The default is the process-wide shared cache (so layers and platforms
// dedupe validations of identical content against each other); pass nil to
// disable validation memoisation for this platform.
func WithValidationCache(c *metamodel.ValidationCache) Option {
	return func(p *Platform) {
		p.cfg.ValidationCache = c
		p.cfg.DisableValidationCache = c == nil
	}
}

// WithDeltaValidation switches the Synthesis layer to incremental delta
// validation of submissions (see Config.DeltaValidation).
func WithDeltaValidation(on bool) Option {
	return func(p *Platform) { p.cfg.DeltaValidation = on }
}

// SetExternalEvents installs (or replaces) the external event observer
// after construction; bridges use this to attach to running platforms.
func (p *Platform) SetExternalEvents(fn func(broker.Event)) {
	p.extMu.Lock()
	defer p.extMu.Unlock()
	p.external = fn
}

func (p *Platform) externalSink() func(broker.Event) {
	p.extMu.Lock()
	defer p.extMu.Unlock()
	return p.external
}

// Build validates the middleware model against the middleware metamodel,
// checks cross-layer consistency, and instantiates the platform. The
// validation goes through the platform's validation cache (options are
// applied first so WithValidationCache can redirect or disable it): when
// the same middleware content was validated before — by a previous Build,
// by core.Definition.Validate, or by a builder's own check — the cached
// validated model is reused instead of re-walking conformance.
func Build(model *metamodel.Model, deps Deps, opts ...Option) (*Platform, error) {
	p := &Platform{
		tracer:    deps.Tracer,
		metrics:   deps.Metrics,
		injector:  deps.Injector,
		routeErrs: map[uint64]error{},
	}
	for _, o := range opts {
		o(p)
	}
	if err := p.cfg.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	p.cfg = p.cfg.withDefaults()
	p.external = p.cfg.ExternalEvents
	switch {
	case p.cfg.DisableValidationCache:
		p.vcache = nil
	case p.cfg.ValidationCache != nil:
		p.vcache = p.cfg.ValidationCache
	default:
		p.vcache = metamodel.SharedValidationCache()
	}
	// The cache validates a clone (Validate applies defaults; the caller's
	// model stays intact) or replays a previously validated one.
	work, err := p.vcache.Validate(mwmeta.MM(), model)
	if err != nil {
		return nil, fmt.Errorf("runtime: middleware model does not conform: %w", err)
	}
	platforms := work.ObjectsOf(mwmeta.ClassPlatform)
	if len(platforms) != 1 {
		return nil, fmt.Errorf("runtime: middleware model must declare exactly one Platform, got %d", len(platforms))
	}
	root := platforms[0]
	p.Name = root.StringAttr("name")
	p.Domain = root.StringAttr("domain")
	p.model = work
	p.mPosted = p.metrics.Counter(obs.MEventsPosted)
	p.mDropped = p.metrics.Counter(obs.MEventsDropped)
	p.mRejected = p.metrics.Counter(obs.MEventsRejected)
	p.mDelivered = p.metrics.Counter(obs.MEventsDelivered)
	p.mDeliverFail = p.metrics.Counter(obs.MDeliverFailures)
	p.mDeadLettered = p.metrics.Counter(obs.MEventsDeadLettered)
	p.mRedelivered = p.metrics.Counter(obs.MDLQRedelivered)
	p.mRequeued = p.metrics.Counter(obs.MDLQRequeued)
	p.mPanics = p.metrics.Counter(obs.MPanicsRecovered)
	p.gDepth = p.metrics.Gauge(obs.MQueueDepth)
	p.gDLQDepth = p.metrics.Gauge(obs.MDLQDepth)
	p.hDeliver = p.metrics.Histogram(obs.HPumpDeliver)
	p.dlq = newDLQ(p.cfg.dlqCapacity())
	p.sup = newSupervisor(p.cfg.Supervisor, p.metrics)
	p.sup.register("pump", p.restartPump)
	p.sup.register("monitor", p.restartMonitor)

	var (
		uiObj, synthObj, ctlObj, brkObj *metamodel.Object
	)
	for _, layer := range work.Resolve(root, "layers") {
		switch layer.Class {
		case mwmeta.ClassUILayer:
			uiObj = layer
		case mwmeta.ClassSynthesisLayer:
			synthObj = layer
		case mwmeta.ClassControllerLayer:
			ctlObj = layer
		case mwmeta.ClassBrokerLayer:
			brkObj = layer
		default:
			return nil, fmt.Errorf("runtime: unknown layer class %q", layer.Class)
		}
	}

	// Consistency: layers must form a bottom-anchored stack.
	if ctlObj != nil && brkObj == nil {
		return nil, fmt.Errorf("runtime: a ControllerLayer requires a BrokerLayer")
	}
	if synthObj != nil && ctlObj == nil {
		return nil, fmt.Errorf("runtime: a SynthesisLayer requires a ControllerLayer")
	}
	if uiObj != nil && synthObj == nil {
		return nil, fmt.Errorf("runtime: a UILayer requires a SynthesisLayer")
	}
	if brkObj == nil {
		return nil, fmt.Errorf("runtime: middleware model declares no BrokerLayer")
	}

	if err := p.buildBroker(work, brkObj, deps); err != nil {
		return nil, err
	}
	if ctlObj != nil {
		if err := p.buildController(work, ctlObj, deps); err != nil {
			return nil, err
		}
	}
	if synthObj != nil {
		if err := p.buildSynthesis(synthObj, deps); err != nil {
			return nil, err
		}
	}
	if uiObj != nil {
		if err := p.buildUI(uiObj, deps); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// routeBrokerEvent forwards Broker events to the Controller or the external
// sink. The notify callback cannot return an error, so an upper-layer
// failure is stashed for the delivery in flight on this goroutine — the
// pump (or DeliverEvent) picks it up and the event dead-letters instead of
// counting delivered.
func (p *Platform) routeBrokerEvent(ev broker.Event) {
	if p.Controller != nil {
		if err := p.Controller.OnEvent(ev); err != nil {
			p.noteRouteError(err)
		}
		return
	}
	if ext := p.externalSink(); ext != nil {
		ext(ev)
	}
}

// routeControllerEvent forwards Controller events to the Synthesis layer
// and then to the external observer (which is the sole consumer when the
// platform has no Synthesis layer).
func (p *Platform) routeControllerEvent(ev broker.Event) {
	if p.Synthesis != nil {
		if err := p.Synthesis.OnEvent(ev); err != nil {
			p.noteRouteError(err)
		}
	}
	if ext := p.externalSink(); ext != nil {
		ext(ev)
	}
}

// noteRouteError records the first upper-layer event-handling failure of
// the delivery in flight on this goroutine. Event routing is synchronous,
// so the goroutine ID keys exactly one delivery at a time.
func (p *Platform) noteRouteError(err error) {
	id := obs.GoID()
	p.routeMu.Lock()
	if _, dup := p.routeErrs[id]; !dup {
		p.routeErrs[id] = err
		p.routePending.Add(1)
	}
	p.routeMu.Unlock()
}

// takeRouteError returns and clears this goroutine's stashed routing
// failure, if any. A goroutine's own stash is always visible here: the
// note happened earlier on this same goroutine, so the pending counter is
// non-zero by program order and the slow path runs.
func (p *Platform) takeRouteError() error {
	if p.routePending.Load() == 0 {
		return nil
	}
	return p.takeRouteErrorFrom(obs.GoID())
}

// takeRouteErrorFrom is takeRouteError for callers that already resolved
// their goroutine ID.
func (p *Platform) takeRouteErrorFrom(id uint64) error {
	if p.routePending.Load() == 0 {
		return nil
	}
	p.routeMu.Lock()
	err := p.routeErrs[id]
	if err != nil {
		delete(p.routeErrs, id)
		p.routePending.Add(-1)
	}
	p.routeMu.Unlock()
	return err
}

func (p *Platform) buildBroker(model *metamodel.Model, obj *metamodel.Object, deps Deps) error {
	cfg := broker.Config{
		Name:       obj.StringAttr("name"),
		Tracer:     p.tracer,
		Metrics:    p.metrics,
		Injector:   deps.Injector,
		Resilience: deps.Resilience,
	}
	rm := broker.NewResourceManager()

	for _, bind := range model.Resolve(obj, "bindings") {
		name := bind.StringAttr("adapter")
		adapter, ok := deps.Adapters[name]
		if !ok {
			return fmt.Errorf("runtime: broker binding %s: unknown adapter %q", bind.ID, name)
		}
		rm.Register(bind.StringAttr("op"), adapter)
	}

	for _, actObj := range model.Resolve(obj, "actions") {
		a, err := buildAction(model, actObj)
		if err != nil {
			return err
		}
		cfg.Actions = append(cfg.Actions, &broker.Action{
			Name: a.name, Ops: a.ops, Guard: a.guard, Steps: a.steps,
			ForwardArgs: a.forwardArgs,
		})
	}
	for _, evObj := range model.Resolve(obj, "eventActions") {
		ea, err := buildEventAction(model, evObj, deps, false)
		if err != nil {
			return err
		}
		cfg.EventActions = append(cfg.EventActions, &broker.EventAction{
			Name: ea.name, Event: ea.event, Guard: ea.guard,
			Steps: ea.steps, Forward: ea.forward,
		})
	}
	pols, err := buildPolicies(model, obj)
	if err != nil {
		return err
	}
	cfg.Policies = pols

	for _, symObj := range model.Resolve(obj, "symptoms") {
		cond, err := expr.Parse(symObj.StringAttr("condition"))
		if err != nil {
			return fmt.Errorf("runtime: symptom %s: %w", symObj.ID, err)
		}
		cfg.Symptoms = append(cfg.Symptoms, broker.Symptom{
			Name: symObj.StringAttr("name"), Condition: cond,
		})
	}
	for _, planObj := range model.Resolve(obj, "changePlans") {
		steps, err := buildSteps(model, planObj)
		if err != nil {
			return fmt.Errorf("runtime: change plan %s: %w", planObj.ID, err)
		}
		cfg.ChangePlans = append(cfg.ChangePlans, broker.ChangePlan{
			Symptom: planObj.StringAttr("symptom"), Steps: steps,
		})
	}

	p.Broker = broker.New(cfg, rm, p.routeBrokerEvent)
	return nil
}

func (p *Platform) buildController(model *metamodel.Model, obj *metamodel.Object, deps Deps) error {
	cfg := controller.Config{
		Name:       obj.StringAttr("name"),
		Repository: deps.Repository,
		Generator: intent.Options{
			MaxDepth:     int(obj.IntAttr("maxDepth")),
			DisableCache: !obj.BoolAttr("cacheEnabled"),
		},
		Machine:  eu.Limits{MaxDepth: int(obj.IntAttr("maxDepth"))},
		Clock:    deps.Clock,
		Tracer:   p.tracer,
		Metrics:  p.metrics,
		Injector: deps.Injector,
	}
	for _, actObj := range model.Resolve(obj, "actions") {
		a, err := buildAction(model, actObj)
		if err != nil {
			return err
		}
		cfg.Actions = append(cfg.Actions, &controller.Action{
			Name: a.name, Ops: a.ops, Guard: a.guard, Steps: a.steps,
			ForwardArgs: a.forwardArgs,
		})
	}
	for _, evObj := range model.Resolve(obj, "eventActions") {
		ea, err := buildEventAction(model, evObj, deps, true)
		if err != nil {
			return err
		}
		cfg.EventActions = append(cfg.EventActions, &controller.EventAction{
			Name: ea.name, Event: ea.event, Guard: ea.guard,
			Steps: ea.steps, Script: ea.script, Forward: ea.forward,
		})
	}
	for _, clObj := range model.Resolve(obj, "classes") {
		goal := clObj.StringAttr("goalDsc")
		if deps.Repository == nil {
			return fmt.Errorf("runtime: command class %s: goal DSC %q declared but no procedure repository in DSK", clObj.ID, goal)
		}
		if deps.Repository.Taxonomy().Get(goal) == nil {
			return fmt.Errorf("runtime: command class %s: goal DSC %q not in taxonomy", clObj.ID, goal)
		}
		cfg.Classes = append(cfg.Classes, controller.CommandClass{
			Op: clObj.StringAttr("op"), GoalDSC: goal,
		})
	}
	pols, err := buildPolicies(model, obj)
	if err != nil {
		return err
	}
	cfg.Policies = pols

	p.Controller = controller.New(cfg, p.Broker, p.routeControllerEvent)
	return nil
}

func (p *Platform) buildSynthesis(obj *metamodel.Object, deps Deps) error {
	if deps.DSML == nil {
		return fmt.Errorf("runtime: synthesis layer %s: no DSML in DSK", obj.ID)
	}
	ltsName := obj.StringAttr("ltsName")
	def, ok := deps.LTSes[ltsName]
	if !ok {
		return fmt.Errorf("runtime: synthesis layer %s: unknown LTS %q", obj.ID, ltsName)
	}
	s, err := synthesis.New(
		synthesis.Config{
			Name: obj.StringAttr("name"), DSML: deps.DSML, LTS: def,
			Tracer: p.tracer, Metrics: p.metrics, Cache: p.vcache,
			Delta: p.cfg.DeltaValidation,
		},
		p.Controller.Execute,
		func(m *metamodel.Model) {
			if p.UI != nil {
				p.UI.OnRuntimeModel(m)
			}
		},
	)
	if err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	p.Synthesis = s
	return nil
}

func (p *Platform) buildUI(obj *metamodel.Object, deps Deps) error {
	u, err := ui.New(obj.StringAttr("name"), deps.DSML, p.Synthesis.Submit,
		ui.WithObs(p.tracer, p.metrics), ui.WithValidationCache(p.vcache))
	if err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	p.UI = u
	return nil
}

// actionParts is the factory's intermediate action representation.
type actionParts struct {
	name        string
	ops         []string
	guard       expr.Node
	steps       []script.Template
	forwardArgs bool
}

type eventActionParts struct {
	name    string
	event   string
	guard   expr.Node
	steps   []script.Template
	script  *script.Script
	forward bool
}

func buildAction(model *metamodel.Model, obj *metamodel.Object) (actionParts, error) {
	a := actionParts{name: obj.StringAttr("name"), forwardArgs: obj.BoolAttr("forwardArgs")}
	a.ops = splitOps(obj.StringAttr("ops"))
	if g := obj.StringAttr("guard"); g != "" {
		node, err := expr.Parse(g)
		if err != nil {
			return a, fmt.Errorf("runtime: action %s: guard: %w", obj.ID, err)
		}
		a.guard = node
	}
	steps, err := buildSteps(model, obj)
	if err != nil {
		return a, fmt.Errorf("runtime: action %s: %w", obj.ID, err)
	}
	a.steps = steps
	return a, nil
}

func buildEventAction(model *metamodel.Model, obj *metamodel.Object, deps Deps, allowScript bool) (eventActionParts, error) {
	ea := eventActionParts{
		name:    obj.StringAttr("name"),
		event:   obj.StringAttr("event"),
		forward: obj.BoolAttr("forward"),
	}
	if g := obj.StringAttr("guard"); g != "" {
		node, err := expr.Parse(g)
		if err != nil {
			return ea, fmt.Errorf("runtime: event action %s: guard: %w", obj.ID, err)
		}
		ea.guard = node
	}
	steps, err := buildSteps(model, obj)
	if err != nil {
		return ea, fmt.Errorf("runtime: event action %s: %w", obj.ID, err)
	}
	ea.steps = steps
	if name := obj.StringAttr("scriptName"); name != "" {
		if !allowScript {
			return ea, fmt.Errorf("runtime: event action %s: installed scripts are a Controller-layer feature", obj.ID)
		}
		s, ok := deps.Scripts[name]
		if !ok {
			return ea, fmt.Errorf("runtime: event action %s: unknown installed script %q", obj.ID, name)
		}
		ea.script = s
	}
	return ea, nil
}

// buildSteps resolves a steps reference into templates ordered by the
// Step.order attribute.
func buildSteps(model *metamodel.Model, owner *metamodel.Object) ([]script.Template, error) {
	stepObjs := model.Resolve(owner, "steps")
	sort.SliceStable(stepObjs, func(i, j int) bool {
		return stepObjs[i].IntAttr("order") < stepObjs[j].IntAttr("order")
	})
	var out []script.Template
	for _, st := range stepObjs {
		tpl := script.Template{
			Op:     st.StringAttr("op"),
			Target: st.StringAttr("target"),
		}
		args := model.Resolve(st, "args")
		if len(args) > 0 {
			tpl.Args = make(map[string]string, len(args))
			for _, arg := range args {
				tpl.Args[arg.StringAttr("key")] = arg.StringAttr("value")
			}
		}
		out = append(out, tpl)
	}
	return out, nil
}

func buildPolicies(model *metamodel.Model, owner *metamodel.Object) ([]policy.Policy, error) {
	var out []policy.Policy
	for _, polObj := range model.Resolve(owner, "policies") {
		cond, err := expr.Parse(polObj.StringAttr("condition"))
		if err != nil {
			return nil, fmt.Errorf("runtime: policy %s: %w", polObj.ID, err)
		}
		p := policy.Policy{
			Name:      polObj.StringAttr("name"),
			Priority:  int(polObj.IntAttr("priority")),
			Condition: cond,
		}
		for _, effObj := range model.Resolve(polObj, "effects") {
			p.Effects = append(p.Effects, policy.Effect{
				Key:   effObj.StringAttr("key"),
				Value: script.ParseScalar(effObj.StringAttr("value")),
			})
		}
		out = append(out, p)
	}
	return out, nil
}

// splitOps splits a model's comma-separated ops attribute, trimming the
// whitespace authors naturally write ("open, close") and dropping empty
// segments — an untrimmed " close" would never match a dispatched op.
func splitOps(ops string) []string {
	var out []string
	for _, seg := range strings.Split(ops, ",") {
		if s := strings.TrimSpace(seg); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// SubmitModel submits an application model through the platform's top
// layer: the UI layer when present (so the submission crosses the full
// UI→Synthesis hop), the Synthesis layer otherwise.
func (p *Platform) SubmitModel(m *metamodel.Model) (*script.Script, error) {
	if p.UI != nil {
		return p.UI.Submit(m)
	}
	if p.Synthesis == nil {
		return nil, fmt.Errorf("runtime: platform %s has no Synthesis layer", p.Name)
	}
	return p.Synthesis.Submit(m)
}

// Obs returns the platform's observability pair (nil, nil when disabled).
func (p *Platform) Obs() (*obs.Tracer, *obs.Metrics) { return p.tracer, p.metrics }

// Execute runs a control script directly on the Controller layer (the
// entry point for layer-suppressed deployments such as 2SVM smart objects).
func (p *Platform) Execute(s *script.Script) error {
	if p.Controller == nil {
		return fmt.Errorf("runtime: platform %s has no Controller layer", p.Name)
	}
	return p.Controller.Execute(s)
}

// DeliverEvent injects a resource event synchronously into the Broker
// layer (deterministic path used by tests and virtual-time experiments).
// A failure anywhere up the layer stack fails the delivery.
func (p *Platform) DeliverEvent(ev broker.Event) error {
	g := obs.GoID()
	err := p.Broker.OnEventFrom(g, ev)
	if rerr := p.takeRouteErrorFrom(g); err == nil {
		err = rerr
	}
	return err
}

// Start launches the platform's event pump: PostEvent routes resource
// events onto N shards (WithPumpShards, default GOMAXPROCS), each drained
// by its own goroutine into the Broker layer. Events sharing a shard key
// are delivered strictly in post order. Start also arms the watchdog
// supervisor. Start is idempotent.
func (p *Platform) Start() {
	p.pumpMu.Lock()
	p.started = true
	if p.pump == nil {
		p.startPumpLocked()
	}
	p.pumpMu.Unlock()
	p.sup.start()
}

// startPumpLocked creates a fresh pump generation; pumpMu must be held.
func (p *Platform) startPumpLocked() {
	n := p.cfg.PumpShards
	if n <= 0 {
		n = goruntime.GOMAXPROCS(0)
	}
	p.pump = newPump(p, n, p.cfg.PumpQueue)
}

// PostEvent enqueues a resource event for asynchronous delivery. It
// returns false — counting the refusal in the pump.events.rejected metric
// — when the pump is not running or the event's shard queue is full; it
// never blocks the caller. A rejected event was never accepted, so it does
// not participate in the pump's delivery accounting.
func (p *Platform) PostEvent(ev broker.Event) bool {
	if p.injector.ShouldDrop(SitePumpPost) {
		p.mRejected.Inc()
		return false
	}
	p.pumpMu.Lock()
	pu := p.pump
	p.pumpMu.Unlock()
	if pu == nil || !pu.post(ev) {
		p.mRejected.Inc()
		return false
	}
	return true
}

// Stop shuts any autonomic monitor down, disarms the supervisor (waiting
// out any in-flight restart), then drains the event pump: intake closes
// (further posts are counted rejections), queued events are delivered
// until the drain deadline (WithDrainTimeout), and anything abandoned past
// it is a counted drop — no accepted event leaves the pump unaccounted.
// Stop is idempotent.
func (p *Platform) Stop() {
	p.StopMonitor()
	p.pumpMu.Lock()
	p.started = false
	pu := p.pump
	p.pump = nil
	p.pumpMu.Unlock()
	// Disarm before draining the old pump: a concurrent supervisor restart
	// that already detached the pump will stop it itself and, seeing
	// started == false, will not install a successor.
	p.sup.stop()
	if pu == nil {
		return
	}
	pu.stop()
}

// Supervisor exposes the platform's watchdog (health inspection in tests
// and operator tooling).
func (p *Platform) Supervisor() *Supervisor { return p.sup }

// restartPump is the supervisor's restart hook for the event pump: it
// detaches and drains the quarantined generation, then installs a fresh
// one — unless the platform stopped in the meantime.
func (p *Platform) restartPump() error {
	p.pumpMu.Lock()
	if !p.started {
		p.pumpMu.Unlock()
		return nil
	}
	old := p.pump
	p.pump = nil
	p.pumpMu.Unlock()
	if old != nil {
		old.stop()
	}
	p.pumpMu.Lock()
	defer p.pumpMu.Unlock()
	if p.started && p.pump == nil {
		p.startPumpLocked()
	}
	return nil
}

// restartMonitor is the supervisor's restart hook for the autonomic
// monitor: it bounces the loop with the options it was started with. A
// deliberately stopped monitor (no saved options) stays stopped.
func (p *Platform) restartMonitor() error {
	p.pumpMu.Lock()
	opts := p.monOpts
	p.pumpMu.Unlock()
	if opts == nil {
		return nil
	}
	p.StopMonitor()
	p.Monitor(opts...)
	return nil
}

// monitorConfig collects the autonomic monitor's options.
type monitorConfig struct {
	interval time.Duration
	probe    func()
	tracer   *obs.Tracer
	metrics  *obs.Metrics
}

// MonitorOption customises the autonomic monitor started by Monitor.
type MonitorOption func(*monitorConfig)

// WithInterval sets the monitor's evaluation period (default 1s).
func WithInterval(d time.Duration) MonitorOption {
	return func(c *monitorConfig) {
		if d > 0 {
			c.interval = d
		}
	}
}

// WithProbe installs a function run before each symptom evaluation,
// typically publishing telemetry into the Broker context.
func WithProbe(fn func()) MonitorOption {
	return func(c *monitorConfig) { c.probe = fn }
}

// WithObs overrides the observability pair recording the monitor's tick
// spans and counters; the platform's own pair is used by default.
func WithObs(t *obs.Tracer, m *obs.Metrics) MonitorOption {
	return func(c *monitorConfig) {
		c.tracer = t
		c.metrics = m
	}
}

// Monitor launches the platform's autonomic monitor: every interval it
// runs the probe (when one is installed) and then evaluates the Broker's
// autonomic symptoms. Monitor is idempotent while a monitor runs: the
// running monitor keeps its original options, the new ones are ignored
// entirely (no counters are registered on their obs pair), and the
// returned stop function (also available as StopMonitor) terminates the
// already-running loop and waits for it to exit.
func (p *Platform) Monitor(opts ...MonitorOption) (stop func()) {
	p.pumpMu.Lock()
	if p.monStop != nil {
		p.pumpMu.Unlock()
		return p.StopMonitor
	}
	cfg := monitorConfig{
		interval: p.cfg.MonitorInterval,
		tracer:   p.tracer,
		metrics:  p.metrics,
	}
	for _, o := range opts {
		o(&cfg)
	}
	ticks := cfg.metrics.Counter(obs.MMonitorTicks)
	probeFail := cfg.metrics.Counter(obs.MProbeFailures)
	evalFail := cfg.metrics.Counter(obs.MEvalFailures)
	if opts == nil {
		opts = []MonitorOption{} // non-nil: "started with defaults" ≠ "never started"
	}
	p.monOpts = opts
	p.monStop = make(chan struct{})
	p.monDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(cfg.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				sp := cfg.tracer.Start(obs.SpanMonitorTick)
				ticks.Inc()
				healthy := true
				if cfg.probe != nil {
					if ran, panicked := p.runProbe(cfg.probe); !ran {
						probeFail.Inc()
						healthy = false
						if panicked {
							p.sup.ReportPanic("monitor")
						} else {
							p.sup.ReportFailure("monitor")
						}
					}
				}
				// Asynchronous evaluation failures have no caller; the
				// next tick retries, so the failure is only counted.
				if err := p.Broker.Autonomic().Evaluate(); err != nil {
					evalFail.Inc()
					healthy = false
					p.sup.ReportFailure("monitor")
				}
				if healthy {
					p.sup.ReportSuccess("monitor")
				}
				sp.End()
			case <-stop:
				return
			}
		}
	}(p.monStop, p.monDone)
	p.pumpMu.Unlock()
	p.sup.start()
	return p.StopMonitor
}

// runProbe executes a monitor probe in degraded mode: an injected
// monitor.probe fault skips the probe, and a panicking probe is recovered
// (and counted) so a failing sensor cannot kill the monitor loop. It
// reports whether the probe ran to completion and whether it panicked.
func (p *Platform) runProbe(probe func()) (ok, panicked bool) {
	if p.injector.Inject(SiteMonitorProbe) != nil {
		return false, false
	}
	defer func() {
		if r := recover(); r != nil {
			p.mPanics.Inc()
			ok, panicked = false, true
		}
	}()
	probe()
	return true, false
}

// StopMonitor terminates the autonomic monitor and waits for it to exit.
// It also forgets the monitor's saved options, so the supervisor will not
// resurrect a deliberately stopped monitor. It is idempotent and safe when
// no monitor is running.
func (p *Platform) StopMonitor() {
	p.pumpMu.Lock()
	stop, done := p.monStop, p.monDone
	p.monStop = nil
	p.monDone = nil
	p.monOpts = nil
	p.pumpMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
