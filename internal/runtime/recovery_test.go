package runtime

import (
	"fmt"
	goruntime "runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/controller"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// poisonRec is a recording adapter that panics on targets containing
// "poison" while armed — the poisoned-handler half of the chaos tests.
type poisonRec struct {
	rec
	armed atomic.Bool
}

func (r *poisonRec) Execute(cmd script.Command) error {
	if r.armed.Load() && strings.Contains(cmd.Target, "poison") {
		panic("poisoned adapter: " + cmd.Target)
	}
	return r.rec.Execute(cmd)
}

// waitLeaked polls until the goroutine count returns to (roughly) base.
func waitLeaked(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		goruntime.GC()
		n := goruntime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", base, n, buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// chaosDeps builds the four-layer toy platform's DSK around the given
// adapter.
func chaosDeps(t testing.TB, a broker.Adapter, m *obs.Metrics, in *fault.Injector) Deps {
	t.Helper()
	d := Deps{
		DSML:       toyDSML(t),
		LTSes:      map[string]*lts.LTS{"sem": toyLTS()},
		Adapters:   map[string]broker.Adapter{"main": a},
		Repository: toyRepo(t),
		Metrics:    m,
		Injector:   in,
	}
	if in != nil {
		d.Resilience = chaosResilience()
	}
	return d
}

// TestCrashRecoveryChaos is the tentpole end-to-end: error and panic
// faults armed across the engine's sites, a poisoned adapter panicking
// under delivery — the process never dies, every event is accounted
// exactly, and a checkpoint→destroy→restore cycle yields a diff-equal
// runtime model with the dead letters intact and redeliverable.
func TestCrashRecoveryChaos(t *testing.T) {
	for _, seed := range []int64{1, 42, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := goruntime.NumGoroutine()
			in := fault.NewInjector(seed, fault.WithSleep(func(time.Duration) {}))
			in.Arm(SitePumpPost, fault.Spec{Kind: fault.Drop, Limit: 1})
			in.Arm(broker.SiteEvent, fault.Spec{Kind: fault.Error, Limit: 2})
			in.Arm(broker.SiteStep, fault.Spec{Kind: fault.Error, Limit: 2})
			in.Arm(controller.SiteDispatch, fault.Spec{Kind: fault.Error, Limit: 1})

			m := obs.NewMetrics()
			in.BindMetrics(m)
			r := &poisonRec{}
			r.armed.Store(true)
			// Single shard: deliveries happen in post order, so the fault
			// budgets land deterministically. High supervisor thresholds:
			// quarantine/restart behaviour has its own test.
			p, err := Build(fullModel(t), chaosDeps(t, r, m, in),
				WithPumpShards(1),
				WithSupervisor(SupervisorConfig{DegradeAfter: 500, QuarantineAfter: 1000}))
			if err != nil {
				t.Fatal(err)
			}
			p.Start()

			ev := func(stream string) broker.Event {
				return broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": stream}}
			}
			// 1. Intake fault: the first post is rejected at the gate.
			if p.PostEvent(ev("gone")) {
				t.Fatal("pump.post drop fault did not reject the post")
			}
			// 2. Two posts eat the broker.event error budget → dead-lettered.
			// 3. Two poison posts panic in the adapter → dead-lettered.
			for _, s := range []string{"err1", "err2", "poison1", "poison2"} {
				if !p.PostEvent(ev(s)) {
					t.Fatalf("post %s rejected", s)
				}
			}
			waitFor(t, "4 dead letters", func() bool { return len(p.DeadLetters()) == 4 })

			// 4. Spend the dispatch error budget on a sacrificial command.
			if err := p.Execute(scriptOf("createSession", "session:sacrifice")); err == nil {
				t.Fatal("injected dispatch fault did not surface")
			}
			// 5. Model submission now succeeds: the broker.step errors are
			// transient and retried away by the resilience policy.
			d := p.UI.NewDraft()
			d.MustAdd("s1", "Session").SetRef("streams", "st1")
			d.MustAdd("st1", "Stream").SetAttr("media", "audio")
			if _, err := d.Submit(); err != nil {
				t.Fatalf("submit through injected faults: %v", err)
			}
			// 6. Healthy traffic delivers normally.
			for _, s := range []string{"ok1", "ok2"} {
				if !p.PostEvent(ev(s)) {
					t.Fatalf("post %s rejected", s)
				}
			}
			waitFor(t, "healthy deliveries", func() bool {
				tr := recText(&r.rec)
				return strings.Contains(tr, "svcRecover stream:ok1") &&
					strings.Contains(tr, "svcRecover stream:ok2")
			})
			p.Stop()

			// Exact accounting: 6 accepted (2 err + 2 poison + 2 ok), 1
			// rejected at intake; of the accepted, 2 delivered and 4 parked.
			assertPumpAccounting(t, m, 6, 1)
			if got := m.CounterValue(obs.MEventsDeadLettered); got != 4 {
				t.Errorf("dead-lettered = %d, want 4", got)
			}
			if got := m.CounterValue(obs.MEventsDelivered); got != 2 {
				t.Errorf("delivered = %d, want 2", got)
			}
			if got := m.CounterValue(obs.MPanicsRecovered); got < 2 {
				t.Errorf("panic.recovered = %d, want >= 2 (two poisoned deliveries)", got)
			}

			// Checkpoint the wreckage, destroy the platform, restore into a
			// fresh (healed) environment.
			snap, err := p.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			wantModel := p.Synthesis.CurrentModel()
			wantStats := p.Controller.Stats()

			m2 := obs.NewMetrics()
			r2 := &poisonRec{} // healed: never armed
			p2, err := Restore(snap, chaosDeps(t, r2, m2, nil))
			if err != nil {
				t.Fatal(err)
			}
			if diff := metamodel.Diff(wantModel, p2.Synthesis.CurrentModel()); len(diff) != 0 {
				t.Fatalf("restored runtime model differs: %v", diff)
			}
			if got := p2.Synthesis.Seq(); got != p.Synthesis.Seq() {
				t.Errorf("restored seq = %d, want %d", got, p.Synthesis.Seq())
			}
			gotStats := p2.Controller.Stats()
			if gotStats.Commands != wantStats.Commands || gotStats.Events != wantStats.Events {
				t.Errorf("restored stats = %+v, want commands/events of %+v", gotStats, wantStats)
			}
			if got := len(p2.DeadLetters()); got != 4 {
				t.Fatalf("restored dead letters = %d, want 4", got)
			}

			// The parked events replay cleanly against the healed adapter.
			p2.Start()
			red, req := p2.Redeliver()
			if red != 4 || req != 0 {
				t.Fatalf("Redeliver = (%d, %d), want (4, 0)", red, req)
			}
			tr2 := recText(&r2.rec)
			for _, s := range []string{"err1", "err2", "poison1", "poison2"} {
				if !strings.Contains(tr2, "svcRecover stream:"+s) {
					t.Errorf("redelivered %s not in restored trace:\n%s", s, tr2)
				}
			}
			if got := m2.CounterValue(obs.MDLQRedelivered); got != 4 {
				t.Errorf("dlq.redelivered = %d, want 4", got)
			}
			p2.Stop()
			waitLeaked(t, base)
		})
	}
}

func scriptOf(op, target string) *script.Script {
	s := script.New("test")
	s.Append(script.NewCommand(op, target))
	return s
}

// TestSupervisorRestartsQuarantinedPump: a pump whose deliveries keep
// panicking is quarantined by the watchdog and automatically restarted;
// once the poison clears, the restarted pump delivers again — all of it
// visible in the supervisor counters.
func TestSupervisorRestartsQuarantinedPump(t *testing.T) {
	m := obs.NewMetrics()
	r := &poisonRec{}
	r.armed.Store(true)
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
		Metrics:  m,
	},
		WithPumpShards(1),
		WithSupervisor(SupervisorConfig{
			DegradeAfter:    1,
			QuarantineAfter: 2,
			PanicWeight:     1,
			Backoff:         fault.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Multiplier: 2},
		}))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	// Two poisoned deliveries panic: the first degrades the pump, the
	// second quarantines it, and the watchdog bounces it onto a fresh
	// generation.
	for i := 0; i < 2; i++ {
		if !p.PostEvent(tickEvent("poison", i)) {
			t.Fatalf("post %d rejected", i)
		}
	}
	waitFor(t, "quarantine + restart", func() bool {
		return m.CounterValue(obs.MSupervisorQuarantined) >= 1 &&
			m.CounterValue(obs.MSupervisorRestarts) >= 1
	})

	// Heal the adapter; the restarted pump must deliver. Posts racing the
	// restart window are rejected (counted), so keep posting until one
	// lands.
	r.armed.Store(false)
	waitFor(t, "delivery after restart", func() bool {
		p.PostEvent(tickEvent("k", 1))
		return strings.Contains(recText(&r.rec), "h k:000001")
	})
	if got := p.Supervisor().Health("pump"); got != Healthy {
		t.Errorf("pump health after restart = %v, want healthy", got)
	}
	if got := m.CounterValue(obs.MSupervisorDegraded); got < 1 {
		t.Errorf("supervisor.degraded = %d, want >= 1", got)
	}
}

// TestDLQRedeliverRequeue: a redelivery that fails again re-enters the
// queue with its attempt count bumped; a later redelivery drains it.
func TestDLQRedeliverRequeue(t *testing.T) {
	in := fault.NewInjector(1, fault.WithSleep(func(time.Duration) {}))
	in.Arm(broker.SiteEvent, fault.Spec{Kind: fault.Error, Limit: 2})
	m := obs.NewMetrics()
	r := &rec{}
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
		Metrics:  m,
		Injector: in,
	}, WithPumpShards(1))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	for i := 0; i < 2; i++ {
		if !p.PostEvent(tickEvent("k", i)) {
			t.Fatalf("post %d rejected", i)
		}
	}
	waitFor(t, "2 dead letters", func() bool { return len(p.DeadLetters()) == 2 })
	p.Stop()

	// One more event-path fault: the first replay fails and requeues with
	// a bumped attempt count, the second replay succeeds.
	in.Arm(broker.SiteEvent, fault.Spec{Kind: fault.Error, Limit: 1})
	red, req := p.Redeliver()
	if red != 1 || req != 1 {
		t.Fatalf("Redeliver = (%d, %d), want (1, 1)", red, req)
	}
	dls := p.DeadLetters()
	if len(dls) != 1 || dls[0].Attempts != 2 {
		t.Fatalf("requeued letter = %+v, want 1 entry with Attempts=2", dls)
	}
	red, req = p.Redeliver()
	if red != 1 || req != 0 {
		t.Fatalf("second Redeliver = (%d, %d), want (1, 0)", red, req)
	}
	if got := len(p.DeadLetters()); got != 0 {
		t.Errorf("DLQ size after drain = %d, want 0", got)
	}
	if got := m.CounterValue(obs.MDLQRedelivered); got != 2 {
		t.Errorf("dlq.redelivered = %d, want 2", got)
	}
	if got := m.CounterValue(obs.MDLQRequeued); got != 1 {
		t.Errorf("dlq.requeued = %d, want 1", got)
	}
}

// TestStartStopPostStart is the regression test for the lifecycle
// satellite: a post after Stop fails fast as a counted rejection and the
// platform comes back cleanly on the next Start.
func TestStartStopPostStart(t *testing.T) {
	m := obs.NewMetrics()
	r := &rec{}
	p, err := Build(pumpEventModel(t), Deps{
		Adapters: map[string]broker.Adapter{"main": r},
		Metrics:  m,
	}, WithPumpShards(1))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if !p.PostEvent(tickEvent("k", 0)) {
		t.Fatal("post on running pump rejected")
	}
	p.Stop()
	if p.PostEvent(tickEvent("k", 1)) {
		t.Fatal("post after Stop must report false")
	}
	if got := m.CounterValue(obs.MEventsRejected); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	p.Start()
	if !p.PostEvent(tickEvent("k", 2)) {
		t.Fatal("post after restart rejected")
	}
	waitFor(t, "post-restart delivery", func() bool {
		return strings.Contains(recText(r), "h k:000002")
	})
	p.Stop()
	assertPumpAccounting(t, m, 2, 1)
}

// TestLifecycleGoroutineLeak cycles Start/Monitor/Checkpoint/Stop/Restore
// repeatedly and requires the goroutine count to return to baseline —
// pump shards, monitor loop and supervisor restart loops all accounted
// for. Run under -race in CI.
func TestLifecycleGoroutineLeak(t *testing.T) {
	base := goruntime.NumGoroutine()
	r := &rec{}
	deps := chaosDeps(t, r, obs.NewMetrics(), nil)
	p, err := Build(fullModel(t), deps)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		p.Start()
		p.Monitor(WithInterval(time.Millisecond))
		for i := 0; i < 5; i++ {
			p.PostEvent(broker.Event{Name: "streamFailed",
				Attrs: map[string]any{"stream": fmt.Sprintf("c%d-%d", cycle, i)}})
		}
		snap, err := p.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		p.Stop()
		if p, err = Restore(snap, deps); err != nil {
			t.Fatal(err)
		}
	}
	p.Stop() // idempotent: never started after the last restore
	waitLeaked(t, base)
}

// TestCheckpointRestoreRoundtrip covers the state classes the chaos test
// does not touch: broker state/context values, controller context, and
// open circuit breakers surviving the roundtrip.
func TestCheckpointRestoreRoundtrip(t *testing.T) {
	m := obs.NewMetrics()
	r := &rec{}
	deps := chaosDeps(t, r, m, nil)
	deps.Resilience = chaosResilience() // enable breakers
	p, err := Build(fullModel(t), deps)
	if err != nil {
		t.Fatal(err)
	}
	d := p.UI.NewDraft()
	d.MustAdd("s1", "Session").SetRef("streams", "st1")
	d.MustAdd("st1", "Stream").SetAttr("media", "audio")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	p.Broker.State().Set("lastStream", "st9")
	p.Broker.Context().Set("securityLevel", 2.0)
	p.Controller.Context().Set("memoryLow", true)
	p.Broker.TripBreaker("svcCreate")

	snap, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rdeps := chaosDeps(t, &rec{}, obs.NewMetrics(), nil)
	rdeps.Resilience = chaosResilience() // breakers must exist to re-trip
	p2, err := Restore(snap, rdeps)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p2.Broker.State().Get("lastStream"); v != "st9" {
		t.Errorf("restored broker state lastStream = %v, want st9", v)
	}
	if v, _ := p2.Broker.Context().Get("securityLevel"); v != 2.0 {
		t.Errorf("restored broker context securityLevel = %v, want 2", v)
	}
	if v, _ := p2.Controller.Context().Get("memoryLow"); v != true {
		t.Errorf("restored controller context memoryLow = %v, want true", v)
	}
	open := p2.Broker.OpenBreakers()
	if len(open) != 1 || open[0] != "svcCreate" {
		t.Errorf("restored open breakers = %v, want [svcCreate]", open)
	}
	if got := p2.Synthesis.State(); got != p.Synthesis.State() {
		t.Errorf("restored LTS state = %q, want %q", got, p.Synthesis.State())
	}
}

// TestRestoreRejectsBadSnapshots pins the decoder's error paths (the fuzz
// target's deterministic cousins).
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	deps := chaosDeps(t, &rec{}, obs.NewMetrics(), nil)
	for name, data := range map[string][]byte{
		"empty":       nil,
		"not-json":    []byte("nope"),
		"bad-version": []byte(`{"version": 99}`),
		"no-model":    []byte(`{"version": 1}`),
		"mismatched-synthesis": []byte(`{"version": 1,
			"middleware": {"metamodel": "mw-mm", "objects": []},
			"synthesis": {"appModel": {"metamodel": "toy-dsml"}, "seq": 1, "ltsState": "run"}}`),
	} {
		if _, err := Restore(data, deps); err == nil {
			t.Errorf("%s: Restore accepted a bad snapshot", name)
		}
	}
}
