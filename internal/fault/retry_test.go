package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/obs"
)

func TestNilRetryerRunsOnce(t *testing.T) {
	var r *Retryer
	calls := 0
	err := r.Do(func() error { calls++; return Transient(errors.New("x")) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if err == nil {
		t.Fatal("error swallowed")
	}
}

func TestNewRetryerDisabledPolicies(t *testing.T) {
	if NewRetryer(Policy{}) != nil {
		t.Fatal("zero policy yields a retryer")
	}
	if NewRetryer(Policy{MaxAttempts: 1}) != nil {
		t.Fatal("single-attempt policy yields a retryer")
	}
	if NewRetryer(Policy{MaxAttempts: 2}) == nil {
		t.Fatal("two-attempt policy yields nil")
	}
}

func TestRetryTransientUntilSuccess(t *testing.T) {
	r := NewRetryer(Policy{MaxAttempts: 5}, RetrySleep(func(time.Duration) {}))
	calls := 0
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	r := NewRetryer(Policy{MaxAttempts: 5}, RetrySleep(func(time.Duration) {}))
	calls := 0
	perm := errors.New("rejected")
	if err := r.Do(func() error { calls++; return perm }); !errors.Is(err, perm) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried: calls = %d", calls)
	}
}

func TestRetryAllRetriesPermanent(t *testing.T) {
	r := NewRetryer(Policy{MaxAttempts: 3, RetryAll: true}, RetrySleep(func(time.Duration) {}))
	calls := 0
	_ = r.Do(func() error { calls++; return errors.New("any") })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustionCountsMetrics(t *testing.T) {
	m := obs.NewMetrics()
	r := NewRetryer(Policy{MaxAttempts: 3},
		RetrySleep(func(time.Duration) {}), RetryMetrics(m))
	err := r.Do(func() error { return Transient(errors.New("always")) })
	if !IsTransient(err) {
		t.Fatalf("err = %v", err)
	}
	if got := m.Counter(obs.MRetryAttempts).Value(); got != 2 {
		t.Fatalf("retry.attempts = %d, want 2", got)
	}
	if got := m.Counter(obs.MRetryExhausted).Value(); got != 1 {
		t.Fatalf("retry.exhausted = %d, want 1", got)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	var delays []time.Duration
	r := NewRetryer(
		Policy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2},
		RetrySleep(func(d time.Duration) { delays = append(delays, d) }),
	)
	_ = r.Do(func() error { return Transient(errors.New("always")) })
	want := []time.Duration{1, 2, 4, 4, 4}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %d entries", delays, len(want))
	}
	for i, d := range delays {
		if d != want[i]*time.Millisecond {
			t.Fatalf("delay[%d] = %v, want %vms (all: %v)", i, d, want[i], delays)
		}
	}
}

func TestJitterIsDeterministicFromSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		r := NewRetryer(
			Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
			RetrySleep(func(d time.Duration) { delays = append(delays, d) }),
			RetrySeed(seed),
		)
		_ = r.Do(func() error { return Transient(errors.New("always")) })
		return delays
	}
	a, b := run(7), run(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different backoff: %v vs %v", a, b)
	}
	base := 10 * time.Millisecond
	for i, d := range a {
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if d < lo || d > hi {
			t.Fatalf("delay[%d] = %v outside [%v, %v]", i, d, lo, hi)
		}
		base *= 2
	}
}

func TestDoCtxHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRetryer(Policy{MaxAttempts: 100, BaseDelay: time.Nanosecond},
		RetrySleep(func(time.Duration) {}))
	calls := 0
	err := r.DoCtx(ctx, func() error {
		calls++
		if calls == 2 {
			cancel()
		}
		return Transient(errors.New("flaky"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls > 3 {
		t.Fatalf("kept retrying after cancel: %d calls", calls)
	}
}

func TestDoCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	r := NewRetryer(Policy{MaxAttempts: 1000, BaseDelay: 100 * time.Microsecond})
	start := time.Now()
	err := r.DoCtx(ctx, func() error { return Transient(errors.New("flaky")) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retry loop outlived deadline by %v", elapsed)
	}
}
