package fault

import (
	"errors"
	"fmt"
	"runtime"
)

// PanicError classifies a recovered panic: the supervision layer converts
// panics caught at event-delivery boundaries (pump worker, Broker/Controller
// event drains, EU runs, synthesis cycles) into this error type so a
// poisoned handler degrades into an ordinary delivery failure instead of
// killing the process.
//
// A PanicError is deliberately NOT transient: a handler that panicked on an
// input will almost certainly panic on it again, so retrying would only
// multiply the damage. Panicked deliveries go to the dead-letter queue,
// where an operator (or Platform.Redeliver after the cause is fixed) decides
// their fate.
type PanicError struct {
	// Site names the recovery boundary (e.g. "broker.step", "pump.deliver").
	Site string
	// Value is the value the handler panicked with.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Recovered classifies the value of a recover() call at the named site,
// capturing the panicking goroutine's stack.
func Recovered(site string, value any) *PanicError {
	buf := make([]byte, 8<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &PanicError{Site: site, Value: value, Stack: buf}
}

// Error implements error. The stack is kept out of the message (it is
// available on the value for diagnostics) so wrapped errors stay readable.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic at %s: %v", e.Site, e.Value)
}

// IsPanic reports whether err classifies a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}
