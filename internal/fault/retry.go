package fault

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/obs"
)

// Policy configures retry behaviour. The zero Policy (and any policy with
// MaxAttempts <= 1) disables retrying: the operation runs exactly once.
type Policy struct {
	// MaxAttempts is the total number of attempts, first try included.
	MaxAttempts int
	// BaseDelay is the wait before the first re-attempt (default 1ms when
	// retrying is enabled).
	BaseDelay time.Duration
	// MaxDelay caps the grown delay; 0 = uncapped.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter randomises each delay by ±Jitter×delay (0..1), decorrelating
	// retry storms. The jitter source is seeded, so schedules stay
	// reproducible.
	Jitter float64
	// RetryAll retries every error; by default only transient failures
	// (IsTransient) are retried.
	RetryAll bool
}

// Enabled reports whether the policy performs any retrying.
func (p Policy) Enabled() bool { return p.MaxAttempts > 1 }

// Retryer executes operations under a Policy, counting re-attempts and
// exhaustions in the obs registry. A nil *Retryer runs operations exactly
// once — the disabled path costs one nil check.
type Retryer struct {
	policy Policy
	sleep  func(time.Duration)

	rngMu sync.Mutex
	rng   *rand.Rand

	mAttempts  *obs.Counter
	mExhausted *obs.Counter
}

// RetryOption customises a Retryer.
type RetryOption func(*Retryer)

// RetrySleep replaces the inter-attempt sleep (time.Sleep by default).
func RetrySleep(fn func(time.Duration)) RetryOption {
	return func(r *Retryer) { r.sleep = fn }
}

// RetrySeed seeds the jitter source (default 1) so backoff schedules are
// reproducible.
func RetrySeed(seed int64) RetryOption {
	return func(r *Retryer) { r.rng = rand.New(rand.NewSource(seed)) }
}

// RetryMetrics counts re-attempts ("retry.attempts") and exhausted retries
// ("retry.exhausted") in the registry.
func RetryMetrics(m *obs.Metrics) RetryOption {
	return func(r *Retryer) {
		r.mAttempts = m.Counter(obs.MRetryAttempts)
		r.mExhausted = m.Counter(obs.MRetryExhausted)
	}
}

// NewRetryer builds a retryer; a disabled policy yields a nil retryer, so
// callers store and invoke the result unconditionally.
func NewRetryer(p Policy, opts ...RetryOption) *Retryer {
	if !p.Enabled() {
		return nil
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	r := &Retryer{
		policy: p,
		sleep:  time.Sleep,
		rng:    rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Do runs fn, retrying per the policy. See DoCtx.
func (r *Retryer) Do(fn func() error) error {
	return r.DoCtx(context.Background(), fn)
}

// DoCtx runs fn, re-attempting failed runs with exponential backoff until
// it succeeds, the error is not retryable, attempts are exhausted, or ctx
// is done (the context error then wraps the last failure). A nil receiver
// runs fn exactly once.
func (r *Retryer) DoCtx(ctx context.Context, fn func() error) error {
	if r == nil {
		return fn()
	}
	delay := r.policy.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		if !r.policy.RetryAll && !IsTransient(err) {
			return err
		}
		if attempt >= r.policy.MaxAttempts {
			r.mExhausted.Inc()
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.mAttempts.Inc()
		r.sleep(r.jittered(delay))
		if ctx.Err() != nil {
			return ctx.Err()
		}
		delay = time.Duration(float64(delay) * r.policy.Multiplier)
		if max := r.policy.MaxDelay; max > 0 && delay > max {
			delay = max
		}
	}
}

// jittered applies the policy's jitter to d.
func (r *Retryer) jittered(d time.Duration) time.Duration {
	j := r.policy.Jitter
	if j <= 0 || d <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	r.rngMu.Lock()
	f := 1 + j*(2*r.rng.Float64()-1) // uniform in [1-j, 1+j]
	r.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}
