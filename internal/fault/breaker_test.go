package fault

import (
	"errors"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/obs"
)

func TestNilBreakerPassesThrough(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatalf("nil breaker blocked: %v", err)
	}
	b.Report(errors.New("x"))
	if b.State() != Closed {
		t.Fatal("nil breaker not closed")
	}
}

func TestNewBreakerDisabled(t *testing.T) {
	if NewBreaker(BreakerConfig{}) != nil {
		t.Fatal("zero threshold yields a breaker")
	}
	if NewBreaker(BreakerConfig{Threshold: 1}) == nil {
		t.Fatal("threshold 1 yields nil")
	}
}

// fakeClock advances under test control so cooldown transitions are exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	m := obs.NewMetrics()
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second},
		BreakerNow(clk.now), BreakerMetrics(m))
	boom := errors.New("boom")

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed circuit blocked call %d: %v", i, err)
		}
		b.Report(boom)
		if b.State() != Closed {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(boom)
	if b.State() != Open {
		t.Fatalf("state = %v after 3 consecutive failures, want open", b.State())
	}
	if got := m.Counter(obs.MBreakerOpen).Value(); got != 1 {
		t.Fatalf("breaker.open = %d, want 1", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open circuit admitted a call: %v", err)
	}
	if got := m.Counter(obs.MBreakerShorted).Value(); got != 1 {
		t.Fatalf("breaker.shorted = %d, want 1", got)
	}
}

func TestSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2})
	boom := errors.New("boom")
	b.Report(boom)
	b.Report(nil)
	b.Report(boom)
	if b.State() != Closed {
		t.Fatal("non-consecutive failures opened the circuit")
	}
}

func TestHalfOpenProbeSuccessCloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second}, BreakerNow(clk.now))
	b.Report(errors.New("boom"))
	if b.State() != Open {
		t.Fatal("not open")
	}
	// Before the cooldown: short-circuited.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("pre-cooldown: %v", err)
	}
	clk.t = clk.t.Add(time.Second)
	// After the cooldown: one probe admitted, a second concurrent call is not.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe blocked: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second probe admitted in half-open")
	}
	b.Report(nil)
	if b.State() != Closed {
		t.Fatalf("probe success left state %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed circuit blocked: %v", err)
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second}, BreakerNow(clk.now))
	b.Report(errors.New("boom"))
	clk.t = clk.t.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe blocked: %v", err)
	}
	b.Report(errors.New("still down"))
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	// The cooldown restarts from the reopen.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("reopened circuit admitted a call immediately")
	}
	clk.t = clk.t.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe blocked: %v", err)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open", BreakerState(99): "invalid",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
