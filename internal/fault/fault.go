// Package fault is the engine's zero-dependency fault-injection and
// resilience layer. The paper distributes middleware layers across devices
// (2SVM/CSVM, §IV-C/D), so partial failure — a slow peer, a flaky resource,
// a dropped event — is the normal operating condition, not the exception.
// This package provides the two halves of handling it:
//
//   - an Injector: a seeded, deterministic source of faults at named fault
//     points ("sites") spread through the layers. Each site can be armed
//     with one fault kind (error, delay, drop, partition) and a firing
//     probability; the same seed reproduces the identical fault schedule,
//     so chaos tests and CLI repros are exact. A nil *Injector is a valid
//     production no-op whose evaluation costs a single nil check and zero
//     allocations.
//
//   - resilience primitives consuming those faults: Retryer (bounded
//     attempts, exponential backoff with deterministic jitter, context
//     aware) and Breaker (consecutive-failure circuit with a half-open
//     probe), both nil-safe, plus WithTimeout for bounding resource calls.
//
// Fault points established across the engine (armed by site name):
//
//	remote.dial     client connection establishment
//	remote.send     client request transmission
//	remote.serve    server-side message handling
//	broker.step     resource-step execution (below retry, so retries cover it)
//	broker.event    resource-event ingress into the Broker layer
//	controller.dispatch  command dispatch in the Controller layer
//	pump.post       event submission to the runtime's event pump
//	monitor.probe   the autonomic monitor's telemetry probe
//
// Every injected fault increments the obs counter "fault.injected" (when a
// metrics registry is bound) and is appended to the injector's schedule log.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/obs"
)

// Kind enumerates the fault kinds a site can be armed with.
type Kind int

// Fault kinds.
const (
	// Error makes the site return an injected (transient) error.
	Error Kind = iota + 1
	// Delay makes the site sleep before proceeding normally.
	Delay
	// Drop makes the site report ErrDropped; event-ingress paths translate
	// it into silently discarding the work item.
	Drop
	// Partition behaves like Error but latches: once fired, the site keeps
	// failing every evaluation until Heal is called. It models a network
	// partition or a crashed peer.
	Partition
)

// String returns the kind's spec mnemonic.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// kindFromString parses a spec mnemonic.
func kindFromString(s string) (Kind, error) {
	switch s {
	case "error":
		return Error, nil
	case "delay":
		return Delay, nil
	case "drop":
		return Drop, nil
	case "partition":
		return Partition, nil
	default:
		return 0, fmt.Errorf("unknown fault kind %q (want error, delay, drop or partition)", s)
	}
}

// Sentinel errors produced by the package.
var (
	// ErrInjected is the base error returned by fired Error/Partition
	// faults; injected errors are transient, so resilience paths retry
	// them.
	ErrInjected = errors.New("fault: injected")
	// ErrDropped reports a fired Drop fault.
	ErrDropped = errors.New("fault: dropped")
	// ErrTimeout reports an operation exceeding its bound; it is treated
	// as transient.
	ErrTimeout = errors.New("fault: timeout")
)

// Spec arms one site: the fault kind, its firing probability and its
// parameters.
type Spec struct {
	Kind Kind
	// P is the firing probability per evaluation in [0,1]; 0 means 1
	// (always fire), so the zero Spec of a kind fires deterministically.
	P float64
	// Delay is the injected latency for Delay faults.
	Delay time.Duration
	// Limit caps the number of firings; 0 = unlimited. A partition ignores
	// the limit once latched.
	Limit int
}

// site is the armed state of one fault point.
type site struct {
	spec   Spec
	fired  int
	parted bool // partition latched
}

// Injector evaluates named fault points deterministically from a seed. It
// is safe for concurrent use; concurrent call interleaving is the caller's
// only source of schedule nondeterminism, so deterministic tests drive the
// engine synchronously. A nil *Injector never fires and costs only a nil
// check.
type Injector struct {
	mu      sync.Mutex
	seed    int64
	rng     *rand.Rand
	sites   map[string]*site
	sleep   func(time.Duration)
	mFaults *obs.Counter
	log     []string
}

// InjectorOption customises an Injector.
type InjectorOption func(*Injector)

// WithSleep replaces the function realising Delay faults (time.Sleep by
// default); tests inject a recorder to keep chaos runs instantaneous.
func WithSleep(fn func(time.Duration)) InjectorOption {
	return func(in *Injector) { in.sleep = fn }
}

// WithMetrics counts fired faults in the registry's "fault.injected"
// counter.
func WithMetrics(m *obs.Metrics) InjectorOption {
	return func(in *Injector) { in.mFaults = m.Counter(obs.MFaultInjected) }
}

// NewInjector returns an injector whose fault schedule is a pure function
// of the seed and the sequence of site evaluations.
func NewInjector(seed int64, opts ...InjectorOption) *Injector {
	in := &Injector{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		sites: make(map[string]*site),
		sleep: time.Sleep,
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// BindMetrics attaches (or replaces) the metrics registry counting fired
// faults; CLI flows parse the injector before observability exists.
func (in *Injector) BindMetrics(m *obs.Metrics) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.mFaults = m.Counter(obs.MFaultInjected)
}

// Seed returns the injector's seed (0 for nil).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Arm installs (or replaces) the fault spec for a site.
func (in *Injector) Arm(name string, spec Spec) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites[name] = &site{spec: spec}
}

// Heal disarms a site, clearing a latched partition.
func (in *Injector) Heal(name string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.sites, name)
}

// Inject evaluates the named fault point. It returns nil when the injector
// is nil, the site is unarmed, or the roll does not fire. A fired Error or
// Partition fault returns a transient error wrapping ErrInjected; a fired
// Drop fault returns ErrDropped; a fired Delay fault sleeps and returns
// nil.
func (in *Injector) Inject(name string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st, ok := in.sites[name]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	if st.parted {
		in.mu.Unlock()
		return Transient(fmt.Errorf("%w: partition at %s", ErrInjected, name))
	}
	if st.spec.Limit > 0 && st.fired >= st.spec.Limit {
		in.mu.Unlock()
		return nil
	}
	if p := st.spec.P; p > 0 && p < 1 && in.rng.Float64() >= p {
		in.mu.Unlock()
		return nil
	}
	st.fired++
	in.log = append(in.log, fmt.Sprintf("%d %s %s", len(in.log)+1, name, st.spec.Kind))
	delay := st.spec.Delay
	kind := st.spec.Kind
	if kind == Partition {
		st.parted = true
	}
	in.mu.Unlock()
	in.mFaults.Inc()

	switch kind {
	case Delay:
		in.sleep(delay)
		return nil
	case Drop:
		return ErrDropped
	default: // Error, Partition
		return Transient(fmt.Errorf("%w: %s at %s", ErrInjected, kind, name))
	}
}

// ShouldDrop evaluates the site and reports whether a fault fired; event
// ingress paths use it to drop work instead of failing the caller. A fired
// Delay fault sleeps and reports false.
func (in *Injector) ShouldDrop(name string) bool {
	return in.Inject(name) != nil
}

// Injected returns the total number of fired faults.
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.log)
}

// Schedule returns the fired faults in order ("<n> <site> <kind>" lines) —
// the reproducibility witness: two runs with the same seed and the same
// evaluation sequence produce identical schedules.
func (in *Injector) Schedule() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.log...)
}

// Parse builds an injector from a CLI spec:
//
//	seed=N,site:kind[:p=0.5][:d=10ms][:n=3][,site:kind...]
//
// e.g. "seed=42,remote.dial:error:n=2,broker.step:delay:d=5ms:p=0.3".
// The seed entry is optional (default 1) and may appear anywhere.
func Parse(spec string, opts ...InjectorOption) (*Injector, error) {
	seed := int64(1)
	type armed struct {
		name string
		spec Spec
	}
	var arms []armed
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault spec: bad seed %q", v)
			}
			seed = n
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault spec: %q: want site:kind[:param...]", part)
		}
		kind, err := kindFromString(fields[1])
		if err != nil {
			return nil, fmt.Errorf("fault spec: %q: %w", part, err)
		}
		s := Spec{Kind: kind}
		for _, param := range fields[2:] {
			key, val, ok := strings.Cut(param, "=")
			if !ok {
				return nil, fmt.Errorf("fault spec: %q: bad parameter %q", part, param)
			}
			switch key {
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("fault spec: %q: bad probability %q", part, val)
				}
				s.P = p
			case "d":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("fault spec: %q: bad delay %q", part, val)
				}
				s.Delay = d
			case "n":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault spec: %q: bad limit %q", part, val)
				}
				s.Limit = n
			default:
				return nil, fmt.Errorf("fault spec: %q: unknown parameter %q", part, key)
			}
		}
		arms = append(arms, armed{name: fields[0], spec: s})
	}
	in := NewInjector(seed, opts...)
	for _, a := range arms {
		in.Arm(a.name, a.spec)
	}
	return in, nil
}

// ---------------------------------------------------------------------------
// Error classification and timeouts
// ---------------------------------------------------------------------------

// transientErr marks an error as retryable.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true; resilience paths retry
// only transient failures. Wrapping nil returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err is marked transient (via Transient) or is
// a timeout (ErrTimeout). Permanent errors — application rejections, policy
// denials — are never retried.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *transientErr
	return errors.As(err, &te) || errors.Is(err, ErrTimeout)
}

// WithTimeout runs fn, returning an error wrapping ErrTimeout if fn does
// not return within d (d <= 0 runs fn inline, unbounded). Go cannot kill a
// goroutine, so a genuinely stuck fn leaks its goroutine and a late result
// is discarded; the bound exists to unwedge the caller, not the callee.
func WithTimeout(d time.Duration, fn func() error) error {
	if d <= 0 {
		return fn()
	}
	done := make(chan error, 1)
	go func() { done <- fn() }()
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case err := <-done:
		return err
	case <-tm.C:
		return fmt.Errorf("%w after %v", ErrTimeout, d)
	}
}

// ---------------------------------------------------------------------------
// Resilience bundle
// ---------------------------------------------------------------------------

// Resilience bundles the engine's resource-path resilience knobs, threaded
// from runtime.Deps into the Broker layer. The zero value disables
// everything.
type Resilience struct {
	// Retry retries transient resource-step failures.
	Retry Policy
	// StepTimeout bounds one resource step; 0 = unbounded.
	StepTimeout time.Duration
	// Breaker opens a per-operation circuit after consecutive step
	// failures; a zero Threshold disables breaking.
	Breaker BreakerConfig
}

// DefaultResilience returns the defaults the CLIs arm alongside -faults:
// three attempts with 1ms..100ms backoff, a 2s step bound, and a circuit
// opening after 8 consecutive failures with a 250ms cooldown.
func DefaultResilience() Resilience {
	return Resilience{
		Retry: Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.2,
		},
		StepTimeout: 2 * time.Second,
		Breaker:     BreakerConfig{Threshold: 8, Cooldown: 250 * time.Millisecond},
	}
}
