package fault

import (
	"errors"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/obs"
)

// ErrBreakerOpen short-circuits calls while a circuit is open. It is
// permanent (not transient): retrying into an open circuit would defeat the
// breaker, so callers back off until the cooldown admits a probe.
var ErrBreakerOpen = errors.New("fault: circuit open")

// BreakerState enumerates circuit states.
type BreakerState int

// Circuit states: Closed passes calls through, Open short-circuits them,
// HalfOpen admits a single probe after the cooldown.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig configures a circuit breaker. A zero Threshold disables
// breaking (NewBreaker returns nil).
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// circuit.
	Threshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 1s).
	Cooldown time.Duration
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures in a
// row open it; after Cooldown one probe is admitted (half-open) — its
// success closes the circuit, its failure re-opens it. A nil *Breaker
// passes everything through.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool

	mOpen    *obs.Counter
	mShorted *obs.Counter
}

// BreakerOption customises a Breaker.
type BreakerOption func(*Breaker)

// BreakerNow replaces the breaker's time source (time.Now by default) so
// cooldown transitions are testable deterministically.
func BreakerNow(fn func() time.Time) BreakerOption {
	return func(b *Breaker) { b.now = fn }
}

// BreakerMetrics counts open transitions ("breaker.open") and
// short-circuited calls ("breaker.shorted") in the registry.
func BreakerMetrics(m *obs.Metrics) BreakerOption {
	return func(b *Breaker) {
		b.mOpen = m.Counter(obs.MBreakerOpen)
		b.mShorted = m.Counter(obs.MBreakerShorted)
	}
}

// NewBreaker builds a breaker; a zero Threshold yields nil (disabled), so
// callers store and consult the result unconditionally.
func NewBreaker(cfg BreakerConfig, opts ...BreakerOption) *Breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	b := &Breaker{cfg: cfg, now: time.Now}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Allow reports whether a call may proceed: nil to proceed, ErrBreakerOpen
// to short-circuit. In half-open state exactly one caller is admitted as
// the probe.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mShorted.Inc()
			return ErrBreakerOpen
		}
		b.state = HalfOpen
		b.probing = true
		return nil
	default: // HalfOpen
		if b.probing {
			b.mShorted.Inc()
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Report records the outcome of an allowed call.
func (b *Breaker) Report(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = Closed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case HalfOpen:
		b.open()
	default:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.open()
		}
	}
}

// open transitions to Open (b.mu held).
func (b *Breaker) open() {
	b.state = Open
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.mOpen.Inc()
}

// Trip forces the circuit open, as when restoring a checkpoint taken while
// the circuit was open: the restored platform must not hammer a resource
// that was failing when the snapshot was cut. The cooldown restarts from
// the trip. No-op on a nil breaker.
func (b *Breaker) Trip() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open()
}

// State returns the current circuit state (Closed for nil).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
