package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/obs"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Inject("any.site"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.ShouldDrop("any.site") {
		t.Fatal("nil injector dropped")
	}
	in.Arm("x", Spec{Kind: Error})
	in.Heal("x")
	in.BindMetrics(obs.NewMetrics())
	if got := in.Seed(); got != 0 {
		t.Fatalf("nil Seed() = %d", got)
	}
	if got := in.Injected(); got != 0 {
		t.Fatalf("nil Injected() = %d", got)
	}
	if got := in.Schedule(); got != nil {
		t.Fatalf("nil Schedule() = %v", got)
	}
}

// The production hot path — an unarmed evaluation — must cost only a nil
// check: zero allocations.
func TestNilInjectorAllocs(t *testing.T) {
	var in *Injector
	allocs := testing.AllocsPerRun(1000, func() {
		if err := in.Inject("broker.step"); err != nil {
			t.Errorf("fired: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil injector: %v allocs per evaluation, want 0", allocs)
	}
}

func TestInjectErrorKind(t *testing.T) {
	in := NewInjector(1)
	in.Arm("s", Spec{Kind: Error})
	err := in.Inject("s")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !IsTransient(err) {
		t.Fatal("injected error must be transient")
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

func TestInjectDropKind(t *testing.T) {
	in := NewInjector(1)
	in.Arm("s", Spec{Kind: Drop})
	if err := in.Inject("s"); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if !in.ShouldDrop("s") {
		t.Fatal("ShouldDrop = false for armed drop site")
	}
}

func TestInjectDelayKind(t *testing.T) {
	var slept time.Duration
	in := NewInjector(1, WithSleep(func(d time.Duration) { slept += d }))
	in.Arm("s", Spec{Kind: Delay, Delay: 7 * time.Millisecond})
	if err := in.Inject("s"); err != nil {
		t.Fatalf("delay fault returned error: %v", err)
	}
	if slept != 7*time.Millisecond {
		t.Fatalf("slept %v, want 7ms", slept)
	}
}

func TestPartitionLatchesUntilHeal(t *testing.T) {
	in := NewInjector(1)
	in.Arm("s", Spec{Kind: Partition, Limit: 1})
	if err := in.Inject("s"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first evaluation: %v", err)
	}
	// Latched: keeps failing despite the limit.
	for i := 0; i < 3; i++ {
		if err := in.Inject("s"); !errors.Is(err, ErrInjected) {
			t.Fatalf("latched evaluation %d: %v", i, err)
		}
	}
	in.Heal("s")
	if err := in.Inject("s"); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestLimitCapsFirings(t *testing.T) {
	in := NewInjector(1)
	in.Arm("s", Spec{Kind: Error, Limit: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Inject("s") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestScheduleDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		in := NewInjector(seed)
		in.Arm("a", Spec{Kind: Error, P: 0.5})
		in.Arm("b", Spec{Kind: Drop, P: 0.3})
		for i := 0; i < 200; i++ {
			_ = in.Inject("a")
			_ = in.Inject("b")
		}
		return in.Schedule()
	}
	s1, s2 := run(42), run(42)
	if len(s1) == 0 {
		t.Fatal("no faults fired at p=0.5 over 200 evaluations")
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", s1, s2)
	}
	if other := run(43); fmt.Sprint(s1) == fmt.Sprint(other) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestInjectCountsMetrics(t *testing.T) {
	m := obs.NewMetrics()
	in := NewInjector(1, WithMetrics(m))
	in.Arm("s", Spec{Kind: Error})
	_ = in.Inject("s")
	_ = in.Inject("s")
	if got := m.Counter(obs.MFaultInjected).Value(); got != 2 {
		t.Fatalf("fault.injected = %d, want 2", got)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("seed=42,remote.dial:error:n=2,broker.step:delay:d=5ms:p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 42 {
		t.Fatalf("seed = %d, want 42", in.Seed())
	}
	// remote.dial fires exactly twice.
	fired := 0
	for i := 0; i < 5; i++ {
		if in.Inject("remote.dial") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("remote.dial fired %d times, want 2", fired)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"seed=abc",
		"siteonly",
		"s:badkind",
		"s:error:p=2",
		"s:error:d=xyz",
		"s:error:n=-1",
		"s:error:q=1",
		"s:error:noequals",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	// Empty spec is valid: an injector with no armed sites.
	in, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 1 {
		t.Fatalf("default seed = %d, want 1", in.Seed())
	}
}

func TestTransientClassification(t *testing.T) {
	if IsTransient(nil) {
		t.Fatal("nil is transient")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	base := errors.New("boom")
	if IsTransient(base) {
		t.Fatal("plain error is transient")
	}
	if !IsTransient(Transient(base)) {
		t.Fatal("Transient(err) not transient")
	}
	wrapped := fmt.Errorf("op: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient not transient")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("Transient broke the error chain")
	}
	if !IsTransient(fmt.Errorf("%w after 1s", ErrTimeout)) {
		t.Fatal("timeout not transient")
	}
	if IsTransient(ErrBreakerOpen) {
		t.Fatal("breaker-open must be permanent")
	}
}

func TestWithTimeout(t *testing.T) {
	if err := WithTimeout(0, func() error { return nil }); err != nil {
		t.Fatalf("unbounded: %v", err)
	}
	if err := WithTimeout(time.Second, func() error { return nil }); err != nil {
		t.Fatalf("fast fn: %v", err)
	}
	release := make(chan struct{})
	defer close(release)
	err := WithTimeout(5*time.Millisecond, func() error { <-release; return nil })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stuck fn: err = %v, want ErrTimeout", err)
	}
	if !IsTransient(err) {
		t.Fatal("timeout must be transient")
	}
}
