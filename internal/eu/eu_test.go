package eu

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/script"
)

// fakeBroker records invocations and can inject failures.
type fakeBroker struct {
	trace  script.Trace
	failOn string
}

func (b *fakeBroker) Invoke(cmd script.Command) error {
	if b.failOn != "" && cmd.Op == b.failOn {
		return fmt.Errorf("injected failure on %s", cmd.Op)
	}
	b.trace.Record(cmd)
	return nil
}

type fakeSink struct {
	events []string
}

func (s *fakeSink) Emit(event string, args map[string]any) {
	s.events = append(s.events, fmt.Sprintf("%s %v", event, args["n"]))
}

type fakeCharger struct {
	total time.Duration
}

func (c *fakeCharger) Charge(d time.Duration) { c.total += d }

func leafFrame(label string, body ...Statement) *Frame {
	return &Frame{Label: label, Unit: NewUnit(label, body...)}
}

func TestInvokeAndSet(t *testing.T) {
	b := &fakeBroker{}
	m := NewMachine(b, nil, nil, Limits{})
	f := leafFrame("p",
		Set("rate", "32 * 2"),
		Invoke("openStream", "session:{id}", "rate", "rate", "mode", "'audio'"),
	)
	if err := m.Run(f, map[string]any{"id": "s1"}); err != nil {
		t.Fatal(err)
	}
	want := `openStream session:s1 mode="audio" rate=64`
	if got := b.trace.Lines()[0]; got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestDSCCallPushesDependency(t *testing.T) {
	b := &fakeBroker{}
	m := NewMachine(b, nil, nil, Limits{})
	child := leafFrame("child", Invoke("childOp", "t"))
	root := &Frame{
		Label: "root",
		Unit: NewUnit("root",
			Invoke("before", "t"),
			Call("dom.dep"),
			Invoke("after", "t"),
		),
		Resolve: func(dscID string) (*Frame, error) {
			if dscID != "dom.dep" {
				return nil, fmt.Errorf("unexpected dep %s", dscID)
			}
			return child, nil
		},
	}
	if err := m.Run(root, nil); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(b.trace.Lines(), ";")
	if got != "before t;childOp t;after t" {
		t.Errorf("call order: %q", got)
	}
	if m.Depth() != 0 {
		t.Error("stack must be empty after run")
	}
}

func TestSharedScopeAcrossCalls(t *testing.T) {
	b := &fakeBroker{}
	m := NewMachine(b, nil, nil, Limits{})
	child := leafFrame("child", Set("x", "x + 1"))
	root := &Frame{
		Label: "root",
		Unit: NewUnit("root",
			Set("x", "1"),
			Call("d"),
			Invoke("report", "t", "x", "x"),
		),
		Resolve: func(string) (*Frame, error) { return child, nil },
	}
	if err := m.Run(root, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.trace.Lines()[0]; got != "report t x=2" {
		t.Errorf("scope sharing: %q", got)
	}
}

func TestIfBranches(t *testing.T) {
	b := &fakeBroker{}
	m := NewMachine(b, nil, nil, Limits{})
	f := leafFrame("p",
		If("mode == 'video'",
			[]Statement{Invoke("videoPath", "t")},
			Invoke("audioPath", "t"),
		),
	)
	if err := m.Run(f, map[string]any{"mode": "video"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(f, map[string]any{"mode": "audio"}); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(b.trace.Lines(), ";")
	if got != "videoPath t;audioPath t" {
		t.Errorf("branches: %q", got)
	}
}

func TestDoneStopsUnit(t *testing.T) {
	b := &fakeBroker{}
	m := NewMachine(b, nil, nil, Limits{})
	f := leafFrame("p",
		Invoke("first", "t"),
		Done(),
		Invoke("never", "t"),
	)
	if err := m.Run(f, nil); err != nil {
		t.Fatal(err)
	}
	if b.trace.Len() != 1 {
		t.Errorf("Done must stop execution: %v", b.trace.Lines())
	}
}

func TestDoneInsideIfStopsProcedureOnly(t *testing.T) {
	b := &fakeBroker{}
	m := NewMachine(b, nil, nil, Limits{})
	child := leafFrame("child",
		If("true", []Statement{Done()}),
		Invoke("unreachable", "t"),
	)
	root := &Frame{
		Label:   "root",
		Unit:    NewUnit("root", Call("d"), Invoke("afterChild", "t")),
		Resolve: func(string) (*Frame, error) { return child, nil },
	}
	if err := m.Run(root, nil); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(b.trace.Lines(), ";")
	if got != "afterChild t" {
		t.Errorf("Done must pop only the current procedure: %q", got)
	}
}

func TestEmitAndDelay(t *testing.T) {
	sink := &fakeSink{}
	ch := &fakeCharger{}
	m := NewMachine(&fakeBroker{}, sink, ch, Limits{})
	f := &Frame{
		Label:       "p",
		Unit:        NewUnit("p", Emit("progress", "n", "1"), Delay("250")),
		EnterCharge: 100 * time.Millisecond,
	}
	if err := m.Run(f, nil); err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != 1 || sink.events[0] != "progress 1" {
		t.Errorf("events: %v", sink.events)
	}
	if ch.total != 350*time.Millisecond {
		t.Errorf("charged %v, want 350ms", ch.total)
	}
}

func TestNilSinksAreTolerated(t *testing.T) {
	m := NewMachine(&fakeBroker{}, nil, nil, Limits{})
	f := leafFrame("p", Emit("e"), Delay("10"))
	if err := m.Run(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name string
		f    *Frame
		vars map[string]any
		want string
	}{
		{"nil frame", nil, nil, "nil frame"},
		{
			"broker failure",
			leafFrame("p", Invoke("boom", "t")),
			nil, "injected failure",
		},
		{
			"unbound invoke arg",
			leafFrame("p", Invoke("op", "t", "a", "ghost")),
			nil, "unbound",
		},
		{
			"unbound target placeholder",
			leafFrame("p", Invoke("op", "x:{ghost}")),
			nil, "unbound",
		},
		{
			"no resolver",
			leafFrame("p", Call("d")),
			nil, "no dependency resolver",
		},
		{
			"resolver error",
			&Frame{Label: "p", Unit: NewUnit("p", Call("d")),
				Resolve: func(string) (*Frame, error) { return nil, errors.New("unmatched") }},
			nil, "unmatched",
		},
		{
			"bad set",
			leafFrame("p", Set("x", "ghost + 1")),
			nil, "unbound",
		},
		{
			"bad if",
			leafFrame("p", If("ghost", nil)),
			nil, "unbound",
		},
		{
			"bad delay",
			leafFrame("p", Delay("'text'")),
			nil, "want number",
		},
		{
			"bad emit arg",
			leafFrame("p", Emit("e", "n", "ghost")),
			nil, "unbound",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := &fakeBroker{failOn: "boom"}
			m := NewMachine(b, nil, nil, Limits{})
			err := m.Run(tt.f, tt.vars)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("want error containing %q, got %v", tt.want, err)
			}
		})
	}
}

func TestNoBrokerAttached(t *testing.T) {
	m := NewMachine(nil, nil, nil, Limits{})
	err := m.Run(leafFrame("p", Invoke("op", "t")), nil)
	if err == nil || !strings.Contains(err.Error(), "no broker") {
		t.Errorf("got %v", err)
	}
}

func TestStackOverflowGuard(t *testing.T) {
	var recursive *Frame
	recursive = &Frame{
		Label:   "r",
		Unit:    NewUnit("r", Call("self")),
		Resolve: func(string) (*Frame, error) { return recursive, nil },
	}
	m := NewMachine(&fakeBroker{}, nil, nil, Limits{MaxDepth: 8})
	err := m.Run(recursive, nil)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("got %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	body := make([]Statement, 0, 100)
	for i := 0; i < 100; i++ {
		body = append(body, Set("x", "1"))
	}
	m := NewMachine(&fakeBroker{}, nil, nil, Limits{MaxSteps: 10})
	err := m.Run(leafFrame("p", body...), nil)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("got %v", err)
	}
}

func TestParseKVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd kv list must panic")
		}
	}()
	Invoke("op", "t", "only-key")
}

func TestOpCodeString(t *testing.T) {
	for _, op := range []OpCode{OpInvoke, OpCall, OpSet, OpEmit, OpIf, OpDelay, OpDone} {
		if strings.Contains(op.String(), "op(") {
			t.Errorf("missing mnemonic for %d", op)
		}
	}
	if !strings.Contains(OpCode(99).String(), "99") {
		t.Error("unknown opcode")
	}
}

func TestUnknownOpcode(t *testing.T) {
	m := NewMachine(&fakeBroker{}, nil, nil, Limits{})
	err := m.Run(&Frame{Label: "p", Unit: &Unit{Name: "p", Body: []Statement{{Op: OpCode(99)}}}}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown opcode") {
		t.Errorf("got %v", err)
	}
}

func BenchmarkMachineRun(b *testing.B) {
	child := leafFrame("child", Invoke("childOp", "t"))
	root := &Frame{
		Label: "root",
		Unit: NewUnit("root",
			Set("rate", "64"),
			Invoke("open", "s:{id}", "rate", "rate"),
			Call("d"),
			Invoke("close", "s:{id}"),
		),
		Resolve: func(string) (*Frame, error) { return child, nil },
	}
	sink := &fakeBroker{}
	m := NewMachine(sink, nil, nil, Limits{})
	vars := map[string]any{"id": "s1"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Run(root, vars); err != nil {
			b.Fatal(err)
		}
	}
}
