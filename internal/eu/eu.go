// Package eu implements Execution Units (EUs) and the stack machine that
// runs them (paper §V-B). An EU is the executable body of a procedure: a
// sequence of statements over the Controller's domain-independent model of
// execution — broker invocations, DSC-based calls to dependency procedures,
// variable updates, event emission, conditionals and virtual-time delays.
//
// The machine is a procedure-level stack machine: a DSC-based call pushes
// the matched dependency procedure onto the stack and runs its EUs; a Done
// statement (or the end of the body) pops it.
package eu

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// OpCode enumerates statement kinds.
type OpCode int

// Statement opcodes.
const (
	OpInvoke OpCode = iota + 1 // call the Broker layer
	OpCall                     // DSC-based call to a dependency procedure
	OpSet                      // bind a variable in the current scope
	OpEmit                     // emit an event to the Controller's event handler
	OpIf                       // conditional block
	OpDelay                    // charge virtual execution time
	OpDone                     // complete the current procedure (pop)
)

// String returns the opcode mnemonic.
func (o OpCode) String() string {
	switch o {
	case OpInvoke:
		return "invoke"
	case OpCall:
		return "call"
	case OpSet:
		return "set"
	case OpEmit:
		return "emit"
	case OpIf:
		return "if"
	case OpDelay:
		return "delay"
	case OpDone:
		return "done"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Statement is one instruction of an execution unit.
type Statement struct {
	Op OpCode
	// Text holds the broker operation (OpInvoke), event name (OpEmit),
	// variable name (OpSet) or DSC ID (OpCall).
	Text string
	// Target is the {var}-interpolated broker target (OpInvoke).
	Target string
	// Args are named argument expressions (OpInvoke, OpEmit).
	Args map[string]expr.Node
	// Expr is the value (OpSet), condition (OpIf) or millisecond count
	// (OpDelay).
	Expr expr.Node
	// Then/Else are the conditional branches (OpIf).
	Then []Statement
	Else []Statement
}

// Invoke builds a broker-invocation statement. kv alternates argument names
// and expression sources; it panics on bad static sources (DSK is static
// domain knowledge).
func Invoke(op, target string, kv ...string) Statement {
	return Statement{Op: OpInvoke, Text: op, Target: target, Args: parseKV(kv)}
}

// Call builds a DSC-based dependency call.
func Call(dscID string) Statement { return Statement{Op: OpCall, Text: dscID} }

// Set builds a variable binding statement.
func Set(name, exprSrc string) Statement {
	return Statement{Op: OpSet, Text: name, Expr: expr.MustParse(exprSrc)}
}

// Emit builds an event-emission statement.
func Emit(event string, kv ...string) Statement {
	return Statement{Op: OpEmit, Text: event, Args: parseKV(kv)}
}

// If builds a conditional statement.
func If(condSrc string, then []Statement, elseBranch ...Statement) Statement {
	return Statement{Op: OpIf, Expr: expr.MustParse(condSrc), Then: then, Else: elseBranch}
}

// Delay builds a virtual-time charge of the given expression, in
// milliseconds.
func Delay(millisSrc string) Statement {
	return Statement{Op: OpDelay, Expr: expr.MustParse(millisSrc)}
}

// Done builds an early-completion statement.
func Done() Statement { return Statement{Op: OpDone} }

func parseKV(kv []string) map[string]expr.Node {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("odd key/value list: %v", kv))
	}
	args := make(map[string]expr.Node, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		args[kv[i]] = expr.MustParse(kv[i+1])
	}
	return args
}

// Unit is a named executable body.
type Unit struct {
	Name string
	Body []Statement
}

// NewUnit builds a unit from statements.
func NewUnit(name string, body ...Statement) *Unit {
	return &Unit{Name: name, Body: body}
}

// Broker is the surface the machine invokes for OpInvoke statements: the
// "set of exposed APIs" through which EUs reach the Broker layer.
type Broker interface {
	// Invoke executes one broker call.
	Invoke(cmd script.Command) error
}

// EventSink receives events emitted by running EUs.
type EventSink interface {
	// Emit delivers an event with named arguments.
	Emit(event string, args map[string]any)
}

// TimeCharger accounts virtual execution time charged by OpDelay.
type TimeCharger interface {
	// Charge records d of virtual execution time.
	Charge(d time.Duration)
}

// Frame is one procedure activation prepared for the machine: its unit,
// a label for diagnostics, a per-activation virtual-time charge, and the
// resolver that maps a dependency DSC ID to the next frame (the intent
// model performs this matching ahead of execution).
type Frame struct {
	// Label names the procedure for errors and traces.
	Label string
	// Unit is the executable body.
	Unit *Unit
	// EnterCharge is virtual time charged when the frame is pushed.
	EnterCharge time.Duration
	// Resolve maps a DSC-based call to the callee frame. A nil Resolve
	// makes every OpCall fail.
	Resolve func(dscID string) (*Frame, error)
}

// Limits bounds machine execution.
type Limits struct {
	// MaxDepth bounds the procedure stack (default 64).
	MaxDepth int
	// MaxSteps bounds total executed statements (default 1 << 20).
	MaxSteps int
}

func (l Limits) withDefaults() Limits {
	if l.MaxDepth <= 0 {
		l.MaxDepth = 64
	}
	if l.MaxSteps <= 0 {
		l.MaxSteps = 1 << 20
	}
	return l
}

// Machine executes frames. The zero value is unusable; construct with
// NewMachine.
type Machine struct {
	broker  Broker
	events  EventSink
	charger TimeCharger
	limits  Limits
	funcs   map[string]expr.Func

	tracer  *obs.Tracer
	mSteps  *obs.Counter
	mPanics *obs.Counter

	depth atomic.Int64 // frames currently pushed across all in-flight runs
}

// runState is the per-Run execution state. Keeping it off the Machine makes
// Run safe to call concurrently and re-entrantly: an EU that emits an event
// whose action executes another script re-enters Run on the same machine.
type runState struct {
	steps int
	stack []string // procedure labels, for diagnostics
}

// NewMachine builds a machine. events and charger may be nil when the
// domain does not use them.
func NewMachine(broker Broker, events EventSink, charger TimeCharger, limits Limits) *Machine {
	return &Machine{
		broker:  broker,
		events:  events,
		charger: charger,
		limits:  limits.withDefaults(),
		funcs:   expr.StdFuncs(),
	}
}

// SetObs attaches an observability pair to the machine. Both arguments
// may be nil (disabled); the statement loop then pays only a nil check.
func (m *Machine) SetObs(t *obs.Tracer, mx *obs.Metrics) {
	m.tracer = t
	m.mSteps = mx.Counter(obs.MEUSteps)
	m.mPanics = mx.Counter(obs.MPanicsRecovered)
}

// Run executes the root frame with the given initial variables. The scope
// is shared down the call chain (the paper's EUs communicate through the
// layer's runtime model, which the scope stands in for).
//
// A panic escaping a statement — a poisoned expression function, a broken
// resolver — is recovered and classified as a fault.PanicError; the frame
// depth stays exact because push's own defers run during the unwind.
func (m *Machine) Run(root *Frame, vars map[string]any) (err error) {
	sp := m.tracer.Start(obs.SpanEURun)
	if root != nil {
		sp.SetStr("root", root.Label)
	}
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			m.mPanics.Inc()
			err = fault.Recovered("eu.run", r)
		}
	}()
	scope := make(expr.MapScope, len(vars)+4)
	for k, v := range vars {
		scope[k] = v
	}
	return m.push(&runState{}, root, scope)
}

// Depth returns the number of frames currently pushed across all in-flight
// runs (used by tests; zero when the machine is idle).
func (m *Machine) Depth() int { return int(m.depth.Load()) }

// errDone is an internal sentinel unwinding an OpDone.
var errDone = fmt.Errorf("done")

func (m *Machine) push(rs *runState, f *Frame, scope expr.MapScope) error {
	if f == nil || f.Unit == nil {
		return fmt.Errorf("nil frame or unit")
	}
	if len(rs.stack) >= m.limits.MaxDepth {
		return fmt.Errorf("procedure stack overflow at %q (depth %d)", f.Label, len(rs.stack))
	}
	rs.stack = append(rs.stack, f.Label)
	m.depth.Add(1)
	defer func() {
		rs.stack = rs.stack[:len(rs.stack)-1]
		m.depth.Add(-1)
	}()
	if f.EnterCharge > 0 && m.charger != nil {
		m.charger.Charge(f.EnterCharge)
	}
	err := m.exec(rs, f, f.Unit.Body, scope)
	if err == errDone {
		return nil
	}
	return err
}

func (m *Machine) exec(rs *runState, f *Frame, body []Statement, scope expr.MapScope) error {
	env := expr.Env{Scope: scope, Funcs: m.funcs}
	for i := range body {
		st := &body[i]
		rs.steps++
		m.mSteps.Inc()
		if rs.steps > m.limits.MaxSteps {
			return fmt.Errorf("step budget exceeded in %q", f.Label)
		}
		switch st.Op {
		case OpInvoke:
			cmd, err := m.buildCommand(st, scope, env)
			if err != nil {
				return fmt.Errorf("%s: invoke %s: %w", f.Label, st.Text, err)
			}
			if m.broker == nil {
				return fmt.Errorf("%s: invoke %s: no broker attached", f.Label, st.Text)
			}
			if err := m.broker.Invoke(cmd); err != nil {
				return fmt.Errorf("%s: invoke %s: %w", f.Label, st.Text, err)
			}
		case OpCall:
			if f.Resolve == nil {
				return fmt.Errorf("%s: call %s: no dependency resolver", f.Label, st.Text)
			}
			callee, err := f.Resolve(st.Text)
			if err != nil {
				return fmt.Errorf("%s: call %s: %w", f.Label, st.Text, err)
			}
			if err := m.push(rs, callee, scope); err != nil {
				return err
			}
		case OpSet:
			v, err := expr.Eval(st.Expr, env)
			if err != nil {
				return fmt.Errorf("%s: set %s: %w", f.Label, st.Text, err)
			}
			scope[st.Text] = v
		case OpEmit:
			args, err := m.evalArgs(st.Args, env)
			if err != nil {
				return fmt.Errorf("%s: emit %s: %w", f.Label, st.Text, err)
			}
			if m.events != nil {
				m.events.Emit(st.Text, args)
			}
		case OpIf:
			cond, err := expr.EvalBool(st.Expr, env)
			if err != nil {
				return fmt.Errorf("%s: if: %w", f.Label, err)
			}
			branch := st.Else
			if cond {
				branch = st.Then
			}
			if err := m.exec(rs, f, branch, scope); err != nil {
				return err
			}
		case OpDelay:
			ms, err := expr.EvalNumber(st.Expr, env)
			if err != nil {
				return fmt.Errorf("%s: delay: %w", f.Label, err)
			}
			if m.charger != nil && ms > 0 {
				m.charger.Charge(time.Duration(ms * float64(time.Millisecond)))
			}
		case OpDone:
			return errDone
		default:
			return fmt.Errorf("%s: unknown opcode %v", f.Label, st.Op)
		}
	}
	return nil
}

func (m *Machine) buildCommand(st *Statement, scope expr.MapScope, env expr.Env) (script.Command, error) {
	target, err := expr.InterpolateString(st.Target, scope)
	if err != nil {
		return script.Command{}, err
	}
	cmd := script.NewCommand(st.Text, target)
	args, err := m.evalArgs(st.Args, env)
	if err != nil {
		return script.Command{}, err
	}
	for k, v := range args {
		cmd = cmd.WithArg(k, v)
	}
	return cmd, nil
}

func (m *Machine) evalArgs(args map[string]expr.Node, env expr.Env) (map[string]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make(map[string]any, len(args))
	for k, n := range args {
		v, err := expr.Eval(n, env)
		if err != nil {
			return nil, fmt.Errorf("arg %s: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}
