package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedClusterBenchSchema guards the committed BENCH_cluster.json
// against schema drift: it must strict-decode into ClusterReport with no
// unknown fields and carry the 2/3/5-node ladder with exact cluster-wide
// accounting at every scale.
func TestCommittedClusterBenchSchema(t *testing.T) {
	root, err := FindRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "BENCH_cluster.json"))
	if err != nil {
		t.Fatalf("committed benchmark record missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep ClusterReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_cluster.json does not match the ClusterReport schema: %v", err)
	}
	want := []int{2, 3, 5}
	if len(rep.Scales) != len(want) {
		t.Fatalf("committed record has %d scales, want %d", len(rep.Scales), len(want))
	}
	for i, sc := range rep.Scales {
		if sc.Nodes != want[i] {
			t.Errorf("scale %d: nodes = %d, want %d", i, sc.Nodes, want[i])
		}
		if !sc.AccountingExact {
			t.Errorf("%d-node scale reports inexact cluster-wide accounting", sc.Nodes)
		}
		if sc.Events == 0 || sc.Forwarded == 0 {
			t.Errorf("%d-node scale carries no load: events=%d forwarded=%d", sc.Nodes, sc.Events, sc.Forwarded)
		}
		if sc.Adoptions == 0 {
			t.Errorf("%d-node scale saw no failover adoptions", sc.Nodes)
		}
		if sc.MigrationNs <= 0 || sc.FailoverNs <= 0 {
			t.Errorf("%d-node scale missing timings: migration=%d failover=%d", sc.Nodes, sc.MigrationNs, sc.FailoverNs)
		}
	}
	if rep.Tenants == 0 || rep.EventsPerTenant == 0 {
		t.Error("committed record has no workload parameters")
	}
}
