//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// allocation assertions are skipped under it (instrumentation allocates).
const raceEnabled = false
