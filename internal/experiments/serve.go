package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/serve"
)

// The platform-server capacity benchmark: how many resident tenant
// platforms one mddsm-serve process sustains while event admission stays
// inside a p99 latency SLO. mddsm-bench prints the table and, with -json,
// writes the machine-readable record (BENCH_serve.json) that CI and
// EXPERIMENTS.md track across revisions.

// ServeSLO is the admission-latency service-level objective: the p99
// PostEvent latency every scale step is judged against.
const ServeSLO = 2 * time.Millisecond

// serveScales are the resident-tenant counts the benchmark steps through.
var serveScales = []int{1, 8, 25, 50}

// serveEventsPerTenant is the event load posted per resident tenant.
const serveEventsPerTenant = 200

// ServeScaleResult is one scale step: N resident platforms under event
// load.
type ServeScaleResult struct {
	Tenants      int     `json:"tenants"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	P50Ns        int64   `json:"post_p50_ns"`
	P99Ns        int64   `json:"post_p99_ns"`
	SLOMet       bool    `json:"slo_met"`
}

// ServeReport is the full machine-readable record.
type ServeReport struct {
	SLONs              int64              `json:"slo_ns"`
	EventsPerTenant    int                `json:"events_per_tenant"`
	Scales             []ServeScaleResult `json:"scales"`
	SharedCacheHits    int64              `json:"shared_cache_hits"`
	RehydrateRoundtrip int64              `json:"rehydrate_roundtrip_ns"`
}

// percentile returns the p-quantile of sorted latencies.
func percentile(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx].Nanoseconds()
}

// MeasureServe runs the capacity ladder: at each scale it provisions that
// many tenants (alternating cml and mgrid bundles, all sharing one
// validation cache), posts serveEventsPerTenant events per tenant through
// the admission path, and records the post-latency distribution and the
// sustained throughput including the final drain. The largest scale also
// measures one evict/rehydrate roundtrip and reports the cross-tenant
// validation-cache hits.
func MeasureServe() (*ServeReport, error) {
	rep := &ServeReport{SLONs: ServeSLO.Nanoseconds(), EventsPerTenant: serveEventsPerTenant}
	for _, n := range serveScales {
		s := serve.NewServer(serve.Config{MaxResident: n})
		names := make([]string, n)
		for i := range names {
			bundle := "cml"
			if i%2 == 1 {
				bundle = "mgrid"
			}
			names[i] = fmt.Sprintf("t%03d", i)
			if err := s.Create(names[i], bundle); err != nil {
				s.Close()
				return nil, err
			}
		}
		total := n * serveEventsPerTenant
		lat := make([]time.Duration, 0, total)
		ev := broker.Event{Name: "telemetry", Attrs: map[string]any{"load": 1.0}}
		start := time.Now()
		for i := 0; i < total; i++ {
			t0 := time.Now()
			if err := s.PostEvent(names[i%n], ev); err != nil {
				s.Close()
				return nil, fmt.Errorf("serve bench: %d tenants: %w", n, err)
			}
			lat = append(lat, time.Since(t0))
		}
		s.Close() // graceful drain: throughput covers posting + draining
		wall := time.Since(start)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := percentile(lat, 0.99)
		rep.Scales = append(rep.Scales, ServeScaleResult{
			Tenants:      n,
			Events:       total,
			EventsPerSec: float64(total) / wall.Seconds(),
			P50Ns:        percentile(lat, 0.50),
			P99Ns:        p99,
			SLOMet:       p99 <= rep.SLONs,
		})
	}

	// Shared-cache economics and eviction latency at the largest scale.
	s := serve.NewServer(serve.Config{MaxResident: serveScales[len(serveScales)-1]})
	defer s.Close()
	for i := 0; i < serveScales[len(serveScales)-1]; i++ {
		if err := s.Create(fmt.Sprintf("t%03d", i), "cml"); err != nil {
			return nil, err
		}
	}
	rep.SharedCacheHits = s.Obs().MetricsOf().CounterValue(obs.MValidateCacheHits)
	t0 := time.Now()
	if err := s.Evict("t000"); err != nil {
		return nil, err
	}
	if err := s.PostEvent("t000", broker.Event{Name: "streamFailed", Attrs: map[string]any{}}); err != nil {
		return nil, err
	}
	rep.RehydrateRoundtrip = time.Since(t0).Nanoseconds()
	return rep, nil
}

// ReportServe prints the capacity table and, when jsonPath is non-empty,
// writes the machine-readable record there.
func ReportServe(w io.Writer, jsonPath string) error {
	rep, err := MeasureServe()
	if err != nil {
		return err
	}
	t := &Table{
		Title:   fmt.Sprintf("Serve — multi-tenant capacity (p99 admission SLO %v)", ServeSLO),
		Columns: []string{"tenants", "events", "events/sec", "post p50", "post p99", "SLO"},
	}
	for _, sc := range rep.Scales {
		slo := "met"
		if !sc.SLOMet {
			slo = "MISSED"
		}
		t.AddRow(fmt.Sprintf("%d", sc.Tenants), fmt.Sprintf("%d", sc.Events),
			fmt.Sprintf("%.0f", sc.EventsPerSec),
			fmt.Sprintf("%s", time.Duration(sc.P50Ns)),
			fmt.Sprintf("%s", time.Duration(sc.P99Ns)),
			slo)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("shared validation cache: %d cross-tenant hits provisioning %d cml tenants",
			rep.SharedCacheHits, serveScales[len(serveScales)-1]),
		fmt.Sprintf("evict → touch → rehydrate roundtrip: %s", time.Duration(rep.RehydrateRoundtrip)),
		"throughput includes the graceful drain; admission latency is the client-visible PostEvent path")
	t.Print(w)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
