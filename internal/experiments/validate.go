package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/domains/mgrid"
	"github.com/mddsm/mddsm/internal/metamodel"
)

// The validation benchmark-regression report: compiled versus interpreted
// conformance checking on the bundled example models, plus the validation
// cache's hit/miss economics. mddsm-bench prints the table and, with -json,
// writes the machine-readable record (BENCH_validate.json) that CI and
// EXPERIMENTS.md track across revisions.

// ValidateModelResult is one model's timing row.
type ValidateModelResult struct {
	Model           string  `json:"model"`
	Objects         int     `json:"objects"`
	InterpretedNsOp float64 `json:"interpreted_ns_per_op"`
	CompiledNsOp    float64 `json:"compiled_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	CompileNs       int64   `json:"compile_ns"`
}

// ValidateCacheResult reports the cache round-trip costs on the session
// model: a miss pays one full validation plus the canonical hashing and a
// defensive clone; a hit pays only hashing and the clone.
type ValidateCacheResult struct {
	MissNsOp float64 `json:"miss_ns_per_op"`
	HitNsOp  float64 `json:"hit_ns_per_op"`
}

// ValidateReport is the full machine-readable record.
type ValidateReport struct {
	Models []ValidateModelResult `json:"models"`
	Cache  ValidateCacheResult   `json:"cache"`
}

// timePerOp measures fn's steady-state cost: it scales the iteration count
// until one run lasts at least ~10ms, then takes the best of five such
// runs (the minimum filters scheduler noise the way benchstat's min does).
func timePerOp(fn func() error) (float64, error) {
	measure := func(n int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	n := 64
	var d time.Duration
	for {
		var err error
		if d, err = measure(n); err != nil {
			return 0, err
		}
		if d >= 10*time.Millisecond || n >= 1<<20 {
			break
		}
		n *= 4
	}
	best := d
	for round := 0; round < 4; round++ {
		d, err := measure(n)
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(n), nil
}

// loadExample reads one bundled example model from root/testdata.
func loadExample(root, name string) (*metamodel.Model, error) {
	data, err := os.ReadFile(filepath.Join(root, "testdata", name))
	if err != nil {
		return nil, err
	}
	return metamodel.UnmarshalModel(data)
}

// MeasureValidate runs the compiled-vs-interpreted comparison on the
// bundled example models plus the cache measurement. root is the repository
// root (for testdata); FindRepoRoot locates it.
func MeasureValidate(root string) (*ValidateReport, error) {
	fixtures := []struct {
		name string
		file string
		mm   *metamodel.Metamodel
	}{
		{"cml-session", "session.json", cml.Metamodel()},
		{"mgrid-home", "home.json", mgrid.Metamodel()},
	}
	rep := &ValidateReport{}
	for _, f := range fixtures {
		m, err := loadExample(root, f.file)
		if err != nil {
			return nil, err
		}
		// Pre-validate so the timed loops measure steady-state
		// re-validation, not first-touch default materialisation.
		if err := m.ValidateInterpreted(f.mm); err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		compileStart := time.Now()
		cm, err := metamodel.Compile(f.mm)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		compileNs := time.Since(compileStart).Nanoseconds()
		interp, err := timePerOp(func() error { return m.ValidateInterpreted(f.mm) })
		if err != nil {
			return nil, err
		}
		compiled, err := timePerOp(func() error { return cm.Validate(m) })
		if err != nil {
			return nil, err
		}
		rep.Models = append(rep.Models, ValidateModelResult{
			Model:           f.name,
			Objects:         len(m.IDs()),
			InterpretedNsOp: interp,
			CompiledNsOp:    compiled,
			Speedup:         interp / compiled,
			CompileNs:       compileNs,
		})
	}

	// Cache economics on the session model: a hit replays the memoised
	// validation (hash + clone), a miss performs it (hash + walk + clones).
	m, err := loadExample(root, "session.json")
	if err != nil {
		return nil, err
	}
	mm := cml.Metamodel()
	hitCache := metamodel.NewValidationCache(16)
	if _, err := hitCache.Validate(mm, m); err != nil {
		return nil, err
	}
	hit, err := timePerOp(func() error { _, err := hitCache.Validate(mm, m); return err })
	if err != nil {
		return nil, err
	}
	miss, err := timePerOp(func() error {
		_, err := metamodel.NewValidationCache(16).Validate(mm, m)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Cache = ValidateCacheResult{MissNsOp: miss, HitNsOp: hit}
	return rep, nil
}

// ReportValidate prints the validation benchmark table and, when jsonPath
// is non-empty, writes the machine-readable record there.
func ReportValidate(w io.Writer, root, jsonPath string) error {
	rep, err := MeasureValidate(root)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Validate — compiled vs interpreted conformance (bundled models)",
		Columns: []string{"model", "objects", "interpreted", "compiled", "speedup", "compile (once)"},
	}
	for _, m := range rep.Models {
		t.AddRow(m.Model, fmt.Sprintf("%d", m.Objects),
			fmt.Sprintf("%.0f ns/op", m.InterpretedNsOp),
			fmt.Sprintf("%.0f ns/op", m.CompiledNsOp),
			fmt.Sprintf("%.2fx", m.Speedup),
			fmt.Sprintf("%d ns", m.CompileNs))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("validation cache: hit %.0f ns/op, miss %.0f ns/op (session model)",
			rep.Cache.HitNsOp, rep.Cache.MissNsOp),
		"compiled and interpreted validators are differentially tested for observational equivalence")
	t.Print(w)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
