package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/mddsm/mddsm/internal/api"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/serve"
)

// The models-over-HTTP benchmark: REST object writes against the
// auto-provisioned API, each funnelled through the full models@runtime
// loop (validate → diff → interpret → commit) plus the HTTP stack, and
// event posts through the same front end. mddsm-bench prints the table
// and, with -json, writes BENCH_http.json for CI and EXPERIMENTS.md.

// HTTPWriteSLO is the p99 REST-write latency objective per scale step; a
// write is a full round trip including validation and commit.
const HTTPWriteSLO = 25 * time.Millisecond

// httpScales are the resident-tenant counts the benchmark steps through.
var httpScales = []int{1, 8, 25}

const (
	httpWritesPerTenant = 40
	httpEventsPerTenant = 100
)

// HTTPScaleResult is one scale step: N tenants driven over HTTP.
type HTTPScaleResult struct {
	Tenants      int     `json:"tenants"`
	Writes       int     `json:"writes"`
	Events       int     `json:"events"`
	WritesPerSec float64 `json:"writes_per_sec"`
	WriteP50Ns   int64   `json:"write_p50_ns"`
	WriteP99Ns   int64   `json:"write_p99_ns"`
	EventP50Ns   int64   `json:"event_p50_ns"`
	EventP99Ns   int64   `json:"event_p99_ns"`
	SLOMet       bool    `json:"slo_met"`
}

// HTTPReport is the full machine-readable record.
type HTTPReport struct {
	SLONs           int64             `json:"slo_ns"`
	WritesPerTenant int               `json:"writes_per_tenant"`
	EventsPerTenant int               `json:"events_per_tenant"`
	Scales          []HTTPScaleResult `json:"scales"`
	WatchDeltaNs    int64             `json:"watch_delta_ns"`
}

// startHTTP mounts a fresh API server over s on a loopback listener.
func startHTTP(s *serve.Server) (base string, shutdown func(), err error) {
	a, err := api.New(api.Config{Serve: s})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		a.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: a}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { a.Close(); hs.Close() }, nil
}

// doJSON performs one JSON request and returns the status code.
func doJSON(client *http.Client, method, url string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}

// MeasureHTTP runs the ladder: at each scale it provisions that many cml
// tenants over HTTP, then per tenant issues one PUT (object create) and a
// train of PATCHes — every one a validated model commit — and posts
// events through the same mux, recording both latency distributions. It
// finishes by measuring the PATCH→SSE propagation delay on a watched
// tenant.
func MeasureHTTP() (*HTTPReport, error) {
	rep := &HTTPReport{
		SLONs:           HTTPWriteSLO.Nanoseconds(),
		WritesPerTenant: httpWritesPerTenant,
		EventsPerTenant: httpEventsPerTenant,
	}
	client := &http.Client{}
	for _, n := range httpScales {
		s := serve.NewServer(serve.Config{MaxResident: n})
		base, shutdown, err := startHTTP(s)
		if err != nil {
			s.Close()
			return nil, err
		}
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("t%03d", i)
			code, body, err := doJSON(client, "POST", base+"/tenants/"+names[i],
				map[string]any{"bundle": "cml"})
			if err != nil || code != http.StatusCreated {
				shutdown()
				s.Close()
				return nil, fmt.Errorf("http bench: create %s: %d %s %v", names[i], code, body, err)
			}
		}
		writeLat := make([]time.Duration, 0, n*httpWritesPerTenant)
		start := time.Now()
		for w := 0; w < httpWritesPerTenant; w++ {
			for _, name := range names {
				url := base + "/tenants/" + name + "/models/cml/objects/p0"
				var code int
				var body []byte
				var err error
				t0 := time.Now()
				if w == 0 {
					code, body, err = doJSON(client, "PUT", url,
						map[string]any{"class": "Person", "attrs": map[string]any{"name": "alice"}})
				} else {
					code, body, err = doJSON(client, "PATCH", url,
						map[string]any{"attrs": map[string]any{"role": fmt.Sprintf("speaker-%d", w)}})
				}
				writeLat = append(writeLat, time.Since(t0))
				if err != nil || code >= 300 {
					shutdown()
					s.Close()
					return nil, fmt.Errorf("http bench: write %d on %s: %d %s %v", w, name, code, body, err)
				}
			}
		}
		wall := time.Since(start)
		eventLat := make([]time.Duration, 0, n*httpEventsPerTenant)
		for e := 0; e < httpEventsPerTenant; e++ {
			for _, name := range names {
				t0 := time.Now()
				code, body, err := doJSON(client, "POST", base+"/tenants/"+name+"/events",
					map[string]any{"name": "telemetry", "attrs": map[string]any{"load": 1.0}})
				eventLat = append(eventLat, time.Since(t0))
				if err != nil || code != http.StatusAccepted {
					shutdown()
					s.Close()
					return nil, fmt.Errorf("http bench: event %d on %s: %d %s %v", e, name, code, body, err)
				}
			}
		}
		shutdown()
		s.Close()
		sort.Slice(writeLat, func(i, j int) bool { return writeLat[i] < writeLat[j] })
		sort.Slice(eventLat, func(i, j int) bool { return eventLat[i] < eventLat[j] })
		p99 := percentile(writeLat, 0.99)
		rep.Scales = append(rep.Scales, HTTPScaleResult{
			Tenants:      n,
			Writes:       len(writeLat),
			Events:       len(eventLat),
			WritesPerSec: float64(len(writeLat)) / wall.Seconds(),
			WriteP50Ns:   percentile(writeLat, 0.50),
			WriteP99Ns:   p99,
			EventP50Ns:   percentile(eventLat, 0.50),
			EventP99Ns:   percentile(eventLat, 0.99),
			SLOMet:       p99 <= rep.SLONs,
		})
	}

	delta, err := measureWatchDelta(client)
	if err != nil {
		return nil, err
	}
	rep.WatchDeltaNs = delta.Nanoseconds()
	return rep, nil
}

// measureWatchDelta times one write-to-watch propagation: PATCH an object
// and wait for the SSE delta frame carrying the change.
func measureWatchDelta(client *http.Client) (time.Duration, error) {
	s := serve.NewServer(serve.Config{MaxResident: 4})
	defer s.Close()
	base, shutdown, err := startHTTP(s)
	if err != nil {
		return 0, err
	}
	defer shutdown()
	if code, body, err := doJSON(client, "POST", base+"/tenants/w0", map[string]any{"bundle": "cml"}); err != nil || code != http.StatusCreated {
		return 0, fmt.Errorf("http bench: watch tenant: %d %s %v", code, body, err)
	}
	if code, body, err := doJSON(client, "PUT", base+"/tenants/w0/models/cml/objects/p0",
		map[string]any{"class": "Person", "attrs": map[string]any{"name": "alice"}}); err != nil || code != http.StatusCreated {
		return 0, fmt.Errorf("http bench: watch seed: %d %s %v", code, body, err)
	}

	resp, err := client.Get(base + "/tenants/w0/watch")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	// Consume the snapshot frame (terminated by a blank line).
	for sc.Scan() && sc.Text() != "" {
	}

	t0 := time.Now()
	if code, body, err := doJSON(client, "PATCH", base+"/tenants/w0/models/cml/objects/p0",
		map[string]any{"attrs": map[string]any{"role": "chair"}}); err != nil || code != http.StatusOK {
		return 0, fmt.Errorf("http bench: watch patch: %d %s %v", code, body, err)
	}
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") && strings.Contains(sc.Text(), "set-attr") {
			return time.Since(t0), nil
		}
	}
	return 0, fmt.Errorf("http bench: delta frame never arrived: %v", sc.Err())
}

// ReportHTTP prints the HTTP table and, when jsonPath is non-empty,
// writes the machine-readable record there.
func ReportHTTP(w io.Writer, jsonPath string) error {
	rep, err := MeasureHTTP()
	if err != nil {
		return err
	}
	t := &Table{
		Title:   fmt.Sprintf("HTTP — models-over-REST writes (p99 write SLO %v)", HTTPWriteSLO),
		Columns: []string{"tenants", "writes", "writes/sec", "write p50", "write p99", "event p99", "SLO"},
	}
	for _, sc := range rep.Scales {
		slo := "met"
		if !sc.SLOMet {
			slo = "MISSED"
		}
		t.AddRow(fmt.Sprintf("%d", sc.Tenants), fmt.Sprintf("%d", sc.Writes),
			fmt.Sprintf("%.0f", sc.WritesPerSec),
			time.Duration(sc.WriteP50Ns).String(),
			time.Duration(sc.WriteP99Ns).String(),
			time.Duration(sc.EventP99Ns).String(),
			slo)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("PATCH → SSE /watch delta propagation: %s", time.Duration(rep.WatchDeltaNs)),
		"every write is a full validate → diff → interpret → commit cycle plus the HTTP round trip")
	t.Print(w)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
