package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedHTTPBenchSchema guards the committed BENCH_http.json
// against schema drift: it must strict-decode into HTTPReport with no
// unknown fields and carry the full tenant ladder with non-trivial load
// and latency numbers at every scale.
func TestCommittedHTTPBenchSchema(t *testing.T) {
	root, err := FindRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "BENCH_http.json"))
	if err != nil {
		t.Fatalf("committed benchmark record missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep HTTPReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_http.json does not match the HTTPReport schema: %v", err)
	}
	if len(rep.Scales) != len(httpScales) {
		t.Fatalf("committed record has %d scales, want %d", len(rep.Scales), len(httpScales))
	}
	for i, sc := range rep.Scales {
		if sc.Tenants != httpScales[i] {
			t.Errorf("scale %d: tenants = %d, want %d", i, sc.Tenants, httpScales[i])
		}
		if sc.Writes != sc.Tenants*rep.WritesPerTenant {
			t.Errorf("%d-tenant scale: writes = %d, want %d", sc.Tenants, sc.Writes, sc.Tenants*rep.WritesPerTenant)
		}
		if sc.Events != sc.Tenants*rep.EventsPerTenant {
			t.Errorf("%d-tenant scale: events = %d, want %d", sc.Tenants, sc.Events, sc.Tenants*rep.EventsPerTenant)
		}
		if sc.WriteP50Ns <= 0 || sc.WriteP99Ns < sc.WriteP50Ns {
			t.Errorf("%d-tenant scale: implausible write latencies p50=%d p99=%d", sc.Tenants, sc.WriteP50Ns, sc.WriteP99Ns)
		}
		if sc.EventP50Ns <= 0 || sc.EventP99Ns < sc.EventP50Ns {
			t.Errorf("%d-tenant scale: implausible event latencies p50=%d p99=%d", sc.Tenants, sc.EventP50Ns, sc.EventP99Ns)
		}
		if sc.WritesPerSec <= 0 {
			t.Errorf("%d-tenant scale: no write throughput", sc.Tenants)
		}
	}
	if rep.SLONs != HTTPWriteSLO.Nanoseconds() {
		t.Errorf("SLO = %d, want %d", rep.SLONs, HTTPWriteSLO.Nanoseconds())
	}
	if rep.WatchDeltaNs <= 0 {
		t.Error("committed record missing the PATCH → SSE propagation timing")
	}
}

// TestHTTPSmoke exercises one miniature ladder step end to end so CI
// catches regressions in the measurement harness itself, not just the
// committed record.
func TestHTTPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("http bench smoke skipped in -short")
	}
	rep, err := MeasureHTTP()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scales) != len(httpScales) {
		t.Fatalf("got %d scales, want %d", len(rep.Scales), len(httpScales))
	}
	if rep.WatchDeltaNs <= 0 {
		t.Error("watch delta not measured")
	}
}
