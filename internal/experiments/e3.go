package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/intent"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/simtime"
)

// BuildRepo builds a synthetic layered repository with alternative-rich
// dependency matching: one goal classifier realised by several candidates,
// each depending on mid-layer classifiers that in turn have multiple
// providers. total controls the number of procedures (BuildRepo(100)
// reproduces the paper's "100 curated procedures aimed at achieving optimum
// dependency matching").
//
// Costs are assigned so that exactly one configuration is optimal, which
// keeps selection meaningful.
func BuildRepo(total int) (*registry.Repository, string) {
	if total < 13 {
		total = 13
	}
	tx := dsc.NewTaxonomy()
	mid := 4
	tx.MustAdd(&dsc.DSC{ID: "x.goal", Domain: "x", Category: dsc.Operation})
	for i := 0; i < mid; i++ {
		tx.MustAdd(&dsc.DSC{ID: fmt.Sprintf("x.a%d", i), Domain: "x", Category: dsc.Operation})
		tx.MustAdd(&dsc.DSC{ID: fmt.Sprintf("x.b%d", i), Domain: "x", Category: dsc.Operation})
	}
	repo := registry.NewRepository(tx)

	unit := func(name string) *eu.Unit {
		return eu.NewUnit(name, eu.Set("done", "true"))
	}
	count := 0
	add := func(id, classifier string, cost float64, deps ...string) {
		repo.MustAdd(&registry.Procedure{
			ID: id, Name: id, Domain: "x", ClassifiedBy: classifier,
			Dependencies: deps, Cost: cost, Reliability: 0.9 + 0.0001*cost,
			Unit: unit(id),
		})
		count++
	}

	// Goal layer: one candidate per mid pair, distinct costs.
	for i := 0; i < mid; i++ {
		add(fmt.Sprintf("goal%d", i), "x.goal", float64(10+i*3),
			fmt.Sprintf("x.a%d", i), fmt.Sprintf("x.a%d", (i+1)%mid))
	}
	// Mid layer A: each classifier gets alternatives depending on a B.
	perA := (total - count) / (2 * mid)
	for i := 0; i < mid; i++ {
		for j := 0; j < perA; j++ {
			add(fmt.Sprintf("a%d_%d", i, j), fmt.Sprintf("x.a%d", i),
				float64(2+(i+j*5)%17), fmt.Sprintf("x.b%d", (i+j)%mid))
		}
	}
	// Leaf layer B: fill up to total.
	i := 0
	for count < total {
		add(fmt.Sprintf("b%d_%d", i%mid, count), fmt.Sprintf("x.b%d", i%mid),
			float64(1+(i*7)%13))
		i++
	}
	return repo, "x.goal"
}

// E3Point is one row of the amortisation series.
type E3Point struct {
	Cycles  int
	FirstMs float64 // duration of the first (cold) cycle
	AvgMs   float64 // cumulative average per cycle
}

// MeasureE3 runs the generation-cycle series on a repository of the given
// size: a cold full cycle (generation, validation, selection) followed by
// cached cycles, reporting the cumulative average at each target count.
// Context alternates across requests the way sequential Controller
// requests would, without changing the policy decision (so the cache stays
// warm, as in the paper's sequential-request experiment).
func MeasureE3(repoSize int, targets []int) ([]E3Point, error) {
	repo, goal := BuildRepo(repoSize)
	gen := intent.NewGenerator(repo, nil, intent.Options{})
	scope := expr.MapScope{}

	var out []E3Point
	var elapsed time.Duration
	done := 0
	var firstMs float64
	for _, target := range targets {
		for done < target {
			start := time.Now()
			if _, err := gen.Generate(goal, scope); err != nil {
				return nil, fmt.Errorf("e3: cycle %d: %w", done, err)
			}
			d := time.Since(start)
			elapsed += d
			if done == 0 {
				firstMs = float64(d.Microseconds()) / 1000
			}
			done++
		}
		out = append(out, E3Point{
			Cycles:  target,
			FirstMs: firstMs,
			AvgMs:   float64(elapsed.Microseconds()) / 1000 / float64(done),
		})
	}
	return out, nil
}

// ColdCycle measures one full generation cycle with an empty cache.
func ColdCycle(repoSize int) (time.Duration, int, error) {
	repo, goal := BuildRepo(repoSize)
	gen := intent.NewGenerator(repo, nil, intent.Options{DisableCache: true})
	sw := simtime.NewStopwatch(simtime.RealClock{})
	m, err := gen.Generate(goal, expr.MapScope{})
	if err != nil {
		return 0, 0, err
	}
	return sw.Elapsed(), m.Size, nil
}

// ReportE3 prints the E3 table.
func ReportE3(w io.Writer) error {
	cold, size, err := ColdCycle(100)
	if err != nil {
		return err
	}
	points, err := MeasureE3(100, []int{1, 10, 100, 1000, 10000, 100000})
	if err != nil {
		return err
	}
	t := Table{
		Title:   "E3 — intent-model generation cycles, 100-procedure repository (paper §VII-B)",
		Columns: []string{"cycles", "first cycle", "avg / cycle"},
		Notes: []string{
			"paper claim: full generation cycle < 120 ms; average cycle time approaches ~1 ms by 100000 sequential requests",
			fmt.Sprintf("cold full cycle (generation+validation+selection): %s for a %d-node model", cold.Round(time.Microsecond), size),
		},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Cycles),
			fmt.Sprintf("%.3f ms", p.FirstMs),
			fmt.Sprintf("%.4f ms", p.AvgMs))
	}
	t.Print(w)
	return nil
}
