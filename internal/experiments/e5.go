package experiments

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ArtifactCount is the size of one named artifact (a function or a whole
// file) in physical source lines.
type ArtifactCount struct {
	Name  string
	Lines int
}

// E5Result compares the coupled (handcrafted, per-domain middleware code)
// against the separated (declarative middleware model + DSK) communication
// Broker artifacts, mirroring the paper's §VII-B LoC comparison
// (Java: 1402 → 1176 after separating domain knowledge).
type E5Result struct {
	Coupled      []ArtifactCount
	Separated    []ArtifactCount
	CoupledLoC   int
	SeparatedLoC int
	ReductionPct float64
}

// countFuncLines parses a Go source file and returns the line span of the
// named top-level functions/methods. Missing names are errors so the
// experiment fails loudly when the code moves.
func countFuncLines(fset *token.FileSet, path string, names []string) ([]ArtifactCount, error) {
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []ArtifactCount
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !want[fd.Name.Name] {
			continue
		}
		start := fset.Position(fd.Pos()).Line
		end := fset.Position(fd.End()).Line
		out = append(out, ArtifactCount{
			Name:  filepath.Base(path) + ":" + fd.Name.Name,
			Lines: end - start + 1,
		})
		delete(want, fd.Name.Name)
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for n := range want {
			missing = append(missing, n)
		}
		return nil, fmt.Errorf("%s: functions not found: %s", path, strings.Join(missing, ", "))
	}
	return out, nil
}

// FindRepoRoot walks upward from dir looking for go.mod.
func FindRepoRoot(dir string) (string, error) {
	cur, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(cur, "go.mod")); err == nil {
			return cur, nil
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		cur = parent
	}
}

// MeasureE5 computes the artifact sizes. root is the repository root
// (FindRepoRoot helps tests and the harness locate it).
//
// Coupled: everything the developer hand-writes in the non-model-based
// world to realise the communication middleware — the handcrafted Broker
// (service dispatch, partial reconfiguration, failure recovery:
// baseline/ncb.go) plus the fixed command-routing layer the non-adaptive
// Controller needs (baseline/controller.go).
//
// Separated: what the developer writes when the engine is the shared,
// domain-independent MD-DSM runtime — the declarative middleware model
// (cml.NCBModel: actions, recovery and routing as model elements) plus the
// service adapter, the one piece of domain code both worlds require
// (cml.NewAdapter/Execute/reconfigure, mirroring the coupled Call switch).
func MeasureE5(root string) (E5Result, error) {
	fset := token.NewFileSet()
	var res E5Result

	coupledNCB, err := countFuncLines(fset,
		filepath.Join(root, "internal/baseline/ncb.go"),
		[]string{"NewHandcraftedNCB", "Call", "onEvent", "stripPrefix"})
	if err != nil {
		return res, err
	}
	coupledRouting, err := countFuncLines(fset,
		filepath.Join(root, "internal/baseline/controller.go"),
		[]string{"NewNonAdaptiveController", "Process", "Execute"})
	if err != nil {
		return res, err
	}
	res.Coupled = append(coupledNCB, coupledRouting...)

	sepModel, err := countFuncLines(fset,
		filepath.Join(root, "internal/domains/cml/platform.go"),
		[]string{"NCBModel"})
	if err != nil {
		return res, err
	}
	sepAdapter, err := countFuncLines(fset,
		filepath.Join(root, "internal/domains/cml/dsk.go"),
		[]string{"NewAdapter", "Execute", "reconfigure", "stripPrefix"})
	if err != nil {
		return res, err
	}
	res.Separated = append(sepModel, sepAdapter...)

	for _, a := range res.Coupled {
		res.CoupledLoC += a.Lines
	}
	for _, a := range res.Separated {
		res.SeparatedLoC += a.Lines
	}
	if res.CoupledLoC > 0 {
		res.ReductionPct = (1 - float64(res.SeparatedLoC)/float64(res.CoupledLoC)) * 100
	}
	return res, nil
}

// ReportE5 prints the E5 table.
func ReportE5(w io.Writer, root string) error {
	res, err := MeasureE5(root)
	if err != nil {
		return err
	}
	t := Table{
		Title:   "E5 — domain-artifact footprint: coupled vs separated (paper §VII-B)",
		Columns: []string{"variant", "artifact", "lines"},
		Notes: []string{
			"paper claim (Java controller): separation of domain concerns reduced the artifact from 1402 to 1176 LoC (~16%)",
			fmt.Sprintf("measured: coupled %d LoC vs separated %d LoC (%.1f%% change; positive = reduction)",
				res.CoupledLoC, res.SeparatedLoC, res.ReductionPct),
		},
	}
	for _, a := range res.Coupled {
		t.AddRow("coupled", a.Name, fmt.Sprintf("%d", a.Lines))
	}
	for _, a := range res.Separated {
		t.AddRow("separated", a.Name, fmt.Sprintf("%d", a.Lines))
	}
	t.AddRow("coupled", "TOTAL", fmt.Sprintf("%d", res.CoupledLoC))
	t.AddRow("separated", "TOTAL", fmt.Sprintf("%d", res.SeparatedLoC))
	t.Print(w)
	return nil
}
