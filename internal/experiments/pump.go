package experiments

import (
	"fmt"
	"io"
	goruntime "runtime"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	mdruntime "github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// PumpResult is one sharded-pump throughput measurement.
type PumpResult struct {
	Shards       int
	Events       int
	EventsPerSec float64
}

// MeasurePump posts events from 64 independent sources through a
// broker-only platform whose adapter sleeps delay per delivery, and
// returns the sustained delivery rate with the given shard count. Events
// are routed by their "src" attribute, so same-source ordering holds
// while independent sources deliver concurrently.
func MeasurePump(shards, events int, delay time.Duration) (PumpResult, error) {
	mb := mwmeta.NewBuilder("pump-exp", "bench")
	mb.BrokerLayer("brk").
		EventAction("handle", "tick", "", false,
			mwmeta.StepSpec{Op: "handle", Target: "t"}).
		Bind("*", "main")
	ad := broker.AdapterFunc(func(cmd script.Command) error {
		if delay > 0 {
			time.Sleep(delay)
		}
		return nil
	})
	m := obs.NewMetrics()
	p, err := mdruntime.Build(mb.Model(), mdruntime.Deps{
		Adapters: map[string]broker.Adapter{"main": ad},
		Metrics:  m,
	}, mdruntime.WithPumpShards(shards), mdruntime.WithShardKey("src"),
		mdruntime.WithPumpQueue(4096))
	if err != nil {
		return PumpResult{}, fmt.Errorf("pump: %w", err)
	}
	p.Start()
	defer p.Stop()

	srcs := make([]string, 64)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("src-%d", i)
	}
	delivered := m.Counter(obs.MEventsDelivered)
	start := time.Now()
	for i := 0; i < events; i++ {
		ev := broker.Event{Name: "tick",
			Attrs: map[string]any{"src": srcs[i%len(srcs)]}}
		for !p.PostEvent(ev) {
			goruntime.Gosched() // backpressure: shard queue full
		}
	}
	for delivered.Value() < int64(events) {
		goruntime.Gosched()
	}
	elapsed := time.Since(start)
	return PumpResult{
		Shards:       shards,
		Events:       events,
		EventsPerSec: float64(events) / elapsed.Seconds(),
	}, nil
}

// ReportPump prints sharded event-pump throughput on the slow-adapter mix
// (100µs per delivery) at 1, 4 and GOMAXPROCS shards, with the speedup
// over the single-shard baseline.
func ReportPump(w io.Writer) error {
	const events = 20000
	const delay = 100 * time.Microsecond
	shardCounts := []int{1, 4}
	if n := goruntime.GOMAXPROCS(0); n > 4 {
		shardCounts = append(shardCounts, n)
	}
	t := Table{
		Title:   "Pump — sharded event-pump throughput, slow adapter (100µs/delivery)",
		Columns: []string{"shards", "events", "events/sec", "speedup"},
		Notes: []string{
			"events from 64 sources routed by the \"src\" attribute; per-source order preserved",
			fmt.Sprintf("GOMAXPROCS=%d; queue capacity 4096 per shard", goruntime.GOMAXPROCS(0)),
		},
	}
	var base float64
	for _, shards := range shardCounts {
		r, err := MeasurePump(shards, events, delay)
		if err != nil {
			return err
		}
		if base == 0 {
			base = r.EventsPerSec
		}
		t.AddRow(fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.2fx", r.EventsPerSec/base))
	}
	t.Print(w)
	return nil
}
