package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	mdruntime "github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// PumpResult is one sharded-pump throughput measurement.
type PumpResult struct {
	Shards         int     `json:"shards"`
	Events         int     `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	DelayUs        float64 `json:"adapter_delay_us"`
}

// PumpReport is the machine-readable pump benchmark record
// (BENCH_pump.json).
type PumpReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// HotPath rows run a no-op adapter with pooled events: the
	// allocation-free post→shard→deliver pipeline itself.
	HotPath []PumpResult `json:"hot_path"`
	// SlowAdapter rows keep the original 100µs-per-delivery adapter, where
	// throughput is bounded by adapter latency times shard parallelism.
	SlowAdapter []PumpResult `json:"slow_adapter"`
	// BaselinePR3EventsPerSec is the 4-shard slow-adapter throughput
	// recorded when the sharded pump landed, before the allocation-free
	// hot path: the comparison point for Speedup.
	BaselinePR3EventsPerSec float64 `json:"baseline_pr3_events_per_sec"`
	// BestHotEventsPerSec / Speedup summarise the headline result.
	BestHotEventsPerSec float64 `json:"best_hot_events_per_sec"`
	Speedup             float64 `json:"speedup"`
}

// baselinePR3EventsPerSec is the 4-shard slow-adapter rate measured before
// the allocation-free hot path (EXPERIMENTS.md, PR-3 pump table).
const baselinePR3EventsPerSec = 34000

func buildPumpPlatform(shards int, delay time.Duration) (*mdruntime.Platform, *obs.Counter, error) {
	mb := mwmeta.NewBuilder("pump-exp", "bench")
	mb.BrokerLayer("brk").
		EventAction("handle", "tick", "", false,
			mwmeta.StepSpec{Op: "handle", Target: "t"}).
		Bind("*", "main")
	ad := broker.AdapterFunc(func(cmd script.Command) error {
		if delay > 0 {
			time.Sleep(delay)
		}
		return nil
	})
	m := obs.NewMetrics()
	p, err := mdruntime.Build(mb.Model(), mdruntime.Deps{
		Adapters: map[string]broker.Adapter{"main": ad},
		Metrics:  m,
	}, mdruntime.WithPumpShards(shards), mdruntime.WithShardKey("src"),
		mdruntime.WithPumpQueue(4096))
	if err != nil {
		return nil, nil, fmt.Errorf("pump: %w", err)
	}
	return p, m.Counter(obs.MEventsDelivered), nil
}

// MeasurePump posts events from 64 independent sources through a
// broker-only platform whose adapter sleeps delay per delivery, and
// returns the sustained delivery rate with the given shard count. Events
// are routed by their "src" attribute, so same-source ordering holds
// while independent sources deliver concurrently.
func MeasurePump(shards, events int, delay time.Duration) (PumpResult, error) {
	p, delivered, err := buildPumpPlatform(shards, delay)
	if err != nil {
		return PumpResult{}, err
	}
	p.Start()
	defer p.Stop()

	srcs := make([]string, 64)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("src-%d", i)
	}
	start := time.Now()
	for i := 0; i < events; i++ {
		ev := broker.Event{Name: "tick",
			Attrs: map[string]any{"src": srcs[i%len(srcs)]}}
		for !p.PostEvent(ev) {
			goruntime.Gosched() // backpressure: shard queue full
		}
	}
	for delivered.Value() < int64(events) {
		goruntime.Gosched()
	}
	elapsed := time.Since(start)
	return PumpResult{
		Shards:       shards,
		Events:       events,
		EventsPerSec: float64(events) / elapsed.Seconds(),
		DelayUs:      float64(delay) / float64(time.Microsecond),
	}, nil
}

// MeasurePumpHot measures the allocation-free hot path: pooled events, a
// no-op adapter and pre-boxed shard keys, the steady-state shape the
// AllocsPerRun gate pins. Besides the delivery rate it reports the mean
// allocations per event, read from process-wide malloc counts so the shard
// workers' allocations (if any) are charged too.
func MeasurePumpHot(shards, events int) (PumpResult, error) {
	p, delivered, err := buildPumpPlatform(shards, 0)
	if err != nil {
		return PumpResult{}, err
	}
	p.Start()
	defer p.Stop()

	srcs := make([]any, 64)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("src-%d", i)
	}
	post := func(n int) {
		base := delivered.Value()
		for i := 0; i < n; i++ {
			ev := broker.AcquireEvent("tick")
			ev.Attrs["src"] = srcs[i%len(srcs)]
			for !p.PostEvent(ev) {
				goruntime.Gosched()
			}
		}
		for delivered.Value() < base+int64(n) {
			goruntime.Gosched()
		}
	}
	warm := events / 4
	if warm < 8192 {
		warm = 8192
	}
	post(warm) // warm pools, maps, channels, metric instruments

	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	start := time.Now()
	post(events)
	elapsed := time.Since(start)
	goruntime.ReadMemStats(&after)
	return PumpResult{
		Shards:         shards,
		Events:         events,
		EventsPerSec:   float64(events) / elapsed.Seconds(),
		AllocsPerEvent: float64(after.Mallocs-before.Mallocs) / float64(events),
	}, nil
}

// MeasurePumpReport runs the full pump benchmark matrix: the hot path and
// the slow-adapter context rows at 1, 4 and GOMAXPROCS shards.
func MeasurePumpReport() (*PumpReport, error) {
	shardCounts := []int{1, 4}
	if n := goruntime.GOMAXPROCS(0); n > 4 {
		shardCounts = append(shardCounts, n)
	}
	rep := &PumpReport{
		GOMAXPROCS:              goruntime.GOMAXPROCS(0),
		BaselinePR3EventsPerSec: baselinePR3EventsPerSec,
	}
	const hotEvents = 200000
	for _, shards := range shardCounts {
		r, err := MeasurePumpHot(shards, hotEvents)
		if err != nil {
			return nil, err
		}
		rep.HotPath = append(rep.HotPath, r)
		if r.EventsPerSec > rep.BestHotEventsPerSec {
			rep.BestHotEventsPerSec = r.EventsPerSec
		}
	}
	const slowEvents = 20000
	const delay = 100 * time.Microsecond
	for _, shards := range shardCounts {
		r, err := MeasurePump(shards, slowEvents, delay)
		if err != nil {
			return nil, err
		}
		rep.SlowAdapter = append(rep.SlowAdapter, r)
	}
	rep.Speedup = rep.BestHotEventsPerSec / baselinePR3EventsPerSec
	return rep, nil
}

// ReportPump prints the pump throughput tables — the allocation-free hot
// path and the slow-adapter (100µs/delivery) context — and, when jsonPath
// is non-empty, writes the machine-readable record there.
func ReportPump(w io.Writer, jsonPath string) error {
	rep, err := MeasurePumpReport()
	if err != nil {
		return err
	}
	t := Table{
		Title:   "Pump — event hot path (pooled events, no-op adapter)",
		Columns: []string{"shards", "events", "events/sec", "allocs/event", "vs PR-3 baseline"},
		Notes: []string{
			"events from 64 sources routed by the \"src\" attribute; per-source order preserved",
			fmt.Sprintf("baseline: %d ev/s (4 shards, slow adapter, pre-hot-path)", baselinePR3EventsPerSec),
			fmt.Sprintf("GOMAXPROCS=%d; queue capacity 4096 per shard", rep.GOMAXPROCS),
		},
	}
	for _, r := range rep.HotPath {
		t.AddRow(fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.3f", r.AllocsPerEvent),
			fmt.Sprintf("%.1fx", r.EventsPerSec/baselinePR3EventsPerSec))
	}
	t.Print(w)

	ts := Table{
		Title:   "Pump — sharded throughput, slow adapter (100µs/delivery)",
		Columns: []string{"shards", "events", "events/sec", "speedup"},
	}
	var base float64
	for _, r := range rep.SlowAdapter {
		if base == 0 {
			base = r.EventsPerSec
		}
		ts.AddRow(fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.2fx", r.EventsPerSec/base))
	}
	ts.Print(w)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
