// Package experiments implements the evaluation harness that regenerates
// every quantitative result of the paper's §VII (see DESIGN.md §3 for the
// experiment index E1–E6 and the ablations). The cmd/mddsm-bench binary
// prints the reports; the repository-root benchmarks reuse the same
// measurement helpers under testing.B.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple text report: a title, column headers and rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, row := range t.Rows {
		sb.Reset()
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", w, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
