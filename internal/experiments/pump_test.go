package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestPumpSmoke runs a miniature hot-path measurement end to end.
func TestPumpSmoke(t *testing.T) {
	r, err := MeasurePumpHot(2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if r.EventsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", r)
	}
	if !raceEnabled && r.AllocsPerEvent > 1 {
		t.Fatalf("hot path allocates heavily: %.2f allocs/event", r.AllocsPerEvent)
	}
}

// TestCommittedPumpBenchSchema guards the committed BENCH_pump.json: it
// must strict-decode into PumpReport with no unknown fields, report an
// allocation-free hot path, and clear the 2x bar over the PR-3 baseline.
func TestCommittedPumpBenchSchema(t *testing.T) {
	root, err := FindRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "BENCH_pump.json"))
	if err != nil {
		t.Fatalf("committed benchmark record missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep PumpReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_pump.json does not match the PumpReport schema: %v", err)
	}
	if len(rep.HotPath) < 2 || len(rep.SlowAdapter) < 2 {
		t.Fatalf("committed record too small: %d hot rows, %d slow rows",
			len(rep.HotPath), len(rep.SlowAdapter))
	}
	for _, r := range rep.HotPath {
		if r.AllocsPerEvent != 0 {
			t.Errorf("hot path at %d shards allocates: %.3f allocs/event, want 0",
				r.Shards, r.AllocsPerEvent)
		}
		if r.EventsPerSec <= 0 || r.Events <= 0 {
			t.Errorf("implausible hot-path row: %+v", r)
		}
	}
	if rep.BaselinePR3EventsPerSec != baselinePR3EventsPerSec {
		t.Errorf("baseline drifted: %v, want %v", rep.BaselinePR3EventsPerSec, baselinePR3EventsPerSec)
	}
	if rep.Speedup < 2 {
		t.Errorf("committed speedup %.2fx below the 2x acceptance bar", rep.Speedup)
	}
	if rep.BestHotEventsPerSec < 2*baselinePR3EventsPerSec {
		t.Errorf("best hot-path rate %.0f ev/s below 2x baseline", rep.BestHotEventsPerSec)
	}
}
