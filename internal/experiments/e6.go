package experiments

import (
	"fmt"
	"io"

	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/domains/csense"
	"github.com/mddsm/mddsm/internal/domains/mgrid"
	"github.com/mddsm/mddsm/internal/domains/smartspace"
	"github.com/mddsm/mddsm/internal/script"
)

// E6Result reports one domain platform instantiated from the single common
// middleware metamodel.
type E6Result struct {
	Domain    string
	Platform  string
	Layers    string
	Scenario  string
	Succeeded bool
	Err       string
}

// RunE6 instantiates all four §IV domain platforms through the identical
// metamodel/factory code path and runs one smoke scenario per domain. The
// paper's claim: the single domain-independent metamodel suffices to build
// middleware for very different domains — including layer-suppressed
// variants — without modifying the runtime.
func RunE6() []E6Result {
	var out []E6Result

	out = append(out, runE6CVM())
	out = append(out, runE6MGrid())
	out = append(out, runE6SmartSpace())
	out = append(out, runE6CSense())
	return out
}

func e6Fail(r E6Result, err error) E6Result {
	r.Succeeded = false
	r.Err = err.Error()
	return r
}

func runE6CVM() E6Result {
	r := E6Result{Domain: "communication", Platform: "CVM",
		Layers: "UCI+SE+UCM+NCB", Scenario: "two-party audio session"}
	vm, err := cml.New()
	if err != nil {
		return e6Fail(r, err)
	}
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("alice", "Person").SetAttr("name", "Alice")
	d.MustAdd("s1", "Session").SetRef("participants", "alice").SetRef("streams", "a1")
	d.MustAdd("a1", "Stream").SetAttr("media", "audio").SetAttr("session", "s1")
	if _, err := d.Submit(); err != nil {
		return e6Fail(r, err)
	}
	r.Succeeded = vm.Service.Session("s1") != nil
	return r
}

func runE6MGrid() E6Result {
	r := E6Result{Domain: "smart microgrid", Platform: "MGridVM",
		Layers: "MUI+MSE+MCM+MHB", Scenario: "home plant provisioning"}
	vm, err := mgrid.New()
	if err != nil {
		return e6Fail(r, err)
	}
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("home", "Microgrid").SetAttr("name", "Casa").SetRef("devices", "solar")
	d.MustAdd("solar", "DeviceCfg").SetAttr("kind", "solar").SetAttr("capacity", 5).SetAttr("output", 2)
	if _, err := d.Submit(); err != nil {
		return e6Fail(r, err)
	}
	r.Succeeded = vm.Plant.Telemetry().Generation == 2
	return r
}

func runE6SmartSpace() E6Result {
	r := E6Result{Domain: "smart spaces", Platform: "2SVM",
		Layers:   "central SUI+SSE+SMW+SDB; nodes MW+BR (suppressed)",
		Scenario: "enter-triggered rule"}
	vm, err := smartspace.New()
	if err != nil {
		return e6Fail(r, err)
	}
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("lamp1", "ObjectDecl").SetAttr("kind", "lamp")
	d.MustAdd("r1", "Rule").
		SetAttr("onEvent", "objectEntered").SetAttr("subject", "badge1").
		SetAttr("targetObject", "lamp1").SetAttr("prop", "on").SetAttr("value", "true")
	if _, err := d.Submit(); err != nil {
		return e6Fail(r, err)
	}
	if err := vm.Hub.ObjectEnters("lamp1", "lamp"); err != nil {
		return e6Fail(r, err)
	}
	if err := vm.Hub.ObjectEnters("badge1", "badge"); err != nil {
		return e6Fail(r, err)
	}
	o, ok := vm.Hub.Space().Object("lamp1")
	if !ok {
		return e6Fail(r, fmt.Errorf("lamp1 unknown"))
	}
	v, _ := o.Prop("on")
	r.Succeeded = v == true
	return r
}

func runE6CSense() E6Result {
	r := E6Result{Domain: "mobile crowdsensing", Platform: "CSVM",
		Layers:   "device DUI+DSE+DCM+DLB; provider PSE+PCM+PSB (suppressed UI)",
		Scenario: "live query round"}
	vm, err := csense.New(7)
	if err != nil {
		return e6Fail(r, err)
	}
	if err := vm.Fleet.Register("d1", "r", map[string][2]float64{"temp": {10, 30}}); err != nil {
		return e6Fail(r, err)
	}
	d := vm.Device.UI.NewDraft()
	d.MustAdd("q1", "Query").SetAttr("sensor", "temp")
	if _, err := d.Submit(); err != nil {
		return e6Fail(r, err)
	}
	results := vm.Engine.Tick()
	r.Succeeded = len(results) == 1 && results[0].Samples == 1
	return r
}

// scriptLenCheck keeps the script import honest (the smoke scenarios above
// exercise models; this helper exercises direct script execution paths in
// the harness build).
var _ = script.New

// ReportE6 prints the E6 table.
func ReportE6(w io.Writer) error {
	results := RunE6()
	t := Table{
		Title:   "E6 — one middleware metamodel, four domain platforms (paper §V-A, §IV)",
		Columns: []string{"domain", "platform", "layers", "scenario", "ok"},
		Notes: []string{
			"paper claim: the same metamodel and runtime build middleware for different domains without modification",
		},
	}
	for _, r := range results {
		ok := "yes"
		if !r.Succeeded {
			ok = "NO: " + r.Err
		}
		t.AddRow(r.Domain, r.Platform, r.Layers, r.Scenario, ok)
	}
	t.Print(w)
	for _, r := range results {
		if !r.Succeeded {
			return fmt.Errorf("e6: %s failed: %s", r.Domain, r.Err)
		}
	}
	return nil
}
