package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"
	"time"
)

// TestMixedSoak is the standing soak bar: ≥100 concurrent heterogeneous
// platforms (≥20 distinct synthetic bundles plus the four hand-built
// ones) under seeded faults — admission drops AND broker-side errors —
// with evict/rehydrate churn, asserting the exact per-tenant accounting
// invariant and zero goroutine leaks. CI runs it under -race at a fixed
// seed.
func TestMixedSoak(t *testing.T) {
	before := goruntime.NumGoroutine()

	cfg := DefaultMixedConfig()
	// Harsher than the canonical bench: error faults on the broker's step
	// and event paths drive the failure/dead-letter buckets of the ledger,
	// not just the happy path.
	cfg.Faults = "seed=7,pump.post:drop:p=0.01,broker.step:error:p=0.02,broker.event:error:p=0.02"
	rep, err := MeasureMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Tenants < 100 {
		t.Errorf("soak ran %d tenants, want >= 100", rep.Tenants)
	}
	if rep.SyntheticBundles < 20 {
		t.Errorf("soak used %d synthetic bundles, want >= 20", rep.SyntheticBundles)
	}
	if !rep.AccountingExact {
		t.Errorf("exact accounting violated: %+v", rep.Bundles)
	}
	if len(rep.PerTenant) != rep.Tenants {
		t.Errorf("ledger covers %d tenants, want %d", len(rep.PerTenant), rep.Tenants)
	}
	for name, a := range rep.PerTenant {
		if !a.Exact() {
			t.Errorf("tenant %s: posted %d != delivered %d + failures %d + dlq %d + dropped %d",
				name, a.Posted, a.Delivered, a.Failures, a.DeadLettered, a.Dropped)
		}
	}
	if rep.Accepted == 0 || rep.Accepted+rep.Rejected != rep.Events {
		t.Errorf("driver totals inconsistent: events=%d accepted=%d rejected=%d",
			rep.Events, rep.Accepted, rep.Rejected)
	}
	if rep.Evictions == 0 || rep.Rehydrations == 0 {
		t.Errorf("no churn happened: evictions=%d rehydrations=%d", rep.Evictions, rep.Rehydrations)
	}
	// The armed drop site must actually have fired across ~10k posts.
	if rep.Rejected == 0 {
		t.Error("pump.post drops never fired")
	}

	// Zero goroutine leaks: every platform was evicted (stopped) and the
	// server closed. Allow the runtime a moment to park exiting
	// goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := goruntime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before soak, %d after", before, goruntime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMixedReportByteDeterministic is the satellite regression: two runs
// of the canonical config must serialise to identical canonical bytes
// (wall-clock fields zeroed), so committed BENCH_mixed.json diffs are
// reviewable and CI can compare counters across runs.
func TestMixedReportByteDeterministic(t *testing.T) {
	a, err := MeasureMixed(MixedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureMixed(MixedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same config, different report bytes:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", ja, jb)
	}
	if !a.AccountingExact {
		t.Error("canonical run violates exact accounting")
	}
}

// TestCommittedMixedBenchSchema guards the committed BENCH_mixed.json
// against schema drift: it must strict-decode into MixedReport with no
// unknown fields and carry a plausible payload.
func TestCommittedMixedBenchSchema(t *testing.T) {
	root, err := FindRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "BENCH_mixed.json"))
	if err != nil {
		t.Fatalf("committed benchmark record missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep MixedReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_mixed.json does not match the MixedReport schema: %v", err)
	}
	if rep.Tenants < 100 || rep.SyntheticBundles < 20 {
		t.Errorf("committed record too small: tenants=%d synthetic=%d", rep.Tenants, rep.SyntheticBundles)
	}
	if !rep.AccountingExact {
		t.Error("committed record reports inexact accounting")
	}
	if len(rep.Bundles) == 0 {
		t.Error("committed record has no per-bundle rows")
	}
}
