package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
)

// ObsPhase aggregates the span counts of one engine phase (the layer
// prefix of the span name: ui, synthesis, controller, broker, ...).
type ObsPhase struct {
	Phase string
	Spans map[string]int64
	Total int64
}

// MeasureObs runs the canonical two-party audio session through a fully
// instrumented CVM — model submission down the four layers, then an
// asynchronous stream failure back up — and returns the recorded span
// counts grouped by phase.
func MeasureObs() ([]ObsPhase, *obs.Obs, error) {
	return measureObs(nil)
}

// measureObs runs the canonical scenario, optionally with an armed fault
// injector (and the default resilience policy, so injected transients are
// retried rather than failing the run).
func measureObs(inj *fault.Injector) ([]ObsPhase, *obs.Obs, error) {
	o := obs.New()
	opts := []cml.Option{cml.WithObs(o)}
	if inj != nil {
		inj.BindMetrics(o.MetricsOf())
		opts = append(opts, cml.WithFault(inj), cml.WithResilience(fault.DefaultResilience()))
	}
	vm, err := cml.New(opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: %w", err)
	}
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("alice", "Person").SetAttr("name", "Alice")
	d.MustAdd("bob", "Person").SetAttr("name", "Bob")
	d.MustAdd("s1", "Session").
		SetRef("participants", "alice", "bob").
		SetRef("streams", "a1")
	d.MustAdd("a1", "Stream").
		SetAttr("media", "audio").
		SetAttr("bandwidth", 64).
		SetAttr("session", "s1")
	if _, err := d.Submit(); err != nil {
		return nil, nil, fmt.Errorf("obs: submit: %w", err)
	}
	if err := vm.Platform.DeliverEvent(broker.Event{
		Name:  "streamFailed",
		Attrs: map[string]any{"session": "s1", "stream": "a1"},
	}); err != nil {
		return nil, nil, fmt.Errorf("obs: event: %w", err)
	}

	byPhase := map[string]*ObsPhase{}
	for name, n := range o.TracerOf().Counts() {
		phase, _, _ := strings.Cut(name, ".")
		p := byPhase[phase]
		if p == nil {
			p = &ObsPhase{Phase: phase, Spans: map[string]int64{}}
			byPhase[phase] = p
		}
		p.Spans[name] += n
		p.Total += n
	}
	out := make([]ObsPhase, 0, len(byPhase))
	for _, p := range byPhase {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out, o, nil
}

// ReportObs prints the per-phase span counts of one instrumented
// submission+recovery cycle, followed by the full snapshot.
func ReportObs(w io.Writer) error {
	phases, o, err := MeasureObs()
	if err != nil {
		return err
	}
	t := Table{
		Title:   "Obs — per-phase span counts for one submission + recovery cycle",
		Columns: []string{"phase", "spans", "breakdown"},
		Notes: []string{
			"spans recorded by the layer-spanning tracer; phase = span name prefix",
			"ui.submit -> synthesis.submit -> controller.script -> broker.call -> resource.execute",
		},
	}
	for _, p := range phases {
		names := make([]string, 0, len(p.Spans))
		for n := range p.Spans {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", n, p.Spans[n]))
		}
		t.AddRow(p.Phase, fmt.Sprintf("%d", p.Total), strings.Join(parts, " "))
	}
	t.Print(w)
	fmt.Fprintln(w, o.MetricsOf().Snapshot())
	return nil
}

// ReportObsFaults runs the instrumented scenario with faults injected per
// spec ("seed=N,site:kind[:p=..][:d=..][:n=..],...") and prints the
// resilience counters plus the deterministic fault schedule. The same seed
// reproduces the same schedule.
func ReportObsFaults(w io.Writer, spec string) error {
	inj, err := fault.Parse(spec)
	if err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	phases, o, err := measureObs(inj)
	if err != nil {
		return fmt.Errorf("faults (seed=%d, %d injected): %w", inj.Seed(), inj.Injected(), err)
	}
	t := Table{
		Title:   "Obs — per-phase span counts under fault injection",
		Columns: []string{"phase", "spans"},
		Notes: []string{
			fmt.Sprintf("faults: %s", spec),
			fmt.Sprintf("seed=%d injected=%d (schedule below is reproducible from the seed)", inj.Seed(), inj.Injected()),
		},
	}
	for _, p := range phases {
		t.AddRow(p.Phase, fmt.Sprintf("%d", p.Total))
	}
	t.Print(w)
	fmt.Fprintln(w, o.MetricsOf().Snapshot())
	fmt.Fprintln(w, "# fault schedule")
	for _, line := range inj.Schedule() {
		fmt.Fprintln(w, line)
	}
	return nil
}
