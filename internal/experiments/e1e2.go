package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/mddsm/mddsm/internal/baseline"
	"github.com/mddsm/mddsm/internal/domains/cml"
)

// E1Result reports behavioural equivalence for one scenario (§VII-A): the
// model-based and handcrafted Brokers must generate the same sequence of
// commands for the underlying resources.
type E1Result struct {
	Scenario  string
	Commands  int
	Equal     bool
	DiffIndex int
	DiffA     string
	DiffB     string
}

// RunE1 drives every scenario against both Broker implementations and
// compares the service traces.
func RunE1() ([]E1Result, error) {
	var out []E1Result
	for _, sc := range cml.Scenarios() {
		modelBased, err := cml.NewStandaloneNCB()
		if err != nil {
			return nil, fmt.Errorf("e1: %w", err)
		}
		if err := cml.RunScenario(sc, modelBased.Platform.Broker, modelBased.Service); err != nil {
			return nil, fmt.Errorf("e1: scenario %s (model-based): %w", sc.Name, err)
		}
		handcrafted := baseline.NewHandcraftedNCB()
		if err := cml.RunScenario(sc, handcrafted, handcrafted.Service); err != nil {
			return nil, fmt.Errorf("e1: scenario %s (handcrafted): %w", sc.Name, err)
		}
		a := modelBased.Service.Trace()
		b := handcrafted.Service.Trace()
		r := E1Result{Scenario: sc.Name, Commands: a.Len(), Equal: a.Equal(b)}
		if !r.Equal {
			r.DiffIndex, r.DiffA, r.DiffB = a.FirstDiff(b)
		}
		out = append(out, r)
	}
	return out, nil
}

// ReportE1 prints the E1 table.
func ReportE1(w io.Writer) error {
	results, err := RunE1()
	if err != nil {
		return err
	}
	t := Table{
		Title:   "E1 — behavioural equivalence: model-based vs handcrafted Broker (paper §VII-A)",
		Columns: []string{"scenario", "commands", "equal"},
		Notes: []string{
			"paper claim: model interpretation generates the same command sequences as the handcrafted layer",
		},
	}
	for _, r := range results {
		eq := "yes"
		if !r.Equal {
			eq = fmt.Sprintf("NO (at %d: %q vs %q)", r.DiffIndex, r.DiffA, r.DiffB)
		}
		t.AddRow(r.Scenario, fmt.Sprintf("%d", r.Commands), eq)
	}
	t.Print(w)
	return nil
}

// E2Result reports the execution-time comparison for one scenario.
type E2Result struct {
	Scenario    string
	ModelBased  time.Duration // CPU time per scenario run
	Handcrafted time.Duration
	OverheadPct float64
}

// MeasureE2 times both Broker implementations over the scenario suite,
// repeating each scenario iters times and reporting the per-run average.
// The simulated service charges only virtual latency, so the difference is
// the brokers' own CPU work.
func MeasureE2(iters int) ([]E2Result, error) {
	if iters <= 0 {
		iters = 50
	}
	var out []E2Result
	for _, sc := range cml.Scenarios() {
		mb, err := timeScenario(iters, func() (runner, error) {
			n, err := cml.NewStandaloneNCB()
			if err != nil {
				return runner{}, err
			}
			return runner{caller: n.Platform.Broker, injector: n.Service}, nil
		}, sc)
		if err != nil {
			return nil, fmt.Errorf("e2: scenario %s (model-based): %w", sc.Name, err)
		}
		hc, err := timeScenario(iters, func() (runner, error) {
			n := baseline.NewHandcraftedNCB()
			return runner{caller: n, injector: n.Service}, nil
		}, sc)
		if err != nil {
			return nil, fmt.Errorf("e2: scenario %s (handcrafted): %w", sc.Name, err)
		}
		r := E2Result{Scenario: sc.Name, ModelBased: mb, Handcrafted: hc}
		if hc > 0 {
			r.OverheadPct = (float64(mb)/float64(hc) - 1) * 100
		}
		out = append(out, r)
	}
	return out, nil
}

type runner struct {
	caller   cml.Caller
	injector cml.FailureInjector
}

// timeScenario measures the average wall time of one scenario run. A fresh
// broker/service pair is built per iteration (setup time excluded).
func timeScenario(iters int, build func() (runner, error), sc cml.Scenario) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < iters; i++ {
		r, err := build()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if err := cml.RunScenario(sc, r.caller, r.injector); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(iters), nil
}

// OverheadVsServiceWeight measures the suite-average overhead as a function
// of the synthetic per-operation CPU cost of the service. The paper's
// original services (real signalling and media frameworks) made the common
// path expensive, diluting the middleware's own overhead to ~17%; this
// sweep shows the measured overhead converging toward that regime as the
// service weight grows.
func OverheadVsServiceWeight(iters int, weights []int) (map[int]float64, error) {
	if iters <= 0 {
		iters = 20
	}
	out := make(map[int]float64, len(weights))
	for _, wgt := range weights {
		var sum float64
		n := 0
		for _, sc := range cml.Scenarios() {
			mb, err := timeScenario(iters, func() (runner, error) {
				ncb, err := cml.NewStandaloneNCB()
				if err != nil {
					return runner{}, err
				}
				ncb.Service.SetCPUWork(wgt)
				return runner{caller: ncb.Platform.Broker, injector: ncb.Service}, nil
			}, sc)
			if err != nil {
				return nil, err
			}
			hc, err := timeScenario(iters, func() (runner, error) {
				ncb := baseline.NewHandcraftedNCB()
				ncb.Service.SetCPUWork(wgt)
				return runner{caller: ncb, injector: ncb.Service}, nil
			}, sc)
			if err != nil {
				return nil, err
			}
			if hc > 0 {
				sum += (float64(mb)/float64(hc) - 1) * 100
				n++
			}
		}
		out[wgt] = sum / float64(n)
	}
	return out, nil
}

// AverageOverhead computes the mean overhead percentage across results.
func AverageOverhead(results []E2Result) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		sum += r.OverheadPct
	}
	return sum / float64(len(results))
}

// ReportE2 prints the E2 table.
func ReportE2(w io.Writer, iters int) error {
	results, err := MeasureE2(iters)
	if err != nil {
		return err
	}
	t := Table{
		Title:   "E2 — raw execution time: model-based vs handcrafted Broker (paper §VII-A)",
		Columns: []string{"scenario", "model-based", "handcrafted", "overhead"},
		Notes: []string{
			"paper claim: the model-based version spent on average ~17% more time across the 8 scenarios",
			fmt.Sprintf("measured average overhead: %.1f%%", AverageOverhead(results)),
		},
	}
	for _, r := range results {
		t.AddRow(r.Scenario,
			r.ModelBased.Round(time.Microsecond).String(),
			r.Handcrafted.Round(time.Microsecond).String(),
			fmt.Sprintf("%+.1f%%", r.OverheadPct))
	}
	t.Print(w)

	weights := []int{0, 1000, 10000, 100000}
	sweep, err := OverheadVsServiceWeight(iters, weights)
	if err != nil {
		return err
	}
	ts := Table{
		Title:   "E2b — overhead vs per-operation service cost (ablation)",
		Columns: []string{"service CPU work / op", "avg overhead"},
		Notes: []string{
			"the paper's real services made the common path heavy; overhead converges toward the ~17% regime as service weight grows",
		},
	}
	for _, wgt := range weights {
		ts.AddRow(fmt.Sprintf("%d", wgt), fmt.Sprintf("%+.1f%%", sweep[wgt]))
	}
	ts.Print(w)
	return nil
}
