package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/mddsm/mddsm/internal/baseline"
	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/controller"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// Relay simulates the transfer resource of the §VII-B adaptability
// scenario: a primary path whose latency degrades badly under load, and a
// backup path with a stable, moderate latency. Latencies are charged in
// virtual time.
type Relay struct {
	clock    *simtime.VirtualClock
	degraded bool

	// virtual latencies per delivery
	primaryNormal   time.Duration
	primaryDegraded time.Duration
	backup          time.Duration
}

// NewRelay builds the relay with the paper-shaped latencies: the task that
// takes ~4000 virtual ms on the fixed path completes in ~800 virtual ms
// when the middleware adapts (10 deliveries: 10×400 ms vs 10×80 ms).
func NewRelay(clock *simtime.VirtualClock) *Relay {
	return &Relay{
		clock:           clock,
		primaryNormal:   40 * time.Millisecond,
		primaryDegraded: 400 * time.Millisecond,
		backup:          80 * time.Millisecond,
	}
}

// SetDegraded toggles primary-path degradation.
func (r *Relay) SetDegraded(v bool) { r.degraded = v }

// Execute implements broker.Adapter.
func (r *Relay) Execute(cmd script.Command) error {
	switch cmd.Op {
	case "relayPrimary":
		if r.degraded {
			r.clock.Sleep(r.primaryDegraded)
		} else {
			r.clock.Sleep(r.primaryNormal)
		}
		return nil
	case "relayBackup":
		r.clock.Sleep(r.backup)
		return nil
	default:
		return fmt.Errorf("relay: unknown op %q", cmd.Op)
	}
}

// transferRepo builds the DSK for the transfer domain: the deliver goal has
// a primary-path and a backup-path realisation.
func transferRepo() *registry.Repository {
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "xfer.deliver", Domain: "xfer", Category: dsc.Operation})
	repo := registry.NewRepository(tx)
	repo.MustAdd(&registry.Procedure{
		ID: "deliverPrimary", ClassifiedBy: "xfer.deliver",
		Cost: 0.5, Reliability: 0.99,
		Tags: map[string]string{"path": "primary"},
		Unit: eu.NewUnit("deliverPrimary", eu.Invoke("relayPrimary", "{target}")),
	})
	repo.MustAdd(&registry.Procedure{
		ID: "deliverBackup", ClassifiedBy: "xfer.deliver",
		Cost: 0.6, Reliability: 0.995,
		Tags: map[string]string{"path": "backup"},
		Unit: eu.NewUnit("deliverBackup", eu.Invoke("relayBackup", "{target}")),
	})
	return repo
}

// relayBroker wraps a relay in a minimal pass-through Broker layer.
func relayBroker(r *Relay) *broker.Broker {
	rm := broker.NewResourceManager()
	rm.Register("*", r)
	return broker.New(broker.Config{
		Name: "relay-broker",
		Actions: []*broker.Action{{
			Name: "pass", Ops: []string{"*"}, ForwardArgs: true,
			Steps: []broker.Step{{Op: "{op}", Target: "{target}"}},
		}},
	}, rm, nil)
}

// AdaptiveStack builds the adaptive Controller (classification, policies,
// intent generation) on top of a relay broker with its own virtual clock.
type AdaptiveStack struct {
	Clock      *simtime.VirtualClock
	Relay      *Relay
	Controller *controller.Controller
}

// NewAdaptiveStack assembles the adaptive side of E4.
func NewAdaptiveStack() *AdaptiveStack {
	clock := simtime.NewVirtual()
	relay := NewRelay(clock)
	ctl := controller.New(controller.Config{
		Name:       "adaptive",
		Classes:    []controller.CommandClass{{Op: "deliver", GoalDSC: "xfer.deliver"}},
		Repository: transferRepo(),
		Policies: []policy.Policy{
			// When the environment degrades, prefer the backup path.
			policy.Rule("degradedPath", 10, "degraded",
				policy.Effect{Key: "preferTag", Value: "path=backup"}),
		},
		Clock: clock,
	}, relayBroker(relay), nil)
	return &AdaptiveStack{Clock: clock, Relay: relay, Controller: ctl}
}

// NonAdaptiveStack builds the fixed-wiring comparator on its own clock.
type NonAdaptiveStack struct {
	Clock      *simtime.VirtualClock
	Relay      *Relay
	Controller *baseline.NonAdaptiveController
}

// NewNonAdaptiveStack assembles the non-adaptive side of E4.
func NewNonAdaptiveStack() *NonAdaptiveStack {
	clock := simtime.NewVirtual()
	relay := NewRelay(clock)
	ctl := baseline.NewNonAdaptiveController(relayBroker(relay), []baseline.FixedRoute{
		{Op: "deliver", Calls: []script.Command{script.NewCommand("relayPrimary", "{target}")}},
	})
	return &NonAdaptiveStack{Clock: clock, Relay: relay, Controller: ctl}
}

// E4Result is one condition of the comparison.
type E4Result struct {
	Condition   string
	Adaptive    time.Duration // virtual response time for the task
	NonAdaptive time.Duration
	Speedup     float64 // non-adaptive / adaptive
}

// commandProcessor abstracts the two controllers for the task driver.
type commandProcessor interface {
	Process(cmd script.Command) error
}

// runTask issues n deliver commands and returns the virtual elapsed time.
func runTask(p commandProcessor, clock *simtime.VirtualClock, n int) (time.Duration, error) {
	start := clock.Now()
	for i := 0; i < n; i++ {
		cmd := script.NewCommand("deliver", fmt.Sprintf("pkt:%d", i))
		if err := p.Process(cmd); err != nil {
			return 0, err
		}
	}
	return clock.Since(start), nil
}

// MeasureE4 runs the task (deliveries per condition) under normal and
// degraded conditions on both controllers.
func MeasureE4(deliveries int) ([]E4Result, error) {
	if deliveries <= 0 {
		deliveries = 10
	}
	conditions := []struct {
		name     string
		degraded bool
	}{
		{"normal", false},
		{"primary-degraded", true},
	}
	var out []E4Result
	for _, cond := range conditions {
		ad := NewAdaptiveStack()
		ad.Relay.SetDegraded(cond.degraded)
		ad.Controller.Context().Set("degraded", cond.degraded)
		adTime, err := runTask(ad.Controller, ad.Clock, deliveries)
		if err != nil {
			return nil, fmt.Errorf("e4 %s adaptive: %w", cond.name, err)
		}
		na := NewNonAdaptiveStack()
		na.Relay.SetDegraded(cond.degraded)
		naTime, err := runTask(na.Controller, na.Clock, deliveries)
		if err != nil {
			return nil, fmt.Errorf("e4 %s non-adaptive: %w", cond.name, err)
		}
		r := E4Result{Condition: cond.name, Adaptive: adTime, NonAdaptive: naTime}
		if adTime > 0 {
			r.Speedup = float64(naTime) / float64(adTime)
		}
		out = append(out, r)
	}
	return out, nil
}

// ReportE4 prints the E4 table.
func ReportE4(w io.Writer) error {
	results, err := MeasureE4(10)
	if err != nil {
		return err
	}
	t := Table{
		Title:   "E4 — adaptive vs non-adaptive Controller, virtual response time (paper §VII-B)",
		Columns: []string{"condition", "adaptive", "non-adaptive", "speedup"},
		Notes: []string{
			"paper claim: where adaptability pays off, ~order-of-magnitude improvement (≈800 ms vs ≈4000 ms)",
			"paper claim: on static tasks the adaptive Controller is measurably slower (see BenchmarkAblationCase1VsCase2 for CPU overhead)",
		},
	}
	for _, r := range results {
		t.AddRow(r.Condition,
			simtime.FormatMillis(r.Adaptive),
			simtime.FormatMillis(r.NonAdaptive),
			fmt.Sprintf("%.1fx", r.Speedup))
	}
	t.Print(w)
	return nil
}
