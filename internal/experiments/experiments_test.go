package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/script"
)

func TestE1AllScenariosEquivalent(t *testing.T) {
	results, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("8 scenarios expected, got %d", len(results))
	}
	for _, r := range results {
		if !r.Equal {
			t.Errorf("scenario %s diverges at %d: model-based %q vs handcrafted %q",
				r.Scenario, r.DiffIndex, r.DiffA, r.DiffB)
		}
		if r.Commands == 0 {
			t.Errorf("scenario %s recorded no commands", r.Scenario)
		}
	}
}

func TestE2ModelBasedIsSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	results, err := MeasureE2(20)
	if err != nil {
		t.Fatal(err)
	}
	avg := AverageOverhead(results)
	// The paper reports ~17% average overhead; the shape requirement is
	// that the model-based broker is slower on average.
	if avg <= 0 {
		t.Errorf("model-based broker should be slower on average, got %.1f%%", avg)
	}
	t.Logf("average model-based overhead: %.1f%% (paper: ~17%%)", avg)
}

func TestE3Amortisation(t *testing.T) {
	repo, goal := BuildRepo(100)
	if repo.Len() != 100 {
		t.Fatalf("repo size: %d", repo.Len())
	}
	if goal != "x.goal" {
		t.Fatalf("goal: %s", goal)
	}
	cold, size, err := ColdCycle(100)
	if err != nil {
		t.Fatal(err)
	}
	if size < 3 {
		t.Errorf("generated model suspiciously small: %d nodes", size)
	}
	// Paper bound: the full generation cycle completes in under 120 ms.
	if cold > 120*time.Millisecond {
		t.Errorf("cold cycle %v exceeds the paper's 120 ms bound", cold)
	}
	points, err := MeasureE3(100, []int{1, 100, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points: %v", points)
	}
	// Amortisation: the average must drop sharply as cycles accumulate
	// (paper: approaches ~1 ms by 100000 cycles; ours is far below).
	if points[2].AvgMs >= points[0].AvgMs {
		t.Errorf("no amortisation: %v", points)
	}
	if points[2].AvgMs > 1.0 {
		t.Errorf("amortised average %.4f ms exceeds the paper's ~1 ms asymptote", points[2].AvgMs)
	}
}

func TestE4AdaptationShape(t *testing.T) {
	results, err := MeasureE4(10)
	if err != nil {
		t.Fatal(err)
	}
	byCond := map[string]E4Result{}
	for _, r := range results {
		byCond[r.Condition] = r
	}
	deg := byCond["primary-degraded"]
	// Paper shape: ~4000 ms fixed vs ~800 ms adaptive.
	if deg.NonAdaptive != 4000*time.Millisecond {
		t.Errorf("non-adaptive degraded time: %v (want 4000ms)", deg.NonAdaptive)
	}
	if deg.Adaptive < 800*time.Millisecond || deg.Adaptive > 810*time.Millisecond {
		t.Errorf("adaptive degraded time: %v (want ~800ms + generation costs)", deg.Adaptive)
	}
	if deg.Speedup < 4.5 {
		t.Errorf("speedup %.1fx below the order-of-magnitude shape", deg.Speedup)
	}
	norm := byCond["normal"]
	// Under normal conditions both use the primary path; the adaptive side
	// additionally charges its procedure costs, so it is slightly slower
	// in virtual time as well.
	if norm.Adaptive < norm.NonAdaptive {
		t.Errorf("normal condition: adaptive %v should not beat non-adaptive %v",
			norm.Adaptive, norm.NonAdaptive)
	}
}

func TestE5Footprint(t *testing.T) {
	root, err := FindRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureE5(root)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoupledLoC == 0 || res.SeparatedLoC == 0 {
		t.Fatalf("zero counts: %+v", res)
	}
	t.Logf("coupled %d LoC, separated %d LoC, reduction %.1f%%",
		res.CoupledLoC, res.SeparatedLoC, res.ReductionPct)
}

func TestE6AllDomains(t *testing.T) {
	for _, r := range RunE6() {
		if !r.Succeeded {
			t.Errorf("%s (%s): %s", r.Domain, r.Platform, r.Err)
		}
	}
}

func TestReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var buf bytes.Buffer
	if err := ReportE1(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReportE3(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReportE4(&buf); err != nil {
		t.Fatal(err)
	}
	root, err := FindRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if err := ReportE5(&buf, root); err != nil {
		t.Fatal(err)
	}
	if err := ReportE6(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E1 —", "E3 —", "E4 —", "E5 —", "E6 —"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in reports", want)
		}
	}
}

func TestBuildRepoSizes(t *testing.T) {
	for _, n := range []int{13, 50, 100, 250} {
		repo, goal := BuildRepo(n)
		if repo.Len() != n {
			t.Errorf("BuildRepo(%d) built %d procedures", n, repo.Len())
		}
		if len(repo.CandidatesFor(goal)) == 0 {
			t.Errorf("BuildRepo(%d): no goal candidates", n)
		}
	}
	// Floor clamps tiny sizes.
	repo, _ := BuildRepo(1)
	if repo.Len() < 13 {
		t.Errorf("floor: %d", repo.Len())
	}
}

func TestTablePrint(t *testing.T) {
	tab := Table{Title: "T", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("xxx", "y")
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "xxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRelayErrors(t *testing.T) {
	s := NewAdaptiveStack()
	if err := s.Relay.Execute(scriptCommand("mystery", "x")); err == nil {
		t.Error("unknown relay op must fail")
	}
}

// scriptCommand builds a command for relay tests.
func scriptCommand(op, target string) script.Command {
	return script.NewCommand(op, target)
}

func TestOverheadSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sweep, err := OverheadVsServiceWeight(2, []int{0, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 {
		t.Fatalf("sweep: %v", sweep)
	}
	// Heavier service work dilutes the middleware's relative overhead.
	if sweep[10000] >= sweep[0] {
		t.Logf("warning: dilution not observed at tiny iteration counts: %v", sweep)
	}
}

func TestReportE2Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	var buf bytes.Buffer
	if err := ReportE2(&buf, 2); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E2 —", "E2b —"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestMeasureObs(t *testing.T) {
	phases, o, err := MeasureObs()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, p := range phases {
		got[p.Phase] = p.Total
	}
	// Every engine phase of the submission+recovery cycle must have
	// recorded spans.
	for _, phase := range []string{"ui", "synthesis", "controller", "eu", "broker", "resource"} {
		if got[phase] == 0 {
			t.Errorf("phase %q recorded no spans (%v)", phase, got)
		}
	}
	if o.MetricsOf().CounterValue("ui.submits") == 0 {
		t.Error("ui.submits counter is zero")
	}
	var buf bytes.Buffer
	if err := ReportObs(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "per-phase span counts") {
		t.Error("report missing title")
	}
}
