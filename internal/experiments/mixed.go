package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/domgen"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/serve"
)

// The mixed-workload soak: hundreds of heterogeneous tenant platforms —
// the four hand-built bundles plus a deterministic fleet of generated
// synthetic domains (internal/domgen) — run concurrently in one
// mddsm-serve host under skewed event load, seeded fault injection and
// mid-run evict/rehydrate churn. The run asserts the PR-3/PR-4 exact
// accounting invariant per tenant (posted = delivered + failures +
// dead-lettered + dropped) and reports the per-bundle ledgers.
// mddsm-bench -e mixed prints the table; -json writes BENCH_mixed.json.

// MixedConfig parameterises one mixed-workload run. The zero value
// selects the canonical benchmark shape (DefaultMixedConfig).
type MixedConfig struct {
	// Seed drives tenant mix, load skew, round ordering and churn.
	Seed int64
	// Tenants is the total tenant count (hand-built + synthetic).
	Tenants int
	// SyntheticBundles is the size of the generated domain fleet.
	SyntheticBundles int
	// MaxResident caps live platforms; tenants beyond it churn through
	// evict/rehydrate.
	MaxResident int
	// EventsPerTenantMean is the mean per-tenant event budget; the skew
	// spreads actual budgets from ~mean/4 to ~3×mean.
	EventsPerTenantMean int
	// Rounds splits every tenant's budget into that many bursts, with
	// churn (forced evictions) between rounds.
	Rounds int
	// ChurnFraction is the fraction of tenants force-evicted between
	// rounds (picked deterministically from the run's rng).
	ChurnFraction float64
	// Faults is the fault.Parse spec armed on every tenant platform. The
	// canonical config arms only pump.post drops: those draw randomness
	// on the (single) driver goroutine, so all counters stay
	// byte-deterministic. Soak tests layer broker-side error faults on
	// top, trading byte-for-byte counts for harsher failure paths.
	Faults string
}

// DefaultMixedConfig is the canonical benchmark shape: 120 tenants (a
// quarter hand-built, the rest drawn from 24 generated domains) over 72
// residency slots.
func DefaultMixedConfig() MixedConfig {
	return MixedConfig{
		Seed:                42,
		Tenants:             120,
		SyntheticBundles:    24,
		MaxResident:         72,
		EventsPerTenantMean: 80,
		Rounds:              4,
		ChurnFraction:       0.15,
		Faults:              "seed=42,pump.post:drop:p=0.01",
	}
}

func (c MixedConfig) withDefaults() MixedConfig {
	d := DefaultMixedConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Tenants <= 0 {
		c.Tenants = d.Tenants
	}
	if c.SyntheticBundles <= 0 {
		c.SyntheticBundles = d.SyntheticBundles
	}
	if c.MaxResident <= 0 {
		c.MaxResident = d.MaxResident
	}
	if c.EventsPerTenantMean <= 0 {
		c.EventsPerTenantMean = d.EventsPerTenantMean
	}
	if c.Rounds <= 0 {
		c.Rounds = d.Rounds
	}
	if c.ChurnFraction < 0 {
		c.ChurnFraction = 0
	}
	// The canonical fault profile arms only the admission-path drop site
	// (deterministic counters; see the Faults field doc). "none" opts out
	// of injection entirely.
	if c.Faults == "" {
		c.Faults = fmt.Sprintf("seed=%d,pump.post:drop:p=0.01", c.Seed)
	}
	if c.Faults == "none" {
		c.Faults = ""
	}
	return c
}

// builtinMix cycles the hand-built bundles through every fourth tenant,
// with an event each accepts (unmatched events are delivered no-ops, so
// any name keeps the ledgers exact; these exercise real event actions).
var builtinMix = []struct{ bundle, event string }{
	{"cml", "mediaFailure"},
	{"mgrid", "telemetry"},
	{"smartspace", "motion"},
	{"csense", "tick"},
}

// MixedBundleRow aggregates the tenant ledgers of one bundle.
type MixedBundleRow struct {
	Bundle       string `json:"bundle"`
	Kind         string `json:"kind"` // "builtin" | "synthetic"
	Tenants      int    `json:"tenants"`
	Posted       int64  `json:"posted"`
	Delivered    int64  `json:"delivered"`
	Failures     int64  `json:"failures"`
	DeadLettered int64  `json:"deadlettered"`
	Dropped      int64  `json:"dropped"`
	Rejected     int64  `json:"rejected"`
}

// MixedReport is the machine-readable record of one mixed-workload run.
// Every field except the two wall-clock ones (EventsPerSec, WallNs) is a
// pure function of the config — CanonicalJSON zeroes those two, and the
// remaining bytes are the determinism witness CI compares.
type MixedReport struct {
	Seed             int64            `json:"seed"`
	Tenants          int              `json:"tenants"`
	SyntheticBundles int              `json:"synthetic_bundles"`
	MaxResident      int              `json:"max_resident"`
	Rounds           int              `json:"rounds"`
	Faults           string           `json:"faults"`
	Events           int64            `json:"events"`   // post attempts
	Accepted         int64            `json:"accepted"` // admitted into pumps
	Rejected         int64            `json:"rejected"` // refused at admission
	Evictions        int64            `json:"evictions"`
	Rehydrations     int64            `json:"rehydrations"`
	Throttled        int64            `json:"throttled"`
	AccountingExact  bool             `json:"accounting_exact"`
	Bundles          []MixedBundleRow `json:"bundles"`
	EventsPerSec     float64          `json:"events_per_sec"`
	WallNs           int64            `json:"wall_ns"`

	// PerTenant is the raw ledger per tenant, for tests; it is not part
	// of the serialised report.
	PerTenant map[string]serve.Accounting `json:"-"`
}

// CanonicalJSON serialises the report with the wall-clock-dependent
// fields zeroed: two runs at the same config must produce identical
// bytes.
func (r *MixedReport) CanonicalJSON() ([]byte, error) {
	c := *r
	c.EventsPerSec = 0
	c.WallNs = 0
	data, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// mixedTenant is the driver's view of one tenant: its bundle, its event
// source and its budget.
type mixedTenant struct {
	name     string
	bundle   string
	kind     string
	dom      *domgen.Domain // nil for builtins
	event    string         // builtin event name
	budget   int
	accepted int64
	rejected int64
	posted   int // events posted so far (event-sequence cursor)
}

// syntheticFleet registers cfg.SyntheticBundles generated domains whose
// specs sweep the generator's parameter space deterministically from the
// run seed.
func syntheticFleet(cfg MixedConfig) ([]*domgen.Domain, error) {
	shapes := []string{domgen.ShapeLoop, domgen.ShapeRing, domgen.ShapeStar}
	fleet := make([]*domgen.Domain, 0, cfg.SyntheticBundles)
	for i := 0; i < cfg.SyntheticBundles; i++ {
		spec := domgen.Spec{
			Name:           fmt.Sprintf("mix%d-%d", cfg.Seed, i),
			Seed:           cfg.Seed*1000 + int64(i),
			Classes:        1 + i%8,
			Depth:          i % 4,
			AttrsPerClass:  1 + i%6,
			Enums:          i % 3,
			EnumLiterals:   2 + i%3,
			LTSStates:      1 + i%6,
			LTSShape:       shapes[i%len(shapes)],
			LTSDensity:     float64(i%5) / 4,
			EventTypes:     1 + i%8,
			InitialObjects: 2 + 2*(i%8),
		}
		d, err := domgen.Register(spec)
		if err != nil {
			return nil, fmt.Errorf("mixed: synthetic bundle %d: %w", i, err)
		}
		fleet = append(fleet, d)
	}
	return fleet, nil
}

// MeasureMixed runs the mixed workload and returns its report. All
// decisions (tenant mix, skew, round order, churn victims) derive from
// cfg.Seed, so two runs at the same config agree on every counter.
func MeasureMixed(cfg MixedConfig) (*MixedReport, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	fleet, err := syntheticFleet(cfg)
	if err != nil {
		return nil, err
	}

	var inj *fault.Injector
	if cfg.Faults != "" {
		inj, err = fault.Parse(cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("mixed: faults: %w", err)
		}
	}
	srvObs := obs.New()
	if inj != nil {
		inj.BindMetrics(srvObs.MetricsOf())
	}
	s := serve.NewServer(serve.Config{
		MaxResident: cfg.MaxResident,
		Quota:       serve.Quota{Runtime: runtime.Config{PumpShards: 2}},
		Obs:         srvObs,
		Injector:    inj,
	})
	defer s.Close()

	// Tenant mix: every fourth tenant is hand-built, the rest cycle the
	// synthetic fleet. The skewed budgets spread load from light sensors
	// to chatty hubs around the configured mean.
	tenants := make([]*mixedTenant, cfg.Tenants)
	weights := make([]int, cfg.Tenants)
	sumW := 0
	for i := range weights {
		weights[i] = 1 + rng.Intn(12) // skew ≈ [mean/6.5, 12×mean/6.5]
		sumW += weights[i]
	}
	totalBudget := cfg.EventsPerTenantMean * cfg.Tenants
	synthSeq := 0
	for i := range tenants {
		mt := &mixedTenant{name: fmt.Sprintf("t%03d", i)}
		if i%4 == 0 {
			b := builtinMix[(i/4)%len(builtinMix)]
			mt.bundle, mt.kind, mt.event = b.bundle, "builtin", b.event
		} else {
			// Round-robin over the whole fleet by synthetic ordinal (not
			// tenant index), so every generated bundle hosts tenants.
			d := fleet[synthSeq%len(fleet)]
			synthSeq++
			mt.bundle, mt.kind, mt.dom = d.Name, "synthetic", d
		}
		mt.budget = totalBudget * weights[i] / sumW
		tenants[i] = mt
		if err := s.Create(mt.name, mt.bundle); err != nil {
			return nil, fmt.Errorf("mixed: create %s (%s): %w", mt.name, mt.bundle, err)
		}
		if mt.dom != nil {
			// Injected faults may surface through the synchronous submit
			// path (synthesis → controller → broker steps run inline);
			// that is chaos doing its job, not a driver error.
			if _, err := s.SubmitModel(mt.name, mt.dom.Initial()); err != nil && !errors.Is(err, fault.ErrInjected) {
				return nil, fmt.Errorf("mixed: submit %s: %w", mt.name, err)
			}
		}
	}

	start := time.Now()
	var attempts, accepted, rejected int64
	order := make([]int, cfg.Tenants)
	for i := range order {
		order[i] = i
	}
	for round := 0; round < cfg.Rounds; round++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ti := range order {
			mt := tenants[ti]
			burst := mt.budget / cfg.Rounds
			if round == cfg.Rounds-1 {
				burst = mt.budget - (cfg.Rounds-1)*(mt.budget/cfg.Rounds)
			}
			for k := 0; k < burst; k++ {
				ev := mt.nextEvent()
				attempts++
				if err := s.PostEvent(mt.name, ev); err != nil {
					mt.rejected++
					rejected++
					continue
				}
				mt.accepted++
				accepted++
			}
		}
		// Mid-run churn: force-evict a deterministic slice of the fleet.
		// Evicting drains and checkpoints; the next post rehydrates.
		if round < cfg.Rounds-1 && cfg.ChurnFraction > 0 {
			for _, mt := range tenants {
				if rng.Float64() < cfg.ChurnFraction {
					_ = s.Evict(mt.name) // already-parked tenants refuse; fine
				}
			}
		}
	}

	// Final quiesce: evict everything resident. Evict stops the platform
	// with a full drain, so every tenant ledger is settled before we read
	// it (the obs bundle is parked alongside the snapshot).
	for _, mt := range tenants {
		_ = s.Evict(mt.name)
	}
	wall := time.Since(start)

	rep := &MixedReport{
		Seed:             cfg.Seed,
		Tenants:          cfg.Tenants,
		SyntheticBundles: cfg.SyntheticBundles,
		MaxResident:      cfg.MaxResident,
		Rounds:           cfg.Rounds,
		Faults:           cfg.Faults,
		Events:           attempts,
		Accepted:         accepted,
		Rejected:         rejected,
		AccountingExact:  true,
		EventsPerSec:     float64(accepted) / wall.Seconds(),
		WallNs:           wall.Nanoseconds(),
		PerTenant:        make(map[string]serve.Accounting, cfg.Tenants),
	}
	rows := make(map[string]*MixedBundleRow)
	for _, mt := range tenants {
		a, err := s.Accounting(mt.name)
		if err != nil {
			return nil, fmt.Errorf("mixed: accounting %s: %w", mt.name, err)
		}
		rep.PerTenant[mt.name] = a
		if !a.Exact() {
			rep.AccountingExact = false
		}
		if a.Posted != mt.accepted {
			return nil, fmt.Errorf("mixed: tenant %s: driver accepted %d but pump posted %d",
				mt.name, mt.accepted, a.Posted)
		}
		row, ok := rows[mt.bundle]
		if !ok {
			row = &MixedBundleRow{Bundle: mt.bundle, Kind: mt.kind}
			rows[mt.bundle] = row
		}
		row.Tenants++
		row.Posted += a.Posted
		row.Delivered += a.Delivered
		row.Failures += a.Failures
		row.DeadLettered += a.DeadLettered
		row.Dropped += a.Dropped
		row.Rejected += a.Rejected
	}
	for _, row := range rows {
		rep.Bundles = append(rep.Bundles, *row)
	}
	sort.Slice(rep.Bundles, func(i, j int) bool { return rep.Bundles[i].Bundle < rep.Bundles[j].Bundle })

	m := srvObs.MetricsOf()
	rep.Evictions = m.CounterValue(obs.MServeEvictions)
	rep.Rehydrations = m.CounterValue(obs.MServeRehydrations)
	rep.Throttled = m.CounterValue(obs.MServeThrottled)
	return rep, nil
}

// nextEvent produces the tenant's next deterministic event.
func (mt *mixedTenant) nextEvent() broker.Event {
	i := mt.posted
	mt.posted++
	if mt.dom != nil {
		return mt.dom.Event(i)
	}
	return broker.Event{Name: mt.event, Attrs: map[string]any{
		"key": fmt.Sprintf("k%d", i%8),
		"seq": i,
	}}
}

// ReportMixed runs the canonical mixed workload, prints the per-bundle
// table and, when jsonPath is non-empty, writes the machine-readable
// record (BENCH_mixed.json) there.
func ReportMixed(w io.Writer, jsonPath string) error {
	rep, err := MeasureMixed(MixedConfig{})
	if err != nil {
		return err
	}
	t := &Table{
		Title: fmt.Sprintf("Mixed — %d heterogeneous tenants (%d synthetic bundles, %d resident slots, seed %d)",
			rep.Tenants, rep.SyntheticBundles, rep.MaxResident, rep.Seed),
		Columns: []string{"bundle", "kind", "tenants", "posted", "delivered", "failures", "dlq", "dropped", "rejected"},
	}
	for _, row := range rep.Bundles {
		t.AddRow(row.Bundle, row.Kind,
			fmt.Sprintf("%d", row.Tenants),
			fmt.Sprintf("%d", row.Posted),
			fmt.Sprintf("%d", row.Delivered),
			fmt.Sprintf("%d", row.Failures),
			fmt.Sprintf("%d", row.DeadLettered),
			fmt.Sprintf("%d", row.Dropped),
			fmt.Sprintf("%d", row.Rejected))
	}
	exact := "holds for every tenant"
	if !rep.AccountingExact {
		exact = "VIOLATED"
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("exact accounting (posted = delivered + failures + dlq + dropped): %s", exact),
		fmt.Sprintf("faults %q; churn: %d evictions, %d rehydrations, %d throttles",
			rep.Faults, rep.Evictions, rep.Rehydrations, rep.Throttled),
		fmt.Sprintf("%d/%d events admitted at %.0f events/sec (wall %s, drain included)",
			rep.Accepted, rep.Events, rep.EventsPerSec, time.Duration(rep.WallNs)))
	t.Print(w)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
