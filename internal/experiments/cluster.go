package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand"
	"os"
	"sort"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/cluster"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/serve"
)

// The clustered-broker benchmark: N mddsm-serve nodes joined into one
// logical broker over loopback TCP, measured for admission latency and
// throughput when entry node and owning node differ, plus the cost of one
// live migration and of a full node-kill failover. mddsm-bench prints the
// table and, with -json, writes BENCH_cluster.json for CI and
// EXPERIMENTS.md to track.

// clusterScales are the node counts the benchmark steps through.
var clusterScales = []int{2, 3, 5}

const (
	clusterTenants         = 12
	clusterEventsPerTenant = 150
	clusterSeed            = 42
)

// ClusterScaleResult is one scale step: a cluster of Nodes members under
// cross-node event load.
type ClusterScaleResult struct {
	Nodes           int     `json:"nodes"`
	Tenants         int     `json:"tenants"`
	Events          int     `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	P50Ns           int64   `json:"post_p50_ns"`
	P99Ns           int64   `json:"post_p99_ns"`
	Forwarded       int64   `json:"forwarded"`
	ForwardedFrac   float64 `json:"forwarded_frac"`
	MigrationNs     int64   `json:"migration_ns"`
	FailoverNs      int64   `json:"failover_ns"`
	Adoptions       int64   `json:"adoptions"`
	AccountingExact bool    `json:"accounting_exact"`
}

// ClusterReport is the full machine-readable record.
type ClusterReport struct {
	Seed            int64                `json:"seed"`
	Tenants         int                  `json:"tenants"`
	EventsPerTenant int                  `json:"events_per_tenant"`
	Scales          []ClusterScaleResult `json:"scales"`
}

// benchRouter defers routing to a Node created after the wire server (the
// node needs every peer's bound address).
type benchRouter struct{ n *cluster.Node }

func (r *benchRouter) Route(tenant string) (remote.Endpoint, error) {
	if r.n == nil {
		return nil, fmt.Errorf("node not ready")
	}
	return r.n.Route(tenant)
}

func (r *benchRouter) Control(verb, tenant string, args map[string]any) (map[string]any, error) {
	if r.n == nil {
		return nil, fmt.Errorf("node not ready")
	}
	return r.n.Control(verb, tenant, args)
}

type benchMember struct {
	id   string
	srv  *serve.Server
	node *cluster.Node
	wire *remote.Server
	obs  *obs.Obs
}

func (m *benchMember) kill() {
	m.wire.Close()
	m.node.Close()
	m.srv.Close()
}

func startBenchCluster(count int, seed int64) ([]*benchMember, error) {
	routers := make([]*benchRouter, count)
	members := make([]*benchMember, count)
	peers := make([]cluster.Peer, count)
	for i := range members {
		routers[i] = &benchRouter{}
		wire, err := remote.NewRouterServer(routers[i], "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("n%d", i)
		peers[i] = cluster.Peer{ID: id, Addr: wire.Addr()}
		members[i] = &benchMember{id: id, wire: wire}
	}
	for i := range members {
		o := obs.New()
		srv := serve.NewServer(serve.Config{Obs: o})
		node, err := cluster.New(srv, cluster.Config{
			NodeID:       members[i].id,
			Peers:        peers,
			SuspectAfter: 2,
			Seed:         seed + int64(i),
			Obs:          o,
		})
		if err != nil {
			return nil, err
		}
		members[i].srv, members[i].node, members[i].obs = srv, node, o
		routers[i].n = node
	}
	for _, m := range members {
		m.node.Tick()
	}
	return members, nil
}

func drainBenchForwards(members []*benchMember) error {
	for i := 0; i < 200; i++ {
		busy := false
		for _, m := range members {
			m.node.RedeliverForwards()
			m.node.Flush()
			if m.node.Pending() > 0 || len(m.node.DeadForwards()) > 0 {
				busy = true
			}
		}
		if !busy {
			return nil
		}
		for _, m := range members {
			m.node.Tick()
		}
	}
	return fmt.Errorf("cluster bench: forward queues never drained")
}

// measureClusterScale runs one node-count step.
func measureClusterScale(nodes int) (ClusterScaleResult, error) {
	res := ClusterScaleResult{Nodes: nodes, Tenants: clusterTenants}
	members, err := startBenchCluster(nodes, clusterSeed)
	if err != nil {
		return res, err
	}
	closed := false
	defer func() {
		if !closed {
			for _, m := range members {
				m.kill()
			}
		}
	}()

	tenants := make([]string, clusterTenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("t%03d", i)
		if _, err := members[0].node.Control("create", tenants[i], map[string]any{"bundle": "cml"}); err != nil {
			return res, err
		}
	}

	// Cross-node load: every event enters through a random member, so a
	// (nodes-1)/nodes fraction of posts must cross the wire to its owner.
	rnd := mrand.New(mrand.NewSource(clusterSeed))
	total := clusterTenants * clusterEventsPerTenant
	lat := make([]time.Duration, 0, total)
	ev := broker.Event{Name: "telemetry", Attrs: map[string]any{"load": 1.0}}
	start := time.Now()
	for i := 0; i < clusterEventsPerTenant; i++ {
		for _, name := range tenants {
			entry := members[rnd.Intn(len(members))]
			t0 := time.Now()
			if err := entry.node.PostEvent(name, ev); err != nil {
				return res, fmt.Errorf("cluster bench: %d nodes: %w", nodes, err)
			}
			lat = append(lat, time.Since(t0))
		}
	}
	if err := drainBenchForwards(members); err != nil {
		return res, err
	}
	wall := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.Events = total
	res.EventsPerSec = float64(total) / wall.Seconds()
	res.P50Ns = percentile(lat, 0.50)
	res.P99Ns = percentile(lat, 0.99)
	for _, m := range members {
		res.Forwarded += m.obs.MetricsOf().CounterValue(obs.MClusterForwardsSent)
	}
	res.ForwardedFrac = float64(res.Forwarded) / float64(total)

	// One live migration: quiesce -> transfer -> re-route, timed
	// end-to-end from the source node.
	mig := tenants[0]
	src, dst := members[0], members[1]
	if owner := members[0].node.Owner(mig); owner != src.id {
		for _, m := range members {
			if m.id == owner {
				src = m
			}
		}
		dst = members[0]
	}
	t0 := time.Now()
	if err := src.node.Migrate(mig, dst.id); err != nil {
		return res, fmt.Errorf("cluster bench: migrate: %w", err)
	}
	res.MigrationNs = time.Since(t0).Nanoseconds()

	// Failover: replicate everything, kill one member, time until every
	// tenant is adopted and reachable on the survivors.
	for _, m := range members {
		if err := m.node.ReplicateAll(); err != nil {
			return res, err
		}
	}
	victim := members[len(members)-1]
	if victim == dst { // keep the freshly migrated tenant's home alive
		victim = members[len(members)-2]
	}
	survivors := make([]*benchMember, 0, len(members)-1)
	for _, m := range members {
		if m != victim {
			survivors = append(survivors, m)
		}
	}
	t0 = time.Now()
	victim.kill()
	for i := 0; ; i++ {
		for _, m := range survivors {
			m.node.Tick()
		}
		hosted := 0
		for _, m := range survivors {
			hosted += len(m.srv.Tenants())
		}
		if hosted == clusterTenants {
			break
		}
		if i > 200 {
			return res, fmt.Errorf("cluster bench: failover never completed (%d/%d tenants hosted)", hosted, clusterTenants)
		}
	}
	res.FailoverNs = time.Since(t0).Nanoseconds()
	for _, m := range survivors {
		res.Adoptions += m.obs.MetricsOf().CounterValue(obs.MClusterAdoptions)
	}

	// Cluster-wide exact accounting after the full life-cycle: every post
	// is delivered, failed, dead-lettered, or dropped exactly once.
	res.AccountingExact = true
	var posted int64
	for _, name := range tenants {
		var home *benchMember
		for _, m := range survivors {
			for _, hosted := range m.srv.Tenants() {
				if hosted == name {
					home = m
				}
			}
		}
		if home == nil {
			res.AccountingExact = false
			continue
		}
		_ = home.srv.Evict(name) // quiesce for an exact cut; may be parked already
		a, err := home.srv.Accounting(name)
		if err != nil || !a.Exact() {
			res.AccountingExact = false
			continue
		}
		posted += a.Posted
	}
	if posted != int64(total) {
		res.AccountingExact = false
	}

	for _, m := range survivors {
		m.kill()
	}
	closed = true
	return res, nil
}

// MeasureCluster runs the node-count ladder.
func MeasureCluster() (*ClusterReport, error) {
	rep := &ClusterReport{
		Seed:            clusterSeed,
		Tenants:         clusterTenants,
		EventsPerTenant: clusterEventsPerTenant,
	}
	for _, n := range clusterScales {
		res, err := measureClusterScale(n)
		if err != nil {
			return nil, err
		}
		rep.Scales = append(rep.Scales, res)
	}
	return rep, nil
}

// ReportCluster prints the clustered-broker table and, when jsonPath is
// non-empty, writes the machine-readable record there.
func ReportCluster(w io.Writer, jsonPath string) error {
	rep, err := MeasureCluster()
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Cluster — multi-node broker: cross-node delivery, migration, failover",
		Columns: []string{"nodes", "events", "events/sec", "post p50", "post p99", "fwd%", "migration", "failover", "exact"},
	}
	for _, sc := range rep.Scales {
		exact := "yes"
		if !sc.AccountingExact {
			exact = "NO"
		}
		t.AddRow(fmt.Sprintf("%d", sc.Nodes), fmt.Sprintf("%d", sc.Events),
			fmt.Sprintf("%.0f", sc.EventsPerSec),
			time.Duration(sc.P50Ns).String(),
			time.Duration(sc.P99Ns).String(),
			fmt.Sprintf("%.0f%%", sc.ForwardedFrac*100),
			time.Duration(sc.MigrationNs).String(),
			time.Duration(sc.FailoverNs).String(),
			exact)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d tenants, %d events/tenant; every event enters through a random member", rep.Tenants, rep.EventsPerTenant),
		"fwd% = fraction of posts that crossed the wire to the owning node (at-least-once, deduped)",
		"failover = node kill -> death declared -> all tenants adopted from replicas on the survivors",
		"exact = cluster-wide posted = delivered + failures + dead-lettered + dropped after the full life-cycle")
	t.Print(w)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
