// Package broker implements the Broker layer of the MD-DSM reference
// architecture (paper §III, §V-A, Fig. 6). The layer interacts with the
// underlying resources and services for the actual execution of commands.
// Its configuration mirrors the Broker metamodel: a main manager exposing
// the layer interface and dispatching calls and events to actions selected
// by handlers, plus specialised managers for state, policies, autonomic
// behaviour and resource access.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/script"
)

// Fault-point names evaluated by this layer's injector, if one is
// configured.
const (
	// SiteStep fires before each resource-step execution, inside the
	// retry loop so injected transient faults exercise it.
	SiteStep = "broker.step"
	// SiteEvent fires on resource-event ingress; a Drop fault silently
	// discards the event.
	SiteEvent = "broker.event"
)

// Event is a notification flowing through the layer: resource events enter
// from below, and the layer forwards events upward to the Controller.
// Events built by AcquireEvent/PooledEvent carry a pooled attribute map
// that Release recycles after delivery (see pool.go for the ownership
// rules); the zero value of pooled keeps plain literals behaving exactly
// as before.
type Event struct {
	Name   string
	Attrs  map[string]any
	pooled bool
}

// Adapter executes resource commands; the Resource Manager routes broker
// steps to adapters.
type Adapter interface {
	Execute(cmd script.Command) error
}

// AdapterFunc adapts a function to the Adapter interface.
type AdapterFunc func(cmd script.Command) error

var _ Adapter = AdapterFunc(nil)

// Execute implements Adapter.
func (f AdapterFunc) Execute(cmd script.Command) error { return f(cmd) }

// ResourceManager routes resource commands to registered adapters by
// operation name, with "*" as the fallback route.
type ResourceManager struct {
	mu     sync.RWMutex
	routes map[string]Adapter
}

// NewResourceManager returns an empty resource manager.
func NewResourceManager() *ResourceManager {
	return &ResourceManager{routes: make(map[string]Adapter)}
}

// Register binds an operation name (or "*" for the default) to an adapter.
func (rm *ResourceManager) Register(op string, a Adapter) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.routes[op] = a
}

// Execute routes a command to its adapter.
func (rm *ResourceManager) Execute(cmd script.Command) error {
	rm.mu.RLock()
	a, ok := rm.routes[cmd.Op]
	if !ok {
		a, ok = rm.routes["*"]
	}
	rm.mu.RUnlock()
	if !ok {
		return fmt.Errorf("broker: no resource adapter for op %q", cmd.Op)
	}
	return a.Execute(cmd)
}

// Ops returns the registered operation names sorted (for diagnostics).
func (rm *ResourceManager) Ops() []string {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	out := make([]string, 0, len(rm.routes))
	for op := range rm.routes {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// State is the layer's runtime-model store managed by the State Manager.
type State struct {
	mu   sync.RWMutex
	vals map[string]any
}

// NewState returns an empty state store.
func NewState() *State {
	return &State{vals: make(map[string]any)}
}

// Set binds a state entry.
func (s *State) Set(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[key] = v
}

// Get returns a state entry and whether it exists.
func (s *State) Get(key string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vals[key]
	return v, ok
}

// Delete removes a state entry.
func (s *State) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.vals, key)
}

// Keys returns the bound keys sorted.
func (s *State) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.vals))
	for k := range s.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the state as an expression scope.
func (s *State) Snapshot() expr.MapScope {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(expr.MapScope, len(s.vals))
	for k, v := range s.vals {
		out[k] = v
	}
	return out
}

// Step is one resource-command template inside an action. Op, Target and
// Args values may contain {placeholder} holes bound from the triggering
// call's arguments and the layer context.
type Step = script.Template

// Action realises one or more call operations by a sequence of resource
// steps, optionally guarded. Fn is the escape hatch for behaviour that
// cannot be expressed as templates; the model-based configurations built by
// the runtime factory use Steps exclusively.
type Action struct {
	Name  string
	Ops   []string  // call operations this action can realise
	Guard expr.Node // optional enabling condition
	Steps []Step
	// ForwardArgs copies the triggering call's arguments onto every
	// expanded step command (explicit step args win). It makes exact
	// pass-through configurations expressible in the middleware model.
	ForwardArgs bool
	Fn          func(b *Broker, cmd script.Command) error
}

// handles reports whether the action is declared for op.
func (a *Action) handles(op string) bool {
	for _, o := range a.Ops {
		if o == op || o == "*" {
			return true
		}
	}
	return false
}

// EventAction reacts to an event received from the resources: it may
// execute steps and/or forward the event upward.
type EventAction struct {
	Name    string
	Event   string // event name or "*"
	Guard   expr.Node
	Steps   []Step
	Forward bool // propagate to the upper layer after handling
}

// Config assembles a Broker layer. The runtime factory produces a Config
// from a middleware model; handcrafted setups can fill it directly.
type Config struct {
	Name         string
	Actions      []*Action
	EventActions []*EventAction
	Policies     []policy.Policy
	Symptoms     []Symptom
	ChangePlans  []ChangePlan
	// Tracer and Metrics observe the layer; both may be nil (disabled),
	// in which case the call path pays only a nil check.
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
	// Injector evaluates the layer's fault points (SiteStep, SiteEvent);
	// nil disables injection at the cost of a nil check.
	Injector *fault.Injector
	// Resilience configures per-step retry, timeout and per-operation
	// circuit breaking; the zero value disables all three.
	Resilience fault.Resilience
}

// Broker is the live Broker layer. Its call path takes no layer-wide lock:
// the action table is immutable after construction, and the state, context,
// resource and autonomic managers synchronise themselves. Resource adapters
// may therefore synchronously emit events (OnEvent) from within a step
// without deadlocking; such re-entrant events are queued and drained in
// order.
type Broker struct {
	name      string
	state     *State
	context   *policy.Context
	engine    *policy.Engine
	resources *ResourceManager
	actions   []*Action
	events    []*EventAction
	autonomic *Autonomic
	notify    func(Event) // upward event propagation (to Controller)
	funcs     map[string]expr.Func

	tracer            *obs.Tracer
	mCalls            *obs.Counter
	mSteps            *obs.Counter
	mEvents           *obs.Counter
	mPanics           *obs.Counter
	mReentrantDropped *obs.Counter

	injector    *fault.Injector
	retryer     *fault.Retryer
	stepTimeout time.Duration
	breakerCfg  fault.BreakerConfig
	breakerOpts []fault.BreakerOption
	brkMu       sync.Mutex
	breakers    map[string]*fault.Breaker

	evMu     sync.Mutex
	evQueues map[uint64]*evQueue // per-goroutine re-entrancy queues
}

// New builds a Broker from a configuration. resources must carry the
// adapter bindings; notify may be nil for topmost/standalone use.
func New(cfg Config, resources *ResourceManager, notify func(Event)) *Broker {
	b := &Broker{
		name:      cfg.Name,
		state:     NewState(),
		context:   policy.NewContext(),
		engine:    policy.NewEngine(cfg.Policies...),
		resources: resources,
		actions:   cfg.Actions,
		events:    cfg.EventActions,
		notify:    notify,
		funcs:     expr.StdFuncs(),
		tracer:    cfg.Tracer,
		mCalls:    cfg.Metrics.Counter(obs.MBrokerCalls),
		mSteps:    cfg.Metrics.Counter(obs.MBrokerSteps),
		mEvents:   cfg.Metrics.Counter(obs.MBrokerEvents),

		mPanics:           cfg.Metrics.Counter(obs.MPanicsRecovered),
		mReentrantDropped: cfg.Metrics.Counter(obs.MBrokerReentrantDropped),

		injector:    cfg.Injector,
		retryer:     fault.NewRetryer(cfg.Resilience.Retry, fault.RetryMetrics(cfg.Metrics)),
		stepTimeout: cfg.Resilience.StepTimeout,
		breakerCfg:  cfg.Resilience.Breaker,
	}
	if b.breakerCfg.Threshold > 0 {
		b.breakers = make(map[string]*fault.Breaker)
		if cfg.Metrics != nil {
			b.breakerOpts = []fault.BreakerOption{fault.BreakerMetrics(cfg.Metrics)}
		}
	}
	b.autonomic = newAutonomic(b, cfg.Symptoms, cfg.ChangePlans)
	return b
}

// Name returns the layer instance name.
func (b *Broker) Name() string { return b.name }

// State returns the state manager.
func (b *Broker) State() *State { return b.state }

// Context returns the layer's context-variable store.
func (b *Broker) Context() *policy.Context { return b.context }

// Resources returns the resource manager.
func (b *Broker) Resources() *ResourceManager { return b.resources }

// Autonomic returns the autonomic manager.
func (b *Broker) Autonomic() *Autonomic { return b.autonomic }

// Policies returns the layer's policy engine.
func (b *Broker) Policies() *policy.Engine { return b.engine }

// callScope builds the evaluation scope for a call: context variables,
// then op/target/args (args flattened by name, shadowing context).
func (b *Broker) callScope(cmd script.Command) expr.MapScope {
	scope := b.context.Snapshot()
	scope["op"] = cmd.Op
	scope["target"] = cmd.Target
	for k, v := range cmd.Args {
		scope[k] = v
	}
	return scope
}

// Call is the layer interface exposed to the Controller: it selects an
// action for the command via the layer's handlers and executes it.
func (b *Broker) Call(cmd script.Command) error {
	b.mCalls.Inc()
	sp := b.tracer.Start(obs.SpanBrokerCall)
	sp.SetStr("op", cmd.Op)
	defer sp.End()
	scope := b.callScope(cmd)
	action, err := b.selectAction(cmd.Op, scope)
	if err != nil {
		return err
	}
	if action.Fn != nil {
		return action.Fn(b, cmd)
	}
	var forward map[string]any
	if action.ForwardArgs {
		forward = cmd.Args
	}
	return b.runStepsForward(action.Name, action.Steps, scope, forward)
}

// selectAction picks the first declared action handling op whose guard is
// enabled.
func (b *Broker) selectAction(op string, scope expr.MapScope) (*Action, error) {
	for _, a := range b.actions {
		if !a.handles(op) {
			continue
		}
		if a.Guard != nil {
			ok, err := expr.EvalBool(a.Guard, expr.Env{Scope: scope, Funcs: b.funcs})
			if err != nil {
				return nil, fmt.Errorf("broker %s: action %s: guard: %w", b.name, a.Name, err)
			}
			if !ok {
				continue
			}
		}
		return a, nil
	}
	return nil, fmt.Errorf("broker %s: no action for op %q", b.name, op)
}

// runSteps expands and executes an action's resource steps.
func (b *Broker) runSteps(actionName string, steps []Step, scope expr.MapScope) error {
	return b.runStepsForward(actionName, steps, scope, nil)
}

// runStepsForward is runSteps with optional call-argument forwarding.
func (b *Broker) runStepsForward(actionName string, steps []Step, scope expr.MapScope, forward map[string]any) error {
	for i, st := range steps {
		cmd, err := st.Expand(scope)
		if err != nil {
			return fmt.Errorf("broker %s: action %s: step %d: %w", b.name, actionName, i, err)
		}
		for k, v := range forward {
			if _, exists := cmd.Arg(k); !exists {
				cmd = cmd.WithArg(k, v)
			}
		}
		b.mSteps.Inc()
		if err := b.executeStep(cmd); err != nil {
			return fmt.Errorf("broker %s: action %s: step %d: %w", b.name, actionName, i, err)
		}
	}
	return nil
}

// executeStep runs one expanded resource command through the layer's
// resilience stack: the per-operation circuit breaker gates the call,
// transient failures (injected faults, timeouts, adapter errors wrapped
// fault.Transient) are retried per the configured policy, and the final
// outcome feeds the breaker. With a zero Resilience config this reduces to
// a handful of nil checks around the adapter call.
func (b *Broker) executeStep(cmd script.Command) error {
	if b.breakers == nil && b.retryer == nil {
		// No breaker to consult, no retry policy: skip the closure the
		// retryer would otherwise force onto the heap for every step.
		return b.executeOnce(cmd)
	}
	br := b.breakerFor(cmd.Op)
	if err := br.Allow(); err != nil {
		return fmt.Errorf("broker %s: op %q: %w", b.name, cmd.Op, err)
	}
	var err error
	if b.retryer == nil {
		err = b.executeOnce(cmd)
	} else {
		err = b.retryer.Do(func() error { return b.executeOnce(cmd) })
	}
	br.Report(err)
	return err
}

// breakerFor returns the circuit breaker guarding op, creating it on first
// use; nil when breaking is disabled.
func (b *Broker) breakerFor(op string) *fault.Breaker {
	if b.breakers == nil {
		return nil
	}
	b.brkMu.Lock()
	defer b.brkMu.Unlock()
	br, ok := b.breakers[op]
	if !ok {
		br = fault.NewBreaker(b.breakerCfg, b.breakerOpts...)
		b.breakers[op] = br
	}
	return br
}

// OpenBreakers returns the operations whose circuit is currently not
// closed, sorted. Checkpointing records them so a restored platform starts
// with those circuits tripped.
func (b *Broker) OpenBreakers() []string {
	if b.breakers == nil {
		return nil
	}
	b.brkMu.Lock()
	defer b.brkMu.Unlock()
	var out []string
	for op, br := range b.breakers {
		if br.State() != fault.Closed {
			out = append(out, op)
		}
	}
	sort.Strings(out)
	return out
}

// TripBreaker forces the circuit for op open, creating it on first use.
// No-op when circuit breaking is disabled. Restore uses it to reinstate
// breakers that were open when the checkpoint was cut.
func (b *Broker) TripBreaker(op string) {
	b.breakerFor(op).Trip()
}

// executeOnce is one attempt of one resource step: fault point, optional
// timeout bound, and the adapter hop. Without a step timeout the attempt
// runs directly on this goroutine — no closure, no allocation; with one it
// is wrapped for the goroutine WithTimeout runs it on.
func (b *Broker) executeOnce(cmd script.Command) error {
	if err := b.injector.Inject(SiteStep); err != nil {
		return err
	}
	if b.stepTimeout > 0 {
		return fault.WithTimeout(b.stepTimeout, func() error { return b.execAttempt(cmd) })
	}
	return b.execAttempt(cmd)
}

// execAttempt is the adapter hop wrapped in its spans when tracing is
// enabled. A panicking adapter is recovered here — inside the function
// WithTimeout runs on its own goroutine, so the recovery covers that
// goroutine too — and classified as a permanent fault.PanicError, which
// the retryer refuses to retry and the circuit breaker counts as a
// failure.
func (b *Broker) execAttempt(cmd script.Command) (err error) {
	defer func() {
		if r := recover(); r != nil {
			b.mPanics.Inc()
			err = fault.Recovered(SiteStep, r)
		}
	}()
	if b.tracer == nil {
		return b.resources.Execute(cmd)
	}
	step := b.tracer.Start(obs.SpanBrokerStep)
	step.SetStr("op", cmd.Op)
	res := b.tracer.Start(obs.SpanResourceExecute)
	err = b.resources.Execute(cmd)
	res.End()
	step.End()
	return err
}

// OnEvent is the layer's event entry point: resource adapters push events
// here. Re-entrant events — emitted by an action while this goroutine is
// already processing one — join that goroutine's queue rather than recurse,
// preserving arrival order per caller. Distinct goroutines (e.g. the
// runtime's pump shards) process their events concurrently; the downstream
// managers are individually locked. The first processing error is reported
// to the caller that started the goroutine's drain.
//
// A handler panic escaping the drain is recovered and returned as a
// fault.PanicError: the goroutine's queue entry is cleaned up (leaving it
// behind would silently swallow every later event on that goroutine ID) and
// any re-entrant events still queued behind the poisoned one are dropped as
// counted losses ("broker.events.reentrant.dropped").
func (b *Broker) OnEvent(ev Event) (err error) {
	return b.OnEventFrom(obs.GoID(), ev)
}

// OnEventFrom is OnEvent for callers that already know their goroutine ID
// (obs.GoID() of the calling goroutine, nothing else). The runtime's pump
// workers resolve their ID once per worker lifetime instead of paying the
// runtime.Stack parse on every delivery; everyone else goes through
// OnEvent.
func (b *Broker) OnEventFrom(g uint64, ev Event) (err error) {
	if err := b.injector.Inject(SiteEvent); err != nil {
		if errors.Is(err, fault.ErrDropped) {
			return nil // injected event loss: silently discarded
		}
		return err
	}
	b.evMu.Lock()
	if q, ok := b.evQueues[g]; ok {
		q.items = append(q.items, ev)
		b.evMu.Unlock()
		return nil
	}
	if b.evQueues == nil {
		b.evQueues = make(map[uint64]*evQueue)
	}
	dq := acquireEvQueue()
	dq.items = append(dq.items, ev)
	b.evQueues[g] = dq
	b.evMu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			b.evMu.Lock()
			dropped := len(dq.items) - dq.head
			delete(b.evQueues, g)
			b.evMu.Unlock()
			b.mReentrantDropped.Add(int64(dropped))
			b.mPanics.Inc()
			releaseEvQueue(dq)
			err = fault.Recovered(SiteEvent, r)
		}
	}()

	var firstErr error
	for {
		b.evMu.Lock()
		if dq.head == len(dq.items) {
			delete(b.evQueues, g)
			b.evMu.Unlock()
			releaseEvQueue(dq)
			return firstErr
		}
		next := dq.items[dq.head]
		dq.items[dq.head] = Event{}
		dq.head++
		b.evMu.Unlock()
		if err := b.processEvent(next); err != nil && firstErr == nil {
			firstErr = err
		}
	}
}

// processEvent runs matching event actions, forwards upward when asked (or
// when unmatched), then lets the autonomic manager evaluate its symptoms.
func (b *Broker) processEvent(ev Event) error {
	b.mEvents.Inc()
	sp := b.tracer.Start(obs.SpanBrokerEvent)
	sp.SetStr("event", ev.Name)
	defer sp.End()
	scope := acquireScope()
	defer releaseScope(scope)
	b.context.SnapshotInto(scope)
	scope["event"] = boxString(ev.Name)
	for k, v := range ev.Attrs {
		scope[k] = v
	}
	matched := false
	forward := false
	var firstErr error
	for _, ea := range b.events {
		if ea.Event != "*" && ea.Event != ev.Name {
			continue
		}
		if ea.Guard != nil {
			ok, err := expr.EvalBool(ea.Guard, expr.Env{Scope: scope, Funcs: b.funcs})
			if err != nil {
				return fmt.Errorf("broker %s: event action %s: guard: %w", b.name, ea.Name, err)
			}
			if !ok {
				continue
			}
		}
		matched = true
		forward = forward || ea.Forward
		if err := b.runSteps(ea.Name, ea.Steps, scope); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if (!matched || forward) && b.notify != nil {
		b.notify(ev)
	}
	return b.autonomic.Evaluate()
}
