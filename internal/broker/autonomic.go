package broker

import (
	"fmt"
	"sync"

	"github.com/mddsm/mddsm/internal/expr"
)

// Symptom names a condition over the layer context that triggers autonomic
// behaviour (paper Fig. 6: the Autonomic Manager's symptoms).
type Symptom struct {
	Name      string
	Condition expr.Node
}

// SymptomRule is a convenience constructor parsing the condition source.
// It panics on a bad static source.
func SymptomRule(name, condition string) Symptom {
	return Symptom{Name: name, Condition: expr.MustParse(condition)}
}

// ChangePlan describes how to handle a change request raised for a symptom:
// a sequence of resource steps executed for self-configuration.
type ChangePlan struct {
	Symptom string
	Steps   []Step
}

// ChangeRequest is one raised occurrence of a symptom, queued between
// detection and plan execution.
type ChangeRequest struct {
	Symptom string
	Seq     int
}

// Autonomic implements the Broker metamodel's Autonomic Manager:
// symptom detection → change request → change plan execution. A symptom
// fires on the rising edge of its condition and re-arms when the condition
// clears, so a persistent condition yields one request.
type Autonomic struct {
	broker   *Broker
	mu       sync.Mutex
	symptoms []Symptom
	plans    map[string]ChangePlan
	active   map[string]bool
	seq      int
	handled  []ChangeRequest
}

func newAutonomic(b *Broker, symptoms []Symptom, plans []ChangePlan) *Autonomic {
	a := &Autonomic{
		broker:   b,
		symptoms: symptoms,
		plans:    make(map[string]ChangePlan, len(plans)),
		active:   make(map[string]bool),
	}
	for _, p := range plans {
		a.plans[p.Symptom] = p
	}
	return a
}

// Handled returns the change requests executed so far, in order.
func (a *Autonomic) Handled() []ChangeRequest {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]ChangeRequest(nil), a.handled...)
}

// Evaluate checks all symptoms against the current context, raising and
// executing change plans for newly active symptoms. It is invoked after
// every event and may also be called periodically by a monitor.
//
// Plan steps run outside the manager's lock so that step side effects
// (resource events re-entering the broker and re-evaluating symptoms) do
// not deadlock; rising-edge bookkeeping is committed before execution, so a
// re-entrant Evaluate sees the symptom as already handled.
func (a *Autonomic) Evaluate() error {
	if len(a.symptoms) == 0 {
		// No symptoms configured (the common case for plain event
		// platforms): skip the context snapshot entirely — Evaluate runs
		// after every event, on the hot path.
		return nil
	}
	scope := acquireScope()
	defer releaseScope(scope)
	a.broker.context.SnapshotInto(scope)
	env := expr.Env{Scope: scope, Funcs: a.broker.funcs}

	type firing struct {
		req  ChangeRequest
		plan ChangePlan
		has  bool
	}
	var firings []firing
	a.mu.Lock()
	for _, s := range a.symptoms {
		ok, err := expr.EvalBool(s.Condition, env)
		if err != nil {
			// A symptom over unbound context is simply not observable yet.
			continue
		}
		if !ok {
			a.active[s.Name] = false
			continue
		}
		if a.active[s.Name] {
			continue // already handled this occurrence
		}
		a.active[s.Name] = true
		a.seq++
		plan, hasPlan := a.plans[s.Name]
		firings = append(firings, firing{
			req:  ChangeRequest{Symptom: s.Name, Seq: a.seq},
			plan: plan,
			has:  hasPlan,
		})
	}
	a.mu.Unlock()

	for _, f := range firings {
		if !f.has {
			continue // symptom without a plan: detection only
		}
		if err := a.broker.runSteps("plan:"+f.req.Symptom, f.plan.Steps, scope); err != nil {
			return fmt.Errorf("broker %s: autonomic plan for %s: %w", a.broker.name, f.req.Symptom, err)
		}
		a.mu.Lock()
		a.handled = append(a.handled, f.req)
		a.mu.Unlock()
	}
	return nil
}
