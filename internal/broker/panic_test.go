package broker

import (
	"sync"
	"testing"

	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// fnAdapter adapts a function to the Adapter interface.
type fnAdapter func(script.Command) error

func (f fnAdapter) Execute(cmd script.Command) error { return f(cmd) }

// TestOnEventDrainPanicCleansQueue is the regression test for the
// re-entrancy leak: a panic escaping the drain used to leave the
// goroutine's queue entry behind, silently swallowing every later event on
// that goroutine ID. The recovery must return a classified PanicError,
// count the dropped re-entrant events, and leave the broker able to
// process the next event normally.
func TestOnEventDrainPanicCleansQueue(t *testing.T) {
	m := obs.NewMetrics()
	var b *Broker
	rm := NewResourceManager()
	rm.Register("*", fnAdapter(func(cmd script.Command) error {
		if cmd.Op == "reenter" {
			// Re-entrant event: joins this goroutine's queue behind the
			// event being processed.
			return b.OnEvent(Event{Name: "child"})
		}
		return nil
	}))
	var (
		mu       sync.Mutex
		panicked = true
		notified []string
	)
	b = New(Config{
		Name:    "b",
		Metrics: m,
		EventActions: []*EventAction{{
			Name: "boomAct", Event: "boom",
			Steps:   []Step{{Op: "reenter", Target: "x"}},
			Forward: true,
		}},
	}, rm, func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		if panicked {
			panic("poisoned notify")
		}
		notified = append(notified, ev.Name)
	})

	err := b.OnEvent(Event{Name: "boom"})
	if !fault.IsPanic(err) {
		t.Fatalf("OnEvent error = %v, want a recovered PanicError", err)
	}
	if got := m.CounterValue(obs.MBrokerReentrantDropped); got != 1 {
		t.Errorf("reentrant dropped = %d, want 1 (the queued child event)", got)
	}
	if got := m.CounterValue(obs.MPanicsRecovered); got == 0 {
		t.Error("panic.recovered = 0, want > 0")
	}

	// The poisoned handler must not have leaked its queue entry: the same
	// goroutine processes the next event (and its re-entrant child) fully.
	mu.Lock()
	panicked = false
	mu.Unlock()
	if err := b.OnEvent(Event{Name: "boom"}); err != nil {
		t.Fatalf("OnEvent after recovery: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 2 || notified[0] != "boom" || notified[1] != "child" {
		t.Errorf("post-recovery notifications = %v, want [boom child]", notified)
	}
}

// TestStepPanicBecomesError: an adapter panic inside a broker step is
// recovered at the step boundary into a non-transient PanicError — the
// caller gets an error, not a crash, and the panic is never retried.
func TestStepPanicBecomesError(t *testing.T) {
	m := obs.NewMetrics()
	calls := 0
	rm := NewResourceManager()
	rm.Register("*", fnAdapter(func(cmd script.Command) error {
		calls++
		panic("poisoned adapter")
	}))
	b := New(Config{
		Name:    "b",
		Metrics: m,
		Actions: []*Action{{
			Name: "pass", Ops: []string{"*"},
			Steps: []Step{{Op: "{op}", Target: "{target}"}},
		}},
		Resilience: fault.Resilience{
			Retry: fault.Policy{MaxAttempts: 4, BaseDelay: 1},
		},
	}, rm, nil)

	err := b.Call(script.NewCommand("doom", "svc:1"))
	if !fault.IsPanic(err) {
		t.Fatalf("Call error = %v, want a recovered PanicError", err)
	}
	if calls != 1 {
		t.Errorf("adapter calls = %d, want 1 (panics are not transient, never retried)", calls)
	}
	if got := m.CounterValue(obs.MPanicsRecovered); got != 1 {
		t.Errorf("panic.recovered = %d, want 1", got)
	}
}
