// Event and scope pooling: the zero-allocation backbone of the event hot
// path. The runtime's pump posts one Event per resource notification, and
// profiling showed the steady-state allocation profile was dominated by
// three maps born and discarded per event: the event's Attrs payload, the
// per-goroutine re-entrancy queue entry in OnEvent, and the evaluation
// scope processEvent builds for guards and step expansion. All three are
// recycled here.
//
// Ownership of a pooled event is linear: the producer that acquired it
// either releases it itself (when the post was refused) or transfers it
// with the event — the pump releases after terminal accounting. A consumer
// that wants to retain a pooled event beyond its callback (an external
// sink, a test capturing events) must Copy it first; the dead-letter queue
// simply keeps the map, permanently retiring it from the pool.
package broker

import (
	"sync"

	"github.com/mddsm/mddsm/internal/expr"
)

var attrsPool = sync.Pool{New: func() any { return make(map[string]any, 8) }}

// AcquireAttrs returns an empty attribute map drawn from the shared event
// pool. Pair with ReleaseAttrs (directly or via Event.Release).
func AcquireAttrs() map[string]any { return attrsPool.Get().(map[string]any) }

// ReleaseAttrs clears m and returns it to the pool. Safe on nil.
func ReleaseAttrs(m map[string]any) {
	if m == nil {
		return
	}
	clear(m)
	attrsPool.Put(m)
}

// AcquireEvent returns a pooled event: its Attrs map comes from the shared
// pool and goes back when Release is called after delivery.
func AcquireEvent(name string) Event {
	return Event{Name: name, Attrs: AcquireAttrs(), pooled: true}
}

// PooledEvent wraps an attribute map previously obtained from AcquireAttrs
// (possibly nil) into an event that Release will recycle. The
// resources-to-broker event conversion uses it to reuse storage instead of
// copying the payload.
func PooledEvent(name string, attrs map[string]any) Event {
	return Event{Name: name, Attrs: attrs, pooled: true}
}

// Pooled reports whether Release would recycle the event's attribute map.
func (e Event) Pooled() bool { return e.pooled }

// Release returns a pooled event's attribute map to the pool; it is a
// no-op for ordinary events, so delivery paths may call it
// unconditionally. The map must not be used after Release.
func (e Event) Release() {
	if e.pooled {
		ReleaseAttrs(e.Attrs)
	}
}

// Copy returns an unpooled deep copy of the event, for consumers that need
// to retain it beyond the delivery callback.
func (e Event) Copy() Event {
	if e.Attrs == nil {
		return Event{Name: e.Name}
	}
	attrs := make(map[string]any, len(e.Attrs))
	for k, v := range e.Attrs {
		attrs[k] = v
	}
	return Event{Name: e.Name, Attrs: attrs}
}

// Evaluation scopes. processEvent (and the autonomic evaluation behind it)
// used to snapshot the layer context into a fresh map per event; the
// snapshot now fills a pooled map that is cleared and recycled once the
// event's actions have run. Scopes never escape an event's processing, so
// the pool is safe.

var scopePool = sync.Pool{New: func() any { return make(expr.MapScope, 16) }}

func acquireScope() expr.MapScope { return scopePool.Get().(expr.MapScope) }

func releaseScope(s expr.MapScope) {
	clear(s)
	scopePool.Put(s)
}

// Interned boxed strings. Storing a string into a map[string]any boxes it,
// which allocates; event names recur from a small model-defined vocabulary,
// so the boxed values are interned. The table is capped as a backstop —
// past the cap (which no realistic model reaches) boxString degrades to a
// plain conversion.

const boxedNameCap = 4096

var (
	boxMu      sync.RWMutex
	boxedNames = make(map[string]any)
)

func boxString(s string) any {
	boxMu.RLock()
	v, ok := boxedNames[s]
	boxMu.RUnlock()
	if ok {
		return v
	}
	boxMu.Lock()
	defer boxMu.Unlock()
	if v, ok := boxedNames[s]; ok {
		return v
	}
	v = any(s)
	if len(boxedNames) < boxedNameCap {
		boxedNames[s] = v
	}
	return v
}

// Re-entrancy queue entries for OnEvent: one per goroutine currently
// draining events, recycled across drains.

type evQueue struct {
	items []Event
	head  int
}

var evqPool = sync.Pool{New: func() any { return new(evQueue) }}

func acquireEvQueue() *evQueue { return evqPool.Get().(*evQueue) }

func releaseEvQueue(q *evQueue) {
	clear(q.items)
	q.items = q.items[:0]
	q.head = 0
	evqPool.Put(q)
}
