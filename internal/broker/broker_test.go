package broker

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/script"
)

// recorder is an adapter recording every executed command.
type recorder struct {
	trace  script.Trace
	failOn string
}

func (r *recorder) Execute(cmd script.Command) error {
	if r.failOn != "" && cmd.Op == r.failOn {
		return errors.New("resource failure")
	}
	r.trace.Record(cmd)
	return nil
}

func testBroker(t *testing.T, cfg Config) (*Broker, *recorder, *[]Event) {
	t.Helper()
	rec := &recorder{}
	rm := NewResourceManager()
	rm.Register("*", rec)
	var upward []Event
	b := New(cfg, rm, func(e Event) { upward = append(upward, e) })
	return b, rec, &upward
}

func TestResourceManagerRouting(t *testing.T) {
	rm := NewResourceManager()
	var hits []string
	rm.Register("open", AdapterFunc(func(c script.Command) error {
		hits = append(hits, "open:"+c.Target)
		return nil
	}))
	rm.Register("*", AdapterFunc(func(c script.Command) error {
		hits = append(hits, "fallback:"+c.Op)
		return nil
	}))
	if err := rm.Execute(script.NewCommand("open", "t")); err != nil {
		t.Fatal(err)
	}
	if err := rm.Execute(script.NewCommand("other", "t")); err != nil {
		t.Fatal(err)
	}
	if strings.Join(hits, ";") != "open:t;fallback:other" {
		t.Errorf("routing: %v", hits)
	}
	if got := rm.Ops(); strings.Join(got, ",") != "*,open" {
		t.Errorf("Ops: %v", got)
	}
	empty := NewResourceManager()
	if err := empty.Execute(script.NewCommand("x", "t")); err == nil {
		t.Error("no adapter must error")
	}
}

func TestStateStore(t *testing.T) {
	s := NewState()
	s.Set("a", 1)
	s.Set("b", "x")
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Error("Get")
	}
	if got := strings.Join(s.Keys(), ","); got != "a,b" {
		t.Errorf("Keys: %s", got)
	}
	snap := s.Snapshot()
	s.Set("a", 2)
	if v, _ := snap.Lookup("a"); v != 1 {
		t.Error("snapshot isolation")
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Error("Delete")
	}
}

func TestCallSelectsActionByOpAndGuard(t *testing.T) {
	cfg := Config{
		Name: "b",
		Actions: []*Action{
			{
				Name:  "secureOpen",
				Ops:   []string{"open"},
				Guard: expr.MustParse("secure == true"),
				Steps: []Step{{Op: "openSecure", Target: "{target}"}},
			},
			{
				Name:  "plainOpen",
				Ops:   []string{"open"},
				Steps: []Step{{Op: "openPlain", Target: "{target}", Args: map[string]string{"rate": "{rate}"}}},
			},
		},
	}
	b, rec, _ := testBroker(t, cfg)
	if err := b.Call(script.NewCommand("open", "s:1").WithArg("secure", true).WithArg("rate", 9)); err != nil {
		t.Fatal(err)
	}
	if err := b.Call(script.NewCommand("open", "s:2").WithArg("secure", false).WithArg("rate", 5)); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(rec.trace.Lines(), ";")
	want := "openSecure s:1;openPlain s:2 rate=5"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestCallNoAction(t *testing.T) {
	b, _, _ := testBroker(t, Config{Name: "b"})
	err := b.Call(script.NewCommand("mystery", "t"))
	if err == nil || !strings.Contains(err.Error(), "no action for op") {
		t.Errorf("got %v", err)
	}
}

func TestCallGuardError(t *testing.T) {
	cfg := Config{Name: "b", Actions: []*Action{{
		Name: "a", Ops: []string{"x"}, Guard: expr.MustParse("num > 'str'"),
	}}}
	b, _, _ := testBroker(t, cfg)
	b.Context().Set("num", 1)
	err := b.Call(script.NewCommand("x", "t").WithArg("str", "s"))
	if err == nil || !strings.Contains(err.Error(), "guard") {
		t.Errorf("got %v", err)
	}
}

func TestCallStepErrors(t *testing.T) {
	cfg := Config{Name: "b", Actions: []*Action{
		{Name: "bad", Ops: []string{"x"}, Steps: []Step{{Op: "op", Target: "{ghost}"}}},
		{Name: "failing", Ops: []string{"y"}, Steps: []Step{{Op: "boom", Target: "t"}}},
		{Name: "badArg", Ops: []string{"z"}, Steps: []Step{{Op: "op", Target: "t", Args: map[string]string{"a": "{ghost}"}}}},
		{Name: "badOp", Ops: []string{"w"}, Steps: []Step{{Op: "{ghost}", Target: "t"}}},
	}}
	b, rec, _ := testBroker(t, cfg)
	rec.failOn = "boom"
	if err := b.Call(script.NewCommand("x", "t")); err == nil {
		t.Error("unbound target placeholder")
	}
	if err := b.Call(script.NewCommand("y", "t")); err == nil {
		t.Error("resource failure must propagate")
	}
	if err := b.Call(script.NewCommand("z", "t")); err == nil {
		t.Error("unbound arg placeholder")
	}
	if err := b.Call(script.NewCommand("w", "t")); err == nil {
		t.Error("unbound op placeholder")
	}
}

func TestActionFnEscapeHatch(t *testing.T) {
	called := false
	cfg := Config{Name: "b", Actions: []*Action{{
		Name: "native", Ops: []string{"x"},
		Fn: func(b *Broker, cmd script.Command) error {
			called = true
			b.State().Set("last", cmd.Op)
			return nil
		},
	}}}
	b, _, _ := testBroker(t, cfg)
	if err := b.Call(script.NewCommand("x", "t")); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("Fn not invoked")
	}
	if v, _ := b.State().Get("last"); v != "x" {
		t.Error("state not written")
	}
}

func TestWildcardActionOp(t *testing.T) {
	cfg := Config{Name: "b", Actions: []*Action{{
		Name: "catchall", Ops: []string{"*"},
		Steps: []Step{{Op: "handled", Target: "{op}"}},
	}}}
	b, rec, _ := testBroker(t, cfg)
	if err := b.Call(script.NewCommand("anything", "t")); err != nil {
		t.Fatal(err)
	}
	if rec.trace.Lines()[0] != "handled anything" {
		t.Errorf("got %q", rec.trace.Lines()[0])
	}
}

func TestOnEventActionsAndForwarding(t *testing.T) {
	cfg := Config{
		Name: "b",
		EventActions: []*EventAction{
			{
				Name:  "recover",
				Event: "streamFailed",
				Steps: []Step{{Op: "reconfigure", Target: "stream:{stream}"}},
			},
			{
				Name:    "tell",
				Event:   "participantLeft",
				Forward: true,
				Steps:   []Step{{Op: "log", Target: "x"}},
			},
		},
	}
	b, rec, upward := testBroker(t, cfg)

	// Handled, not forwarded.
	if err := b.OnEvent(Event{Name: "streamFailed", Attrs: map[string]any{"stream": "st1"}}); err != nil {
		t.Fatal(err)
	}
	if len(*upward) != 0 {
		t.Errorf("handled event must not forward: %v", *upward)
	}
	if rec.trace.Lines()[0] != "reconfigure stream:st1" {
		t.Errorf("recovery step: %q", rec.trace.Lines()[0])
	}

	// Handled and forwarded.
	if err := b.OnEvent(Event{Name: "participantLeft"}); err != nil {
		t.Fatal(err)
	}
	if len(*upward) != 1 || (*upward)[0].Name != "participantLeft" {
		t.Errorf("forwarding: %v", *upward)
	}

	// Unmatched events forward by default.
	if err := b.OnEvent(Event{Name: "unknownThing"}); err != nil {
		t.Fatal(err)
	}
	if len(*upward) != 2 || (*upward)[1].Name != "unknownThing" {
		t.Errorf("unmatched forwarding: %v", *upward)
	}
}

func TestOnEventGuard(t *testing.T) {
	cfg := Config{Name: "b", EventActions: []*EventAction{{
		Name: "cond", Event: "tick",
		Guard: expr.MustParse("level > 5"),
		Steps: []Step{{Op: "acted", Target: "t"}},
	}}}
	b, rec, _ := testBroker(t, cfg)
	if err := b.OnEvent(Event{Name: "tick", Attrs: map[string]any{"level": 3}}); err != nil {
		t.Fatal(err)
	}
	if rec.trace.Len() != 0 {
		t.Error("guard must disable the action")
	}
	if err := b.OnEvent(Event{Name: "tick", Attrs: map[string]any{"level": 7}}); err != nil {
		t.Fatal(err)
	}
	if rec.trace.Len() != 1 {
		t.Error("guard must enable the action")
	}
	// Guard evaluation error propagates.
	if err := b.OnEvent(Event{Name: "tick", Attrs: map[string]any{"level": "oops"}}); err == nil {
		t.Error("guard type error must propagate")
	}
}

func TestReentrantEventsAreQueuedNotRecursed(t *testing.T) {
	// The adapter emits a follow-up event synchronously while the broker is
	// processing the first one; the drain loop must process both in order
	// without deadlocking.
	rm := NewResourceManager()
	var b *Broker
	order := []string{}
	rm.Register("*", AdapterFunc(func(cmd script.Command) error {
		order = append(order, "step:"+cmd.Op)
		if cmd.Op == "first" {
			if err := b.OnEvent(Event{Name: "second"}); err != nil {
				return err
			}
			order = append(order, "after-emit")
		}
		return nil
	}))
	cfg := Config{Name: "b", EventActions: []*EventAction{
		{Name: "h1", Event: "one", Steps: []Step{{Op: "first", Target: "t"}}},
		{Name: "h2", Event: "second", Steps: []Step{{Op: "secondStep", Target: "t"}}},
	}}
	b = New(cfg, rm, nil)
	if err := b.OnEvent(Event{Name: "one"}); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, ";")
	// "second" is queued during "first" and processed after it completes.
	want := "step:first;after-emit;step:secondStep"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestAutonomicRisingEdge(t *testing.T) {
	cfg := Config{
		Name:     "b",
		Symptoms: []Symptom{SymptomRule("lowBattery", "charge < 20")},
		ChangePlans: []ChangePlan{{
			Symptom: "lowBattery",
			Steps:   []Step{{Op: "shedLoad", Target: "device:load1", Args: map[string]string{"kw": "1"}}},
		}},
	}
	b, rec, _ := testBroker(t, cfg)
	b.Context().Set("charge", 50)
	if err := b.OnEvent(Event{Name: "tick"}); err != nil {
		t.Fatal(err)
	}
	if len(b.Autonomic().Handled()) != 0 {
		t.Fatal("no symptom expected yet")
	}
	b.Context().Set("charge", 10)
	if err := b.OnEvent(Event{Name: "tick"}); err != nil {
		t.Fatal(err)
	}
	if err := b.OnEvent(Event{Name: "tick"}); err != nil {
		t.Fatal(err)
	}
	handled := b.Autonomic().Handled()
	if len(handled) != 1 || handled[0].Symptom != "lowBattery" {
		t.Fatalf("rising edge must fire once: %+v", handled)
	}
	if rec.trace.Lines()[0] != "shedLoad device:load1 kw=1" {
		t.Errorf("plan step: %q", rec.trace.Lines()[0])
	}
	// Re-arm: condition clears then re-fires.
	b.Context().Set("charge", 80)
	if err := b.OnEvent(Event{Name: "tick"}); err != nil {
		t.Fatal(err)
	}
	b.Context().Set("charge", 5)
	if err := b.OnEvent(Event{Name: "tick"}); err != nil {
		t.Fatal(err)
	}
	if got := len(b.Autonomic().Handled()); got != 2 {
		t.Fatalf("re-armed symptom must fire again: %d", got)
	}
}

func TestAutonomicSymptomWithoutPlanIsDetectionOnly(t *testing.T) {
	cfg := Config{Name: "b", Symptoms: []Symptom{SymptomRule("odd", "x > 0")}}
	b, rec, _ := testBroker(t, cfg)
	b.Context().Set("x", 1)
	if err := b.OnEvent(Event{Name: "tick"}); err != nil {
		t.Fatal(err)
	}
	if rec.trace.Len() != 0 {
		t.Error("no plan steps expected")
	}
}

func TestAutonomicPlanFailure(t *testing.T) {
	cfg := Config{
		Name:        "b",
		Symptoms:    []Symptom{SymptomRule("s", "x > 0")},
		ChangePlans: []ChangePlan{{Symptom: "s", Steps: []Step{{Op: "boom", Target: "t"}}}},
	}
	b, rec, _ := testBroker(t, cfg)
	rec.failOn = "boom"
	b.Context().Set("x", 1)
	err := b.OnEvent(Event{Name: "tick"})
	if err == nil || !strings.Contains(err.Error(), "autonomic plan") {
		t.Errorf("got %v", err)
	}
	if len(b.Autonomic().Handled()) != 0 {
		t.Error("failed plan must not count as handled")
	}
}

func TestUnboundSymptomIsSkipped(t *testing.T) {
	cfg := Config{Name: "b", Symptoms: []Symptom{SymptomRule("s", "neverBound > 1")}}
	b, _, _ := testBroker(t, cfg)
	if err := b.OnEvent(Event{Name: "tick"}); err != nil {
		t.Fatalf("unbound symptom must not error: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	b, _, _ := testBroker(t, Config{Name: "nb", Policies: []policy.Policy{policy.Rule("p", 1, "true")}})
	if b.Name() != "nb" {
		t.Error("Name")
	}
	if b.Policies().Len() != 1 {
		t.Error("Policies")
	}
	if b.Resources() == nil || b.State() == nil || b.Context() == nil || b.Autonomic() == nil {
		t.Error("accessors")
	}
}

func BenchmarkBrokerCall(b *testing.B) {
	cfg := Config{Name: "b", Actions: []*Action{{
		Name: "open", Ops: []string{"open"},
		Steps: []Step{{Op: "openStream", Target: "{target}", Args: map[string]string{
			"media": "{media}", "bandwidth": "{bandwidth}",
		}}},
	}}}
	rm := NewResourceManager()
	rm.Register("*", AdapterFunc(func(script.Command) error { return nil }))
	br := New(cfg, rm, nil)
	cmd := script.NewCommand("open", "stream:s1").WithArg("media", "audio").WithArg("bandwidth", 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := br.Call(cmd); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleBroker_Call() {
	rm := NewResourceManager()
	rm.Register("*", AdapterFunc(func(cmd script.Command) error {
		fmt.Println(cmd)
		return nil
	}))
	b := New(Config{
		Name: "ncb",
		Actions: []*Action{{
			Name: "open", Ops: []string{"openStream"},
			Steps: []Step{{Op: "svcOpen", Target: "{target}", Args: map[string]string{"media": "{media}"}}},
		}},
	}, rm, nil)
	_ = b.Call(script.NewCommand("openStream", "stream:s1").WithArg("media", "audio"))
	// Output: svcOpen stream:s1 media="audio"
}
