package synthesis

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/script"
)

// buildPair constructs two synthesis layers over the same DSML and LTS:
// one in full-validation mode, one in delta mode.
func buildPair(t *testing.T) (*Synthesis, *capture, *Synthesis, *capture) {
	t.Helper()
	mm := commDSML(t)
	full := &capture{}
	sFull, err := New(Config{Name: "full", DSML: mm, LTS: commLTS()}, full.dispatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	delta := &capture{}
	sDelta, err := New(Config{Name: "delta", DSML: mm, LTS: commLTS(), Delta: true}, delta.dispatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sDelta.delta == nil {
		t.Fatal("delta mode did not engage for a compilable DSML")
	}
	return sFull, full, sDelta, delta
}

// submitBoth submits the same model to both layers and requires identical
// behaviour: same verdict, same emitted commands, same committed model and
// same sequence number.
func submitBoth(t *testing.T, label string, sFull *Synthesis, full *capture, sDelta *Synthesis, delta *capture, m *metamodel.Model) {
	t.Helper()
	scFull, errFull := sFull.Submit(m.Clone())
	scDelta, errDelta := sDelta.Submit(m.Clone())
	if (errFull == nil) != (errDelta == nil) {
		t.Fatalf("%s: verdicts diverge:\nfull:  %v\ndelta: %v", label, errFull, errDelta)
	}
	if errFull == nil {
		if got, want := cmdLines(scDelta), cmdLines(scFull); got != want {
			t.Fatalf("%s: scripts diverge:\nfull:\n%s\ndelta:\n%s", label, want, got)
		}
	}
	if !metamodel.Equal(sFull.CurrentModel(), sDelta.CurrentModel()) {
		t.Fatalf("%s: committed models diverge; diff:\n%s", label,
			metamodel.Diff(sFull.CurrentModel(), sDelta.CurrentModel()))
	}
	if sFull.Seq() != sDelta.Seq() {
		t.Fatalf("%s: seq diverges: full %d, delta %d", label, sFull.Seq(), sDelta.Seq())
	}
}

func cmdLines(s *script.Script) string {
	if s == nil {
		return ""
	}
	out := ""
	for _, c := range s.Commands {
		out += c.String() + "\n"
	}
	return out
}

// TestDeltaModeMatchesFullMode walks both modes through a scripted session:
// growth, attribute edits, reference churn, invalid submissions (missing
// required attribute, dangling reference, containment conflict), removals.
func TestDeltaModeMatchesFullMode(t *testing.T) {
	sFull, full, sDelta, delta := buildPair(t)

	m := metamodel.NewModel("mini-cml")
	m.NewObject("s1", "Session")
	p := m.NewObject("alice", "Person")
	p.SetAttr("name", "Alice")
	m.Get("s1").AddRef("participants", "alice")
	submitBoth(t, "initial session", sFull, full, sDelta, delta, m)

	st := m.NewObject("st1", "Stream")
	st.SetAttr("media", "audio")
	m.Get("s1").AddRef("streams", "st1")
	submitBoth(t, "add stream", sFull, full, sDelta, delta, m)

	// Invalid: required attribute missing on a new object.
	bad := m.Clone()
	bad.NewObject("st2", "Stream")
	bad.Get("s1").AddRef("streams", "st2")
	submitBoth(t, "missing required attr", sFull, full, sDelta, delta, bad)

	// Invalid: dangling participant on an otherwise-unchanged session.
	bad = m.Clone()
	bad.Get("s1").AddRef("participants", "ghost")
	submitBoth(t, "dangling ref", sFull, full, sDelta, delta, bad)

	// Invalid: second session claims containment of the same stream.
	bad = m.Clone()
	bad.NewObject("s2", "Session").AddRef("streams", "st1")
	submitBoth(t, "containment conflict", sFull, full, sDelta, delta, bad)

	// Valid again after the rejections: the committed state must have
	// survived them untouched in both modes.
	m.Get("st1").SetAttr("media", "video")
	submitBoth(t, "retune stream", sFull, full, sDelta, delta, m)

	// Raw (non-canonical) attribute value: full mode normalises during
	// validation, delta mode during NormalizeChanges.
	m.Get("st1").SetAttr("bandwidth", 128) // int, canonical form is float64
	submitBoth(t, "raw attr value", sFull, full, sDelta, delta, m)

	// Removal with reference cleanup.
	m.Get("s1").RemoveRef("streams", "st1")
	_ = m.Delete("st1")
	submitBoth(t, "remove stream", sFull, full, sDelta, delta, m)

	// No-op resubmission.
	submitBoth(t, "no-op", sFull, full, sDelta, delta, m)

	if full.all() != delta.all() {
		t.Fatalf("cumulative command streams diverge:\nfull:\n%s\ndelta:\n%s", full.all(), delta.all())
	}
	if sFull.Seq() == 0 {
		t.Fatal("no submissions committed")
	}
}

// TestDeltaModeRandomSessions drives both modes through random model
// sequences, mixing valid and invalid submissions.
func TestDeltaModeRandomSessions(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sFull, full, sDelta, delta := buildPair(t)
		rng := rand.New(rand.NewSource(seed))
		m := metamodel.NewModel("mini-cml")
		for step := 0; step < 12; step++ {
			cand := m.Clone()
			mutateComm(rng, cand)
			submitBoth(t, fmt.Sprintf("seed %d step %d", seed, step), sFull, full, sDelta, delta, cand)
			m = sFull.CurrentModel() // follow whatever was committed
		}
		if full.all() != delta.all() {
			t.Fatalf("seed %d: cumulative command streams diverge", seed)
		}
	}
}

// mutateComm randomly mutates a mini-cml model, valid and invalid alike.
func mutateComm(rng *rand.Rand, m *metamodel.Model) {
	medias := []string{"audio", "video", "chat", "telepathy"} // last one invalid
	for n := 1 + rng.Intn(3); n > 0; n-- {
		switch rng.Intn(7) {
		case 0:
			id := fmt.Sprintf("s%d", rng.Intn(6))
			if m.Get(id) == nil {
				m.NewObject(id, "Session")
			}
		case 1:
			id := fmt.Sprintf("p%d", rng.Intn(6))
			if m.Get(id) == nil {
				o := m.NewObject(id, "Person")
				if rng.Intn(5) > 0 {
					o.SetAttr("name", "u"+id)
				} // else: missing required attr
			}
		case 2:
			sid := fmt.Sprintf("s%d", rng.Intn(6))
			stid := fmt.Sprintf("st%d", rng.Intn(8))
			if m.Get(sid) != nil && m.Get(stid) == nil {
				o := m.NewObject(stid, "Stream")
				o.SetAttr("media", medias[rng.Intn(len(medias))])
				m.Get(sid).AddRef("streams", stid)
			}
		case 3: // participant edge, sometimes dangling
			sid := fmt.Sprintf("s%d", rng.Intn(6))
			pid := fmt.Sprintf("p%d", rng.Intn(8))
			if m.Get(sid) != nil {
				m.Get(sid).AddRef("participants", pid)
			}
		case 4: // retune a stream
			stid := fmt.Sprintf("st%d", rng.Intn(8))
			if o := m.Get(stid); o != nil {
				o.SetAttr("bandwidth", float64(32*(1+rng.Intn(8))))
			}
		case 5: // delete an object, cleaning or leaking references
			ids := m.IDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			_ = m.Delete(id)
			if rng.Intn(2) == 0 {
				for _, o := range m.Objects() {
					for _, ref := range o.RefNames() {
						o.RemoveRef(ref, id)
					}
				}
			}
		case 6: // second containment owner
			ids := m.IDs()
			var sessions, streams []string
			for _, id := range ids {
				switch m.Get(id).Class {
				case "Session":
					sessions = append(sessions, id)
				case "Stream":
					streams = append(streams, id)
				}
			}
			if len(sessions) > 0 && len(streams) > 0 {
				m.Get(sessions[rng.Intn(len(sessions))]).AddRef("streams", streams[rng.Intn(len(streams))])
			}
		}
	}
}

// TestDeltaModeRestoreRebasesValidator: after RestoreState the validator
// must track the restored model, not the pre-restore one.
func TestDeltaModeRestoreRebasesValidator(t *testing.T) {
	sFull, full, sDelta, delta := buildPair(t)

	m := metamodel.NewModel("mini-cml")
	m.NewObject("s1", "Session")
	submitBoth(t, "seed", sFull, full, sDelta, delta, m)

	snap := metamodel.NewModel("mini-cml")
	snap.NewObject("s9", "Session")
	p := snap.NewObject("bob", "Person")
	p.SetAttr("name", "Bob")
	snap.Get("s9").AddRef("participants", "bob")
	if err := sFull.RestoreState(snap.Clone(), 5, sFull.State()); err != nil {
		t.Fatal(err)
	}
	if err := sDelta.RestoreState(snap.Clone(), 5, sDelta.State()); err != nil {
		t.Fatal(err)
	}

	// A submission relative to the restored snapshot must validate
	// incrementally against it.
	next := snap.Clone()
	next.Get("s9").RemoveRef("participants", "bob")
	_ = next.Delete("bob")
	submitBoth(t, "post-restore", sFull, full, sDelta, delta, next)

	// And an invalid one must be caught against the restored base.
	bad := sDelta.CurrentModel()
	bad.Get("s9").AddRef("participants", "bob") // bob is gone
	submitBoth(t, "post-restore dangling", sFull, full, sDelta, delta, bad)
}
