// Package synthesis implements the Synthesis layer of the MD-DSM reference
// architecture (paper §III, §V-A/V-B). The layer receives user-defined DSML
// models and turns them into control scripts for the Controller layer:
//
//   - the model comparator diffs the newly submitted model against the
//     currently running one (an empty model right after start);
//   - the change interpreter feeds each change, as an event, through a
//     labeled transition system encoding the domain-specific synthesis
//     semantics, collecting the emitted commands;
//   - the dispatcher hands the script to the Controller, commits the new
//     runtime model and publishes it back to the UI layer.
//
// Submissions are atomic: when conformance checking, interpretation or
// dispatch fails, the runtime model and the LTS state are left untouched.
package synthesis

import (
	"fmt"
	"strconv"
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// Dispatch delivers a synthesised control script to the layer below.
type Dispatch func(*script.Script) error

// ModelObserver receives the committed runtime model after each successful
// submission (the dispatcher's "new runtime model to the UI").
type ModelObserver func(*metamodel.Model)

// Config assembles a Synthesis layer.
type Config struct {
	Name string
	// DSML is the application modeling language metamodel; submitted
	// models must conform to it.
	DSML *metamodel.Metamodel
	// LTS encodes the domain-specific synthesis semantics.
	LTS *lts.LTS
	// Tracer and Metrics observe the layer; both may be nil (disabled).
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
	// Cache memoises conformance validations by content hash; nil disables
	// memoisation. The runtime shares one cache across its layers so a
	// model validated at the UI boundary is not re-validated here.
	Cache *metamodel.ValidationCache
	// Delta switches submissions to incremental delta validation: only the
	// objects a submission touches (plus the objects referring to them) are
	// re-checked, instead of re-validating — and content-hashing — the whole
	// model. Requires the DSML to compile; falls back to full validation
	// otherwise. Verdicts and problem reports are identical to full
	// validation by construction.
	Delta bool
}

// Synthesis is the live Synthesis layer. Top-level operations (Submit and
// event processing) are serialised; events that arrive while an operation
// is in flight — typically raised by the very commands that operation
// dispatched — are deferred and drained when it completes, so synchronous
// event chains cannot deadlock the layer.
type Synthesis struct {
	name     string
	dsml     *metamodel.Metamodel
	vcache   *metamodel.ValidationCache
	instance *lts.Instance
	dispatch Dispatch
	observe  ModelObserver

	// Delta-validation state (nil when running in full-validation mode):
	// the validator tracks incremental indexes over the committed model and
	// is advanced on every successful submission.
	delta   *metamodel.DeltaValidator
	deltaCM *metamodel.CompiledMetamodel

	tracer   *obs.Tracer
	mSubmits *obs.Counter
	mEvents  *obs.Counter
	mPanics  *obs.Counter
	mDelta   *obs.Counter

	mu      sync.Mutex // guards current, instance, seq
	current *metamodel.Model
	seq     int

	opMu    sync.Mutex // guards busy and pending
	opCond  *sync.Cond
	busy    bool
	pending []broker.Event
}

// New builds a Synthesis layer. dispatch must be non-nil; observe may be
// nil.
func New(cfg Config, dispatch Dispatch, observe ModelObserver) (*Synthesis, error) {
	if cfg.DSML == nil {
		return nil, fmt.Errorf("synthesis %s: nil DSML metamodel", cfg.Name)
	}
	if err := cfg.DSML.Validate(); err != nil {
		return nil, fmt.Errorf("synthesis %s: DSML metamodel: %w", cfg.Name, err)
	}
	if cfg.LTS == nil {
		return nil, fmt.Errorf("synthesis %s: nil LTS", cfg.Name)
	}
	if err := cfg.LTS.Validate(); err != nil {
		return nil, fmt.Errorf("synthesis %s: %w", cfg.Name, err)
	}
	if dispatch == nil {
		return nil, fmt.Errorf("synthesis %s: nil dispatch", cfg.Name)
	}
	s := &Synthesis{
		name:     cfg.Name,
		dsml:     cfg.DSML,
		vcache:   cfg.Cache,
		instance: lts.NewInstance(cfg.LTS),
		dispatch: dispatch,
		observe:  observe,
		current:  metamodel.NewModel(cfg.DSML.Name),
		tracer:   cfg.Tracer,
		mSubmits: cfg.Metrics.Counter(obs.MSynthesisSubmits),
		mEvents:  cfg.Metrics.Counter(obs.MSynthesisEvents),
		mPanics:  cfg.Metrics.Counter(obs.MPanicsRecovered),
		mDelta:   cfg.Metrics.Counter(obs.MValidateDelta),
	}
	if cfg.Delta {
		// Delta validation needs the compiled layout; a DSML that does not
		// compile silently keeps the full-validation path.
		if cm, err := cfg.DSML.Compiled(); err == nil {
			s.deltaCM = cm
			s.delta = metamodel.NewDeltaValidator(cm, s.current)
		}
	}
	s.opCond = sync.NewCond(&s.opMu)
	return s, nil
}

// begin claims the layer for a top-level operation, waiting for any other
// goroutine's operation to finish.
func (s *Synthesis) begin() {
	s.opMu.Lock()
	for s.busy {
		s.opCond.Wait()
	}
	s.busy = true
	s.opMu.Unlock()
}

// finish drains deferred events and releases the layer. Event-processing
// failures during the drain have no caller to report to and are dropped
// after the first one is noted.
func (s *Synthesis) finish() {
	for {
		s.opMu.Lock()
		if len(s.pending) == 0 {
			s.busy = false
			s.opCond.Broadcast()
			s.opMu.Unlock()
			return
		}
		next := s.pending[0]
		s.pending = s.pending[1:]
		s.opMu.Unlock()
		_ = s.processEvent(next)
	}
}

// Name returns the layer instance name.
func (s *Synthesis) Name() string { return s.name }

// DSML returns the application metamodel submissions are validated
// against. Hosts that derive external surfaces from the metamodel (the
// HTTP API provisioner) read it here when the platform has no UI layer.
func (s *Synthesis) DSML() *metamodel.Metamodel { return s.dsml }

// CurrentModel returns a deep copy of the running runtime model.
func (s *Synthesis) CurrentModel() *metamodel.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current.Clone()
}

// State returns the LTS instance's current state (diagnostics).
func (s *Synthesis) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.instance.State()
}

// Seq returns the submission sequence number (checkpointing).
func (s *Synthesis) Seq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// RestoreState reinstates a checkpointed layer state — the committed
// runtime model, the submission sequence number and the LTS position —
// without dispatching any scripts: the resources a restored platform
// attaches to are assumed to already realise the model (or to be
// re-provisioned out of band). The model must conform to the DSML and the
// LTS state must be one the instance's definition declares.
func (s *Synthesis) RestoreState(m *metamodel.Model, seq int, ltsState string) error {
	candidate, err := s.vcache.Validate(s.dsml, m)
	if err != nil {
		return fmt.Errorf("synthesis %s: restored model does not conform to %s: %w",
			s.name, s.dsml.Name, err)
	}
	s.mu.Lock()
	if err := s.instance.Restore(ltsState); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("synthesis %s: restore: %w", s.name, err)
	}
	s.current = candidate
	if s.delta != nil {
		// Incremental indexes are only valid relative to the model they were
		// built over; a restore re-bases them from scratch.
		s.delta = metamodel.NewDeltaValidator(s.deltaCM, candidate)
	}
	if seq > s.seq {
		s.seq = seq
	}
	s.mu.Unlock()
	if s.observe != nil {
		s.observe(candidate.Clone())
	}
	return nil
}

// Submit runs one synthesis cycle for a new user model: conformance check,
// model comparison, change interpretation, dispatch and commit. It returns
// the dispatched script (possibly empty when the model is unchanged).
//
// Submit must not be called from within the dispatch path of another
// submission (it would wait on itself); events raised during dispatch are
// deferred and processed when the submission completes.
func (s *Synthesis) Submit(newModel *metamodel.Model) (*script.Script, error) {
	s.mSubmits.Inc()
	sp := s.tracer.Start(obs.SpanSynthSubmit)
	defer sp.End()
	s.begin()
	defer s.finish()
	return s.doSubmit(newModel)
}

func (s *Synthesis) doSubmit(newModel *metamodel.Model) (out *script.Script, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// A panic escaping interpretation or dispatch keeps the submission
	// atomic: the LTS rolls back to its pre-cycle state, the runtime model
	// stays untouched, and the caller gets a classified error.
	savedState := s.instance.State()
	defer func() {
		if r := recover(); r != nil {
			s.restore(savedState)
			s.mPanics.Inc()
			out, err = nil, fmt.Errorf("synthesis %s: %w", s.name, fault.Recovered("synthesis.submit", r))
		}
	}()

	var candidate *metamodel.Model
	var changes metamodel.ChangeList
	if s.delta != nil {
		// Incremental path: diff first, normalise the changes into the form
		// full validation would have produced, then validate only the
		// touched objects (and their referrers). Skips both the whole-model
		// scan and the validation cache's per-submit content hashing.
		s.mDelta.Inc()
		raw := metamodel.DiffWithContainment(s.current, newModel, s.dsml)
		changes = metamodel.NormalizeChanges(s.deltaCM, s.current, raw)
		candidate = s.current.Clone()
		if aerr := metamodel.Apply(candidate, changes); aerr != nil {
			return nil, fmt.Errorf("synthesis %s: model does not conform to %s: %w",
				s.name, s.dsml.Name, aerr)
		}
		if verr := s.delta.Validate(candidate, changes); verr != nil {
			return nil, fmt.Errorf("synthesis %s: model does not conform to %s: %w",
				s.name, s.dsml.Name, verr)
		}
	} else {
		var cerr error
		candidate, cerr = s.vcache.Validate(s.dsml, newModel)
		if cerr != nil {
			return nil, fmt.Errorf("synthesis %s: model does not conform to %s: %w",
				s.name, s.dsml.Name, cerr)
		}
		changes = metamodel.DiffWithContainment(s.current, candidate, s.dsml)
	}
	s.seq++
	out = script.New(s.name + "-" + strconv.Itoa(s.seq))
	if err := s.interpret(changes, candidate, out); err != nil {
		s.restore(savedState)
		return nil, fmt.Errorf("synthesis %s: %w", s.name, err)
	}
	if err := s.dispatch(out); err != nil {
		s.restore(savedState)
		return nil, fmt.Errorf("synthesis %s: dispatch: %w", s.name, err)
	}
	if s.delta != nil {
		s.delta.Advance(candidate, changes)
	}
	s.current = candidate
	if s.observe != nil {
		s.observe(s.current.Clone())
	}
	return out, nil
}

func (s *Synthesis) restore(state string) {
	// The saved state was read from the instance, so Restore cannot fail.
	_ = s.instance.Restore(state)
}

// interpret feeds each change through the LTS and appends the emitted
// commands to out. Attribute changes on objects created in the same batch
// are folded into the creation event (their attributes ride along on the
// add-object scope), so the LTS sees one creation event per new object.
func (s *Synthesis) interpret(changes metamodel.ChangeList, newModel *metamodel.Model, out *script.Script) error {
	fresh := make(map[string]bool)
	for _, c := range changes {
		if c.Kind == metamodel.ChangeAddObject {
			fresh[c.ObjectID] = true
		}
	}
	for _, c := range changes {
		if fresh[c.ObjectID] &&
			(c.Kind == metamodel.ChangeSetAttr || c.Kind == metamodel.ChangeUnsetAttr) {
			continue
		}
		label, scope := describeChange(c, s.current, newModel)
		cmds, _, err := s.instance.Step(label, scope)
		if err != nil {
			return fmt.Errorf("change %s: %w", c, err)
		}
		out.Append(cmds...)
	}
	return nil
}

// describeChange maps a model change to its LTS event label and binding
// scope. Labels follow the pattern:
//
//	add-object:<Class>        remove-object:<Class>
//	set-attr:<Class>.<feat>   unset-attr:<Class>.<feat>
//	add-ref:<Class>.<feat>    remove-ref:<Class>.<feat>
//
// The scope binds the concerned object's attributes by name (taken from the
// new model, or from the old model for removals) plus id, class, feature,
// old, new and target — the specials win on collision.
func describeChange(c metamodel.Change, oldModel, newModel *metamodel.Model) (string, expr.MapScope) {
	scope := expr.MapScope{}
	src := newModel.Get(c.ObjectID)
	if src == nil {
		src = oldModel.Get(c.ObjectID)
	}
	if src != nil {
		for _, name := range src.AttrNames() {
			v, _ := src.Attr(name)
			scope[name] = v
		}
	}
	scope["id"] = c.ObjectID
	scope["class"] = c.Class
	var label string
	switch c.Kind {
	case metamodel.ChangeAddObject:
		label = "add-object:" + c.Class
	case metamodel.ChangeRemoveObject:
		label = "remove-object:" + c.Class
	case metamodel.ChangeSetAttr:
		label = "set-attr:" + c.Class + "." + c.Feature
		scope["feature"] = c.Feature
		scope["old"] = valueOrEmpty(c.Old)
		scope["new"] = valueOrEmpty(c.New)
	case metamodel.ChangeUnsetAttr:
		label = "unset-attr:" + c.Class + "." + c.Feature
		scope["feature"] = c.Feature
		scope["old"] = valueOrEmpty(c.Old)
	case metamodel.ChangeAddRef:
		label = "add-ref:" + c.Class + "." + c.Feature
		scope["feature"] = c.Feature
		scope["target"] = c.Target
		if t := newModel.Get(c.Target); t != nil {
			scope["targetClass"] = t.Class
		}
	case metamodel.ChangeRemoveRef:
		label = "remove-ref:" + c.Class + "." + c.Feature
		scope["feature"] = c.Feature
		scope["target"] = c.Target
	default:
		label = "change:" + c.Kind.String()
	}
	return label, scope
}

// valueOrEmpty keeps the scope total: unset old/new values bind to "".
func valueOrEmpty(v any) any {
	if v == nil {
		return ""
	}
	return v
}

// OnEvent handles an event forwarded up by the Controller layer: it is fed
// to the LTS with the label "event:<name>" and any emitted commands are
// dispatched as a script. The runtime model is not changed. Events arriving
// while a submission (or another event) is being processed are deferred and
// drained when it finishes; their processing errors are not reported.
func (s *Synthesis) OnEvent(ev broker.Event) error {
	s.opMu.Lock()
	if s.busy {
		s.pending = append(s.pending, ev)
		s.opMu.Unlock()
		return nil
	}
	s.busy = true
	s.opMu.Unlock()
	err := s.processEvent(ev)
	s.finish()
	return err
}

func (s *Synthesis) processEvent(ev broker.Event) (err error) {
	s.mEvents.Inc()
	sp := s.tracer.Start(obs.SpanSynthEvent)
	sp.SetStr("event", ev.Name)
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	scope := make(expr.MapScope, len(ev.Attrs)+1)
	for k, v := range ev.Attrs {
		scope[k] = v
	}
	scope["event"] = ev.Name
	savedState := s.instance.State()
	defer func() {
		if r := recover(); r != nil {
			s.restore(savedState)
			s.mPanics.Inc()
			err = fmt.Errorf("synthesis %s: event %s: %w", s.name, ev.Name,
				fault.Recovered("synthesis.event", r))
		}
	}()
	cmds, fired, err := s.instance.Step("event:"+ev.Name, scope)
	if err != nil {
		return fmt.Errorf("synthesis %s: event %s: %w", s.name, ev.Name, err)
	}
	if !fired || len(cmds) == 0 {
		return nil
	}
	s.seq++
	out := script.New(s.name + "-ev-" + strconv.Itoa(s.seq)).Append(cmds...)
	if err := s.dispatch(out); err != nil {
		s.restore(savedState)
		return fmt.Errorf("synthesis %s: event %s: dispatch: %w", s.name, ev.Name, err)
	}
	return nil
}
