package synthesis

import (
	"errors"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/script"
)

// commDSML is a miniature communication DSML: Session contains Streams and
// references participants.
func commDSML(t testing.TB) *metamodel.Metamodel {
	t.Helper()
	mm := metamodel.New("mini-cml")
	mm.MustAddEnum(&metamodel.Enum{Name: "Media", Literals: []string{"audio", "video", "chat"}})
	mm.MustAddClass(&metamodel.Class{Name: "Session", References: []metamodel.Reference{
		{Name: "streams", Target: "Stream", Containment: true, Many: true},
		{Name: "participants", Target: "Person", Many: true},
	}})
	mm.MustAddClass(&metamodel.Class{Name: "Stream", Attributes: []metamodel.Attribute{
		{Name: "media", Kind: metamodel.KindEnum, EnumType: "Media", Required: true},
		{Name: "bandwidth", Kind: metamodel.KindFloat, Default: 64.0},
	}})
	mm.MustAddClass(&metamodel.Class{Name: "Person", Attributes: []metamodel.Attribute{
		{Name: "name", Kind: metamodel.KindString, Required: true},
	}})
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	return mm
}

// commLTS encodes the synthesis semantics for the miniature DSML.
func commLTS() *lts.LTS {
	l := lts.New("mini-cml-sem", "run")
	l.On("run", "add-object:Session", "", "run",
		lts.CommandTemplate{Op: "createSession", Target: "session:{id}"})
	l.On("run", "remove-object:Session", "", "run",
		lts.CommandTemplate{Op: "closeSession", Target: "session:{id}"})
	l.On("run", "add-object:Stream", "", "run",
		lts.CommandTemplate{Op: "openStream", Target: "stream:{id}",
			Args: map[string]string{"media": "{media}", "bandwidth": "{bandwidth}"}})
	l.On("run", "remove-object:Stream", "", "run",
		lts.CommandTemplate{Op: "closeStream", Target: "stream:{id}"})
	l.On("run", "set-attr:Stream.media", "", "run",
		lts.CommandTemplate{Op: "setMedia", Target: "stream:{id}",
			Args: map[string]string{"media": "{new}", "was": "{old}"}})
	l.On("run", "add-ref:Session.participants", "", "run",
		lts.CommandTemplate{Op: "addParticipant", Target: "session:{id}",
			Args: map[string]string{"who": "{target}"}})
	l.On("run", "remove-ref:Session.participants", "", "run",
		lts.CommandTemplate{Op: "removeParticipant", Target: "session:{id}",
			Args: map[string]string{"who": "{target}"}})
	l.On("run", "event:streamFailed", "", "run",
		lts.CommandTemplate{Op: "recoverStream", Target: "stream:{stream}"})
	return l
}

type capture struct {
	scripts []*script.Script
	fail    bool
}

func (c *capture) dispatch(s *script.Script) error {
	if c.fail {
		return errors.New("controller rejected")
	}
	c.scripts = append(c.scripts, s)
	return nil
}

func (c *capture) all() string {
	var lines []string
	for _, s := range c.scripts {
		for _, cmd := range s.Commands {
			lines = append(lines, cmd.String())
		}
	}
	return strings.Join(lines, "\n")
}

func newSynth(t *testing.T) (*Synthesis, *capture, *[]*metamodel.Model) {
	t.Helper()
	cap := &capture{}
	var published []*metamodel.Model
	s, err := New(Config{Name: "se", DSML: commDSML(t), LTS: commLTS()},
		cap.dispatch, func(m *metamodel.Model) { published = append(published, m) })
	if err != nil {
		t.Fatal(err)
	}
	return s, cap, &published
}

func baseModel(t *testing.T) *metamodel.Model {
	t.Helper()
	m := metamodel.NewModel("mini-cml")
	m.NewObject("alice", "Person").SetAttr("name", "Alice")
	m.NewObject("bob", "Person").SetAttr("name", "Bob")
	m.NewObject("s1", "Session").
		SetRef("participants", "alice", "bob").
		SetRef("streams", "st1")
	m.NewObject("st1", "Stream").SetAttr("media", "audio")
	return m
}

func TestInitialSubmissionAgainstEmptyModel(t *testing.T) {
	s, cap, published := newSynth(t)
	out, err := s.Submit(baseModel(t))
	if err != nil {
		t.Fatal(err)
	}
	text := cap.all()
	for _, want := range []string{
		"createSession session:s1",
		`openStream stream:st1 bandwidth=64 media="audio"`,
		`addParticipant session:s1 who="alice"`,
		`addParticipant session:s1 who="bob"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Person objects have no synthesis semantics: silently skipped.
	if strings.Contains(text, "Person") {
		t.Errorf("unexpected person commands:\n%s", text)
	}
	if out.Len() != 4 {
		t.Errorf("script length: %d\n%s", out.Len(), out)
	}
	if len(*published) != 1 {
		t.Errorf("runtime model published: %d", len(*published))
	}
	if s.CurrentModel().Len() != 4 {
		t.Errorf("committed model size")
	}
}

func TestIncrementalChangeProducesMinimalScript(t *testing.T) {
	s, cap, _ := newSynth(t)
	if _, err := s.Submit(baseModel(t)); err != nil {
		t.Fatal(err)
	}
	cap.scripts = nil

	// Change media, drop bob, add a new stream.
	next := baseModel(t)
	next.Get("st1").SetAttr("media", "video")
	next.Get("s1").RemoveRef("participants", "bob")
	next.NewObject("st2", "Stream").SetAttr("media", "chat").SetAttr("bandwidth", 8)
	next.Get("s1").AddRef("streams", "st2")

	out, err := s.Submit(next)
	if err != nil {
		t.Fatal(err)
	}
	text := cap.all()
	for _, want := range []string{
		`setMedia stream:st1 media="video" was="audio"`,
		`removeParticipant session:s1 who="bob"`,
		`openStream stream:st2 bandwidth=8 media="chat"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, "createSession") {
		t.Errorf("unchanged session must not be recreated:\n%s", text)
	}
	if out.Len() != 3 {
		t.Errorf("script length: %d\n%s", out.Len(), out)
	}
}

func TestIdenticalResubmissionIsEmpty(t *testing.T) {
	s, cap, _ := newSynth(t)
	if _, err := s.Submit(baseModel(t)); err != nil {
		t.Fatal(err)
	}
	cap.scripts = nil
	out, err := s.Submit(baseModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("no-change submission: %s", out)
	}
}

func TestTeardownSubmission(t *testing.T) {
	s, cap, _ := newSynth(t)
	if _, err := s.Submit(baseModel(t)); err != nil {
		t.Fatal(err)
	}
	cap.scripts = nil
	// Submit an empty model: everything is torn down.
	out, err := s.Submit(metamodel.NewModel("mini-cml"))
	if err != nil {
		t.Fatal(err)
	}
	text := cap.all()
	for _, want := range []string{"closeSession session:s1", "closeStream stream:st1", `removeParticipant session:s1 who="alice"`} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	_ = out
}

func TestNonConformantModelRejected(t *testing.T) {
	s, _, _ := newSynth(t)
	bad := metamodel.NewModel("mini-cml")
	bad.NewObject("x", "Stream") // missing required media
	_, err := s.Submit(bad)
	if err == nil || !strings.Contains(err.Error(), "does not conform") {
		t.Fatalf("got %v", err)
	}
	if s.CurrentModel().Len() != 0 {
		t.Error("failed submission must not commit")
	}
}

func TestDispatchFailureRollsBack(t *testing.T) {
	s, cap, published := newSynth(t)
	cap.fail = true
	_, err := s.Submit(baseModel(t))
	if err == nil || !strings.Contains(err.Error(), "dispatch") {
		t.Fatalf("got %v", err)
	}
	if s.CurrentModel().Len() != 0 {
		t.Error("failed dispatch must not commit the model")
	}
	if len(*published) != 0 {
		t.Error("failed dispatch must not publish")
	}
	// Retry after the controller recovers.
	cap.fail = false
	if _, err := s.Submit(baseModel(t)); err != nil {
		t.Fatal(err)
	}
	if s.CurrentModel().Len() != 4 {
		t.Error("retry must commit")
	}
}

func TestInterpreterErrorRollsBackLTSState(t *testing.T) {
	// An LTS whose emit references an unbound placeholder, and which moves
	// state on a first event; the failed batch must restore the state.
	l := lts.New("fragile", "a")
	l.On("a", "add-object:Session", "", "b")
	l.On("b", "add-object:Stream", "", "b",
		lts.CommandTemplate{Op: "x", Target: "{ghost}"})
	cap := &capture{}
	s, err := New(Config{Name: "se", DSML: commDSML(t), LTS: l}, cap.dispatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := metamodel.NewModel("mini-cml")
	m.NewObject("s1", "Session")
	m.NewObject("st1", "Stream").SetAttr("media", "audio")
	m.Get("s1").SetRef("streams", "st1")
	_, err = s.Submit(m)
	if err == nil {
		t.Fatal("want interpretation error")
	}
	if s.State() != "a" {
		t.Errorf("LTS state must be restored: %s", s.State())
	}
}

func TestOnEventDispatchesRecovery(t *testing.T) {
	s, cap, _ := newSynth(t)
	if _, err := s.Submit(baseModel(t)); err != nil {
		t.Fatal(err)
	}
	cap.scripts = nil
	err := s.OnEvent(broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": "st1"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cap.all(), "recoverStream stream:st1") {
		t.Errorf("recovery script:\n%s", cap.all())
	}
	// Unmatched events are ignored.
	cap.scripts = nil
	if err := s.OnEvent(broker.Event{Name: "nothingKnown"}); err != nil {
		t.Fatal(err)
	}
	if len(cap.scripts) != 0 {
		t.Error("unmatched event must not dispatch")
	}
}

func TestOnEventDispatchFailure(t *testing.T) {
	s, cap, _ := newSynth(t)
	if _, err := s.Submit(baseModel(t)); err != nil {
		t.Fatal(err)
	}
	cap.fail = true
	err := s.OnEvent(broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": "st1"}})
	if err == nil || !strings.Contains(err.Error(), "dispatch") {
		t.Fatalf("got %v", err)
	}
}

func TestConstructorValidation(t *testing.T) {
	dsml := commDSML(t)
	okLTS := commLTS()
	if _, err := New(Config{Name: "s", DSML: nil, LTS: okLTS}, func(*script.Script) error { return nil }, nil); err == nil {
		t.Error("nil DSML")
	}
	if _, err := New(Config{Name: "s", DSML: dsml, LTS: nil}, func(*script.Script) error { return nil }, nil); err == nil {
		t.Error("nil LTS")
	}
	if _, err := New(Config{Name: "s", DSML: dsml, LTS: okLTS}, nil, nil); err == nil {
		t.Error("nil dispatch")
	}
	badLTS := lts.New("bad", "x")
	badLTS.AddTransition(lts.Transition{From: "ghost", Event: "e", To: "x"})
	if _, err := New(Config{Name: "s", DSML: dsml, LTS: badLTS}, func(*script.Script) error { return nil }, nil); err == nil {
		t.Error("invalid LTS")
	}
	badMM := metamodel.New("bad")
	badMM.MustAddClass(&metamodel.Class{Name: "A", Super: "Ghost"})
	if _, err := New(Config{Name: "s", DSML: badMM, LTS: okLTS}, func(*script.Script) error { return nil }, nil); err == nil {
		t.Error("invalid DSML")
	}
}

func TestName(t *testing.T) {
	s, _, _ := newSynth(t)
	if s.Name() != "se" {
		t.Error("Name")
	}
}

func BenchmarkSubmitIncremental(b *testing.B) {
	cap := &capture{}
	s, err := New(Config{Name: "se", DSML: commDSML(b), LTS: commLTS()}, cap.dispatch, nil)
	if err != nil {
		b.Fatal(err)
	}
	m1 := metamodel.NewModel("mini-cml")
	m1.NewObject("s1", "Session")
	m2 := m1.Clone()
	m2.NewObject("st1", "Stream").SetAttr("media", "audio")
	m2.Get("s1").SetRef("streams", "st1")
	if _, err := s.Submit(m1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cap.scripts = cap.scripts[:0]
		if i%2 == 0 {
			if _, err := s.Submit(m2); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := s.Submit(m1); err != nil {
				b.Fatal(err)
			}
		}
	}
}
