package controller

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// fakeBroker records calls made by the Controller.
type fakeBroker struct {
	trace  script.Trace
	failOn string
}

func (b *fakeBroker) Call(cmd script.Command) error {
	if b.failOn != "" && cmd.Op == b.failOn {
		return errors.New("broker failure")
	}
	b.trace.Record(cmd)
	return nil
}

// repo builds a minimal repository: goal op.play has two providers.
func repo(t testing.TB) *registry.Repository {
	t.Helper()
	tx := dsc.NewTaxonomy()
	for _, id := range []string{"op.play", "op.decode"} {
		tx.MustAdd(&dsc.DSC{ID: id, Domain: "d", Category: dsc.Operation})
	}
	r := registry.NewRepository(tx)
	r.MustAdd(&registry.Procedure{
		ID: "playCheap", ClassifiedBy: "op.play", Cost: 2, Reliability: 0.9,
		Dependencies: []string{"op.decode"},
		Unit: eu.NewUnit("playCheap",
			eu.Call("op.decode"),
			eu.Invoke("playStream", "{target}", "quality", "'low'"),
		),
	})
	r.MustAdd(&registry.Procedure{
		ID: "playSolid", ClassifiedBy: "op.play", Cost: 30, Reliability: 0.999,
		Dependencies: []string{"op.decode"},
		Unit: eu.NewUnit("playSolid",
			eu.Call("op.decode"),
			eu.Invoke("playStream", "{target}", "quality", "'high'"),
		),
	})
	r.MustAdd(&registry.Procedure{
		ID: "decode", ClassifiedBy: "op.decode", Cost: 1, Reliability: 0.99,
		Unit: eu.NewUnit("decode", eu.Invoke("decodeInit", "{target}")),
	})
	return r
}

func newController(t testing.TB, cfg Config, b BrokerAPI) (*Controller, *[]broker.Event) {
	t.Helper()
	var upward []broker.Event
	c := New(cfg, b, func(e broker.Event) { upward = append(upward, e) })
	return c, &upward
}

func TestCase1PredefinedAction(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{
		Name: "c",
		Actions: []*Action{{
			Name: "setMedia", Ops: []string{"setMedia"},
			Steps: []script.Template{
				{Op: "reconfigure", Target: "{target}", Args: map[string]string{"media": "{media}"}},
			},
		}},
	}
	c, _ := newController(t, cfg, fb)
	cmd := script.NewCommand("setMedia", "stream:s1").WithArg("media", "video")
	if err := c.Process(cmd); err != nil {
		t.Fatal(err)
	}
	if got := fb.trace.Lines()[0]; got != `reconfigure stream:s1 media="video"` {
		t.Errorf("got %q", got)
	}
	s := c.Stats()
	if s.Case1 != 1 || s.Case2 != 0 || s.Commands != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestCase2IntentGeneration(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{
		Name:       "c",
		Classes:    []CommandClass{{Op: "play", GoalDSC: "op.play"}},
		Repository: repo(t),
	}
	c, _ := newController(t, cfg, fb)
	if err := c.Process(script.NewCommand("play", "stream:s1")); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(fb.trace.Lines(), ";")
	want := `decodeInit stream:s1;playStream stream:s1 quality="low"`
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
	s := c.Stats()
	if s.Case2 != 1 || s.Generated != 1 {
		t.Errorf("stats: %+v", s)
	}
	// Second run hits the cache.
	if err := c.Process(script.NewCommand("play", "stream:s2")); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Generated != 1 || s.CacheHits != 1 {
		t.Errorf("cache stats: %+v", s)
	}
}

func TestClassificationPolicyForcesIntent(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{
		Name: "c",
		Actions: []*Action{{
			Name: "playAction", Ops: []string{"play"},
			Steps: []script.Template{{Op: "predefPlay", Target: "{target}"}},
		}},
		Classes:    []CommandClass{{Op: "play", GoalDSC: "op.play"}},
		Repository: repo(t),
		Policies: []policy.Policy{
			policy.Rule("memory", 10, "memoryLow", policy.Effect{Key: "case", Value: "intent"}),
		},
	}
	c, _ := newController(t, cfg, fb)

	// Default: predefined action wins.
	if err := c.Process(script.NewCommand("play", "stream:s1")); err != nil {
		t.Fatal(err)
	}
	if fb.trace.Lines()[0] != "predefPlay stream:s1" {
		t.Errorf("default case: %q", fb.trace.Lines()[0])
	}

	// With memoryLow the policy forces Case 2 (paper §VI: reduced memory
	// footprint prefers dynamic IM generation over stored actions).
	c.Context().Set("memoryLow", true)
	if err := c.Process(script.NewCommand("play", "stream:s2")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fb.trace.Lines()[len(fb.trace.Lines())-1], "playStream") {
		t.Errorf("forced intent: %v", fb.trace.Lines())
	}
	s := c.Stats()
	if s.Case1 != 1 || s.Case2 != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestIntentSelectionPolicies(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{
		Name:       "c",
		Classes:    []CommandClass{{Op: "play", GoalDSC: "op.play"}},
		Repository: repo(t),
		Policies: []policy.Policy{
			policy.Rule("critical", 5, "critical", policy.Effect{Key: "optimize", Value: "reliability"}),
		},
	}
	c, _ := newController(t, cfg, fb)
	c.Context().Set("critical", true)
	if err := c.Process(script.NewCommand("play", "stream:s1")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(fb.trace.Lines(), ";"), `quality="high"`) {
		t.Errorf("reliability selection: %v", fb.trace.Lines())
	}
}

func TestExecuteScriptAborts(t *testing.T) {
	fb := &fakeBroker{failOn: "boom"}
	cfg := Config{Name: "c", Actions: []*Action{
		{Name: "ok", Ops: []string{"ok"}, Steps: []script.Template{{Op: "fine", Target: "t"}}},
		{Name: "bad", Ops: []string{"bad"}, Steps: []script.Template{{Op: "boom", Target: "t"}}},
	}}
	c, _ := newController(t, cfg, fb)
	s := script.New("s").Append(
		script.NewCommand("ok", "t"),
		script.NewCommand("bad", "t"),
		script.NewCommand("ok", "t"),
	)
	err := c.Execute(s)
	if err == nil || !strings.Contains(err.Error(), "command 1") {
		t.Fatalf("got %v", err)
	}
	if fb.trace.Len() != 1 {
		t.Errorf("script must abort at the failure: %v", fb.trace.Lines())
	}
}

func TestProcessErrors(t *testing.T) {
	fb := &fakeBroker{}
	t.Run("unroutable op", func(t *testing.T) {
		c, _ := newController(t, Config{Name: "c"}, fb)
		err := c.Process(script.NewCommand("mystery", "t"))
		if err == nil || !strings.Contains(err.Error(), "no predefined action and no command class") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("classified action but none matches", func(t *testing.T) {
		cfg := Config{Name: "c", Policies: []policy.Policy{
			policy.Rule("force", 1, "true", policy.Effect{Key: "case", Value: "action"}),
		}}
		c, _ := newController(t, cfg, fb)
		err := c.Process(script.NewCommand("x", "t"))
		if err == nil || !strings.Contains(err.Error(), "no action handles") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("classified intent without repository", func(t *testing.T) {
		cfg := Config{Name: "c", Policies: []policy.Policy{
			policy.Rule("force", 1, "true", policy.Effect{Key: "case", Value: "intent"}),
		}}
		c, _ := newController(t, cfg, fb)
		err := c.Process(script.NewCommand("x", "t"))
		if err == nil || !strings.Contains(err.Error(), "no procedure repository") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("intent without command class", func(t *testing.T) {
		cfg := Config{Name: "c", Repository: repo(t), Policies: []policy.Policy{
			policy.Rule("force", 1, "true", policy.Effect{Key: "case", Value: "intent"}),
		}}
		c, _ := newController(t, cfg, fb)
		err := c.Process(script.NewCommand("x", "t"))
		if err == nil || !strings.Contains(err.Error(), "no command class") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("unknown case", func(t *testing.T) {
		cfg := Config{Name: "c", Policies: []policy.Policy{
			policy.Rule("weird", 1, "true", policy.Effect{Key: "case", Value: "zzz"}),
		}}
		c, _ := newController(t, cfg, fb)
		err := c.Process(script.NewCommand("x", "t"))
		if err == nil || !strings.Contains(err.Error(), "unknown case") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("classification error", func(t *testing.T) {
		cfg := Config{Name: "c", Policies: []policy.Policy{
			policy.Rule("bad", 1, "n > 'x'"),
		}}
		c, _ := newController(t, cfg, fb)
		c.Context().Set("n", 1)
		err := c.Process(script.NewCommand("x", "t").WithArg("x", "s"))
		if err == nil || !strings.Contains(err.Error(), "classification") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("guard error", func(t *testing.T) {
		cfg := Config{Name: "c", Actions: []*Action{{
			Name: "a", Ops: []string{"x"}, Guard: expr.MustParse("1 > 'a'"),
		}}}
		c, _ := newController(t, cfg, fb)
		err := c.Process(script.NewCommand("x", "t"))
		if err == nil || !strings.Contains(err.Error(), "guard") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("step error", func(t *testing.T) {
		cfg := Config{Name: "c", Actions: []*Action{{
			Name: "a", Ops: []string{"x"},
			Steps: []script.Template{{Op: "op", Target: "{ghost}"}},
		}}}
		c, _ := newController(t, cfg, fb)
		if err := c.Process(script.NewCommand("x", "t")); err == nil {
			t.Error("unbound placeholder must fail")
		}
	})
}

func TestGuardedActionFallsThroughToSecond(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{Name: "c", Actions: []*Action{
		{
			Name: "videoPath", Ops: []string{"open"},
			Guard: expr.MustParse("media == 'video'"),
			Steps: []script.Template{{Op: "openVideo", Target: "{target}"}},
		},
		{
			Name:  "anyPath",
			Ops:   []string{"open"},
			Steps: []script.Template{{Op: "openAny", Target: "{target}"}},
		},
	}}
	c, _ := newController(t, cfg, fb)
	if err := c.Process(script.NewCommand("open", "s:1").WithArg("media", "audio")); err != nil {
		t.Fatal(err)
	}
	if fb.trace.Lines()[0] != "openAny s:1" {
		t.Errorf("fallthrough: %q", fb.trace.Lines()[0])
	}
}

func TestEventHandlerStepsAndForwarding(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{Name: "c", EventActions: []*EventAction{
		{
			Name: "onFail", Event: "streamFailed",
			Steps: []script.Template{{Op: "recover", Target: "stream:{stream}"}},
		},
		{Name: "onLeft", Event: "participantLeft", Forward: true},
	}}
	c, upward := newController(t, cfg, fb)
	if err := c.OnEvent(broker.Event{Name: "streamFailed", Attrs: map[string]any{"stream": "s1"}}); err != nil {
		t.Fatal(err)
	}
	if fb.trace.Lines()[0] != "recover stream:s1" {
		t.Errorf("event step: %q", fb.trace.Lines()[0])
	}
	if len(*upward) != 0 {
		t.Error("handled event must not forward")
	}
	if err := c.OnEvent(broker.Event{Name: "participantLeft"}); err != nil {
		t.Fatal(err)
	}
	if err := c.OnEvent(broker.Event{Name: "unmatched"}); err != nil {
		t.Fatal(err)
	}
	if len(*upward) != 2 {
		t.Errorf("forwarding: %v", *upward)
	}
	if c.Stats().Events != 3 {
		t.Errorf("event count: %+v", c.Stats())
	}
}

func TestInstalledScriptTriggeredByEvent(t *testing.T) {
	// The 2SVM pattern: a script installed at the layer executes when an
	// asynchronous event arrives, going through command classification.
	fb := &fakeBroker{}
	installed := script.New("welcome").Append(
		script.NewCommand("greet", "object:{?}"), // static target; args resolved at install time
	)
	cfg := Config{
		Name: "c",
		Actions: []*Action{{
			Name: "greet", Ops: []string{"greet"},
			Steps: []script.Template{{Op: "say", Target: "hello"}},
		}},
		EventActions: []*EventAction{{
			Name: "onEnter", Event: "objectEntered", Script: installed,
		}},
	}
	c, _ := newController(t, cfg, fb)
	if err := c.OnEvent(broker.Event{Name: "objectEntered", Attrs: map[string]any{"object": "lamp1"}}); err != nil {
		t.Fatal(err)
	}
	if fb.trace.Lines()[0] != "say hello" {
		t.Errorf("installed script: %v", fb.trace.Lines())
	}
}

func TestEventGuardError(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{Name: "c", EventActions: []*EventAction{{
		Name: "g", Event: "e", Guard: expr.MustParse("1 > 'x'"),
	}}}
	c, _ := newController(t, cfg, fb)
	if err := c.OnEvent(broker.Event{Name: "e"}); err == nil {
		t.Error("guard error must propagate")
	}
}

func TestEventStepFailureReported(t *testing.T) {
	fb := &fakeBroker{failOn: "boom"}
	cfg := Config{Name: "c", EventActions: []*EventAction{{
		Name: "f", Event: "e", Steps: []script.Template{{Op: "boom", Target: "t"}},
	}}}
	c, _ := newController(t, cfg, fb)
	if err := c.OnEvent(broker.Event{Name: "e"}); err == nil {
		t.Error("step failure must be reported")
	}
}

func TestEUEmittedEventReachesHandler(t *testing.T) {
	fb := &fakeBroker{}
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.x", Domain: "d", Category: dsc.Operation})
	r := registry.NewRepository(tx)
	r.MustAdd(&registry.Procedure{
		ID: "x", ClassifiedBy: "op.x", Cost: 1,
		Unit: eu.NewUnit("x", eu.Emit("progress", "pct", "50")),
	})
	cfg := Config{
		Name:       "c",
		Classes:    []CommandClass{{Op: "go", GoalDSC: "op.x"}},
		Repository: r,
		EventActions: []*EventAction{{
			Name: "onProgress", Event: "progress",
			Steps: []script.Template{{Op: "noteProgress", Target: "t", Args: map[string]string{"pct": "{pct}"}}},
		}},
	}
	c, _ := newController(t, cfg, fb)
	if err := c.Process(script.NewCommand("go", "t")); err != nil {
		t.Fatal(err)
	}
	if got := fb.trace.Lines()[0]; got != "noteProgress t pct=50" {
		t.Errorf("EU event: %q", got)
	}
}

func TestVirtualTimeCharging(t *testing.T) {
	fb := &fakeBroker{}
	clock := simtime.NewVirtual()
	start := clock.Now()
	cfg := Config{
		Name:       "c",
		Classes:    []CommandClass{{Op: "play", GoalDSC: "op.play"}},
		Repository: repo(t),
		Clock:      clock,
	}
	c, _ := newController(t, cfg, fb)
	if err := c.Process(script.NewCommand("play", "s:1")); err != nil {
		t.Fatal(err)
	}
	// Costs: playCheap 2 + decode 1 = 3 virtual ms.
	if got := clock.Since(start); got != 3*time.Millisecond {
		t.Errorf("virtual time: %v", got)
	}
}

func TestInvalidateIntentCache(t *testing.T) {
	fb := &fakeBroker{}
	r := repo(t)
	cfg := Config{Name: "c", Classes: []CommandClass{{Op: "play", GoalDSC: "op.play"}}, Repository: r}
	c, _ := newController(t, cfg, fb)
	if err := c.Process(script.NewCommand("play", "s:1")); err != nil {
		t.Fatal(err)
	}
	c.InvalidateIntentCache()
	if err := c.Process(script.NewCommand("play", "s:1")); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Generated; got != 2 {
		t.Errorf("generations after invalidate: %d", got)
	}
	// No-repository controller tolerates invalidation.
	c2, _ := newController(t, Config{Name: "c2"}, fb)
	c2.InvalidateIntentCache()
}

func TestName(t *testing.T) {
	c, _ := newController(t, Config{Name: "ucm"}, &fakeBroker{})
	if c.Name() != "ucm" {
		t.Error("Name")
	}
}

func BenchmarkCase1Action(b *testing.B) {
	fb := &fakeBroker{}
	cfg := Config{Name: "c", Actions: []*Action{{
		Name: "a", Ops: []string{"x"},
		Steps: []script.Template{{Op: "op", Target: "{target}"}},
	}}}
	c := New(cfg, fb, nil)
	cmd := script.NewCommand("x", "t:1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Process(cmd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCase2IntentWarm(b *testing.B) {
	fb := &fakeBroker{}
	cfg := Config{Name: "c", Classes: []CommandClass{{Op: "play", GoalDSC: "op.play"}}, Repository: repo(b)}
	c := New(cfg, fb, nil)
	cmd := script.NewCommand("play", "s:1")
	if err := c.Process(cmd); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Process(cmd); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPolicySelectsNamedAction(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{Name: "c",
		Actions: []*Action{
			{Name: "economy", Ops: []string{"open"},
				Steps: []script.Template{{Op: "openLow", Target: "{target}"}}},
			{Name: "premium", Ops: []string{"open"},
				Steps: []script.Template{{Op: "openHigh", Target: "{target}"}}},
		},
		Policies: []policy.Policy{
			policy.Rule("vip", 10, "tier == 'gold'", policy.Effect{Key: "action", Value: "premium"}),
		},
	}
	c, _ := newController(t, cfg, fb)
	// Default: declaration order picks economy.
	if err := c.Process(script.NewCommand("open", "s:1")); err != nil {
		t.Fatal(err)
	}
	if fb.trace.Lines()[0] != "openLow s:1" {
		t.Errorf("default: %q", fb.trace.Lines()[0])
	}
	// Gold tier: the policy names the premium action.
	c.Context().Set("tier", "gold")
	if err := c.Process(script.NewCommand("open", "s:2")); err != nil {
		t.Fatal(err)
	}
	if fb.trace.Lines()[1] != "openHigh s:2" {
		t.Errorf("policy-selected: %q", fb.trace.Lines()[1])
	}
}

func TestPolicyDeniesCommand(t *testing.T) {
	fb := &fakeBroker{}
	o := obs.New()
	cfg := Config{Name: "c",
		Actions: []*Action{{Name: "openAction", Ops: []string{"open"},
			Steps: []script.Template{{Op: "svcOpen", Target: "{target}"}}}},
		Policies: []policy.Policy{
			policy.Rule("lockdown", 10, "locked", policy.Effect{Key: "deny", Value: true}),
		},
		Tracer:  o.TracerOf(),
		Metrics: o.MetricsOf(),
	}
	c, _ := newController(t, cfg, fb)
	// Unlocked: the command runs.
	if err := c.Process(script.NewCommand("open", "s:1")); err != nil {
		t.Fatal(err)
	}
	// Locked: the policy denies, the adapter stays untouched, the denial
	// is counted in both the stats and the obs metrics.
	c.Context().Set("locked", true)
	err := c.Process(script.NewCommand("open", "s:2"))
	if err == nil || !strings.Contains(err.Error(), "denied by policy") {
		t.Fatalf("err = %v, want policy denial", err)
	}
	if n := len(fb.trace.Lines()); n != 1 {
		t.Errorf("adapter saw %d commands, want 1", n)
	}
	if got := c.Stats().Denied; got != 1 {
		t.Errorf("Stats.Denied = %d, want 1", got)
	}
	if got := o.MetricsOf().CounterValue(obs.MPolicyDenials); got != 1 {
		t.Errorf("denials counter = %d, want 1", got)
	}
}

func TestPolicySelectedActionErrors(t *testing.T) {
	fb := &fakeBroker{}
	cfg := Config{Name: "c",
		Actions: []*Action{
			{Name: "other", Ops: []string{"different"},
				Steps: []script.Template{{Op: "x", Target: "t"}}},
		},
		Policies: []policy.Policy{
			policy.Rule("ghostly", 10, "pickGhost", policy.Effect{Key: "action", Value: "ghost"}),
			policy.Rule("wrongOp", 5, "pickOther", policy.Effect{Key: "action", Value: "other"}),
		},
	}
	c, _ := newController(t, cfg, fb)
	c.Context().Set("pickGhost", true)
	c.Context().Set("pickOther", false)
	if err := c.Process(script.NewCommand("open", "t")); err == nil ||
		!strings.Contains(err.Error(), "unknown action") {
		t.Errorf("got %v", err)
	}
	c.Context().Set("pickGhost", false)
	c.Context().Set("pickOther", true)
	if err := c.Process(script.NewCommand("open", "t")); err == nil ||
		!strings.Contains(err.Error(), "does not handle") {
		t.Errorf("got %v", err)
	}
}
