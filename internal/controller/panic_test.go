package controller

import (
	"sync"
	"testing"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// panicBroker panics on a designated op — a poisoned downstream layer.
type panicBroker struct {
	panicOn string
	reenter func(cmd script.Command) error
}

func (b *panicBroker) Call(cmd script.Command) error {
	if cmd.Op == b.panicOn {
		panic("poisoned broker call")
	}
	if b.reenter != nil {
		return b.reenter(cmd)
	}
	return nil
}

// TestProcessPanicBecomesError: a panic below Process (here the BrokerAPI)
// is recovered into a classified PanicError instead of unwinding through
// the dispatch path.
func TestProcessPanicBecomesError(t *testing.T) {
	m := obs.NewMetrics()
	cfg := Config{
		Name:    "c",
		Metrics: m,
		Actions: []*Action{{
			Name: "boom", Ops: []string{"boom"},
			Steps: []script.Template{{Op: "explode", Target: "{target}"}},
		}},
	}
	c, _ := newController(t, cfg, &panicBroker{panicOn: "explode"})
	err := c.Process(script.NewCommand("boom", "svc:1"))
	if !fault.IsPanic(err) {
		t.Fatalf("Process error = %v, want a recovered PanicError", err)
	}
	if got := m.CounterValue(obs.MPanicsRecovered); got != 1 {
		t.Errorf("panic.recovered = %d, want 1", got)
	}
}

// TestOnEventDrainPanicCleansQueue is the regression test for the
// re-entrancy leak mirrored from the Broker layer: a panic escaping the
// drain must clean the goroutine's queue entry, count the dropped
// re-entrant events, and leave the layer able to process later events.
func TestOnEventDrainPanicCleansQueue(t *testing.T) {
	m := obs.NewMetrics()
	var c *Controller
	fb := &panicBroker{reenter: func(cmd script.Command) error {
		if cmd.Op == "reenter" {
			return c.OnEvent(broker.Event{Name: "child"})
		}
		return nil
	}}
	var (
		mu       sync.Mutex
		panicked = true
		notified []string
	)
	c = New(Config{
		Name:    "c",
		Metrics: m,
		EventActions: []*EventAction{{
			Name: "boomAct", Event: "boom",
			Steps:   []script.Template{{Op: "reenter", Target: "x"}},
			Forward: true,
		}},
	}, fb, func(ev broker.Event) {
		mu.Lock()
		defer mu.Unlock()
		if panicked {
			panic("poisoned notify")
		}
		notified = append(notified, ev.Name)
	})

	err := c.OnEvent(broker.Event{Name: "boom"})
	if !fault.IsPanic(err) {
		t.Fatalf("OnEvent error = %v, want a recovered PanicError", err)
	}
	if got := m.CounterValue(obs.MControllerReentrantDropped); got != 1 {
		t.Errorf("reentrant dropped = %d, want 1 (the queued child event)", got)
	}

	mu.Lock()
	panicked = false
	mu.Unlock()
	if err := c.OnEvent(broker.Event{Name: "boom"}); err != nil {
		t.Fatalf("OnEvent after recovery: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 2 || notified[0] != "boom" || notified[1] != "child" {
		t.Errorf("post-recovery notifications = %v, want [boom child]", notified)
	}
}
