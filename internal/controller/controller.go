// Package controller implements the Controller layer of the MD-DSM
// reference architecture (paper §III, §V-B, §VI, Fig. 8). The layer drives
// the execution of command scripts received from the Synthesis layer:
// received signals (calls and events) are queued, parsed into commands, and
// classified — taking domain policies and context into account — into
// Case 1 (selection of a predefined action) or Case 2 (dynamic generation
// of an intent model executed on the stack machine). Events from the Broker
// layer, or raised by the Controller itself, are processed by the event
// handler, which can also trigger installed scripts (the 2SVM pattern).
package controller

import (
	"fmt"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/intent"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/policy"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// SiteDispatch is the fault point fired on each command dispatch, letting
// a fault.Injector rehearse Controller-level failures deterministically.
const SiteDispatch = "controller.dispatch"

// BrokerAPI is the surface of the layer below: the Broker's exposed call
// interface.
type BrokerAPI interface {
	Call(cmd script.Command) error
}

// Action is a predefined Case-1 action: it realises one or more command
// operations as a sequence of Broker calls.
type Action struct {
	Name  string
	Ops   []string
	Guard expr.Node
	Steps []script.Template
	// ForwardArgs copies the triggering command's arguments onto every
	// expanded step call (explicit step args win).
	ForwardArgs bool
}

func (a *Action) handles(op string) bool {
	for _, o := range a.Ops {
		if o == op || o == "*" {
			return true
		}
	}
	return false
}

// EventAction reacts to an event reaching the Controller's event handler.
// Steps are Broker calls; Script, when set, is an installed command script
// re-entering the Controller's own command pipeline (classification
// included) — the mechanism 2SVM uses for scripts whose execution is
// triggered by asynchronous events. Forward propagates the event upward to
// the Synthesis layer.
type EventAction struct {
	Name    string
	Event   string // event name or "*"
	Guard   expr.Node
	Steps   []script.Template
	Script  *script.Script
	Forward bool
}

// CommandClass maps a command operation to the goal DSC realising it in
// Case 2. This is the command-classification metadata of the middleware
// model.
type CommandClass struct {
	Op      string
	GoalDSC string
}

// Config assembles a Controller layer.
type Config struct {
	Name         string
	Actions      []*Action
	EventActions []*EventAction
	Classes      []CommandClass
	// Policies drive command classification (decision key "case":
	// "action" or "intent") and intent-model selection (keys "optimize",
	// "preferTag", "maxCost").
	Policies []policy.Policy
	// Repository backs Case-2 generation; may be nil for a Controller
	// that relies solely on predefined action handlers.
	Repository *registry.Repository
	Generator  intent.Options
	Machine    eu.Limits
	// Clock charges procedure costs and EU delays as virtual time; nil
	// disables time accounting.
	Clock simtime.Clock
	// Tracer and Metrics observe the layer; both may be nil (disabled).
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
	// Injector evaluates the layer's SiteDispatch fault point; nil
	// disables injection.
	Injector *fault.Injector
}

// Stats counts layer activity for the evaluation harness.
type Stats struct {
	Commands  int
	Case1     int
	Case2     int
	Events    int
	Denied    int // commands refused by a policy "deny" effect
	Generated int // full IM generation cycles (excluding cache hits)
	CacheHits int
}

// Controller is the live Controller layer.
type Controller struct {
	name     string
	broker   BrokerAPI
	context  *policy.Context
	engine   *policy.Engine
	actions  []*Action
	events   []*EventAction
	classes  map[string]string
	injector *fault.Injector
	gen      *intent.Generator
	machine  *eu.Machine
	notify   func(broker.Event)
	funcs    map[string]expr.Func

	tracer    *obs.Tracer
	mCommands *obs.Counter
	mScripts  *obs.Counter
	mEvents   *obs.Counter
	mDenials  *obs.Counter

	mPanics           *obs.Counter
	mReentrantDropped *obs.Counter

	mu    sync.Mutex
	stats Stats

	evMu     sync.Mutex
	evQueues map[uint64][]broker.Event // per-goroutine re-entrancy queues
}

// clockCharger charges machine time against a clock.
type clockCharger struct{ clock simtime.Clock }

var _ eu.TimeCharger = clockCharger{}

// Charge implements eu.TimeCharger.
func (c clockCharger) Charge(d time.Duration) { c.clock.Sleep(d) }

// eventSink lets running EUs raise Controller events.
type eventSink struct{ c *Controller }

func (s eventSink) Emit(event string, args map[string]any) {
	// Errors from event processing inside an EU are deliberately dropped:
	// the EU's own failure path is its return value.
	_ = s.c.OnEvent(broker.Event{Name: event, Attrs: args})
}

// New builds a Controller on top of a Broker. notify receives events
// forwarded to the Synthesis layer and may be nil.
func New(cfg Config, b BrokerAPI, notify func(broker.Event)) *Controller {
	c := &Controller{
		name:      cfg.Name,
		broker:    b,
		context:   policy.NewContext(),
		engine:    policy.NewEngine(cfg.Policies...),
		actions:   cfg.Actions,
		events:    cfg.EventActions,
		classes:   make(map[string]string, len(cfg.Classes)),
		injector:  cfg.Injector,
		notify:    notify,
		funcs:     expr.StdFuncs(),
		tracer:    cfg.Tracer,
		mCommands: cfg.Metrics.Counter(obs.MControllerCommands),
		mScripts:  cfg.Metrics.Counter(obs.MScriptsExecuted),
		mEvents:   cfg.Metrics.Counter(obs.MControllerEvents),
		mDenials:  cfg.Metrics.Counter(obs.MPolicyDenials),

		mPanics:           cfg.Metrics.Counter(obs.MPanicsRecovered),
		mReentrantDropped: cfg.Metrics.Counter(obs.MControllerReentrantDropped),
	}
	for _, cl := range cfg.Classes {
		c.classes[cl.Op] = cl.GoalDSC
	}
	if cfg.Repository != nil {
		c.gen = intent.NewGenerator(cfg.Repository, c.engine, cfg.Generator)
	}
	var charger eu.TimeCharger
	if cfg.Clock != nil {
		charger = clockCharger{clock: cfg.Clock}
	}
	c.machine = eu.NewMachine(brokerInvoker{b}, eventSink{c}, charger, cfg.Machine)
	c.machine.SetObs(cfg.Tracer, cfg.Metrics)
	return c
}

// brokerInvoker adapts BrokerAPI to the machine's eu.Broker interface.
type brokerInvoker struct{ api BrokerAPI }

func (bi brokerInvoker) Invoke(cmd script.Command) error { return bi.api.Call(cmd) }

// Name returns the layer instance name.
func (c *Controller) Name() string { return c.name }

// Context returns the layer's context-variable store.
func (c *Controller) Context() *policy.Context { return c.context }

// Stats returns a copy of the activity counters, folding in generator
// statistics.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	if c.gen != nil {
		gs := c.gen.Stats()
		s.Generated = gs.Generations
		s.CacheHits = gs.CacheHits
	}
	return s
}

// RestoreStats reinstates checkpointed activity counters on a freshly
// built layer. Generated and CacheHits are live generator statistics and
// are not restored (a fresh generator starts cold).
func (c *Controller) RestoreStats(s Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.Generated = 0
	s.CacheHits = 0
	c.stats = s
}

// InvalidateIntentCache clears the Case-2 generation cache. Call it after
// mutating the procedure repository.
func (c *Controller) InvalidateIntentCache() {
	if c.gen != nil {
		c.gen.Invalidate()
	}
}

// Execute runs a command script: the layer's main entry point for the
// Synthesis layer. Commands are processed in order; the first failure
// aborts the script.
func (c *Controller) Execute(s *script.Script) error {
	c.mScripts.Inc()
	sp := c.tracer.Start(obs.SpanCtlScript)
	sp.SetStr("script", s.ID)
	defer sp.End()
	for i, cmd := range s.Commands {
		if err := c.Process(cmd); err != nil {
			return fmt.Errorf("controller %s: script %s: command %d (%s): %w",
				c.name, s.ID, i, cmd.Op, err)
		}
	}
	return nil
}

// Process classifies and executes a single command. A panic escaping the
// dispatch — a poisoned stub below the layer, a broken generator — is
// recovered and classified as a fault.PanicError so one bad command cannot
// kill the process.
func (c *Controller) Process(cmd script.Command) (err error) {
	c.mu.Lock()
	c.stats.Commands++
	c.mu.Unlock()
	c.mCommands.Inc()
	sp := c.tracer.Start(obs.SpanCtlCommand)
	sp.SetStr("op", cmd.Op)
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			c.mPanics.Inc()
			err = fault.Recovered(SiteDispatch, r)
		}
	}()
	if err := c.injector.Inject(SiteDispatch); err != nil {
		return fmt.Errorf("controller %s: dispatch %q: %w", c.name, cmd.Op, err)
	}

	scope := c.context.Snapshot()
	scope["op"] = cmd.Op
	scope["target"] = cmd.Target
	for k, v := range cmd.Args {
		scope[k] = v
	}

	// Command classification: policies may force a case; otherwise a
	// predefined action wins when one exists, falling back to dynamic
	// intent-model generation. Policies may also select a specific named
	// action via the "action" decision key (paper §V-A: alternative
	// actions for the same construct, chosen by policies and context).
	d, err := c.engine.Decide(scope)
	if err != nil {
		return fmt.Errorf("classification: %w", err)
	}
	// Policies may refuse a command outright via the "deny" decision key;
	// denials are counted so operators can see policy back-pressure.
	if d.Bool("deny", false) {
		c.mu.Lock()
		c.stats.Denied++
		c.mu.Unlock()
		c.mDenials.Inc()
		return fmt.Errorf("op %q denied by policy", cmd.Op)
	}
	execCase := d.String("case", "")
	var (
		action    *Action
		actionErr error
	)
	if name := d.String("action", ""); name != "" {
		action, actionErr = c.namedAction(name, cmd.Op)
	} else {
		action, actionErr = c.findAction(cmd.Op, scope)
	}
	if execCase == "" {
		if action != nil {
			execCase = "action"
		} else if _, ok := c.classes[cmd.Op]; ok {
			execCase = "intent"
		} else {
			if actionErr != nil {
				return actionErr
			}
			return fmt.Errorf("no predefined action and no command class for op %q", cmd.Op)
		}
	}

	switch execCase {
	case "action":
		if action == nil {
			if actionErr != nil {
				return actionErr
			}
			return fmt.Errorf("classified as action but no action handles op %q", cmd.Op)
		}
		c.mu.Lock()
		c.stats.Case1++
		c.mu.Unlock()
		return c.runAction(action, scope, cmd.Args)
	case "intent":
		c.mu.Lock()
		c.stats.Case2++
		c.mu.Unlock()
		return c.runIntent(cmd, scope)
	default:
		return fmt.Errorf("classification produced unknown case %q", execCase)
	}
}

// namedAction resolves a policy-selected action by name, checking it is
// declared for op. Guards are bypassed: the policy decision is the
// selection mechanism.
func (c *Controller) namedAction(name, op string) (*Action, error) {
	for _, a := range c.actions {
		if a.Name != name {
			continue
		}
		if !a.handles(op) {
			return nil, fmt.Errorf("policy selected action %q, which does not handle op %q", name, op)
		}
		return a, nil
	}
	return nil, fmt.Errorf("policy selected unknown action %q", name)
}

// findAction returns the first enabled predefined action for op, nil when
// none handles it, and an error only when a guard fails to evaluate.
func (c *Controller) findAction(op string, scope expr.MapScope) (*Action, error) {
	for _, a := range c.actions {
		if !a.handles(op) {
			continue
		}
		if a.Guard != nil {
			ok, err := expr.EvalBool(a.Guard, expr.Env{Scope: scope, Funcs: c.funcs})
			if err != nil {
				return nil, fmt.Errorf("action %s: guard: %w", a.Name, err)
			}
			if !ok {
				continue
			}
		}
		return a, nil
	}
	return nil, nil
}

// runAction executes a Case-1 action: each step template expands into a
// Broker call.
func (c *Controller) runAction(a *Action, scope expr.MapScope, args map[string]any) error {
	for i, st := range a.Steps {
		call, err := st.Expand(scope)
		if err != nil {
			return fmt.Errorf("action %s: step %d: %w", a.Name, i, err)
		}
		if a.ForwardArgs {
			for k, v := range args {
				if _, exists := call.Arg(k); !exists {
					call = call.WithArg(k, v)
				}
			}
		}
		if err := c.broker.Call(call); err != nil {
			return fmt.Errorf("action %s: step %d: %w", a.Name, i, err)
		}
	}
	return nil
}

// runIntent executes a Case-2 command: generate (or fetch) the intent
// model for the command's goal DSC and run it on the stack machine.
func (c *Controller) runIntent(cmd script.Command, scope expr.MapScope) error {
	if c.gen == nil {
		return fmt.Errorf("op %q classified as intent but the layer has no procedure repository", cmd.Op)
	}
	goal, ok := c.classes[cmd.Op]
	if !ok {
		return fmt.Errorf("no command class maps op %q to a goal DSC", cmd.Op)
	}
	m, err := c.gen.Generate(goal, scope)
	if err != nil {
		return err
	}
	vars := make(map[string]any, len(cmd.Args)+2)
	for k, v := range cmd.Args {
		vars[k] = v
	}
	vars["op"] = cmd.Op
	vars["target"] = cmd.Target
	return c.machine.Run(m.Frames(), vars)
}

// OnEvent is the event handler entry point: events from the Broker layer
// (or raised internally by EUs) are queued and drained in arrival order per
// goroutine. An event raised by an EU mid-processing joins the raising
// goroutine's queue instead of recursing into the machine; events arriving
// on distinct goroutines are processed concurrently.
//
// A handler panic escaping the drain is recovered and returned as a
// fault.PanicError: the goroutine's queue entry is cleaned up (a leaked
// entry would silently swallow every later event on that goroutine ID) and
// re-entrant events still queued behind the poisoned one are dropped as
// counted losses ("controller.events.reentrant.dropped").
func (c *Controller) OnEvent(ev broker.Event) (err error) {
	g := obs.GoID()
	c.evMu.Lock()
	if q, ok := c.evQueues[g]; ok {
		c.evQueues[g] = append(q, ev)
		c.evMu.Unlock()
		return nil
	}
	if c.evQueues == nil {
		c.evQueues = make(map[uint64][]broker.Event)
	}
	c.evQueues[g] = []broker.Event{ev}
	c.evMu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			c.evMu.Lock()
			dropped := len(c.evQueues[g])
			delete(c.evQueues, g)
			c.evMu.Unlock()
			c.mReentrantDropped.Add(int64(dropped))
			c.mPanics.Inc()
			err = fault.Recovered("controller.event", r)
		}
	}()

	var firstErr error
	for {
		c.evMu.Lock()
		q := c.evQueues[g]
		if len(q) == 0 {
			delete(c.evQueues, g)
			c.evMu.Unlock()
			return firstErr
		}
		next := q[0]
		c.evQueues[g] = q[1:]
		c.evMu.Unlock()
		if err := c.processEvent(next); err != nil && firstErr == nil {
			firstErr = err
		}
	}
}

func (c *Controller) processEvent(ev broker.Event) error {
	c.mu.Lock()
	c.stats.Events++
	c.mu.Unlock()
	c.mEvents.Inc()
	sp := c.tracer.Start(obs.SpanCtlEvent)
	sp.SetStr("event", ev.Name)
	defer sp.End()

	scope := c.context.Snapshot()
	scope["event"] = ev.Name
	for k, v := range ev.Attrs {
		scope[k] = v
	}
	matched := false
	forward := false
	var firstErr error
	for _, ea := range c.events {
		if ea.Event != "*" && ea.Event != ev.Name {
			continue
		}
		if ea.Guard != nil {
			ok, err := expr.EvalBool(ea.Guard, expr.Env{Scope: scope, Funcs: c.funcs})
			if err != nil {
				return fmt.Errorf("controller %s: event action %s: guard: %w", c.name, ea.Name, err)
			}
			if !ok {
				continue
			}
		}
		matched = true
		forward = forward || ea.Forward
		for i, st := range ea.Steps {
			call, err := st.Expand(scope)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("event action %s: step %d: %w", ea.Name, i, err)
				}
				continue
			}
			if err := c.broker.Call(call); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("event action %s: step %d: %w", ea.Name, i, err)
			}
		}
		if ea.Script != nil {
			if err := c.Execute(ea.Script); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("event action %s: installed script: %w", ea.Name, err)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if (!matched || forward) && c.notify != nil {
		c.notify(ev)
	}
	return nil
}
