package smartspace

import (
	"strings"
	"testing"
)

func TestEnterLeaveLifecycle(t *testing.T) {
	var events []Event
	s := NewSpace(func(e Event) { events = append(events, e) })
	if err := s.Enter("lamp1", "lamp"); err != nil {
		t.Fatal(err)
	}
	if err := s.Enter("lamp1", ""); err == nil {
		t.Error("double enter must fail")
	}
	if err := s.Leave("lamp1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave("lamp1"); err == nil {
		t.Error("double leave must fail")
	}
	// Re-entry of a known object needs no kind.
	if err := s.Enter("lamp1", ""); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	if got := strings.Join(kinds, ","); got != "objectEntered,objectLeft,objectEntered" {
		t.Errorf("events: %s", got)
	}
}

func TestEnterUnknownWithoutKind(t *testing.T) {
	s := NewSpace(nil)
	if err := s.Enter("x", ""); err == nil {
		t.Error("first entry without kind must fail")
	}
}

func TestProperties(t *testing.T) {
	var events []Event
	s := NewSpace(func(e Event) { events = append(events, e) })
	if err := s.Enter("t1", "thermostat"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProperty("t1", "setpoint", 21.5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProperty("t1", "mode", "heat"); err != nil {
		t.Fatal(err)
	}
	o, ok := s.Object("t1")
	if !ok {
		t.Fatal("Object")
	}
	if v, _ := o.Prop("setpoint"); v != 21.5 {
		t.Errorf("setpoint: %v", v)
	}
	if got := strings.Join(o.PropNames(), ","); got != "mode,setpoint" {
		t.Errorf("props: %s", got)
	}
	if err := s.SetProperty("ghost", "p", 1); err == nil {
		t.Error("unknown object")
	}
	if err := s.Leave("t1"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProperty("t1", "p", 1); err == nil {
		t.Error("absent object must reject SetProperty")
	}
	found := false
	for _, e := range events {
		if v, _ := e.Attr("value"); e.Kind == "propertyChanged" && e.Str("prop") == "setpoint" && v == 21.5 {
			found = true
		}
	}
	if !found {
		t.Error("propertyChanged event missing")
	}
}

func TestObjectCopyIsolation(t *testing.T) {
	s := NewSpace(nil)
	if err := s.Enter("d1", "door"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProperty("d1", "locked", true); err != nil {
		t.Fatal(err)
	}
	o, _ := s.Object("d1")
	o.props["locked"] = false
	real, _ := s.Object("d1")
	if v, _ := real.Prop("locked"); v != true {
		t.Error("Object must return an isolated copy")
	}
	if _, ok := s.Object("ghost"); ok {
		t.Error("ghost object")
	}
}

func TestPresentAndKnown(t *testing.T) {
	s := NewSpace(nil)
	for _, id := range []string{"b", "a", "c"} {
		if err := s.Enter(id, "lamp"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Leave("b"); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(s.Present(), ","); got != "a,c" {
		t.Errorf("Present: %s", got)
	}
	if got := strings.Join(s.Known(), ","); got != "a,b,c" {
		t.Errorf("Known: %s", got)
	}
}

func TestTrace(t *testing.T) {
	s := NewSpace(nil)
	if err := s.Enter("x", "lamp"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProperty("x", "on", true); err != nil {
		t.Fatal(err)
	}
	tr := s.Trace().String()
	for _, want := range []string{`enter object:x kind="lamp"`, `setProperty object:x prop="on" value=true`} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace missing %q:\n%s", want, tr)
		}
	}
}
