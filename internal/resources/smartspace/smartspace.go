// Package smartspace simulates the programmable smart-space environment
// that 2SVM configures (paper §IV-C): smart objects with typed properties
// that enter and leave the space asynchronously, and a command surface the
// broker layer running *on each smart object* uses to configure it.
package smartspace

import (
	"fmt"
	"sort"
	"sync"

	"github.com/mddsm/mddsm/internal/resources"
	"github.com/mddsm/mddsm/internal/script"
)

// Event is an asynchronous space notification — the shared resource event
// type. Kinds: "objectEntered", "objectLeft", "propertyChanged"; payload
// keys: "object", "prop", "value".
type Event = resources.Event

// SmartObject is one programmable entity in the space.
type SmartObject struct {
	ID      string
	Kind    string // e.g. "lamp", "thermostat", "door", "speaker"
	Present bool
	props   map[string]any
}

// Prop returns a property value and whether it is set.
func (o *SmartObject) Prop(name string) (any, bool) {
	v, ok := o.props[name]
	return v, ok
}

// PropNames returns the set property names sorted.
func (o *SmartObject) PropNames() []string {
	out := make([]string, 0, len(o.props))
	for n := range o.props {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Space is the simulated smart space. It is safe for concurrent use.
type Space struct {
	mu      sync.Mutex
	objects map[string]*SmartObject
	sink    func(Event)
	trace   *script.Trace
}

// NewSpace creates an empty space. sink may be nil.
func NewSpace(sink func(Event)) *Space {
	return &Space{
		objects: make(map[string]*SmartObject),
		sink:    sink,
		trace:   &script.Trace{},
	}
}

// Trace returns the recorded command trace.
func (s *Space) Trace() *script.Trace { return s.trace }

func (s *Space) emit(e Event) {
	if s.sink != nil {
		s.sink(e)
	}
}

// Enter brings a smart object into the space (registering it on first
// entry) and emits objectEntered. Events are emitted outside the lock so a
// synchronous sink may re-enter the space.
func (s *Space) Enter(id, kind string) error {
	s.mu.Lock()
	o, ok := s.objects[id]
	if ok {
		if o.Present {
			s.mu.Unlock()
			return fmt.Errorf("smartspace: object %q already present", id)
		}
		o.Present = true
	} else {
		if kind == "" {
			s.mu.Unlock()
			return fmt.Errorf("smartspace: object %q needs a kind on first entry", id)
		}
		o = &SmartObject{ID: id, Kind: kind, Present: true, props: make(map[string]any)}
		s.objects[id] = o
	}
	s.trace.RecordOp("enter", "object:"+id, "kind", o.Kind)
	s.mu.Unlock()
	s.emit(resources.NewEvent("objectEntered", "object", id))
	return nil
}

// Leave removes a smart object from the space (its registration and
// properties persist) and emits objectLeft.
func (s *Space) Leave(id string) error {
	s.mu.Lock()
	o, ok := s.objects[id]
	if !ok || !o.Present {
		s.mu.Unlock()
		return fmt.Errorf("smartspace: object %q not present", id)
	}
	o.Present = false
	s.trace.RecordOp("leave", "object:"+id)
	s.mu.Unlock()
	s.emit(resources.NewEvent("objectLeft", "object", id))
	return nil
}

// SetProperty configures a property of a present object and emits
// propertyChanged.
func (s *Space) SetProperty(id, prop string, value any) error {
	s.mu.Lock()
	o, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("smartspace: unknown object %q", id)
	}
	if !o.Present {
		s.mu.Unlock()
		return fmt.Errorf("smartspace: object %q not present", id)
	}
	o.props[prop] = value
	s.trace.RecordOp("setProperty", "object:"+id, "prop", prop, "value", value)
	s.mu.Unlock()
	s.emit(resources.NewEvent("propertyChanged", "object", id, "prop", prop, "value", value))
	return nil
}

// Object returns a copy of an object's state, or false when unknown.
func (s *Space) Object(id string) (SmartObject, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return SmartObject{}, false
	}
	cp := *o
	cp.props = make(map[string]any, len(o.props))
	for k, v := range o.props {
		cp.props[k] = v
	}
	return cp, true
}

// Present returns the IDs of present objects sorted.
func (s *Space) Present() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, o := range s.objects {
		if o.Present {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Known returns all registered object IDs sorted.
func (s *Space) Known() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.objects))
	for id := range s.objects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
