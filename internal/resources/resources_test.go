package resources

import (
	"reflect"
	"testing"
)

func TestNewEvent(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		want Event
	}{
		{
			name: "basic",
			e:    NewEvent("objectEntered", "object", "lamp1"),
			want: Event{Kind: "objectEntered", Attrs: map[string]any{"object": "lamp1"}},
		},
		{
			name: "empty string values omitted",
			e:    NewEvent("streamFailed", "session", "s1", "stream", "", "participant", ""),
			want: Event{Kind: "streamFailed", Attrs: map[string]any{"session": "s1"}},
		},
		{
			name: "no attrs leaves nil map",
			e:    NewEvent("tick"),
			want: Event{Kind: "tick"},
		},
		{
			name: "non-string values kept",
			e:    NewEvent("propertyChanged", "object", "o1", "value", 42),
			want: Event{Kind: "propertyChanged", Attrs: map[string]any{"object": "o1", "value": 42}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !reflect.DeepEqual(c.e, c.want) {
				t.Errorf("got %+v, want %+v", c.e, c.want)
			}
		})
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEvent("propertyChanged", "object", "o1", "value", 42)
	if e.Str("object") != "o1" {
		t.Errorf("Str(object) = %q", e.Str("object"))
	}
	if e.Str("value") != "" { // not a string
		t.Errorf("Str(value) = %q, want empty", e.Str("value"))
	}
	if v, ok := e.Attr("value"); !ok || v != 42 {
		t.Errorf("Attr(value) = %v, %v", v, ok)
	}
	if _, ok := e.Attr("missing"); ok {
		t.Error("Attr(missing) reported present")
	}
}

func TestBrokerConversionLossless(t *testing.T) {
	e := NewEvent("batteryLow", "device", "bat1")
	b := e.Broker()
	if b.Name != e.Kind {
		t.Errorf("Name = %q, want %q", b.Name, e.Kind)
	}
	if !reflect.DeepEqual(b.Attrs, e.Attrs) {
		t.Errorf("Attrs = %v, want %v", b.Attrs, e.Attrs)
	}
}

func TestNewEventPanicsOnOddList(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd kv list")
		}
	}()
	NewEvent("x", "keyOnly")
}

// TestPooledRoundTripSharesStorage pins the zero-allocation contract of the
// pooled conversion path: AcquireEvent → Broker() → FromBroker must carry
// the same attribute map pointer end to end (no copy) and preserve the
// pooled flag, so the release at the end of delivery recycles the storage
// the emit site acquired.
func TestPooledRoundTripSharesStorage(t *testing.T) {
	e := AcquireEvent("reading", "src", "sensor-1", "value", 21.5, "note", "")
	if !e.Pooled() {
		t.Fatal("AcquireEvent returned an unpooled event")
	}
	if _, ok := e.Attrs["note"]; ok {
		t.Error("empty string value should be omitted, matching NewEvent")
	}
	be := e.Broker()
	if !be.Pooled() {
		t.Error("Broker() dropped the pooled flag")
	}
	if be.Name != "reading" {
		t.Errorf("Broker() name = %q, want reading", be.Name)
	}
	back := FromBroker(be)
	if !back.Pooled() {
		t.Error("FromBroker dropped the pooled flag")
	}
	if back.Kind != "reading" {
		t.Errorf("FromBroker kind = %q, want reading", back.Kind)
	}
	// Same storage, not an equal copy: a write through one view must be
	// visible through the others.
	e.Attrs["probe"] = 1
	if _, ok := be.Attrs["probe"]; !ok {
		t.Error("Broker() copied the attribute map instead of sharing it")
	}
	if _, ok := back.Attrs["probe"]; !ok {
		t.Error("FromBroker copied the attribute map instead of sharing it")
	}
	if back.Str("src") != "sensor-1" || back.Attrs["value"] != 21.5 {
		t.Errorf("round trip lost payload: %v", back.Attrs)
	}
	back.Release()
}

// TestUnpooledRoundTripStaysUnpooled checks NewEvent's round trip: storage
// is still shared (lossless) but nothing is pooled, and Release is a no-op.
func TestUnpooledRoundTripStaysUnpooled(t *testing.T) {
	e := NewEvent("tick", "n", 3)
	if e.Pooled() {
		t.Fatal("NewEvent returned a pooled event")
	}
	be := e.Broker()
	if be.Pooled() {
		t.Error("Broker() invented a pooled flag")
	}
	back := FromBroker(be)
	if back.Pooled() {
		t.Error("FromBroker invented a pooled flag")
	}
	if back.Kind != "tick" || back.Attrs["n"] != 3 {
		t.Errorf("round trip lost payload: %q %v", back.Kind, back.Attrs)
	}
	back.Release() // no-op, must not panic or poison any pool
}

// TestSetAcquiresPooledStorage checks the lazy Set path: a pooled event
// built with no attributes draws its map from the pool on first Set.
func TestSetAcquiresPooledStorage(t *testing.T) {
	e := AcquireEvent("bare")
	if e.Attrs != nil {
		t.Fatal("AcquireEvent with no pairs should defer map acquisition")
	}
	e.Set("k", "v")
	if e.Attrs == nil || e.Attrs["k"] != "v" {
		t.Fatalf("Set did not bind: %v", e.Attrs)
	}
	if !e.Pooled() {
		t.Error("Set lost the pooled flag")
	}
	e.Release()
}
