package resources

import (
	"reflect"
	"testing"
)

func TestNewEvent(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		want Event
	}{
		{
			name: "basic",
			e:    NewEvent("objectEntered", "object", "lamp1"),
			want: Event{Kind: "objectEntered", Attrs: map[string]any{"object": "lamp1"}},
		},
		{
			name: "empty string values omitted",
			e:    NewEvent("streamFailed", "session", "s1", "stream", "", "participant", ""),
			want: Event{Kind: "streamFailed", Attrs: map[string]any{"session": "s1"}},
		},
		{
			name: "no attrs leaves nil map",
			e:    NewEvent("tick"),
			want: Event{Kind: "tick"},
		},
		{
			name: "non-string values kept",
			e:    NewEvent("propertyChanged", "object", "o1", "value", 42),
			want: Event{Kind: "propertyChanged", Attrs: map[string]any{"object": "o1", "value": 42}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !reflect.DeepEqual(c.e, c.want) {
				t.Errorf("got %+v, want %+v", c.e, c.want)
			}
		})
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEvent("propertyChanged", "object", "o1", "value", 42)
	if e.Str("object") != "o1" {
		t.Errorf("Str(object) = %q", e.Str("object"))
	}
	if e.Str("value") != "" { // not a string
		t.Errorf("Str(value) = %q, want empty", e.Str("value"))
	}
	if v, ok := e.Attr("value"); !ok || v != 42 {
		t.Errorf("Attr(value) = %v, %v", v, ok)
	}
	if _, ok := e.Attr("missing"); ok {
		t.Error("Attr(missing) reported present")
	}
}

func TestBrokerConversionLossless(t *testing.T) {
	e := NewEvent("batteryLow", "device", "bat1")
	b := e.Broker()
	if b.Name != e.Kind {
		t.Errorf("Name = %q, want %q", b.Name, e.Kind)
	}
	if !reflect.DeepEqual(b.Attrs, e.Attrs) {
		t.Errorf("Attrs = %v, want %v", b.Attrs, e.Attrs)
	}
}

func TestNewEventPanicsOnOddList(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd kv list")
		}
	}()
	NewEvent("x", "keyOnly")
}
