// Package resources defines the unified asynchronous notification type
// shared by every simulated resource and service (smart space, microgrid
// plant, communication service). Historically each resource package
// declared its own near-identical Event struct and every domain platform
// hand-rolled the conversion to the platform event type; the single shared
// type converts losslessly to a broker.Event, so resource sinks can feed
// platforms with one call.
package resources

import "github.com/mddsm/mddsm/internal/broker"

// Event is an asynchronous resource notification: a kind (the event name)
// plus a named payload. Domain-specific identifiers travel in Attrs under
// their established keys ("object", "device", "session", "stream",
// "participant", ...), which is exactly the shape the Broker layer binds
// into event-action scopes.
type Event struct {
	Kind   string
	Attrs  map[string]any
	pooled bool
}

// NewEvent builds an event from alternating key/value pairs. Pairs with
// empty string values are omitted, so emit sites can pass optional fields
// unconditionally. It panics on an odd-length list (a programming bug in
// static resource code).
func NewEvent(kind string, kv ...any) Event {
	if len(kv)%2 != 0 {
		panic("resources.NewEvent: odd key/value list")
	}
	e := Event{Kind: kind}
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			panic("resources.NewEvent: non-string key")
		}
		if s, isStr := kv[i+1].(string); isStr && s == "" {
			continue
		}
		if e.Attrs == nil {
			e.Attrs = make(map[string]any, len(kv)/2)
		}
		e.Attrs[key] = kv[i+1]
	}
	return e
}

// Str returns the named attribute as a string ("" when absent or not a
// string).
func (e Event) Str(key string) string {
	s, _ := e.Attrs[key].(string)
	return s
}

// Attr returns the named attribute and whether it is present.
func (e Event) Attr(key string) (any, bool) {
	v, ok := e.Attrs[key]
	return v, ok
}

// AcquireEvent is NewEvent drawing the attribute map from the shared
// event pool (see broker.AcquireAttrs): the conversion to broker.Event
// keeps the pooled storage, and whoever completes the event's delivery
// releases it. Emit sites on the platform's hot path use this; Release
// must be called exactly once when the event is refused or abandoned
// before posting.
func AcquireEvent(kind string, kv ...any) Event {
	if len(kv)%2 != 0 {
		panic("resources.AcquireEvent: odd key/value list")
	}
	e := Event{Kind: kind, pooled: true}
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			panic("resources.AcquireEvent: non-string key")
		}
		if s, isStr := kv[i+1].(string); isStr && s == "" {
			continue
		}
		if e.Attrs == nil {
			e.Attrs = broker.AcquireAttrs()
		}
		e.Attrs[key] = kv[i+1]
	}
	return e
}

// Set binds an attribute in place (acquiring pooled storage on first use
// for pooled events) and returns the event for chaining.
func (e *Event) Set(key string, v any) *Event {
	if e.Attrs == nil {
		if e.pooled {
			e.Attrs = broker.AcquireAttrs()
		} else {
			e.Attrs = make(map[string]any, 4)
		}
	}
	e.Attrs[key] = v
	return e
}

// Pooled reports whether Release would recycle the event's attribute map.
func (e Event) Pooled() bool { return e.pooled }

// Release returns a pooled event's attribute map to the shared pool; a
// no-op for ordinary events. The map must not be used afterwards.
func (e Event) Release() {
	if e.pooled {
		broker.ReleaseAttrs(e.Attrs)
	}
}

// Broker converts the event losslessly to the platform event type: the
// kind becomes the event name and the payload map is shared as-is — for a
// pooled event the broker.Event stays pooled, so the storage is reused
// rather than copied and the pump's release after delivery reaches the
// same map.
func (e Event) Broker() broker.Event {
	if e.pooled {
		return broker.PooledEvent(e.Kind, e.Attrs)
	}
	return broker.Event{Name: e.Kind, Attrs: e.Attrs}
}

// FromBroker converts a platform event back to the resource form, again
// sharing the attribute storage and preserving pooling, so the round trip
// Event→Broker()→FromBroker is lossless and allocation-free.
func FromBroker(be broker.Event) Event {
	return Event{Kind: be.Name, Attrs: be.Attrs, pooled: be.Pooled()}
}

// Sink consumes resource events; resource constructors accept one.
type Sink func(Event)
