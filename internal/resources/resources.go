// Package resources defines the unified asynchronous notification type
// shared by every simulated resource and service (smart space, microgrid
// plant, communication service). Historically each resource package
// declared its own near-identical Event struct and every domain platform
// hand-rolled the conversion to the platform event type; the single shared
// type converts losslessly to a broker.Event, so resource sinks can feed
// platforms with one call.
package resources

import "github.com/mddsm/mddsm/internal/broker"

// Event is an asynchronous resource notification: a kind (the event name)
// plus a named payload. Domain-specific identifiers travel in Attrs under
// their established keys ("object", "device", "session", "stream",
// "participant", ...), which is exactly the shape the Broker layer binds
// into event-action scopes.
type Event struct {
	Kind  string
	Attrs map[string]any
}

// NewEvent builds an event from alternating key/value pairs. Pairs with
// empty string values are omitted, so emit sites can pass optional fields
// unconditionally. It panics on an odd-length list (a programming bug in
// static resource code).
func NewEvent(kind string, kv ...any) Event {
	if len(kv)%2 != 0 {
		panic("resources.NewEvent: odd key/value list")
	}
	e := Event{Kind: kind}
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			panic("resources.NewEvent: non-string key")
		}
		if s, isStr := kv[i+1].(string); isStr && s == "" {
			continue
		}
		if e.Attrs == nil {
			e.Attrs = make(map[string]any, len(kv)/2)
		}
		e.Attrs[key] = kv[i+1]
	}
	return e
}

// Str returns the named attribute as a string ("" when absent or not a
// string).
func (e Event) Str(key string) string {
	s, _ := e.Attrs[key].(string)
	return s
}

// Attr returns the named attribute and whether it is present.
func (e Event) Attr(key string) (any, bool) {
	v, ok := e.Attrs[key]
	return v, ok
}

// Broker converts the event losslessly to the platform event type: the
// kind becomes the event name and the payload map is shared as-is.
func (e Event) Broker() broker.Event {
	return broker.Event{Name: e.Kind, Attrs: e.Attrs}
}

// Sink consumes resource events; resource constructors accept one.
type Sink func(Event)
