// Package comm simulates the user-to-user communication services that the
// CVM's Network Communication Broker orchestrates (paper §IV-A). It stands
// in for the real media/signalling frameworks (SIP, Skype adapters) used by
// the original prototype: sessions, participants, media streams,
// reconfiguration, deterministic virtual latencies and injectable failures.
//
// Every service operation records itself on a script.Trace; the
// behavioural-equivalence experiment (§VII-A) compares the traces produced
// by the model-based and handcrafted Broker implementations driving this
// same service.
package comm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/resources"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// MediaType enumerates stream media.
type MediaType string

// Supported media types.
const (
	Audio MediaType = "audio"
	Video MediaType = "video"
	Chat  MediaType = "chat"
)

// ValidMedia reports whether m is a supported media type.
func ValidMedia(m MediaType) bool {
	switch m {
	case Audio, Video, Chat:
		return true
	}
	return false
}

// Event is an asynchronous service notification — the shared resource
// event type. Kinds: "participantJoined", "participantLeft",
// "streamFailed", "sessionClosed"; payload keys: "session", "stream",
// "participant".
type Event = resources.Event

// Stream is one media stream inside a session.
type Stream struct {
	ID        string
	Media     MediaType
	Bandwidth float64 // kbit/s
	Up        bool
}

// Session is a multi-party communication session.
type Session struct {
	ID           string
	participants map[string]bool
	streams      map[string]*Stream
}

// Participants returns the participant IDs sorted.
func (s *Session) Participants() []string {
	out := make([]string, 0, len(s.participants))
	for p := range s.participants {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Streams returns the stream IDs sorted.
func (s *Session) Streams() []string {
	out := make([]string, 0, len(s.streams))
	for id := range s.streams {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stream returns a stream by ID, or nil.
func (s *Session) Stream(id string) *Stream { return s.streams[id] }

// Latencies assigns a virtual latency to each service operation, charged on
// the service clock. The defaults model the figures used in the scenario
// suite; domains can override them.
type Latencies map[string]time.Duration

// DefaultLatencies returns the standard operation latencies.
func DefaultLatencies() Latencies {
	return Latencies{
		"createSession":     40 * time.Millisecond,
		"closeSession":      20 * time.Millisecond,
		"addParticipant":    30 * time.Millisecond,
		"removeParticipant": 15 * time.Millisecond,
		"openStream":        60 * time.Millisecond,
		"closeStream":       20 * time.Millisecond,
		"reconfigureStream": 45 * time.Millisecond,
		"sendData":          5 * time.Millisecond,
	}
}

// Service is the simulated communication substrate. It is safe for
// concurrent use.
type Service struct {
	mu        sync.Mutex
	clock     simtime.Clock
	trace     *script.Trace
	latencies Latencies
	sessions  map[string]*Session
	sink      func(Event)
	failNext  map[string]bool // op -> fail once
	cpuWork   int             // synthetic CPU iterations per operation
	workSink  uint64          // defeats dead-code elimination of the work loop
}

// NewService creates a service on the given clock. sink receives
// asynchronous events and may be nil.
func NewService(clock simtime.Clock, sink func(Event)) *Service {
	if clock == nil {
		clock = simtime.NewVirtual()
	}
	return &Service{
		clock:     clock,
		trace:     &script.Trace{},
		latencies: DefaultLatencies(),
		sessions:  make(map[string]*Session),
		sink:      sink,
		failNext:  make(map[string]bool),
	}
}

// Trace returns the recorded operation trace.
func (s *Service) Trace() *script.Trace { return s.trace }

// SetLatency overrides the virtual latency of one operation.
func (s *Service) SetLatency(op string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latencies[op] = d
}

// FailNext makes the next invocation of op fail with an injected error.
func (s *Service) FailNext(op string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNext[op] = true
}

// SetCPUWork makes every operation burn roughly n iterations of synthetic
// CPU work, modelling the real (marshalling/IPC/media) cost of a service
// call. The §VII-A overhead experiment sweeps this weight: the heavier the
// common service path, the smaller the middleware's relative overhead.
func (s *Service) SetCPUWork(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cpuWork = n
}

// charge records the op on the trace, burns the configured CPU work and
// advances virtual time. Callers hold the mutex.
func (s *Service) charge(op, target string, kv ...any) {
	s.trace.RecordOp(op, target, kv...)
	if s.cpuWork > 0 {
		acc := s.workSink
		for i := 0; i < s.cpuWork; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		s.workSink = acc
	}
	s.clock.Sleep(s.latencies[op])
}

// checkFail consumes a pending injected failure for op.
func (s *Service) checkFail(op string) error {
	if s.failNext[op] {
		delete(s.failNext, op)
		return fmt.Errorf("comm: injected failure on %s", op)
	}
	return nil
}

func (s *Service) emit(e Event) {
	if s.sink != nil {
		s.sink(e)
	}
}

// CreateSession opens a new session.
func (s *Service) CreateSession(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFail("createSession"); err != nil {
		return err
	}
	if _, ok := s.sessions[id]; ok {
		return fmt.Errorf("comm: session %q already exists", id)
	}
	s.sessions[id] = &Session{
		ID:           id,
		participants: make(map[string]bool),
		streams:      make(map[string]*Stream),
	}
	s.charge("createSession", "session:"+id)
	return nil
}

// CloseSession tears a session down, closing its streams.
func (s *Service) CloseSession(id string) error {
	s.mu.Lock()
	if err := s.checkFail("closeSession"); err != nil {
		s.mu.Unlock()
		return err
	}
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("comm: unknown session %q", id)
	}
	for _, streamID := range sess.Streams() {
		s.charge("closeStream", "stream:"+streamID)
	}
	delete(s.sessions, id)
	s.charge("closeSession", "session:"+id)
	s.mu.Unlock()
	// Events are emitted outside the lock so a synchronous sink may
	// re-enter the service (e.g. middleware recovery paths).
	s.emit(resources.NewEvent("sessionClosed", "session", id))
	return nil
}

// AddParticipant joins a party to a session.
func (s *Service) AddParticipant(sessionID, participant string) error {
	s.mu.Lock()
	if err := s.checkFail("addParticipant"); err != nil {
		s.mu.Unlock()
		return err
	}
	sess, ok := s.sessions[sessionID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("comm: unknown session %q", sessionID)
	}
	if sess.participants[participant] {
		s.mu.Unlock()
		return fmt.Errorf("comm: participant %q already in session %q", participant, sessionID)
	}
	sess.participants[participant] = true
	s.charge("addParticipant", "session:"+sessionID, "who", participant)
	s.mu.Unlock()
	s.emit(resources.NewEvent("participantJoined", "session", sessionID, "participant", participant))
	return nil
}

// RemoveParticipant removes a party from a session.
func (s *Service) RemoveParticipant(sessionID, participant string) error {
	s.mu.Lock()
	if err := s.checkFail("removeParticipant"); err != nil {
		s.mu.Unlock()
		return err
	}
	sess, ok := s.sessions[sessionID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("comm: unknown session %q", sessionID)
	}
	if !sess.participants[participant] {
		s.mu.Unlock()
		return fmt.Errorf("comm: participant %q not in session %q", participant, sessionID)
	}
	delete(sess.participants, participant)
	s.charge("removeParticipant", "session:"+sessionID, "who", participant)
	s.mu.Unlock()
	s.emit(resources.NewEvent("participantLeft", "session", sessionID, "participant", participant))
	return nil
}

// OpenStream opens a media stream in a session.
func (s *Service) OpenStream(sessionID, streamID string, media MediaType, bandwidth float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFail("openStream"); err != nil {
		return err
	}
	sess, ok := s.sessions[sessionID]
	if !ok {
		return fmt.Errorf("comm: unknown session %q", sessionID)
	}
	if !ValidMedia(media) {
		return fmt.Errorf("comm: invalid media type %q", media)
	}
	if bandwidth <= 0 {
		return fmt.Errorf("comm: bandwidth must be positive, got %v", bandwidth)
	}
	if _, ok := sess.streams[streamID]; ok {
		return fmt.Errorf("comm: stream %q already open in session %q", streamID, sessionID)
	}
	sess.streams[streamID] = &Stream{ID: streamID, Media: media, Bandwidth: bandwidth, Up: true}
	s.charge("openStream", "stream:"+streamID, "media", string(media), "bandwidth", bandwidth, "session", sessionID)
	return nil
}

// CloseStream closes a media stream.
func (s *Service) CloseStream(sessionID, streamID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFail("closeStream"); err != nil {
		return err
	}
	sess, ok := s.sessions[sessionID]
	if !ok {
		return fmt.Errorf("comm: unknown session %q", sessionID)
	}
	if _, ok := sess.streams[streamID]; !ok {
		return fmt.Errorf("comm: unknown stream %q in session %q", streamID, sessionID)
	}
	delete(sess.streams, streamID)
	s.charge("closeStream", "stream:"+streamID)
	return nil
}

// ReconfigureStream changes a stream's media type and/or bandwidth. A
// failed (down) stream is brought back up by reconfiguration — this is the
// recovery path the scenario suite exercises.
func (s *Service) ReconfigureStream(sessionID, streamID string, media MediaType, bandwidth float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFail("reconfigureStream"); err != nil {
		return err
	}
	sess, ok := s.sessions[sessionID]
	if !ok {
		return fmt.Errorf("comm: unknown session %q", sessionID)
	}
	st, ok := sess.streams[streamID]
	if !ok {
		return fmt.Errorf("comm: unknown stream %q in session %q", streamID, sessionID)
	}
	if !ValidMedia(media) {
		return fmt.Errorf("comm: invalid media type %q", media)
	}
	if bandwidth <= 0 {
		return fmt.Errorf("comm: bandwidth must be positive, got %v", bandwidth)
	}
	st.Media = media
	st.Bandwidth = bandwidth
	st.Up = true
	s.charge("reconfigureStream", "stream:"+streamID, "media", string(media), "bandwidth", bandwidth)
	return nil
}

// SendData sends application data over an open stream.
func (s *Service) SendData(sessionID, streamID string, bytes float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFail("sendData"); err != nil {
		return err
	}
	sess, ok := s.sessions[sessionID]
	if !ok {
		return fmt.Errorf("comm: unknown session %q", sessionID)
	}
	st, ok := sess.streams[streamID]
	if !ok {
		return fmt.Errorf("comm: unknown stream %q in session %q", streamID, sessionID)
	}
	if !st.Up {
		return fmt.Errorf("comm: stream %q is down", streamID)
	}
	s.charge("sendData", "stream:"+streamID, "bytes", bytes)
	return nil
}

// InjectStreamFailure marks a stream down and emits a streamFailed event,
// modelling a transport fault the middleware must recover from.
func (s *Service) InjectStreamFailure(sessionID, streamID string) error {
	s.mu.Lock()
	sess, ok := s.sessions[sessionID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("comm: unknown session %q", sessionID)
	}
	st, ok := sess.streams[streamID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("comm: unknown stream %q in session %q", streamID, sessionID)
	}
	st.Up = false
	s.mu.Unlock()
	s.emit(resources.NewEvent("streamFailed", "session", sessionID, "stream", streamID))
	return nil
}

// Session returns a session by ID, or nil.
func (s *Service) Session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// SessionIDs returns the open session IDs sorted.
func (s *Service) SessionIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
