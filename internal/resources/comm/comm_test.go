package comm

import (
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/simtime"
)

func TestSessionLifecycle(t *testing.T) {
	var events []Event
	clock := simtime.NewVirtual()
	start := clock.Now()
	s := NewService(clock, func(e Event) { events = append(events, e) })

	if err := s.CreateSession("s1"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddParticipant("s1", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddParticipant("s1", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenStream("s1", "st1", Audio, 64); err != nil {
		t.Fatal(err)
	}
	if err := s.SendData("s1", "st1", 1024); err != nil {
		t.Fatal(err)
	}
	if err := s.ReconfigureStream("s1", "st1", Video, 512); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveParticipant("s1", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseSession("s1"); err != nil {
		t.Fatal(err)
	}

	// Virtual time: 40+30+30+60+5+45+15+(20 stream close)+20 = 265ms.
	if got := clock.Since(start); got != 265*time.Millisecond {
		t.Errorf("virtual time: %v", got)
	}
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := "participantJoined,participantJoined,participantLeft,sessionClosed"
	if got := strings.Join(kinds, ","); got != want {
		t.Errorf("events: %s", got)
	}
	if s.Trace().Len() != 9 {
		t.Errorf("trace length: %d\n%s", s.Trace().Len(), s.Trace())
	}
	if len(s.SessionIDs()) != 0 {
		t.Error("session should be gone")
	}
}

func TestSessionQueries(t *testing.T) {
	s := NewService(nil, nil)
	if err := s.CreateSession("s1"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddParticipant("s1", "zoe"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddParticipant("s1", "amy"); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenStream("s1", "st2", Chat, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenStream("s1", "st1", Audio, 64); err != nil {
		t.Fatal(err)
	}
	sess := s.Session("s1")
	if sess == nil {
		t.Fatal("Session lookup")
	}
	if got := strings.Join(sess.Participants(), ","); got != "amy,zoe" {
		t.Errorf("participants sorted: %s", got)
	}
	if got := strings.Join(sess.Streams(), ","); got != "st1,st2" {
		t.Errorf("streams sorted: %s", got)
	}
	if st := sess.Stream("st1"); st == nil || st.Media != Audio || !st.Up {
		t.Errorf("stream: %+v", st)
	}
	if s.Session("ghost") != nil {
		t.Error("ghost session")
	}
	if got := s.SessionIDs(); len(got) != 1 || got[0] != "s1" {
		t.Errorf("SessionIDs: %v", got)
	}
}

func TestErrorPaths(t *testing.T) {
	s := NewService(nil, nil)
	if err := s.CreateSession("s1"); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		err  error
	}{
		{"dup session", s.CreateSession("s1")},
		{"close unknown", s.CloseSession("ghost")},
		{"add to unknown", s.AddParticipant("ghost", "a")},
		{"remove from unknown", s.RemoveParticipant("ghost", "a")},
		{"remove absent participant", s.RemoveParticipant("s1", "a")},
		{"open in unknown", s.OpenStream("ghost", "st", Audio, 1)},
		{"bad media", s.OpenStream("s1", "st", MediaType("smell"), 1)},
		{"bad bandwidth", s.OpenStream("s1", "st", Audio, 0)},
		{"close unknown stream", s.CloseStream("s1", "ghost")},
		{"close stream unknown session", s.CloseStream("ghost", "st")},
		{"reconfigure unknown session", s.ReconfigureStream("ghost", "st", Audio, 1)},
		{"reconfigure unknown stream", s.ReconfigureStream("s1", "ghost", Audio, 1)},
		{"send unknown session", s.SendData("ghost", "st", 1)},
		{"send unknown stream", s.SendData("s1", "ghost", 1)},
		{"inject unknown session", s.InjectStreamFailure("ghost", "st")},
		{"inject unknown stream", s.InjectStreamFailure("s1", "ghost")},
	}
	for _, c := range checks {
		if c.err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// Duplicate participant and stream.
	if err := s.AddParticipant("s1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddParticipant("s1", "a"); err == nil {
		t.Error("dup participant")
	}
	if err := s.OpenStream("s1", "st", Audio, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenStream("s1", "st", Audio, 10); err == nil {
		t.Error("dup stream")
	}
	// Bad reconfigure args on an existing stream.
	if err := s.ReconfigureStream("s1", "st", MediaType("x"), 10); err == nil {
		t.Error("bad reconfigure media")
	}
	if err := s.ReconfigureStream("s1", "st", Audio, -1); err == nil {
		t.Error("bad reconfigure bandwidth")
	}
}

func TestFailureInjectionAndRecovery(t *testing.T) {
	var events []Event
	s := NewService(nil, func(e Event) { events = append(events, e) })
	if err := s.CreateSession("s1"); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenStream("s1", "st1", Video, 256); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectStreamFailure("s1", "st1"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != "streamFailed" {
		t.Fatalf("events: %v", events)
	}
	if err := s.SendData("s1", "st1", 10); err == nil || !strings.Contains(err.Error(), "down") {
		t.Errorf("send on failed stream: %v", err)
	}
	// Recovery via reconfiguration.
	if err := s.ReconfigureStream("s1", "st1", Video, 128); err != nil {
		t.Fatal(err)
	}
	if err := s.SendData("s1", "st1", 10); err != nil {
		t.Errorf("send after recovery: %v", err)
	}
}

func TestFailNext(t *testing.T) {
	s := NewService(nil, nil)
	s.FailNext("createSession")
	if err := s.CreateSession("s1"); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("want injected failure, got %v", err)
	}
	// The failure is consumed.
	if err := s.CreateSession("s1"); err != nil {
		t.Fatal(err)
	}
}

func TestSetLatency(t *testing.T) {
	clock := simtime.NewVirtual()
	s := NewService(clock, nil)
	s.SetLatency("createSession", 500*time.Millisecond)
	start := clock.Now()
	if err := s.CreateSession("s1"); err != nil {
		t.Fatal(err)
	}
	if got := clock.Since(start); got != 500*time.Millisecond {
		t.Errorf("latency override: %v", got)
	}
}

func TestValidMedia(t *testing.T) {
	for _, m := range []MediaType{Audio, Video, Chat} {
		if !ValidMedia(m) {
			t.Errorf("%s must be valid", m)
		}
	}
	if ValidMedia("hologram") {
		t.Error("hologram must be invalid")
	}
}

func TestTraceCanonicalForm(t *testing.T) {
	s := NewService(nil, nil)
	if err := s.CreateSession("s1"); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenStream("s1", "st1", Audio, 64); err != nil {
		t.Fatal(err)
	}
	lines := s.Trace().Lines()
	if lines[0] != "createSession session:s1" {
		t.Errorf("line 0: %q", lines[0])
	}
	if lines[1] != `openStream stream:st1 bandwidth=64 media="audio" session="s1"` {
		t.Errorf("line 1: %q", lines[1])
	}
}
