package sensing

import (
	"strings"
	"testing"
	"testing/quick"
)

func fleet(t testing.TB, seed int64) *Fleet {
	t.Helper()
	f := NewFleet(nil, seed)
	sensors := map[string][2]float64{"temp": {10, 30}, "noise": {30, 90}}
	for _, d := range []struct{ id, region string }{
		{"dev1", "north"}, {"dev2", "north"}, {"dev3", "south"},
	} {
		if err := f.Register(d.id, d.region, sensors); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestRegisterErrors(t *testing.T) {
	f := NewFleet(nil, 1)
	if err := f.Register("d", "r", nil); err == nil {
		t.Error("no sensors")
	}
	if err := f.Register("d", "r", map[string][2]float64{"t": {5, 5}}); err == nil {
		t.Error("empty range")
	}
	if err := f.Register("d", "r", map[string][2]float64{"t": {0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("d", "r", map[string][2]float64{"t": {0, 1}}); err == nil {
		t.Error("duplicate")
	}
}

func TestSampleBoundsAndDeterminism(t *testing.T) {
	f1 := fleet(t, 42)
	f2 := fleet(t, 42)
	for i := 0; i < 50; i++ {
		r1, err := f1.Sample("dev1", "temp")
		if err != nil {
			t.Fatal(err)
		}
		r2, err := f2.Sample("dev1", "temp")
		if err != nil {
			t.Fatal(err)
		}
		if r1.Value != r2.Value {
			t.Fatalf("same seed must give identical walks: %v vs %v", r1.Value, r2.Value)
		}
		if r1.Value < 10 || r1.Value > 30 {
			t.Fatalf("value out of range: %v", r1.Value)
		}
		if r1.Region != "north" || r1.Device != "dev1" || r1.Sensor != "temp" {
			t.Fatalf("reading metadata: %+v", r1)
		}
	}
}

func TestSampleErrors(t *testing.T) {
	f := fleet(t, 1)
	if _, err := f.Sample("ghost", "temp"); err == nil {
		t.Error("unknown device")
	}
	if _, err := f.Sample("dev1", "ghost"); err == nil {
		t.Error("unknown sensor")
	}
	if err := f.SetOnline("dev1", false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Sample("dev1", "temp"); err == nil {
		t.Error("offline device")
	}
	if err := f.SetOnline("ghost", true); err == nil {
		t.Error("unknown device online")
	}
}

func TestSampleAllFiltering(t *testing.T) {
	f := fleet(t, 7)
	all := f.SampleAll("temp", "")
	if len(all) != 3 {
		t.Fatalf("all: %d", len(all))
	}
	if all[0].Device != "dev1" || all[2].Device != "dev3" {
		t.Error("sorted device order expected")
	}
	north := f.SampleAll("temp", "north")
	if len(north) != 2 {
		t.Fatalf("north: %d", len(north))
	}
	if err := f.SetOnline("dev2", false); err != nil {
		t.Fatal(err)
	}
	north = f.SampleAll("temp", "north")
	if len(north) != 1 || north[0].Device != "dev1" {
		t.Fatalf("offline filter: %+v", north)
	}
	if got := f.SampleAll("ghost", ""); len(got) != 0 {
		t.Fatalf("unknown sensor should match nothing: %v", got)
	}
}

func TestQueriesAndTrace(t *testing.T) {
	f := fleet(t, 1)
	if got := strings.Join(f.DeviceIDs(), ","); got != "dev1,dev2,dev3" {
		t.Errorf("DeviceIDs: %s", got)
	}
	if got := strings.Join(f.Regions(), ","); got != "north,south" {
		t.Errorf("Regions: %s", got)
	}
	d, ok := f.Device("dev1")
	if !ok || d.Region != "north" {
		t.Errorf("Device: %+v", d)
	}
	if got := strings.Join(d.Sensors(), ","); got != "noise,temp" {
		t.Errorf("Sensors: %s", got)
	}
	if _, ok := f.Device("ghost"); ok {
		t.Error("ghost device")
	}
	if _, err := f.Sample("dev1", "temp"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.Trace().String(), `sample device:dev1 sensor="temp"`) {
		t.Errorf("trace:\n%s", f.Trace())
	}
}

// Property: readings always stay within the declared sensor range for any
// seed and sample count.
func TestWalkBoundedProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		fl := NewFleet(nil, seed)
		if err := fl.Register("d", "r", map[string][2]float64{"s": {-5, 5}}); err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			r, err := fl.Sample("d", "s")
			if err != nil || r.Value < -5 || r.Value > 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
