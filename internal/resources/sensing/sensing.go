// Package sensing simulates the participatory-sensing device fleet that
// CSVM queries (paper §IV-D): smartphones carrying sensors whose readings
// follow seeded, deterministic random walks. It replaces the real mobile
// fleet of the original prototype while preserving the query surface the
// crowdsensing middleware uses: sampling, filtering by region, and
// asynchronous delivery of readings.
package sensing

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// Reading is one sensor sample.
type Reading struct {
	Device string
	Sensor string
	Value  float64
	Region string
	At     time.Time
}

// sensorState is a seeded random walk.
type sensorState struct {
	value float64
	step  float64
	min   float64
	max   float64
}

// Device is one fleet member.
type Device struct {
	ID      string
	Region  string
	Online  bool
	sensors map[string]*sensorState
}

// Sensors returns the device's sensor names sorted.
func (d *Device) Sensors() []string {
	out := make([]string, 0, len(d.sensors))
	for n := range d.sensors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Fleet is the simulated device population. It is safe for concurrent use.
type Fleet struct {
	mu      sync.Mutex
	clock   simtime.Clock
	rng     *rand.Rand
	devices map[string]*Device
	trace   *script.Trace
}

// NewFleet creates a fleet with a deterministic seed.
func NewFleet(clock simtime.Clock, seed int64) *Fleet {
	if clock == nil {
		clock = simtime.NewVirtual()
	}
	return &Fleet{
		clock:   clock,
		rng:     rand.New(rand.NewSource(seed)),
		devices: make(map[string]*Device),
		trace:   &script.Trace{},
	}
}

// Trace returns the recorded operation trace.
func (f *Fleet) Trace() *script.Trace { return f.trace }

// Register adds a device with the given sensors. Sensor specs map a sensor
// name to its [min, max] range; the walk starts midway.
func (f *Fleet) Register(id, region string, sensors map[string][2]float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.devices[id]; ok {
		return fmt.Errorf("sensing: device %q already registered", id)
	}
	if len(sensors) == 0 {
		return fmt.Errorf("sensing: device %q needs at least one sensor", id)
	}
	d := &Device{ID: id, Region: region, Online: true, sensors: make(map[string]*sensorState, len(sensors))}
	for name, rng := range sensors {
		if rng[1] <= rng[0] {
			return fmt.Errorf("sensing: sensor %q of %q has empty range [%v,%v]", name, id, rng[0], rng[1])
		}
		d.sensors[name] = &sensorState{
			value: (rng[0] + rng[1]) / 2,
			step:  (rng[1] - rng[0]) / 20,
			min:   rng[0],
			max:   rng[1],
		}
	}
	f.devices[id] = d
	f.trace.RecordOp("register", "device:"+id, "region", region)
	return nil
}

// SetOnline toggles device availability.
func (f *Fleet) SetOnline(id string, online bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[id]
	if !ok {
		return fmt.Errorf("sensing: unknown device %q", id)
	}
	d.Online = online
	f.trace.RecordOp("setOnline", "device:"+id, "online", online)
	return nil
}

// Sample reads one sensor on one device, advancing its random walk.
func (f *Fleet) Sample(deviceID, sensor string) (Reading, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[deviceID]
	if !ok {
		return Reading{}, fmt.Errorf("sensing: unknown device %q", deviceID)
	}
	if !d.Online {
		return Reading{}, fmt.Errorf("sensing: device %q offline", deviceID)
	}
	st, ok := d.sensors[sensor]
	if !ok {
		return Reading{}, fmt.Errorf("sensing: device %q has no sensor %q", deviceID, sensor)
	}
	st.value += (f.rng.Float64()*2 - 1) * st.step
	if st.value < st.min {
		st.value = st.min
	}
	if st.value > st.max {
		st.value = st.max
	}
	f.trace.RecordOp("sample", "device:"+deviceID, "sensor", sensor)
	return Reading{
		Device: deviceID,
		Sensor: sensor,
		Value:  st.value,
		Region: d.Region,
		At:     f.clock.Now(),
	}, nil
}

// SampleAll samples a sensor across every online device (optionally
// filtered by region; "" matches all), in sorted device order.
func (f *Fleet) SampleAll(sensor, region string) []Reading {
	ids := f.DeviceIDs()
	out := make([]Reading, 0, len(ids))
	for _, id := range ids {
		f.mu.Lock()
		d := f.devices[id]
		skip := d == nil || !d.Online || (region != "" && d.Region != region) || d.sensors[sensor] == nil
		f.mu.Unlock()
		if skip {
			continue
		}
		r, err := f.Sample(id, sensor)
		if err == nil {
			out = append(out, r)
		}
	}
	return out
}

// Device returns a copy of the device state, or false when unknown.
func (f *Fleet) Device(id string) (Device, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[id]
	if !ok {
		return Device{}, false
	}
	cp := *d
	cp.sensors = make(map[string]*sensorState, len(d.sensors))
	for k, v := range d.sensors {
		s := *v
		cp.sensors[k] = &s
	}
	return cp, true
}

// DeviceIDs returns all device IDs sorted.
func (f *Fleet) DeviceIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.devices))
	for id := range f.devices {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Regions returns the distinct regions sorted.
func (f *Fleet) Regions() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	set := make(map[string]bool)
	for _, d := range f.devices {
		set[d.Region] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
