// Package microgrid simulates the smart-microgrid plant that MGridVM's
// Microgrid Hardware Broker controls (paper §IV-B): plant controllers and
// devices (solar arrays, batteries, loads, a grid tie) with telemetry and
// atomic command interfaces. It replaces the physical controllers of the
// original prototype with a deterministic simulation exposing the identical
// broker-facing surface.
package microgrid

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/resources"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// DeviceKind enumerates plant device types.
type DeviceKind string

// Plant device kinds.
const (
	Solar   DeviceKind = "solar"
	Battery DeviceKind = "battery"
	Load    DeviceKind = "load"
	GridTie DeviceKind = "gridtie"
)

// ValidKind reports whether k is a known device kind.
func ValidKind(k DeviceKind) bool {
	switch k {
	case Solar, Battery, Load, GridTie:
		return true
	}
	return false
}

// Device is one plant element.
type Device struct {
	ID       string
	Kind     DeviceKind
	Capacity float64 // kW for sources/loads, kWh for batteries
	// Output is the current production (+) or draw (-) in kW.
	Output float64
	// Charge is the battery state of charge in kWh (batteries only).
	Charge float64
	// Online reports whether the device is commanded on.
	Online bool
}

// Telemetry is a plant-wide snapshot.
type Telemetry struct {
	Generation    float64 // total production kW
	Consumption   float64 // total draw kW (positive)
	GridImport    float64 // net import from the grid kW (negative = export)
	BatteryCharge float64 // summed state of charge kWh
}

// Event is an asynchronous plant notification — the shared resource event
// type. Kinds: "deviceOffline", "deviceOnline", "batteryLow", "overload";
// payload key: "device".
type Event = resources.Event

// Plant is the simulated microgrid. It is safe for concurrent use.
type Plant struct {
	mu      sync.Mutex
	clock   simtime.Clock
	trace   *script.Trace
	devices map[string]*Device
	sink    func(Event)
	// lowBatteryThreshold (fraction of capacity) below which batteryLow
	// events are emitted on Tick.
	lowBatteryThreshold float64
}

// NewPlant creates a plant on the given clock. sink may be nil.
func NewPlant(clock simtime.Clock, sink func(Event)) *Plant {
	if clock == nil {
		clock = simtime.NewVirtual()
	}
	return &Plant{
		clock:               clock,
		trace:               &script.Trace{},
		devices:             make(map[string]*Device),
		sink:                sink,
		lowBatteryThreshold: 0.2,
	}
}

// Trace returns the recorded command trace.
func (p *Plant) Trace() *script.Trace { return p.trace }

func (p *Plant) emit(e Event) {
	if p.sink != nil {
		p.sink(e)
	}
}

// RegisterDevice adds a device to the plant, initially offline.
func (p *Plant) RegisterDevice(id string, kind DeviceKind, capacity float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !ValidKind(kind) {
		return fmt.Errorf("microgrid: invalid device kind %q", kind)
	}
	if capacity <= 0 {
		return fmt.Errorf("microgrid: capacity must be positive, got %v", capacity)
	}
	if _, ok := p.devices[id]; ok {
		return fmt.Errorf("microgrid: device %q already registered", id)
	}
	d := &Device{ID: id, Kind: kind, Capacity: capacity}
	if kind == Battery {
		d.Charge = capacity / 2 // delivered half charged
	}
	p.devices[id] = d
	p.trace.RecordOp("registerDevice", "device:"+id, "kind", string(kind), "capacity", capacity)
	return nil
}

// SetOnline switches a device on or off.
func (p *Plant) SetOnline(id string, online bool) error {
	p.mu.Lock()
	d, ok := p.devices[id]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("microgrid: unknown device %q", id)
	}
	d.Online = online
	if !online {
		d.Output = 0
	}
	p.trace.RecordOp("setOnline", "device:"+id, "online", online)
	kind := "deviceOnline"
	if !online {
		kind = "deviceOffline"
	}
	p.mu.Unlock()
	// Emitted outside the lock so synchronous sinks may re-enter.
	p.emit(resources.NewEvent(kind, "device", id))
	return nil
}

// SetOutput commands a device's output (kW). Sources produce (positive),
// loads draw (negative). Battery output positive = discharging.
func (p *Plant) SetOutput(id string, kw float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.devices[id]
	if !ok {
		return fmt.Errorf("microgrid: unknown device %q", id)
	}
	if !d.Online {
		return fmt.Errorf("microgrid: device %q is offline", id)
	}
	limit := d.Capacity
	if d.Kind == Battery {
		limit = d.Capacity // battery power limit equals capacity here
	}
	if kw > limit || kw < -limit {
		return fmt.Errorf("microgrid: output %v exceeds capacity %v of %q", kw, d.Capacity, id)
	}
	d.Output = kw
	p.trace.RecordOp("setOutput", "device:"+id, "kw", kw)
	return nil
}

// ShedLoad turns a load device's draw down to the given kW (must reduce).
func (p *Plant) ShedLoad(id string, toKW float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.devices[id]
	if !ok {
		return fmt.Errorf("microgrid: unknown device %q", id)
	}
	if d.Kind != Load {
		return fmt.Errorf("microgrid: device %q is not a load", id)
	}
	if toKW > -d.Output {
		return fmt.Errorf("microgrid: shed target %v exceeds current draw %v", toKW, -d.Output)
	}
	d.Output = -toKW
	p.trace.RecordOp("shedLoad", "device:"+id, "kw", toKW)
	return nil
}

// Telemetry computes the current plant snapshot.
func (p *Plant) Telemetry() Telemetry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.telemetryLocked()
}

func (p *Plant) telemetryLocked() Telemetry {
	var t Telemetry
	for _, id := range p.deviceIDsLocked() {
		d := p.devices[id]
		if !d.Online {
			continue
		}
		switch {
		case d.Kind == Load:
			t.Consumption += -d.Output
		case d.Output >= 0:
			t.Generation += d.Output
		default:
			t.Consumption += -d.Output // charging battery draws power
		}
		if d.Kind == Battery {
			t.BatteryCharge += d.Charge
		}
	}
	t.GridImport = t.Consumption - t.Generation
	return t
}

// Tick advances plant time by d: battery charge integrates output, and
// batteryLow events fire when state of charge crosses the threshold.
func (p *Plant) Tick(d time.Duration) {
	p.mu.Lock()
	hours := d.Hours()
	var pending []Event
	for _, id := range p.deviceIDsLocked() {
		dev := p.devices[id]
		if dev.Kind != Battery || !dev.Online {
			continue
		}
		wasLow := dev.Charge < p.lowBatteryThreshold*dev.Capacity
		dev.Charge -= dev.Output * hours // discharging (positive output) drains
		if dev.Charge < 0 {
			dev.Charge = 0
			dev.Output = 0
		}
		if dev.Charge > dev.Capacity {
			dev.Charge = dev.Capacity
			dev.Output = 0
		}
		isLow := dev.Charge < p.lowBatteryThreshold*dev.Capacity
		if isLow && !wasLow {
			pending = append(pending, resources.NewEvent("batteryLow", "device", id))
		}
	}
	p.clock.Sleep(d)
	p.mu.Unlock()
	// Emitted outside the lock so synchronous sinks may re-enter.
	for _, e := range pending {
		p.emit(e)
	}
}

// Device returns a copy of the device state, or false when unknown.
func (p *Plant) Device(id string) (Device, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.devices[id]
	if !ok {
		return Device{}, false
	}
	return *d, true
}

// DeviceIDs returns all device IDs sorted.
func (p *Plant) DeviceIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deviceIDsLocked()
}

func (p *Plant) deviceIDsLocked() []string {
	out := make([]string, 0, len(p.devices))
	for id := range p.devices {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
