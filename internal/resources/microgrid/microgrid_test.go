package microgrid

import (
	"strings"
	"testing"
	"time"
)

func plant(t *testing.T) (*Plant, *[]Event) {
	t.Helper()
	var events []Event
	p := NewPlant(nil, func(e Event) { events = append(events, e) })
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.RegisterDevice("solar1", Solar, 5))
	must(p.RegisterDevice("bat1", Battery, 10))
	must(p.RegisterDevice("load1", Load, 8))
	must(p.SetOnline("solar1", true))
	must(p.SetOnline("bat1", true))
	must(p.SetOnline("load1", true))
	events = events[:0]
	return p, &events
}

func TestRegisterErrors(t *testing.T) {
	p := NewPlant(nil, nil)
	if err := p.RegisterDevice("d", DeviceKind("fusion"), 1); err == nil {
		t.Error("invalid kind")
	}
	if err := p.RegisterDevice("d", Solar, 0); err == nil {
		t.Error("zero capacity")
	}
	if err := p.RegisterDevice("d", Solar, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterDevice("d", Solar, 1); err == nil {
		t.Error("duplicate")
	}
}

func TestBatteryStartsHalfCharged(t *testing.T) {
	p, _ := plant(t)
	d, ok := p.Device("bat1")
	if !ok || d.Charge != 5 {
		t.Fatalf("battery charge: %+v", d)
	}
}

func TestOutputAndTelemetry(t *testing.T) {
	p, _ := plant(t)
	if err := p.SetOutput("solar1", 4); err != nil {
		t.Fatal(err)
	}
	if err := p.SetOutput("load1", -6); err != nil {
		t.Fatal(err)
	}
	if err := p.SetOutput("bat1", 2); err != nil { // discharging
		t.Fatal(err)
	}
	tel := p.Telemetry()
	if tel.Generation != 6 { // 4 solar + 2 battery discharge
		t.Errorf("generation: %v", tel.Generation)
	}
	if tel.Consumption != 6 {
		t.Errorf("consumption: %v", tel.Consumption)
	}
	if tel.GridImport != 0 {
		t.Errorf("grid import: %v", tel.GridImport)
	}
	if tel.BatteryCharge != 5 {
		t.Errorf("battery charge: %v", tel.BatteryCharge)
	}
}

func TestChargingBatteryCountsAsConsumption(t *testing.T) {
	p, _ := plant(t)
	if err := p.SetOutput("bat1", -3); err != nil { // charging
		t.Fatal(err)
	}
	tel := p.Telemetry()
	if tel.Consumption != 3 || tel.GridImport != 3 {
		t.Errorf("telemetry: %+v", tel)
	}
}

func TestSetOutputErrors(t *testing.T) {
	p, _ := plant(t)
	if err := p.SetOutput("ghost", 1); err == nil {
		t.Error("unknown device")
	}
	if err := p.SetOutput("solar1", 99); err == nil {
		t.Error("over capacity")
	}
	if err := p.SetOnline("solar1", false); err != nil {
		t.Fatal(err)
	}
	if err := p.SetOutput("solar1", 1); err == nil {
		t.Error("offline device")
	}
	if err := p.SetOnline("ghost", true); err == nil {
		t.Error("unknown device online")
	}
}

func TestOfflineZeroesOutput(t *testing.T) {
	p, events := plant(t)
	if err := p.SetOutput("solar1", 4); err != nil {
		t.Fatal(err)
	}
	if err := p.SetOnline("solar1", false); err != nil {
		t.Fatal(err)
	}
	d, _ := p.Device("solar1")
	if d.Output != 0 || d.Online {
		t.Errorf("offline device: %+v", d)
	}
	found := false
	for _, e := range *events {
		if e.Kind == "deviceOffline" && e.Str("device") == "solar1" {
			found = true
		}
	}
	if !found {
		t.Error("deviceOffline event missing")
	}
}

func TestShedLoad(t *testing.T) {
	p, _ := plant(t)
	if err := p.SetOutput("load1", -6); err != nil {
		t.Fatal(err)
	}
	if err := p.ShedLoad("load1", 2); err != nil {
		t.Fatal(err)
	}
	d, _ := p.Device("load1")
	if d.Output != -2 {
		t.Errorf("shed output: %v", d.Output)
	}
	if err := p.ShedLoad("load1", 5); err == nil {
		t.Error("shed must reduce draw")
	}
	if err := p.ShedLoad("solar1", 1); err == nil {
		t.Error("shed on non-load")
	}
	if err := p.ShedLoad("ghost", 1); err == nil {
		t.Error("shed unknown")
	}
}

func TestTickBatteryDrainAndLowEvent(t *testing.T) {
	p, events := plant(t)
	if err := p.SetOutput("bat1", 4); err != nil { // discharge at 4kW from 5kWh
		t.Fatal(err)
	}
	p.Tick(30 * time.Minute) // -2 kWh -> 3 kWh (30% > 20% threshold)
	if len(*events) != 0 {
		t.Fatalf("no event expected yet: %v", *events)
	}
	p.Tick(30 * time.Minute) // -2 kWh -> 1 kWh (10% < 20%)
	var low int
	for _, e := range *events {
		if e.Kind == "batteryLow" {
			low++
		}
	}
	if low != 1 {
		t.Fatalf("batteryLow events: %d", low)
	}
	// Draining to empty clamps and stops output.
	p.Tick(2 * time.Hour)
	d, _ := p.Device("bat1")
	if d.Charge != 0 || d.Output != 0 {
		t.Errorf("drained battery: %+v", d)
	}
}

func TestTickOverchargeClamps(t *testing.T) {
	p, _ := plant(t)
	if err := p.SetOutput("bat1", -5); err != nil { // charge at 5kW
		t.Fatal(err)
	}
	p.Tick(4 * time.Hour)
	d, _ := p.Device("bat1")
	if d.Charge != 10 || d.Output != 0 {
		t.Errorf("full battery: %+v", d)
	}
}

func TestTraceRecordsCommands(t *testing.T) {
	p, _ := plant(t)
	if err := p.SetOutput("solar1", 3); err != nil {
		t.Fatal(err)
	}
	tr := p.Trace().String()
	for _, want := range []string{"registerDevice device:solar1", "setOnline device:bat1", "setOutput device:solar1 kw=3"} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace missing %q:\n%s", want, tr)
		}
	}
}

func TestDeviceQueries(t *testing.T) {
	p, _ := plant(t)
	if _, ok := p.Device("ghost"); ok {
		t.Error("ghost device")
	}
	ids := p.DeviceIDs()
	if strings.Join(ids, ",") != "bat1,load1,solar1" {
		t.Errorf("DeviceIDs: %v", ids)
	}
	if !ValidKind(GridTie) || ValidKind("x") {
		t.Error("ValidKind")
	}
}
