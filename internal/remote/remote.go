// Package remote distributes MD-DSM platforms across processes: a Server
// exposes a platform's Controller over TCP, and a Client dispatches
// commands to it and subscribes to the events that reach the remote
// platform's top of stack. The 2SVM and CSVM deployments (paper §IV-C/D)
// distribute their layers across devices exactly this way; this package
// provides the wire so those splits can span real process boundaries.
//
// The protocol is newline-delimited JSON, one frame per line, each frame at
// most MaxFrame bytes:
//
//	-> {"type":"command","op":"...","target":"...","args":{...}}
//	<- {"type":"result","ok":true}            (or "error":"...")
//	-> {"type":"event","name":"...","attrs":{...}}
//	<- {"type":"result","ok":true}
//	-> {"type":"subscribe"}
//	<- {"type":"result","ok":true}
//	<- {"type":"event","name":"...","attrs":{...}}   (pushed thereafter)
//
// Failure handling is first-class: dials and round trips carry deadlines,
// writes to slow subscribers are bounded, transport failures are classified
// transient (fault.IsTransient) while endpoint rejections are permanent,
// and Conn layers reconnect-with-backoff and idempotent command retry on
// top of the single-connection Client. The named fault points SiteDial,
// SiteSend and SiteServe let a fault.Injector rehearse all of it
// deterministically.
package remote

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// Fault-point names evaluated by this package's injector, if one is
// configured.
const (
	// SiteDial fires when a client establishes a connection.
	SiteDial = "remote.dial"
	// SiteSend fires when a client transmits a request.
	SiteSend = "remote.send"
	// SiteServe fires when the server handles a received message; a fired
	// error is reported to the client as a result error.
	SiteServe = "remote.serve"
)

// MaxFrame bounds one wire frame. A peer sending a longer line is cut off
// rather than ballooning the process; the previous decoder accepted
// unbounded input.
const MaxFrame = 1 << 20

// ProtocolVersion is the wire protocol revision this package speaks. A
// frame may carry an explicit version (clients opt in via WithProtocol;
// cluster peers always stamp it); the zero value is the original,
// unversioned protocol, so legacy frames are byte-identical and always
// accepted. A frame carrying any other version is rejected gracefully — a
// counted result error naming both versions — instead of surfacing as an
// opaque decode or behaviour mismatch deeper in.
const ProtocolVersion = 1

// versionMismatchPrefix keys IsVersionMismatch; the server's rejection
// message starts with it.
const versionMismatchPrefix = "remote: protocol version "

// message is the wire envelope. Tenant scopes a frame to one tenant on a
// multiplexed server (empty on single-platform wires, so the original
// protocol is the zero value). "control" frames carry administrative verbs
// in Op/Args and return their payload in the result's Attrs. V is the
// protocol version (omitempty: legacy frames carry none and stay
// byte-identical).
type message struct {
	Type   string         `json:"type"`
	V      int            `json:"v,omitempty"`
	Tenant string         `json:"tenant,omitempty"`
	Op     string         `json:"op,omitempty"`
	Target string         `json:"target,omitempty"`
	Args   map[string]any `json:"args,omitempty"`
	Name   string         `json:"name,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	OK     bool           `json:"ok,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// errMalformed distinguishes protocol violations (oversized or undecodable
// frames) from plain transport failures.
var errMalformed = errors.New("remote: malformed frame")

// readFrame reads one newline-delimited JSON frame, skipping blank lines
// and enforcing MaxFrame. Any transport or decode error poisons the
// connection: framing cannot be trusted past a bad line, so callers drop
// the connection.
func readFrame(br *bufio.Reader) (message, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if err == bufio.ErrBufferFull {
			if len(buf) > MaxFrame {
				return message{}, fmt.Errorf("%w: exceeds %d bytes", errMalformed, MaxFrame)
			}
			continue
		}
		if err != nil {
			return message{}, err
		}
		line := bytes.TrimSpace(buf)
		if len(line) == 0 {
			buf = buf[:0]
			continue
		}
		if len(line) > MaxFrame {
			return message{}, fmt.Errorf("%w: exceeds %d bytes", errMalformed, MaxFrame)
		}
		var msg message
		if err := json.Unmarshal(line, &msg); err != nil {
			return message{}, fmt.Errorf("%w: %v", errMalformed, err)
		}
		return msg, nil
	}
}

// CallError is an error reported by the remote endpoint itself, as opposed
// to a transport failure. It is permanent: the command reached the other
// side and was rejected, so retrying cannot help.
type CallError struct{ Msg string }

// Error implements error.
func (e *CallError) Error() string { return e.Msg }

// IsVersionMismatch reports whether err is a peer's graceful rejection of
// this side's protocol version. Cluster membership uses it to count an
// incompatible peer out instead of retrying it forever.
func IsVersionMismatch(err error) bool {
	var ce *CallError
	return errors.As(err, &ce) && strings.HasPrefix(ce.Msg, versionMismatchPrefix)
}

// options collects the tunables shared by Server, Client and Conn.
type options struct {
	dialTimeout time.Duration
	ioTimeout   time.Duration
	retry       fault.Policy
	retrySet    bool
	injector    *fault.Injector
	metrics     *obs.Metrics
	protocol    int
}

func defaultOptions() options {
	return options{
		dialTimeout: 5 * time.Second,
		ioTimeout:   10 * time.Second,
	}
}

// Option customises a Server, Client or Conn.
type Option func(*options)

// WithDialTimeout bounds connection establishment (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.dialTimeout = d
		}
	}
}

// WithIOTimeout bounds one request/response round trip on the client and
// one frame write on the server (default 10s; 0 disables).
func WithIOTimeout(d time.Duration) Option {
	return func(o *options) { o.ioTimeout = d }
}

// WithRetry sets the reconnect/retry policy used by Connect (default: 5
// attempts, 25ms base backoff). It has no effect on a raw Dial client.
func WithRetry(p fault.Policy) Option {
	return func(o *options) {
		o.retry = p
		o.retrySet = true
	}
}

// WithInjector evaluates this package's fault points against in.
func WithInjector(in *fault.Injector) Option {
	return func(o *options) { o.injector = in }
}

// WithMetrics counts wire-level failures (timeouts, redials, bad frames,
// slow-subscriber drops) in the registry.
func WithMetrics(m *obs.Metrics) Option {
	return func(o *options) { o.metrics = m }
}

// WithProtocol stamps every frame a client (or Conn) sends with an
// explicit protocol version. Unversioned frames (the default) speak the
// original protocol and are always accepted; a versioned frame lets the
// server reject an incompatible peer with a counted, self-describing
// error. Cluster peers dial each other with
// WithProtocol(ProtocolVersion).
func WithProtocol(v int) Option {
	return func(o *options) { o.protocol = v }
}

// Endpoint is the platform surface the server exposes: command execution
// and event intake. runtime.Platform satisfies it via a thin adapter; any
// other command consumer works too.
type Endpoint interface {
	Execute(s *script.Script) error
	DeliverEvent(ev broker.Event) error
}

// Router resolves the tenant named in a frame to the endpoint serving it.
// A multiplexed server (NewRouterServer) consults it on every command and
// event frame, so routing decisions — including lazily rehydrating an
// evicted tenant — happen per frame, not per connection.
type Router interface {
	Route(tenant string) (Endpoint, error)
}

// Control handles the administrative verbs of a multiplexed server
// (create, evict, stat, ...). The verb vocabulary is the host's; the wire
// just carries verb + tenant + args one way and an attribute map back. A
// Router that also implements Control gets "control" frames dispatched to
// it; otherwise they are rejected.
type Control interface {
	Control(verb, tenant string, args map[string]any) (map[string]any, error)
}

// subscriber is one subscribed connection and its tenant filter ("" means
// every event).
type subscriber struct {
	enc    *json.Encoder
	tenant string
}

// Server exposes one endpoint — or a Router's worth of tenants — on a
// listener. Create with NewServer or NewRouterServer, stop with Close
// (which also waits for connection goroutines).
type Server struct {
	router   Router
	control  Control
	listener net.Listener
	opts     options

	mBadFrames  *obs.Counter
	mSlowSubs   *obs.Counter
	mVersionBad *obs.Counter

	mu    sync.Mutex
	subs  map[net.Conn]*subscriber
	conns map[net.Conn]bool
	done  chan struct{}
	wg    sync.WaitGroup
}

// singleRouter serves one endpoint to every tenant name (the pre-multiplex
// behaviour: the tenant field is ignored).
type singleRouter struct{ ep Endpoint }

func (r singleRouter) Route(string) (Endpoint, error) { return r.ep, nil }

// NewServer starts serving the endpoint on addr (e.g. "127.0.0.1:0").
func NewServer(endpoint Endpoint, addr string, opts ...Option) (*Server, error) {
	return NewRouterServer(singleRouter{endpoint}, addr, opts...)
}

// NewRouterServer starts a multiplexed server on addr: command and event
// frames are routed per tenant, and — when the router also implements
// Control — "control" frames carry the host's administrative verbs.
func NewRouterServer(router Router, addr string, opts ...Option) (*Server, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote server: %w", err)
	}
	s := &Server{
		router:      router,
		listener:    ln,
		opts:        o,
		mBadFrames:  o.metrics.Counter(obs.MRemoteBadFrames),
		mSlowSubs:   o.metrics.Counter(obs.MRemoteSlowEvents),
		mVersionBad: o.metrics.Counter(obs.MRemoteVersionBad),
		subs:        make(map[net.Conn]*subscriber),
		conns:       make(map[net.Conn]bool),
		done:        make(chan struct{}),
	}
	if ctl, ok := router.(Control); ok {
		s.control = ctl
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the listener, drops every connection and waits for the
// serving goroutines to exit.
func (s *Server) Close() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	_ = s.listener.Close()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// PublishEvent pushes an event to every subscribed client regardless of
// tenant filter. Wire it to the platform's external event observer to
// stream top-of-stack events out. Each subscriber write is bounded by the
// server's IO timeout, so one never-reading subscriber cannot wedge the
// publisher: it is counted and dropped instead.
func (s *Server) PublishEvent(ev broker.Event) {
	s.publish(message{Type: "event", Name: ev.Name, Attrs: ev.Attrs}, false)
}

// PublishTenantEvent pushes one tenant's top-of-stack event to the
// subscribers watching that tenant (and to wildcard subscribers, who
// subscribed with no tenant).
func (s *Server) PublishTenantEvent(tenant string, ev broker.Event) {
	s.publish(message{Type: "event", Tenant: tenant, Name: ev.Name, Attrs: ev.Attrs}, true)
}

func (s *Server) publish(msg message, filter bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn, sub := range s.subs {
		if filter && sub.tenant != "" && sub.tenant != msg.Tenant {
			continue
		}
		if d := s.opts.ioTimeout; d > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(d))
		}
		if err := sub.enc.Encode(msg); err != nil {
			s.mSlowSubs.Inc()
			delete(s.subs, conn)
			_ = conn.Close()
		}
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		delete(s.subs, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		msg, err := readFrame(br)
		if err != nil {
			// Disconnect or garbage: framing is untrustworthy, drop the
			// connection. Protocol violations are counted.
			if errors.Is(err, errMalformed) {
				s.mBadFrames.Inc()
			}
			return
		}
		reply := message{Type: "result", OK: true}
		if msg.V != 0 && msg.V != ProtocolVersion {
			// A versioned frame from an incompatible peer: reject it
			// gracefully and keep the connection — the peer gets a
			// self-describing error instead of a dropped socket or a
			// behaviour mismatch deeper in the stack.
			s.mVersionBad.Inc()
			reply.OK = false
			reply.Error = fmt.Sprintf("%s%d not supported (this endpoint speaks %d)",
				versionMismatchPrefix, msg.V, ProtocolVersion)
		} else if err := s.opts.injector.Inject(SiteServe); err != nil {
			reply.OK = false
			reply.Error = err.Error()
		} else {
			switch msg.Type {
			case "command":
				ep, err := s.router.Route(msg.Tenant)
				if err != nil {
					reply.OK = false
					reply.Error = err.Error()
					break
				}
				cmd := script.NewCommand(msg.Op, msg.Target)
				for k, v := range msg.Args {
					cmd = cmd.WithArg(k, v)
				}
				if err := ep.Execute(script.New("remote").Append(cmd)); err != nil {
					reply.OK = false
					reply.Error = err.Error()
				}
			case "event":
				ep, err := s.router.Route(msg.Tenant)
				if err != nil {
					reply.OK = false
					reply.Error = err.Error()
					break
				}
				if err := ep.DeliverEvent(broker.Event{Name: msg.Name, Attrs: msg.Attrs}); err != nil {
					reply.OK = false
					reply.Error = err.Error()
				}
			case "control":
				if s.control == nil {
					reply.OK = false
					reply.Error = "server has no control surface"
					break
				}
				attrs, err := s.control.Control(msg.Op, msg.Tenant, msg.Args)
				if err != nil {
					reply.OK = false
					reply.Error = err.Error()
					break
				}
				reply.Attrs = attrs
			case "subscribe":
				// One subscription per connection; a repeat subscribe
				// retargets the tenant filter.
				s.mu.Lock()
				s.subs[conn] = &subscriber{enc: enc, tenant: msg.Tenant}
				s.mu.Unlock()
			default:
				reply.OK = false
				reply.Error = fmt.Sprintf("unknown message type %q", msg.Type)
			}
		}
		// The subscribe stream shares the encoder; guard against
		// interleaving with PublishEvent. The write deadline bounds the
		// time a stalled client can hold the lock.
		s.mu.Lock()
		if d := s.opts.ioTimeout; d > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(d))
		}
		err = enc.Encode(reply)
		s.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// Client talks to a remote platform over one connection. A single reader
// goroutine owns the connection's receive side from the moment the client
// is created: command/event results are matched to the one outstanding
// request (calls are serialised), and pushed events flow to the
// subscription channel. It is safe for concurrent use. A Client does not
// heal itself — once its connection dies it stays dead; use Connect for a
// self-healing handle.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	opts options

	mTimeouts *obs.Counter

	sendMu  sync.Mutex // serialises request/response pairs
	results chan message
	events  chan broker.Event
	closed  chan struct{}
	readErr error
	errOnce sync.Once
}

// Dial connects to a server, bounded by the dial timeout.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	return dialOpts(addr, o)
}

// dialOpts is Dial with resolved options; Conn redials through it.
func dialOpts(addr string, o options) (*Client, error) {
	if err := o.injector.Inject(SiteDial); err != nil {
		return nil, fmt.Errorf("remote client: dial %s: %w", addr, err)
	}
	conn, err := net.DialTimeout("tcp", addr, o.dialTimeout)
	if err != nil {
		return nil, fault.Transient(fmt.Errorf("remote client: %w", err))
	}
	c := &Client{
		conn:      conn,
		enc:       json.NewEncoder(conn),
		opts:      o,
		mTimeouts: o.metrics.Counter(obs.MRemoteTimeouts),
		results:   make(chan message, 1),
		events:    make(chan broker.Event, 16),
		closed:    make(chan struct{}),
	}
	go c.receiveLoop(bufio.NewReader(conn))
	return c, nil
}

// Close drops the connection; the reader goroutine then closes the event
// channel. Close is idempotent.
func (c *Client) Close() {
	c.errOnce.Do(func() {
		c.readErr = errors.New("remote client: closed")
		close(c.closed)
	})
	_ = c.conn.Close()
}

// Closed reports whether the client's connection is no longer usable.
func (c *Client) Closed() bool {
	select {
	case <-c.closed:
		return true
	default:
		return false
	}
}

// receiveLoop is the sole reader: results are handed to the waiting
// request, events to the subscription channel.
func (c *Client) receiveLoop(br *bufio.Reader) {
	defer close(c.events)
	for {
		msg, err := readFrame(br)
		if err != nil {
			c.errOnce.Do(func() {
				c.readErr = fault.Transient(fmt.Errorf("remote client: receive: %w", err))
				close(c.closed)
			})
			return
		}
		switch msg.Type {
		case "result":
			select {
			case c.results <- msg:
			case <-c.closed:
				return
			}
		case "event":
			select {
			case c.events <- broker.Event{Name: msg.Name, Attrs: msg.Attrs}:
			default: // slow consumer: drop rather than stall the wire
			}
		}
	}
}

// roundTrip sends a message and waits for its result, bounded by the IO
// timeout. A timed-out round trip closes the connection: the request/
// response pairing can no longer be trusted.
func (c *Client) roundTrip(msg message) (message, error) {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	msg.V = c.opts.protocol
	select {
	case <-c.closed:
		return message{}, c.readErr
	default:
	}
	if err := c.opts.injector.Inject(SiteSend); err != nil {
		return message{}, fmt.Errorf("remote client: send: %w", err)
	}
	if d := c.opts.ioTimeout; d > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := c.enc.Encode(msg); err != nil {
		return message{}, fault.Transient(fmt.Errorf("remote client: send: %w", err))
	}
	var timeout <-chan time.Time
	if d := c.opts.ioTimeout; d > 0 {
		tm := time.NewTimer(d)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case reply := <-c.results:
		if !reply.OK {
			return reply, &CallError{Msg: reply.Error}
		}
		return reply, nil
	case <-timeout:
		c.mTimeouts.Inc()
		c.Close()
		return message{}, fmt.Errorf("remote client: round trip: %w after %v", fault.ErrTimeout, c.opts.ioTimeout)
	case <-c.closed:
		return message{}, c.readErr
	}
}

// Call dispatches one command to the remote platform's Controller. It
// implements the bridge.Dispatch shape, so a remote platform can be a
// bridge target.
func (c *Client) Call(cmd script.Command) error {
	_, err := c.roundTrip(message{Type: "command", Op: cmd.Op, Target: cmd.Target, Args: cmd.Args})
	return err
}

// PostEvent injects an event into the remote platform's Broker layer.
func (c *Client) PostEvent(ev broker.Event) error {
	_, err := c.roundTrip(message{Type: "event", Name: ev.Name, Attrs: ev.Attrs})
	return err
}

// Subscribe asks the server to stream top-of-stack events and returns the
// channel they arrive on. The channel closes when the connection dies or
// Close is called. Subscribing more than once returns the same channel.
func (c *Client) Subscribe() (<-chan broker.Event, error) {
	if _, err := c.roundTrip(message{Type: "subscribe"}); err != nil {
		return nil, err
	}
	return c.events, nil
}

// Control sends an administrative verb to a multiplexed server and returns
// the attribute map the host's Control handler produced. Verbs are
// host-defined (mddsm-serve: create, evict, stat, snapshot, tenants, ...).
func (c *Client) Control(verb, tenant string, args map[string]any) (map[string]any, error) {
	reply, err := c.roundTrip(message{Type: "control", Op: verb, Tenant: tenant, Args: args})
	if err != nil {
		return nil, err
	}
	return reply.Attrs, nil
}

// Session scopes a client to one tenant of a multiplexed server: the same
// wire verbs, each frame stamped with the tenant name. Sessions share the
// client's connection (and its one-outstanding-request discipline), so any
// number of them can multiplex over a single Dial.
type Session struct {
	c      *Client
	tenant string
}

// Session returns a handle scoped to the named tenant.
func (c *Client) Session(tenant string) *Session {
	return &Session{c: c, tenant: tenant}
}

// Call dispatches one command to the tenant's Controller.
func (s *Session) Call(cmd script.Command) error {
	_, err := s.c.roundTrip(message{Type: "command", Tenant: s.tenant, Op: cmd.Op, Target: cmd.Target, Args: cmd.Args})
	return err
}

// PostEvent injects an event into the tenant's Broker layer.
func (s *Session) PostEvent(ev broker.Event) error {
	_, err := s.c.roundTrip(message{Type: "event", Tenant: s.tenant, Name: ev.Name, Attrs: ev.Attrs})
	return err
}

// Subscribe retargets the connection's event stream to this tenant's
// top-of-stack events and returns the shared channel. One connection holds
// one subscription; the latest Subscribe wins.
func (s *Session) Subscribe() (<-chan broker.Event, error) {
	if _, err := s.c.roundTrip(message{Type: "subscribe", Tenant: s.tenant}); err != nil {
		return nil, err
	}
	return s.c.events, nil
}

// ---------------------------------------------------------------------------
// Conn: self-healing client
// ---------------------------------------------------------------------------

// DefaultRetry is Connect's reconnect/retry policy when none is given.
var DefaultRetry = fault.Policy{
	MaxAttempts: 5,
	BaseDelay:   25 * time.Millisecond,
	MaxDelay:    time.Second,
	Multiplier:  2,
	Jitter:      0.2,
}

// ErrConnClosed reports use of a Conn after Close.
var ErrConnClosed = errors.New("remote conn: closed")

// Conn is a self-healing remote handle: Connect dials with backoff, Call
// and PostEvent retry transient transport failures — MD-DSM commands are
// declarative property assignments, hence idempotent and safe to replay —
// and a dead connection is redialled transparently, resubscribing when the
// Conn is subscribed. Operations are serialised; endpoint rejections
// (CallError) are never retried. The subscription channel survives
// reconnects, though events published while disconnected are lost.
type Conn struct {
	addr    string
	opts    options
	retryer *fault.Retryer

	mRedials *obs.Counter

	mu         sync.Mutex
	cli        *Client
	subscribed bool
	closed     bool
	events     chan broker.Event
	fwd        sync.WaitGroup
}

// Connect dials addr with backoff and returns a self-healing handle.
func Connect(addr string, opts ...Option) (*Conn, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	if !o.retrySet {
		o.retry = DefaultRetry
	}
	c := &Conn{
		addr:     addr,
		opts:     o,
		retryer:  fault.NewRetryer(o.retry, fault.RetryMetrics(o.metrics)),
		mRedials: o.metrics.Counter(obs.MRemoteRedials),
		events:   make(chan broker.Event, 64),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.retryer.Do(c.ensureLocked); err != nil {
		return nil, err
	}
	return c, nil
}

// ensureLocked makes sure a live client exists, redialling if needed
// (c.mu held).
func (c *Conn) ensureLocked() error {
	if c.cli != nil && !c.cli.Closed() {
		return nil
	}
	if c.cli != nil {
		c.mRedials.Inc()
	}
	cli, err := dialOpts(c.addr, c.opts)
	if err != nil {
		return err
	}
	if c.subscribed {
		sub, err := cli.Subscribe()
		if err != nil {
			cli.Close()
			return err
		}
		c.forward(sub)
	}
	c.cli = cli
	return nil
}

// forward pumps one inner client's event stream into the Conn's persistent
// channel until the inner channel closes (connection death) — then, on a
// subscribed Conn that was not deliberately closed, heals the subscription
// proactively instead of waiting for the next Call/PostEvent: without
// this, a Conn used only as an event sink would sit on a silently severed
// stream until some unrelated operation happened to redial.
func (c *Conn) forward(sub <-chan broker.Event) {
	c.fwd.Add(1)
	go func() {
		defer c.fwd.Done()
		for ev := range sub {
			select {
			case c.events <- ev:
			default: // slow consumer: drop rather than stall
			}
		}
		c.resubscribe()
	}()
}

// resubscribe re-establishes a dropped connection's subscription with the
// Conn's retry policy. It gives up (leaving the next operation to heal)
// when the policy is exhausted; it does nothing when the Conn is closed,
// never subscribed, or already healed by a concurrent operation.
func (c *Conn) resubscribe() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || !c.subscribed {
		return
	}
	if c.cli != nil && !c.cli.Closed() {
		return // a concurrent op already redialled (and resubscribed)
	}
	_ = c.retryer.Do(c.ensureLocked)
}

// do runs one operation against a live client, retrying transient failures
// with reconnection between attempts.
func (c *Conn) do(fn func(*Client) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	return c.retryer.Do(func() error {
		if err := c.ensureLocked(); err != nil {
			return err
		}
		err := fn(c.cli)
		if err != nil && fault.IsTransient(err) {
			c.cli.Close() // force a redial on the next attempt
		}
		return err
	})
}

// Call dispatches one command, retrying transient transport failures.
func (c *Conn) Call(cmd script.Command) error {
	return c.do(func(cli *Client) error { return cli.Call(cmd) })
}

// PostEvent injects an event into the remote Broker layer, retrying
// transient transport failures.
func (c *Conn) PostEvent(ev broker.Event) error {
	return c.do(func(cli *Client) error { return cli.PostEvent(ev) })
}

// Control sends an administrative verb to a multiplexed server, retrying
// transient transport failures. Like commands, the caller's verbs must be
// idempotent to be safe to replay — the cluster verbs (join, heartbeat,
// sequence-deduped forwards, epoch-guarded migrations) are designed so.
func (c *Conn) Control(verb, tenant string, args map[string]any) (map[string]any, error) {
	var attrs map[string]any
	err := c.do(func(cli *Client) error {
		var err error
		attrs, err = cli.Control(verb, tenant, args)
		return err
	})
	return attrs, err
}

// Subscribe returns the Conn's persistent event channel, subscribing the
// current connection (and every future reconnection) to the server's
// top-of-stack stream. The channel closes only when the Conn is closed.
func (c *Conn) Subscribe() (<-chan broker.Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConnClosed
	}
	if c.subscribed {
		return c.events, nil
	}
	err := c.retryer.Do(func() error {
		if err := c.ensureLocked(); err != nil {
			return err
		}
		sub, err := c.cli.Subscribe()
		if err != nil {
			if fault.IsTransient(err) {
				c.cli.Close()
			}
			return err
		}
		c.forward(sub)
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.subscribed = true
	return c.events, nil
}

// Close tears the connection down, waits for the event forwarder and
// closes the subscription channel. Close is idempotent.
func (c *Conn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	cli := c.cli
	c.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
	c.fwd.Wait()
	close(c.events)
}
