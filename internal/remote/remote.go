// Package remote distributes MD-DSM platforms across processes: a Server
// exposes a platform's Controller over TCP, and a Client dispatches
// commands to it and subscribes to the events that reach the remote
// platform's top of stack. The 2SVM and CSVM deployments (paper §IV-C/D)
// distribute their layers across devices exactly this way; this package
// provides the wire so those splits can span real process boundaries.
//
// The protocol is newline-delimited JSON:
//
//	-> {"type":"command","op":"...","target":"...","args":{...}}
//	<- {"type":"result","ok":true}            (or "error":"...")
//	-> {"type":"event","name":"...","attrs":{...}}
//	<- {"type":"result","ok":true}
//	-> {"type":"subscribe"}
//	<- {"type":"result","ok":true}
//	<- {"type":"event","name":"...","attrs":{...}}   (pushed thereafter)
package remote

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/script"
)

// message is the wire envelope.
type message struct {
	Type   string         `json:"type"`
	Op     string         `json:"op,omitempty"`
	Target string         `json:"target,omitempty"`
	Args   map[string]any `json:"args,omitempty"`
	Name   string         `json:"name,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	OK     bool           `json:"ok,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// Endpoint is the platform surface the server exposes: command execution
// and event intake. runtime.Platform satisfies it via a thin adapter; any
// other command consumer works too.
type Endpoint interface {
	Execute(s *script.Script) error
	DeliverEvent(ev broker.Event) error
}

// Server exposes an endpoint on a listener. Create with NewServer, stop
// with Close (which also waits for connection goroutines).
type Server struct {
	endpoint Endpoint
	listener net.Listener

	mu    sync.Mutex
	subs  map[net.Conn]*json.Encoder
	conns map[net.Conn]bool
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewServer starts serving the endpoint on addr (e.g. "127.0.0.1:0").
func NewServer(endpoint Endpoint, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote server: %w", err)
	}
	s := &Server{
		endpoint: endpoint,
		listener: ln,
		subs:     make(map[net.Conn]*json.Encoder),
		conns:    make(map[net.Conn]bool),
		done:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the listener, drops every connection and waits for the
// serving goroutines to exit.
func (s *Server) Close() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	_ = s.listener.Close()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// PublishEvent pushes an event to every subscribed client. Wire it to the
// platform's external event observer to stream top-of-stack events out.
func (s *Server) PublishEvent(ev broker.Event) {
	msg := message{Type: "event", Name: ev.Name, Attrs: ev.Attrs}
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn, enc := range s.subs {
		if err := enc.Encode(msg); err != nil {
			delete(s.subs, conn)
			_ = conn.Close()
		}
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		delete(s.subs, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var msg message
		if err := dec.Decode(&msg); err != nil {
			return // disconnect or garbage: drop the connection
		}
		reply := message{Type: "result", OK: true}
		switch msg.Type {
		case "command":
			cmd := script.NewCommand(msg.Op, msg.Target)
			for k, v := range msg.Args {
				cmd = cmd.WithArg(k, v)
			}
			if err := s.endpoint.Execute(script.New("remote").Append(cmd)); err != nil {
				reply.OK = false
				reply.Error = err.Error()
			}
		case "event":
			if err := s.endpoint.DeliverEvent(broker.Event{Name: msg.Name, Attrs: msg.Attrs}); err != nil {
				reply.OK = false
				reply.Error = err.Error()
			}
		case "subscribe":
			s.mu.Lock()
			s.subs[conn] = enc
			s.mu.Unlock()
		default:
			reply.OK = false
			reply.Error = fmt.Sprintf("unknown message type %q", msg.Type)
		}
		// The subscribe stream shares the encoder; guard against
		// interleaving with PublishEvent.
		s.mu.Lock()
		err := enc.Encode(reply)
		s.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// Client talks to a remote platform. A single reader goroutine owns the
// connection's receive side from the moment the client is created:
// command/event results are matched to the one outstanding request (calls
// are serialised), and pushed events flow to the subscription channel. It
// is safe for concurrent use.
type Client struct {
	conn net.Conn
	enc  *json.Encoder

	sendMu  sync.Mutex // serialises request/response pairs
	results chan message
	events  chan broker.Event
	closed  chan struct{}
	readErr error
	errOnce sync.Once
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote client: %w", err)
	}
	c := &Client{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		results: make(chan message, 1),
		events:  make(chan broker.Event, 16),
		closed:  make(chan struct{}),
	}
	go c.receiveLoop(json.NewDecoder(bufio.NewReader(conn)))
	return c, nil
}

// Close drops the connection; the reader goroutine then closes the event
// channel. Close is idempotent.
func (c *Client) Close() {
	c.errOnce.Do(func() {
		c.readErr = errors.New("remote client: closed")
		close(c.closed)
	})
	_ = c.conn.Close()
}

// receiveLoop is the sole reader: results are handed to the waiting
// request, events to the subscription channel.
func (c *Client) receiveLoop(dec *json.Decoder) {
	defer close(c.events)
	for {
		var msg message
		if err := dec.Decode(&msg); err != nil {
			c.errOnce.Do(func() {
				c.readErr = fmt.Errorf("remote client: receive: %w", err)
				close(c.closed)
			})
			return
		}
		switch msg.Type {
		case "result":
			select {
			case c.results <- msg:
			case <-c.closed:
				return
			}
		case "event":
			select {
			case c.events <- broker.Event{Name: msg.Name, Attrs: msg.Attrs}:
			default: // slow consumer: drop rather than stall the wire
			}
		}
	}
}

// roundTrip sends a message and waits for its result.
func (c *Client) roundTrip(msg message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	select {
	case <-c.closed:
		return c.readErr
	default:
	}
	if err := c.enc.Encode(msg); err != nil {
		return fmt.Errorf("remote client: send: %w", err)
	}
	select {
	case reply := <-c.results:
		if !reply.OK {
			return errors.New(reply.Error)
		}
		return nil
	case <-c.closed:
		return c.readErr
	}
}

// Call dispatches one command to the remote platform's Controller. It
// implements the bridge.Dispatch shape, so a remote platform can be a
// bridge target.
func (c *Client) Call(cmd script.Command) error {
	return c.roundTrip(message{Type: "command", Op: cmd.Op, Target: cmd.Target, Args: cmd.Args})
}

// PostEvent injects an event into the remote platform's Broker layer.
func (c *Client) PostEvent(ev broker.Event) error {
	return c.roundTrip(message{Type: "event", Name: ev.Name, Attrs: ev.Attrs})
}

// Subscribe asks the server to stream top-of-stack events and returns the
// channel they arrive on. The channel closes when the connection dies or
// Close is called. Subscribing more than once returns the same channel.
func (c *Client) Subscribe() (<-chan broker.Event, error) {
	if err := c.roundTrip(message{Type: "subscribe"}); err != nil {
		return nil, err
	}
	return c.events, nil
}
