package remote

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// waitGoroutines polls until the goroutine count drops back to the
// baseline (with slack for runtime housekeeping) or the deadline passes.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", base, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// blockingEndpoint parks every Execute until released.
type blockingEndpoint struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingEndpoint) Execute(*script.Script) error {
	b.entered <- struct{}{}
	<-b.release
	return nil
}
func (b *blockingEndpoint) DeliverEvent(broker.Event) error { return nil }

// TestCloseUnblocksInFlightCall: Close during an in-flight command returns
// the caller promptly instead of waiting for the server.
func TestCloseUnblocksInFlightCall(t *testing.T) {
	ep := &blockingEndpoint{entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv, err := NewServer(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// LIFO: release the parked endpoint before Close waits on its goroutine.
	defer srv.Close()
	defer close(ep.release)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	callErr := make(chan error, 1)
	go func() { callErr <- c.Call(script.NewCommand("x", "t")) }()
	<-ep.entered // the command is parked server-side
	c.Close()
	select {
	case err := <-callErr:
		if err == nil {
			t.Error("in-flight call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Call still blocked 2s after Close")
	}
}

// TestRoundTripTimeout: a stuck server cannot hold the client past the
// configured IO timeout, and the timeout is counted and transient.
func TestRoundTripTimeout(t *testing.T) {
	ep := &blockingEndpoint{entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv, err := NewServer(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// LIFO: release the parked endpoint before Close waits on its goroutine.
	defer srv.Close()
	defer close(ep.release)
	m := obs.NewMetrics()
	c, err := Dial(srv.Addr(), WithIOTimeout(50*time.Millisecond), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Call(script.NewCommand("x", "t"))
	elapsed := time.Since(start)
	if !errors.Is(err, fault.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !fault.IsTransient(err) {
		t.Error("round-trip timeout must be transient")
	}
	if elapsed > 2*time.Second {
		t.Errorf("call took %v with a 50ms timeout", elapsed)
	}
	if got := m.Counter(obs.MRemoteTimeouts).Value(); got != 1 {
		t.Errorf("remote.timeouts = %d, want 1", got)
	}
	// The connection is poisoned after a timeout: pairing is untrustworthy.
	if !c.Closed() {
		t.Error("client must close itself after a round-trip timeout")
	}
}

// TestDialDeadline: dialing a black-holed address returns within the
// configured bound rather than the kernel's minutes-long default.
func TestDialDeadline(t *testing.T) {
	start := time.Now()
	// 240.0.0.0/4 is reserved; packets go nowhere on a sane network.
	c, err := Dial("240.0.0.1:1", WithDialTimeout(100*time.Millisecond))
	elapsed := time.Since(start)
	if err == nil {
		c.Close()
		t.Skip("environment routes the reserved address; cannot black-hole")
	}
	if !fault.IsTransient(err) {
		t.Error("dial failure must be transient (retryable)")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dial took %v with a 100ms bound", elapsed)
	}
}

// TestSlowSubscriberDoesNotWedgeServer: a subscriber that never reads
// cannot stall PublishEvent for other clients; the write deadline drops it.
func TestSlowSubscriberDoesNotWedgeServer(t *testing.T) {
	r := &rec{}
	p := nodePlatform(t, r)
	m := obs.NewMetrics()
	srv, err := NewServer(p, "127.0.0.1:0", WithIOTimeout(50*time.Millisecond), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p.SetExternalEvents(srv.PublishEvent)

	// A raw socket that subscribes and then never reads.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte(`{"type":"subscribe"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	// Wait for the result frame so the subscription is registered.
	buf := make([]byte, 256)
	if _, err := raw.Read(buf); err != nil {
		t.Fatal(err)
	}

	// A healthy subscriber alongside it.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events, err := c.Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	// Flood with fat events until the dead socket's buffers fill; the
	// write deadline must cut the slow subscriber off, not wedge publish.
	payload := strings.Repeat("x", 1<<16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 256; i++ {
			srv.PublishEvent(broker.Event{Name: "tick", Attrs: map[string]any{"pad": payload}})
			if m.Counter(obs.MRemoteSlowEvents).Value() > 0 {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("PublishEvent wedged behind a slow subscriber")
	}
	if got := m.Counter(obs.MRemoteSlowEvents).Value(); got == 0 {
		t.Fatal("slow subscriber never dropped")
	}

	// The healthy subscriber still receives events.
	srv.PublishEvent(broker.Event{Name: "after"})
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Name == "after" {
				return
			}
		case <-deadline:
			t.Fatal("healthy subscriber starved after slow one dropped")
		}
	}
}

// TestNoGoroutineLeaks: a full server + client + subscriber lifecycle
// returns the process to its baseline goroutine count.
func TestNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	r := &rec{}
	p := nodePlatform(t, r)
	srv, err := NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.SetExternalEvents(srv.PublishEvent)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			if _, err := c.Subscribe(); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 10; j++ {
				if err := c.Call(script.NewCommand("op", "t")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	srv.Close()
	waitGoroutines(t, base)
}

// TestConnLeaksNothingAfterClose: the self-healing wrapper's forwarder and
// inner client goroutines exit on Close.
func TestConnLeaksNothingAfterClose(t *testing.T) {
	base := runtime.NumGoroutine()
	r := &rec{}
	p := nodePlatform(t, r)
	srv, err := NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Subscribe(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Call(script.NewCommand("op", "t")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	srv.Close()
	waitGoroutines(t, base)

	if err := conn.Call(script.NewCommand("op", "t")); !errors.Is(err, ErrConnClosed) {
		t.Errorf("call after close: %v, want ErrConnClosed", err)
	}
}

// TestSubscriptionHealsWithoutOperations: a Conn used purely as an event
// sink — no Call or PostEvent ever issued after Subscribe — must notice a
// dropped connection and re-establish the subscription on its own. Before
// the proactive resubscribe path, such a stream stayed silently severed
// until an unrelated operation happened to redial.
func TestSubscriptionHealsWithoutOperations(t *testing.T) {
	r := &rec{}
	p := nodePlatform(t, r)
	srv, err := NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	p.SetExternalEvents(srv.PublishEvent)

	m := obs.NewMetrics()
	conn, err := Connect(addr,
		WithMetrics(m),
		WithRetry(fault.Policy{MaxAttempts: 400, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	events, err := conn.Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	// Sever the wire: kill the server, then bring it back on the same
	// address while the Conn's forwarder races to resubscribe.
	srv.Close()
	srv2Ch := make(chan *Server, 1)
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			s2, err := NewServer(p, addr)
			if err == nil {
				srv2Ch <- s2
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		srv2Ch <- nil
	}()
	srv2 := <-srv2Ch
	if srv2 == nil {
		t.Fatal("server never restarted")
	}
	defer srv2.Close()
	p.SetExternalEvents(srv2.PublishEvent)

	// No Call, no PostEvent: the only way events can flow again is the
	// Conn healing the subscription itself. Publish until one lands (the
	// resubscribe may still be mid-backoff when the first ones go out).
	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case ev := <-events:
			if ev.Name == "revived" {
				if m.Counter(obs.MRemoteRedials).Value() == 0 {
					t.Error("remote.redials = 0: subscription healed without a redial?")
				}
				return
			}
		case <-tick.C:
			srv2.PublishEvent(broker.Event{Name: "revived"})
		case <-deadline:
			t.Fatal("event stream silently severed: subscription never healed without an operation")
		}
	}
}

// TestSubscriptionHealsThroughPartition: same guarantee under an injected
// partition — the dial site is latched mid-subscribe and later healed; the
// stream must recover once the partition lifts.
func TestSubscriptionHealsThroughPartition(t *testing.T) {
	r := &rec{}
	p := nodePlatform(t, r)
	srv, err := NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	p.SetExternalEvents(srv.PublishEvent)

	inj := fault.NewInjector(7)
	conn, err := Connect(addr,
		WithInjector(inj),
		WithRetry(fault.Policy{MaxAttempts: 400, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	events, err := conn.Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	// Partition the dial path (latched until healed), then cut the live
	// connection: the forwarder's resubscribe now spins against the
	// partition.
	inj.Arm(SiteDial, fault.Spec{Kind: fault.Partition})
	srv.Close()
	srv2Ch := make(chan *Server, 1)
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			s2, err := NewServer(p, addr)
			if err == nil {
				srv2Ch <- s2
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		srv2Ch <- nil
	}()
	srv2 := <-srv2Ch
	if srv2 == nil {
		t.Fatal("server never restarted")
	}
	defer srv2.Close()
	p.SetExternalEvents(srv2.PublishEvent)

	// Let the resubscribe attempts hit the partition, then lift it.
	time.Sleep(50 * time.Millisecond)
	inj.Heal(SiteDial)

	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case ev := <-events:
			if ev.Name == "healed" {
				return
			}
		case <-tick.C:
			srv2.PublishEvent(broker.Event{Name: "healed"})
		case <-deadline:
			t.Fatal("event stream severed across a healed partition")
		}
	}
}

// TestConnReconnectsAcrossServerRestart: the Conn redials after the server
// dies and comes back on the same address, replaying the idempotent
// command; the subscription survives on the same channel.
func TestConnReconnectsAcrossServerRestart(t *testing.T) {
	r := &rec{}
	p := nodePlatform(t, r)
	srv, err := NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	p.SetExternalEvents(srv.PublishEvent)

	m := obs.NewMetrics()
	conn, err := Connect(addr,
		WithMetrics(m),
		WithRetry(fault.Policy{MaxAttempts: 40, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	events, err := conn.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Call(script.NewCommand("op", "before")); err != nil {
		t.Fatal(err)
	}

	// Kill the server; restart on the same address, racing the redial.
	srv.Close()
	restarted := make(chan *Server, 1)
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			s2, err := NewServer(p, addr)
			if err == nil {
				restarted <- s2
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		restarted <- nil
	}()

	// The Conn heals: this call redials until the new server is up.
	if err := conn.Call(script.NewCommand("op", "after")); err != nil {
		t.Fatalf("call across restart: %v", err)
	}
	srv2 := <-restarted
	if srv2 == nil {
		t.Fatal("server never restarted")
	}
	defer srv2.Close()
	p.SetExternalEvents(srv2.PublishEvent)

	text := r.text()
	if !strings.Contains(text, "op before") || !strings.Contains(text, "op after") {
		t.Fatalf("commands across restart:\n%s", text)
	}
	if m.Counter(obs.MRemoteRedials).Value() == 0 {
		t.Error("remote.redials = 0 across a server restart")
	}

	// The pre-restart subscription channel still delivers.
	srv2.PublishEvent(broker.Event{Name: "post-restart"})
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Name == "post-restart" {
				return
			}
		case <-deadline:
			t.Fatal("subscription did not survive the reconnect")
		}
	}
}
