package remote

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzDecodeMessage fuzzes the wire decoder with arbitrary byte streams.
// Invariants: readFrame never panics; a decoded frame re-encodes to JSON
// that decodes back to the same envelope; an error is always one of the
// protocol sentinel (errMalformed) or a transport error; and the decoder
// never reads past the frame's trailing newline.
func FuzzDecodeMessage(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"type":"command","op":"setProp","target":"object:lamp","args":{"on":true,"level":0.7}}` + "\n"),
		[]byte(`{"type":"event","name":"ping","attrs":{"n":1}}` + "\n"),
		[]byte(`{"type":"result","ok":true}` + "\n"),
		[]byte(`{"type":"result","ok":false,"error":"boom"}` + "\n"),
		[]byte(`{"type":"subscribe"}` + "\n"),
		[]byte("\n\n  \n{\"type\":\"command\"}\n"),
		[]byte(`{"type":1}` + "\n"),
		[]byte(`{"args":{"deep":{"nest":[1,[2,[3]]]}}}` + "\n"),
		[]byte(`not json at all` + "\n"),
		[]byte(`{"type":"command"` + "\n"),          // truncated object
		[]byte(`{"type":"command"}`),                // missing newline (EOF)
		[]byte("{\"op\":\"\\u0000\"}\n"),            // escaped NUL
		[]byte("\xff\xfe{\"type\":\"x\"}\n"),        // invalid UTF-8 prefix
		[]byte(`[1,2,3]` + "\n"),                    // wrong top-level type
		[]byte(`"just a string"` + "\n"),            // top-level string
		[]byte(`{}` + "\n" + `{"type":"x"}` + "\n"), // two frames
		bytes.Repeat([]byte("a"), 4096),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ { // drain a few frames; streams carry many
			msg, err := readFrame(br)
			if err != nil {
				if errors.Is(err, errMalformed) || errors.Is(err, io.EOF) ||
					errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			// A decoded frame must survive a re-encode round trip.
			out, err := json.Marshal(msg)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			var back message
			if err := json.Unmarshal(out, &back); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if back.Type != msg.Type || back.Op != msg.Op || back.Target != msg.Target ||
				back.Name != msg.Name || back.OK != msg.OK || back.Error != msg.Error {
				t.Fatalf("round trip changed envelope: %+v -> %+v", msg, back)
			}
		}
	})
}

// TestReadFrameBounds pins the decoder's protocol edges outside the fuzzer.
func TestReadFrameBounds(t *testing.T) {
	read := func(s string) (message, error) {
		return readFrame(bufio.NewReader(strings.NewReader(s)))
	}

	// An oversized frame is malformed, not accepted or hung.
	huge := `{"op":"` + strings.Repeat("a", MaxFrame) + `"}` + "\n"
	if _, err := read(huge); !errors.Is(err, errMalformed) {
		t.Fatalf("oversized frame: %v", err)
	}

	// Blank lines are skipped, not frames.
	msg, err := read("\n  \n\t\n" + `{"type":"command","op":"x"}` + "\n")
	if err != nil || msg.Op != "x" {
		t.Fatalf("blank-line skip: %+v, %v", msg, err)
	}

	// CRLF peers work: \r is trimmed.
	msg, err = read("{\"type\":\"result\",\"ok\":true}\r\n")
	if err != nil || !msg.OK {
		t.Fatalf("crlf frame: %+v, %v", msg, err)
	}

	// EOF without a newline is a transport error, not a decode.
	if _, err := read(`{"type":"x"}`); !errors.Is(err, io.EOF) {
		t.Fatalf("unterminated frame: %v", err)
	}

	// Garbage is malformed.
	if _, err := read("garbage\n"); !errors.Is(err, errMalformed) {
		t.Fatalf("garbage frame: %v", err)
	}

	// Consecutive frames decode in order.
	br := bufio.NewReader(strings.NewReader(`{"op":"a"}` + "\n" + `{"op":"b"}` + "\n"))
	m1, err1 := readFrame(br)
	m2, err2 := readFrame(br)
	if err1 != nil || err2 != nil || m1.Op != "a" || m2.Op != "b" {
		t.Fatalf("stream: %+v/%v %+v/%v", m1, err1, m2, err2)
	}
}
