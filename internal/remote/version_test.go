package remote

import (
	"encoding/json"
	"testing"

	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// TestLegacyFrameBytesUnchanged pins the satellite guarantee: the version
// field is omitempty, so an unversioned frame marshals byte-identically to
// the pre-version protocol.
func TestLegacyFrameBytesUnchanged(t *testing.T) {
	data, err := json.Marshal(message{Type: "command", Op: "setProp", Target: "x"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"type":"command","op":"setProp","target":"x"}`
	if string(data) != want {
		t.Fatalf("unversioned frame changed: %s", data)
	}
}

// TestVersionedClientAccepted: a client stamping the current protocol
// version round-trips normally.
func TestVersionedClientAccepted(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	c, err := Dial(srv.Addr(), WithProtocol(ProtocolVersion))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call(script.NewCommand("setProp", "object:lamp")); err != nil {
		t.Fatal(err)
	}
}

// TestVersionMismatchRejectedGracefully: a frame from the future is
// refused with a counted, self-describing result error — the connection
// survives, nothing decodes opaquely — and IsVersionMismatch classifies
// the rejection.
func TestVersionMismatchRejectedGracefully(t *testing.T) {
	r := &rec{}
	p := nodePlatform(t, r)
	m := obs.NewMetrics()
	srv, err := NewServer(p, "127.0.0.1:0", WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr(), WithProtocol(ProtocolVersion+41))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	callErr := c.Call(script.NewCommand("setProp", "object:lamp"))
	if callErr == nil {
		t.Fatal("mismatched version accepted")
	}
	if !IsVersionMismatch(callErr) {
		t.Fatalf("IsVersionMismatch(%v) = false", callErr)
	}
	if got := m.Counter(obs.MRemoteVersionBad).Value(); got != 1 {
		t.Errorf("remote.version.mismatch = %d, want 1", got)
	}
	if c.Closed() {
		t.Error("connection dropped on version mismatch; rejection must be graceful")
	}
	// The same connection still serves compatible frames? No — the client
	// stamps every frame, so every call is refused, but each refusal is a
	// clean result, never a poisoned connection.
	if err := c.Call(script.NewCommand("again", "t")); !IsVersionMismatch(err) {
		t.Errorf("second call: %v, want version mismatch", err)
	}
	if r.text() != "" {
		t.Errorf("mismatched frames reached the endpoint:\n%s", r.text())
	}
}

// TestVersionMismatchNotRetried: the Conn treats a version rejection as
// permanent (CallError), so an incompatible peer fails fast instead of
// burning the retry budget.
func TestVersionMismatchNotRetried(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	m := obs.NewMetrics()
	conn, err := Connect(srv.Addr(), WithProtocol(ProtocolVersion+1), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Call(script.NewCommand("op", "t")); !IsVersionMismatch(err) {
		t.Fatalf("err = %v, want version mismatch", err)
	}
	if got := m.Counter(obs.MRemoteRedials).Value(); got != 0 {
		t.Errorf("remote.redials = %d after a permanent version rejection", got)
	}
}
