package remote

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/script"
)

// muxRouter is a two-tenant router with a toy control surface: it records
// which verbs arrived and refuses unknown tenants.
type muxRouter struct {
	eps   map[string]Endpoint
	verbs []string
}

func (m *muxRouter) Route(tenant string) (Endpoint, error) {
	ep, ok := m.eps[tenant]
	if !ok {
		return nil, fmt.Errorf("no tenant %q", tenant)
	}
	return ep, nil
}

func (m *muxRouter) Control(verb, tenant string, args map[string]any) (map[string]any, error) {
	m.verbs = append(m.verbs, verb+"/"+tenant)
	switch verb {
	case "stat":
		return map[string]any{"tenant": tenant, "resident": true}, nil
	default:
		return nil, fmt.Errorf("unknown verb %q", verb)
	}
}

// muxEndpoint records commands and events per tenant.
type muxEndpoint struct {
	name   string
	cmds   []string
	events []string
}

func (e *muxEndpoint) Execute(s *script.Script) error {
	for _, c := range s.Commands {
		e.cmds = append(e.cmds, c.Op)
	}
	return nil
}

func (e *muxEndpoint) DeliverEvent(ev broker.Event) error {
	e.events = append(e.events, ev.Name)
	return nil
}

func startMux(t *testing.T) (*Server, *muxRouter) {
	t.Helper()
	r := &muxRouter{eps: map[string]Endpoint{
		"a": &muxEndpoint{name: "a"},
		"b": &muxEndpoint{name: "b"},
	}}
	srv, err := NewRouterServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, r
}

// TestSessionRouting checks frames land on the endpoint their tenant names
// and unknown tenants are rejected without poisoning the connection.
func TestSessionRouting(t *testing.T) {
	srv, r := startMux(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sa, sb := c.Session("a"), c.Session("b")
	if err := sa.Call(script.NewCommand("opA", "t")); err != nil {
		t.Fatal(err)
	}
	if err := sb.PostEvent(broker.Event{Name: "evB"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Session("ghost").Call(script.NewCommand("x", "t")); err == nil ||
		!strings.Contains(err.Error(), "no tenant") {
		t.Fatalf("ghost tenant: %v", err)
	}
	// The connection survives the rejection.
	if err := sa.PostEvent(broker.Event{Name: "evA"}); err != nil {
		t.Fatal(err)
	}

	a := r.eps["a"].(*muxEndpoint)
	b := r.eps["b"].(*muxEndpoint)
	if len(a.cmds) != 1 || a.cmds[0] != "opA" || len(a.events) != 1 {
		t.Errorf("tenant a saw cmds=%v events=%v", a.cmds, a.events)
	}
	if len(b.cmds) != 0 || len(b.events) != 1 || b.events[0] != "evB" {
		t.Errorf("tenant b saw cmds=%v events=%v", b.cmds, b.events)
	}
}

// TestControlVerbs round-trips an admin verb and its attribute payload.
func TestControlVerbs(t *testing.T) {
	srv, _ := startMux(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	attrs, err := c.Control("stat", "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if attrs["tenant"] != "a" || attrs["resident"] != true {
		t.Errorf("stat attrs = %v", attrs)
	}
	if _, err := c.Control("nope", "a", nil); err == nil {
		t.Error("unknown verb must fail")
	}
}

// TestControlWithoutSurface pins the single-endpoint server's behaviour:
// no Control implementation, so control frames are rejected but commands
// still route (tenant ignored).
func TestControlWithoutSurface(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Control("stat", "a", nil); err == nil ||
		!strings.Contains(err.Error(), "no control surface") {
		t.Fatalf("control on plain server: %v", err)
	}
	if err := c.Session("anything").Call(script.NewCommand("setProp", "object:x")); err != nil {
		t.Fatalf("tenant-stamped command on plain server: %v", err)
	}
}

// TestTenantSubscription checks PublishTenantEvent fans out by filter:
// tenant subscribers see their tenant only, wildcard subscribers see all.
func TestTenantSubscription(t *testing.T) {
	srv, _ := startMux(t)

	ca, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	subA, err := ca.Session("a").Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	cw, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	subW, err := cw.Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	srv.PublishTenantEvent("a", broker.Event{Name: "forA"})
	srv.PublishTenantEvent("b", broker.Event{Name: "forB"})

	recv := func(ch <-chan broker.Event) []string {
		var got []string
		for {
			select {
			case ev := <-ch:
				got = append(got, ev.Name)
			case <-time.After(200 * time.Millisecond):
				return got
			}
		}
	}
	if got := recv(subA); len(got) != 1 || got[0] != "forA" {
		t.Errorf("tenant-a subscriber got %v, want [forA]", got)
	}
	if got := recv(subW); len(got) != 2 {
		t.Errorf("wildcard subscriber got %v, want both events", got)
	}
}
