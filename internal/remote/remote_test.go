package remote

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// rec is a thread-safe recording adapter.
type rec struct {
	mu    sync.Mutex
	trace script.Trace
}

func (r *rec) Execute(cmd script.Command) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace.Record(cmd)
	return nil
}

func (r *rec) text() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace.String()
}

// nodePlatform builds a Controller+Broker platform whose commands pass
// through to the recorder and whose unhandled events escape upward.
func nodePlatform(t testing.TB, r *rec) *runtime.Platform {
	t.Helper()
	b := mwmeta.NewBuilder("node", "remote-test")
	b.ControllerLayer("ctl").
		PassthroughAction("pass", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Done().
		BrokerLayer("brk").
		PassthroughAction("pass", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "main")
	p, err := runtime.Build(b.Model(), runtime.Deps{
		Adapters: map[string]broker.Adapter{"main": r},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func startServer(t testing.TB, r *rec) (*Server, *runtime.Platform) {
	t.Helper()
	p := nodePlatform(t, r)
	srv, err := NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	p.SetExternalEvents(srv.PublishEvent)
	return srv, p
}

func TestCommandRoundTrip(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cmd := script.NewCommand("setProp", "object:lamp").
		WithArg("prop", "on").WithArg("value", true).WithArg("level", 0.7)
	if err := c.Call(cmd); err != nil {
		t.Fatal(err)
	}
	want := `setProp object:lamp level=0.7 prop="on" value=true`
	if !strings.Contains(r.text(), want) {
		t.Errorf("trace:\n%s", r.text())
	}
}

func TestCommandErrorPropagates(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The platform routes everything, but the broker has no adapter for a
	// missing binding? It does ("*"); instead send an event the endpoint
	// rejects: none — so exercise the error path with a server whose
	// endpoint fails.
	srv2, err := NewServer(failingEndpoint{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	c2, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Call(script.NewCommand("x", "t")); err == nil ||
		!strings.Contains(err.Error(), "endpoint says no") {
		t.Errorf("got %v", err)
	}
	if err := c2.PostEvent(broker.Event{Name: "e"}); err == nil {
		t.Error("event error must propagate")
	}
}

type failingEndpoint struct{}

func (failingEndpoint) Execute(*script.Script) error {
	return &endpointErr{}
}
func (failingEndpoint) DeliverEvent(broker.Event) error {
	return &endpointErr{}
}

type endpointErr struct{}

func (*endpointErr) Error() string { return "endpoint says no" }

func TestEventInjectionAndSubscription(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	events, err := c.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	// Events injected by the client reach the platform's broker; with no
	// handlers they bubble to the top and stream back to subscribers.
	if err := c.PostEvent(broker.Event{Name: "ping", Attrs: map[string]any{"n": 1.0}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Name != "ping" || ev.Attrs["n"] != 1.0 {
			t.Errorf("event: %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscribed event never arrived")
	}
}

func TestMultipleClientsAndSubscribers(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)

	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	ev1, err := c1.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := c2.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.PostEvent(broker.Event{Name: "broadcast"}); err != nil {
		t.Fatal(err)
	}
	for i, ch := range []<-chan broker.Event{ev1, ev2} {
		select {
		case ev := <-ch:
			if ev.Name != "broadcast" {
				t.Errorf("subscriber %d: %+v", i, ev)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("subscriber %d never received", i)
		}
	}

	// Concurrent commands from both clients.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if err := c.Call(script.NewCommand("op", "t")); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}([]*Client{c1, c2}[i])
	}
	wg.Wait()
	if got := strings.Count(r.text(), "op t"); got != 50 {
		t.Errorf("commands recorded: %d", got)
	}
}

func TestClientCloseUnblocksAndChannelCloses(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	events, err := c.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	select {
	case _, open := <-events:
		if open {
			t.Error("channel should be closed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event channel did not close")
	}
	if err := c.Call(script.NewCommand("x", "t")); err == nil {
		t.Error("call after close must fail")
	}
}

func TestServerCloseDropsClients(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	srv.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c.Call(script.NewCommand("x", "t")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls should fail after server close")
		}
	}
}

func TestUnknownMessageType(t *testing.T) {
	r := &rec{}
	srv, _ := startServer(t, r)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.roundTrip(message{Type: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown message type") {
		t.Errorf("got %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to a closed port should fail")
	}
}
