package metamodel

import (
	"encoding/json"
	"testing"
)

// lenientMetamodel parses metamodel JSON without the well-formedness check
// UnmarshalMetamodel enforces, so fuzzing can feed structurally broken
// metamodels (inheritance cycles, unknown enums, bad kinds, duplicate
// names) through both validators. Unparseable input returns nil.
func lenientMetamodel(data []byte) *Metamodel {
	var doc jsonMetamodel
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil
	}
	m := New(doc.Name)
	for _, e := range doc.Enums {
		// Duplicates are skipped rather than rejected.
		_ = m.AddEnum(&Enum{Name: e.Name, Literals: e.Literals})
	}
	for _, jc := range doc.Classes {
		c := &Class{Name: jc.Name, Abstract: jc.Abstract, Super: jc.Super}
		for _, a := range jc.Attributes {
			kind, err := kindFromString(a.Kind)
			if err != nil {
				kind = Kind(0) // invalid kind, tolerated by the interpreted walk
			}
			c.Attributes = append(c.Attributes, Attribute{
				Name: a.Name, Kind: kind, EnumType: a.EnumType,
				Required: a.Required, Default: a.Default,
			})
		}
		for _, r := range jc.References {
			c.References = append(c.References, Reference{
				Name: r.Name, Target: r.Target, Containment: r.Containment,
				Many: r.Many, Required: r.Required,
			})
		}
		_ = m.AddClass(c)
	}
	return m
}

// FuzzCompiledValidate feeds arbitrary JSON metamodel/model pairs through
// the compiled and interpreted validators. For compilable metamodels the
// two must agree on verdict, problem multiset and resulting model state;
// for uncompilable ones the dispatching Validate must fall back to (and
// agree with) the interpreted walk without panicking.
func FuzzCompiledValidate(f *testing.F) {
	// Seed corpus: a valid pair, an inheritance cycle, an unknown enum, a
	// dangling reference, an abstract instantiation, a bad enum literal, a
	// bad kind, and a containment cycle.
	valid := `{"name":"z","enums":[{"name":"E","literals":["a","b"]}],` +
		`"classes":[{"name":"N","attributes":[{"name":"s","kind":"string","required":true},` +
		`{"name":"e","kind":"enum","enumType":"E","default":"a"}],` +
		`"references":[{"name":"kids","target":"N","containment":true,"many":true}]}]}`
	f.Add(valid, `{"metamodel":"z","objects":[{"id":"n1","class":"N","attrs":{"s":"hi"}}]}`)
	f.Add(`{"name":"cyc","classes":[{"name":"A","super":"B"},{"name":"B","super":"A"}]}`,
		`{"metamodel":"cyc","objects":[{"id":"x","class":"A","attrs":{"q":1}}]}`)
	f.Add(`{"name":"ue","classes":[{"name":"C","attributes":[{"name":"e","kind":"enum","enumType":"Nope"}]}]}`,
		`{"metamodel":"ue","objects":[{"id":"x","class":"C","attrs":{"e":"lit"}}]}`)
	f.Add(valid, `{"metamodel":"z","objects":[{"id":"n1","class":"N","attrs":{"s":"hi"},"refs":{"kids":["ghost"]}}]}`)
	f.Add(`{"name":"ab","classes":[{"name":"A","abstract":true}]}`,
		`{"metamodel":"ab","objects":[{"id":"x","class":"A"}]}`)
	f.Add(valid, `{"metamodel":"z","objects":[{"id":"n1","class":"N","attrs":{"s":"hi","e":"zzz"}}]}`)
	f.Add(`{"name":"bk","classes":[{"name":"C","attributes":[{"name":"a","kind":"wat"}]}]}`,
		`{"metamodel":"bk","objects":[{"id":"x","class":"C","attrs":{"a":1}}]}`)
	f.Add(valid, `{"metamodel":"z","objects":[`+
		`{"id":"n1","class":"N","attrs":{"s":"a"},"refs":{"kids":["n2"]}},`+
		`{"id":"n2","class":"N","attrs":{"s":"b"},"refs":{"kids":["n1"]}}]}`)

	f.Fuzz(func(t *testing.T, mmJSON, modelJSON string) {
		mm := lenientMetamodel([]byte(mmJSON))
		if mm == nil {
			t.Skip()
		}
		m, err := UnmarshalModel([]byte(modelJSON))
		if err != nil {
			t.Skip()
		}
		cm, cerr := Compile(mm)
		if cerr != nil {
			// Uncompilable metamodel: the interpreted walk must still not
			// panic, and the dispatcher must fall back to it.
			ref := m.Clone()
			errRef := ref.ValidateInterpreted(mm)
			disp := m.Clone()
			errDisp := disp.Validate(mm)
			if (errRef == nil) != (errDisp == nil) {
				t.Fatalf("fallback verdict diverges: %v vs %v", errRef, errDisp)
			}
			if !equalStringSets(problemSet(t, errRef), problemSet(t, errDisp)) {
				t.Fatalf("fallback problems diverge: %v vs %v", errRef, errDisp)
			}
			if !Equal(ref, disp) {
				t.Fatalf("fallback mutations diverge; diff: %s", Diff(ref, disp))
			}
			return
		}
		a, b := m.Clone(), m.Clone()
		errC := cm.Validate(a)
		errI := b.ValidateInterpreted(mm)
		if (errC == nil) != (errI == nil) {
			t.Fatalf("verdicts diverge: compiled=%v interpreted=%v", errC, errI)
		}
		if !equalStringSets(problemSet(t, errC), problemSet(t, errI)) {
			t.Fatalf("problem sets diverge:\ncompiled:    %v\ninterpreted: %v", errC, errI)
		}
		if !Equal(a, b) {
			t.Fatalf("post-validation models diverge; diff: %s", Diff(a, b))
		}
	})
}
