// Compiled metamodels: the reflective class/attribute/reference structure of
// a Metamodel flattened into per-class layout tables so conformance
// validation runs without walking inheritance chains, re-resolving feature
// names or re-dispatching on attribute kinds. This is the KMF-style answer
// to models@runtime overhead: compile the metamodel once, validate instances
// against flat tables forever after.
//
// The compiled validator is semantically identical to the interpreted walk
// in Model.ValidateInterpreted — same verdicts, same problem messages, same
// normalising mutations — which the differential and fuzz tests pin.
package metamodel

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/mddsm/mddsm/internal/obs"
)

// CompiledMetamodel is the flat, pre-resolved runtime form of a Metamodel.
// It is immutable after Compile and safe for concurrent use.
type CompiledMetamodel struct {
	Name    string
	source  *Metamodel
	classes map[string]*compiledClass
}

// compiledClass is one class with its full inheritance chain flattened:
// every inherited attribute and reference appears directly in the layout
// tables (base-most first, matching AllAttributes/AllReferences), and the
// ancestor set answers IsSubclassOf in one map probe.
type compiledClass struct {
	name      string
	abstract  bool
	attrs     []compiledAttr
	attrIndex map[string]int32 // interned attribute-name handle → slot
	refs      []compiledRef
	refIndex  map[string]int32 // interned reference-name handle → slot
	ancestors map[string]struct{}

	// Column counts per storage kind for the slot-model representation
	// (see slots.go): every attribute slot is assigned a column in the
	// typed array matching its kind, enums sharing the string columns.
	nStr, nInt, nFloat, nBool int
}

// compiledAttr is one attribute slot: the kind check resolved to a direct
// function, enum literals as a membership set, and the default value
// pre-normalised at compile time.
type compiledAttr struct {
	name     string
	kind     Kind
	enumName string
	enum     map[string]struct{} // non-nil iff kind == KindEnum
	required bool
	def      any // pre-normalised default; nil when absent
	norm     func(v any) (any, error)
	// col is the attribute's column index in its kind's typed column
	// array of the slot-model representation (strings for KindString and
	// KindEnum, int64s for KindInt, and so on).
	col int32
}

// compiledRef is one reference slot.
type compiledRef struct {
	name        string
	target      string
	containment bool
	many        bool
	required    bool
}

// Direct normalisation slots. Error strings are byte-identical to
// NormalizeValue so compiled and interpreted validation report the same
// problems.

func normString(v any) (any, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("want string, got %T", v)
	}
	return s, nil
}

func normInt(v any) (any, error) {
	switch n := v.(type) {
	case int:
		return int64(n), nil
	case int64:
		return n, nil
	case float64:
		if n == float64(int64(n)) {
			return int64(n), nil
		}
		return nil, fmt.Errorf("non-integral value %v for int attribute", n)
	default:
		return nil, fmt.Errorf("want int, got %T", v)
	}
}

func normFloat(v any) (any, error) {
	switch n := v.(type) {
	case float64:
		return n, nil
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	default:
		return nil, fmt.Errorf("want float, got %T", v)
	}
}

func normBool(v any) (any, error) {
	b, ok := v.(bool)
	if !ok {
		return nil, fmt.Errorf("want bool, got %T", v)
	}
	return b, nil
}

// Compile flattens mm into its compiled form. Only well-formed metamodels
// compile; an mm whose own Validate fails is rejected, and Model.Validate
// then falls back to the interpreted walk (which tolerates broken
// metamodels the same way it always has).
func Compile(mm *Metamodel) (*CompiledMetamodel, error) {
	if err := mm.Validate(); err != nil {
		return nil, fmt.Errorf("compile metamodel %s: %w", mm.Name, err)
	}
	cm := &CompiledMetamodel{
		Name:    mm.Name,
		source:  mm,
		classes: make(map[string]*compiledClass, len(mm.classes)),
	}
	for _, name := range mm.ClassNames() {
		c := mm.classes[name]
		cc := &compiledClass{
			name:      name,
			abstract:  c.Abstract,
			ancestors: make(map[string]struct{}),
		}
		for _, a := range mm.superChain(name) {
			cc.ancestors[a.Name] = struct{}{}
		}
		attrs := mm.AllAttributes(name)
		cc.attrs = make([]compiledAttr, len(attrs))
		cc.attrIndex = make(map[string]int32, len(attrs))
		for i, a := range attrs {
			ca := compiledAttr{name: a.Name, kind: a.Kind, required: a.Required}
			switch a.Kind {
			case KindString:
				ca.norm = normString
				ca.col = int32(cc.nStr)
				cc.nStr++
			case KindInt:
				ca.norm = normInt
				ca.col = int32(cc.nInt)
				cc.nInt++
			case KindFloat:
				ca.norm = normFloat
				ca.col = int32(cc.nFloat)
				cc.nFloat++
			case KindBool:
				ca.norm = normBool
				ca.col = int32(cc.nBool)
				cc.nBool++
			case KindEnum:
				ca.norm = normString
				ca.col = int32(cc.nStr)
				cc.nStr++
				ca.enumName = a.EnumType
				e := mm.enums[a.EnumType]
				ca.enum = make(map[string]struct{}, len(e.Literals))
				for _, l := range e.Literals {
					ca.enum[l] = struct{}{}
				}
			}
			if a.Default != nil {
				// Defaults always normalise in a metamodel that passed
				// Validate; the guard mirrors the interpreted walk, which
				// silently skips an unnormalisable default.
				if nv, err := NormalizeValue(a.Kind, a.Default); err == nil {
					ca.def = nv
				}
			}
			cc.attrs[i] = ca
			cc.attrIndex[a.Name] = int32(i)
		}
		refs := mm.AllReferences(name)
		cc.refs = make([]compiledRef, len(refs))
		cc.refIndex = make(map[string]int32, len(refs))
		for i, r := range refs {
			cc.refs[i] = compiledRef{
				name:        r.Name,
				target:      r.Target,
				containment: r.Containment,
				many:        r.Many,
				required:    r.Required,
			}
			cc.refIndex[r.Name] = int32(i)
		}
		cm.classes[name] = cc
	}
	return cm, nil
}

// isKindOf reports whether class equals target or inherits from it, using
// the precomputed ancestor sets (one map probe instead of a chain walk).
func (cm *CompiledMetamodel) isKindOf(class, target string) bool {
	cc := cm.classes[class]
	if cc == nil {
		return false
	}
	_, ok := cc.ancestors[target]
	return ok
}

// Validate checks conformance of m against the compiled metamodel. It is
// behaviourally identical to Model.ValidateInterpreted, including the
// normalising mutations (attribute values coerced to canonical
// representations, defaults applied to unset attributes).
func (cm *CompiledMetamodel) Validate(m *Model) error {
	var errs errorList
	var container map[string]string // contained ID -> container ID
	for _, id := range m.order {
		cm.validateObject(m, id, m.objects[id], &errs, func(tid, owner string) {
			if container == nil {
				container = make(map[string]string)
			}
			if prev, owned := container[tid]; owned && prev != owner {
				errs.addf("object %s: contained by both %s and %s", tid, prev, owner)
			}
			container[tid] = owner
		})
	}
	containmentCycles(container, &errs)
	return errs.err()
}

// validateObject checks one object against the compiled layout, appending
// problems to errs and applying the normalising mutations (canonical value
// coercion, defaults). Containment claims are reported through claim —
// claim(target, owner) for every containment reference edge, in reference
// iteration order — so full validation and the delta validator share the
// per-object walk while accounting ownership differently.
func (cm *CompiledMetamodel) validateObject(m *Model, id string, o *Object, errs *errorList, claim func(target, owner string)) {
	cc := cm.classes[o.Class]
	if cc == nil {
		errs.addf("object %s: unknown class %q", id, o.Class)
		return
	}
	if cc.abstract {
		errs.addf("object %s: class %q is abstract", id, o.Class)
	}
	for name, v := range o.attrs {
		idx, ok := cc.attrIndex[name]
		if !ok {
			errs.addf("object %s (%s): unknown attribute %q", id, o.Class, name)
			continue
		}
		ca := &cc.attrs[idx]
		nv, err := ca.norm(v)
		if err != nil {
			errs.addf("object %s (%s): attribute %s: %v", id, o.Class, name, err)
			continue
		}
		if ca.enum != nil {
			if _, lit := ca.enum[nv.(string)]; !lit {
				errs.addf("object %s (%s): attribute %s: %q is not a literal of %s",
					id, o.Class, name, nv, ca.enumName)
			}
		}
		o.attrs[name] = nv
	}
	for i := range cc.attrs {
		ca := &cc.attrs[i]
		if _, set := o.attrs[ca.name]; set {
			continue
		}
		if ca.def != nil {
			o.attrs[ca.name] = ca.def
			continue
		}
		if ca.required {
			errs.addf("object %s (%s): required attribute %q unset", id, o.Class, ca.name)
		}
	}
	for name, targets := range o.refs {
		if len(targets) == 0 {
			continue
		}
		idx, ok := cc.refIndex[name]
		if !ok {
			errs.addf("object %s (%s): unknown reference %q", id, o.Class, name)
			continue
		}
		cr := &cc.refs[idx]
		if !cr.many && len(targets) > 1 {
			errs.addf("object %s (%s): reference %s: %d targets on single-valued reference",
				id, o.Class, name, len(targets))
		}
		for _, tid := range targets {
			t := m.objects[tid]
			if t == nil {
				errs.addf("object %s (%s): reference %s: dangling target %q", id, o.Class, name, tid)
				continue
			}
			if !cm.isKindOf(t.Class, cr.target) {
				errs.addf("object %s (%s): reference %s: target %s has class %s, want %s",
					id, o.Class, name, tid, t.Class, cr.target)
			}
			if cr.containment {
				claim(tid, id)
			}
		}
	}
	for i := range cc.refs {
		cr := &cc.refs[i]
		if cr.required && len(o.refs[cr.name]) == 0 {
			errs.addf("object %s (%s): required reference %q unset", id, o.Class, cr.name)
		}
	}
}

// containmentCycles runs the acyclicity walk over a complete contained →
// container map, appending one "containment cycle involving object X"
// problem per contained object whose upward chain revisits a node (X names
// the first revisited node of that walk) — the same messages, same
// multiset, as the interpreted validator.
func containmentCycles(container map[string]string, errs *errorList) {
	for id := range container {
		seen := map[string]bool{id: true}
		for cur := container[id]; cur != ""; cur = container[cur] {
			if seen[cur] {
				errs.addf("containment cycle involving object %s", cur)
				break
			}
			seen[cur] = true
		}
	}
}

// compileSlot caches a metamodel's compiled form (or the compile error) for
// one structural version.
type compileSlot struct {
	version uint64
	cm      *CompiledMetamodel
	err     error
}

// Compiled returns the metamodel's compiled form, compiling lazily and
// caching the result until the metamodel is structurally mutated. Reads are
// lock-free; a concurrent recompile after mutation is idempotent.
func (m *Metamodel) Compiled() (*CompiledMetamodel, error) {
	if s := m.compiled.Load(); s != nil && s.version == m.version {
		return s.cm, s.err
	}
	start := time.Now()
	cm, err := Compile(m)
	d := time.Since(start)
	statCompiles.Add(1)
	if err != nil {
		statCompileFails.Add(1)
	}
	statCompileNanos.Add(int64(d))
	if b := boundVal.Load(); b != nil {
		b.compiles.Inc()
		if err != nil {
			b.compileFails.Inc()
		}
		b.compileLatency.Observe(d)
	}
	m.compiled.Store(&compileSlot{version: m.version, cm: cm, err: err})
	return cm, err
}

// ---------------------------------------------------------------------------
// Validation mode and dispatch statistics
// ---------------------------------------------------------------------------

// ValidationMode selects how Model.Validate checks conformance.
type ValidationMode int32

const (
	// ModeCompiled (the default) validates through the compiled metamodel,
	// falling back to the interpreted walk when compilation fails.
	ModeCompiled ValidationMode = iota
	// ModeInterpreted forces the reference interpreted walk.
	ModeInterpreted
)

var valMode atomic.Int32

// SetValidationMode switches the process-wide validation dispatch. It
// returns the previous mode so tests can restore it.
func SetValidationMode(mode ValidationMode) ValidationMode {
	return ValidationMode(valMode.Swap(int32(mode)))
}

// GetValidationMode returns the current process-wide validation mode.
func GetValidationMode() ValidationMode { return ValidationMode(valMode.Load()) }

// ParseValidationMode parses a CLI-facing mode name.
func ParseValidationMode(s string) (ValidationMode, error) {
	switch s {
	case "compiled":
		return ModeCompiled, nil
	case "interpreted":
		return ModeInterpreted, nil
	default:
		return 0, fmt.Errorf("unknown validation mode %q (want compiled or interpreted)", s)
	}
}

// Package-wide dispatch statistics. The atomics are always maintained (they
// are cheap and make ValidationStats usable without an obs registry); the
// obs instruments mirror them once BindMetrics arms a registry.
var (
	statCompiles     atomic.Int64
	statCompileFails atomic.Int64
	statCompileNanos atomic.Int64
	statFast         atomic.Int64
	statInterpreted  atomic.Int64
	statFallback     atomic.Int64

	boundVal atomic.Pointer[valInstruments]
)

type valInstruments struct {
	compiles       *obs.Counter
	compileFails   *obs.Counter
	compileLatency *obs.Histogram
	fast           *obs.Counter
	interpreted    *obs.Counter
	fallback       *obs.Counter
}

// BindMetrics mirrors the package's validation-dispatch and compile
// statistics into reg under the canonical obs names. Binding a nil registry
// disarms the mirror.
func BindMetrics(reg *obs.Metrics) {
	if reg == nil {
		boundVal.Store(nil)
		return
	}
	boundVal.Store(&valInstruments{
		compiles:       reg.Counter(obs.MMetamodelCompiles),
		compileFails:   reg.Counter(obs.MMetamodelCompileErr),
		compileLatency: reg.Histogram(obs.HMetamodelCompile),
		fast:           reg.Counter(obs.MValidateFast),
		interpreted:    reg.Counter(obs.MValidateInterpreted),
		fallback:       reg.Counter(obs.MValidateFallback),
	})
}

// ValidationStats reports process-wide validation dispatch counts: compiled
// fast-path validations, interpreted validations (explicit mode or
// reference calls), fallbacks (compiled mode with an uncompilable
// metamodel), metamodel compiles, and total time spent compiling.
func ValidationStats() (fast, interpreted, fallback, compiles int64, compileTime time.Duration) {
	return statFast.Load(), statInterpreted.Load(), statFallback.Load(),
		statCompiles.Load(), time.Duration(statCompileNanos.Load())
}

func noteFast() {
	statFast.Add(1)
	if b := boundVal.Load(); b != nil {
		b.fast.Inc()
	}
}

func noteInterpreted() {
	statInterpreted.Add(1)
	if b := boundVal.Load(); b != nil {
		b.interpreted.Inc()
	}
}

func noteFallback() {
	statFallback.Add(1)
	if b := boundVal.Load(); b != nil {
		b.fallback.Inc()
	}
}
