// Slot-based runtime model representation: the map-of-maps Model flattened
// into per-class column-major typed storage indexed by the compiled layout
// tables of compile.go. Where a Model spends one attrs map, one refs map
// and one boxed value per attribute on every object, a SlotModel holds one
// typed column per attribute slot per class — a []string, []int64,
// []float64 or []bool row-indexed by a dense int32 object handle — so the
// committed runtime model a layer keeps between submissions costs a few
// slices instead of thousands of small maps, reloading in place with no
// steady-state allocation.
//
// The slot form is a compact snapshot, not an editing surface: Load fills
// it from a validated (normalised, defaults applied) Model, typed
// accessors read it, and Materialize lazily rebuilds the map form at API
// boundaries that hand models to callers.
package metamodel

import "fmt"

// SlotHandle is a dense integer handle to one object of a SlotModel: the
// object's row in its class table. Handles are only meaningful against the
// SlotModel that issued them and are invalidated by the next Load.
type SlotHandle struct {
	table *classTable
	row   int32
}

// Valid reports whether the handle points at an object.
func (h SlotHandle) Valid() bool { return h.table != nil }

// classTable is the column-major storage for all objects of one class:
// per-kind attribute columns sized by the compiled layout, a presence
// column per attribute slot, and a target-list column per reference slot.
type classTable struct {
	cc   *compiledClass
	ids  []string
	strs [][]string
	ints [][]int64
	flts [][]float64
	bls  [][]bool
	set  [][]bool     // indexed by attribute slot, then row
	refs [][][]string // indexed by reference slot, then row
}

func newClassTable(cc *compiledClass) *classTable {
	return &classTable{
		cc:   cc,
		strs: make([][]string, cc.nStr),
		ints: make([][]int64, cc.nInt),
		flts: make([][]float64, cc.nFloat),
		bls:  make([][]bool, cc.nBool),
		set:  make([][]bool, len(cc.attrs)),
		refs: make([][][]string, len(cc.refs)),
	}
}

// reset empties the table for reload, keeping every column's capacity.
func (t *classTable) reset() {
	t.ids = t.ids[:0]
	for i := range t.strs {
		t.strs[i] = t.strs[i][:0]
	}
	for i := range t.ints {
		t.ints[i] = t.ints[i][:0]
	}
	for i := range t.flts {
		t.flts[i] = t.flts[i][:0]
	}
	for i := range t.bls {
		t.bls[i] = t.bls[i][:0]
	}
	for i := range t.set {
		t.set[i] = t.set[i][:0]
	}
	for i := range t.refs {
		t.refs[i] = t.refs[i][:0]
	}
}

// addRow appends one zero-valued row and returns its index.
func (t *classTable) addRow(id string) int32 {
	row := int32(len(t.ids))
	t.ids = append(t.ids, id)
	for i := range t.strs {
		t.strs[i] = append(t.strs[i], "")
	}
	for i := range t.ints {
		t.ints[i] = append(t.ints[i], 0)
	}
	for i := range t.flts {
		t.flts[i] = append(t.flts[i], 0)
	}
	for i := range t.bls {
		t.bls[i] = append(t.bls[i], false)
	}
	for i := range t.set {
		t.set[i] = append(t.set[i], false)
	}
	for i := range t.refs {
		// Reuse the row's previous target slice when the column still has
		// it in capacity; otherwise grow with a nil entry.
		if int(row) < cap(t.refs[i]) {
			t.refs[i] = t.refs[i][:row+1]
			t.refs[i][row] = t.refs[i][row][:0]
		} else {
			t.refs[i] = append(t.refs[i], nil)
		}
	}
	return row
}

// SlotModel is a Model snapshot in slot form. It is not safe for
// concurrent mutation; concurrent reads are fine once loaded.
type SlotModel struct {
	MetamodelName string
	cm            *CompiledMetamodel
	tables        map[string]*classTable
	order         []SlotHandle
	byID          map[string]SlotHandle
}

// NewSlotModel returns an empty slot model laid out by cm.
func NewSlotModel(cm *CompiledMetamodel) *SlotModel {
	return &SlotModel{
		MetamodelName: cm.Name,
		cm:            cm,
		tables:        make(map[string]*classTable),
		byID:          make(map[string]SlotHandle),
	}
}

// Load snapshots m into the slot form, reusing the storage of previous
// loads (columns only ever grow). m must be in validated canonical form:
// every class, attribute and reference known to the compiled metamodel and
// every value already normalised. Anything else returns an error and
// leaves the slot model unusable until a successful reload — callers fall
// back to the map form rather than storing a lossy snapshot.
func (sm *SlotModel) Load(m *Model) error {
	for _, t := range sm.tables {
		t.reset()
	}
	sm.order = sm.order[:0]
	clear(sm.byID)
	sm.MetamodelName = m.MetamodelName
	for _, id := range m.order {
		o := m.objects[id]
		cc := sm.cm.classes[o.Class]
		if cc == nil {
			return fmt.Errorf("slot model: object %s: unknown class %q", id, o.Class)
		}
		t := sm.tables[o.Class]
		if t == nil {
			t = newClassTable(cc)
			sm.tables[o.Class] = t
		}
		row := t.addRow(id)
		for name, v := range o.attrs {
			idx, ok := cc.attrIndex[name]
			if !ok {
				return fmt.Errorf("slot model: object %s (%s): unknown attribute %q", id, o.Class, name)
			}
			ca := &cc.attrs[idx]
			switch ca.kind {
			case KindString, KindEnum:
				s, ok := v.(string)
				if !ok {
					return fmt.Errorf("slot model: object %s (%s): attribute %s: %T is not canonical for %v", id, o.Class, name, v, ca.kind)
				}
				t.strs[ca.col][row] = s
			case KindInt:
				n, ok := v.(int64)
				if !ok {
					return fmt.Errorf("slot model: object %s (%s): attribute %s: %T is not canonical for %v", id, o.Class, name, v, ca.kind)
				}
				t.ints[ca.col][row] = n
			case KindFloat:
				f, ok := v.(float64)
				if !ok {
					return fmt.Errorf("slot model: object %s (%s): attribute %s: %T is not canonical for %v", id, o.Class, name, v, ca.kind)
				}
				t.flts[ca.col][row] = f
			case KindBool:
				b, ok := v.(bool)
				if !ok {
					return fmt.Errorf("slot model: object %s (%s): attribute %s: %T is not canonical for %v", id, o.Class, name, v, ca.kind)
				}
				t.bls[ca.col][row] = b
			}
			t.set[idx][row] = true
		}
		for name, targets := range o.refs {
			if len(targets) == 0 {
				continue
			}
			idx, ok := cc.refIndex[name]
			if !ok {
				return fmt.Errorf("slot model: object %s (%s): unknown reference %q", id, o.Class, name)
			}
			t.refs[idx][row] = append(t.refs[idx][row], targets...)
		}
		h := SlotHandle{table: t, row: row}
		sm.order = append(sm.order, h)
		sm.byID[id] = h
	}
	return nil
}

// Len returns the number of objects.
func (sm *SlotModel) Len() int { return len(sm.order) }

// Lookup returns the handle for an object ID.
func (sm *SlotModel) Lookup(id string) (SlotHandle, bool) {
	h, ok := sm.byID[id]
	return h, ok
}

// ID returns the object ID behind a handle.
func (sm *SlotModel) ID(h SlotHandle) string { return h.table.ids[h.row] }

// Class returns the object's class name.
func (sm *SlotModel) Class(h SlotHandle) string { return h.table.cc.name }

// StringAttr reads a string or enum attribute; false when unset or not a
// string slot.
func (sm *SlotModel) StringAttr(h SlotHandle, name string) (string, bool) {
	ca, row, ok := h.attr(name)
	if !ok || (ca.kind != KindString && ca.kind != KindEnum) {
		return "", false
	}
	return h.table.strs[ca.col][row], true
}

// IntAttr reads an int attribute; false when unset or not an int slot.
func (sm *SlotModel) IntAttr(h SlotHandle, name string) (int64, bool) {
	ca, row, ok := h.attr(name)
	if !ok || ca.kind != KindInt {
		return 0, false
	}
	return h.table.ints[ca.col][row], true
}

// FloatAttr reads a float attribute; false when unset or not a float slot.
func (sm *SlotModel) FloatAttr(h SlotHandle, name string) (float64, bool) {
	ca, row, ok := h.attr(name)
	if !ok || ca.kind != KindFloat {
		return 0, false
	}
	return h.table.flts[ca.col][row], true
}

// BoolAttr reads a bool attribute; false when unset or not a bool slot.
func (sm *SlotModel) BoolAttr(h SlotHandle, name string) (bool, bool) {
	ca, row, ok := h.attr(name)
	if !ok || ca.kind != KindBool {
		return false, false
	}
	return h.table.bls[ca.col][row], true
}

// attr resolves a set attribute slot for a handle.
func (h SlotHandle) attr(name string) (*compiledAttr, int32, bool) {
	idx, ok := h.table.cc.attrIndex[name]
	if !ok || !h.table.set[idx][h.row] {
		return nil, 0, false
	}
	return &h.table.cc.attrs[idx], h.row, true
}

// Refs returns a reference's target IDs as a read-only view (the slot
// model's own storage — callers must not mutate or retain it past the next
// Load).
func (sm *SlotModel) Refs(h SlotHandle, name string) []string {
	idx, ok := h.table.cc.refIndex[name]
	if !ok {
		return nil
	}
	return h.table.refs[idx][h.row]
}

// Materialize rebuilds the map-form Model, objects in original insertion
// order. The result is fresh and owned by the caller.
func (sm *SlotModel) Materialize() *Model {
	m := NewModel(sm.MetamodelName)
	for _, h := range sm.order {
		t, row := h.table, h.row
		o := NewObject(t.ids[row], t.cc.name)
		for i := range t.cc.attrs {
			if !t.set[i][row] {
				continue
			}
			ca := &t.cc.attrs[i]
			switch ca.kind {
			case KindString, KindEnum:
				o.attrs[ca.name] = t.strs[ca.col][row]
			case KindInt:
				o.attrs[ca.name] = t.ints[ca.col][row]
			case KindFloat:
				o.attrs[ca.name] = t.flts[ca.col][row]
			case KindBool:
				o.attrs[ca.name] = t.bls[ca.col][row]
			}
		}
		for i := range t.cc.refs {
			if ts := t.refs[i][row]; len(ts) > 0 {
				o.refs[t.cc.refs[i].name] = append([]string(nil), ts...)
			}
		}
		m.MustAdd(o)
	}
	return m
}
