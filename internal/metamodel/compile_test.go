package metamodel

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/obs"
)

// compileMM is a metamodel exercising every compiled feature: inheritance,
// abstract classes, enums, defaults, required features, containment.
func compileMM(t testing.TB) *Metamodel {
	t.Helper()
	mm := New("compile-mm")
	mm.MustAddEnum(&Enum{Name: "Color", Literals: []string{"red", "green", "blue"}})
	mm.MustAddClass(&Class{Name: "Base", Abstract: true,
		Attributes: []Attribute{
			{Name: "name", Kind: KindString, Required: true},
			{Name: "color", Kind: KindEnum, EnumType: "Color", Default: "red"},
		},
	})
	mm.MustAddClass(&Class{Name: "Item", Super: "Base",
		Attributes: []Attribute{
			{Name: "count", Kind: KindInt, Default: 7},
			{Name: "ratio", Kind: KindFloat},
			{Name: "live", Kind: KindBool},
		},
		References: []Reference{
			{Name: "parts", Target: "Item", Containment: true, Many: true},
			{Name: "peer", Target: "Base"},
		},
	})
	mm.MustAddClass(&Class{Name: "Box", Super: "Item"})
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	return mm
}

func TestCompileLayout(t *testing.T) {
	mm := compileMM(t)
	cm, err := Compile(mm)
	if err != nil {
		t.Fatal(err)
	}
	box := cm.classes["Box"]
	if box == nil {
		t.Fatal("class Box not compiled")
	}
	// Inheritance flattened: Box sees Base and Item features directly.
	for _, want := range []string{"name", "color", "count", "ratio", "live"} {
		if _, ok := box.attrIndex[want]; !ok {
			t.Errorf("Box missing flattened attribute %q", want)
		}
	}
	for _, want := range []string{"parts", "peer"} {
		if _, ok := box.refIndex[want]; !ok {
			t.Errorf("Box missing flattened reference %q", want)
		}
	}
	// Ancestor sets answer IsSubclassOf in one probe.
	for _, anc := range []string{"Box", "Item", "Base"} {
		if !cm.isKindOf("Box", anc) {
			t.Errorf("isKindOf(Box, %s) = false", anc)
		}
	}
	if cm.isKindOf("Item", "Box") || cm.isKindOf("Base", "Item") {
		t.Error("isKindOf inverted the hierarchy")
	}
	// Enum literals became a membership set; defaults were pre-normalised.
	color := &box.attrs[box.attrIndex["color"]]
	if _, ok := color.enum["green"]; !ok {
		t.Error("enum literal set missing green")
	}
	count := &box.attrs[box.attrIndex["count"]]
	if v, ok := count.def.(int64); !ok || v != 7 {
		t.Errorf("default for count = %v (%T), want int64 7", count.def, count.def)
	}
}

func TestCompileRejectsMalformedMetamodel(t *testing.T) {
	mm := New("broken")
	mm.MustAddClass(&Class{Name: "A", Super: "B"})
	mm.MustAddClass(&Class{Name: "B", Super: "A"})
	if _, err := Compile(mm); err == nil {
		t.Fatal("Compile accepted a metamodel with an inheritance cycle")
	}
	// The dispatching Validate must fall back to the interpreted walk and
	// agree with it.
	m := NewModel("broken")
	m.NewObject("x", "A")
	errFast := m.Clone().Validate(mm)
	errRef := m.Clone().ValidateInterpreted(mm)
	if (errFast == nil) != (errRef == nil) {
		t.Fatalf("fallback disagreed with reference: %v vs %v", errFast, errRef)
	}
}

func TestCompiledLazyAndInvalidated(t *testing.T) {
	mm := compileMM(t)
	cm1, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	cm2, _ := mm.Compiled()
	if cm1 != cm2 {
		t.Error("Compiled() recompiled without a structural change")
	}
	fp1 := mm.Fingerprint()
	mm.MustAddClass(&Class{Name: "Extra", Super: "Item"})
	cm3, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if cm3 == cm1 {
		t.Error("Compiled() returned a stale compilation after AddClass")
	}
	if cm3.classes["Extra"] == nil {
		t.Error("recompiled form misses the added class")
	}
	if mm.Fingerprint() == fp1 {
		t.Error("Fingerprint unchanged after a structural mutation")
	}
}

func TestFingerprintContentBased(t *testing.T) {
	a, b := compileMM(t), compileMM(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical content, different fingerprints")
	}
}

func TestValidationModeSwitch(t *testing.T) {
	prev := SetValidationMode(ModeInterpreted)
	defer SetValidationMode(prev)
	if GetValidationMode() != ModeInterpreted {
		t.Fatal("mode did not switch")
	}
	fast0, interp0, _, _, _ := ValidationStats()
	mm := compileMM(t)
	m := NewModel("compile-mm")
	m.NewObject("i", "Item").SetAttr("name", "x")
	if err := m.Validate(mm); err != nil {
		t.Fatal(err)
	}
	fast1, interp1, _, _, _ := ValidationStats()
	if fast1 != fast0 {
		t.Error("interpreted mode took the fast path")
	}
	if interp1 != interp0+1 {
		t.Errorf("interpreted dispatches: got %d, want %d", interp1, interp0+1)
	}

	SetValidationMode(ModeCompiled)
	if err := m.Clone().Validate(mm); err != nil {
		t.Fatal(err)
	}
	fast2, _, _, _, _ := ValidationStats()
	if fast2 != fast1+1 {
		t.Errorf("fast dispatches: got %d, want %d", fast2, fast1+1)
	}
}

func TestParseValidationMode(t *testing.T) {
	if m, err := ParseValidationMode("compiled"); err != nil || m != ModeCompiled {
		t.Errorf("compiled: %v %v", m, err)
	}
	if m, err := ParseValidationMode("interpreted"); err != nil || m != ModeInterpreted {
		t.Errorf("interpreted: %v %v", m, err)
	}
	if _, err := ParseValidationMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestCompiledValidateAppliesDefaultsAndNormalises(t *testing.T) {
	mm := compileMM(t)
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel("compile-mm")
	o := m.NewObject("i", "Item").SetAttr("name", "x").SetAttr("ratio", 2) // int → float64
	if err := cm.Validate(m); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Attr("ratio"); v != float64(2) {
		t.Errorf("ratio not normalised: %v (%T)", v, v)
	}
	if o.StringAttr("color") != "red" {
		t.Errorf("enum default not applied: %q", o.StringAttr("color"))
	}
	if o.IntAttr("count") != 7 {
		t.Errorf("int default not applied: %d", o.IntAttr("count"))
	}
}

func TestValidationCacheHitsAndMetrics(t *testing.T) {
	mm := compileMM(t)
	c := NewValidationCache(8)
	reg := obs.NewMetrics()
	c.BindMetrics(reg)

	m := NewModel("compile-mm")
	m.NewObject("i", "Item").SetAttr("name", "x")

	v1, err := c.Validate(mm, m)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Validate(mm, m)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if reg.CounterValue(obs.MValidateCacheHits) != 1 || reg.CounterValue(obs.MValidateCacheMisses) != 1 {
		t.Error("obs mirror disagrees with Stats")
	}
	if !Equal(v1, v2) {
		t.Error("cached result differs from the validated original")
	}
	// The hit result is normalised exactly like a fresh validation.
	if v2.Get("i").IntAttr("count") != 7 {
		t.Error("cached clone lost applied defaults")
	}
	// Mutating a returned model must not corrupt the cache.
	v2.Get("i").SetAttr("count", int64(99))
	v3, _ := c.Validate(mm, m)
	if v3.Get("i").IntAttr("count") != 7 {
		t.Error("caller mutation leaked into the cache")
	}
}

func TestValidationCacheFailuresNotCached(t *testing.T) {
	mm := compileMM(t)
	c := NewValidationCache(8)
	bad := NewModel("compile-mm")
	bad.NewObject("i", "Item") // required "name" unset
	for i := 0; i < 2; i++ {
		if _, err := c.Validate(mm, bad); err == nil {
			t.Fatal("invalid model validated")
		}
	}
	if c.Len() != 0 {
		t.Errorf("failure cached: len = %d", c.Len())
	}
	if hits, misses, _ := c.Stats(); hits != 0 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 0/2", hits, misses)
	}
}

func TestValidationCacheMetamodelChangeInvalidates(t *testing.T) {
	mm := compileMM(t)
	c := NewValidationCache(8)
	m := NewModel("compile-mm")
	m.NewObject("i", "Item").SetAttr("name", "x")
	if _, err := c.Validate(mm, m); err != nil {
		t.Fatal(err)
	}
	// A structural change gives the metamodel new content: same model
	// bytes, different key → miss, not a stale hit.
	mm.MustAddClass(&Class{Name: "Extra", Super: "Item"})
	if _, err := c.Validate(mm, m); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c.Stats(); hits != 0 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 0/2 after metamodel change", hits, misses)
	}
}

func TestValidationCacheLRUEviction(t *testing.T) {
	mm := compileMM(t)
	c := NewValidationCache(2)
	models := make([]*Model, 3)
	for i := range models {
		m := NewModel("compile-mm")
		m.NewObject("i", "Item").SetAttr("name", strings.Repeat("x", i+1))
		models[i] = m
		if _, err := c.Validate(mm, m); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// models[0] was least recently used and evicted; models[2] is live.
	if _, err := c.Validate(mm, models[2]); err != nil {
		t.Fatal(err)
	}
	hits, _, _ := c.Stats()
	if hits != 1 {
		t.Errorf("hits = %d, want 1 (models[2] should still be cached)", hits)
	}
	if _, err := c.Validate(mm, models[0]); err != nil {
		t.Fatal(err)
	}
	if hits2, misses, _ := c.Stats(); hits2 != 1 || misses != 4 {
		t.Errorf("stats = %d hits / %d misses, want 1/4 (models[0] evicted)", hits2, misses)
	}
}

func TestValidationCacheNilReceiver(t *testing.T) {
	mm := compileMM(t)
	var c *ValidationCache
	m := NewModel("compile-mm")
	m.NewObject("i", "Item").SetAttr("name", "x")
	v, err := c.Validate(mm, m)
	if err != nil {
		t.Fatal(err)
	}
	if v.Get("i").IntAttr("count") != 7 {
		t.Error("nil cache skipped validation side effects")
	}
	if _, set := m.Get("i").Attr("count"); set {
		t.Error("nil cache validated the caller's model in place")
	}
	bad := NewModel("compile-mm")
	bad.NewObject("i", "Item")
	if _, err := c.Validate(mm, bad); err == nil {
		t.Error("nil cache accepted an invalid model")
	}
}

func TestModelContentHashOrderSensitive(t *testing.T) {
	a := NewModel("m")
	a.NewObject("x", "C")
	a.NewObject("y", "C")
	b := NewModel("m")
	b.NewObject("y", "C")
	b.NewObject("x", "C")
	// Insertion order is semantically meaningful (diff/script ordering), so
	// the canonical encoding must distinguish it.
	if a.ContentHash() == b.ContentHash() {
		t.Error("content hash ignored insertion order")
	}
	if a.ContentHash() != a.Clone().ContentHash() {
		t.Error("clone changed the content hash")
	}
}

func TestCompiledMatchesInterpretedProblemSet(t *testing.T) {
	mm := compileMM(t)
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	// A model with one of each problem class.
	m := NewModel("compile-mm")
	m.NewObject("a", "Ghost")                        // unknown class
	m.NewObject("b", "Base").SetAttr("name", "b")    // abstract
	m.NewObject("c", "Item").SetAttr("count", "ten") // wrong type + required name unset
	m.NewObject("d", "Item").SetAttr("name", "d").SetAttr("color", "mauve")
	m.NewObject("e", "Item").SetAttr("name", "e").SetRef("peer", "zz", "d") // dangling + cardinality
	m.NewObject("f", "Item").SetAttr("name", "f").SetRef("parts", "d")
	m.NewObject("g", "Item").SetAttr("name", "g").SetRef("parts", "d", "f") // double containment
	errC := cm.Validate(m.Clone())
	errI := m.Clone().ValidateInterpreted(mm)
	pc, pi := problemSet(t, errC), problemSet(t, errI)
	if len(pc) == 0 || len(pi) == 0 {
		t.Fatalf("expected problems, got %v / %v", errC, errI)
	}
	if !equalStringSets(pc, pi) {
		t.Fatalf("problem sets diverge:\ncompiled:    %v\ninterpreted: %v", pc, pi)
	}
}

// problemSet extracts the sorted problem list of a validation error (empty
// for nil).
func problemSet(t testing.TB, err error) []string {
	t.Helper()
	if err == nil {
		return nil
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("not a ValidationError: %v", err)
	}
	out := append([]string(nil), ve.Problems...)
	sort.Strings(out)
	return out
}

func equalStringSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
