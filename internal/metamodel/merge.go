package metamodel

import (
	"fmt"
)

// Merge weaves several models that describe different concerns of one
// application into a single model (the weaving step the MD-DSM paper lists
// as required for executing multiple related models simultaneously, §IX).
//
// Weaving rules:
//   - objects present in only one input are copied;
//   - objects sharing an ID join: their classes must agree, attribute
//     values must not conflict (same attribute, different value), and
//     reference targets are unioned (order: first model's targets first);
//   - the result declares the given metamodel name; conformance is the
//     caller's responsibility (weaving may legitimately produce an
//     intermediate that only validates after all concerns are in).
func Merge(metamodelName string, models ...*Model) (*Model, error) {
	out := NewModel(metamodelName)
	for mi, m := range models {
		if m == nil {
			return nil, fmt.Errorf("merge: model %d is nil", mi)
		}
		for _, o := range m.Objects() {
			existing := out.Get(o.ID)
			if existing == nil {
				out.MustAdd(o.Clone())
				continue
			}
			if existing.Class != o.Class {
				return nil, fmt.Errorf("merge: object %q woven as both %s and %s",
					o.ID, existing.Class, o.Class)
			}
			for _, name := range o.AttrNames() {
				v, _ := o.Attr(name)
				if prev, set := existing.Attr(name); set && prev != v {
					return nil, fmt.Errorf("merge: object %q attribute %q conflicts: %v vs %v",
						o.ID, name, prev, v)
				}
				existing.SetAttr(name, v)
			}
			for _, ref := range o.RefNames() {
				for _, target := range o.Refs(ref) {
					existing.AddRef(ref, target)
				}
			}
		}
	}
	return out, nil
}
