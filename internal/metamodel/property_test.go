package metamodel

import (
	"fmt"
	"math/rand"
	"testing"
)

// propMM is the small metamodel the property tests generate instances of:
// Nodes with one attribute per kind and non-containment links to Nodes and
// Tags. Containment is deliberately absent so random reference topologies
// (cycles, sharing) stay valid.
func propMM(t testing.TB) *Metamodel {
	t.Helper()
	mm := New("prop-mm")
	mm.MustAddClass(&Class{Name: "Node",
		Attributes: []Attribute{
			{Name: "name", Kind: KindString, Required: true},
			{Name: "weight", Kind: KindInt},
			{Name: "ratio", Kind: KindFloat},
			{Name: "active", Kind: KindBool},
		},
		References: []Reference{
			{Name: "links", Target: "Node", Many: true},
			{Name: "tags", Target: "Tag", Many: true},
		},
	})
	mm.MustAddClass(&Class{Name: "Tag",
		Attributes: []Attribute{{Name: "label", Kind: KindString, Required: true}},
	})
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	return mm
}

// genModel builds a random valid instance of propMM. Object IDs come from a
// fixed pool so two independently generated models overlap — diffs then
// contain adds, removes, and in-place feature changes all at once.
func genModel(rng *rand.Rand, size int) *Model {
	m := NewModel("prop-mm")
	var nodes, tags []string
	for i := 0; i < size; i++ {
		// The id pool is 2×size wide, so overlap between two draws is high
		// but not total.
		id := fmt.Sprintf("o%d", rng.Intn(size*2))
		if m.Get(id) != nil {
			continue
		}
		if rng.Intn(4) == 0 {
			o := NewObject(id, "Tag")
			o.SetAttr("label", fmt.Sprintf("t%d", rng.Intn(10)))
			m.MustAdd(o)
			tags = append(tags, id)
			continue
		}
		o := NewObject(id, "Node")
		o.SetAttr("name", fmt.Sprintf("n%d", rng.Intn(10)))
		if rng.Intn(2) == 0 {
			o.SetAttr("weight", int64(rng.Intn(100)))
		}
		if rng.Intn(2) == 0 {
			o.SetAttr("ratio", float64(rng.Intn(100))/4)
		}
		if rng.Intn(2) == 0 {
			o.SetAttr("active", rng.Intn(2) == 0)
		}
		m.MustAdd(o)
		nodes = append(nodes, id)
	}
	// Wire random non-containment references among the generated objects.
	for _, id := range nodes {
		o := m.Get(id)
		for _, tgt := range pick(rng, nodes, 3) {
			o.AddRef("links", tgt)
		}
		for _, tgt := range pick(rng, tags, 2) {
			o.AddRef("tags", tgt)
		}
	}
	return m
}

// pick draws up to n random elements from pool (with dedup via AddRef).
func pick(rng *rand.Rand, pool []string, n int) []string {
	if len(pool) == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < rng.Intn(n+1); i++ {
		out = append(out, pool[rng.Intn(len(pool))])
	}
	return out
}

// TestPropertyDiffApplyRoundTrip: for arbitrary models a and b,
// Apply(a, Diff(a, b)) == b — the delta really is the difference.
func TestPropertyDiffApplyRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := genModel(rng, 2+rng.Intn(12))
		b := genModel(rng, 2+rng.Intn(12))
		patched := a.Clone()
		if err := Apply(patched, Diff(a, b)); err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if !Equal(patched, b) {
			t.Fatalf("seed %d: Apply(a, Diff(a,b)) != b\ndiff: %s\npatched vs b diff: %s",
				seed, Diff(a, b), Diff(patched, b))
		}
	}
}

// TestPropertyDiffIdentity: Diff(a, a) is empty, and applying an empty
// diff changes nothing.
func TestPropertyDiffIdentity(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := genModel(rng, 2+rng.Intn(12))
		if d := Diff(a, a.Clone()); !d.Empty() {
			t.Fatalf("seed %d: Diff(a,a) = %s", seed, d)
		}
		patched := a.Clone()
		if err := Apply(patched, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !Equal(patched, a) {
			t.Fatalf("seed %d: empty diff changed the model", seed)
		}
	}
}

// TestPropertyDiffApplySymmetry: the reverse diff undoes the forward diff.
func TestPropertyDiffApplySymmetry(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := genModel(rng, 2+rng.Intn(12))
		b := genModel(rng, 2+rng.Intn(12))
		there := a.Clone()
		if err := Apply(there, Diff(a, b)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back := there.Clone()
		if err := Apply(back, Diff(b, a)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !Equal(back, a) {
			t.Fatalf("seed %d: a -> b -> a did not return to a; residue: %s",
				seed, Diff(back, a))
		}
	}
}

// TestPropertyJSONRoundTripLossless: serialise → parse → validate loses
// nothing. Validation normalises JSON's float64 numbers back to the
// metamodel's kinds, so a validated round trip must compare Equal.
func TestPropertyJSONRoundTripLossless(t *testing.T) {
	mm := propMM(t)
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := genModel(rng, 2+rng.Intn(12))
		if err := m.Validate(mm); err != nil {
			t.Fatalf("seed %d: generated model invalid: %v", seed, err)
		}
		data, err := MarshalModel(m)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		back, err := UnmarshalModel(data)
		if err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if back.MetamodelName != m.MetamodelName {
			t.Fatalf("seed %d: metamodel name %q -> %q", seed, m.MetamodelName, back.MetamodelName)
		}
		if err := back.Validate(mm); err != nil {
			t.Fatalf("seed %d: round-tripped model invalid: %v", seed, err)
		}
		if !Equal(back, m) {
			t.Fatalf("seed %d: JSON round trip lost data; diff: %s", seed, Diff(back, m))
		}
		// And the round trip is a fixed point: a second pass is bytewise
		// identical.
		data2, err := MarshalModel(back)
		if err != nil {
			t.Fatalf("seed %d: re-marshal: %v", seed, err)
		}
		if string(data) != string(data2) {
			t.Fatalf("seed %d: serialisation not a fixed point:\n%s\nvs\n%s", seed, data, data2)
		}
	}
}
