package metamodel

import (
	"fmt"
	"sort"
	"strings"
)

// ChangeKind enumerates model change operations.
type ChangeKind int

// Change kinds, ordered the way the Synthesis layer wants to process them:
// removals before additions so resources can be torn down before new ones
// are brought up.
const (
	ChangeRemoveObject ChangeKind = iota + 1
	ChangeAddObject
	ChangeSetAttr
	ChangeUnsetAttr
	ChangeAddRef
	ChangeRemoveRef
)

// String returns a short mnemonic for the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeRemoveObject:
		return "remove-object"
	case ChangeAddObject:
		return "add-object"
	case ChangeSetAttr:
		return "set-attr"
	case ChangeUnsetAttr:
		return "unset-attr"
	case ChangeAddRef:
		return "add-ref"
	case ChangeRemoveRef:
		return "remove-ref"
	default:
		return fmt.Sprintf("change(%d)", int(k))
	}
}

// Change is one atomic difference between two models.
type Change struct {
	Kind     ChangeKind
	ObjectID string
	Class    string // class of the object concerned
	Feature  string // attribute or reference name, when applicable
	Old      any    // previous attribute value (ChangeSetAttr/ChangeUnsetAttr)
	New      any    // new attribute value (ChangeSetAttr, ChangeAddObject ignored)
	Target   string // reference target (ChangeAddRef/ChangeRemoveRef)
}

// String renders the change compactly for logs and traces.
func (c Change) String() string {
	switch c.Kind {
	case ChangeRemoveObject, ChangeAddObject:
		return fmt.Sprintf("%s %s:%s", c.Kind, c.ObjectID, c.Class)
	case ChangeSetAttr:
		return fmt.Sprintf("%s %s.%s %v->%v", c.Kind, c.ObjectID, c.Feature, c.Old, c.New)
	case ChangeUnsetAttr:
		return fmt.Sprintf("%s %s.%s (was %v)", c.Kind, c.ObjectID, c.Feature, c.Old)
	case ChangeAddRef, ChangeRemoveRef:
		return fmt.Sprintf("%s %s.%s -> %s", c.Kind, c.ObjectID, c.Feature, c.Target)
	default:
		return fmt.Sprintf("%s %s", c.Kind, c.ObjectID)
	}
}

// ChangeList is an ordered sequence of changes. Diff produces it in a
// deterministic order; Apply consumes it.
type ChangeList []Change

// String joins the changes one per line.
func (cl ChangeList) String() string {
	parts := make([]string, len(cl))
	for i, c := range cl {
		parts[i] = c.String()
	}
	return strings.Join(parts, "\n")
}

// Empty reports whether the list has no changes.
func (cl ChangeList) Empty() bool { return len(cl) == 0 }

// Diff computes the change list that transforms old into new. The result is
// deterministic: removals (sorted by ID, refs removed before the object),
// then additions (in new-model insertion order), then attribute and
// reference updates on surviving objects (sorted by ID then feature).
func Diff(oldM, newM *Model) ChangeList {
	return diffOrdered(oldM, newM, nil)
}

// DiffWithContainment is Diff with containment-aware removal ordering:
// objects contained (directly or transitively) in another removed object
// are removed first, so teardown proceeds children-before-containers. The
// Synthesis layer uses this so e.g. a stream's close command executes while
// its session still exists. Ties are broken by ID for determinism.
func DiffWithContainment(oldM, newM *Model, mm *Metamodel) ChangeList {
	depth := containmentDepths(oldM, mm)
	return diffOrdered(oldM, newM, depth)
}

// containmentDepths computes each object's containment depth in the model
// (roots are 0) using the metamodel's containment references.
func containmentDepths(m *Model, mm *Metamodel) map[string]int {
	container := make(map[string]string)
	for _, o := range m.Objects() {
		for _, ref := range mm.AllReferences(o.Class) {
			if !ref.Containment {
				continue
			}
			for _, child := range o.Refs(ref.Name) {
				container[child] = o.ID
			}
		}
	}
	depth := make(map[string]int, len(container))
	var resolve func(id string, seen map[string]bool) int
	resolve = func(id string, seen map[string]bool) int {
		if d, ok := depth[id]; ok {
			return d
		}
		parent, ok := container[id]
		if !ok || seen[id] {
			depth[id] = 0
			return 0
		}
		seen[id] = true
		d := resolve(parent, seen) + 1
		depth[id] = d
		return d
	}
	for _, id := range m.IDs() {
		resolve(id, make(map[string]bool))
	}
	return depth
}

// diffOrdered is the shared diff implementation; depth (may be nil) orders
// removals deepest-first.
func diffOrdered(oldM, newM *Model, depth map[string]int) ChangeList {
	var out ChangeList

	// An ID that survives under a different class is a different entity —
	// domain semantics key on add-object:<Class> — so reclassification is a
	// removal of the old object plus an addition of the new one, never an
	// in-place feature patch.
	reclassified := func(id string) bool {
		o, n := oldM.Get(id), newM.Get(id)
		return o != nil && n != nil && o.Class != n.Class
	}
	removed := make([]string, 0)
	for _, id := range oldM.IDs() {
		if newM.Get(id) == nil || reclassified(id) {
			removed = append(removed, id)
		}
	}
	sort.Slice(removed, func(i, j int) bool {
		di, dj := depth[removed[i]], depth[removed[j]]
		if di != dj {
			return di > dj // deepest (most-contained) first
		}
		return removed[i] < removed[j]
	})
	for _, id := range removed {
		o := oldM.Get(id)
		for _, ref := range o.RefNames() {
			for _, t := range o.Refs(ref) {
				out = append(out, Change{Kind: ChangeRemoveRef, ObjectID: id, Class: o.Class, Feature: ref, Target: t})
			}
		}
		out = append(out, Change{Kind: ChangeRemoveObject, ObjectID: id, Class: o.Class})
	}

	for _, id := range newM.IDs() {
		n := newM.Get(id)
		if oldM.Get(id) == nil || reclassified(id) {
			out = append(out, Change{Kind: ChangeAddObject, ObjectID: id, Class: n.Class})
			for _, name := range n.AttrNames() {
				v, _ := n.Attr(name)
				out = append(out, Change{Kind: ChangeSetAttr, ObjectID: id, Class: n.Class, Feature: name, New: v})
			}
			for _, ref := range n.RefNames() {
				for _, t := range n.Refs(ref) {
					out = append(out, Change{Kind: ChangeAddRef, ObjectID: id, Class: n.Class, Feature: ref, Target: t})
				}
			}
		}
	}

	surviving := make([]string, 0)
	for _, id := range oldM.IDs() {
		if newM.Get(id) != nil && !reclassified(id) {
			surviving = append(surviving, id)
		}
	}
	sort.Strings(surviving)
	for _, id := range surviving {
		o, n := oldM.Get(id), newM.Get(id)
		feats := unionSorted(o.AttrNames(), n.AttrNames())
		for _, name := range feats {
			ov, oset := o.Attr(name)
			nv, nset := n.Attr(name)
			switch {
			case oset && !nset:
				out = append(out, Change{Kind: ChangeUnsetAttr, ObjectID: id, Class: n.Class, Feature: name, Old: ov})
			case !oset && nset:
				out = append(out, Change{Kind: ChangeSetAttr, ObjectID: id, Class: n.Class, Feature: name, New: nv})
			case oset && nset && ov != nv:
				out = append(out, Change{Kind: ChangeSetAttr, ObjectID: id, Class: n.Class, Feature: name, Old: ov, New: nv})
			}
		}
		refs := unionSorted(o.RefNames(), n.RefNames())
		for _, ref := range refs {
			oldT := toSet(o.Refs(ref))
			newT := toSet(n.Refs(ref))
			for _, t := range sortedKeys(oldT) {
				if !newT[t] {
					out = append(out, Change{Kind: ChangeRemoveRef, ObjectID: id, Class: n.Class, Feature: ref, Target: t})
				}
			}
			for _, t := range sortedKeys(newT) {
				if !oldT[t] {
					out = append(out, Change{Kind: ChangeAddRef, ObjectID: id, Class: n.Class, Feature: ref, Target: t})
				}
			}
		}
	}
	return out
}

// Apply mutates m in place by the change list. It is the inverse check for
// Diff: Apply(old, Diff(old, new)) makes old equivalent to new. Errors are
// returned for changes that do not fit the model (e.g. removing an absent
// object).
func Apply(m *Model, changes ChangeList) error {
	for i, c := range changes {
		switch c.Kind {
		case ChangeRemoveObject:
			if err := m.Delete(c.ObjectID); err != nil {
				return fmt.Errorf("change %d (%s): %w", i, c, err)
			}
		case ChangeAddObject:
			if err := m.Add(NewObject(c.ObjectID, c.Class)); err != nil {
				return fmt.Errorf("change %d (%s): %w", i, c, err)
			}
		case ChangeSetAttr:
			o := m.Get(c.ObjectID)
			if o == nil {
				return fmt.Errorf("change %d (%s): object %q: %w", i, c, c.ObjectID, ErrNotFound)
			}
			o.SetAttr(c.Feature, c.New)
		case ChangeUnsetAttr:
			o := m.Get(c.ObjectID)
			if o == nil {
				return fmt.Errorf("change %d (%s): object %q: %w", i, c, c.ObjectID, ErrNotFound)
			}
			delete(o.attrs, c.Feature)
		case ChangeAddRef:
			o := m.Get(c.ObjectID)
			if o == nil {
				return fmt.Errorf("change %d (%s): object %q: %w", i, c, c.ObjectID, ErrNotFound)
			}
			o.AddRef(c.Feature, c.Target)
		case ChangeRemoveRef:
			o := m.Get(c.ObjectID)
			if o == nil {
				// Removals of refs held by a removed object were already
				// handled by ChangeRemoveObject; tolerate them.
				continue
			}
			o.RemoveRef(c.Feature, c.Target)
		default:
			return fmt.Errorf("change %d: invalid kind %v", i, c.Kind)
		}
	}
	return nil
}

// Equal reports whether two models contain the same objects with the same
// attributes and reference targets (reference order-insensitive).
func Equal(a, b *Model) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, id := range a.IDs() {
		oa, ob := a.Get(id), b.Get(id)
		if ob == nil || oa.Class != ob.Class {
			return false
		}
		an, bn := oa.AttrNames(), ob.AttrNames()
		if len(an) != len(bn) {
			return false
		}
		for _, n := range an {
			va, _ := oa.Attr(n)
			vb, ok := ob.Attr(n)
			if !ok || va != vb {
				return false
			}
		}
		ar, br := oa.RefNames(), ob.RefNames()
		if len(ar) != len(br) {
			return false
		}
		for _, r := range ar {
			sa, sb := toSet(oa.Refs(r)), toSet(ob.Refs(r))
			if len(sa) != len(sb) {
				return false
			}
			for t := range sa {
				if !sb[t] {
					return false
				}
			}
		}
	}
	return true
}

func unionSorted(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	return sortedKeys(set)
}

func toSet(ss []string) map[string]bool {
	set := make(map[string]bool, len(ss))
	for _, s := range ss {
		set[s] = true
	}
	return set
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
