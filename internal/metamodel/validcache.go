// The validation cache: content-hash-keyed memoisation of successful
// conformance validations. Submitting, restoring or checkpoint-replaying
// the same model content against the same metamodel repeatedly (the
// models@runtime steady state) validates once and replays the validated
// result from cache afterwards.
//
// Correctness properties:
//   - Entries are keyed by a hash of the canonical encodings of BOTH the
//     model and the metamodel, and the full encodings are compared on
//     lookup — a hash collision degrades to a miss, never a wrong hit.
//   - Keying on the metamodel's content means any structural change to the
//     metamodel (or a differently shaped rebuild) invalidates prior
//     entries naturally: their keys no longer match, and LRU eviction
//     reclaims them.
//   - Only successful validations are cached; failures always re-validate.
//   - The cache stores a private clone of the validated (normalised,
//     defaults applied) model and hands out fresh clones on hit, so
//     callers can mutate results freely.
package metamodel

import (
	"bytes"
	"container/list"
	"sync"

	"github.com/mddsm/mddsm/internal/obs"
)

// DefaultValidationCacheSize bounds the process-wide shared cache.
const DefaultValidationCacheSize = 256

// ValidationCache memoises successful model validations by content hash
// with LRU eviction. A nil *ValidationCache is valid and simply validates
// without memoisation. The cache is safe for concurrent use.
type ValidationCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *vcEntry
	index map[uint64][]*list.Element

	hitsN, missesN, evictionsN int64

	hits, misses, evictions *obs.Counter // nil-safe mirrors
}

type vcEntry struct {
	key       uint64
	mmCanon   []byte
	modCanon  []byte
	validated *Model // normalised, defaults applied; never handed out directly
}

// NewValidationCache returns a cache holding at most max validated models
// (DefaultValidationCacheSize when max <= 0).
func NewValidationCache(max int) *ValidationCache {
	if max <= 0 {
		max = DefaultValidationCacheSize
	}
	return &ValidationCache{
		max:   max,
		ll:    list.New(),
		index: make(map[uint64][]*list.Element),
	}
}

// sharedCache is the process-wide default used by the runtime, core and
// mwmeta layers, so validations of the same content in different layers
// dedupe against each other.
var sharedCache = NewValidationCache(DefaultValidationCacheSize)

// SharedValidationCache returns the process-wide validation cache.
func SharedValidationCache() *ValidationCache { return sharedCache }

// BindMetrics mirrors the cache's hit/miss/eviction counts into reg under
// the canonical obs names.
func (c *ValidationCache) BindMetrics(reg *obs.Metrics) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits = reg.Counter(obs.MValidateCacheHits)
	c.misses = reg.Counter(obs.MValidateCacheMisses)
	c.evictions = reg.Counter(obs.MValidateCacheEvicted)
}

// Stats returns cumulative hit, miss and eviction counts.
func (c *ValidationCache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hitsN, c.missesN, c.evictionsN
}

// Len returns the number of cached validated models.
func (c *ValidationCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Validate returns a validated (normalised, defaults applied) clone of m
// against mm, reusing a cached result when the exact same model and
// metamodel content was validated before. On a validation failure it
// returns (nil, err) and caches nothing. A nil receiver validates a clone
// directly with no memoisation.
func (c *ValidationCache) Validate(mm *Metamodel, m *Model) (*Model, error) {
	if c == nil {
		work := m.Clone()
		if err := work.Validate(mm); err != nil {
			return nil, err
		}
		return work, nil
	}
	mmCanon := mm.canonical()
	modCanon := m.appendCanonical(nil)
	key := fnv64(mmCanon, modCanon)

	c.mu.Lock()
	if e := c.lookupLocked(key, mmCanon, modCanon); e != nil {
		c.hitsN++
		hit := c.hits
		c.mu.Unlock()
		hit.Inc()
		return e.validated.Clone(), nil
	}
	c.missesN++
	miss := c.misses
	c.mu.Unlock()
	miss.Inc()

	work := m.Clone()
	if err := work.Validate(mm); err != nil {
		return nil, err
	}
	c.insert(&vcEntry{key: key, mmCanon: mmCanon, modCanon: modCanon, validated: work.Clone()})
	return work, nil
}

// lookupLocked finds the live entry for the exact content, promoting it to
// most recently used. It returns nil on miss.
func (c *ValidationCache) lookupLocked(key uint64, mmCanon, modCanon []byte) *vcEntry {
	for _, el := range c.index[key] {
		e := el.Value.(*vcEntry)
		if bytes.Equal(e.mmCanon, mmCanon) && bytes.Equal(e.modCanon, modCanon) {
			c.ll.MoveToFront(el)
			return e
		}
	}
	return nil
}

// insert stores a freshly validated entry, skipping the store when a
// concurrent validation of the same content won the race, and evicting
// from the LRU tail past capacity.
func (c *ValidationCache) insert(e *vcEntry) {
	c.mu.Lock()
	var evict *obs.Counter
	var evicted int64
	if c.lookupLocked(e.key, e.mmCanon, e.modCanon) == nil {
		el := c.ll.PushFront(e)
		c.index[e.key] = append(c.index[e.key], el)
		for c.ll.Len() > c.max {
			back := c.ll.Back()
			c.removeLocked(back)
			c.evictionsN++
			evicted++
		}
		evict = c.evictions
	}
	c.mu.Unlock()
	evict.Add(evicted)
}

// removeLocked unlinks an element from the LRU list and its index bucket.
func (c *ValidationCache) removeLocked(el *list.Element) {
	e := el.Value.(*vcEntry)
	c.ll.Remove(el)
	bucket := c.index[e.key]
	for i, b := range bucket {
		if b == el {
			bucket = append(bucket[:i:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.index, e.key)
	} else {
		c.index[e.key] = bucket
	}
}
