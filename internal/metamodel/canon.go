// Canonical byte encodings of metamodels and models. The validation cache
// keys entries by a hash of these encodings and compares the full bytes on
// lookup, so a hash collision can never return the wrong cached result. The
// encoding length-prefixes every string, making it unambiguous, and lists
// model objects in insertion order — two models with the same content but
// different object order are deliberately distinct (validation output order
// and downstream diffs depend on insertion order).
package metamodel

import (
	"fmt"
	"strconv"
)

// canonSlot caches a metamodel's canonical encoding for one structural
// version.
type canonSlot struct {
	version uint64
	data    []byte
}

// fnv64 hashes byte slices with FNV-1a.
func fnv64(parts ...[]byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for _, c := range p {
			h ^= uint64(c)
			h *= prime64
		}
	}
	return h
}

func appendCanonString(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	return append(b, s...)
}

func appendCanonInt(b []byte, n int64) []byte {
	b = strconv.AppendInt(b, n, 10)
	return append(b, ';')
}

func appendCanonBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// appendCanonValue encodes an attribute value (canonical or raw) with a
// type tag so values of different types never alias.
func appendCanonValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, 'z')
	case string:
		b = append(b, 's')
		return appendCanonString(b, x)
	case int64:
		b = append(b, 'i')
		return appendCanonInt(b, x)
	case int:
		b = append(b, 'i')
		return appendCanonInt(b, int64(x))
	case float64:
		b = append(b, 'f')
		b = strconv.AppendFloat(b, x, 'g', -1, 64)
		return append(b, ';')
	case bool:
		b = append(b, 'b')
		return appendCanonBool(b, x)
	default:
		// Unvalidated models may carry arbitrary values; fall back to a
		// formatted representation (still type-tagged by %T).
		b = append(b, '?')
		return appendCanonString(b, fmt.Sprintf("%T:%v", v, v))
	}
}

// canonical returns the metamodel's canonical encoding, cached per
// structural version.
func (m *Metamodel) canonical() []byte {
	if s := m.canon.Load(); s != nil && s.version == m.version {
		return s.data
	}
	b := appendCanonString(nil, m.Name)
	for _, en := range m.EnumNames() {
		e := m.enums[en]
		b = append(b, 'E')
		b = appendCanonString(b, e.Name)
		b = appendCanonInt(b, int64(len(e.Literals)))
		for _, l := range e.Literals {
			b = appendCanonString(b, l)
		}
	}
	for _, cn := range m.ClassNames() {
		c := m.classes[cn]
		b = append(b, 'C')
		b = appendCanonString(b, c.Name)
		b = appendCanonBool(b, c.Abstract)
		b = appendCanonString(b, c.Super)
		b = appendCanonInt(b, int64(len(c.Attributes)))
		for _, a := range c.Attributes {
			b = appendCanonString(b, a.Name)
			b = appendCanonInt(b, int64(a.Kind))
			b = appendCanonString(b, a.EnumType)
			b = appendCanonBool(b, a.Required)
			b = appendCanonValue(b, a.Default)
		}
		b = appendCanonInt(b, int64(len(c.References)))
		for _, r := range c.References {
			b = appendCanonString(b, r.Name)
			b = appendCanonString(b, r.Target)
			b = appendCanonBool(b, r.Containment)
			b = appendCanonBool(b, r.Many)
			b = appendCanonBool(b, r.Required)
		}
	}
	m.canon.Store(&canonSlot{version: m.version, data: b})
	return b
}

// Fingerprint returns a content hash of the metamodel's structure. Two
// independently built metamodels with identical content fingerprint
// identically, so caches keyed by it survive rebuilt metamodel instances.
func (m *Metamodel) Fingerprint() uint64 { return fnv64(m.canonical()) }

// appendCanonical appends the model's canonical encoding: metamodel name,
// then each object in insertion order with sorted attribute names and
// sorted non-empty reference names.
func (m *Model) appendCanonical(b []byte) []byte {
	b = appendCanonString(b, m.MetamodelName)
	for _, id := range m.order {
		o := m.objects[id]
		b = append(b, 'O')
		b = appendCanonString(b, id)
		b = appendCanonString(b, o.Class)
		for _, name := range o.AttrNames() {
			b = append(b, 'a')
			b = appendCanonString(b, name)
			b = appendCanonValue(b, o.attrs[name])
		}
		for _, name := range o.RefNames() {
			b = append(b, 'r')
			b = appendCanonString(b, name)
			targets := o.refs[name]
			b = appendCanonInt(b, int64(len(targets)))
			for _, t := range targets {
				b = appendCanonString(b, t)
			}
		}
	}
	return b
}

// ContentHash returns a content hash of the model (objects in insertion
// order, attributes and references by name). It is the key the validation
// cache buckets by.
func (m *Model) ContentHash() uint64 { return fnv64(m.appendCanonical(nil)) }
