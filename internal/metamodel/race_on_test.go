//go:build race

package metamodel

const raceEnabled = true
