// Package metamodel is a self-contained modelling framework: metamodels
// (classes, attributes, references, enums, single inheritance, containment),
// model instances, conformance validation, JSON serialisation and model
// diffing.
//
// It replaces the Eclipse Modeling Framework (EMF/Ecore) that the MD-DSM
// paper's prototype relied on. Every capability the paper needs from EMF is
// present: reflective metamodel definition, model instantiation, conformance
// checking, and the model-comparison operation that underpins the Synthesis
// layer's model comparator.
package metamodel

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind enumerates attribute value kinds.
type Kind int

// Attribute kinds. They start at 1 so the zero value is invalid and a
// forgotten Kind is caught by Metamodel.Validate.
const (
	KindString Kind = iota + 1
	KindInt
	KindFloat
	KindBool
	KindEnum
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindEnum:
		return "enum"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// kindFromString is the inverse of Kind.String, used by the JSON codec.
func kindFromString(s string) (Kind, error) {
	switch s {
	case "string":
		return KindString, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "bool":
		return KindBool, nil
	case "enum":
		return KindEnum, nil
	default:
		return 0, fmt.Errorf("unknown attribute kind %q", s)
	}
}

// Attribute describes a scalar feature of a class.
type Attribute struct {
	Name     string
	Kind     Kind
	EnumType string // name of the enum when Kind == KindEnum
	Required bool
	Default  any // applied during validation when the attribute is unset
}

// Reference describes a link feature of a class.
type Reference struct {
	Name        string
	Target      string // target class name
	Containment bool   // target objects are owned by the source
	Many        bool   // upper bound > 1
	Required    bool   // lower bound 1
}

// Class describes a metamodel class. Classes support single inheritance via
// Super and may be abstract (not instantiable).
type Class struct {
	Name       string
	Abstract   bool
	Super      string
	Attributes []Attribute
	References []Reference
}

// Enum is a named set of string literals.
type Enum struct {
	Name     string
	Literals []string
}

// Has reports whether lit is a literal of the enum.
func (e *Enum) Has(lit string) bool {
	for _, l := range e.Literals {
		if l == lit {
			return true
		}
	}
	return false
}

// Metamodel is a named collection of classes and enums.
//
// A Metamodel must not be mutated (AddClass/AddEnum) concurrently with use;
// the version counter below relies on the same discipline as the maps.
type Metamodel struct {
	Name    string
	classes map[string]*Class
	enums   map[string]*Enum

	// version counts structural mutations so the lazily compiled form and
	// the canonical encoding can detect staleness and rebuild.
	version  uint64
	compiled atomic.Pointer[compileSlot]
	canon    atomic.Pointer[canonSlot]
}

// New returns an empty metamodel.
func New(name string) *Metamodel {
	return &Metamodel{
		Name:    name,
		classes: make(map[string]*Class),
		enums:   make(map[string]*Enum),
	}
}

// AddClass registers a class. It returns an error on duplicate names.
func (m *Metamodel) AddClass(c *Class) error {
	if c.Name == "" {
		return fmt.Errorf("metamodel %s: class with empty name", m.Name)
	}
	if _, ok := m.classes[c.Name]; ok {
		return fmt.Errorf("metamodel %s: duplicate class %q", m.Name, c.Name)
	}
	m.classes[c.Name] = c
	m.version++
	return nil
}

// MustAddClass is AddClass that panics on error. It is intended for
// package-level metamodel construction where a failure is a programming bug.
func (m *Metamodel) MustAddClass(c *Class) *Class {
	if err := m.AddClass(c); err != nil {
		panic(err)
	}
	return c
}

// AddEnum registers an enum. It returns an error on duplicate names.
func (m *Metamodel) AddEnum(e *Enum) error {
	if e.Name == "" {
		return fmt.Errorf("metamodel %s: enum with empty name", m.Name)
	}
	if _, ok := m.enums[e.Name]; ok {
		return fmt.Errorf("metamodel %s: duplicate enum %q", m.Name, e.Name)
	}
	m.enums[e.Name] = e
	m.version++
	return nil
}

// MustAddEnum is AddEnum that panics on error.
func (m *Metamodel) MustAddEnum(e *Enum) *Enum {
	if err := m.AddEnum(e); err != nil {
		panic(err)
	}
	return e
}

// Class returns the named class, or nil if absent.
func (m *Metamodel) Class(name string) *Class { return m.classes[name] }

// Enum returns the named enum, or nil if absent.
func (m *Metamodel) Enum(name string) *Enum { return m.enums[name] }

// ClassNames returns all class names in sorted order.
func (m *Metamodel) ClassNames() []string {
	names := make([]string, 0, len(m.classes))
	for n := range m.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EnumNames returns all enum names in sorted order.
func (m *Metamodel) EnumNames() []string {
	names := make([]string, 0, len(m.enums))
	for n := range m.enums {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsSubclassOf reports whether class sub equals class super or inherits from
// it (transitively). Unknown classes are never subclasses.
func (m *Metamodel) IsSubclassOf(sub, super string) bool {
	for c := m.classes[sub]; c != nil; c = m.classes[c.Super] {
		if c.Name == super {
			return true
		}
		if c.Super == "" {
			return false
		}
	}
	return false
}

// AllAttributes returns the attributes of the class including inherited ones,
// base-most first. It returns nil for unknown classes.
func (m *Metamodel) AllAttributes(class string) []Attribute {
	chain := m.superChain(class)
	if chain == nil {
		return nil
	}
	var out []Attribute
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].Attributes...)
	}
	return out
}

// AllReferences returns the references of the class including inherited ones,
// base-most first. It returns nil for unknown classes.
func (m *Metamodel) AllReferences(class string) []Reference {
	chain := m.superChain(class)
	if chain == nil {
		return nil
	}
	var out []Reference
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].References...)
	}
	return out
}

// FindAttribute resolves a named attribute on class, searching the
// inheritance chain. The boolean result reports whether it was found.
func (m *Metamodel) FindAttribute(class, name string) (Attribute, bool) {
	for _, a := range m.AllAttributes(class) {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// FindReference resolves a named reference on class, searching the
// inheritance chain. The boolean result reports whether it was found.
func (m *Metamodel) FindReference(class, name string) (Reference, bool) {
	for _, r := range m.AllReferences(class) {
		if r.Name == name {
			return r, true
		}
	}
	return Reference{}, false
}

// superChain returns the class and its ancestors, derived-most first. It
// returns nil for unknown classes or on an inheritance cycle (Validate
// reports cycles properly; here we just refuse to loop).
func (m *Metamodel) superChain(class string) []*Class {
	var chain []*Class
	seen := make(map[string]bool)
	for c := m.classes[class]; c != nil; c = m.classes[c.Super] {
		if seen[c.Name] {
			return nil
		}
		seen[c.Name] = true
		chain = append(chain, c)
		if c.Super == "" {
			break
		}
	}
	if len(chain) == 0 {
		return nil
	}
	return chain
}

// Validate checks the structural well-formedness of the metamodel itself:
// resolvable supertypes, acyclic inheritance, resolvable reference targets
// and enum types, sane attribute kinds, and feature-name uniqueness across
// each inheritance chain.
func (m *Metamodel) Validate() error {
	var errs errorList
	for _, name := range m.ClassNames() {
		c := m.classes[name]
		if c.Super != "" && m.classes[c.Super] == nil {
			errs.addf("class %s: unknown supertype %q", name, c.Super)
		}
		if m.hasInheritanceCycle(name) {
			errs.addf("class %s: inheritance cycle", name)
			continue
		}
		featSeen := make(map[string]string)
		for _, a := range m.AllAttributes(name) {
			if a.Name == "" {
				errs.addf("class %s: attribute with empty name", name)
				continue
			}
			if prev, dup := featSeen[a.Name]; dup {
				errs.addf("class %s: feature %q declared twice (%s)", name, a.Name, prev)
			}
			featSeen[a.Name] = "attribute"
			switch a.Kind {
			case KindString, KindInt, KindFloat, KindBool:
			case KindEnum:
				if m.enums[a.EnumType] == nil {
					errs.addf("class %s: attribute %s: unknown enum %q", name, a.Name, a.EnumType)
				}
			default:
				errs.addf("class %s: attribute %s: invalid kind %v", name, a.Name, a.Kind)
			}
			if a.Default != nil {
				if err := m.checkValue(a, a.Default); err != nil {
					errs.addf("class %s: attribute %s: bad default: %v", name, a.Name, err)
				}
			}
		}
		for _, r := range m.AllReferences(name) {
			if r.Name == "" {
				errs.addf("class %s: reference with empty name", name)
				continue
			}
			if prev, dup := featSeen[r.Name]; dup {
				errs.addf("class %s: feature %q declared twice (%s)", name, r.Name, prev)
			}
			featSeen[r.Name] = "reference"
			if m.classes[r.Target] == nil {
				errs.addf("class %s: reference %s: unknown target class %q", name, r.Name, r.Target)
			}
		}
	}
	return errs.err()
}

func (m *Metamodel) hasInheritanceCycle(class string) bool {
	seen := make(map[string]bool)
	for c := m.classes[class]; c != nil; c = m.classes[c.Super] {
		if seen[c.Name] {
			return true
		}
		seen[c.Name] = true
		if c.Super == "" {
			return false
		}
	}
	return false
}

// checkValue verifies that v is assignable to attribute a.
func (m *Metamodel) checkValue(a Attribute, v any) error {
	switch a.Kind {
	case KindString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("want string, got %T", v)
		}
	case KindInt:
		// float64 is accepted when integral because JSON decodes all
		// numbers as float64.
		if _, err := NormalizeValue(KindInt, v); err != nil {
			return err
		}
	case KindFloat:
		switch v.(type) {
		case float64, int, int64:
		default:
			return fmt.Errorf("want float, got %T", v)
		}
	case KindBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("want bool, got %T", v)
		}
	case KindEnum:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("want enum literal string, got %T", v)
		}
		e := m.enums[a.EnumType]
		if e == nil {
			return fmt.Errorf("unknown enum %q", a.EnumType)
		}
		if !e.Has(s) {
			return fmt.Errorf("%q is not a literal of enum %s", s, a.EnumType)
		}
	default:
		return fmt.Errorf("invalid kind %v", a.Kind)
	}
	return nil
}

// NormalizeValue coerces v to the canonical in-memory representation for
// attribute kind k (int64 for ints, float64 for floats). It returns an error
// when v cannot represent the kind.
func NormalizeValue(k Kind, v any) (any, error) {
	switch k {
	case KindString, KindEnum:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", v)
		}
		return s, nil
	case KindInt:
		switch n := v.(type) {
		case int:
			return int64(n), nil
		case int64:
			return n, nil
		case float64:
			if n == float64(int64(n)) {
				return int64(n), nil
			}
			return nil, fmt.Errorf("non-integral value %v for int attribute", n)
		default:
			return nil, fmt.Errorf("want int, got %T", v)
		}
	case KindFloat:
		switch n := v.(type) {
		case float64:
			return n, nil
		case int:
			return float64(n), nil
		case int64:
			return float64(n), nil
		default:
			return nil, fmt.Errorf("want float, got %T", v)
		}
	case KindBool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", v)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("invalid kind %v", k)
	}
}

// errorList accumulates validation problems and renders them as one error.
type errorList struct {
	msgs []string
}

func (e *errorList) addf(format string, args ...any) {
	e.msgs = append(e.msgs, fmt.Sprintf(format, args...))
}

func (e *errorList) err() error {
	if len(e.msgs) == 0 {
		return nil
	}
	return &ValidationError{Problems: e.msgs}
}

// ValidationError reports one or more validation problems.
type ValidationError struct {
	Problems []string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if len(e.Problems) == 1 {
		return e.Problems[0]
	}
	return fmt.Sprintf("%d problems: %s (and %d more)", len(e.Problems), e.Problems[0], len(e.Problems)-1)
}
