package metamodel

import (
	"strings"
	"testing"
)

// libraryMM builds a small metamodel used across tests.
func libraryMM(t *testing.T) *Metamodel {
	t.Helper()
	m := New("library")
	m.MustAddEnum(&Enum{Name: "Genre", Literals: []string{"fiction", "science", "history"}})
	m.MustAddClass(&Class{Name: "Named", Abstract: true, Attributes: []Attribute{
		{Name: "name", Kind: KindString, Required: true},
	}})
	m.MustAddClass(&Class{Name: "Library", Super: "Named", References: []Reference{
		{Name: "books", Target: "Book", Containment: true, Many: true},
		{Name: "members", Target: "Member", Containment: true, Many: true},
	}})
	m.MustAddClass(&Class{Name: "Book", Super: "Named", Attributes: []Attribute{
		{Name: "genre", Kind: KindEnum, EnumType: "Genre", Required: true},
		{Name: "pages", Kind: KindInt, Default: 100},
		{Name: "rating", Kind: KindFloat},
		{Name: "lent", Kind: KindBool, Default: false},
	}, References: []Reference{
		{Name: "borrower", Target: "Member"},
	}})
	m.MustAddClass(&Class{Name: "Member", Super: "Named"})
	if err := m.Validate(); err != nil {
		t.Fatalf("libraryMM should validate: %v", err)
	}
	return m
}

func TestMetamodelValidateOK(t *testing.T) {
	libraryMM(t)
}

func TestMetamodelDuplicateClass(t *testing.T) {
	m := New("x")
	if err := m.AddClass(&Class{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddClass(&Class{Name: "A"}); err == nil {
		t.Fatal("want duplicate-class error")
	}
}

func TestMetamodelDuplicateEnum(t *testing.T) {
	m := New("x")
	if err := m.AddEnum(&Enum{Name: "E", Literals: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddEnum(&Enum{Name: "E"}); err == nil {
		t.Fatal("want duplicate-enum error")
	}
}

func TestMetamodelValidateErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func(m *Metamodel)
		want  string
	}{
		{
			name: "unknown supertype",
			build: func(m *Metamodel) {
				m.MustAddClass(&Class{Name: "A", Super: "Missing"})
			},
			want: "unknown supertype",
		},
		{
			name: "inheritance cycle",
			build: func(m *Metamodel) {
				m.MustAddClass(&Class{Name: "A", Super: "B"})
				m.MustAddClass(&Class{Name: "B", Super: "A"})
			},
			want: "inheritance cycle",
		},
		{
			name: "unknown reference target",
			build: func(m *Metamodel) {
				m.MustAddClass(&Class{Name: "A", References: []Reference{{Name: "r", Target: "Nope"}}})
			},
			want: "unknown target class",
		},
		{
			name: "unknown enum",
			build: func(m *Metamodel) {
				m.MustAddClass(&Class{Name: "A", Attributes: []Attribute{
					{Name: "a", Kind: KindEnum, EnumType: "Nope"},
				}})
			},
			want: "unknown enum",
		},
		{
			name: "invalid kind",
			build: func(m *Metamodel) {
				m.MustAddClass(&Class{Name: "A", Attributes: []Attribute{{Name: "a"}}})
			},
			want: "invalid kind",
		},
		{
			name: "duplicate feature across hierarchy",
			build: func(m *Metamodel) {
				m.MustAddClass(&Class{Name: "A", Attributes: []Attribute{{Name: "x", Kind: KindInt}}})
				m.MustAddClass(&Class{Name: "B", Super: "A", Attributes: []Attribute{{Name: "x", Kind: KindInt}}})
			},
			want: "declared twice",
		},
		{
			name: "bad default",
			build: func(m *Metamodel) {
				m.MustAddClass(&Class{Name: "A", Attributes: []Attribute{
					{Name: "a", Kind: KindInt, Default: "nope"},
				}})
			},
			want: "bad default",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := New("x")
			tt.build(m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tt.want)
			}
			var ve *ValidationError
			if !asValidation(err, &ve) {
				t.Fatalf("want *ValidationError, got %T", err)
			}
			if !containsProblem(ve, tt.want) {
				t.Fatalf("want problem containing %q, got %v", tt.want, ve.Problems)
			}
		})
	}
}

func asValidation(err error, out **ValidationError) bool {
	ve, ok := err.(*ValidationError)
	if ok {
		*out = ve
	}
	return ok
}

func containsProblem(ve *ValidationError, substr string) bool {
	for _, p := range ve.Problems {
		if strings.Contains(p, substr) {
			return true
		}
	}
	return false
}

func TestSubclassAndFeatureResolution(t *testing.T) {
	m := libraryMM(t)
	if !m.IsSubclassOf("Book", "Named") {
		t.Error("Book should be a subclass of Named")
	}
	if !m.IsSubclassOf("Book", "Book") {
		t.Error("a class is a subclass of itself")
	}
	if m.IsSubclassOf("Named", "Book") {
		t.Error("Named must not be a subclass of Book")
	}
	if m.IsSubclassOf("Nope", "Named") {
		t.Error("unknown class is never a subclass")
	}
	attrs := m.AllAttributes("Book")
	if len(attrs) != 5 {
		t.Fatalf("Book should have 5 attributes (1 inherited), got %d", len(attrs))
	}
	if attrs[0].Name != "name" {
		t.Errorf("inherited attribute should come first, got %q", attrs[0].Name)
	}
	if _, ok := m.FindAttribute("Book", "genre"); !ok {
		t.Error("genre should resolve on Book")
	}
	if _, ok := m.FindAttribute("Book", "nope"); ok {
		t.Error("nope should not resolve")
	}
	if r, ok := m.FindReference("Library", "books"); !ok || !r.Containment {
		t.Error("books should resolve as a containment reference")
	}
}

func sampleModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel("library")
	lib := m.NewObject("lib", "Library")
	lib.SetAttr("name", "City Library")
	lib.SetRef("books", "b1", "b2")
	lib.SetRef("members", "m1")
	m.NewObject("b1", "Book").
		SetAttr("name", "Dune").
		SetAttr("genre", "fiction").
		SetAttr("pages", 412).
		SetRef("borrower", "m1")
	m.NewObject("b2", "Book").
		SetAttr("name", "Cosmos").
		SetAttr("genre", "science").
		SetAttr("rating", 4.5)
	m.NewObject("m1", "Member").SetAttr("name", "Ada")
	return m
}

func TestModelValidateOK(t *testing.T) {
	mm := libraryMM(t)
	m := sampleModel(t)
	if err := m.Validate(mm); err != nil {
		t.Fatalf("model should validate: %v", err)
	}
	// Defaults applied.
	if got := m.Get("b2").IntAttr("pages"); got != 100 {
		t.Errorf("default pages: got %d, want 100", got)
	}
	if lent, ok := m.Get("b1").Attr("lent"); !ok || lent != false {
		t.Errorf("default lent: got %v,%v", lent, ok)
	}
}

func TestModelValidateErrors(t *testing.T) {
	mm := libraryMM(t)
	tests := []struct {
		name  string
		build func(m *Model)
		want  string
	}{
		{
			name:  "unknown class",
			build: func(m *Model) { m.NewObject("x", "Nope") },
			want:  "unknown class",
		},
		{
			name:  "abstract class",
			build: func(m *Model) { m.NewObject("x", "Named").SetAttr("name", "n") },
			want:  "is abstract",
		},
		{
			name:  "missing required attr",
			build: func(m *Model) { m.NewObject("x", "Member") },
			want:  "required attribute",
		},
		{
			name: "unknown attr",
			build: func(m *Model) {
				m.NewObject("x", "Member").SetAttr("name", "n").SetAttr("zzz", 1)
			},
			want: "unknown attribute",
		},
		{
			name: "wrong attr type",
			build: func(m *Model) {
				m.NewObject("x", "Member").SetAttr("name", 42)
			},
			want: "want string",
		},
		{
			name: "bad enum literal",
			build: func(m *Model) {
				m.NewObject("x", "Book").SetAttr("name", "n").SetAttr("genre", "poetry")
			},
			want: "not a literal",
		},
		{
			name: "dangling reference",
			build: func(m *Model) {
				m.NewObject("x", "Book").SetAttr("name", "n").SetAttr("genre", "fiction").
					SetRef("borrower", "ghost")
			},
			want: "dangling target",
		},
		{
			name: "wrong target class",
			build: func(m *Model) {
				m.NewObject("x", "Book").SetAttr("name", "n").SetAttr("genre", "fiction").
					SetRef("borrower", "y")
				m.NewObject("y", "Book").SetAttr("name", "n2").SetAttr("genre", "fiction")
			},
			want: "want Member",
		},
		{
			name: "cardinality",
			build: func(m *Model) {
				m.NewObject("x", "Book").SetAttr("name", "n").SetAttr("genre", "fiction").
					SetRef("borrower", "y", "z")
				m.NewObject("y", "Member").SetAttr("name", "a")
				m.NewObject("z", "Member").SetAttr("name", "b")
			},
			want: "single-valued",
		},
		{
			name: "double containment",
			build: func(m *Model) {
				m.NewObject("l1", "Library").SetAttr("name", "a").SetRef("books", "b")
				m.NewObject("l2", "Library").SetAttr("name", "b").SetRef("books", "b")
				m.NewObject("b", "Book").SetAttr("name", "n").SetAttr("genre", "fiction")
			},
			want: "contained by both",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := NewModel("library")
			tt.build(m)
			err := m.Validate(mm)
			if err == nil {
				t.Fatalf("want error containing %q", tt.want)
			}
			var ve *ValidationError
			if !asValidation(err, &ve) {
				t.Fatalf("want *ValidationError, got %T", err)
			}
			if !containsProblem(ve, tt.want) {
				t.Fatalf("want problem containing %q, got %v", tt.want, ve.Problems)
			}
		})
	}
}

func TestContainmentCycle(t *testing.T) {
	mm := New("cyc")
	mm.MustAddClass(&Class{Name: "Node", References: []Reference{
		{Name: "child", Target: "Node", Containment: true, Many: true},
	}})
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewModel("cyc")
	m.NewObject("a", "Node").SetRef("child", "b")
	m.NewObject("b", "Node").SetRef("child", "a")
	err := m.Validate(mm)
	if err == nil || !strings.Contains(err.Error(), "containment cycle") {
		t.Fatalf("want containment cycle error, got %v", err)
	}
}

func TestObjectAccessors(t *testing.T) {
	o := NewObject("x", "C")
	o.SetAttr("i", 7).SetAttr("f", 2.5).SetAttr("b", true).SetAttr("s", "hi")
	if o.IntAttr("i") != 7 {
		t.Error("IntAttr")
	}
	if o.FloatAttr("f") != 2.5 {
		t.Error("FloatAttr")
	}
	if !o.BoolAttr("b") {
		t.Error("BoolAttr")
	}
	if o.StringAttr("s") != "hi" {
		t.Error("StringAttr")
	}
	// Cross-kind coercion in accessors.
	if o.FloatAttr("i") != 7.0 {
		t.Error("FloatAttr on int")
	}
	if o.IntAttr("f") != 2 {
		t.Error("IntAttr on float truncates")
	}
	// Unset values yield zero values.
	if o.IntAttr("nope") != 0 || o.StringAttr("nope") != "" || o.BoolAttr("nope") {
		t.Error("unset attribute accessors should return zero values")
	}
	o.AddRef("r", "a").AddRef("r", "b").AddRef("r", "a")
	if got := o.Refs("r"); len(got) != 2 {
		t.Errorf("AddRef must dedupe: %v", got)
	}
	o.RemoveRef("r", "a")
	if got := o.Refs("r"); len(got) != 1 || got[0] != "b" {
		t.Errorf("RemoveRef: %v", got)
	}
	if o.Ref("r") != "b" {
		t.Error("Ref single")
	}
	if o.Ref("empty") != "" {
		t.Error("Ref on empty")
	}
}

func TestModelOperations(t *testing.T) {
	m := sampleModel(t)
	if m.Len() != 4 {
		t.Fatalf("Len: %d", m.Len())
	}
	if err := m.Add(NewObject("lib", "Library")); err == nil {
		t.Error("duplicate ID must error")
	}
	if err := m.Add(NewObject("", "Library")); err == nil {
		t.Error("empty ID must error")
	}
	if err := m.Delete("ghost"); err == nil {
		t.Error("deleting absent object must error")
	}
	if err := m.Delete("b2"); err != nil {
		t.Error(err)
	}
	if m.Get("b2") != nil {
		t.Error("b2 should be gone")
	}
	if got := len(m.ObjectsOf("Book")); got != 1 {
		t.Errorf("ObjectsOf(Book): %d", got)
	}
	mm := libraryMM(t)
	if got := len(m.ObjectsKindOf(mm, "Named")); got != 3 {
		t.Errorf("ObjectsKindOf(Named): %d", got)
	}
	lib := m.Get("lib")
	if got := m.Resolve(lib, "books"); len(got) != 1 || got[0].ID != "b1" {
		t.Errorf("Resolve skips dangling: %v", got)
	}
	if m.ResolveOne(m.Get("b1"), "borrower").ID != "m1" {
		t.Error("ResolveOne")
	}
	if m.ResolveOne(lib, "nothing") != nil {
		t.Error("ResolveOne on unset ref")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := sampleModel(t)
	c := m.Clone()
	c.Get("b1").SetAttr("name", "Changed")
	c.Get("lib").AddRef("books", "zzz")
	if m.Get("b1").StringAttr("name") != "Dune" {
		t.Error("clone mutated original attr")
	}
	if len(m.Get("lib").Refs("books")) != 2 {
		t.Error("clone mutated original refs")
	}
	if !Equal(m, m.Clone()) {
		t.Error("fresh clone must be Equal")
	}
}

func TestMetamodelCodecRoundtrip(t *testing.T) {
	mm := libraryMM(t)
	data, err := MarshalMetamodel(mm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMetamodel(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.ClassNames(), mm.ClassNames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("classes: got %v want %v", got, want)
	}
	b := back.Class("Book")
	if len(b.Attributes) != 4 || b.Super != "Named" {
		t.Errorf("Book round trip: %+v", b)
	}
	if a, _ := back.FindAttribute("Book", "pages"); a.Default == nil {
		t.Error("default lost in round trip")
	}
	if e := back.Enum("Genre"); e == nil || !e.Has("history") {
		t.Error("enum lost in round trip")
	}
}

func TestModelCodecRoundtrip(t *testing.T) {
	mm := libraryMM(t)
	m := sampleModel(t)
	if err := m.Validate(mm); err != nil {
		t.Fatal(err)
	}
	data, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(mm); err != nil {
		t.Fatalf("round-tripped model should validate: %v", err)
	}
	if !Equal(m, back) {
		t.Errorf("round trip not equal:\n%v\nvs\n%v", m.Objects(), back.Objects())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalMetamodel([]byte("{")); err == nil {
		t.Error("bad JSON must error")
	}
	if _, err := UnmarshalMetamodel([]byte(`{"name":"x","classes":[{"name":"A","attributes":[{"name":"a","kind":"zzz"}]}]}`)); err == nil {
		t.Error("bad kind must error")
	}
	if _, err := UnmarshalModel([]byte("[")); err == nil {
		t.Error("bad model JSON must error")
	}
	if _, err := UnmarshalModel([]byte(`{"metamodel":"x","objects":[{"id":"a","class":"C"},{"id":"a","class":"C"}]}`)); err == nil {
		t.Error("duplicate IDs must error")
	}
}

func TestNormalizeValue(t *testing.T) {
	tests := []struct {
		kind Kind
		in   any
		out  any
		ok   bool
	}{
		{KindInt, 5, int64(5), true},
		{KindInt, int64(5), int64(5), true},
		{KindInt, 5.0, int64(5), true},
		{KindInt, 5.5, nil, false},
		{KindInt, "5", nil, false},
		{KindFloat, 5, 5.0, true},
		{KindFloat, 2.5, 2.5, true},
		{KindFloat, "x", nil, false},
		{KindString, "a", "a", true},
		{KindString, 1, nil, false},
		{KindBool, true, true, true},
		{KindBool, "true", nil, false},
		{KindEnum, "lit", "lit", true},
		{Kind(99), "x", nil, false},
	}
	for _, tt := range tests {
		got, err := NormalizeValue(tt.kind, tt.in)
		if tt.ok && (err != nil || got != tt.out) {
			t.Errorf("NormalizeValue(%v, %v) = %v, %v; want %v", tt.kind, tt.in, got, err, tt.out)
		}
		if !tt.ok && err == nil {
			t.Errorf("NormalizeValue(%v, %v) should fail", tt.kind, tt.in)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindString, KindInt, KindFloat, KindBool, KindEnum}
	for _, k := range kinds {
		back, err := kindFromString(k.String())
		if err != nil || back != k {
			t.Errorf("kind round trip %v: %v, %v", k, back, err)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind String")
	}
	if _, err := kindFromString("zzz"); err == nil {
		t.Error("unknown kind name must error")
	}
}
