package metamodel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDiffIdentical(t *testing.T) {
	m := sampleModel(t)
	if cl := Diff(m, m.Clone()); !cl.Empty() {
		t.Fatalf("identical models must have an empty diff, got:\n%s", cl)
	}
}

func TestDiffAddRemoveObject(t *testing.T) {
	oldM := sampleModel(t)
	newM := oldM.Clone()
	newM.NewObject("b3", "Book").SetAttr("name", "SICP").SetAttr("genre", "science")
	newM.Get("lib").AddRef("books", "b3")
	if err := newM.Delete("b2"); err != nil {
		t.Fatal(err)
	}
	newM.Get("lib").RemoveRef("books", "b2")

	cl := Diff(oldM, newM)
	var kinds []string
	for _, c := range cl {
		kinds = append(kinds, c.Kind.String())
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "remove-object") || !strings.Contains(joined, "add-object") {
		t.Fatalf("diff should contain both add and remove: %s", cl)
	}
	// Removals must precede additions (teardown before setup).
	if strings.Index(joined, "remove-object") > strings.Index(joined, "add-object") {
		t.Errorf("removals must come before additions:\n%s", cl)
	}
}

func TestDiffAttrChanges(t *testing.T) {
	oldM := sampleModel(t)
	newM := oldM.Clone()
	newM.Get("b1").SetAttr("pages", 500)   // changed
	newM.Get("b1").SetAttr("rating", 3.5)  // added
	delete(newM.Get("b2").attrs, "rating") // removed
	cl := Diff(oldM, newM)
	if len(cl) != 3 {
		t.Fatalf("want 3 changes, got %d:\n%s", len(cl), cl)
	}
	var set, unset int
	for _, c := range cl {
		switch c.Kind {
		case ChangeSetAttr:
			set++
		case ChangeUnsetAttr:
			unset++
		}
	}
	if set != 2 || unset != 1 {
		t.Errorf("want 2 set + 1 unset, got %d set %d unset:\n%s", set, unset, cl)
	}
}

func TestDiffRefChanges(t *testing.T) {
	oldM := sampleModel(t)
	newM := oldM.Clone()
	newM.Get("b1").RemoveRef("borrower", "m1")
	newM.Get("b2").AddRef("borrower", "m1")
	cl := Diff(oldM, newM)
	if len(cl) != 2 {
		t.Fatalf("want 2 changes, got:\n%s", cl)
	}
}

func TestApplyReproducesDiff(t *testing.T) {
	oldM := sampleModel(t)
	newM := oldM.Clone()
	newM.NewObject("m2", "Member").SetAttr("name", "Grace")
	newM.Get("lib").AddRef("members", "m2")
	newM.Get("b1").SetAttr("lent", true)
	if err := newM.Delete("b2"); err != nil {
		t.Fatal(err)
	}
	newM.Get("lib").RemoveRef("books", "b2")

	cl := Diff(oldM, newM)
	work := oldM.Clone()
	if err := Apply(work, cl); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !Equal(work, newM) {
		t.Fatalf("apply(old, diff) != new\nwork:\n%v\nnew:\n%v", work.Objects(), newM.Objects())
	}
}

func TestApplyErrors(t *testing.T) {
	m := NewModel("x")
	if err := Apply(m, ChangeList{{Kind: ChangeRemoveObject, ObjectID: "ghost"}}); err == nil {
		t.Error("removing absent object must error")
	}
	if err := Apply(m, ChangeList{{Kind: ChangeSetAttr, ObjectID: "ghost", Feature: "a"}}); err == nil {
		t.Error("set-attr on absent object must error")
	}
	if err := Apply(m, ChangeList{{Kind: ChangeUnsetAttr, ObjectID: "ghost", Feature: "a"}}); err == nil {
		t.Error("unset-attr on absent object must error")
	}
	if err := Apply(m, ChangeList{{Kind: ChangeAddRef, ObjectID: "ghost", Feature: "r", Target: "t"}}); err == nil {
		t.Error("add-ref on absent object must error")
	}
	if err := Apply(m, ChangeList{{Kind: ChangeKind(99)}}); err == nil {
		t.Error("invalid kind must error")
	}
	// remove-ref on an absent object is tolerated (already-removed container).
	if err := Apply(m, ChangeList{{Kind: ChangeRemoveRef, ObjectID: "ghost", Feature: "r", Target: "t"}}); err != nil {
		t.Errorf("remove-ref on absent object should be tolerated: %v", err)
	}
}

func TestChangeStrings(t *testing.T) {
	cases := []Change{
		{Kind: ChangeAddObject, ObjectID: "a", Class: "C"},
		{Kind: ChangeRemoveObject, ObjectID: "a", Class: "C"},
		{Kind: ChangeSetAttr, ObjectID: "a", Feature: "f", Old: 1, New: 2},
		{Kind: ChangeUnsetAttr, ObjectID: "a", Feature: "f", Old: 1},
		{Kind: ChangeAddRef, ObjectID: "a", Feature: "r", Target: "t"},
		{Kind: ChangeRemoveRef, ObjectID: "a", Feature: "r", Target: "t"},
		{Kind: ChangeKind(42), ObjectID: "a"},
	}
	for _, c := range cases {
		if c.String() == "" {
			t.Errorf("empty String for %v", c.Kind)
		}
	}
	cl := ChangeList(cases[:2])
	if !strings.Contains(cl.String(), "\n") {
		t.Error("ChangeList.String should join with newlines")
	}
}

// randomModel builds a pseudo-random model over a tiny metamodel to drive
// the property tests.
func randomModel(r *rand.Rand, n int) *Model {
	m := NewModel("prop")
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("o%d", i)
		o := m.NewObject(id, "Node")
		if r.Intn(2) == 0 {
			o.SetAttr("w", r.Intn(5))
		}
		if r.Intn(3) == 0 {
			o.SetAttr("tag", fmt.Sprintf("t%d", r.Intn(3)))
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		o := m.Get(id)
		for k := 0; k < r.Intn(3); k++ {
			o.AddRef("next", ids[r.Intn(len(ids))])
		}
	}
	return m
}

// mutate applies random edits to a clone of m.
func mutate(r *rand.Rand, m *Model) *Model {
	out := m.Clone()
	ids := out.IDs()
	for i := 0; i < 1+r.Intn(6); i++ {
		switch op := r.Intn(5); {
		case op == 0: // add object
			id := fmt.Sprintf("n%d", r.Int63())
			out.NewObject(id, "Node").SetAttr("w", r.Intn(5))
			ids = append(ids, id)
		case op == 1 && len(ids) > 0: // remove object
			victim := ids[r.Intn(len(ids))]
			if out.Get(victim) != nil {
				_ = out.Delete(victim)
				for _, id := range out.IDs() {
					out.Get(id).RemoveRef("next", victim)
				}
			}
		case op == 2 && len(ids) > 0: // set attr
			id := ids[r.Intn(len(ids))]
			if o := out.Get(id); o != nil {
				o.SetAttr("w", r.Intn(9))
			}
		case op == 3 && len(ids) > 0: // unset attr
			id := ids[r.Intn(len(ids))]
			if o := out.Get(id); o != nil {
				delete(o.attrs, "w")
			}
		case op == 4 && len(ids) > 1: // toggle ref
			a := ids[r.Intn(len(ids))]
			b := ids[r.Intn(len(ids))]
			if oa := out.Get(a); oa != nil && out.Get(b) != nil {
				if r.Intn(2) == 0 {
					oa.AddRef("next", b)
				} else {
					oa.RemoveRef("next", b)
				}
			}
		}
	}
	return out
}

// Property: Apply(old, Diff(old, new)) is Equal to new — for arbitrary
// random model pairs.
func TestDiffApplyRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		oldM := randomModel(r, 2+r.Intn(10))
		newM := mutate(r, oldM)
		cl := Diff(oldM, newM)
		work := oldM.Clone()
		if err := Apply(work, cl); err != nil {
			t.Logf("seed %d: apply error: %v\ndiff:\n%s", seed, err, cl)
			return false
		}
		if !Equal(work, newM) {
			t.Logf("seed %d: mismatch\ndiff:\n%s", seed, cl)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Diff(m, m) is empty for arbitrary models.
func TestDiffSelfEmptyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, 1+r.Intn(12))
		return Diff(m, m.Clone()).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equal is symmetric and detects the first mutation.
func TestEqualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomModel(r, 2+r.Intn(8))
		b := mutate(r, a)
		eq := Equal(a, b)
		if eq != Equal(b, a) {
			return false
		}
		// Equal iff empty diff.
		return eq == Diff(a, b).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffWithContainmentOrdersChildrenFirst(t *testing.T) {
	mm := libraryMM(t)
	oldM := sampleModel(t)
	// Remove the library and everything it contains.
	newM := NewModel("library")
	cl := DiffWithContainment(oldM, newM, mm)

	pos := map[string]int{}
	for i, c := range cl {
		if c.Kind == ChangeRemoveObject {
			pos[c.ObjectID] = i
		}
	}
	// Books and members are contained in the library: they must be removed
	// before it, even though "lib" sorts before "m1" alphabetically.
	for _, child := range []string{"b1", "b2", "m1"} {
		if pos[child] > pos["lib"] {
			t.Errorf("child %s removed after its container:\n%s", child, cl)
		}
	}
	// Plain Diff keeps pure ID order (the historical behaviour).
	plain := Diff(oldM, newM)
	first := ""
	for _, c := range plain {
		if c.Kind == ChangeRemoveObject {
			first = c.ObjectID
			break
		}
	}
	if first != "b1" {
		t.Errorf("plain diff first removal: %s", first)
	}
}

func TestContainmentDepthsTolerateCycles(t *testing.T) {
	mm := New("cyc")
	mm.MustAddClass(&Class{Name: "Node", References: []Reference{
		{Name: "child", Target: "Node", Containment: true, Many: true},
	}})
	m := NewModel("cyc")
	m.NewObject("a", "Node").SetRef("child", "b")
	m.NewObject("b", "Node").SetRef("child", "a") // invalid, but must not hang
	d := containmentDepths(m, mm)
	if len(d) != 2 {
		t.Fatalf("depths: %v", d)
	}
}

func TestDiffWithContainmentApplyRoundtrip(t *testing.T) {
	mm := libraryMM(t)
	oldM := sampleModel(t)
	newM := NewModel("library")
	newM.NewObject("m1", "Member").SetAttr("name", "Ada")
	cl := DiffWithContainment(oldM, newM, mm)
	work := oldM.Clone()
	if err := Apply(work, cl); err != nil {
		t.Fatalf("apply: %v\n%s", err, cl)
	}
	if !Equal(work, newM) {
		t.Fatal("containment-ordered diff must still apply cleanly")
	}
}

func BenchmarkDiffLargeModels(b *testing.B) {
	// 1000-object models differing in ~10% of objects: the Synthesis
	// model comparator's scaling case.
	build := func(mutate bool) *Model {
		m := NewModel("big")
		for i := 0; i < 1000; i++ {
			o := m.NewObject(fmt.Sprintf("o%d", i), "Node")
			v := i
			if mutate && i%10 == 0 {
				v = i + 1
			}
			o.SetAttr("w", v)
			if i > 0 {
				o.AddRef("next", fmt.Sprintf("o%d", i-1))
			}
		}
		return m
	}
	oldM, newM := build(false), build(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cl := Diff(oldM, newM); len(cl) != 100 {
			b.Fatalf("changes: %d", len(cl))
		}
	}
}
