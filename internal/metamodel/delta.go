// Incremental (delta) conformance validation: instead of re-walking — and,
// with the validation cache, re-hashing — the whole runtime model on every
// submission, a DeltaValidator keeps the previously validated model as its
// base, together with two O(model) indexes built once (an inbound
// reverse-reference index and the containment claim map), and checks a new
// model by validating only the objects a ChangeList touches. The untouched
// remainder was valid in the base and its validity can only be affected
// through the indexed structures:
//
//   - an untouched object's own attributes and references are unchanged, so
//     every per-object check still holds;
//   - its reference targets can only break by a touched object being
//     removed or reclassified — the inbound index names exactly the
//     referrers that must be rechecked;
//   - single containment can only break against a touched object's claims —
//     recomputed claims are merged with the standing claims of untouched
//     owners;
//   - a containment cycle must traverse at least one touched containment
//     edge (the base is acyclic), so walking up from changed edges decides
//     acyclicity.
//
// The verdict is byte-identical to CompiledMetamodel.Validate as a problem
// multiset: when a conflict or cycle is even possible, the validator drops
// to the exact full containment accounting (the model is about to be
// rejected anyway, so that path is not performance-sensitive).
package metamodel

import "sort"

// DeltaValidator validates successive models incrementally against a
// compiled metamodel. It is not safe for concurrent use; the owning layer
// serialises submissions anyway.
//
// Contract: the base model passed to NewDeltaValidator (and each model
// passed to Advance) must be in validated form — normalised values,
// defaults applied, no problems. Validate's changes must be the normalised
// change list from base to next (NormalizeChanges of a raw diff, or a diff
// between validated models), and next must equal base with those changes
// applied; untouched objects must be unmodified.
type DeltaValidator struct {
	cm   *CompiledMetamodel
	base *Model
	// inbound counts reference edges onto each target: target ID →
	// referrer ID → number of distinct references of that referrer holding
	// the target.
	inbound map[string]map[string]int
	// claims maps each contained object to its container; claimN counts
	// the parallel containment edges behind the claim (the same owner may
	// contain the same target through two references).
	claims map[string]string
	claimN map[string]int
	// ownerClaims inverts claims for the slow containment rebuild.
	ownerClaims map[string][]string
}

// NewDeltaValidator indexes a validated base model. The validator keeps a
// reference to base; the caller must not mutate it except through Advance.
func NewDeltaValidator(cm *CompiledMetamodel, base *Model) *DeltaValidator {
	dv := &DeltaValidator{
		cm:          cm,
		base:        base,
		inbound:     make(map[string]map[string]int),
		claims:      make(map[string]string),
		claimN:      make(map[string]int),
		ownerClaims: make(map[string][]string),
	}
	for _, id := range base.order {
		o := base.objects[id]
		cc := cm.classes[o.Class]
		for name, targets := range o.refs {
			isCont := false
			if cc != nil {
				if idx, ok := cc.refIndex[name]; ok {
					isCont = cc.refs[idx].containment
				}
			}
			var seen map[string]bool
			if len(targets) > 1 {
				seen = make(map[string]bool, len(targets))
			}
			for _, t := range targets {
				if seen != nil {
					if seen[t] {
						continue
					}
					seen[t] = true
				}
				dv.addInbound(t, id)
				if isCont {
					dv.setClaim(t, id)
				}
			}
		}
	}
	return dv
}

// Base returns the model the validator currently considers valid.
func (dv *DeltaValidator) Base() *Model { return dv.base }

func (dv *DeltaValidator) addInbound(target, referrer string) {
	m := dv.inbound[target]
	if m == nil {
		m = make(map[string]int, 1)
		dv.inbound[target] = m
	}
	m[referrer]++
}

func (dv *DeltaValidator) dropInbound(target, referrer string) {
	m := dv.inbound[target]
	if m == nil {
		return
	}
	if m[referrer]--; m[referrer] <= 0 {
		delete(m, referrer)
		if len(m) == 0 {
			delete(dv.inbound, target)
		}
	}
}

func (dv *DeltaValidator) setClaim(target, owner string) {
	if dv.claims[target] == owner {
		dv.claimN[target]++
		return
	}
	// A different-owner overwrite cannot occur on a validated model; this
	// path only installs first claims.
	dv.claims[target] = owner
	dv.claimN[target] = 1
	dv.ownerClaims[owner] = append(dv.ownerClaims[owner], target)
}

func (dv *DeltaValidator) dropClaim(target, owner string) {
	if dv.claims[target] != owner {
		return
	}
	if dv.claimN[target]--; dv.claimN[target] > 0 {
		return
	}
	delete(dv.claims, target)
	delete(dv.claimN, target)
	ts := dv.ownerClaims[owner]
	for i, t := range ts {
		if t == target {
			dv.ownerClaims[owner] = append(ts[:i:i], ts[i+1:]...)
			break
		}
	}
	if len(dv.ownerClaims[owner]) == 0 {
		delete(dv.ownerClaims, owner)
	}
}

// Validate checks next against the compiled metamodel by examining only
// the objects changes touch (plus the untouched referrers of removed or
// re-added objects). It applies the same normalising mutations to touched
// objects that a full validation would, and its verdict — nil or a
// ValidationError — carries the same problem multiset a full
// CompiledMetamodel.Validate of next would report. The validator's own
// state is not modified; call Advance after a nil verdict to move the base
// forward.
func (dv *DeltaValidator) Validate(next *Model, changes ChangeList) error {
	if len(changes) == 0 {
		return nil
	}
	touched := make(map[string]struct{}, len(changes))
	var structural []string
	for _, c := range changes {
		touched[c.ObjectID] = struct{}{}
		if c.Kind == ChangeRemoveObject || c.Kind == ChangeAddObject {
			structural = append(structural, c.ObjectID)
		}
	}
	check := make(map[string]struct{}, len(touched))
	for id := range touched {
		if next.objects[id] != nil {
			check[id] = struct{}{}
		}
	}
	for _, id := range structural {
		for ref := range dv.inbound[id] {
			if _, t := touched[ref]; t {
				continue
			}
			if next.objects[ref] != nil {
				check[ref] = struct{}{}
			}
		}
	}
	checkIDs := make([]string, 0, len(check))
	for id := range check {
		checkIDs = append(checkIDs, id)
	}
	sort.Strings(checkIDs)

	var errs errorList
	overlay := make(map[string][]string)        // target → claiming owners, dedup
	overlayByOwner := make(map[string][]string) // owner → claimed targets, dedup
	for _, id := range checkIDs {
		dv.cm.validateObject(next, id, next.objects[id], &errs, func(target, owner string) {
			for _, prev := range overlay[target] {
				if prev == owner {
					return
				}
			}
			overlay[target] = append(overlay[target], owner)
			overlayByOwner[owner] = append(overlayByOwner[owner], target)
		})
	}

	// Containment: merge the recomputed claims with the standing claims of
	// unchecked owners. More than one effective owner for any target — or
	// a cycle reachable from a changed edge — drops to the full
	// accounting, which reproduces the complete validator's conflict and
	// cycle messages exactly.
	slow := false
	for target, owners := range overlay {
		n := len(owners)
		if baseOwner, ok := dv.claims[target]; ok {
			if _, rechecked := check[baseOwner]; !rechecked {
				n++
			}
		}
		if n > 1 {
			slow = true
			break
		}
	}
	if !slow {
		slow = dv.cycleFromChangedEdges(check, overlay)
	}
	if slow {
		dv.slowContainment(next, check, overlayByOwner, &errs)
	}
	return errs.err()
}

// cycleFromChangedEdges reports whether any containment cycle exists in
// next, assuming no ownership conflicts (every contained object has exactly
// one effective container). The base is acyclic, so any cycle must pass
// through an edge that is new or redirected relative to the base; walking
// up from each such edge visits the whole cycle.
func (dv *DeltaValidator) cycleFromChangedEdges(check map[string]struct{}, overlay map[string][]string) bool {
	effContainer := func(x string) string {
		if owners, ok := overlay[x]; ok {
			return owners[0]
		}
		if owner, ok := dv.claims[x]; ok {
			if _, rechecked := check[owner]; !rechecked {
				return owner
			}
		}
		return ""
	}
	for target, owners := range overlay {
		owner := owners[0]
		if dv.claims[target] == owner {
			continue // edge unchanged from the (acyclic) base
		}
		seen := map[string]bool{target: true}
		for cur := owner; cur != ""; cur = effContainer(cur) {
			if seen[cur] {
				return true
			}
			seen[cur] = true
		}
	}
	return false
}

// slowContainment rebuilds the complete contained → container map the way
// the full validator does — every object in next.order, checked objects
// contributing their recomputed claims, unchecked ones their standing base
// claims — emitting the identical conflict messages inline and running the
// identical cycle walk.
func (dv *DeltaValidator) slowContainment(next *Model, check map[string]struct{}, overlayByOwner map[string][]string, errs *errorList) {
	container := make(map[string]string)
	for _, id := range next.order {
		targets := dv.ownerClaims[id]
		if _, ok := check[id]; ok {
			targets = overlayByOwner[id]
		}
		for _, t := range targets {
			if prev, owned := container[t]; owned && prev != id {
				errs.addf("object %s: contained by both %s and %s", t, prev, id)
			}
			container[t] = id
		}
	}
	containmentCycles(container, errs)
}

// Advance moves the base forward to next, updating the indexes in
// O(changes). Call it only after Validate(next, changes) returned nil.
func (dv *DeltaValidator) Advance(next *Model, changes ChangeList) {
	for _, c := range changes {
		switch c.Kind {
		case ChangeAddRef:
			dv.addInbound(c.Target, c.ObjectID)
			if dv.isContainment(c.Class, c.Feature) {
				dv.setClaim(c.Target, c.ObjectID)
			}
		case ChangeRemoveRef:
			dv.dropInbound(c.Target, c.ObjectID)
			if dv.isContainment(c.Class, c.Feature) {
				dv.dropClaim(c.Target, c.ObjectID)
			}
		case ChangeRemoveObject:
			// Its outgoing edges were dropped by the preceding RemoveRef
			// changes and surviving referrers dropped theirs; clear any
			// residue defensively.
			delete(dv.inbound, c.ObjectID)
			delete(dv.ownerClaims, c.ObjectID)
		}
	}
	dv.base = next
}

func (dv *DeltaValidator) isContainment(class, feature string) bool {
	cc := dv.cm.classes[class]
	if cc == nil {
		return false
	}
	idx, ok := cc.refIndex[feature]
	if !ok {
		return false
	}
	return cc.refs[idx].containment
}

// NormalizeChanges rewrites a raw change list — a DiffWithContainment
// between the validated current model and an UNVALIDATED submission — into
// the change list a validate-then-diff would have produced: attribute
// values are coerced to their canonical representations, changes that
// normalisation turns into no-ops are dropped, unsetting a defaulted
// attribute becomes re-setting the default (or disappears when the default
// already held), and added objects gain the sorted default assignments a
// full validation would have materialised. Changes that cannot be
// normalised (unknown classes or features, uncoercible values) pass
// through untouched so validation of the applied result reports them.
func NormalizeChanges(cm *CompiledMetamodel, base *Model, raw ChangeList) ChangeList {
	out := make(ChangeList, 0, len(raw))
	for i := 0; i < len(raw); {
		c := raw[i]
		switch c.Kind {
		case ChangeAddObject:
			out = append(out, c)
			i++
			run := raw[i:i:i]
			for i < len(raw) && raw[i].Kind == ChangeSetAttr && raw[i].ObjectID == c.ObjectID {
				run = append(run, raw[i])
				i++
			}
			out = appendAddedAttrs(out, cm, c, run)
		case ChangeSetAttr:
			if nc, keep := normalizeSet(cm, c); keep {
				out = append(out, nc)
			}
			i++
		case ChangeUnsetAttr:
			if nc, keep := normalizeUnset(cm, c); keep {
				out = append(out, nc)
			}
			i++
		default:
			out = append(out, c)
			i++
		}
	}
	return out
}

// appendAddedAttrs merges an added object's explicit attribute assignments
// (normalised where possible) with the defaults a full validation would
// apply, sorted by feature name — matching the SetAttr run a diff against
// the validated model emits after the ChangeAddObject.
func appendAddedAttrs(out ChangeList, cm *CompiledMetamodel, add Change, run ChangeList) ChangeList {
	cc := cm.classes[add.Class]
	if cc == nil {
		return append(out, run...)
	}
	merged := make(ChangeList, 0, len(run)+2)
	explicit := make(map[string]struct{}, len(run))
	for _, c := range run {
		explicit[c.Feature] = struct{}{}
		if idx, ok := cc.attrIndex[c.Feature]; ok {
			if nv, err := cc.attrs[idx].norm(c.New); err == nil {
				c.New = nv
			}
		}
		merged = append(merged, c)
	}
	for i := range cc.attrs {
		ca := &cc.attrs[i]
		if ca.def == nil {
			continue
		}
		if _, set := explicit[ca.name]; set {
			continue
		}
		merged = append(merged, Change{
			Kind: ChangeSetAttr, ObjectID: add.ObjectID, Class: add.Class,
			Feature: ca.name, New: ca.def,
		})
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Feature < merged[j].Feature })
	return append(out, merged...)
}

// normalizeSet coerces a surviving object's new attribute value; the change
// is dropped when the canonical value equals the old one (the raw diff only
// saw a difference because of representation).
func normalizeSet(cm *CompiledMetamodel, c Change) (Change, bool) {
	cc := cm.classes[c.Class]
	if cc == nil {
		return c, true
	}
	idx, ok := cc.attrIndex[c.Feature]
	if !ok {
		return c, true
	}
	nv, err := cc.attrs[idx].norm(c.New)
	if err != nil {
		return c, true
	}
	if c.Old != nil && nv == c.Old {
		return c, false
	}
	c.New = nv
	return c, true
}

// normalizeUnset maps unsetting a defaulted attribute to what a full
// validation makes of it: the default re-materialises, so the change is a
// SetAttr back to the default — or nothing, when the default already held.
func normalizeUnset(cm *CompiledMetamodel, c Change) (Change, bool) {
	cc := cm.classes[c.Class]
	if cc == nil {
		return c, true
	}
	idx, ok := cc.attrIndex[c.Feature]
	if !ok {
		return c, true
	}
	def := cc.attrs[idx].def
	if def == nil {
		return c, true
	}
	if c.Old == def {
		return c, false
	}
	return Change{
		Kind: ChangeSetAttr, ObjectID: c.ObjectID, Class: c.Class,
		Feature: c.Feature, Old: c.Old, New: def,
	}, true
}
