package metamodel

import (
	"fmt"
	"math/rand"
	"testing"
)

// Delta-validation differential tests: a DeltaValidator advancing through a
// sequence of change lists must agree with a full compiled validation of
// each resulting model — same verdict, same problem multiset, same
// normalising mutations — and NormalizeChanges must rewrite a raw diff of
// an unvalidated submission into exactly the change list a
// validate-then-diff produces.

// mutateModel applies a few random mutations to m — valid and invalid
// alike: added/removed/reclassified objects, attribute writes of right and
// wrong kinds, unknown features, reference edits including dangling
// targets, containment conflicts and containment cycles.
func mutateModel(rng *rand.Rand, m *Model, mm *Metamodel) {
	names := mm.ClassNames()
	randID := func() string {
		ids := m.IDs()
		if len(ids) == 0 {
			return ""
		}
		return ids[rng.Intn(len(ids))]
	}
	for n := 1 + rng.Intn(4); n > 0; n-- {
		switch rng.Intn(9) {
		case 0: // add object
			class := names[rng.Intn(len(names))]
			if rng.Intn(10) == 0 {
				class = "Ghost"
			}
			id := fmt.Sprintf("n%d", rng.Intn(1000))
			if m.Get(id) != nil {
				continue
			}
			o := m.NewObject(id, class)
			for _, a := range mm.AllAttributes(class) {
				switch rng.Intn(4) {
				case 0: // unset → default / required check
				case 1:
					o.SetAttr(a.Name, wrongValue(rng, a.Kind))
				default:
					o.SetAttr(a.Name, defaultFor(rng, mm, a))
				}
			}
		case 1: // remove object (referrers may dangle)
			if id := randID(); id != "" {
				_ = m.Delete(id)
			}
		case 2: // reclassify: same ID, different class
			id := randID()
			if id == "" {
				continue
			}
			_ = m.Delete(id)
			m.NewObject(id, names[rng.Intn(len(names))])
		case 3: // set attribute, canonical or raw or wrong-kind
			id := randID()
			if id == "" {
				continue
			}
			o := m.Get(id)
			attrs := mm.AllAttributes(o.Class)
			if len(attrs) == 0 {
				continue
			}
			a := attrs[rng.Intn(len(attrs))]
			switch rng.Intn(5) {
			case 0:
				o.SetAttr(a.Name, wrongValue(rng, a.Kind))
			case 1:
				if a.Kind == KindInt {
					o.SetAttr(a.Name, float64(rng.Intn(50))) // integral float → normalises
					continue
				}
				o.SetAttr(a.Name, defaultFor(rng, mm, a))
			default:
				o.SetAttr(a.Name, defaultFor(rng, mm, a))
			}
		case 4: // unset attribute
			id := randID()
			if id == "" {
				continue
			}
			o := m.Get(id)
			if an := o.AttrNames(); len(an) > 0 {
				delete(o.attrs, an[rng.Intn(len(an))])
			}
		case 5: // unknown attribute
			if id := randID(); id != "" {
				m.Get(id).SetAttr(fmt.Sprintf("zz%d", rng.Intn(3)), "mystery")
			}
		case 6: // add reference, sometimes dangling
			id := randID()
			if id == "" {
				continue
			}
			o := m.Get(id)
			refs := mm.AllReferences(o.Class)
			if len(refs) == 0 {
				continue
			}
			r := refs[rng.Intn(len(refs))]
			if rng.Intn(8) == 0 {
				o.AddRef(r.Name, fmt.Sprintf("ghost%d", rng.Intn(4)))
			} else if t := randID(); t != "" {
				o.AddRef(r.Name, t)
			}
		case 7: // remove a reference target
			id := randID()
			if id == "" {
				continue
			}
			o := m.Get(id)
			if rn := o.RefNames(); len(rn) > 0 {
				name := rn[rng.Intn(len(rn))]
				ts := o.Refs(name)
				o.RemoveRef(name, ts[rng.Intn(len(ts))])
			}
		case 8: // containment edge: conflicts and cycles
			id := randID()
			if id == "" {
				continue
			}
			o := m.Get(id)
			for _, r := range mm.AllReferences(o.Class) {
				if !r.Containment {
					continue
				}
				if t := randID(); t != "" {
					o.AddRef(r.Name, t) // may self-contain or close a cycle
				}
				break
			}
		}
	}
}

// stepDelta runs one base → next transition through NormalizeChanges and
// the DeltaValidator, requiring verdict, problem multiset and mutated model
// state to match a full compiled validation; on a valid transition it
// advances dv and returns the new base.
func stepDelta(t *testing.T, label string, mm *Metamodel, cm *CompiledMetamodel, dv *DeltaValidator, base, next0 *Model) *Model {
	t.Helper()
	raw := DiffWithContainment(base, next0, mm)
	changes := NormalizeChanges(cm, base, raw)
	next := base.Clone()
	if err := Apply(next, changes); err != nil {
		t.Fatalf("%s: apply normalised changes: %v\nchanges:\n%s", label, err, changes)
	}

	full := next.Clone()
	fullErr := cm.Validate(full)
	deltaErr := dv.Validate(next, changes)
	if (fullErr == nil) != (deltaErr == nil) {
		t.Fatalf("%s: verdicts diverge:\nfull:  %v\ndelta: %v\nchanges:\n%s", label, fullErr, deltaErr, changes)
	}
	pf, pd := problemSet(t, fullErr), problemSet(t, deltaErr)
	if !equalStringSets(pf, pd) {
		t.Fatalf("%s: problem multisets diverge:\nfull:  %v\ndelta: %v\nchanges:\n%s", label, pf, pd, changes)
	}
	if fullErr != nil {
		return base // rejected: base stands
	}
	// NormalizeChanges must be exactly validate-then-diff.
	if vc, err := (*ValidationCache)(nil).Validate(mm, next0); err == nil {
		want := DiffWithContainment(base, vc, mm)
		if fmt.Sprint(want) != fmt.Sprint(changes) {
			t.Fatalf("%s: normalised changes diverge from validate-then-diff:\nwant:\n%s\ngot:\n%s", label, want, changes)
		}
	}
	// Delta validation applies the same normalising mutations.
	if !Equal(next, full) {
		t.Fatalf("%s: post-validation models diverge; diff:\n%s", label, Diff(next, full))
	}
	dv.Advance(next, changes)
	return next
}

// TestDeltaDifferentialSweep drives randomly generated metamodels through
// sequences of random mutations, comparing the delta validator against the
// full compiled validator at every step.
func TestDeltaDifferentialSweep(t *testing.T) {
	steps := 0
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mm := genMetamodel(rng)
		cm, err := mm.Compiled()
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		base := genInstance(rng, mm, 2+rng.Intn(8))
		if err := cm.Validate(base); err != nil {
			// Delta validation starts from a valid base; grow one through
			// the mutation chain instead of skipping the seed.
			base = NewModel(mm.Name)
		}
		dv := NewDeltaValidator(cm, base)
		for k := 0; k < 6; k++ {
			next0 := base.Clone()
			mutateModel(rng, next0, mm)
			base = stepDelta(t, fmt.Sprintf("seed %d step %d", seed, k), mm, cm, dv, base, next0)
			if base != dv.Base() {
				t.Fatalf("seed %d step %d: validator base out of sync", seed, k)
			}
			steps++
		}
	}
	if steps < 300 {
		t.Fatalf("only %d differential delta steps ran, want >= 300", steps)
	}
}

// TestDeltaPropModels replays the property-test domain (which has required
// features, containment and inheritance) through mutation sequences.
func TestDeltaPropModels(t *testing.T) {
	mm := propMM(t)
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := genModel(rng, 2+rng.Intn(10))
		if err := cm.Validate(base); err != nil {
			t.Fatalf("seed %d: generated prop model invalid: %v", seed, err)
		}
		dv := NewDeltaValidator(cm, base)
		for k := 0; k < 4; k++ {
			next0 := base.Clone()
			if rng.Intn(2) == 0 {
				breakModel(rng, next0)
			} else {
				mutateModel(rng, next0, mm)
			}
			base = stepDelta(t, fmt.Sprintf("prop seed %d step %d", seed, k), mm, cm, dv, base, next0)
		}
	}
}

// TestDeltaTargetedCases pins the delta validator's hard edges with
// hand-built scenarios: dangling references created by removing an
// untouched referrer's target, reclassification breaking type conformance,
// containment conflicts introduced against an unchanged owner, and cycles
// closed through an unchanged base edge.
func TestDeltaTargetedCases(t *testing.T) {
	mm := New("dmm")
	mm.MustAddClass(&Class{Name: "Node", References: []Reference{
		{Name: "kids", Target: "Node", Containment: true, Many: true},
		{Name: "link", Target: "Node", Many: true},
	}})
	mm.MustAddClass(&Class{Name: "Leaf", Super: "Node"})
	mm.MustAddClass(&Class{Name: "Other"})
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}

	build := func(f func(m *Model)) *Model {
		m := NewModel("dmm")
		f(m)
		if err := cm.Validate(m); err != nil {
			t.Fatalf("base invalid: %v", err)
		}
		return m
	}

	cases := []struct {
		name   string
		base   func(m *Model)
		mutate func(m *Model)
	}{
		{
			name: "removal dangles untouched referrer",
			base: func(m *Model) {
				m.NewObject("a", "Node").SetRef("link", "b")
				m.NewObject("b", "Node")
			},
			mutate: func(m *Model) { _ = m.Delete("b") },
		},
		{
			name: "reclassification breaks untouched referrer",
			base: func(m *Model) {
				m.NewObject("a", "Node").SetRef("link", "b")
				m.NewObject("b", "Leaf")
			},
			mutate: func(m *Model) {
				_ = m.Delete("b")
				m.NewObject("b", "Other")
			},
		},
		{
			name: "containment conflict with unchanged owner",
			base: func(m *Model) {
				m.NewObject("p", "Node").SetRef("kids", "c")
				m.NewObject("c", "Node")
				m.NewObject("q", "Node")
			},
			mutate: func(m *Model) { m.Get("q").AddRef("kids", "c") },
		},
		{
			name: "cycle closed through unchanged base edge",
			base: func(m *Model) {
				m.NewObject("p", "Node").SetRef("kids", "c")
				m.NewObject("c", "Node")
			},
			mutate: func(m *Model) { m.Get("c").AddRef("kids", "p") },
		},
		{
			name: "self containment",
			base: func(m *Model) {
				m.NewObject("p", "Node")
			},
			mutate: func(m *Model) { m.Get("p").AddRef("kids", "p") },
		},
		{
			name: "valid reparent of a contained object",
			base: func(m *Model) {
				m.NewObject("p", "Node").SetRef("kids", "c")
				m.NewObject("q", "Node")
				m.NewObject("c", "Node")
			},
			mutate: func(m *Model) {
				m.Get("p").RemoveRef("kids", "c")
				m.Get("q").AddRef("kids", "c")
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := build(tc.base)
			dv := NewDeltaValidator(cm, base)
			next0 := base.Clone()
			tc.mutate(next0)
			stepDelta(t, tc.name, mm, cm, dv, base, next0)
		})
	}
}

// TestDeltaEmptyChangeList: no changes, no work, nil verdict.
func TestDeltaEmptyChangeList(t *testing.T) {
	mm := propMM(t)
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	base := NewModel(mm.Name)
	dv := NewDeltaValidator(cm, base)
	if err := dv.Validate(base, nil); err != nil {
		t.Fatalf("empty change list must validate: %v", err)
	}
}
