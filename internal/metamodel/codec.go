package metamodel

import (
	"encoding/json"
	"fmt"
)

// The JSON wire formats below are the repo's replacement for EMF's XMI
// serialisation: stable, human-editable documents for metamodels and models
// that the CLI tools (cmd/mddsmc, cmd/mddsm-run) consume.

type jsonMetamodel struct {
	Name    string      `json:"name"`
	Enums   []jsonEnum  `json:"enums,omitempty"`
	Classes []jsonClass `json:"classes"`
}

type jsonEnum struct {
	Name     string   `json:"name"`
	Literals []string `json:"literals"`
}

type jsonClass struct {
	Name       string          `json:"name"`
	Abstract   bool            `json:"abstract,omitempty"`
	Super      string          `json:"super,omitempty"`
	Attributes []jsonAttribute `json:"attributes,omitempty"`
	References []jsonReference `json:"references,omitempty"`
}

type jsonAttribute struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	EnumType string `json:"enumType,omitempty"`
	Required bool   `json:"required,omitempty"`
	Default  any    `json:"default,omitempty"`
}

type jsonReference struct {
	Name        string `json:"name"`
	Target      string `json:"target"`
	Containment bool   `json:"containment,omitempty"`
	Many        bool   `json:"many,omitempty"`
	Required    bool   `json:"required,omitempty"`
}

// MarshalMetamodel renders a metamodel as indented JSON.
func MarshalMetamodel(m *Metamodel) ([]byte, error) {
	doc := jsonMetamodel{Name: m.Name}
	for _, name := range m.EnumNames() {
		e := m.Enum(name)
		doc.Enums = append(doc.Enums, jsonEnum{Name: e.Name, Literals: e.Literals})
	}
	for _, name := range m.ClassNames() {
		c := m.Class(name)
		jc := jsonClass{Name: c.Name, Abstract: c.Abstract, Super: c.Super}
		for _, a := range c.Attributes {
			jc.Attributes = append(jc.Attributes, jsonAttribute{
				Name: a.Name, Kind: a.Kind.String(), EnumType: a.EnumType,
				Required: a.Required, Default: a.Default,
			})
		}
		for _, r := range c.References {
			jc.References = append(jc.References, jsonReference{
				Name: r.Name, Target: r.Target, Containment: r.Containment,
				Many: r.Many, Required: r.Required,
			})
		}
		doc.Classes = append(doc.Classes, jc)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// UnmarshalMetamodel parses a metamodel JSON document and validates it.
func UnmarshalMetamodel(data []byte) (*Metamodel, error) {
	var doc jsonMetamodel
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parse metamodel: %w", err)
	}
	m := New(doc.Name)
	for _, e := range doc.Enums {
		if err := m.AddEnum(&Enum{Name: e.Name, Literals: e.Literals}); err != nil {
			return nil, err
		}
	}
	for _, jc := range doc.Classes {
		c := &Class{Name: jc.Name, Abstract: jc.Abstract, Super: jc.Super}
		for _, a := range jc.Attributes {
			kind, err := kindFromString(a.Kind)
			if err != nil {
				return nil, fmt.Errorf("class %s attribute %s: %w", jc.Name, a.Name, err)
			}
			c.Attributes = append(c.Attributes, Attribute{
				Name: a.Name, Kind: kind, EnumType: a.EnumType,
				Required: a.Required, Default: a.Default,
			})
		}
		for _, r := range jc.References {
			c.References = append(c.References, Reference{
				Name: r.Name, Target: r.Target, Containment: r.Containment,
				Many: r.Many, Required: r.Required,
			})
		}
		if err := m.AddClass(c); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("metamodel %s: %w", doc.Name, err)
	}
	return m, nil
}

type jsonModel struct {
	Metamodel string       `json:"metamodel"`
	Objects   []jsonObject `json:"objects"`
}

type jsonObject struct {
	ID    string              `json:"id"`
	Class string              `json:"class"`
	Attrs map[string]any      `json:"attrs,omitempty"`
	Refs  map[string][]string `json:"refs,omitempty"`
}

// MarshalModel renders a model as indented JSON, objects in insertion order.
func MarshalModel(m *Model) ([]byte, error) {
	doc := jsonModel{Metamodel: m.MetamodelName}
	for _, o := range m.Objects() {
		jo := jsonObject{ID: o.ID, Class: o.Class}
		if names := o.AttrNames(); len(names) > 0 {
			jo.Attrs = make(map[string]any, len(names))
			for _, n := range names {
				v, _ := o.Attr(n)
				jo.Attrs[n] = v
			}
		}
		if names := o.RefNames(); len(names) > 0 {
			jo.Refs = make(map[string][]string, len(names))
			for _, n := range names {
				jo.Refs[n] = o.Refs(n)
			}
		}
		doc.Objects = append(doc.Objects, jo)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// UnmarshalModel parses a model JSON document. Conformance is NOT checked
// here because the metamodel may not be at hand; call Model.Validate.
func UnmarshalModel(data []byte) (*Model, error) {
	var doc jsonModel
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parse model: %w", err)
	}
	m := NewModel(doc.Metamodel)
	for _, jo := range doc.Objects {
		o := NewObject(jo.ID, jo.Class)
		for k, v := range jo.Attrs {
			o.SetAttr(k, v)
		}
		for k, ts := range jo.Refs {
			o.SetRef(k, ts...)
		}
		if err := m.Add(o); err != nil {
			return nil, err
		}
	}
	return m, nil
}
