package metamodel

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotFound is returned by lookups that miss.
var ErrNotFound = errors.New("not found")

// Object is an instance of a metamodel class. Attribute values hold
// canonical representations (string, int64, float64, bool); references hold
// ordered lists of target object IDs.
type Object struct {
	ID    string
	Class string
	attrs map[string]any
	refs  map[string][]string
}

// NewObject creates an object of the given class with the given identity.
func NewObject(id, class string) *Object {
	return &Object{
		ID:    id,
		Class: class,
		attrs: make(map[string]any),
		refs:  make(map[string][]string),
	}
}

// SetAttr sets an attribute value. The value is stored as given; conformance
// against the metamodel is checked by Model.Validate.
func (o *Object) SetAttr(name string, v any) *Object {
	switch n := v.(type) {
	case int:
		v = int64(n)
	case float32:
		v = float64(n)
	}
	o.attrs[name] = v
	return o
}

// UnsetAttr removes an attribute value. Validation re-applies the class
// default, if any; unsetting a required attribute without a default makes
// the model non-conformant.
func (o *Object) UnsetAttr(name string) *Object {
	delete(o.attrs, name)
	return o
}

// Attr returns the attribute value and whether it is set.
func (o *Object) Attr(name string) (any, bool) {
	v, ok := o.attrs[name]
	return v, ok
}

// StringAttr returns the attribute as a string, or "" when unset or of a
// different type.
func (o *Object) StringAttr(name string) string {
	s, _ := o.attrs[name].(string)
	return s
}

// IntAttr returns the attribute as an int64, or 0 when unset.
func (o *Object) IntAttr(name string) int64 {
	switch n := o.attrs[name].(type) {
	case int64:
		return n
	case float64:
		return int64(n)
	default:
		return 0
	}
}

// FloatAttr returns the attribute as a float64, or 0 when unset.
func (o *Object) FloatAttr(name string) float64 {
	switch n := o.attrs[name].(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	default:
		return 0
	}
}

// BoolAttr returns the attribute as a bool, or false when unset.
func (o *Object) BoolAttr(name string) bool {
	b, _ := o.attrs[name].(bool)
	return b
}

// AttrNames returns the set attribute names in sorted order.
func (o *Object) AttrNames() []string {
	names := make([]string, 0, len(o.attrs))
	for n := range o.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetRef replaces the reference's targets.
func (o *Object) SetRef(name string, targets ...string) *Object {
	o.refs[name] = append([]string(nil), targets...)
	return o
}

// AddRef appends a target to a reference, ignoring duplicates.
func (o *Object) AddRef(name, target string) *Object {
	for _, t := range o.refs[name] {
		if t == target {
			return o
		}
	}
	o.refs[name] = append(o.refs[name], target)
	return o
}

// RemoveRef removes a target from a reference. It is a no-op when absent.
func (o *Object) RemoveRef(name, target string) *Object {
	ts := o.refs[name]
	for i, t := range ts {
		if t == target {
			o.refs[name] = append(ts[:i:i], ts[i+1:]...)
			return o
		}
	}
	return o
}

// Refs returns a copy of the reference's target IDs.
func (o *Object) Refs(name string) []string {
	return append([]string(nil), o.refs[name]...)
}

// Ref returns the single target of a reference, or "" when unset.
func (o *Object) Ref(name string) string {
	ts := o.refs[name]
	if len(ts) == 0 {
		return ""
	}
	return ts[0]
}

// RefNames returns the set reference names in sorted order.
func (o *Object) RefNames() []string {
	names := make([]string, 0, len(o.refs))
	for n := range o.refs {
		if len(o.refs[n]) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	c := NewObject(o.ID, o.Class)
	for k, v := range o.attrs {
		c.attrs[k] = v
	}
	for k, v := range o.refs {
		c.refs[k] = append([]string(nil), v...)
	}
	return c
}

// Model is a set of objects conforming (once validated) to a metamodel.
type Model struct {
	MetamodelName string
	objects       map[string]*Object
	order         []string
}

// NewModel creates an empty model declared against the named metamodel.
func NewModel(metamodelName string) *Model {
	return &Model{
		MetamodelName: metamodelName,
		objects:       make(map[string]*Object),
	}
}

// Add inserts an object. It returns an error on a duplicate ID.
func (m *Model) Add(o *Object) error {
	if o.ID == "" {
		return errors.New("object with empty ID")
	}
	if _, ok := m.objects[o.ID]; ok {
		return fmt.Errorf("duplicate object ID %q", o.ID)
	}
	m.objects[o.ID] = o
	m.order = append(m.order, o.ID)
	return nil
}

// MustAdd is Add that panics on error; for model construction in code where a
// failure is a programming bug.
func (m *Model) MustAdd(o *Object) *Object {
	if err := m.Add(o); err != nil {
		panic(err)
	}
	return o
}

// NewObject creates an object, adds it, and returns it. It panics on a
// duplicate ID (programming bug in model-building code).
func (m *Model) NewObject(id, class string) *Object {
	return m.MustAdd(NewObject(id, class))
}

// Get returns the object with the given ID, or nil.
func (m *Model) Get(id string) *Object { return m.objects[id] }

// Delete removes the object with the given ID. It returns ErrNotFound when
// absent. References from other objects are left dangling; Validate reports
// them.
func (m *Model) Delete(id string) error {
	if _, ok := m.objects[id]; !ok {
		return fmt.Errorf("object %q: %w", id, ErrNotFound)
	}
	delete(m.objects, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// Len returns the number of objects.
func (m *Model) Len() int { return len(m.objects) }

// IDs returns all object IDs in insertion order.
func (m *Model) IDs() []string { return append([]string(nil), m.order...) }

// Objects returns all objects in insertion order.
func (m *Model) Objects() []*Object {
	out := make([]*Object, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.objects[id])
	}
	return out
}

// ObjectsOf returns the objects whose class is exactly the given class, in
// insertion order.
func (m *Model) ObjectsOf(class string) []*Object {
	var out []*Object
	for _, id := range m.order {
		if o := m.objects[id]; o.Class == class {
			out = append(out, o)
		}
	}
	return out
}

// ObjectsKindOf returns objects whose class equals or inherits from class,
// resolved against mm, in insertion order.
func (m *Model) ObjectsKindOf(mm *Metamodel, class string) []*Object {
	var out []*Object
	for _, id := range m.order {
		if o := m.objects[id]; mm.IsSubclassOf(o.Class, class) {
			out = append(out, o)
		}
	}
	return out
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := NewModel(m.MetamodelName)
	for _, id := range m.order {
		c.MustAdd(m.objects[id].Clone())
	}
	return c
}

// Resolve returns the targets of a reference as objects, skipping dangling
// IDs.
func (m *Model) Resolve(o *Object, ref string) []*Object {
	var out []*Object
	for _, id := range o.Refs(ref) {
		if t := m.objects[id]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// ResolveOne returns the single target object of a reference, or nil.
func (m *Model) ResolveOne(o *Object, ref string) *Object {
	id := o.Ref(ref)
	if id == "" {
		return nil
	}
	return m.objects[id]
}

// Validate checks conformance of the model against mm: known non-abstract
// classes, known features, type-correct attribute values (applying defaults
// for unset attributes with a default), required features present,
// cardinality respected, reference targets present and type-conformant,
// single containment and containment acyclicity.
//
// By default it dispatches through mm's compiled form (see Compile), which
// is semantically identical to the interpreted reference walk but skips the
// per-object inheritance-chain resolution. When the metamodel itself does
// not compile (it is malformed), or when SetValidationMode forces
// ModeInterpreted, the interpreted walk runs instead.
func (m *Model) Validate(mm *Metamodel) error {
	if GetValidationMode() == ModeCompiled {
		if cm, err := mm.Compiled(); err == nil {
			noteFast()
			return cm.Validate(m)
		}
		noteFallback()
		return m.validateInterpreted(mm)
	}
	noteInterpreted()
	return m.validateInterpreted(mm)
}

// ValidateInterpreted runs the interpreted reference validator regardless
// of the process-wide validation mode. The differential tests use it to pin
// the compiled validator's behaviour; it remains the semantic ground truth.
func (m *Model) ValidateInterpreted(mm *Metamodel) error {
	noteInterpreted()
	return m.validateInterpreted(mm)
}

func (m *Model) validateInterpreted(mm *Metamodel) error {
	var errs errorList
	container := make(map[string]string) // contained ID -> container ID
	for _, id := range m.order {
		o := m.objects[id]
		c := mm.Class(o.Class)
		if c == nil {
			errs.addf("object %s: unknown class %q", id, o.Class)
			continue
		}
		if c.Abstract {
			errs.addf("object %s: class %q is abstract", id, o.Class)
		}
		attrs := make(map[string]Attribute)
		for _, a := range mm.AllAttributes(o.Class) {
			attrs[a.Name] = a
		}
		refs := make(map[string]Reference)
		for _, r := range mm.AllReferences(o.Class) {
			refs[r.Name] = r
		}
		for _, name := range o.AttrNames() {
			a, ok := attrs[name]
			if !ok {
				errs.addf("object %s (%s): unknown attribute %q", id, o.Class, name)
				continue
			}
			v, _ := o.Attr(name)
			nv, err := NormalizeValue(a.Kind, v)
			if err != nil {
				errs.addf("object %s (%s): attribute %s: %v", id, o.Class, name, err)
				continue
			}
			if a.Kind == KindEnum {
				if e := mm.Enum(a.EnumType); e != nil && !e.Has(nv.(string)) {
					errs.addf("object %s (%s): attribute %s: %q is not a literal of %s",
						id, o.Class, name, nv, a.EnumType)
				}
			}
			o.attrs[name] = nv
		}
		for _, a := range attrs {
			if _, set := o.Attr(a.Name); set {
				continue
			}
			if a.Default != nil {
				nv, err := NormalizeValue(a.Kind, a.Default)
				if err == nil {
					o.attrs[a.Name] = nv
					continue
				}
			}
			if a.Required {
				errs.addf("object %s (%s): required attribute %q unset", id, o.Class, a.Name)
			}
		}
		for _, name := range o.RefNames() {
			r, ok := refs[name]
			if !ok {
				errs.addf("object %s (%s): unknown reference %q", id, o.Class, name)
				continue
			}
			targets := o.Refs(name)
			if !r.Many && len(targets) > 1 {
				errs.addf("object %s (%s): reference %s: %d targets on single-valued reference",
					id, o.Class, name, len(targets))
			}
			for _, tid := range targets {
				t := m.objects[tid]
				if t == nil {
					errs.addf("object %s (%s): reference %s: dangling target %q", id, o.Class, name, tid)
					continue
				}
				if !mm.IsSubclassOf(t.Class, r.Target) {
					errs.addf("object %s (%s): reference %s: target %s has class %s, want %s",
						id, o.Class, name, tid, t.Class, r.Target)
				}
				if r.Containment {
					if prev, owned := container[tid]; owned && prev != id {
						errs.addf("object %s: contained by both %s and %s", tid, prev, id)
					}
					container[tid] = id
				}
			}
		}
		for _, r := range refs {
			if r.Required && len(o.Refs(r.Name)) == 0 {
				errs.addf("object %s (%s): required reference %q unset", id, o.Class, r.Name)
			}
		}
	}
	// Containment acyclicity: walk each chain up; a repeat means a cycle.
	for id := range container {
		seen := map[string]bool{id: true}
		for cur := container[id]; cur != ""; cur = container[cur] {
			if seen[cur] {
				errs.addf("containment cycle involving object %s", cur)
				break
			}
			seen[cur] = true
		}
	}
	return errs.err()
}
