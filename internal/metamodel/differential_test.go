package metamodel

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential tests: the compiled validator must be observationally
// identical to the interpreted reference walk — same accept/reject verdict,
// same problem multiset, same normalising mutations — on arbitrary
// metamodels and arbitrary (conforming and non-conforming) models.
//
// Problem lists are compared as sorted multisets because the interpreted
// walk itself reports problems in nondeterministic order where it iterates
// feature maps (required-attribute and required-reference checks).

// genMetamodel builds a random well-formed metamodel: a handful of enums,
// classes with single inheritance (some abstract), attributes of every kind
// (some required, some defaulted) and references (some containment, some
// many, some required). Feature names are globally unique so inheritance
// chains never collide.
func genMetamodel(rng *rand.Rand) *Metamodel {
	mm := New(fmt.Sprintf("dmm%d", rng.Intn(1000)))
	nEnums := 1 + rng.Intn(3)
	enums := make([]string, nEnums)
	for i := range enums {
		name := fmt.Sprintf("E%d", i)
		lits := make([]string, 1+rng.Intn(4))
		for j := range lits {
			lits[j] = fmt.Sprintf("lit%d", j)
		}
		mm.MustAddEnum(&Enum{Name: name, Literals: lits})
		enums[i] = name
	}
	nClasses := 2 + rng.Intn(6)
	classes := make([]string, 0, nClasses)
	for i := 0; i < nClasses; i++ {
		name := fmt.Sprintf("C%d", i)
		c := &Class{Name: name, Abstract: rng.Intn(6) == 0}
		if len(classes) > 0 && rng.Intn(2) == 0 {
			c.Super = classes[rng.Intn(len(classes))]
		}
		for a := rng.Intn(4); a > 0; a-- {
			attr := Attribute{
				Name:     fmt.Sprintf("a%d_%d", i, a),
				Kind:     Kind(1 + rng.Intn(5)),
				Required: rng.Intn(4) == 0,
			}
			if attr.Kind == KindEnum {
				attr.EnumType = enums[rng.Intn(len(enums))]
			}
			if rng.Intn(3) == 0 {
				attr.Default = defaultFor(rng, mm, attr)
			}
			c.Attributes = append(c.Attributes, attr)
		}
		for r := rng.Intn(3); r > 0; r-- {
			c.References = append(c.References, Reference{
				Name:        fmt.Sprintf("r%d_%d", i, r),
				Target:      fmt.Sprintf("C%d", rng.Intn(nClasses)),
				Containment: rng.Intn(4) == 0,
				Many:        rng.Intn(2) == 0,
				Required:    rng.Intn(5) == 0,
			})
		}
		mm.MustAddClass(c)
		classes = append(classes, name)
	}
	return mm
}

// defaultFor draws a valid default value for the attribute.
func defaultFor(rng *rand.Rand, mm *Metamodel, a Attribute) any {
	switch a.Kind {
	case KindString:
		return fmt.Sprintf("d%d", rng.Intn(10))
	case KindInt:
		return rng.Intn(100)
	case KindFloat:
		return float64(rng.Intn(100)) / 4
	case KindBool:
		return rng.Intn(2) == 0
	case KindEnum:
		e := mm.Enum(a.EnumType)
		return e.Literals[rng.Intn(len(e.Literals))]
	}
	return nil
}

// genInstance builds a random model against mm — deliberately sometimes
// non-conforming. Objects draw mostly concrete known classes but
// occasionally abstract or unknown ones; attribute values are mostly
// type-correct but sometimes of the wrong kind, unknown, or invalid enum
// literals; references go to random targets including dangling IDs, wrong
// classes, cardinality violations, double containment and containment
// cycles. Both validators must agree on every one of these.
func genInstance(rng *rand.Rand, mm *Metamodel, size int) *Model {
	m := NewModel(mm.Name)
	names := mm.ClassNames()
	ids := make([]string, 0, size)
	for i := 0; i < size; i++ {
		id := fmt.Sprintf("o%d", i)
		class := names[rng.Intn(len(names))]
		switch rng.Intn(12) {
		case 0:
			class = "Ghost" // unknown class
		}
		o := m.NewObject(id, class)
		ids = append(ids, id)
		for _, a := range mm.AllAttributes(class) {
			switch rng.Intn(6) {
			case 0: // leave unset (exercises defaults / required)
			case 1: // wrong-kind value
				o.SetAttr(a.Name, wrongValue(rng, a.Kind))
			default:
				if a.Kind == KindEnum && rng.Intn(4) == 0 {
					o.SetAttr(a.Name, "not-a-literal")
				} else {
					o.SetAttr(a.Name, defaultFor(rng, mm, a))
				}
			}
		}
		if rng.Intn(8) == 0 {
			o.SetAttr(fmt.Sprintf("zz%d", rng.Intn(3)), "unknown attribute")
		}
	}
	// Second pass: wire references between the created objects (types not
	// guaranteed to conform) plus occasional dangling targets.
	for _, id := range ids {
		o := m.Get(id)
		for _, r := range mm.AllReferences(o.Class) {
			n := rng.Intn(3)
			if r.Required && rng.Intn(3) > 0 {
				n = 1 + rng.Intn(2)
			}
			for ; n > 0; n-- {
				if rng.Intn(10) == 0 {
					o.AddRef(r.Name, fmt.Sprintf("ghost%d", rng.Intn(5)))
				} else {
					o.AddRef(r.Name, ids[rng.Intn(len(ids))])
				}
			}
		}
		if rng.Intn(10) == 0 {
			o.SetRef("zzref", ids[rng.Intn(len(ids))])
		}
	}
	return m
}

// wrongValue draws a value of a kind other than k.
func wrongValue(rng *rand.Rand, k Kind) any {
	candidates := []any{"str", int64(7), 3.5, true, nil}
	for {
		v := candidates[rng.Intn(len(candidates))]
		if _, err := NormalizeValue(k, v); err != nil {
			return v
		}
	}
}

// assertSameVerdict validates two clones of m — one compiled, one
// interpreted — and requires identical verdicts, problem multisets and
// post-validation model states.
func assertSameVerdict(t *testing.T, label string, mm *Metamodel, cm *CompiledMetamodel, m *Model) {
	t.Helper()
	a, b := m.Clone(), m.Clone()
	errC := cm.Validate(a)
	errI := b.ValidateInterpreted(mm)
	if (errC == nil) != (errI == nil) {
		t.Fatalf("%s: verdicts diverge: compiled=%v interpreted=%v", label, errC, errI)
	}
	pc, pi := problemSet(t, errC), problemSet(t, errI)
	if !equalStringSets(pc, pi) {
		t.Fatalf("%s: problem sets diverge:\ncompiled:    %v\ninterpreted: %v", label, pc, pi)
	}
	// Both walks apply the same normalising mutations, valid or not.
	if !Equal(a, b) {
		t.Fatalf("%s: post-validation models diverge; diff: %s", label, Diff(a, b))
	}
}

// TestDifferentialCompiledVsInterpreted is the main differential sweep:
// ≥500 random metamodel/model pairs, conforming and non-conforming.
func TestDifferentialCompiledVsInterpreted(t *testing.T) {
	pairs := 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mm := genMetamodel(rng)
		if err := mm.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced malformed metamodel: %v", seed, err)
		}
		cm, err := mm.Compiled()
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		for k := 0; k < 2; k++ {
			m := genInstance(rng, mm, 2+rng.Intn(10))
			assertSameVerdict(t, fmt.Sprintf("seed %d pair %d", seed, k), mm, cm, m)
			pairs++
		}
	}
	if pairs < 500 {
		t.Fatalf("only %d differential pairs generated, want >= 500", pairs)
	}
}

// TestDifferentialPropModels replays the existing property-test generators
// (valid models of propMM) through both validators, plus mutated broken
// variants.
func TestDifferentialPropModels(t *testing.T) {
	mm := propMM(t)
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := genModel(rng, 2+rng.Intn(12))
		assertSameVerdict(t, fmt.Sprintf("seed %d valid", seed), mm, cm, m)

		broken := m.Clone()
		breakModel(rng, broken)
		assertSameVerdict(t, fmt.Sprintf("seed %d broken", seed), mm, cm, broken)
	}
}

// breakModel injects a random conformance violation into a valid propMM
// instance.
func breakModel(rng *rand.Rand, m *Model) {
	ids := m.IDs()
	if len(ids) == 0 {
		m.NewObject("ghostling", "Nope")
		return
	}
	o := m.Get(ids[rng.Intn(len(ids))])
	switch rng.Intn(6) {
	case 0:
		o.SetAttr("name", int64(3)) // wrong kind (or unknown attr on Tag)
	case 1:
		o.SetAttr("mystery", "value") // unknown attribute
	case 2:
		o.SetRef("links", "no-such-object") // dangling (unknown ref on Tag)
	case 3:
		m.NewObject(fmt.Sprintf("x%d", rng.Intn(1000)), "Missing") // unknown class
	case 4:
		o.SetAttr("weight", 1.5) // non-integral int
	case 5:
		o.SetRef("tags", ids[rng.Intn(len(ids))]) // likely wrong target class
	}
}

// TestDifferentialValidationIdempotent: validating an already-validated
// model is a no-op for both validators (the fixed point the validation
// cache relies on).
func TestDifferentialValidationIdempotent(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mm := genMetamodel(rng)
		cm, err := mm.Compiled()
		if err != nil {
			t.Fatal(err)
		}
		m := genInstance(rng, mm, 2+rng.Intn(8))
		first := m.Clone()
		if err := cm.Validate(first); err != nil {
			continue // only successful validations are cached / replayed
		}
		second := first.Clone()
		if err := cm.Validate(second); err != nil {
			t.Fatalf("seed %d: revalidation of a valid model failed: %v", seed, err)
		}
		if !Equal(first, second) {
			t.Fatalf("seed %d: revalidation changed the model; diff: %s", seed, Diff(first, second))
		}
	}
}
