package metamodel_test

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/metamodel"
)

// ExampleDiff shows the Synthesis layer's model-comparator substrate: the
// difference between two model versions as an ordered change list.
func ExampleDiff() {
	oldM := metamodel.NewModel("app")
	oldM.NewObject("s1", "Session").SetAttr("topic", "standup")

	newM := oldM.Clone()
	newM.Get("s1").SetAttr("topic", "retro")
	newM.NewObject("st1", "Stream").SetAttr("media", "audio")
	newM.Get("s1").AddRef("streams", "st1")

	fmt.Println(metamodel.Diff(oldM, newM))
	// Output:
	// add-object st1:Stream
	// set-attr st1.media <nil>->audio
	// set-attr s1.topic standup->retro
	// add-ref s1.streams -> st1
}

// ExampleModel_Validate shows conformance checking against a metamodel.
func ExampleModel_Validate() {
	mm := metamodel.New("app")
	mm.MustAddClass(&metamodel.Class{Name: "Session",
		Attributes: []metamodel.Attribute{
			{Name: "topic", Kind: metamodel.KindString, Required: true},
		},
	})

	m := metamodel.NewModel("app")
	m.NewObject("s1", "Session") // missing the required topic
	err := m.Validate(mm)
	fmt.Println(err)
	// Output:
	// object s1 (Session): required attribute "topic" unset
}
