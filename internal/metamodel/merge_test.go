package metamodel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMergeDisjoint(t *testing.T) {
	a := NewModel("mm")
	a.NewObject("x", "C").SetAttr("n", 1)
	b := NewModel("mm")
	b.NewObject("y", "C").SetAttr("n", 2)
	out, err := Merge("mm", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Get("x") == nil || out.Get("y") == nil {
		t.Fatalf("merged: %v", out.IDs())
	}
	// The merge is a deep copy: mutating inputs must not leak.
	a.Get("x").SetAttr("n", 99)
	if out.Get("x").IntAttr("n") != 1 {
		t.Error("merge must deep-copy objects")
	}
}

func TestMergeJoinsSharedObjects(t *testing.T) {
	base := NewModel("mm")
	base.NewObject("s", "Session").SetAttr("topic", "standup").SetRef("participants", "a")
	media := NewModel("mm")
	media.NewObject("s", "Session").SetRef("participants", "b").SetRef("streams", "st")
	media.NewObject("st", "Stream").SetAttr("media", "audio")

	out, err := Merge("mm", base, media)
	if err != nil {
		t.Fatal(err)
	}
	s := out.Get("s")
	if s.StringAttr("topic") != "standup" {
		t.Error("attribute from the first concern lost")
	}
	if got := strings.Join(s.Refs("participants"), ","); got != "a,b" {
		t.Errorf("reference union: %s", got)
	}
	if len(s.Refs("streams")) != 1 || out.Get("st") == nil {
		t.Error("second concern's additions lost")
	}
}

func TestMergeConflicts(t *testing.T) {
	t.Run("class conflict", func(t *testing.T) {
		a := NewModel("mm")
		a.NewObject("x", "A")
		b := NewModel("mm")
		b.NewObject("x", "B")
		if _, err := Merge("mm", a, b); err == nil || !strings.Contains(err.Error(), "woven as both") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("attribute conflict", func(t *testing.T) {
		a := NewModel("mm")
		a.NewObject("x", "A").SetAttr("v", 1)
		b := NewModel("mm")
		b.NewObject("x", "A").SetAttr("v", 2)
		if _, err := Merge("mm", a, b); err == nil || !strings.Contains(err.Error(), "conflicts") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("agreeing attribute is fine", func(t *testing.T) {
		a := NewModel("mm")
		a.NewObject("x", "A").SetAttr("v", 1)
		b := NewModel("mm")
		b.NewObject("x", "A").SetAttr("v", 1)
		if _, err := Merge("mm", a, b); err != nil {
			t.Errorf("got %v", err)
		}
	})
	t.Run("nil model", func(t *testing.T) {
		if _, err := Merge("mm", nil); err == nil {
			t.Error("nil input must fail")
		}
	})
}

// Property: merging a model with an empty model is identity, and merge
// with itself is idempotent.
func TestMergeIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		m := randomModel(r, 1+r.Intn(10))
		empty := NewModel("prop")
		left, err := Merge("prop", m, empty)
		if err != nil || !Equal(left, m) {
			return false
		}
		right, err := Merge("prop", empty, m)
		if err != nil || !Equal(right, m) {
			return false
		}
		self, err := Merge("prop", m, m)
		return err == nil && Equal(self, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is associative on conflict-free inputs (disjoint ID
// spaces guarantee that).
func TestMergeAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		a := prefixedModel(r, "a", 1+r.Intn(5))
		b := prefixedModel(r, "b", 1+r.Intn(5))
		c := prefixedModel(r, "c", 1+r.Intn(5))
		ab, err := Merge("prop", a, b)
		if err != nil {
			return false
		}
		abc1, err := Merge("prop", ab, c)
		if err != nil {
			return false
		}
		bc, err := Merge("prop", b, c)
		if err != nil {
			return false
		}
		abc2, err := Merge("prop", a, bc)
		if err != nil {
			return false
		}
		return Equal(abc1, abc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// newRand seeds a math/rand source for the merge property tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// prefixedModel builds a random model whose object IDs carry a unique
// prefix, guaranteeing disjoint ID spaces across concerns.
func prefixedModel(r *rand.Rand, prefix string, n int) *Model {
	m := NewModel("prop")
	for i := 0; i < n; i++ {
		o := m.NewObject(fmt.Sprintf("%s%d", prefix, i), "Node")
		if r.Intn(2) == 0 {
			o.SetAttr("w", r.Intn(5))
		}
		if i > 0 && r.Intn(2) == 0 {
			o.AddRef("next", fmt.Sprintf("%s%d", prefix, r.Intn(i)))
		}
	}
	return m
}
