package metamodel

import (
	"math/rand"
	"runtime"
	"testing"
)

// validatedModel produces a validated-form model for the prop domain.
func validatedModel(t *testing.T, cm *CompiledMetamodel, seed int64, size int) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := genModel(rng, size)
	if err := cm.Validate(m); err != nil {
		t.Fatalf("seed %d: generated model invalid: %v", seed, err)
	}
	return m
}

// TestSlotModelRoundTrip: Load then Materialize must reproduce the exact
// model, including attribute defaults applied by validation, many-valued
// references and insertion order.
func TestSlotModelRoundTrip(t *testing.T) {
	mm := propMM(t)
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSlotModel(cm)
	for seed := int64(0); seed < 60; seed++ {
		m := validatedModel(t, cm, seed, 1+rng(seed)%12)
		if err := sm.Load(m); err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		if sm.Len() != m.Len() {
			t.Fatalf("seed %d: slot model has %d objects, want %d", seed, sm.Len(), m.Len())
		}
		got := sm.Materialize()
		if !Equal(got, m) {
			t.Fatalf("seed %d: round trip diverges; diff:\n%s", seed, Diff(got, m))
		}
		// Order must be preserved exactly, not just set-equal.
		gi, mi := got.IDs(), m.IDs()
		for i := range mi {
			if gi[i] != mi[i] {
				t.Fatalf("seed %d: order diverges at %d: %s != %s", seed, i, gi[i], mi[i])
			}
		}
	}
}

func rng(seed int64) int { return int(seed*2654435761) & 0x7fffffff }

// TestSlotModelAccessors checks the typed accessors against a hand-built
// model: set and defaulted attributes, unset optional attributes,
// kind-mismatched reads, and reference views.
func TestSlotModelAccessors(t *testing.T) {
	mm := New("acc")
	mm.MustAddEnum(&Enum{Name: "Mode", Literals: []string{"on", "off"}})
	mm.MustAddClass(&Class{Name: "Box", Attributes: []Attribute{
		{Name: "label", Kind: KindString, Required: true},
		{Name: "count", Kind: KindInt, Default: int64(7)},
		{Name: "ratio", Kind: KindFloat},
		{Name: "open", Kind: KindBool, Default: true},
		{Name: "mode", Kind: KindEnum, EnumType: "Mode", Default: "off"},
	}, References: []Reference{
		{Name: "next", Target: "Box"},
		{Name: "all", Target: "Box", Many: true},
	}})
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel("acc")
	a := m.NewObject("a", "Box")
	a.SetAttr("label", "first")
	a.SetAttr("ratio", 0.5)
	a.SetRef("next", "b")
	a.SetRef("all", "a", "b")
	b := m.NewObject("b", "Box")
	b.SetAttr("label", "second")
	b.SetAttr("count", int64(3))
	b.SetAttr("mode", "on")
	if err := cm.Validate(m); err != nil {
		t.Fatal(err)
	}

	sm := NewSlotModel(cm)
	if err := sm.Load(m); err != nil {
		t.Fatal(err)
	}
	ha, ok := sm.Lookup("a")
	if !ok || !ha.Valid() {
		t.Fatal("lookup a failed")
	}
	hb, _ := sm.Lookup("b")
	if _, ok := sm.Lookup("zz"); ok {
		t.Fatal("lookup of unknown id succeeded")
	}
	if sm.ID(ha) != "a" || sm.Class(ha) != "Box" {
		t.Fatalf("identity accessors: %s/%s", sm.ID(ha), sm.Class(ha))
	}
	if s, ok := sm.StringAttr(ha, "label"); !ok || s != "first" {
		t.Fatalf("label = %q, %v", s, ok)
	}
	if n, ok := sm.IntAttr(ha, "count"); !ok || n != 7 { // default applied by validation
		t.Fatalf("count = %d, %v", n, ok)
	}
	if f, ok := sm.FloatAttr(ha, "ratio"); !ok || f != 0.5 {
		t.Fatalf("ratio = %v, %v", f, ok)
	}
	if bv, ok := sm.BoolAttr(ha, "open"); !ok || !bv {
		t.Fatalf("open = %v, %v", bv, ok)
	}
	if s, ok := sm.StringAttr(ha, "mode"); !ok || s != "off" { // enum shares string columns
		t.Fatalf("mode = %q, %v", s, ok)
	}
	if _, ok := sm.FloatAttr(hb, "ratio"); ok {
		t.Fatal("unset optional attribute read as set")
	}
	if _, ok := sm.IntAttr(ha, "label"); ok {
		t.Fatal("kind-mismatched read succeeded")
	}
	if _, ok := sm.StringAttr(ha, "ghost"); ok {
		t.Fatal("unknown attribute read succeeded")
	}
	if ts := sm.Refs(ha, "all"); len(ts) != 2 || ts[0] != "a" || ts[1] != "b" {
		t.Fatalf("all = %v", ts)
	}
	if ts := sm.Refs(hb, "next"); len(ts) != 0 {
		t.Fatalf("unset ref = %v", ts)
	}
	if ts := sm.Refs(ha, "ghost"); ts != nil {
		t.Fatalf("unknown ref = %v", ts)
	}
}

// TestSlotModelLoadRejectsNonCanonical: Load must refuse models that are
// not in validated canonical form rather than store a lossy snapshot.
func TestSlotModelLoadRejectsNonCanonical(t *testing.T) {
	mm := propMM(t)
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSlotModel(cm)

	m := NewModel(mm.Name)
	m.NewObject("x", "Ghost")
	if err := sm.Load(m); err == nil {
		t.Fatal("load accepted unknown class")
	}

	m2 := validatedModel(t, cm, 3, 4)
	o := m2.Get(m2.IDs()[0])
	o.attrs["mystery"] = "?"
	if err := sm.Load(m2); err == nil {
		t.Fatal("load accepted unknown attribute")
	}
}

// TestSlotModelStorageReuse: reloading similar models must settle into
// zero steady-state heap growth — the point of the slot representation.
func TestSlotModelStorageReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race CI leg")
	}
	mm := propMM(t)
	cm, err := mm.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	models := make([]*Model, 8)
	for i := range models {
		models[i] = validatedModel(t, cm, int64(i), 10)
	}
	sm := NewSlotModel(cm)
	for _, m := range models { // warm up: tables and columns reach max size
		if err := sm.Load(m); err != nil {
			t.Fatal(err)
		}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	allocs := testing.AllocsPerRun(50, func() {
		for _, m := range models {
			if err := sm.Load(m); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Budget: Go maps (byID) may rehash occasionally; columns must not
	// reallocate at all. Per-reload-of-8-models budget of 2 allocations
	// catches any per-object or per-attribute allocation immediately.
	if allocs > 2 {
		t.Fatalf("steady-state Load allocates %.1f times per 8-model reload cycle, want <= 2", allocs)
	}
}

// BenchmarkSlotModelLoad measures the steady-state reload cost.
func BenchmarkSlotModelLoad(b *testing.B) {
	mm := propMM(&testing.T{})
	cm, err := mm.Compiled()
	if err != nil {
		b.Fatal(err)
	}
	rngv := rand.New(rand.NewSource(1))
	m := genModel(rngv, 50)
	if err := cm.Validate(m); err != nil {
		b.Fatal(err)
	}
	sm := NewSlotModel(cm)
	if err := sm.Load(m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sm.Load(m); err != nil {
			b.Fatal(err)
		}
	}
}
