package metamodel

import (
	"fmt"
	"math/rand"
	"testing"
)

// FuzzDeltaValidate drives one differential delta-validation chain per
// input: a seeded random metamodel, a valid base and a sequence of random
// mutations, each step checked for agreement between the delta validator
// and the full compiled validator. The interesting state space is the
// mutation structure, so the fuzz input is the generator seed plus the
// chain length.
func FuzzDeltaValidate(f *testing.F) {
	for seed := int64(0); seed < 24; seed++ {
		f.Add(seed, uint8(6))
	}
	f.Add(int64(1<<40), uint8(1))
	f.Add(int64(-7), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		if steps == 0 || steps > 16 {
			steps = 4
		}
		rng := rand.New(rand.NewSource(seed))
		mm := genMetamodel(rng)
		cm, err := mm.Compiled()
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		base := genInstance(rng, mm, 2+rng.Intn(8))
		if err := cm.Validate(base); err != nil {
			base = NewModel(mm.Name)
		}
		dv := NewDeltaValidator(cm, base)
		for k := 0; k < int(steps); k++ {
			next0 := base.Clone()
			mutateModel(rng, next0, mm)
			base = stepDelta(t, fmt.Sprintf("seed %d step %d", seed, k), mm, cm, dv, base, next0)
		}
	})
}
