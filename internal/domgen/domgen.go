// Package domgen generates synthetic domain bundles: parameterised,
// seeded, fully deterministic MD-DSM domains that register through the
// internal/domains registry exactly like the hand-built ones (cml, mgrid,
// smartspace, csense).
//
// The paper's central claim is that the four-layer models@runtime
// architecture generalises across arbitrary domains; the repo's hand-built
// bundles can only witness four points of that space. A Spec names a point
// in the parameter space — class count, inheritance depth, attribute and
// enum mixes, LTS shape and density, event vocabulary — and Generate
// produces a complete domain for it: an application DSML that compiles
// through metamodel.Compile, a synthesis LTS that passes the core's
// LTS↔DSML conformance check, a middleware model conforming to mwmeta.MM,
// and a conformant initial application model. Everything derives from
// spec.Seed through one math/rand stream, so the same spec always yields a
// byte-identical domain — in this process, in the next one, and in CI.
//
// Generated bundles are first-class citizens of mddsm-serve: Register puts
// them in the domains registry, so synthetic tenants provision, evict,
// checkpoint and rehydrate through the exact code paths real tenants use.
// The mixed-workload harness (internal/experiments, mddsm-bench -e mixed)
// builds on that to soak every subsystem under diverse rather than uniform
// load.
package domgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/domains"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/script"
)

// LTS shapes: the topology of the generated synthesis transition system.
const (
	// ShapeLoop self-loops on every state: every model-change event is
	// always enabled. The default, and the densest event coverage.
	ShapeLoop = "loop"
	// ShapeRing advances through the states cyclically: each firing
	// enables the next state's transitions.
	ShapeRing = "ring"
	// ShapeStar returns every non-initial state to s0 (and fans out from
	// s0), the hub-and-spoke pattern.
	ShapeStar = "star"
)

// Spec parameterises one synthetic domain. The zero value is valid:
// Normalized clamps every field into its documented range, so any spec —
// including fuzzer-supplied garbage — generates.
type Spec struct {
	// Name suffixes the bundle name ("syn-<Name>"); empty derives one
	// from the seed.
	Name string
	// Seed drives every random choice. Same spec (same seed included) ⇒
	// identical domain, always.
	Seed int64
	// Classes is the DSML class count (clamped to [1, 64]).
	Classes int
	// Depth bounds the inheritance chain length (clamped to [0, 16] and
	// to Classes-1).
	Depth int
	// AttrsPerClass is the attribute count per class (clamped to [0, 16]).
	AttrsPerClass int
	// Enums is the enum-type count (clamped to [0, 8]).
	Enums int
	// EnumLiterals is the literal count per enum (clamped to [1, 8]).
	EnumLiterals int
	// LTSStates is the synthesis LTS state count (clamped to [1, 16]).
	LTSStates int
	// LTSShape selects the transition topology (ShapeLoop/Ring/Star;
	// anything else normalises to ShapeLoop).
	LTSShape string
	// LTSDensity is the probability of the optional extra transitions
	// (clamped to [0, 1]; NaN normalises to 0).
	LTSDensity float64
	// EventTypes is the resource-event vocabulary size (clamped to
	// [1, 32]).
	EventTypes int
	// InitialObjects is the object count of the seeded application model
	// (clamped to [0, 128]).
	InitialObjects int
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Normalized returns the spec with every parameter clamped into its valid
// range. Generate normalises internally; callers only need this to see the
// effective parameters (the registry Doc line prints them).
func (s Spec) Normalized() Spec {
	s.Classes = clampInt(s.Classes, 1, 64)
	s.Depth = clampInt(s.Depth, 0, 16)
	if s.Depth > s.Classes-1 {
		s.Depth = s.Classes - 1
	}
	s.AttrsPerClass = clampInt(s.AttrsPerClass, 0, 16)
	s.Enums = clampInt(s.Enums, 0, 8)
	s.EnumLiterals = clampInt(s.EnumLiterals, 1, 8)
	s.LTSStates = clampInt(s.LTSStates, 1, 16)
	switch s.LTSShape {
	case ShapeLoop, ShapeRing, ShapeStar:
	default:
		s.LTSShape = ShapeLoop
	}
	if math.IsNaN(s.LTSDensity) || s.LTSDensity < 0 {
		s.LTSDensity = 0
	} else if s.LTSDensity > 1 {
		s.LTSDensity = 1
	}
	s.EventTypes = clampInt(s.EventTypes, 1, 32)
	s.InitialObjects = clampInt(s.InitialObjects, 0, 128)
	if s.Name == "" {
		s.Name = fmt.Sprintf("g%x", uint64(s.Seed))
	}
	return s
}

// Domain is one generated synthetic domain: every artefact a bundle needs,
// derived deterministically from its spec.
type Domain struct {
	// Spec is the normalised parameter point this domain realises.
	Spec Spec
	// Name is the registry bundle name ("syn-<spec.Name>").
	Name string
	// DSML is the generated application metamodel. It is shared across
	// instances (like the hand-built bundles' memoised metamodels), so
	// every tenant of this domain reuses one compiled validator.
	DSML *metamodel.Metamodel
	// LTS is the generated synthesis transition system.
	LTS *lts.LTS

	middleware *metamodel.Model
	initial    *metamodel.Model
	eventNames []string
	concrete   []string
}

// Middleware returns a fresh copy of the generated middleware model.
func (d *Domain) Middleware() *metamodel.Model { return d.middleware.Clone() }

// Initial returns a fresh copy of the conformant seeded application model.
func (d *Domain) Initial() *metamodel.Model { return d.initial.Clone() }

// EventNames returns the domain's resource-event vocabulary, in generation
// order (the mixed-workload driver skews load across it).
func (d *Domain) EventNames() []string {
	return append([]string(nil), d.eventNames...)
}

// ConcreteClasses returns the instantiable class names, in generation
// order.
func (d *Domain) ConcreteClasses() []string {
	return append([]string(nil), d.concrete...)
}

// Generate realises the spec as a complete domain. It fails only if a
// generated artefact does not hold its own invariant — a metamodel that
// does not validate or compile, an LTS or initial model that does not
// conform — which FuzzDomgen asserts never happens for any spec.
func Generate(spec Spec) (*Domain, error) {
	spec = spec.Normalized()
	rng := rand.New(rand.NewSource(spec.Seed))
	d := &Domain{Spec: spec, Name: "syn-" + spec.Name}

	mm, concrete, err := genMetamodel(spec, rng)
	if err != nil {
		return nil, err
	}
	d.DSML = mm
	d.concrete = concrete
	if len(concrete) == 0 {
		return nil, fmt.Errorf("domgen %s: no concrete class generated", d.Name)
	}
	// The generated metamodel must compile without fallback: the compiled
	// validator is the hot path every synthetic tenant runs on.
	if _, err := metamodel.Compile(mm); err != nil {
		return nil, fmt.Errorf("domgen %s: metamodel does not compile: %w", d.Name, err)
	}

	d.LTS = genLTS(d, rng)
	if err := d.LTS.Validate(); err != nil {
		return nil, fmt.Errorf("domgen %s: lts: %w", d.Name, err)
	}

	for i := 0; i < spec.EventTypes; i++ {
		d.eventNames = append(d.eventNames, fmt.Sprintf("ev%d", i))
	}
	d.middleware = genMiddleware(d)
	d.initial = genInitial(d, rng)
	if err := d.initial.Validate(mm); err != nil {
		return nil, fmt.Errorf("domgen %s: initial model: %w", d.Name, err)
	}

	// The full cross-check the core applies at build time, run once at
	// generation so a bad domain fails fast with a generator error.
	def := core.Definition{
		Name:       d.Name,
		DSML:       d.DSML,
		Middleware: d.middleware.Clone(),
		DSK:        core.DSK{LTSes: map[string]*lts.LTS{d.LTS.Name: d.LTS}},
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("domgen %s: %w", d.Name, err)
	}
	return d, nil
}

// genMetamodel builds the DSML: enums, classes with bounded-depth single
// inheritance, and a mixed attribute/reference surface. Feature names are
// prefixed by class index so inheritance chains never collide.
func genMetamodel(spec Spec, rng *rand.Rand) (*metamodel.Metamodel, []string, error) {
	mm := metamodel.New("dg-" + spec.Name)
	enumNames := make([]string, 0, spec.Enums)
	for i := 0; i < spec.Enums; i++ {
		lits := make([]string, spec.EnumLiterals)
		for j := range lits {
			lits[j] = fmt.Sprintf("l%d_%d", i, j)
		}
		name := fmt.Sprintf("E%d", i)
		if err := mm.AddEnum(&metamodel.Enum{Name: name, Literals: lits}); err != nil {
			return nil, nil, err
		}
		enumNames = append(enumNames, name)
	}

	classes := make([]*metamodel.Class, spec.Classes)
	depthOf := make([]int, spec.Classes)
	var concrete []string
	for i := 0; i < spec.Classes; i++ {
		c := &metamodel.Class{Name: fmt.Sprintf("C%d", i)}
		if i > 0 && spec.Depth > 0 && rng.Intn(2) == 0 {
			// Inherit from an earlier class whose chain still has depth
			// budget — earlier-only parents make cycles impossible by
			// construction.
			var cands []int
			for j := 0; j < i; j++ {
				if depthOf[j] < spec.Depth {
					cands = append(cands, j)
				}
			}
			if len(cands) > 0 {
				p := cands[rng.Intn(len(cands))]
				c.Super = classes[p].Name
				depthOf[i] = depthOf[p] + 1
			}
		}
		// Abstract classes exercise the instantiability check; class 0
		// stays concrete so the domain always has something to model.
		if i > 0 && rng.Intn(5) == 0 {
			c.Abstract = true
		} else {
			concrete = append(concrete, c.Name)
		}
		for a := 0; a < spec.AttrsPerClass; a++ {
			attr := metamodel.Attribute{
				Name:     fmt.Sprintf("a%d_%d", i, a),
				Required: rng.Intn(2) == 0,
			}
			kinds := 4
			if len(enumNames) > 0 {
				kinds = 5
			}
			switch rng.Intn(kinds) {
			case 0:
				attr.Kind = metamodel.KindString
				attr.Default = fmt.Sprintf("v%d", a)
			case 1:
				attr.Kind = metamodel.KindInt
				attr.Default = rng.Intn(1000)
			case 2:
				attr.Kind = metamodel.KindFloat
				attr.Default = float64(rng.Intn(1000)) / 8
			case 3:
				attr.Kind = metamodel.KindBool
				attr.Default = rng.Intn(2) == 0
			case 4:
				attr.Kind = metamodel.KindEnum
				attr.EnumType = enumNames[rng.Intn(len(enumNames))]
				attr.Default = mm.Enum(attr.EnumType).Literals[0]
			}
			c.Attributes = append(c.Attributes, attr)
		}
		classes[i] = c
		if err := mm.AddClass(c); err != nil {
			return nil, nil, err
		}
	}

	// Optional many-valued cross-references between classes (targets may
	// be declared later than their source; Validate resolves them at the
	// end). Never required, so sparse models stay conformant.
	for i, c := range classes {
		if rng.Intn(3) != 0 {
			continue
		}
		c.References = append(c.References, metamodel.Reference{
			Name:   fmt.Sprintf("r%d_0", i),
			Target: classes[rng.Intn(len(classes))].Name,
			Many:   true,
		})
	}
	if err := mm.Validate(); err != nil {
		return nil, nil, fmt.Errorf("generated metamodel invalid: %w", err)
	}
	return mm, concrete, nil
}

// genLTS builds the synthesis transition system over the generated DSML:
// add-object transitions for every concrete class per the spec's shape,
// set-attr transitions where density allows. Emitted ops ("touch",
// "record") are the vocabulary the generated Controller routes.
func genLTS(d *Domain, rng *rand.Rand) *lts.LTS {
	spec := d.Spec
	n := spec.LTSStates
	states := make([]string, n)
	for i := range states {
		states[i] = fmt.Sprintf("s%d", i)
	}
	l := lts.New(fmt.Sprintf("dg-%s-lts", spec.Name), states[0])
	l.AddState(states...)

	next := func(si, ci int) string {
		switch spec.LTSShape {
		case ShapeRing:
			return states[(si+1)%n]
		case ShapeStar:
			if si == 0 {
				return states[ci%n]
			}
			return states[0]
		default: // ShapeLoop
			return states[si]
		}
	}
	for si := range states {
		for ci, class := range d.concrete {
			// State 0 always reacts to every class, so the initial model's
			// submission is guaranteed to drive synthesis; elsewhere the
			// density parameter thins the transition relation.
			if si != 0 && rng.Float64() >= spec.LTSDensity {
				continue
			}
			l.On(states[si], "add-object:"+class, "", next(si, ci),
				lts.CommandTemplate{Op: "touch", Target: class + ":{id}"})
			if c := d.DSML.Class(class); len(c.Attributes) > 0 && rng.Intn(2) == 0 {
				l.On(states[si], "set-attr:"+class+"."+c.Attributes[0].Name, "", states[si],
					lts.CommandTemplate{Op: "record", Target: class + ":{id}",
						Args: map[string]string{"value": "{new}"}})
			}
		}
	}
	return l
}

// genMiddleware authors the middleware model: Synthesis bound to the
// generated LTS, a passthrough Controller for the LTS's emitted ops, and a
// Broker whose event actions cover the domain's event vocabulary (every
// third one forwarding upward) with all resources bound to the sink
// adapter.
func genMiddleware(d *Domain) *metamodel.Model {
	b := mwmeta.NewBuilder(d.Name, d.Name)
	b.SynthesisLayer("SYN", d.LTS.Name)
	b.ControllerLayer("CTL").
		PassthroughAction("emit", "touch,record", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Done()
	bb := b.BrokerLayer("BRK")
	bb.PassthroughAction("sink", "*", "",
		mwmeta.StepSpec{Op: "{op}", Target: "{target}"})
	for i, ev := range d.eventNames {
		bb.EventAction("on-"+ev, ev, "", i%3 == 0,
			mwmeta.StepSpec{Op: "note", Target: ev})
	}
	bb.Bind("*", "sink")
	return b.Model()
}

// genInitial seeds a conformant application model: InitialObjects objects
// cycling through the concrete classes, every attribute set, references
// filled when an earlier object fits the target type.
func genInitial(d *Domain, rng *rand.Rand) *metamodel.Model {
	m := metamodel.NewModel(d.DSML.Name)
	type obj struct {
		id    string
		class string
	}
	var placed []obj
	for i := 0; i < d.Spec.InitialObjects; i++ {
		class := d.concrete[i%len(d.concrete)]
		id := fmt.Sprintf("o%d", i)
		o := m.NewObject(id, class)
		for _, a := range d.DSML.AllAttributes(class) {
			switch a.Kind {
			case metamodel.KindString:
				o.SetAttr(a.Name, fmt.Sprintf("s%d", rng.Intn(100)))
			case metamodel.KindInt:
				o.SetAttr(a.Name, rng.Intn(1000))
			case metamodel.KindFloat:
				o.SetAttr(a.Name, float64(rng.Intn(1000))/4)
			case metamodel.KindBool:
				o.SetAttr(a.Name, rng.Intn(2) == 0)
			case metamodel.KindEnum:
				e := d.DSML.Enum(a.EnumType)
				o.SetAttr(a.Name, e.Literals[rng.Intn(len(e.Literals))])
			}
		}
		for _, r := range d.DSML.AllReferences(class) {
			for _, prev := range placed {
				if d.DSML.IsSubclassOf(prev.class, r.Target) && rng.Intn(2) == 0 {
					o.AddRef(r.Name, prev.id)
					break
				}
			}
		}
		placed = append(placed, obj{id: id, class: class})
	}
	return m
}

// sink is the generated domain's sole resource adapter: it counts every
// executed command per op, deterministically renderable as the bundle
// trace.
type sink struct {
	mu     sync.Mutex
	counts map[string]int64
}

func newSink() *sink { return &sink{counts: make(map[string]int64)} }

// Execute implements broker.Adapter.
func (s *sink) Execute(cmd script.Command) error {
	s.mu.Lock()
	s.counts[cmd.Op]++
	s.mu.Unlock()
	return nil
}

// trace renders the per-op command counts sorted by op name.
func (s *sink) trace() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ops := make([]string, 0, len(s.counts))
	for op := range s.counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	parts := make([]string, 0, len(ops))
	for _, op := range ops {
		parts = append(parts, fmt.Sprintf("%s=%d", op, s.counts[op]))
	}
	return strings.Join(parts, " ")
}

// Bundle wraps the domain as a registry bundle: Assemble builds a fresh
// shell (its own sink adapter, a cloned middleware model) around the
// shared DSML and LTS, exactly the shape the hand-built bundles register.
func (d *Domain) Bundle() domains.Bundle {
	return domains.Bundle{
		Name: d.Name,
		Doc: fmt.Sprintf(
			"synthetic domain (seed %d: %d classes/depth %d, %d enums, lts %s×%d, %d event types)",
			d.Spec.Seed, d.Spec.Classes, d.Spec.Depth, d.Spec.Enums,
			d.Spec.LTSShape, d.Spec.LTSStates, d.Spec.EventTypes),
		Assemble: func(cfg domains.Config) (*domains.Instance, error) {
			snk := newSink()
			def := core.Definition{
				Name:       d.Name,
				DSML:       d.DSML,
				Middleware: d.middleware.Clone(),
				DSK: core.DSK{
					LTSes:    map[string]*lts.LTS{d.LTS.Name: d.LTS},
					Adapters: map[string]broker.Adapter{"sink": snk},
				},
				Obs:        cfg.Obs,
				Injector:   cfg.Injector,
				Resilience: cfg.Resilience,
			}
			return domains.NewInstance(def, snk.trace, nil), nil
		},
	}
}

// Register generates the domain and installs its bundle in the domains
// registry. Registration is idempotent for a given name: re-registering
// the same deterministic spec is a no-op, so harnesses that regenerate
// their fleet (two benchmark runs in one process) just work.
func Register(spec Spec) (*Domain, error) {
	d, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	domains.RegisterIfAbsent(d.Bundle())
	return d, nil
}

// Event builds one deterministic resource event for the domain: name drawn
// from the event vocabulary by index, a shard key spreading tenants'
// streams across pump shards, and a sequence attribute.
func (d *Domain) Event(i int) broker.Event {
	return broker.Event{
		Name: d.eventNames[i%len(d.eventNames)],
		Attrs: map[string]any{
			"key": fmt.Sprintf("k%d", i%8),
			"seq": i,
		},
	}
}
