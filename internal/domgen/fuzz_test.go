package domgen_test

import (
	"testing"

	"github.com/mddsm/mddsm/internal/domgen"
	"github.com/mddsm/mddsm/internal/metamodel"
)

// FuzzDomgen fuzzes the generator's parameter space and asserts the
// generator contract for arbitrary specs: Generate always succeeds (any
// input normalises into the valid range), the generated metamodel always
// compiles without fallback, and the generated initial model conforms
// under both the compiled and the interpreted validator. The committed
// corpus under testdata/fuzz/FuzzDomgen pins the degenerate shapes: zero
// classes, maximum inheritance depth, dense cyclic-prone stars, and a
// negative-everything spec.
func FuzzDomgen(f *testing.F) {
	f.Add(int64(0), 0, 0, 0, 0, 0, 0, byte(0), 0.0, 0, 0)
	f.Add(int64(1), 64, 63, 16, 8, 8, 16, byte('r'), 1.0, 32, 128)
	f.Add(int64(-7), -1, 99, -3, 99, -1, -5, byte('x'), -2.5, -9, 100000)
	f.Add(int64(42), 12, 3, 4, 2, 3, 5, byte('s'), 0.5, 6, 20)

	shapes := []string{domgen.ShapeLoop, domgen.ShapeRing, domgen.ShapeStar}
	f.Fuzz(func(t *testing.T, seed int64, classes, depth, attrs, enums, lits, states int, shape byte, density float64, events, objs int) {
		spec := domgen.Spec{
			Seed:           seed,
			Classes:        classes,
			Depth:          depth,
			AttrsPerClass:  attrs,
			Enums:          enums,
			EnumLiterals:   lits,
			LTSStates:      states,
			LTSShape:       shapes[int(shape)%len(shapes)],
			LTSDensity:     density,
			EventTypes:     events,
			InitialObjects: objs,
		}
		d, err := domgen.Generate(spec)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", spec, err)
		}
		// The compiled validator must build without falling back to the
		// interpreted path — it is the hot path synthetic tenants run on.
		if _, err := metamodel.Compile(d.DSML); err != nil {
			t.Fatalf("generated metamodel does not compile: %v", err)
		}
		initial := d.Initial()
		if err := initial.Validate(d.DSML); err != nil {
			t.Fatalf("initial model fails compiled validation: %v", err)
		}
		if err := initial.ValidateInterpreted(d.DSML); err != nil {
			t.Fatalf("initial model fails interpreted validation: %v", err)
		}
		if err := d.LTS.Validate(); err != nil {
			t.Fatalf("generated LTS invalid: %v", err)
		}
		// Determinism: a second generation of the same spec must agree on
		// the canonical DSML bytes.
		d2, err := domgen.Generate(spec)
		if err != nil {
			t.Fatalf("Generate (again): %v", err)
		}
		b1, err1 := metamodel.MarshalMetamodel(d.DSML)
		b2, err2 := metamodel.MarshalMetamodel(d2.DSML)
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal: %v / %v", err1, err2)
		}
		if string(b1) != string(b2) {
			t.Fatalf("same spec generated different metamodels")
		}
	})
}
