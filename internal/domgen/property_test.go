package domgen_test

import (
	"fmt"
	"testing"

	"github.com/mddsm/mddsm/internal/domains"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/domgen"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/runtime"
)

// propertyFleet registers a small, varied synthetic fleet and returns the
// generated domains keyed by bundle name. Specs intentionally cover all
// three LTS shapes and both ends of the density/depth ranges.
func propertyFleet(t *testing.T) map[string]*domgen.Domain {
	t.Helper()
	fleet := make(map[string]*domgen.Domain)
	shapes := []string{domgen.ShapeLoop, domgen.ShapeRing, domgen.ShapeStar}
	for i := 0; i < 6; i++ {
		spec := domgen.Spec{
			Name:           fmt.Sprintf("prop-%d", i),
			Seed:           int64(1000 + i),
			Classes:        2 + i*3,
			Depth:          i % 4,
			AttrsPerClass:  1 + i%5,
			Enums:          i % 3,
			EnumLiterals:   2,
			LTSStates:      1 + i%6,
			LTSShape:       shapes[i%len(shapes)],
			LTSDensity:     float64(i) / 5,
			EventTypes:     1 + i%7,
			InitialObjects: 4 * i,
		}
		d, err := domgen.Register(spec)
		if err != nil {
			t.Fatalf("Register(%+v): %v", spec, err)
		}
		fleet[d.Name] = d
	}
	return fleet
}

// TestEveryBundleRestoreRoundtrip is the registry-wide restore property:
// for every registered bundle — the four hand-built domains and the
// synthetic fleet alike — assemble → checkpoint → domains.Restore →
// checkpoint yields equivalent snapshots. Synthetic tenants additionally
// submit their generated initial model first, so the roundtrip covers a
// platform with a live application model and advanced LTS state, not just
// the freshly assembled shape.
func TestEveryBundleRestoreRoundtrip(t *testing.T) {
	fleet := propertyFleet(t)
	for _, name := range domains.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			inst, err := domains.New(name, domains.Config{})
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			defer inst.Close()
			if d, ok := fleet[name]; ok {
				if _, err := inst.Platform.SubmitModel(d.Initial()); err != nil {
					t.Fatalf("SubmitModel: %v", err)
				}
			}
			snap, err := inst.Platform.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			restored, err := domains.Restore(name, snap, domains.Config{})
			if err != nil {
				t.Fatalf("Restore(%s): %v", name, err)
			}
			defer restored.Close()
			snap2, err := restored.Platform.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint (restored): %v", err)
			}
			same, err := runtime.SnapshotsEquivalent(snap, snap2)
			if err != nil {
				t.Fatalf("SnapshotsEquivalent: %v", err)
			}
			if !same {
				t.Fatalf("restore roundtrip drifted:\n first=%s\nsecond=%s", snap, snap2)
			}
		})
	}
}

// TestCompiledInterpretedAgreeOnGenerated extends the PR-5 differential
// sweep to synthetic metamodels: the compiled validator and the
// interpreted reference must agree — on the conformant generated initial
// models and on deliberately broken mutations of them.
func TestCompiledInterpretedAgreeOnGenerated(t *testing.T) {
	for name, d := range propertyFleet(t) {
		mm := d.DSML
		check := func(label string, m *metamodel.Model) {
			t.Helper()
			compiledErr := m.Validate(mm)
			interpErr := m.ValidateInterpreted(mm)
			if (compiledErr == nil) != (interpErr == nil) {
				t.Errorf("%s/%s: compiled err=%v, interpreted err=%v",
					name, label, compiledErr, interpErr)
			}
		}
		check("initial", d.Initial())

		// Mutations that must fail in both validators identically.
		broken := d.Initial()
		broken.NewObject("zz-unknown", "NoSuchClass")
		check("unknown-class", broken)

		classes := d.ConcreteClasses()
		class := classes[0]
		if attrs := mm.AllAttributes(class); len(attrs) > 0 {
			wrongType := d.Initial()
			o := wrongType.NewObject("zz-wrong", class)
			switch attrs[0].Kind {
			case metamodel.KindString, metamodel.KindEnum:
				o.SetAttr(attrs[0].Name, 3.25)
			default:
				o.SetAttr(attrs[0].Name, "not-a-number")
			}
			check("wrong-attr-type", wrongType)

			phantom := d.Initial()
			phantom.NewObject("zz-phantom", class).SetAttr("no_such_attr", 1)
			check("phantom-attr", phantom)
		}

		dangling := d.Initial()
		if refs := mm.AllReferences(class); len(refs) > 0 {
			dangling.NewObject("zz-dangling", class).AddRef(refs[0].Name, "missing-target")
			check("dangling-ref", dangling)
		}
	}
}
