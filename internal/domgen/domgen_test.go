package domgen_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/domains"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/domgen"
	"github.com/mddsm/mddsm/internal/metamodel"
)

// fingerprint renders every artefact of a generated domain into one
// comparable string: canonical DSML encoding, LTS structure, middleware
// and initial model JSON.
func fingerprint(t *testing.T, d *domgen.Domain) string {
	t.Helper()
	mmJSON, err := metamodel.MarshalMetamodel(d.DSML)
	if err != nil {
		t.Fatalf("marshal DSML: %v", err)
	}
	mwJSON, err := metamodel.MarshalModel(d.Middleware())
	if err != nil {
		t.Fatalf("marshal middleware: %v", err)
	}
	initJSON, err := metamodel.MarshalModel(d.Initial())
	if err != nil {
		t.Fatalf("marshal initial: %v", err)
	}
	return fmt.Sprintf("name=%s\nmm=%s\nlts=%s/%d/%d/%v\nmw=%s\ninit=%s\nevents=%v\n",
		d.Name, mmJSON, d.LTS.Name, d.LTS.States(), d.LTS.Transitions(),
		d.LTS.EventPatterns(), mwJSON, initJSON, d.EventNames())
}

func TestGenerateDeterministic(t *testing.T) {
	spec := domgen.Spec{
		Name: "det", Seed: 99, Classes: 12, Depth: 3, AttrsPerClass: 4,
		Enums: 2, EnumLiterals: 3, LTSStates: 5, LTSShape: domgen.ShapeRing,
		LTSDensity: 0.5, EventTypes: 6, InitialObjects: 20,
	}
	a, err := domgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := domgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate (again): %v", err)
	}
	fa, fb := fingerprint(t, a), fingerprint(t, b)
	if fa != fb {
		t.Fatalf("same spec generated different domains:\n--- a ---\n%s\n--- b ---\n%s", fa, fb)
	}

	// A different seed over the same shape must actually vary the output;
	// a generator that ignores its seed is not exploring the space.
	spec.Seed = 100
	c, err := domgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate (seed 100): %v", err)
	}
	if fingerprint(t, c) == fa {
		t.Fatalf("different seeds generated identical domains")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, shape := range []string{domgen.ShapeLoop, domgen.ShapeRing, domgen.ShapeStar} {
		d, err := domgen.Generate(domgen.Spec{
			Name: "shape-" + shape, Seed: 7, Classes: 6, AttrsPerClass: 2,
			LTSStates: 4, LTSShape: shape, LTSDensity: 1, EventTypes: 3,
			InitialObjects: 8,
		})
		if err != nil {
			t.Fatalf("Generate(%s): %v", shape, err)
		}
		if d.LTS.States() != 4 {
			t.Errorf("shape %s: States() = %d, want 4", shape, d.LTS.States())
		}
		if d.LTS.Transitions() == 0 {
			t.Errorf("shape %s: no transitions", shape)
		}
	}
}

func TestNormalizedClamps(t *testing.T) {
	n := domgen.Spec{Seed: 3, Classes: -5, Depth: 99, AttrsPerClass: 99,
		Enums: 99, EnumLiterals: 0, LTSStates: 0, LTSShape: "bogus",
		LTSDensity: 7, EventTypes: -1, InitialObjects: 10_000}.Normalized()
	want := domgen.Spec{Name: "g3", Seed: 3, Classes: 1, Depth: 0,
		AttrsPerClass: 16, Enums: 8, EnumLiterals: 1, LTSStates: 1,
		LTSShape: domgen.ShapeLoop, LTSDensity: 1, EventTypes: 1,
		InitialObjects: 128}
	if !reflect.DeepEqual(n, want) {
		t.Fatalf("Normalized() = %+v, want %+v", n, want)
	}
}

func TestRegisterMakesFirstClassBundle(t *testing.T) {
	spec := domgen.Spec{Name: "reg-test", Seed: 11, Classes: 5,
		AttrsPerClass: 3, LTSStates: 3, EventTypes: 4, InitialObjects: 6}
	d, err := domgen.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, ok := domains.Lookup(d.Name); !ok {
		t.Fatalf("bundle %s not in registry after Register", d.Name)
	}
	// Re-registering the same deterministic spec is a no-op, not a panic.
	if _, err := domgen.Register(spec); err != nil {
		t.Fatalf("Register (again): %v", err)
	}

	inst, err := domains.New(d.Name, domains.Config{})
	if err != nil {
		t.Fatalf("domains.New(%s): %v", d.Name, err)
	}
	defer inst.Close()
	inst.Platform.Start()
	if _, err := inst.Platform.SubmitModel(d.Initial()); err != nil {
		t.Fatalf("SubmitModel(initial): %v", err)
	}
	for i := 0; i < 16; i++ {
		if !inst.Platform.PostEvent(d.Event(i)) {
			t.Fatalf("PostEvent(%d) rejected", i)
		}
	}
	inst.Platform.Stop()
	// Submitting the initial model drives synthesis: the LTS reacts to
	// add-object events from state s0 by construction, so the sink must
	// have executed at least one "touch" command.
	if tr := inst.Trace(); !strings.Contains(tr, "touch=") {
		t.Fatalf("sink trace %q records no touch commands; synthesis never fired", tr)
	}
}

func TestGenerateZeroSpec(t *testing.T) {
	d, err := domgen.Generate(domgen.Spec{})
	if err != nil {
		t.Fatalf("Generate(zero spec): %v", err)
	}
	if got := d.Spec.Classes; got != 1 {
		t.Errorf("zero spec Classes = %d, want 1", got)
	}
	if len(d.ConcreteClasses()) == 0 {
		t.Errorf("zero spec has no concrete class")
	}
}
