package bridge

import (
	"errors"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/domains/cml"
	"github.com/mddsm/mddsm/internal/domains/smartspace"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/script"
)

// capture is a Dispatch recording translated commands.
type capture struct {
	trace script.Trace
	fail  bool
}

func (c *capture) dispatch(cmd script.Command) error {
	if c.fail {
		return errors.New("target down")
	}
	c.trace.Record(cmd)
	return nil
}

func TestRuleMatchingAndTranslation(t *testing.T) {
	target := &capture{}
	b := New("b").
		AddRule(MapRule("onEnter", "objectEntered", "",
			script.Template{Op: "greet", Target: "object:{object}"}, target.dispatch)).
		AddRule(MapRule("guarded", "objectEntered", "object == 'vip'",
			script.Template{Op: "rollOutRedCarpet", Target: "object:{object}"}, target.dispatch)).
		AddRule(MapRule("other", "objectLeft", "",
			script.Template{Op: "farewell", Target: "object:{object}"}, target.dispatch))

	b.OnEvent(broker.Event{Name: "objectEntered", Attrs: map[string]any{"object": "badge1"}})
	b.OnEvent(broker.Event{Name: "objectEntered", Attrs: map[string]any{"object": "vip"}})
	b.OnEvent(broker.Event{Name: "somethingElse"})

	got := strings.Join(target.trace.Lines(), ";")
	want := "greet object:badge1;greet object:vip;rollOutRedCarpet object:vip"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
	if len(b.Failures()) != 0 {
		t.Errorf("failures: %v", b.Failures())
	}
}

func TestFailureAccumulation(t *testing.T) {
	target := &capture{fail: true}
	b := New("b").
		AddRule(MapRule("bad-guard", "e", "1 > 'x'",
			script.Template{Op: "x", Target: "t"}, target.dispatch)).
		AddRule(MapRule("bad-template", "e", "",
			script.Template{Op: "x", Target: "{ghost}"}, target.dispatch)).
		AddRule(MapRule("no-target", "e", "",
			script.Template{Op: "x", Target: "t"}, nil)).
		AddRule(MapRule("failing-target", "e", "",
			script.Template{Op: "x", Target: "t"}, target.dispatch))
	b.OnEvent(broker.Event{Name: "e"})
	fails := b.Failures()
	if len(fails) != 4 {
		t.Fatalf("failures: %v", fails)
	}
	for i, want := range []string{"guard", "unbound", "no target", "target down"} {
		if !strings.Contains(fails[i], want) {
			t.Errorf("failure %d: %q missing %q", i, fails[i], want)
		}
	}
}

// TestSmartSpaceToCVMBridge is the §IX interoperability scenario: a smart
// conference room. When a participant's badge enters the 2SVM-managed
// space, the bridge sets up a CVM communication session for them.
func TestSmartSpaceToCVMBridge(t *testing.T) {
	room, err := smartspace.New()
	if err != nil {
		t.Fatal(err)
	}
	cvm, err := cml.New()
	if err != nil {
		t.Fatal(err)
	}
	// Pre-establish the conference session on the CVM side.
	d := cvm.Platform.UI.NewDraft()
	d.MustAdd("conf", "Session")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}

	b := New("room-to-cvm").AddRule(MapRule(
		"badgeJoinsCall", "objectEntered", "contains(object, 'badge-')",
		script.Template{Op: "addParticipant", Target: "session:conf",
			Args: map[string]string{"who": "{object}"}},
		PlatformTarget(cvm.Platform),
	))
	b.Attach(room.Platform)

	// Physical arrivals in the room.
	if err := room.Hub.ObjectEnters("badge-ana", "badge"); err != nil {
		t.Fatal(err)
	}
	if err := room.Hub.ObjectEnters("lamp1", "lamp"); err != nil {
		t.Fatal(err)
	}
	if err := room.Hub.ObjectEnters("badge-bruno", "badge"); err != nil {
		t.Fatal(err)
	}

	sess := cvm.Service.Session("conf")
	if sess == nil {
		t.Fatal("conference session missing")
	}
	got := strings.Join(sess.Participants(), ",")
	if got != "badge-ana,badge-bruno" {
		t.Errorf("participants: %s", got)
	}
	if len(b.Failures()) != 0 {
		t.Errorf("bridge failures: %v", b.Failures())
	}
}

// TestBridgeToRemotePlatform drives a bridge whose target platform lives
// behind the TCP wire: source events translate into commands dispatched to
// a remote.Server-hosted platform.
func TestBridgeToRemotePlatform(t *testing.T) {
	cvm, err := cml.New()
	if err != nil {
		t.Fatal(err)
	}
	d := cvm.Platform.UI.NewDraft()
	d.MustAdd("conf", "Session")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	srv, err := remote.NewServer(cvm.Platform, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := remote.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	b := New("to-remote-cvm").AddRule(MapRule(
		"join", "objectEntered", "",
		script.Template{Op: "addParticipant", Target: "session:conf",
			Args: map[string]string{"who": "{object}"}},
		client.Call, // remote.Client satisfies the Dispatch shape
	))
	b.OnEvent(broker.Event{Name: "objectEntered", Attrs: map[string]any{"object": "ana"}})
	if fails := b.Failures(); len(fails) != 0 {
		t.Fatalf("failures: %v", fails)
	}
	sess := cvm.Service.Session("conf")
	if got := strings.Join(sess.Participants(), ","); got != "ana" {
		t.Errorf("participants: %s", got)
	}
}
