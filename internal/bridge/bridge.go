// Package bridge connects domain-specific middleware platforms: events
// observed at the top of one platform are translated, through declarative
// mapping rules, into commands on another platform. The paper lists
// interoperability across different domain-specific middleware platforms
// as an open direction (§IX), pointing at the models@runtime connector
// synthesis of Bencomo et al. [29]; this package realises a rule-based
// variant of that idea on MD-DSM platforms.
//
// A bridge never bypasses the target platform's layers: translated
// commands enter through the target Controller's normal command pipeline
// (classification included), so policies and intent generation still
// apply.
package bridge

import (
	"fmt"
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// Dispatch delivers a translated command to a target platform (or any
// other command consumer).
type Dispatch func(cmd script.Command) error

// PlatformTarget adapts a platform so translated commands run through its
// Controller layer.
func PlatformTarget(p *runtime.Platform) Dispatch {
	return func(cmd script.Command) error {
		return p.Execute(script.New("bridge").Append(cmd))
	}
}

// Rule maps one source-platform event to one command on a target. The
// command template's placeholders bind the event's attributes (plus
// "event" for the event name).
type Rule struct {
	Name    string
	Event   string // source event name, or "*"
	Guard   expr.Node
	Command script.Template
	Target  Dispatch
}

// MapRule is a convenience constructor parsing the guard source (empty
// means unguarded). It panics on a bad static guard.
func MapRule(name, event, guardSrc string, cmd script.Template, target Dispatch) Rule {
	var guard expr.Node
	if guardSrc != "" {
		guard = expr.MustParse(guardSrc)
	}
	return Rule{Name: name, Event: event, Guard: guard, Command: cmd, Target: target}
}

// Bridge translates events between platforms. Attach it to one or more
// source platforms; rules fire in declaration order and every matching
// rule runs (a single event may fan out to several targets).
type Bridge struct {
	name  string
	funcs map[string]expr.Func

	mu       sync.Mutex
	rules    []Rule
	failures []string
}

// New creates an empty bridge.
func New(name string) *Bridge {
	return &Bridge{name: name, funcs: expr.StdFuncs()}
}

// AddRule appends a mapping rule.
func (b *Bridge) AddRule(r Rule) *Bridge {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rules = append(b.rules, r)
	return b
}

// Attach subscribes the bridge to a source platform's top-of-stack events.
func (b *Bridge) Attach(source *runtime.Platform) {
	source.SetExternalEvents(b.OnEvent)
}

// Failures returns the accumulated translation failures (an asynchronous
// bridge has no caller to report to, so failures are retained for
// inspection), most recent last.
func (b *Bridge) Failures() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.failures...)
}

// OnEvent translates one source event through the rule table.
func (b *Bridge) OnEvent(ev broker.Event) {
	scope := make(expr.MapScope, len(ev.Attrs)+1)
	for k, v := range ev.Attrs {
		scope[k] = v
	}
	scope["event"] = ev.Name

	b.mu.Lock()
	rules := make([]Rule, len(b.rules))
	copy(rules, b.rules)
	b.mu.Unlock()

	for _, r := range rules {
		if r.Event != "*" && r.Event != ev.Name {
			continue
		}
		if r.Guard != nil {
			ok, err := expr.EvalBool(r.Guard, expr.Env{Scope: scope, Funcs: b.funcs})
			if err != nil {
				b.recordFailure(r.Name, ev.Name, fmt.Errorf("guard: %w", err))
				continue
			}
			if !ok {
				continue
			}
		}
		cmd, err := r.Command.Expand(scope)
		if err != nil {
			b.recordFailure(r.Name, ev.Name, err)
			continue
		}
		if r.Target == nil {
			b.recordFailure(r.Name, ev.Name, fmt.Errorf("no target"))
			continue
		}
		if err := r.Target(cmd); err != nil {
			b.recordFailure(r.Name, ev.Name, err)
		}
	}
}

func (b *Bridge) recordFailure(rule, event string, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = append(b.failures,
		fmt.Sprintf("bridge %s: rule %s on %s: %v", b.name, rule, event, err))
}
