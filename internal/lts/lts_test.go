package lts

import (
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/expr"
)

// sessionLTS models a tiny communication-session lifecycle.
func sessionLTS() *LTS {
	l := New("session", "idle")
	l.On("idle", "add-object:Session", "", "active",
		CommandTemplate{Op: "createSession", Target: "session:{id}"})
	l.On("active", "add-ref:participants", "", "active",
		CommandTemplate{Op: "addParticipant", Target: "session:{id}",
			Args: map[string]string{"who": "{target}"}})
	l.On("active", "set-attr:media", "new == 'video'", "active",
		CommandTemplate{Op: "upgradeMedia", Target: "session:{id}",
			Args: map[string]string{"to": "{new}", "from": "{old}"}})
	l.On("active", "set-attr:media", "new != 'video'", "active",
		CommandTemplate{Op: "setMedia", Target: "session:{id}",
			Args: map[string]string{"to": "{new}"}})
	l.On("active", "remove-object:Session", "", "idle",
		CommandTemplate{Op: "closeSession", Target: "session:{id}"})
	return l
}

func TestValidateOK(t *testing.T) {
	if err := sessionLTS().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	l := New("bad", "start")
	l.AddTransition(Transition{From: "ghost", Event: "e", To: "start"})
	if err := l.Validate(); err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Errorf("want unknown source error, got %v", err)
	}
	l2 := New("bad2", "start")
	l2.AddTransition(Transition{From: "start", Event: "e", To: "ghost"})
	if err := l2.Validate(); err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Errorf("want unknown target error, got %v", err)
	}
	l3 := New("bad3", "start")
	l3.AddTransition(Transition{From: "start", Event: "", To: "start"})
	if err := l3.Validate(); err == nil || !strings.Contains(err.Error(), "empty event") {
		t.Errorf("want empty event error, got %v", err)
	}
	l4 := &LTS{Name: "bad4", Initial: "nowhere", states: map[string]bool{}}
	if err := l4.Validate(); err == nil || !strings.Contains(err.Error(), "initial state") {
		t.Errorf("want initial state error, got %v", err)
	}
}

func TestStepLifecycle(t *testing.T) {
	in := NewInstance(sessionLTS())
	if in.State() != "idle" {
		t.Fatal("initial state")
	}

	cmds, fired, err := in.Step("add-object:Session", expr.MapScope{"id": "s1"})
	if err != nil || !fired {
		t.Fatalf("step 1: %v fired=%v", err, fired)
	}
	if len(cmds) != 1 || cmds[0].String() != "createSession session:s1" {
		t.Fatalf("step 1 cmds: %v", cmds)
	}
	if in.State() != "active" {
		t.Fatal("state after create")
	}

	cmds, fired, err = in.Step("add-ref:participants", expr.MapScope{"id": "s1", "target": "alice"})
	if err != nil || !fired || len(cmds) != 1 {
		t.Fatalf("step 2: %v", err)
	}
	if got := cmds[0].StringArg("who"); got != "alice" {
		t.Errorf("who=%q", got)
	}

	// Guarded branch selection.
	cmds, fired, err = in.Step("set-attr:media", expr.MapScope{"id": "s1", "new": "video", "old": "audio"})
	if err != nil || !fired {
		t.Fatalf("step 3: %v", err)
	}
	if cmds[0].Op != "upgradeMedia" {
		t.Errorf("guard selected %q", cmds[0].Op)
	}
	cmds, _, err = in.Step("set-attr:media", expr.MapScope{"id": "s1", "new": "audio", "old": "video"})
	if err != nil {
		t.Fatal(err)
	}
	if cmds[0].Op != "setMedia" {
		t.Errorf("else-guard selected %q", cmds[0].Op)
	}

	// Unmatched events are silently ignored.
	cmds, fired, err = in.Step("no-such-event", expr.MapScope{})
	if err != nil || fired || cmds != nil {
		t.Fatalf("unmatched event: %v %v %v", cmds, fired, err)
	}

	if _, fired, _ = in.Step("remove-object:Session", expr.MapScope{"id": "s1"}); !fired {
		t.Fatal("close")
	}
	if in.State() != "idle" {
		t.Fatal("state after close")
	}

	in.Reset()
	if in.State() != "idle" {
		t.Fatal("reset")
	}
}

func TestWildcardEvents(t *testing.T) {
	l := New("w", "s")
	l.On("s", "add-object:*", "", "s", CommandTemplate{Op: "noted", Target: "{id}"})
	l.On("s", "*", "", "s", CommandTemplate{Op: "any", Target: "x"})
	in := NewInstance(l)
	cmds, fired, err := in.Step("add-object:Device", expr.MapScope{"id": "d1"})
	if err != nil || !fired || cmds[0].Op != "noted" {
		t.Fatalf("prefix wildcard: %v %v %v", cmds, fired, err)
	}
	cmds, fired, err = in.Step("whatever", expr.MapScope{})
	if err != nil || !fired || cmds[0].Op != "any" {
		t.Fatalf("star wildcard: %v %v %v", cmds, fired, err)
	}
}

func TestDeclarationOrderWins(t *testing.T) {
	l := New("o", "s")
	l.On("s", "e", "", "s", CommandTemplate{Op: "first", Target: "t"})
	l.On("s", "e", "", "s", CommandTemplate{Op: "second", Target: "t"})
	in := NewInstance(l)
	cmds, _, err := in.Step("e", expr.MapScope{})
	if err != nil || cmds[0].Op != "first" {
		t.Fatalf("declaration order: %v %v", cmds, err)
	}
}

func TestGuardErrors(t *testing.T) {
	l := New("g", "s")
	l.On("s", "e", "ghost > 1", "s")
	in := NewInstance(l)
	if _, _, err := in.Step("e", expr.MapScope{}); err == nil {
		t.Fatal("unbound guard variable must error")
	}
}

func TestGuardedNoMatchFallsThrough(t *testing.T) {
	l := New("g2", "s")
	l.On("s", "e", "x > 10", "never")
	in := NewInstance(l)
	_, fired, err := in.Step("e", expr.MapScope{"x": 5})
	if err != nil || fired {
		t.Fatalf("disabled guard must not fire: fired=%v err=%v", fired, err)
	}
	if in.State() != "s" {
		t.Fatal("state must not change")
	}
}

func TestSubstitution(t *testing.T) {
	scope := expr.MapScope{"id": "s1", "n": 42.0, "flag": true, "nest": expr.MapScope{"v": "deep"}}
	tests := []struct {
		tpl  string
		want any
	}{
		{"plain", "plain"},
		{"{id}", "s1"},
		{"{n}", 42.0},    // single placeholder keeps native type
		{"{flag}", true}, // ditto
		{"pre-{id}-post", "pre-s1-post"},
		{"{id}/{n}", "s1/42"},
		{"{nest.v}", "deep"},
	}
	for _, tt := range tests {
		got, err := substitute(tt.tpl, scope)
		if err != nil || got != tt.want {
			t.Errorf("substitute(%q) = %v, %v; want %v", tt.tpl, got, err, tt.want)
		}
	}
	if _, err := substitute("{ghost}", scope); err == nil {
		t.Error("unbound placeholder must error")
	}
	if _, err := substitute("a{ghost}b", scope); err == nil {
		t.Error("unbound interpolated placeholder must error")
	}
	if _, err := substitute("{open", scope); err == nil {
		t.Error("unterminated placeholder must error")
	}
}

func TestEmitArgTypes(t *testing.T) {
	l := New("t", "s")
	l.On("s", "e", "", "s", CommandTemplate{
		Op: "op", Target: "t",
		Args: map[string]string{"num": "{n}", "str": "v-{n}", "lit": "x"},
	})
	in := NewInstance(l)
	cmds, _, err := in.Step("e", expr.MapScope{"n": 7.0})
	if err != nil {
		t.Fatal(err)
	}
	if cmds[0].NumArg("num") != 7 {
		t.Error("native numeric arg")
	}
	if cmds[0].StringArg("str") != "v-7" {
		t.Error("interpolated arg")
	}
	if cmds[0].StringArg("lit") != "x" {
		t.Error("literal arg")
	}
}

func TestEmitErrorPropagates(t *testing.T) {
	l := New("t", "s")
	l.On("s", "e", "", "gone", CommandTemplate{Op: "op", Target: "{ghost}"})
	in := NewInstance(l)
	if _, _, err := in.Step("e", expr.MapScope{}); err == nil {
		t.Fatal("emit error must propagate")
	}
	if in.State() != "s" {
		t.Fatal("failed emit must not change state")
	}
}

func TestCounts(t *testing.T) {
	l := sessionLTS()
	if l.States() != 2 {
		t.Errorf("States: %d", l.States())
	}
	if l.Transitions() != 5 {
		t.Errorf("Transitions: %d", l.Transitions())
	}
}

func TestMatchEvent(t *testing.T) {
	tests := []struct {
		pattern, label string
		want           bool
	}{
		{"a", "a", true},
		{"a", "b", false},
		{"*", "anything", true},
		{"add-*", "add-object", true},
		{"add-*", "remove-object", false},
		{"a*c", "abc", false}, // only suffix wildcards supported
	}
	for _, tt := range tests {
		if got := matchEvent(tt.pattern, tt.label); got != tt.want {
			t.Errorf("matchEvent(%q, %q) = %v", tt.pattern, tt.label, got)
		}
	}
}

func TestEventPatternsAndEmittedOps(t *testing.T) {
	l := sessionLTS()
	patterns := l.EventPatterns()
	if len(patterns) != 5 || patterns[0] != "add-object:Session" {
		t.Errorf("patterns: %v", patterns)
	}
	ops := l.EmittedOps()
	want := "addParticipant,closeSession,createSession,setMedia,upgradeMedia"
	if strings.Join(ops, ",") != want {
		t.Errorf("emitted ops: %v", ops)
	}
	// Templated ops are skipped.
	l2 := New("t", "s")
	l2.On("s", "e", "", "s", CommandTemplate{Op: "{dynamic}", Target: "t"})
	if len(l2.EmittedOps()) != 0 {
		t.Errorf("templated op must be skipped: %v", l2.EmittedOps())
	}
}

func TestRestore(t *testing.T) {
	in := NewInstance(sessionLTS())
	if _, fired, _ := in.Step("add-object:Session", expr.MapScope{"id": "s"}); !fired {
		t.Fatal("setup")
	}
	if err := in.Restore("idle"); err != nil {
		t.Fatal(err)
	}
	if in.State() != "idle" {
		t.Error("Restore")
	}
	if err := in.Restore("nowhere"); err == nil {
		t.Error("unknown state must fail")
	}
}
