// Package lts implements labeled transition systems, the formalism the
// MD-DSM Synthesis layer uses to encode domain-specific synthesis semantics
// (paper §V-A/§V-B, following Allison et al. [11]). A domain's DSK contains
// one or more LTSs; the change interpreter feeds model-change events through
// an LTS instance, and enabled transitions emit control-script commands.
package lts

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mddsm/mddsm/internal/expr"
	"github.com/mddsm/mddsm/internal/script"
)

// CommandTemplate is a control-script command with {placeholder} holes that
// are filled from the event scope when the owning transition fires.
type CommandTemplate struct {
	Op     string
	Target string
	Args   map[string]string
}

// Transition moves the system from From to To when an event matching Event
// occurs and Guard (if any) holds. Event patterns are exact labels, a "*"
// wildcard, or a prefix pattern ending in "*" such as "add-object:*".
type Transition struct {
	From  string
	Event string
	Guard expr.Node // nil means always enabled
	To    string
	Emit  []CommandTemplate
}

// LTS is an immutable labeled transition system definition.
type LTS struct {
	Name        string
	Initial     string
	states      map[string]bool
	transitions []Transition
}

// New creates an LTS with the given initial state.
func New(name, initial string) *LTS {
	l := &LTS{Name: name, Initial: initial, states: make(map[string]bool)}
	l.states[initial] = true
	return l
}

// AddState declares a state. Declaring the same state twice is harmless.
func (l *LTS) AddState(names ...string) *LTS {
	for _, n := range names {
		l.states[n] = true
	}
	return l
}

// AddTransition appends a transition. Transitions are tried in declaration
// order; the first enabled match fires.
func (l *LTS) AddTransition(t Transition) *LTS {
	l.transitions = append(l.transitions, t)
	return l
}

// On is a convenience for the common transition shape: from --event--> to,
// optionally guarded by guardSrc (parsed with expr), emitting templates.
// It panics on an unparsable guard; guards are static domain knowledge.
func (l *LTS) On(from, event, guardSrc, to string, emit ...CommandTemplate) *LTS {
	var guard expr.Node
	if guardSrc != "" {
		guard = expr.MustParse(guardSrc)
	}
	l.AddState(from, to)
	return l.AddTransition(Transition{From: from, Event: event, Guard: guard, To: to, Emit: emit})
}

// States returns the number of declared states.
func (l *LTS) States() int { return len(l.states) }

// EventPatterns returns the event pattern of every transition in
// declaration order (conformance checking walks these).
func (l *LTS) EventPatterns() []string {
	out := make([]string, len(l.transitions))
	for i, t := range l.transitions {
		out[i] = t.Event
	}
	return out
}

// EmittedOps returns the distinct literal operation names the LTS can emit
// (templates whose op contains placeholders are skipped), sorted. Coverage
// analysis checks each against the Controller's routing.
func (l *LTS) EmittedOps() []string {
	set := make(map[string]bool)
	for _, t := range l.transitions {
		for _, tpl := range t.Emit {
			if !strings.Contains(tpl.Op, "{") {
				set[tpl.Op] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for op := range set {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// Transitions returns the number of transitions.
func (l *LTS) Transitions() int { return len(l.transitions) }

// Validate checks that all transition endpoints are declared states and the
// initial state exists.
func (l *LTS) Validate() error {
	if !l.states[l.Initial] {
		return fmt.Errorf("lts %s: initial state %q not declared", l.Name, l.Initial)
	}
	for i, t := range l.transitions {
		if !l.states[t.From] {
			return fmt.Errorf("lts %s: transition %d: unknown source state %q", l.Name, i, t.From)
		}
		if !l.states[t.To] {
			return fmt.Errorf("lts %s: transition %d: unknown target state %q", l.Name, i, t.To)
		}
		if t.Event == "" {
			return fmt.Errorf("lts %s: transition %d: empty event pattern", l.Name, i)
		}
	}
	return nil
}

// matchEvent reports whether pattern accepts label.
func matchEvent(pattern, label string) bool {
	if pattern == "*" || pattern == label {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(label, pattern[:len(pattern)-1])
	}
	return false
}

// Instance is a running occurrence of an LTS with a current state.
type Instance struct {
	def   *LTS
	state string
	funcs map[string]expr.Func
}

// NewInstance creates an instance positioned at the initial state.
func NewInstance(def *LTS) *Instance {
	return &Instance{def: def, state: def.Initial, funcs: expr.StdFuncs()}
}

// State returns the current state.
func (in *Instance) State() string { return in.state }

// Reset returns the instance to the initial state.
func (in *Instance) Reset() { in.state = in.def.Initial }

// Restore moves the instance to a previously observed state. It returns an
// error for undeclared states, so callers cannot wedge the instance.
func (in *Instance) Restore(state string) error {
	if !in.def.states[state] {
		return fmt.Errorf("lts %s: unknown state %q", in.def.Name, state)
	}
	in.state = state
	return nil
}

// Step feeds an event with a binding scope. If a transition fires, Step
// returns the emitted commands (with placeholders substituted) and true.
// If no transition is enabled, it returns (nil, false, nil): unmatched
// events are not errors — the synthesis process simply has nothing to do.
func (in *Instance) Step(event string, scope expr.MapScope) ([]script.Command, bool, error) {
	for _, t := range in.def.transitions {
		if t.From != in.state || !matchEvent(t.Event, event) {
			continue
		}
		if t.Guard != nil {
			ok, err := expr.EvalBool(t.Guard, expr.Env{Scope: scope, Funcs: in.funcs})
			if err != nil {
				return nil, false, fmt.Errorf("lts %s: state %s: event %s: guard: %w",
					in.def.Name, in.state, event, err)
			}
			if !ok {
				continue
			}
		}
		cmds, err := expand(t.Emit, scope)
		if err != nil {
			return nil, false, fmt.Errorf("lts %s: state %s: event %s: %w",
				in.def.Name, in.state, event, err)
		}
		in.state = t.To
		return cmds, true, nil
	}
	return nil, false, nil
}

// expand instantiates command templates against the scope.
func expand(templates []CommandTemplate, scope expr.MapScope) ([]script.Command, error) {
	if len(templates) == 0 {
		return nil, nil
	}
	out := make([]script.Command, 0, len(templates))
	for _, tpl := range templates {
		op, err := substitute(tpl.Op, scope)
		if err != nil {
			return nil, err
		}
		target, err := substitute(tpl.Target, scope)
		if err != nil {
			return nil, err
		}
		cmd := script.NewCommand(fmt.Sprintf("%v", op), fmt.Sprintf("%v", target))
		for k, v := range tpl.Args {
			val, err := substitute(v, scope)
			if err != nil {
				return nil, err
			}
			cmd = cmd.WithArg(k, val)
		}
		out = append(out, cmd)
	}
	return out, nil
}

// substitute fills {name} holes from the scope; see expr.Interpolate.
func substitute(tpl string, scope expr.MapScope) (any, error) {
	return expr.Interpolate(tpl, scope)
}
